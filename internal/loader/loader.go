// Package loader implements module loading and dynamic linking for the
// simulated system: placement of relocatable isa.Objects into an
// address space, GOT/PLT synthesis with the eager binding and
// page-aligned read-only GOT that Palladium requires (Section 4.4.2),
// a user-level dynamic loader (dlopen / dlsym / dlclose), and the
// miniature shared libc whose non-buffering routines extensions may
// call directly.
package loader

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Space abstracts the address space a module is loaded into: a user
// process (base-0 segments) or a kernel extension segment (addresses
// are segment-relative offsets).
type Space interface {
	// AllocRange reserves size bytes (rounded to pages) and returns
	// the base address. ppl1 requests pages visible at CPL 3.
	AllocRange(size uint32, name string, writable, ppl1 bool) (uint32, error)
	// FreeRange releases a range previously returned by AllocRange.
	FreeRange(addr uint32) error
	// Write copies bytes into the space.
	Write(addr uint32, b []byte) error
	// InstallText places instructions at addr (one per 4-byte slot).
	InstallText(addr uint32, text []isa.Instr) error
	// RemoveText undoes InstallText.
	RemoveText(addr uint32, n int) error
	// SetWritable flips write permission on the pages of a range
	// (used to seal the GOT after eager binding).
	SetWritable(addr, size uint32, writable bool) error
}

// Resolver maps an external symbol name to its absolute address.
type Resolver func(name string) (uint32, bool)

// Options tunes a Load.
type Options struct {
	// GOT routes external function calls through a PLT backed by a
	// page-aligned GOT, as dynamic linking does; without it external
	// calls are bound directly into the instruction.
	GOT bool
	// SealGOT marks the GOT page(s) read-only after eager binding —
	// the Palladium requirement that stops extensions from corrupting
	// the application's GOT.
	SealGOT bool
	// TextPPL1 / DataPPL1 / GOTPPL1 choose the page privilege level
	// of each range: PPL 1 pages remain visible to SPL-3 extensions.
	TextPPL1 bool
	DataPPL1 bool
	GOTPPL1  bool
}

// LibraryOptions is the Palladium arrangement for shared libraries
// (Section 4.4.1): code pages at PPL 1 so extensions can call
// non-buffering routines directly; data pages at PPL 0 so extensions
// cannot corrupt library state; the GOT on its own PPL-1 page, sealed
// read-only after eager binding.
func LibraryOptions() Options {
	return Options{GOT: true, SealGOT: true, TextPPL1: true, DataPPL1: false, GOTPPL1: true}
}

// ExtensionOptions places everything at PPL 1: the extension owns its
// text, data and GOT, and corrupting them harms only itself.
func ExtensionOptions() Options {
	return Options{GOT: true, SealGOT: false, TextPPL1: true, DataPPL1: true, GOTPPL1: true}
}

// Image is a loaded module.
type Image struct {
	Name     string
	TextBase uint32
	TextLen  int // instruction slots including PLT entries
	DataBase uint32
	DataSize uint32
	GOTBase  uint32 // 0 when no GOT was built
	GOTSize  uint32
	// Syms maps every defined symbol to its absolute address.
	Syms map[string]uint32
	// Globals lists the symbols exported to later loads.
	Globals []string
	// PLT maps external function names to their PLT entry addresses.
	PLT map[string]uint32

	space Space
}

// Lookup returns the address of a defined symbol.
func (im *Image) Lookup(name string) (uint32, bool) {
	a, ok := im.Syms[name]
	return a, ok
}

// Rebind copies the image descriptor onto another Space (a cloned
// machine's equivalent of the one it was loaded into). Addresses and
// symbol tables are identical — the clone's memory holds the same
// loaded bytes at the same addresses — only the Space used by a later
// Unload changes. The symbol maps are shared: they are immutable after
// Load.
func (im *Image) Rebind(space Space) *Image {
	c := *im
	c.space = space
	return &c
}

// Unload removes the module's text and releases its ranges.
func (im *Image) Unload() error {
	if err := im.space.RemoveText(im.TextBase, im.TextLen); err != nil {
		return err
	}
	if err := im.space.FreeRange(im.TextBase); err != nil {
		return err
	}
	if im.DataSize > 0 {
		if err := im.space.FreeRange(im.DataBase); err != nil {
			return err
		}
	}
	if im.GOTBase != 0 {
		if err := im.space.FreeRange(im.GOTBase); err != nil {
			return err
		}
	}
	return nil
}

// Load places obj into space, resolving externals through resolve.
// The returned image's symbol addresses are final (eager binding; no
// lazy PLT resolution, per Section 4.4.2: "symbols ... should be
// resolved eagerly, not lazily").
func Load(obj *isa.Object, space Space, resolve Resolver, opt Options) (*Image, error) {
	obj = obj.Clone()
	im := &Image{
		Name:  obj.Name,
		Syms:  make(map[string]uint32),
		PLT:   make(map[string]uint32),
		space: space,
	}

	// Classify external references: call/jmp immediate targets are
	// functions (PLT candidates); everything else binds directly.
	externFuncs := map[string]bool{}
	externData := map[string]bool{}
	for _, r := range obj.Relocs {
		s := obj.Symbol(r.Sym)
		if s == nil || s.Section != isa.SecUndef {
			continue
		}
		isCallTarget := r.Slot == isa.RelDstImm &&
			(obj.Text[r.Index].Op == isa.CALL || obj.Text[r.Index].Op == isa.JMP)
		if opt.GOT && isCallTarget {
			externFuncs[r.Sym] = true
		} else {
			externData[r.Sym] = true
		}
	}
	pltOrder := make([]string, 0, len(externFuncs))
	for s := range externFuncs {
		pltOrder = append(pltOrder, s)
	}
	sort.Strings(pltOrder)

	// Allocate ranges: text (+PLT), data+bss, GOT on its own page.
	textSlots := len(obj.Text) + len(pltOrder)
	textBase, err := space.AllocRange(uint32(textSlots)*isa.InstrSlot, obj.Name+".text", false, opt.TextPPL1)
	if err != nil {
		return nil, err
	}
	im.TextBase, im.TextLen = textBase, textSlots
	dataSize := uint32(len(obj.Data)) + obj.BSSSize
	if dataSize > 0 {
		im.DataBase, err = space.AllocRange(dataSize, obj.Name+".data", true, opt.DataPPL1)
		if err != nil {
			return nil, err
		}
		im.DataSize = dataSize
	}
	if len(pltOrder) > 0 {
		im.GOTSize = uint32(len(pltOrder)) * 4
		im.GOTBase, err = space.AllocRange(im.GOTSize, obj.Name+".got", true, opt.GOTPPL1)
		if err != nil {
			return nil, err
		}
		if im.GOTBase&mem.PageMask != 0 {
			return nil, fmt.Errorf("loader: GOT not page aligned at %#x", im.GOTBase)
		}
	}

	// Symbol addresses.
	addrOf := func(name string) (uint32, error) {
		s := obj.Symbol(name)
		if s != nil {
			switch s.Section {
			case isa.SecText:
				return textBase + s.Off, nil
			case isa.SecData:
				return im.DataBase + s.Off, nil
			case isa.SecBSS:
				return im.DataBase + uint32(len(obj.Data)) + s.Off, nil
			}
		}
		if externFuncs[name] {
			return im.pltAddr(obj, pltOrder, name), nil
		}
		if a, ok := resolve(name); ok {
			return a, nil
		}
		return 0, fmt.Errorf("loader: %s: unresolved symbol %q", obj.Name, name)
	}

	// Build the PLT: entry i is `jmp [GOT + 4*i]`, and the GOT slot
	// holds the eagerly resolved target.
	gotWords := make([]byte, im.GOTSize)
	plt := make([]isa.Instr, 0, len(pltOrder))
	for i, name := range pltOrder {
		target, ok := resolve(name)
		if !ok {
			return nil, fmt.Errorf("loader: %s: unresolved function %q", obj.Name, name)
		}
		slot := im.GOTBase + uint32(i)*4
		plt = append(plt, isa.Instr{Op: isa.JMP, Dst: isa.MAbs(int32(slot)), Size: 4})
		gotWords[i*4] = byte(target)
		gotWords[i*4+1] = byte(target >> 8)
		gotWords[i*4+2] = byte(target >> 16)
		gotWords[i*4+3] = byte(target >> 24)
		im.PLT[name] = im.pltAddr(obj, pltOrder, name)
	}

	// Apply relocations.
	for _, r := range obj.Relocs {
		v, err := addrOf(r.Sym)
		if err != nil {
			return nil, err
		}
		pv := int32(v) + r.Addend
		switch r.Slot {
		case isa.RelDstDisp:
			obj.Text[r.Index].Dst.Disp += pv
			// A verifier fact on this operand was proved in the
			// pre-relocation address domain; shift its bound along
			// with the displacement it anchors.
			if obj.Text[r.Index].Dst.Proved {
				obj.Text[r.Index].Dst.ProvedEnd += uint32(pv)
			}
		case isa.RelSrcDisp:
			obj.Text[r.Index].Src.Disp += pv
			if obj.Text[r.Index].Src.Proved {
				obj.Text[r.Index].Src.ProvedEnd += uint32(pv)
			}
		case isa.RelDstImm:
			obj.Text[r.Index].Dst.Imm += pv
		case isa.RelSrcImm:
			obj.Text[r.Index].Src.Imm += pv
		case isa.RelData:
			old := uint32(obj.Data[r.Index]) | uint32(obj.Data[r.Index+1])<<8 |
				uint32(obj.Data[r.Index+2])<<16 | uint32(obj.Data[r.Index+3])<<24
			nv := old + uint32(pv)
			obj.Data[r.Index] = byte(nv)
			obj.Data[r.Index+1] = byte(nv >> 8)
			obj.Data[r.Index+2] = byte(nv >> 16)
			obj.Data[r.Index+3] = byte(nv >> 24)
		}
	}

	// Record symbols.
	for name, s := range obj.Symbols {
		if s.Section == isa.SecUndef {
			continue
		}
		a, err := addrOf(name)
		if err != nil {
			return nil, err
		}
		im.Syms[name] = a
		if s.Global {
			im.Globals = append(im.Globals, name)
		}
	}
	sort.Strings(im.Globals)

	// Materialize: data, GOT, text+PLT.
	if len(obj.Data) > 0 {
		if err := space.Write(im.DataBase, obj.Data); err != nil {
			return nil, err
		}
	}
	if obj.BSSSize > 0 {
		if err := space.Write(im.DataBase+uint32(len(obj.Data)), make([]byte, obj.BSSSize)); err != nil {
			return nil, err
		}
	}
	if im.GOTBase != 0 {
		if err := space.Write(im.GOTBase, gotWords); err != nil {
			return nil, err
		}
	}
	text := append(obj.Text, plt...)
	if err := space.InstallText(textBase, text); err != nil {
		return nil, err
	}
	if opt.SealGOT && im.GOTBase != 0 {
		if err := space.SetWritable(im.GOTBase, im.GOTSize, false); err != nil {
			return nil, err
		}
	}
	return im, nil
}

// pltAddr returns the address of the PLT entry for name: PLT entries
// sit immediately after the object's own text.
func (im *Image) pltAddr(obj *isa.Object, order []string, name string) uint32 {
	base := im.TextBase + uint32(len(obj.Text))*isa.InstrSlot
	for i, n := range order {
		if n == name {
			return base + uint32(i)*isa.InstrSlot
		}
	}
	return 0
}
