package loader

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// UserSpace adapts a user process to the loader's Space interface.
// Allocation goes through mmap regions (demand paging pre-touched so
// the loader can copy immediately); text installation resolves each
// page's frame individually, since frames are not physically
// contiguous.
type UserSpace struct {
	K *kernel.Kernel
	P *kernel.Process
}

// AllocRange implements Space using an anonymous mmap.
func (u *UserSpace) AllocRange(size uint32, name string, writable, ppl1 bool) (uint32, error) {
	if size == 0 {
		size = 1
	}
	var addr uint32
	var err error
	// Text and GOT pages must be materialized writable for the copy,
	// then protection is adjusted; data stays writable.
	if ppl1 {
		addr, err = u.P.MmapPPL1(u.K, 0, size, true, name)
	} else {
		addr, err = u.P.Mmap(u.K, 0, size, true, name)
	}
	if err != nil {
		return 0, err
	}
	if err := u.P.Touch(u.K, addr, size); err != nil {
		return 0, err
	}
	if !writable {
		if err := u.P.Mprotect(u.K, addr, false); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

// FreeRange implements Space.
func (u *UserSpace) FreeRange(addr uint32) error { return u.P.Munmap(u.K, addr) }

// Write implements Space with kernel privilege (the loader is trusted).
func (u *UserSpace) Write(addr uint32, b []byte) error {
	// Bypass page write protection: the loader writes via physical
	// frames exactly like the kernel's copy path, but must tolerate
	// read-only targets (text pages during install). Page-wise: one
	// translation per page, not one per byte.
	total := len(b)
	err := mem.ForEachPageRun(addr, total, func(lin uint32, n int) error {
		e := u.P.AS.Lookup(lin)
		if !e.Present() {
			return fmt.Errorf("loader: page not present at %#x", lin)
		}
		u.K.Phys.WriteBytes(e.Frame()|lin&mem.PageMask, b[:n])
		b = b[n:]
		return nil
	})
	if err != nil {
		return err
	}
	u.K.Clock.Add(u.K.Costs.CopyPerByte * float64(total))
	return nil
}

// InstallText implements Space, resolving instruction slots' physical
// addresses through the process page tables one page-contiguous run at
// a time (one lookup and one block-cache invalidation per page, not
// per instruction).
func (u *UserSpace) InstallText(addr uint32, text []isa.Instr) error {
	for i := 0; i < len(text); {
		lin := addr + uint32(i)*isa.InstrSlot
		e := u.P.AS.Lookup(lin)
		if !e.Present() {
			return fmt.Errorf("loader: text page not present at %#x", lin)
		}
		n := int((mem.PageSize - lin&mem.PageMask) / isa.InstrSlot)
		if n > len(text)-i {
			n = len(text) - i
		}
		u.K.Machine.InstallCode(e.Frame()|lin&mem.PageMask, text[i:i+n])
		i += n
	}
	return nil
}

// RemoveText implements Space.
func (u *UserSpace) RemoveText(addr uint32, n int) error {
	for i := 0; i < n; {
		lin := addr + uint32(i)*isa.InstrSlot
		e := u.P.AS.Lookup(lin)
		c := int((mem.PageSize - lin&mem.PageMask) / isa.InstrSlot)
		if c > n-i {
			c = n - i
		}
		if e.Present() {
			u.K.Machine.RemoveCode(e.Frame()|lin&mem.PageMask, c)
		}
		i += c
	}
	return nil
}

// SetWritable implements Space.
func (u *UserSpace) SetWritable(addr, size uint32, writable bool) error {
	return u.P.Mprotect(u.K, addr, writable)
}

// DL is the per-process dynamic loader: the simulated equivalent of
// ld.so plus the dlopen/dlsym/dlclose API. Symbols are bound eagerly.
type DL struct {
	K       *kernel.Kernel
	P       *kernel.Process
	space   *UserSpace
	images  []*Image
	globals map[string]uint32
	handles map[int]*Image
	nextH   int
}

// NewDL creates the dynamic loader for a process.
func NewDL(k *kernel.Kernel, p *kernel.Process) *DL {
	return &DL{
		K: k, P: p,
		space:   &UserSpace{K: k, P: p},
		globals: make(map[string]uint32),
		handles: make(map[int]*Image),
		nextH:   1,
	}
}

// Space exposes the process-backed loader space.
func (d *DL) Space() Space { return d.space }

// Resolve looks a symbol up in the process's global symbol table.
func (d *DL) Resolve(name string) (uint32, bool) {
	a, ok := d.globals[name]
	return a, ok
}

// Define publishes a symbol (application services, service stubs).
func (d *DL) Define(name string, addr uint32) { d.globals[name] = addr }

// chargeOpen prices the dynamic-library open path: the paper measures
// dlopen of the null extension at about 400 microseconds.
func (d *DL) chargeOpen(obj *isa.Object) {
	c := d.K.Costs
	pages := float64((obj.TextBytes()+uint32(len(obj.Data))+obj.BSSSize)/mem.PageSize + 2)
	d.K.Clock.Add(c.DlopenBase + c.DlopenPerPage*pages + c.DlopenPerSymbol*float64(len(obj.Symbols)+len(obj.Relocs)))
}

// Dlopen loads a shared object with GOT/PLT indirection and eager
// binding, publishing its global symbols. It returns a handle for
// Dlsym/Dlclose.
func (d *DL) Dlopen(obj *isa.Object, opt Options) (int, *Image, error) {
	d.chargeOpen(obj)
	im, err := Load(obj, d.space, d.Resolve, opt)
	if err != nil {
		return 0, nil, err
	}
	d.images = append(d.images, im)
	for _, g := range im.Globals {
		d.globals[g] = im.Syms[g]
	}
	h := d.nextH
	d.nextH++
	d.handles[h] = im
	return h, im, nil
}

// Dlsym resolves a symbol in a loaded image. As in the paper, it
// returns the raw address — Palladium's seg_dlsym (in the core
// package) wraps it to hand out Prepare stubs for function symbols.
func (d *DL) Dlsym(handle int, name string) (uint32, error) {
	im := d.handles[handle]
	if im == nil {
		return 0, fmt.Errorf("dlsym: bad handle %d", handle)
	}
	if a, ok := im.Lookup(name); ok {
		return a, nil
	}
	return 0, fmt.Errorf("dlsym: %q not found in %s", name, im.Name)
}

// Dlclose unloads the image.
func (d *DL) Dlclose(handle int) error {
	im := d.handles[handle]
	if im == nil {
		return fmt.Errorf("dlclose: bad handle %d", handle)
	}
	delete(d.handles, handle)
	for _, g := range im.Globals {
		if d.globals[g] == im.Syms[g] {
			delete(d.globals, g)
		}
	}
	for i, x := range d.images {
		if x == im {
			d.images = append(d.images[:i], d.images[i+1:]...)
			break
		}
	}
	return im.Unload()
}

// Images lists the currently loaded images.
func (d *DL) Images() []*Image { return d.images }

// CloneFor copies the dynamic-loader state onto a cloned kernel and
// process: every image is rebound to the clone's loader space, and the
// handle and global-symbol tables are duplicated. The returned map
// translates source images to their rebound counterparts so callers
// can rewire their own references (core.App.Libc and friends).
func (d *DL) CloneFor(k *kernel.Kernel, p *kernel.Process) (*DL, map[*Image]*Image) {
	c := &DL{
		K: k, P: p,
		space:   &UserSpace{K: k, P: p},
		globals: make(map[string]uint32, len(d.globals)),
		handles: make(map[int]*Image, len(d.handles)),
		nextH:   d.nextH,
	}
	for n, a := range d.globals {
		c.globals[n] = a
	}
	imap := make(map[*Image]*Image, len(d.images))
	for _, im := range d.images {
		im2 := im.Rebind(c.space)
		imap[im] = im2
		c.images = append(c.images, im2)
	}
	for h, im := range d.handles {
		c.handles[h] = imap[im]
	}
	return c, imap
}
