package loader

import "repro/internal/isa"

// libcSrc is the miniature shared C library. The string and memory
// routines are non-buffering — they keep no internal state — so
// Palladium lets extensions call them directly through the PLT
// (Section 4.4.1). bufput/bufflush are deliberately *buffering*
// (stateful): their data lives in the library's PPL-0 data section, so
// a direct call from an SPL-3 extension faults on the first buffer
// write; extensible applications must wrap them as application
// services, exactly like fprintf in the paper.
//
// Calling convention: cdecl — arguments on the stack, result in EAX,
// EAX/ECX/EDX caller-saved.
const libcSrc = `
; ---- non-buffering routines (extension-callable) ----
.global strlen, strcpy, strcmp, memcpy, memset
.global bufput, bufcount

.text
strlen:                 ; size_t strlen(const char *s)
	mov eax, [esp+4]
	mov ecx, eax
strlen_loop:
	movb edx, [ecx]
	cmp edx, 0
	je strlen_done
	inc ecx
	jmp strlen_loop
strlen_done:
	mov eax, ecx
	sub eax, [esp+4]
	ret

strcpy:                 ; char *strcpy(char *dst, const char *src)
	push esi
	mov eax, [esp+8]
	mov ecx, [esp+12]
	mov esi, eax
strcpy_loop:
	movb edx, [ecx]
	movb [esi], edx
	cmp edx, 0
	je strcpy_done
	inc ecx
	inc esi
	jmp strcpy_loop
strcpy_done:
	pop esi
	ret

strcmp:                 ; int strcmp(const char *a, const char *b)
	push ebx
	mov ecx, [esp+8]
	mov edx, [esp+12]
strcmp_loop:
	movb eax, [ecx]
	movb ebx, [edx]
	cmp eax, ebx
	jne strcmp_diff
	cmp eax, 0
	je strcmp_loop_done
	inc ecx
	inc edx
	jmp strcmp_loop
strcmp_diff:
	sub eax, ebx
	pop ebx
	ret
strcmp_loop_done:
	mov eax, 0
	pop ebx
	ret

memcpy:                 ; void *memcpy(void *dst, const void *src, size_t n)
	push esi
	push edi
	mov edi, [esp+12]
	mov esi, [esp+16]
	mov ecx, [esp+20]
memcpy_loop:
	cmp ecx, 0
	je memcpy_done
	movb edx, [esi]
	movb [edi], edx
	inc esi
	inc edi
	dec ecx
	jmp memcpy_loop
memcpy_done:
	mov eax, [esp+12]
	pop edi
	pop esi
	ret

memset:                 ; void *memset(void *dst, int c, size_t n)
	push edi
	mov edi, [esp+8]
	mov edx, [esp+12]
	mov ecx, [esp+16]
memset_loop:
	cmp ecx, 0
	je memset_done
	movb [edi], edx
	inc edi
	dec ecx
	jmp memset_loop
memset_done:
	mov eax, [esp+8]
	pop edi
	ret

; ---- buffering routines (NOT extension-callable: PPL-0 data) ----
bufput:                 ; int bufput(int c): append to internal buffer
	mov ecx, [buf_pos]
	mov edx, [esp+4]
	movb [buf_data+ecx], edx
	inc ecx
	and ecx, 255        ; wrap
	mov [buf_pos], ecx
	mov eax, ecx
	ret

bufcount:               ; int bufcount(void)
	mov eax, [buf_pos]
	ret

.data
buf_pos:  .word 0
buf_data: .space 256
`

// Libc assembles a fresh copy of the miniature shared libc.
func Libc() *isa.Object {
	return isa.MustAssemble("libc", libcSrc)
}
