package loader_test

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/mmu"
)

const magicRet = 0xB000_0000 // break address used as a return target

type env struct {
	t *testing.T
	k *kernel.Kernel
	p *kernel.Process
	d *loader.DL
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k, err := kernel.New(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.CreateProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(k, kernel.StackTop-4*mem.PageSize, 4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	return &env{t: t, k: k, p: p, d: loader.NewDL(k, p)}
}

// call runs the simulated function at entry with the given stack
// arguments at CPL 3, returning EAX.
func (e *env) call(entry uint32, args ...uint32) uint32 {
	e.t.Helper()
	m := e.k.Machine
	m.CS = kernel.UCodeSel
	m.DS = kernel.UDataSel
	m.SS = kernel.UDataSel
	m.EIP = entry
	m.Regs[isa.ESP] = kernel.StackTop
	for i := len(args) - 1; i >= 0; i-- {
		if f := m.Push(args[i]); f != nil {
			e.t.Fatalf("push: %v", f)
		}
	}
	if f := m.Push(magicRet); f != nil {
		e.t.Fatalf("push ret: %v", f)
	}
	m.SetBreak(magicRet)
	defer m.ClearBreak(magicRet)
	res := m.Run(cpu.RunLimits{MaxInstructions: 100000})
	if res.Reason != cpu.StopBreak {
		e.t.Fatalf("run stopped: %+v err=%v", res, res.Err)
	}
	return m.Reg(isa.EAX)
}

// str writes a NUL-terminated string into fresh user memory.
func (e *env) str(s string) uint32 {
	e.t.Helper()
	addr, err := e.p.MmapPPL1(e.k, 0, uint32(len(s)+1), true, "str")
	if err != nil {
		e.t.Fatal(err)
	}
	if err := e.k.CopyToUser(e.p, addr, append([]byte(s), 0)); err != nil {
		e.t.Fatal(err)
	}
	return addr
}

func (e *env) read(addr uint32, n int) []byte {
	e.t.Helper()
	b, err := e.k.CopyFromUser(e.p, addr, n)
	if err != nil {
		e.t.Fatal(err)
	}
	return b
}

func TestLoadAndRunLocalSymbols(t *testing.T) {
	e := newEnv(t)
	obj := isa.MustAssemble("m", `
		.global addtwo
		.text
		addtwo:
			mov eax, [esp+4]
			add eax, [twoval]
			ret
		.data
		twoval: .word 2
	`)
	_, im, err := e.d.Dlopen(obj, loader.ExtensionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.call(im.Syms["addtwo"], 40); got != 42 {
		t.Errorf("addtwo(40) = %d", got)
	}
}

func TestCrossModuleCallThroughPLT(t *testing.T) {
	e := newEnv(t)
	libObj := isa.MustAssemble("lib", `
		.global double
		.text
		double:
			mov eax, [esp+4]
			add eax, eax
			ret
	`)
	if _, _, err := e.d.Dlopen(libObj, loader.LibraryOptions()); err != nil {
		t.Fatal(err)
	}
	useObj := isa.MustAssemble("use", `
		.global quad
		.text
		quad:
			push dword_arg    ; placeholder to keep stack layout simple
			pop eax
			mov eax, [esp+4]
			push eax
			call double
			add esp, 4
			push eax
			call double
			add esp, 4
			ret
		.data
		dword_arg: .word 0
	`)
	_, im, err := e.d.Dlopen(useObj, loader.ExtensionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(im.PLT) != 1 {
		t.Fatalf("PLT entries = %v, want 1 (double)", im.PLT)
	}
	if got := e.call(im.Syms["quad"], 5); got != 20 {
		t.Errorf("quad(5) = %d, want 20", got)
	}
}

func TestGOTIsPageAlignedAndSealed(t *testing.T) {
	e := newEnv(t)
	lib := isa.MustAssemble("lib", `
		.global f
		.text
		f: ret
	`)
	e.d.Dlopen(lib, loader.LibraryOptions())
	use := isa.MustAssemble("use", `
		.global g
		.text
		g:
			call f
			ret
	`)
	_, im, err := e.d.Dlopen(use, loader.LibraryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if im.GOTBase&mem.PageMask != 0 {
		t.Errorf("GOT at %#x: not page aligned", im.GOTBase)
	}
	// Sealed: a simulated CPL-3 write to the GOT faults (this is what
	// protects the application from GOT-corruption attacks).
	writer := isa.MustAssemble("writer", `
		.global smash
		.text
		smash:
			mov eax, [esp+4]
			mov [eax], 0
			ret
	`)
	_, wim, err := e.d.Dlopen(writer, loader.ExtensionOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := e.k.Machine
	m.CS = kernel.UCodeSel
	m.DS = kernel.UDataSel
	m.SS = kernel.UDataSel
	m.EIP = wim.Syms["smash"]
	m.Regs[isa.ESP] = kernel.StackTop
	m.Push(im.GOTBase)
	m.Push(magicRet)
	res := m.Run(cpu.RunLimits{MaxInstructions: 100})
	if res.Reason != cpu.StopFault || res.Fault.Kind != mmu.PF {
		t.Fatalf("GOT write = %+v, want #PF (read-only GOT)", res)
	}
	// But it remains readable (the PLT jumps through it).
	if got := e.call(im.Syms["g"]); got != m.Reg(isa.EAX) {
		t.Logf("g() executed fine: %d", got)
	}
}

func TestUnresolvedSymbolError(t *testing.T) {
	e := newEnv(t)
	obj := isa.MustAssemble("bad", `
		.text
		f: call missing
		ret
	`)
	if _, _, err := e.d.Dlopen(obj, loader.ExtensionOptions()); err == nil ||
		!strings.Contains(err.Error(), "unresolved") {
		t.Errorf("err = %v, want unresolved symbol", err)
	}
}

func TestDlsymAndDlclose(t *testing.T) {
	e := newEnv(t)
	obj := isa.MustAssemble("m", `
		.global fn
		.text
		fn: mov eax, 7
		ret
		.data
		.global dat
		dat: .word 9
	`)
	h, im, err := e.d.Dlopen(obj, loader.ExtensionOptions())
	if err != nil {
		t.Fatal(err)
	}
	fnAddr, err := e.d.Dlsym(h, "fn")
	if err != nil || fnAddr != im.Syms["fn"] {
		t.Fatalf("dlsym fn = %#x, %v", fnAddr, err)
	}
	if _, err := e.d.Dlsym(h, "nosuch"); err == nil {
		t.Error("dlsym of missing symbol must fail")
	}
	datAddr, _ := e.d.Dlsym(h, "dat")
	if got := e.read(datAddr, 4); got[0] != 9 {
		t.Errorf("dat = %v", got)
	}
	if got := e.call(fnAddr); got != 7 {
		t.Errorf("fn() = %d", got)
	}
	if err := e.d.Dlclose(h); err != nil {
		t.Fatal(err)
	}
	if _, err := e.d.Dlsym(h, "fn"); err == nil {
		t.Error("dlsym after dlclose must fail")
	}
	// Text removed: executing the old address faults.
	m := e.k.Machine
	m.CS = kernel.UCodeSel
	m.DS = kernel.UDataSel
	m.SS = kernel.UDataSel
	m.EIP = fnAddr
	m.Regs[isa.ESP] = kernel.StackTop
	res := m.Run(cpu.RunLimits{MaxInstructions: 10})
	if res.Reason != cpu.StopFault {
		t.Errorf("running unloaded code = %+v, want fault", res)
	}
	if e.d.Dlclose(h) == nil {
		t.Error("double dlclose must fail")
	}
}

func TestDlopenCostNearPaperFigure(t *testing.T) {
	// Paper 5.1: dlopen of the null extension takes about 400 us on a
	// 200 MHz machine = 80,000 cycles. Accept a +-25% band.
	e := newEnv(t)
	obj := isa.MustAssemble("null", `
		.global nullfn
		.text
		nullfn:
			push ebp
			mov ebp, esp
			pop ebp
			ret
	`)
	before := e.k.Clock.Cycles()
	if _, _, err := e.d.Dlopen(obj, loader.ExtensionOptions()); err != nil {
		t.Fatal(err)
	}
	cost := e.k.Clock.Cycles() - before
	us := e.k.Clock.Micros(cost)
	if us < 300 || us > 500 {
		t.Errorf("dlopen = %.1f us, paper reports ~400 us", us)
	}
}

func TestGlobalsVisibleAcrossLoadsAndRemovedOnClose(t *testing.T) {
	e := newEnv(t)
	a := isa.MustAssemble("a", `
		.global af
		.text
		af: ret
	`)
	h, _, _ := e.d.Dlopen(a, loader.LibraryOptions())
	if _, ok := e.d.Resolve("af"); !ok {
		t.Fatal("af not published")
	}
	e.d.Dlclose(h)
	if _, ok := e.d.Resolve("af"); ok {
		t.Error("af still resolvable after dlclose")
	}
}

func TestDefineFeedsResolution(t *testing.T) {
	e := newEnv(t)
	e.d.Define("ext_service", 0x1234_0000)
	if a, ok := e.d.Resolve("ext_service"); !ok || a != 0x1234_0000 {
		t.Error("Define/Resolve broken")
	}
}

// --- libc ---

func loadLibc(e *env) *loader.Image {
	e.t.Helper()
	_, im, err := e.d.Dlopen(loader.Libc(), loader.LibraryOptions())
	if err != nil {
		e.t.Fatal(err)
	}
	return im
}

func TestLibcStrlen(t *testing.T) {
	e := newEnv(t)
	im := loadLibc(e)
	s := e.str("palladium")
	if got := e.call(im.Syms["strlen"], s); got != 9 {
		t.Errorf("strlen = %d, want 9", got)
	}
	empty := e.str("")
	if got := e.call(im.Syms["strlen"], empty); got != 0 {
		t.Errorf("strlen(\"\") = %d", got)
	}
}

func TestLibcStrcpy(t *testing.T) {
	e := newEnv(t)
	im := loadLibc(e)
	src := e.str("hello")
	dst, _ := e.p.MmapPPL1(e.k, 0, 16, true, "dst")
	e.p.Touch(e.k, dst, 16)
	ret := e.call(im.Syms["strcpy"], dst, src)
	if ret != dst {
		t.Errorf("strcpy returned %#x, want dst %#x", ret, dst)
	}
	if got := string(e.read(dst, 5)); got != "hello" {
		t.Errorf("copied = %q", got)
	}
}

func TestLibcStrcmp(t *testing.T) {
	e := newEnv(t)
	im := loadLibc(e)
	a, b, c := e.str("abc"), e.str("abc"), e.str("abd")
	if got := int32(e.call(im.Syms["strcmp"], a, b)); got != 0 {
		t.Errorf("strcmp(abc,abc) = %d", got)
	}
	if got := int32(e.call(im.Syms["strcmp"], a, c)); got >= 0 {
		t.Errorf("strcmp(abc,abd) = %d, want negative", got)
	}
	if got := int32(e.call(im.Syms["strcmp"], c, a)); got <= 0 {
		t.Errorf("strcmp(abd,abc) = %d, want positive", got)
	}
}

func TestLibcMemcpyMemset(t *testing.T) {
	e := newEnv(t)
	im := loadLibc(e)
	src := e.str("0123456789")
	dst, _ := e.p.MmapPPL1(e.k, 0, 32, true, "dst")
	e.p.Touch(e.k, dst, 32)
	e.call(im.Syms["memcpy"], dst, src, 10)
	if got := string(e.read(dst, 10)); got != "0123456789" {
		t.Errorf("memcpy = %q", got)
	}
	e.call(im.Syms["memset"], dst, uint32('x'), 4)
	if got := string(e.read(dst, 10)); got != "xxxx456789" {
		t.Errorf("memset = %q", got)
	}
}

func TestLibcBufferingRoutineStateful(t *testing.T) {
	// bufput keeps state in libc's data section: two calls advance
	// the counter. (At SPL 3 with a promoted app this data would be
	// PPL 0 and the call would fault — that scenario is exercised in
	// the core package's tests.)
	e := newEnv(t)
	im := loadLibc(e)
	if got := e.call(im.Syms["bufput"], uint32('a')); got != 1 {
		t.Errorf("first bufput = %d", got)
	}
	if got := e.call(im.Syms["bufput"], uint32('b')); got != 2 {
		t.Errorf("second bufput = %d", got)
	}
	if got := e.call(im.Syms["bufcount"]); got != 2 {
		t.Errorf("bufcount = %d", got)
	}
}

func TestImageLookupAndExterns(t *testing.T) {
	obj := isa.MustAssemble("x", `
		.text
		f: call g
		ret
	`)
	if ext := obj.Externs(); len(ext) != 1 || ext[0] != "g" {
		t.Errorf("externs = %v", ext)
	}
}
