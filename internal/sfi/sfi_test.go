package sfi_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/sfi"
)

const (
	regionBase = 0x2000_0000
	regionSize = 0x0001_0000 // 64 KB, power of two
	magicRet   = 0xB000_0000
)

type env struct {
	t *testing.T
	k *kernel.Kernel
	p *kernel.Process
	d *loader.DL
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k, err := kernel.New(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	// Disable the kernel timer: these tests compare cycle spans of
	// short instruction sequences, and a 180-cycle timer tick landing
	// inside one span would skew the overhead ratios. The timer path
	// itself is covered by the cpu and kernel suites.
	k.Machine.TickCycles = 0
	p, err := k.CreateProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(k, kernel.StackTop-2*mem.PageSize, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// The sandbox region, plus canary pages on both sides.
	if _, err := p.MmapPPL1(k, regionBase-mem.PageSize, regionSize+2*mem.PageSize, true, "sfi-region"); err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(k, regionBase-mem.PageSize, regionSize+2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	return &env{t: t, k: k, p: p, d: loader.NewDL(k, p)}
}

func (e *env) load(obj *isa.Object) *loader.Image {
	e.t.Helper()
	_, im, err := e.d.Dlopen(obj, loader.ExtensionOptions())
	if err != nil {
		e.t.Fatal(err)
	}
	return im
}

func (e *env) call(entry uint32, args ...uint32) (uint32, float64) {
	e.t.Helper()
	m := e.k.Machine
	m.CS = kernel.UCodeSel
	m.DS = kernel.UDataSel
	m.SS = kernel.UDataSel
	m.EIP = entry
	m.Regs[isa.ESP] = kernel.StackTop
	for i := len(args) - 1; i >= 0; i-- {
		m.Push(args[i])
	}
	m.Push(magicRet)
	m.SetBreak(magicRet)
	defer m.ClearBreak(magicRet)
	start := e.k.Clock.Cycles()
	res := m.Run(cpu.RunLimits{MaxInstructions: 1_000_000})
	if res.Reason != cpu.StopBreak {
		e.t.Fatalf("run: %+v err=%v", res, res.Err)
	}
	return m.Reg(isa.EAX), e.k.Clock.Cycles() - start
}

func cfg() sfi.Config {
	return sfi.Config{DataBase: regionBase, DataSize: regionSize}
}

func TestRewritePreservesSemanticsInRegion(t *testing.T) {
	// A store/load pair addressed inside the region behaves the same
	// before and after rewriting.
	src := fmt.Sprintf(`
		.global f
		.text
		f:
			mov eax, [esp+4]
			mov ecx, %d
			mov [ecx], eax
			mov eax, [ecx]
			add eax, 1
			ret
	`, regionBase+0x100)
	obj := isa.MustAssemble("m", src)
	re, ov, err := sfi.Rewrite(obj, sfi.Config{DataBase: regionBase, DataSize: regionSize, GuardReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if ov.GuardedAccesses != 2 {
		t.Errorf("guarded = %d, want 2 (one store, one load)", ov.GuardedAccesses)
	}
	e := newEnv(t)
	im := e.load(re)
	got, _ := e.call(im.Syms["f"], 41)
	if got != 42 {
		t.Errorf("rewritten f(41) = %d", got)
	}
}

func TestRewriteForcesEscapingWritesIntoRegion(t *testing.T) {
	// The extension tries to write at an arbitrary address passed in;
	// after rewriting, the write must land inside the region.
	obj := isa.MustAssemble("m", `
		.global poke
		.text
		poke:
			mov ecx, [esp+4]
			mov [ecx], 0x5A
			ret
	`)
	re, _, err := sfi.Rewrite(obj, cfg())
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t)
	im := e.load(re)
	evil := uint32(regionBase - 4) // just below the region (canary page)
	e.call(im.Syms["poke"], evil)
	canary, _ := e.k.CopyFromUser(e.p, regionBase-4, 1)
	if canary[0] != 0 {
		t.Error("sandboxed write escaped below the region")
	}
	// The masked write landed inside: (evil & (size-1)) | base.
	masked := (evil & (regionSize - 1)) | regionBase
	inside, _ := e.k.CopyFromUser(e.p, masked, 1)
	if inside[0] != 0x5A {
		t.Errorf("masked write missing at %#x", masked)
	}
}

func TestWriteProtectModeLeavesLoadsAlone(t *testing.T) {
	obj := isa.MustAssemble("m", `
		.global f
		.text
		f:
			mov eax, [0x30000000]   ; read outside the region
			ret
	`)
	re, ov, err := sfi.Rewrite(obj, cfg()) // write protection only
	if err != nil {
		t.Fatal(err)
	}
	if ov.GuardedAccesses != 0 {
		t.Errorf("write-protect mode guarded %d loads", ov.GuardedAccesses)
	}
	_ = re
}

func TestScratchRegisterConflictDetected(t *testing.T) {
	obj := isa.MustAssemble("m", `
		.global f
		.text
		f:
			mov edi, 1
			ret
	`)
	if _, _, err := sfi.Rewrite(obj, cfg()); err == nil ||
		!strings.Contains(err.Error(), "dedicated register") {
		t.Errorf("err = %v", err)
	}
}

func TestBadRegionRejected(t *testing.T) {
	obj := isa.MustAssemble("m", ".global f\n.text\nf: ret")
	if _, _, err := sfi.Rewrite(obj, sfi.Config{DataBase: regionBase, DataSize: 1000}); err == nil {
		t.Error("non-power-of-two size must be rejected")
	}
	if _, _, err := sfi.Rewrite(obj, sfi.Config{DataBase: 0x2000_1000, DataSize: regionSize}); err == nil {
		t.Error("unaligned base must be rejected")
	}
}

func TestBranchTargetsSurviveRewriting(t *testing.T) {
	// A loop with a guarded store inside: label offsets shift but the
	// relocated branch still lands correctly.
	src := fmt.Sprintf(`
		.global f
		.text
		f:
			mov eax, 0
			mov ecx, 5
		loop:
			mov edx, %d
			mov [edx], ecx
			add eax, ecx
			dec ecx
			jne loop
			ret
	`, regionBase+0x200)
	obj := isa.MustAssemble("m", src)
	re, _, err := sfi.Rewrite(obj, cfg())
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t)
	im := e.load(re)
	got, _ := e.call(im.Syms["f"])
	if got != 15 {
		t.Errorf("loop sum = %d, want 15", got)
	}
}

func TestOverheadProportionalToMemoryOps(t *testing.T) {
	// The paper's Section 2.1 point: SFI overhead scales with guarded
	// instruction density (1%-220% across workloads).
	build := func(memOps, aluOps int) *isa.Object {
		var b strings.Builder
		b.WriteString(".global f\n.text\nf:\n")
		fmt.Fprintf(&b, "\tmov ecx, %d\n", regionBase+64)
		b.WriteString("\tmov eax, 0\n")
		for i := 0; i < memOps; i++ {
			b.WriteString("\tmov [ecx], eax\n")
		}
		for i := 0; i < aluOps; i++ {
			b.WriteString("\tadd eax, 1\n")
		}
		b.WriteString("\tret\n")
		return isa.MustAssemble("m", b.String())
	}
	overheadPct := func(memOps, aluOps int) float64 {
		obj := build(memOps, aluOps)
		e1 := newEnv(t)
		baseIm := e1.load(obj)
		e1.call(baseIm.Syms["f"])
		_, baseCyc := e1.call(baseIm.Syms["f"])
		re, _, err := sfi.Rewrite(obj, cfg())
		if err != nil {
			t.Fatal(err)
		}
		e2 := newEnv(t)
		reIm := e2.load(re)
		// Warm the TLB with a first call, as done for the baseline
		// above, so both spans measure pure instruction overhead.
		e2.call(reIm.Syms["f"])
		_, reCyc := e2.call(reIm.Syms["f"])
		return (reCyc - baseCyc) / baseCyc * 100
	}
	dense := overheadPct(40, 0)  // memory-bound extension
	sparse := overheadPct(2, 80) // compute-bound extension
	if dense < 20 {
		t.Errorf("dense overhead = %.1f%%, expected substantial", dense)
	}
	if sparse > dense/3 {
		t.Errorf("sparse overhead %.1f%% not clearly below dense %.1f%%", sparse, dense)
	}
	if sparse < 0.5 {
		t.Errorf("sparse overhead %.1f%% suspiciously low", sparse)
	}
}

func TestSandboxNeverEscapesProperty(t *testing.T) {
	// Property: for random addresses, the masked store never touches
	// memory outside [base, base+size).
	e := newEnv(t)
	obj := isa.MustAssemble("m", `
		.global poke
		.text
		poke:
			mov ecx, [esp+4]
			mov [ecx], 0x77
			ret
	`)
	re, _, err := sfi.Rewrite(obj, cfg())
	if err != nil {
		t.Fatal(err)
	}
	im := e.load(re)
	f := func(addr uint32) bool {
		// Track via the canary bytes just outside the region.
		e.call(im.Syms["poke"], addr)
		lo, _ := e.k.CopyFromUser(e.p, regionBase-8, 8)
		hi, _ := e.k.CopyFromUser(e.p, regionBase+regionSize, 8)
		for _, b := range append(lo, hi...) {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
