// Package sfi implements the software-fault-isolation baseline of
// Section 2.1 (Wahbe et al.): a binary rewriter that sandboxes an
// extension's memory accesses by inserting address-masking sequences,
// so that every guarded access lands inside the extension's dedicated
// region regardless of what address the code computed.
//
// The characteristic trade-off reproduced here (and measured by the
// SFI ablation benchmark) is that SFI's overhead is paid per guarded
// instruction — proportional to the amount of extension code executed
// — whereas Palladium's hardware checks cost nothing per instruction
// and a fixed amount per domain crossing.
package sfi

import (
	"fmt"

	"repro/internal/isa"
)

// Config describes the sandbox.
type Config struct {
	// DataBase/DataSize bound the writable region. DataSize must be a
	// power of two and DataBase aligned to it, so masking is two ALU
	// instructions.
	DataBase uint32
	DataSize uint32
	// GuardReads extends sandboxing to loads (read-write protection);
	// false guards only writes (write protection), the cheaper mode
	// the paper mentions.
	GuardReads bool
	// ScratchReg is the dedicated register holding sandboxed
	// addresses; the input program must not use it. EDI by default.
	ScratchReg isa.Reg
}

// Overhead counts what the rewriter inserted.
type Overhead struct {
	GuardedAccesses int
	InsertedInstrs  int
	TotalInstrs     int
}

// Rewrite returns a sandboxed clone of obj. Every guarded memory
// operand is replaced by an access through the scratch register, which
// is forced into [DataBase, DataBase+DataSize) by an and/or pair:
//
//	lea  edi, [original operand]
//	and  edi, DataSize-1
//	or   edi, DataBase
//	op   ..., [edi]
//
// Relocation indices are remapped to the shifted instruction stream.
func Rewrite(obj *isa.Object, cfg Config) (*isa.Object, Overhead, error) {
	var ov Overhead
	if cfg.ScratchReg == 0 {
		cfg.ScratchReg = isa.EDI
	}
	if cfg.DataSize == 0 || cfg.DataSize&(cfg.DataSize-1) != 0 {
		return nil, ov, fmt.Errorf("sfi: region size %#x not a power of two", cfg.DataSize)
	}
	if cfg.DataBase&(cfg.DataSize-1) != 0 {
		return nil, ov, fmt.Errorf("sfi: region base %#x not aligned to size", cfg.DataBase)
	}
	if err := checkScratchFree(obj, cfg.ScratchReg); err != nil {
		return nil, ov, err
	}

	out := obj.Clone()
	var text []isa.Instr
	indexMap := make([]int, len(out.Text)) // old index -> new index
	// relocMove maps (old index, old slot) adjustments for operands
	// that migrate onto the inserted lea.
	type slotKey struct {
		idx  int
		slot isa.RelocSlot
	}
	relocMove := make(map[slotKey]slotKey)

	guard := func(op *isa.Operand, oldIdx int, oldSlot isa.RelocSlot) {
		ov.GuardedAccesses++
		ov.InsertedInstrs += 3
		leaIdx := len(text)
		text = append(text,
			isa.Instr{Op: isa.LEA, Dst: isa.R(cfg.ScratchReg), Src: *op, Size: 4},
			isa.Instr{Op: isa.AND, Dst: isa.R(cfg.ScratchReg), Src: isa.I(int32(cfg.DataSize - 1)), Size: 4},
			isa.Instr{Op: isa.OR, Dst: isa.R(cfg.ScratchReg), Src: isa.I(int32(cfg.DataBase)), Size: 4},
		)
		relocMove[slotKey{oldIdx, oldSlot}] = slotKey{leaIdx, isa.RelSrcDisp}
		*op = isa.M(cfg.ScratchReg, 0)
	}

	for i := range out.Text {
		ins := out.Text[i]
		// Stack-relative accesses are left alone: the stack pointer
		// is kept in-region by the loader and guard pages, as in the
		// original SFI design.
		dstMem := ins.Dst.Kind == isa.KindMem && ins.Dst.Base != isa.ESP && ins.Dst.Base != isa.EBP
		srcMem := ins.Src.Kind == isa.KindMem && ins.Src.Base != isa.ESP && ins.Src.Base != isa.EBP
		writesDst := opWritesDst(ins.Op)
		readsDst := opReadsDst(ins.Op)

		if dstMem && (writesDst || (cfg.GuardReads && readsDst)) {
			guard(&ins.Dst, i, isa.RelDstDisp)
		}
		if srcMem && cfg.GuardReads {
			guard(&ins.Src, i, isa.RelSrcDisp)
		}
		indexMap[i] = len(text)
		text = append(text, ins)
	}
	ov.TotalInstrs = len(text)

	// Remap relocations and symbol offsets.
	for ri := range out.Relocs {
		r := &out.Relocs[ri]
		if r.Slot == isa.RelData {
			continue
		}
		if mv, ok := relocMove[slotKey{r.Index, r.Slot}]; ok {
			r.Index, r.Slot = mv.idx, mv.slot
			continue
		}
		r.Index = indexMap[r.Index]
	}
	for _, s := range out.Symbols {
		if s.Section == isa.SecText {
			s.Off = uint32(indexMap[s.Off/isa.InstrSlot]) * isa.InstrSlot
		}
	}
	// Branch targets: intra-object branches are symbol-relocated, so
	// the remapped symbol offsets cover them (the assembler emits
	// relocs for all label references).
	out.Text = text
	return out, ov, nil
}

func checkScratchFree(obj *isa.Object, r isa.Reg) error {
	uses := func(o isa.Operand) bool {
		return (o.Kind == isa.KindReg && o.Reg == r) ||
			(o.Kind == isa.KindMem && (o.Base == r || o.Index == r))
	}
	for i, ins := range obj.Text {
		if uses(ins.Dst) || uses(ins.Src) {
			return fmt.Errorf("sfi: instruction %d (%v) uses the dedicated register %v", i, ins, r)
		}
	}
	return nil
}

// opWritesDst reports whether the opcode writes its destination
// operand.
func opWritesDst(op isa.Op) bool {
	switch op {
	case isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.SHL, isa.SHR, isa.SAR,
		isa.XCHG, isa.POP:
		return true
	}
	return false
}

// opReadsDst reports whether the opcode reads its destination operand.
func opReadsDst(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST,
		isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.SHL, isa.SHR, isa.SAR,
		isa.XCHG, isa.PUSH:
		return true
	}
	return false
}
