package mmu

import (
	"repro/internal/cycles"
	"repro/internal/mem"
)

// Trace-scoped batched accounting.
//
// The CPU's trace tier (tier 3) executes a fused superblock with hot
// state in locals and commits accounting once per exit. Its memory
// accesses still perform the same segment- and page-level checks as
// tier 1/2, with one difference in *bookkeeping*: a page-level check
// that is guaranteed to hit the TLB only increments a local batch
// counter, which the trace adds to the TLB's hit counter wholesale at
// commit (TLB.AddHits). Misses cannot be batched — they charge a page
// walk to the simulated clock and fill the TLB — so they are taken
// live through the same code path CheckPage uses. The observable
// sequence of hits, misses, charges and faults is therefore exactly
// the uncached interpreter's; only the moment the hit counter moves
// differs, which no simulated metric can see.

// PageSlot is a trace-scoped single-entry page-translation cache. The
// trace tier binds one to each memory operand of a fused trace; seq is
// the owning trace's dispatch sequence number, so a slot is valid only
// within the dispatch that filled it. Within one trace dispatch no
// hardware event can evict or reshape a TLB entry (anything that could
// — CR3 load, invlpg, descriptor mutation, a timer hook running — ends
// the dispatch first), so a slot hit is a guaranteed TLB hit with the
// same entry bits the filling check saw, and is accounted as exactly
// one TLB hit through the batch counter.
type PageSlot struct {
	seq   uint32
	page  uint32
	frame uint32
}

// AddHits credits n TLB hits at once: the commit half of the trace
// tier's batched fetch/operand accounting. Each credited hit stands
// for one page-level check that was individually guaranteed to hit
// (see PageSlot and the CPU's trace fetch accounting); the counter
// effect is that of n hitting lookups — hits+n, misses+0, no charge.
func (t *TLB) AddHits(n uint64) { t.hits += n }

// AddElided credits n elided segment-limit checks at once: the commit
// half of the trace tier's batched verified-access accounting. Each
// credited elision stands for one warm verified translation whose
// limit check the load-time proof made redundant, exactly as
// TranslateVerified counts them one at a time.
func (m *MMU) AddElided(n uint64) { m.elided += n }

// Base reports the probe's cached segment base; Limit its cached
// limit; Elide whether the load-time verifier's bound lets warm
// translations skip the limit check. The CPU's trace tier mirrors
// these into its per-op dispatch-scoped fast path after a successful
// TranslateBatched, so the probe remains the single source of truth.
func (p *SegProbe) Base() uint32  { return p.base }
func (p *SegProbe) Limit() uint32 { return p.limit }
func (p *SegProbe) Elide() bool   { return p.elide }

// CheckPageBatched is CheckPage with hit-side accounting deferred to
// the caller's batch counter: a TLB hit increments *batch instead of
// the TLB's hit counter (the trace commit settles the difference via
// AddHits), while the miss path — page-walk charge, miss count, TLB
// fill — and every privilege check and fault identity are exactly
// CheckPage's, taken live.
func (m *MMU) CheckPageBatched(linear uint32, acc Access, cpl int, sel Selector, off uint32, batch *uint64) (uint32, *Fault) {
	page := linear &^ uint32(mem.PageMask)
	e, ok := m.tlb.peek(page)
	if ok {
		*batch++
	} else {
		m.tlb.misses++
		if m.space == nil {
			return 0, fault(PF, sel, off, linear, acc, cpl, "no address space")
		}
		m.clock.Charge(m.model, cycles.TLBMiss)
		leaf := m.space.Lookup(linear)
		if !leaf.Present() {
			return 0, fault(PF, sel, off, linear, acc, cpl, "page not present")
		}
		e = tlbEntry{frame: leaf.Frame(), writable: leaf.Writable(), user: leaf.User()}
		m.tlb.insert(page, e)
	}
	if cpl == 3 && !e.user {
		return 0, fault(PF, sel, off, linear, acc, cpl, "page privilege violation (PPL 0 page at CPL 3)")
	}
	if acc == Write && !e.writable {
		if cpl == 3 || m.WriteProtect {
			return 0, fault(PF, sel, off, linear, acc, cpl, "write to read-only page")
		}
	}
	return e.frame | (linear & mem.PageMask), nil
}

// TranslateBatched is TranslateProbed/TranslateVerified with the
// page-level half running through CheckPageBatched and a PageSlot
// short-circuit: when the probe is warm and the operand lands on the
// page this very operand translated earlier in the same trace dispatch
// (pc.seq == seq), the result is the cached frame and one batched hit —
// the permission outcome is guaranteed to repeat (same entry bits,
// same access kind, same CPL, and nothing can have touched the TLB or
// the descriptor mid-dispatch). proved carries the operand's load-time
// verifier fact exactly as TranslateVerified does; bound is ignored
// when proved is false.
func (m *MMU) TranslateBatched(p *SegProbe, proved bool, bound uint32, sel Selector, off, size uint32, acc Access, cpl int, pc *PageSlot, seq uint32, batch *uint64) (uint32, *Fault) {
	if p.valid && p.sel == sel && p.acc == acc && int(p.cpl) == cpl && p.gen == m.segGen {
		if p.elide {
			m.elided++
		} else {
			end := off + size - 1
			if end < off || end > p.limit {
				return 0, fault(GP, sel, off, 0, acc, cpl, "segment limit violation")
			}
		}
		linear := p.base + off
		if page := linear &^ uint32(mem.PageMask); pc.seq == seq && pc.page == page {
			*batch++
			return pc.frame | (linear & mem.PageMask), nil
		}
		pa, f := m.CheckPageBatched(linear, acc, cpl, sel, off, batch)
		if f != nil {
			return 0, f
		}
		pc.seq, pc.page, pc.frame = seq, linear&^uint32(mem.PageMask), pa&^uint32(mem.PageMask)
		return pa, nil
	}
	linear, f := m.CheckSegment(sel, off, size, acc, cpl)
	if f != nil {
		p.valid = false
		return 0, f
	}
	d := m.Descriptor(sel)
	*p = SegProbe{gen: m.segGen, sel: sel, acc: acc, cpl: int8(cpl), valid: true, base: d.Base, limit: d.Limit,
		elide: proved && bound <= d.Limit}
	pa, f := m.CheckPageBatched(linear, acc, cpl, sel, off, batch)
	if f != nil {
		return 0, f
	}
	pc.seq, pc.page, pc.frame = seq, linear&^uint32(mem.PageMask), pa&^uint32(mem.PageMask)
	return pa, nil
}
