package mmu

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/mem"
)

// testMMU builds an MMU with the canonical Palladium GDT layout:
//
//	1: kernel code   base 3G   limit 1G-1   DPL 0
//	2: kernel data   base 3G   limit 1G-1   DPL 0
//	3: user code     base 0    limit 3G-1   DPL 3
//	4: user data     base 0    limit 3G-1   DPL 3
//	5: kernel ext code base 3.125G limit 16M-1 DPL 1
//	6: kernel ext data base 3.125G limit 16M-1 DPL 1
func testMMU(t *testing.T) (*MMU, *AddressSpace) {
	t.Helper()
	phys := mem.NewPhysical()
	clock := cycles.NewClock(200)
	m := New(phys, 32, clock, cycles.Measured())
	const kBase, kLim = 0xC000_0000, 0x3FFF_FFFF
	const uLim = 0xBFFF_FFFF
	const xBase, xLim = 0xC800_0000, 0x00FF_FFFF
	m.GDT.Set(1, Descriptor{Kind: SegCode, Base: kBase, Limit: kLim, DPL: 0, Present: true, Readable: true})
	m.GDT.Set(2, Descriptor{Kind: SegData, Base: kBase, Limit: kLim, DPL: 0, Present: true, Writable: true})
	m.GDT.Set(3, Descriptor{Kind: SegCode, Base: 0, Limit: uLim, DPL: 3, Present: true, Readable: true})
	m.GDT.Set(4, Descriptor{Kind: SegData, Base: 0, Limit: uLim, DPL: 3, Present: true, Writable: true})
	m.GDT.Set(5, Descriptor{Kind: SegCode, Base: xBase, Limit: xLim, DPL: 1, Present: true, Readable: true})
	m.GDT.Set(6, Descriptor{Kind: SegData, Base: xBase, Limit: xLim, DPL: 1, Present: true, Writable: true})

	alloc := mem.NewFrameAllocator(0, 1024*mem.PageSize)
	as, err := NewAddressSpace(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadCR3(as)
	return m, as
}

func sel(idx, rpl int) Selector { return MakeSelector(idx, false, rpl) }

func mapPage(t *testing.T, as *AddressSpace, linear uint32, writable, user bool) {
	t.Helper()
	frame := uint32(0x40000) + (linear>>12)%512*mem.PageSize
	if err := as.Map(linear, frame, writable, user); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorBits(t *testing.T) {
	s := MakeSelector(5, true, 3)
	if s.Index() != 5 || !s.IsLDT() || s.RPL() != 3 {
		t.Errorf("selector round trip failed: %v", s)
	}
	if !Selector(2).IsNull() {
		t.Error("index 0 must be null regardless of RPL")
	}
	if MakeSelector(1, false, 0).IsNull() {
		t.Error("index 1 is not null")
	}
}

func TestSegmentLimitCheck(t *testing.T) {
	m, as := testMMU(t)
	// Kernel extension segment: 16 MB limit.
	mapPage(t, as, 0xC800_0000, true, false)
	if _, f := m.Translate(sel(6, 1), 0, 4, Write, 1); f != nil {
		t.Fatalf("in-limit access faulted: %v", f)
	}
	// One past the limit: the segment-limit check that confines
	// Palladium kernel extensions.
	_, f := m.Translate(sel(6, 1), 0x0100_0000, 4, Write, 1)
	if f == nil || f.Kind != GP {
		t.Fatalf("limit violation = %v, want #GP", f)
	}
	// Straddling the limit by one byte must also fault.
	_, f = m.Translate(sel(6, 1), 0x00FF_FFFD, 4, Write, 1)
	if f == nil || f.Kind != GP {
		t.Fatalf("straddling access = %v, want #GP", f)
	}
}

func TestSegmentPrivilegeCheck(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0xC000_1000, true, false)
	// CPL 3 touching kernel data (DPL 0) fails at the segment level.
	_, f := m.Translate(sel(2, 3), 0x1000, 4, Read, 3)
	if f == nil || f.Kind != GP || !strings.Contains(f.Reason, "privilege") {
		t.Fatalf("CPL3 -> kernel data = %v, want privilege #GP", f)
	}
	// Even with RPL 0 in the selector, CPL 3 still fails (max rule).
	_, f = m.Translate(sel(2, 0), 0x1000, 4, Read, 3)
	if f == nil || f.Kind != GP {
		t.Fatalf("CPL3 RPL0 -> kernel data = %v, want #GP", f)
	}
	// CPL 0 succeeds.
	if _, f := m.Translate(sel(2, 0), 0x1000, 4, Write, 0); f != nil {
		t.Fatalf("CPL0 -> kernel data faulted: %v", f)
	}
	// CPL 1 (kernel extension) cannot reach kernel data either.
	_, f = m.Translate(sel(2, 1), 0x1000, 4, Read, 1)
	if f == nil || f.Kind != GP {
		t.Fatalf("CPL1 -> kernel DPL0 data = %v, want #GP", f)
	}
}

func TestNullAndBadSelectors(t *testing.T) {
	m, _ := testMMU(t)
	if _, f := m.Translate(Selector(0), 0, 4, Read, 0); f == nil || f.Kind != GP {
		t.Error("null selector must #GP")
	}
	if _, f := m.Translate(sel(31, 0), 0, 4, Read, 0); f == nil || f.Kind != GP {
		t.Error("empty descriptor must #GP")
	}
	if _, f := m.Translate(MakeSelector(1, true, 0), 0, 4, Read, 0); f == nil || f.Kind != GP {
		t.Error("LDT selector without an LDT must #GP")
	}
}

func TestSegmentTypeChecks(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_1000, true, true)
	// Write to a code segment.
	if _, f := m.Translate(sel(3, 3), 0x1000, 4, Write, 3); f == nil || f.Kind != GP {
		t.Error("write via code segment must #GP")
	}
	// Execute from a data segment.
	if _, f := m.Translate(sel(4, 3), 0x1000, 4, Execute, 3); f == nil || f.Kind != GP {
		t.Error("fetch from data segment must #GP")
	}
	// Read through a readable code segment is allowed.
	if _, f := m.Translate(sel(3, 3), 0x1000, 4, Read, 3); f != nil {
		t.Errorf("read via readable code segment faulted: %v", f)
	}
	// Execute-only code cannot be read.
	m.GDT.Set(7, Descriptor{Kind: SegCode, Base: 0, Limit: 0xBFFF_FFFF, DPL: 3, Present: true})
	if _, f := m.Translate(sel(7, 3), 0x1000, 4, Read, 3); f == nil || f.Kind != GP {
		t.Error("read from execute-only segment must #GP")
	}
}

func TestNonConformingCodeDPLEqualsCPL(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_2000, false, true)
	// CPL 2 fetching through a DPL 3 code segment faults: transfers
	// between levels must go through gates.
	if _, f := m.Translate(sel(3, 3), 0x2000, 4, Execute, 2); f == nil || f.Kind != GP {
		t.Error("CPL2 fetch from DPL3 non-conforming code must #GP")
	}
	if _, f := m.Translate(sel(3, 3), 0x2000, 4, Execute, 3); f != nil {
		t.Errorf("CPL3 fetch from DPL3 code faulted: %v", f)
	}
}

func TestPagePrivilegeCheck(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_3000, true, false) // PPL 0 page in user range
	mapPage(t, as, 0x0000_4000, true, true)  // PPL 1 page

	// The Palladium user-extension check: CPL 3 cannot touch a PPL 0
	// page even though the segment check passes.
	_, f := m.Translate(sel(4, 3), 0x3000, 4, Read, 3)
	if f == nil || f.Kind != PF {
		t.Fatalf("CPL3 -> PPL0 page = %v, want #PF", f)
	}
	// CPL 2 (the promoted extensible application) can.
	if _, f := m.Translate(sel(4, 2), 0x3000, 4, Write, 2); f != nil {
		t.Fatalf("CPL2 -> PPL0 page faulted: %v", f)
	}
	// CPL 3 on a PPL 1 page is fine.
	if _, f := m.Translate(sel(4, 3), 0x4000, 4, Write, 3); f != nil {
		t.Fatalf("CPL3 -> PPL1 page faulted: %v", f)
	}
}

func TestPageWriteProtection(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_5000, false, true) // read-only PPL 1 (the GOT page)
	if _, f := m.Translate(sel(4, 3), 0x5000, 4, Write, 3); f == nil || f.Kind != PF {
		t.Error("CPL3 write to read-only page must #PF (GOT protection)")
	}
	if _, f := m.Translate(sel(4, 3), 0x5000, 4, Read, 3); f != nil {
		t.Error("CPL3 read of read-only page must succeed")
	}
	// Supervisor write with WP=1 faults; with WP=0 succeeds.
	if _, f := m.Translate(sel(4, 2), 0x5000, 4, Write, 2); f == nil {
		t.Error("supervisor write with WP=1 must fault")
	}
	m.WriteProtect = false
	m.InvalidatePage(0x5000)
	if _, f := m.Translate(sel(4, 2), 0x5000, 4, Write, 2); f != nil {
		t.Errorf("supervisor write with WP=0 faulted: %v", f)
	}
}

func TestNotPresentPage(t *testing.T) {
	m, _ := testMMU(t)
	_, f := m.Translate(sel(4, 3), 0x0000_6000, 4, Read, 3)
	if f == nil || f.Kind != PF || !strings.Contains(f.Reason, "not present") {
		t.Fatalf("unmapped page = %v, want not-present #PF", f)
	}
}

func TestLinearAddressFormation(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0xC800_0000, true, false)
	pa, f := m.Translate(sel(6, 1), 0x123, 4, Read, 1)
	if f != nil {
		t.Fatal(f)
	}
	// Offset 0x123 in a segment based at 0xC8000000 lands in the
	// frame mapped for that linear page, at page offset 0x123.
	want := as.Lookup(0xC800_0000).Frame() | 0x123
	if pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
}

func TestTLBCaching(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_7000, true, true)
	before := m.Clock().Cycles()
	if _, f := m.Translate(sel(4, 3), 0x7000, 4, Read, 3); f != nil {
		t.Fatal(f)
	}
	missCost := m.Clock().Cycles() - before
	if missCost != m.Model().Cost(cycles.TLBMiss) {
		t.Errorf("first access cost %v, want a TLB miss (%v)", missCost, m.Model().Cost(cycles.TLBMiss))
	}
	before = m.Clock().Cycles()
	if _, f := m.Translate(sel(4, 3), 0x7004, 4, Read, 3); f != nil {
		t.Fatal(f)
	}
	if got := m.Clock().Cycles() - before; got != 0 {
		t.Errorf("TLB hit charged %v cycles, want 0", got)
	}
	hits, misses, _ := m.TLB().Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestTLBFlushOnCR3Load(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_8000, true, true)
	if _, f := m.Translate(sel(4, 3), 0x8000, 4, Read, 3); f != nil {
		t.Fatal(f)
	}
	if m.TLB().Len() == 0 {
		t.Fatal("expected a TLB entry")
	}
	m.LoadCR3(as)
	if m.TLB().Len() != 0 {
		t.Error("CR3 load must flush the TLB")
	}
}

func TestTLBStaleEntryInvalidation(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_9000, true, true)
	if _, f := m.Translate(sel(4, 3), 0x9000, 4, Write, 3); f != nil {
		t.Fatal(f)
	}
	// Change the PPL under the TLB's feet, as init_PL does; without
	// invalidation the stale entry would still allow access.
	as.SetUser(0x9000, false)
	if _, f := m.Translate(sel(4, 3), 0x9000, 4, Write, 3); f != nil {
		t.Fatal("stale TLB entry should still hit (models hardware)")
	}
	m.InvalidatePage(0x9000)
	if _, f := m.Translate(sel(4, 3), 0x9000, 4, Write, 3); f == nil || f.Kind != PF {
		t.Error("after invlpg the PPL0 page must #PF at CPL3")
	}
}

func TestSetUserAndSetWritable(t *testing.T) {
	_, as := testMMU(t)
	mapPage(t, as, 0x0000_A000, true, true)
	if !as.SetUser(0xA000, false) {
		t.Fatal("SetUser on mapped page returned false")
	}
	if as.Lookup(0xA000).User() {
		t.Error("page still PPL1 after SetUser(false)")
	}
	if !as.SetWritable(0xA000, false) {
		t.Fatal("SetWritable on mapped page returned false")
	}
	if as.Lookup(0xA000).Writable() {
		t.Error("page still writable")
	}
	if as.SetUser(0xDEAD_0000, false) {
		t.Error("SetUser on unmapped page must return false")
	}
}

func TestClonePageDirIndependence(t *testing.T) {
	m, as := testMMU(t)
	mapPage(t, as, 0x0000_B000, true, false)
	clone, err := as.ClonePageDir()
	if err != nil {
		t.Fatal(err)
	}
	// Same frame, same permissions (fork inheritance).
	if clone.Lookup(0xB000) != as.Lookup(0xB000) {
		t.Fatal("clone leaf differs from parent")
	}
	// Permission change in the clone must not affect the parent.
	clone.SetUser(0xB000, true)
	if as.Lookup(0xB000).User() {
		t.Error("parent page table mutated through clone")
	}
	_ = m
}

func TestVisitMapped(t *testing.T) {
	_, as := testMMU(t)
	mapPage(t, as, 0x0000_C000, true, true)
	mapPage(t, as, 0x4000_0000, false, false)
	got := map[uint32]bool{}
	as.VisitMapped(func(lin uint32, e PTE) { got[lin] = true })
	if !got[0xC000] || !got[0x4000_0000] || len(got) != 2 {
		t.Errorf("VisitMapped saw %v", got)
	}
}

func TestPTERoundTripProperty(t *testing.T) {
	f := func(frame uint32, p, w, u bool) bool {
		frame &^= uint32(mem.PageMask)
		e := MakePTE(frame, p, w, u)
		return e.Frame() == frame && e.Present() == p && e.Writable() == w && e.User() == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateConsistencyProperty(t *testing.T) {
	// For any mapped page and in-page offset, translation preserves
	// the page offset and lands in the mapped frame.
	m, as := testMMU(t)
	mapPage(t, as, 0x0001_0000, true, true)
	frame := as.Lookup(0x0001_0000).Frame()
	f := func(off uint16) bool {
		o := uint32(off) % (mem.PageSize - 4)
		pa, fault := m.Translate(sel(4, 3), 0x0001_0000+o, 4, Read, 3)
		return fault == nil && pa == frame|o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPL3NeverReachesSupervisorPagesProperty(t *testing.T) {
	// Property: no CPL-3 access to any supervisor page succeeds, for
	// any offset and access type — the invariant Palladium's user
	// extension confinement rests on.
	m, as := testMMU(t)
	base := uint32(0x0002_0000)
	for i := uint32(0); i < 8; i++ {
		mapPage(t, as, base+i*mem.PageSize, true, false)
	}
	f := func(off uint32, writeAccess bool) bool {
		o := off % (8*mem.PageSize - 4)
		acc := Read
		if writeAccess {
			acc = Write
		}
		_, fault := m.Translate(sel(4, 3), base+o, 4, acc, 3)
		return fault != nil && fault.Kind == PF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDescriptorContains(t *testing.T) {
	d := Descriptor{Limit: 0xFFF}
	cases := []struct {
		off, size uint32
		want      bool
	}{
		{0, 1, true},
		{0xFFF, 1, true},
		{0xFFF, 2, false},
		{0x1000, 1, false},
		{0xFFC, 4, true},
		{0xFFD, 4, false},
		{0xFFFF_FFFF, 4, false}, // wraparound
	}
	for _, c := range cases {
		if got := d.Contains(c.off, c.size); got != c.want {
			t.Errorf("Contains(%#x,%d) = %v, want %v", c.off, c.size, got, c.want)
		}
	}
}

func TestTableAllocAndClear(t *testing.T) {
	tb := NewTable("t", 4)
	i := tb.AllocIndex()
	if i != 1 {
		t.Fatalf("first free index = %d, want 1", i)
	}
	tb.Set(i, Descriptor{Kind: SegData, Present: true})
	if tb.AllocIndex() != 2 {
		t.Error("next free index should be 2")
	}
	tb.Clear(i)
	if tb.AllocIndex() != 1 {
		t.Error("cleared index should be reusable")
	}
	if tb.Get(0) != nil || tb.Get(99) != nil {
		t.Error("Get must return nil out of range / for entry 0")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: GP, Sel: sel(2, 3), Off: 0x10, Access: Read, CPL: 3, Reason: "privilege"}
	msg := f.Error()
	for _, want := range []string{"#GP", "read", "privilege", "cpl 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("fault message %q missing %q", msg, want)
		}
	}
}
