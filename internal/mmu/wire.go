// Snapshot-to-bytes serialization of the translation state. The MMU's
// on-wire view is logical: descriptor-table contents, TLB contents and
// counters, the current CR3 and the control bits. The translation
// generations (gen, segGen) are deliberately NOT serialized — they are
// monotonic so decoded blocks from an abandoned timeline can never
// tag-match again, and a restore advances them through the same
// RestoreEntries mutate hook a snapshot restore fires.
package mmu

import "repro/internal/mem"

// SaveDescriptor appends one descriptor (shared with the cpu layer,
// which serializes IDT gates).
func SaveDescriptor(e *mem.Enc, d *Descriptor) {
	e.U8(uint8(d.Kind))
	e.U32(d.Base)
	e.U32(d.Limit)
	e.U8(uint8(d.DPL))
	e.Bool(d.Present)
	e.Bool(d.Writable)
	e.Bool(d.Readable)
	e.Bool(d.Conforming)
	e.U16(uint16(d.GateSel))
	e.U32(d.GateOff)
}

// LoadDescriptor decodes one descriptor, validating the enumerations.
func LoadDescriptor(d *mem.Dec) Descriptor {
	out := Descriptor{}
	kind := d.U8()
	if kind > uint8(SegTSS) {
		d.Failf("descriptor kind %d", kind)
		return out
	}
	out.Kind = SegKind(kind)
	out.Base = d.U32()
	out.Limit = d.U32()
	dpl := d.U8()
	if dpl > 3 {
		d.Failf("descriptor DPL %d", dpl)
		return out
	}
	out.DPL = int(dpl)
	out.Present = d.Bool()
	out.Writable = d.Bool()
	out.Readable = d.Bool()
	out.Conforming = d.Bool()
	out.GateSel = Selector(d.U16())
	out.GateOff = d.U32()
	return out
}

// SaveTo appends the table's descriptors.
func (t *Table) SaveTo(e *mem.Enc) {
	e.U32(uint32(len(t.entries)))
	for i := range t.entries {
		SaveDescriptor(e, &t.entries[i])
	}
}

// loadEntries decodes a table image of the expected size.
func loadTableEntries(d *mem.Dec, what string, want int) []Descriptor {
	n := d.Len(what+" descriptor", 1<<13)
	if d.Err() != nil {
		return nil
	}
	if want >= 0 && n != want {
		d.Failf("%s has %d descriptors, target table holds %d", what, n, want)
		return nil
	}
	out := make([]Descriptor, n)
	for i := range out {
		out[i] = LoadDescriptor(d)
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// SaveTo appends the TLB's logical contents: the statistics counters
// and every live translation in ascending virtual-page order. The
// epoch — an internal invalidation trick — is not serialized; two TLBs
// with identical live entries and counters serialize identically.
func (t *TLB) SaveTo(e *mem.Enc) {
	e.U64(t.hits)
	e.U64(t.misses)
	e.U64(t.flushes)
	e.U32(uint32(t.live))
	for i, leaf := range t.root {
		if leaf == nil {
			continue
		}
		for j, ent := range leaf {
			if uint32(ent>>32) != t.epoch {
				continue
			}
			e.U32(uint32(i)<<tlbLeafBits | uint32(j)) // vpn
			e.U32(uint32(ent))                        // frame | flag bits
		}
	}
}

// loadTLB decodes a TLB image into a fresh TLB.
func loadTLB(d *mem.Dec) *TLB {
	t := NewTLB()
	t.hits = d.U64()
	t.misses = d.U64()
	t.flushes = d.U64()
	n := d.Len("tlb entry", tlbRootSize*tlbLeafSize)
	last := -1
	for i := 0; i < n; i++ {
		vpn := d.U32()
		lo := d.U32()
		if d.Err() != nil {
			return nil
		}
		if int(vpn) <= last {
			d.Failf("tlb entry %#x out of order", vpn)
			return nil
		}
		if vpn >= tlbRootSize*tlbLeafSize {
			d.Failf("tlb vpn %#x out of range", vpn)
			return nil
		}
		if lo&uint32(mem.PageMask)&^uint32(tlbFlagWritable|tlbFlagUser) != 0 {
			d.Failf("tlb entry %#x has invalid flag bits %#x", vpn, lo)
			return nil
		}
		last = int(vpn)
		t.insert(vpn<<mem.PageShift, unpack(uint64(lo)))
	}
	if d.Err() != nil {
		return nil
	}
	return t
}

// SaveTo appends the MMU state: control bits, GDT, LDT, TLB and the
// current address space's CR3.
func (m *MMU) SaveTo(e *mem.Enc) {
	e.Bool(m.WriteProtect)
	m.GDT.SaveTo(e)
	e.Bool(m.LDT != nil)
	if m.LDT != nil {
		m.LDT.SaveTo(e)
	}
	m.tlb.SaveTo(e)
	e.Bool(m.space != nil)
	if m.space != nil {
		e.U32(m.space.CR3())
	}
}

// LoadFrom decodes a SaveTo image and applies it. adopt resolves a
// serialized CR3 to the address-space object the restored machine
// should consider current (the kernel maps it to the owning process's
// AS so pointer identity matches a live machine's). Everything is
// decoded and validated before anything is applied; on error the MMU
// is untouched. The GDT restore fires the mutate hook, advancing both
// generations exactly as a snapshot restore does.
func (m *MMU) LoadFrom(d *mem.Dec, adopt func(cr3 uint32) *AddressSpace) error {
	wp := d.Bool()
	gdt := loadTableEntries(d, "gdt", m.GDT.Len())
	var ldt []Descriptor
	if d.Bool() {
		ldt = loadTableEntries(d, "ldt", -1)
	}
	if d.Err() != nil {
		return d.Err()
	}
	tlb := loadTLB(d)
	hasSpace := d.Bool()
	var cr3 uint32
	if hasSpace {
		cr3 = d.U32()
		if cr3&uint32(mem.PageMask) != 0 {
			d.Failf("cr3 %#x not page aligned", cr3)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}

	m.GDT.RestoreEntries(gdt) // fires bumpSegGen
	if ldt == nil {
		m.LDT = nil
	} else {
		m.LDT = &Table{name: "ldt", entries: ldt, onMutate: m.bumpSegGen}
	}
	m.tlb.restoreFrom(tlb)
	m.WriteProtect = wp
	if hasSpace {
		m.space = adopt(cr3)
	} else {
		m.space = nil
	}
	return nil
}
