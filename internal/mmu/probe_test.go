package mmu

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/mem"
)

// probeMMU builds an MMU with one mapped page and a flat data segment,
// returning the mmu and the address space.
func probeMMU(t *testing.T) (*MMU, *AddressSpace) {
	t.Helper()
	phys := mem.NewPhysical()
	clock := cycles.NewClock(200)
	m := New(phys, 16, clock, cycles.Measured())
	m.GDT.Set(1, Descriptor{Kind: SegData, Base: 0, Limit: 0xFFFF_FFFF, DPL: 3, Present: true, Writable: true})
	m.GDT.Set(2, Descriptor{Kind: SegCode, Base: 0, Limit: 0xFFFF_FFFF, DPL: 3, Present: true, Readable: true})
	alloc := mem.NewFrameAllocator(0x0010_0000, 64*mem.PageSize)
	as, err := NewAddressSpace(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x0000_4000, f, true, true); err != nil {
		t.Fatal(err)
	}
	m.LoadCR3(as)
	return m, as
}

// TestFastFetchHitMatchesCheckPage pins the same-page fetch fast path's
// accounting to the full check: under the fast path's preconditions
// (immediately repeated fetch on a just-translated page, generation
// unchanged), CheckPage is a guaranteed TLB hit — so FastFetchHit must
// move the counters exactly as that hitting CheckPage would (hits+1,
// misses+0) and charge nothing.
func TestFastFetchHitMatchesCheckPage(t *testing.T) {
	m, _ := probeMMU(t)
	sel := MakeSelector(2, false, 3)

	// Prime the page (one counted miss + one walk charge).
	if _, f := m.CheckPage(0x4000, Execute, 3, sel, 0x4000); f != nil {
		t.Fatal(f)
	}
	h0, ms0, _ := m.TLB().Stats()
	c0 := m.Clock().Cycles()

	// Reference: a repeated CheckPage on the primed page.
	pa, f := m.CheckPage(0x4004, Execute, 3, sel, 0x4004)
	if f != nil {
		t.Fatal(f)
	}
	h1, ms1, _ := m.TLB().Stats()
	c1 := m.Clock().Cycles()
	if h1 != h0+1 || ms1 != ms0 {
		t.Fatalf("reference CheckPage moved counters %d/%d -> %d/%d, want one hit", h0, ms0, h1, ms1)
	}
	if c1 != c0 {
		t.Fatalf("reference CheckPage charged %v cycles on a hit", c1-c0)
	}

	// Fast path: must be observationally identical.
	m.FastFetchHit()
	h2, ms2, _ := m.TLB().Stats()
	if h2 != h1+1 || ms2 != ms1 {
		t.Errorf("FastFetchHit moved counters %d/%d -> %d/%d, want one hit", h1, ms1, h2, ms2)
	}
	if got := m.Clock().Cycles(); got != c1 {
		t.Errorf("FastFetchHit charged %v cycles", got-c1)
	}
	// And the frame the caller would reuse matches the full check's.
	if want := pa &^ uint32(mem.PageMask); want != 0 && pa == 0 {
		t.Fatalf("impossible") // pa sanity only; frame reuse is pinned by the CPU differential fuzz
	}
}

// TestTranslateProbedMatchesTranslate pins the segment-probe fast path
// to the full pipeline: hits and refills return identical addresses
// and identical fault identities, descriptor mutations invalidate the
// probe, and probe-hit limit violations raise exactly the fault
// CheckSegment would.
func TestTranslateProbedMatchesTranslate(t *testing.T) {
	m, _ := probeMMU(t)
	sel := MakeSelector(1, false, 3)
	var p SegProbe

	check := func(off, size uint32) {
		t.Helper()
		ref := m.tlb.Clone()
		wantPA, wantF := m.Translate(sel, off, size, Write, 3)
		// Rewind the TLB so the probed run sees identical state (the
		// page-level half is shared and counted in both).
		m.tlb.restoreFrom(ref)
		gotPA, gotF := m.TranslateProbed(&p, sel, off, size, Write, 3)
		m.tlb.restoreFrom(ref)
		if (wantF == nil) != (gotF == nil) {
			t.Fatalf("off %#x: fault mismatch: Translate %v, probed %v", off, wantF, gotF)
		}
		if wantF != nil && *wantF != *gotF {
			t.Fatalf("off %#x: fault identity: Translate %+v, probed %+v", off, wantF, gotF)
		}
		if wantPA != gotPA {
			t.Fatalf("off %#x: pa: Translate %#x, probed %#x", off, wantPA, gotPA)
		}
	}

	check(0x4000, 4) // refill
	check(0x4008, 4) // hit
	check(0x4001, 1) // hit, byte access

	// Shrink the segment: the mutation advances SegGen, so the probe
	// must refill and fault identically to the full pipeline.
	m.GDT.Set(1, Descriptor{Kind: SegData, Base: 0, Limit: 0x4100, DPL: 3, Present: true, Writable: true})
	check(0x4000, 4)      // refill under the new descriptor
	check(0x4200, 4)      // limit violation (both sides fault)
	check(0x40FE, 4)      // straddles the limit
	check(0xFFFF_FFFE, 4) // offset wraparound

	// Privilege change invalidates by key, not generation.
	checkCPL := func(cpl int) {
		t.Helper()
		wantPA, wantF := m.Translate(sel, 0x4000, 4, Write, cpl)
		gotPA, gotF := m.TranslateProbed(&p, sel, 0x4000, 4, Write, cpl)
		if (wantF == nil) != (gotF == nil) || wantPA != gotPA {
			t.Fatalf("cpl %d: Translate (%#x,%v), probed (%#x,%v)", cpl, wantPA, wantF, gotPA, gotF)
		}
	}
	checkCPL(3)
	checkCPL(0)
}

// TestSegGenTracksOnlySegmentEvents pins the generation split: paging
// events advance TransGen but not SegGen (cached blocks and probes
// survive them), while descriptor events advance both.
func TestSegGenTracksOnlySegmentEvents(t *testing.T) {
	m, as := probeMMU(t)
	sg, tg := m.SegGen(), m.TransGen()

	m.InvalidatePage(0x4000)
	if m.SegGen() != sg {
		t.Errorf("InvalidatePage advanced SegGen")
	}
	if m.TransGen() == tg {
		t.Errorf("InvalidatePage did not advance TransGen")
	}

	sg, tg = m.SegGen(), m.TransGen()
	m.LoadCR3(as)
	if m.SegGen() != sg {
		t.Errorf("LoadCR3 advanced SegGen")
	}
	if m.TransGen() == tg {
		t.Errorf("LoadCR3 did not advance TransGen")
	}

	sg, tg = m.SegGen(), m.TransGen()
	m.GDT.Set(3, Descriptor{Kind: SegData, Base: 0, Limit: 0xFFFF, DPL: 3, Present: true})
	if m.SegGen() == sg {
		t.Errorf("descriptor mutation did not advance SegGen")
	}
	if m.TransGen() == tg {
		t.Errorf("descriptor mutation did not advance TransGen")
	}
}

// TestTranslateVerifiedMatchesProbed pins the verified-elision path to
// the probed one: identical addresses and fault identities on fills
// and in-bound hits, elision only while the attested bound is within
// the live descriptor's limit, invalidation on descriptor mutation,
// and a live page-level check on every access (PPL is never elided).
func TestTranslateVerifiedMatchesProbed(t *testing.T) {
	m, as := probeMMU(t)
	sel := MakeSelector(1, false, 3)
	const bound = 0x4FFF // the verifier's proved inclusive end bound

	var pp, pv SegProbe
	check := func(off, size uint32) {
		t.Helper()
		ref := m.tlb.Clone()
		wantPA, wantF := m.TranslateProbed(&pp, sel, off, size, Write, 3)
		m.tlb.restoreFrom(ref)
		gotPA, gotF := m.TranslateVerified(&pv, bound, sel, off, size, Write, 3)
		m.tlb.restoreFrom(ref)
		if (wantF == nil) != (gotF == nil) {
			t.Fatalf("off %#x: fault mismatch: probed %v, verified %v", off, wantF, gotF)
		}
		if wantF != nil && *wantF != *gotF {
			t.Fatalf("off %#x: fault identity: probed %+v, verified %+v", off, wantF, gotF)
		}
		if wantPA != gotPA {
			t.Fatalf("off %#x: pa: probed %#x, verified %#x", off, wantPA, gotPA)
		}
	}

	check(0x4000, 4) // refill: bound 0x4FFF <= limit, probe arms elision
	if !pv.elide {
		t.Fatal("probe did not arm elision under a covering limit")
	}
	e0 := m.ElidedChecks()
	check(0x4008, 4) // warm hit: limit check skipped
	check(0x4001, 1)
	if got := m.ElidedChecks(); got != e0+2 {
		t.Fatalf("ElidedChecks = %d, want %d", got, e0+2)
	}

	// Shrink the segment below the attested bound: the mutation bumps
	// SegGen, the refill re-attests, and elision must NOT re-arm.
	m.GDT.Set(1, Descriptor{Kind: SegData, Base: 0, Limit: 0x4100, DPL: 3, Present: true, Writable: true})
	check(0x4000, 4)
	if pv.elide {
		t.Fatal("probe re-armed elision with bound beyond the shrunk limit")
	}
	e1 := m.ElidedChecks()
	check(0x4200, 4) // limit violation: both sides fault identically
	check(0x40FE, 4) // straddles the limit
	if m.ElidedChecks() != e1 {
		t.Fatal("elision fired without a covering limit")
	}

	// The page-level check is never elided: unmap the page and the
	// very next warm elided hit must page-fault.
	m.GDT.Set(1, Descriptor{Kind: SegData, Base: 0, Limit: 0xFFFF_FFFF, DPL: 3, Present: true, Writable: true})
	check(0x4000, 4) // re-arm under the restored flat segment
	if !pv.elide {
		t.Fatal("probe did not re-arm under the restored limit")
	}
	as.Unmap(0x4000)
	m.InvalidatePage(0x4000) // paging event: TransGen only, probes stay warm
	_, f := m.TranslateVerified(&pv, bound, sel, 0x4000, 4, Write, 3)
	if f == nil || f.Kind != PF {
		t.Fatalf("elided hit on an unmapped page: fault = %v, want PF", f)
	}
}
