package mmu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Page-table entry bits, matching the Intel two-level page-table entry
// format of Figure 1 in the paper. The "U" (user) bit is the page
// privilege level: U=1 is PPL 1 (accessible at CPL 3), U=0 is PPL 0
// (supervisor-only, accessible at CPL 0-2). Palladium's user-level
// extension mechanism is built entirely on flipping this bit.
const (
	pteP = 1 << 0 // present
	pteW = 1 << 1 // writable
	pteU = 1 << 2 // user (PPL 1)

	pteFrameMask = ^uint32(mem.PageMask)
)

// PTE is a page-table (or page-directory) entry.
type PTE uint32

// MakePTE assembles an entry pointing at the frame with base pa.
func MakePTE(pa uint32, present, writable, user bool) PTE {
	e := PTE(pa & pteFrameMask)
	if present {
		e |= pteP
	}
	if writable {
		e |= pteW
	}
	if user {
		e |= pteU
	}
	return e
}

// Present reports the P bit.
func (e PTE) Present() bool { return e&pteP != 0 }

// Writable reports the W bit.
func (e PTE) Writable() bool { return e&pteW != 0 }

// User reports the U bit (true = PPL 1, false = PPL 0).
func (e PTE) User() bool { return e&pteU != 0 }

// Frame returns the physical base address of the mapped frame.
func (e PTE) Frame() uint32 { return uint32(e) & pteFrameMask }

// AddressSpace owns a two-level page table rooted at a page-directory
// frame (the value a process loads into CR3). All page-table memory
// lives in simulated physical memory, exactly as on hardware, so the
// page walk performed on a TLB miss reads real PDE/PTE words.
type AddressSpace struct {
	phys   *mem.Physical
	alloc  *mem.FrameAllocator
	pdBase uint32 // physical base of the page directory
}

// NewAddressSpace allocates an empty page directory.
func NewAddressSpace(phys *mem.Physical, alloc *mem.FrameAllocator) (*AddressSpace, error) {
	pd, err := alloc.Alloc()
	if err != nil {
		return nil, fmt.Errorf("mmu: allocating page directory: %w", err)
	}
	phys.Zero(pd, mem.PageSize)
	return &AddressSpace{phys: phys, alloc: alloc, pdBase: pd}, nil
}

// CR3 returns the physical base address of the page directory.
func (as *AddressSpace) CR3() uint32 { return as.pdBase }

// AdoptAddressSpace wraps an existing page directory (identified by its
// CR3 value) in a new AddressSpace bound to a cloned machine's physical
// memory and allocator. The page-table contents themselves live in
// simulated physical memory and were carried over by the COW clone; the
// wrapper only needs the clone's pointers.
func AdoptAddressSpace(phys *mem.Physical, alloc *mem.FrameAllocator, cr3 uint32) *AddressSpace {
	return &AddressSpace{phys: phys, alloc: alloc, pdBase: cr3}
}

func splitLinear(la uint32) (pdi, pti, off uint32) {
	return la >> 22, (la >> 12) & 0x3FF, la & mem.PageMask
}

func (as *AddressSpace) pde(pdi uint32) PTE {
	return PTE(as.phys.Read32(as.pdBase + pdi*4))
}

func (as *AddressSpace) setPDE(pdi uint32, e PTE) {
	as.phys.Write32(as.pdBase+pdi*4, uint32(e))
}

// ensurePT returns the physical base of the page table covering pdi,
// allocating it if needed. Page directories mark intermediate levels
// writable and user; the effective permission is the AND of both
// levels, and we keep restrictions at the leaf as Linux does.
func (as *AddressSpace) ensurePT(pdi uint32) (uint32, error) {
	e := as.pde(pdi)
	if e.Present() {
		return e.Frame(), nil
	}
	pt, err := as.alloc.Alloc()
	if err != nil {
		return 0, fmt.Errorf("mmu: allocating page table: %w", err)
	}
	as.phys.Zero(pt, mem.PageSize)
	as.setPDE(pdi, MakePTE(pt, true, true, true))
	return pt, nil
}

// Map installs a translation linear -> frame with the given leaf
// permissions. Both addresses must be page-aligned.
func (as *AddressSpace) Map(linear, frame uint32, writable, user bool) error {
	if linear&mem.PageMask != 0 || frame&mem.PageMask != 0 {
		return fmt.Errorf("mmu: unaligned mapping %#x -> %#x", linear, frame)
	}
	pdi, pti, _ := splitLinear(linear)
	pt, err := as.ensurePT(pdi)
	if err != nil {
		return err
	}
	as.phys.Write32(pt+pti*4, uint32(MakePTE(frame, true, writable, user)))
	return nil
}

// Unmap removes the translation for the page containing linear.
func (as *AddressSpace) Unmap(linear uint32) {
	pdi, pti, _ := splitLinear(linear)
	e := as.pde(pdi)
	if !e.Present() {
		return
	}
	as.phys.Write32(e.Frame()+pti*4, 0)
}

// HasTable reports whether a page table is present for the 4 MB slice
// containing linear.
func (as *AddressSpace) HasTable(linear uint32) bool {
	return as.pde(linear >> 22).Present()
}

// Lookup returns the leaf PTE for linear (zero if the page table is
// absent).
func (as *AddressSpace) Lookup(linear uint32) PTE {
	pdi, pti, _ := splitLinear(linear)
	e := as.pde(pdi)
	if !e.Present() {
		return 0
	}
	return PTE(as.phys.Read32(e.Frame() + pti*4))
}

// SetUser flips the page privilege level of the page containing
// linear: user=true puts it at PPL 1 (extension-accessible), false at
// PPL 0 (hidden from CPL 3). It is a no-op on non-present pages and
// reports whether a present page was modified. This is the primitive
// behind Palladium's init_PL and set_range.
func (as *AddressSpace) SetUser(linear uint32, user bool) bool {
	pdi, pti, _ := splitLinear(linear)
	e := as.pde(pdi)
	if !e.Present() {
		return false
	}
	addr := e.Frame() + pti*4
	leaf := PTE(as.phys.Read32(addr))
	if !leaf.Present() {
		return false
	}
	leaf = MakePTE(leaf.Frame(), true, leaf.Writable(), user)
	as.phys.Write32(addr, uint32(leaf))
	return true
}

// SetWritable flips the write permission of the page containing
// linear; used to make the GOT page read-only after eager binding.
func (as *AddressSpace) SetWritable(linear uint32, writable bool) bool {
	pdi, pti, _ := splitLinear(linear)
	e := as.pde(pdi)
	if !e.Present() {
		return false
	}
	addr := e.Frame() + pti*4
	leaf := PTE(as.phys.Read32(addr))
	if !leaf.Present() {
		return false
	}
	leaf = MakePTE(leaf.Frame(), true, writable, leaf.User())
	as.phys.Write32(addr, uint32(leaf))
	return true
}

// ClonePageDir produces a new address space whose page tables are
// copies of this one and whose leaf entries point at the same physical
// frames (the fork() memory-map inheritance of Section 4.5.2; page and
// segment privilege levels are inherited because the leaf entries are
// copied verbatim). The clone shares no page-table frames with the
// parent, so later permission changes do not leak between them.
func (as *AddressSpace) ClonePageDir() (*AddressSpace, error) {
	clone, err := NewAddressSpace(as.phys, as.alloc)
	if err != nil {
		return nil, err
	}
	for pdi := uint32(0); pdi < 1024; pdi++ {
		e := as.pde(pdi)
		if !e.Present() {
			continue
		}
		pt, err := clone.ensurePT(pdi)
		if err != nil {
			return nil, err
		}
		// Page tables are frame-aligned: copy the whole table frame at
		// once instead of 1024 word reads and writes.
		src := as.phys.FrameView(e.Frame())
		dst := clone.phys.FrameMut(pt)
		copy(dst[:], src[:])
	}
	return clone, nil
}

// CopyRangeFrom deep-copies src's mappings covering [startLinear,
// endLinear] into this address space: fresh page-table frames, leaf
// entries copied verbatim (same frames, same permissions — the fork()
// inheritance of segment/page privilege levels in Section 4.5.2).
func (as *AddressSpace) CopyRangeFrom(src *AddressSpace, startLinear, endLinear uint32) error {
	for pdi := startLinear >> 22; pdi <= endLinear>>22; pdi++ {
		e := src.pde(pdi)
		if !e.Present() {
			continue
		}
		pt, err := as.ensurePT(pdi)
		if err != nil {
			return err
		}
		from := src.phys.FrameView(e.Frame())
		dst := as.phys.FrameMut(pt)
		copy(dst[:], from[:])
	}
	return nil
}

// PreallocateTables creates (empty) page tables covering every
// 4 MB-aligned slot in [startLinear, endLinear]. The kernel uses this
// at boot so the page-table *frames* of the kernel region exist before
// any process is created and can then be shared into every address
// space — making later kernel mappings globally visible, as on Linux.
func (as *AddressSpace) PreallocateTables(startLinear, endLinear uint32) error {
	for pdi := startLinear >> 22; pdi <= endLinear>>22; pdi++ {
		if _, err := as.ensurePT(pdi); err != nil {
			return err
		}
	}
	return nil
}

// ShareRangeFrom aliases src's page-directory entries covering
// [startLinear, endLinear] into this address space: both spaces then
// use the *same page-table frames* for that range, so mappings made in
// one are visible in the other. Used for the shared kernel half of
// every process.
func (as *AddressSpace) ShareRangeFrom(src *AddressSpace, startLinear, endLinear uint32) {
	for pdi := startLinear >> 22; pdi <= endLinear>>22; pdi++ {
		as.setPDE(pdi, src.pde(pdi))
	}
}

// VisitMapped calls fn for every present leaf mapping. Each present
// page table is captured through a direct frame view (one lookup per
// 4 MB slice instead of 1024 word reads) before its callbacks run, so
// a callback may mutate the visited entry (InitPL's PPL demotion does,
// possibly COW-splitting the table frame) without perturbing the scan.
func (as *AddressSpace) VisitMapped(fn func(linear uint32, e PTE)) {
	var table [mem.PageSize]byte
	for pdi := uint32(0); pdi < 1024; pdi++ {
		pde := as.pde(pdi)
		if !pde.Present() {
			continue
		}
		table = *as.phys.FrameView(pde.Frame())
		for pti := uint32(0); pti < 1024; pti++ {
			leaf := PTE(binary.LittleEndian.Uint32(table[pti*4 : pti*4+4]))
			if leaf.Present() {
				fn(pdi<<22|pti<<12, leaf)
			}
		}
	}
}
