package mmu

import (
	"repro/internal/cycles"
	"repro/internal/mem"
)

// MMU binds the segmentation unit, the paging unit and the TLB into the
// translation-and-check pipeline of Figure 1. One MMU is shared by the
// CPU and the kernel of a simulated machine.
type MMU struct {
	Phys *mem.Physical
	GDT  *Table
	LDT  *Table // current process's LDT; may be nil

	clock *cycles.Clock
	model *cycles.Model

	space *AddressSpace // current address space (CR3)
	tlb   *TLB

	// gen counts every event that can change the outcome of a
	// translation performed through this MMU: CR3 loads, single-page
	// invalidations, LDT switches and GDT/LDT descriptor mutations.
	// The CPU's chained execution tier checks it after every timer-
	// hook firing: a changed generation means cached per-run
	// translation state (the same-page fetch fast path, chain hints)
	// must be revalidated from scratch.
	gen uint64

	// segGen counts only the events that can change the outcome of a
	// SEGMENT-level check: GDT/LDT descriptor mutations, LDT switches,
	// and whole-image restores. The decoded-block cache tags blocks
	// with it (a block's build-time segment checks stay valid while it
	// is unchanged), and SegProbes validate against it. Page-level
	// events (CR3 loads, invlpg) deliberately do NOT advance it: the
	// page-level check runs live on every executed instruction, so
	// cached blocks follow remaps lazily and correctly without being
	// rebuilt — which keeps the per-request PPL flipping of the
	// protected serving path from flushing the block cache.
	segGen uint64

	// elided counts segment-limit re-validations skipped on warm
	// SegProbe hits for operands carrying a verifier fact (see
	// TranslateVerified). A host-side diagnostic only: segment checks
	// charge no cycles and count no statistics, so the counter is
	// deliberately outside Save/RestoreState and the simulated metrics.
	elided uint64

	// WriteProtect mirrors CR0.WP: when true, supervisor-level code
	// (CPL 0-2) also honours page write protection. Palladium's
	// read-only GOT needs protection only against CPL 3, but we model
	// the full WP=1 behaviour of later Linux kernels; it is
	// configurable for the ablation tests.
	WriteProtect bool
}

// New returns an MMU over the given physical memory, charging
// translation costs (TLB misses, flushes) to clock under model.
func New(phys *mem.Physical, gdtSize int, clock *cycles.Clock, model *cycles.Model) *MMU {
	m := &MMU{
		Phys:         phys,
		GDT:          NewTable("gdt", gdtSize),
		clock:        clock,
		model:        model,
		tlb:          NewTLB(),
		WriteProtect: true,
	}
	m.GDT.onMutate = m.bumpSegGen
	// COW plumbing: restoring the frame store can put different bytes
	// (and different installed code) behind live physical addresses, so
	// a restore must advance both generations — every decoded block
	// tagged with an older segment generation then misses and rebuilds
	// from the restored image. TLB entries key physical *addresses*,
	// which COW never changes, so the TLB needs no flush here; its
	// contents are restored wholesale by RestoreState.
	phys.OnRestore(m.bumpSegGen)
	return m
}

// MMUState is a snapshot of the translation state: descriptor tables,
// TLB contents and counters, current address space and control bits.
type MMUState struct {
	gdt   []Descriptor
	ldt   *Table // cloned LDT, nil when none was installed
	tlb   *TLB
	space *AddressSpace
	wp    bool
}

// SaveState snapshots the MMU. The translation generation is *not*
// captured: it is monotonic so that decoded blocks from any abandoned
// timeline can never tag-match again.
func (m *MMU) SaveState() *MMUState {
	s := &MMUState{gdt: m.GDT.Snapshot(), tlb: m.tlb.Clone(), space: m.space, wp: m.WriteProtect}
	if m.LDT != nil {
		s.ldt = m.LDT.Clone()
	}
	return s
}

// RestoreState rewinds the MMU to a saved state and advances the
// generation (via the GDT restore's mutate hook) so stale decoded
// blocks are invalidated. No cycle costs are charged and no TLB
// statistics move: restore is a simulator-level operation, invisible
// to the simulated timeline.
func (m *MMU) RestoreState(s *MMUState) {
	m.GDT.RestoreEntries(s.gdt) // fires bumpSegGen
	if s.ldt == nil {
		m.LDT = nil
	} else {
		m.LDT = s.ldt.Clone()
		m.LDT.onMutate = m.bumpSegGen
	}
	m.tlb.restoreFrom(s.tlb)
	m.space = s.space
	m.WriteProtect = s.wp
}

// Clone copies the MMU onto a cloned machine's physical memory and
// clock: descriptor tables, TLB state and generation carry over, so
// the clone translates exactly as its source would.
func (m *MMU) Clone(phys *mem.Physical, clock *cycles.Clock) *MMU {
	c := &MMU{
		Phys:         phys,
		GDT:          m.GDT.Clone(),
		clock:        clock,
		model:        m.model,
		tlb:          m.tlb.Clone(),
		gen:          m.gen,
		segGen:       m.segGen,
		WriteProtect: m.WriteProtect,
	}
	c.GDT.onMutate = c.bumpSegGen
	if m.LDT != nil {
		c.LDT = m.LDT.Clone()
		c.LDT.onMutate = c.bumpSegGen
	}
	phys.OnRestore(c.bumpSegGen)
	return c
}

// AdoptSpace installs an address space without a TLB flush or cycle
// charge: used when rebinding a cloned MMU to the clone's own
// AddressSpace objects (the page-table contents, which live in
// simulated memory, are already identical).
//
//lint:genbump-exempt clone rebinding only: the adopted page tables are bit-identical, Clone carried the generations over, and restore paths bump via phys.OnRestore
func (m *MMU) AdoptSpace(space *AddressSpace) { m.space = space }

// bumpGen advances the translation generation (see the gen field).
func (m *MMU) bumpGen() { m.gen++ }

// bumpSegGen advances both generations: a segment-level change is
// also a translation-level change.
func (m *MMU) bumpSegGen() { m.segGen++; m.gen++ }

// TransGen returns the current translation generation. It changes
// whenever CR3 is loaded, a page is invalidated, the LDT is switched,
// or a GDT/LDT descriptor is installed or cleared.
func (m *MMU) TransGen() uint64 { return m.gen }

// SegGen returns the current segment-check generation (see segGen).
func (m *MMU) SegGen() uint64 { return m.segGen }

// Model returns the active cost model.
func (m *MMU) Model() *cycles.Model { return m.model }

// Clock returns the shared cycle clock.
func (m *MMU) Clock() *cycles.Clock { return m.clock }

// TLB exposes the TLB (for tests and statistics).
func (m *MMU) TLB() *TLB { return m.tlb }

// Space returns the current address space.
func (m *MMU) Space() *AddressSpace { return m.space }

// LoadCR3 switches to a new address space and flushes the TLB, charging
// the flush cost — this is the page-table switch penalty that
// Palladium's intra-address-space design avoids and that the RPC
// baseline pays on every context switch.
func (m *MMU) LoadCR3(space *AddressSpace) {
	m.space = space
	m.tlb.Flush()
	m.bumpGen()
	m.clock.Charge(m.model, cycles.TLBFlushBase)
}

// SetLDT installs the current process's local descriptor table.
func (m *MMU) SetLDT(ldt *Table) {
	m.LDT = ldt
	if ldt != nil {
		ldt.onMutate = m.bumpSegGen
	}
	m.bumpSegGen()
}

// InvalidatePage drops one page translation (after a permission
// change) without a full flush.
func (m *MMU) InvalidatePage(linear uint32) {
	m.tlb.Invalidate(linear &^ uint32(mem.PageMask))
	m.bumpGen()
}

// Descriptor resolves a selector to its descriptor. A nil return means
// the selector is out of range for its table.
func (m *MMU) Descriptor(sel Selector) *Descriptor {
	if sel.IsLDT() {
		if m.LDT == nil {
			return nil
		}
		return m.LDT.Get(sel.Index())
	}
	return m.GDT.Get(sel.Index())
}

func fault(k FaultKind, sel Selector, off, linear uint32, acc Access, cpl int, reason string) *Fault {
	return &Fault{Kind: k, Sel: sel, Off: off, Linear: linear, Access: acc, CPL: cpl, Reason: reason}
}

// CheckSegment performs the segment-level half of the access check and
// returns the linear address on success. It is exposed separately so
// the CPU can reuse it for control transfers (where the page-level
// check happens on the subsequent fetch).
func (m *MMU) CheckSegment(sel Selector, off, size uint32, acc Access, cpl int) (uint32, *Fault) {
	if sel.IsNull() {
		return 0, fault(GP, sel, off, 0, acc, cpl, "null selector")
	}
	d := m.Descriptor(sel)
	if d == nil || d.Kind == SegNull {
		return 0, fault(GP, sel, off, 0, acc, cpl, "no such descriptor")
	}
	if !d.Present {
		return 0, fault(NP, sel, off, 0, acc, cpl, "segment not present")
	}
	switch acc {
	case Execute:
		if d.Kind != SegCode {
			return 0, fault(GP, sel, off, 0, acc, cpl, "fetch from non-code segment")
		}
		// Non-conforming code executes only at exactly DPL == CPL;
		// transfers that change CPL go through gates, which the CPU
		// checks separately.
		if !d.Conforming && cpl != d.DPL {
			return 0, fault(GP, sel, off, 0, acc, cpl, "code segment DPL != CPL")
		}
	case Write:
		if d.Kind != SegData {
			return 0, fault(GP, sel, off, 0, acc, cpl, "write to non-data segment")
		}
		if !d.Writable {
			return 0, fault(GP, sel, off, 0, acc, cpl, "segment not writable")
		}
		if max(cpl, sel.RPL()) > d.DPL {
			return 0, fault(GP, sel, off, 0, acc, cpl, "privilege: data segment DPL below access level")
		}
	case Read:
		if d.Kind == SegCode && !d.Readable {
			return 0, fault(GP, sel, off, 0, acc, cpl, "code segment not readable")
		}
		if d.Kind == SegCallGate || d.Kind == SegIntGate || d.Kind == SegTSS {
			return 0, fault(GP, sel, off, 0, acc, cpl, "data access through gate descriptor")
		}
		if d.Kind == SegData && max(cpl, sel.RPL()) > d.DPL {
			return 0, fault(GP, sel, off, 0, acc, cpl, "privilege: data segment DPL below access level")
		}
	}
	if !d.Contains(off, size) {
		// This is the segment-limit check that confines Palladium's
		// kernel extensions to their extension segment.
		return 0, fault(GP, sel, off, 0, acc, cpl, "segment limit violation")
	}
	return d.Base + off, nil
}

// CheckPage performs the page-level half: translation through the TLB
// or a charged two-level walk, then the PPL and write-permission
// checks. It returns the physical address.
func (m *MMU) CheckPage(linear uint32, acc Access, cpl int, sel Selector, off uint32) (uint32, *Fault) {
	page := linear &^ uint32(mem.PageMask)
	e, ok := m.tlb.lookup(page)
	if !ok {
		if m.space == nil {
			return 0, fault(PF, sel, off, linear, acc, cpl, "no address space")
		}
		m.clock.Charge(m.model, cycles.TLBMiss)
		leaf := m.space.Lookup(linear)
		if !leaf.Present() {
			return 0, fault(PF, sel, off, linear, acc, cpl, "page not present")
		}
		e = tlbEntry{frame: leaf.Frame(), writable: leaf.Writable(), user: leaf.User()}
		m.tlb.insert(page, e)
	}
	// Page privilege check: CPL 3 cannot access PPL 0 (supervisor)
	// pages — the core of Palladium's user-extension protection.
	if cpl == 3 && !e.user {
		return 0, fault(PF, sel, off, linear, acc, cpl, "page privilege violation (PPL 0 page at CPL 3)")
	}
	if acc == Write && !e.writable {
		if cpl == 3 || m.WriteProtect {
			return 0, fault(PF, sel, off, linear, acc, cpl, "write to read-only page")
		}
	}
	return e.frame | (linear & mem.PageMask), nil
}

// FastFetchHit is the inlineable same-page fetch probe: the CPU calls
// it instead of CheckPage when the fetch lands on the same linear page
// as the immediately preceding fetch of a straight-line run and the
// translation generation is unchanged. Under those conditions CheckPage
// is guaranteed to take the TLB-hit path with the same entry (the
// previous fetch inserted or verified it, hardware events that could
// evict it all advance TransGen, and simulated code cannot touch the
// TLB), its privilege checks are guaranteed to repeat the previous
// outcome (same entry bits, same CPL — far transfers end blocks), and
// no walk is charged. The observable effect is therefore exactly one
// TLB hit, which this records; the caller reuses the frame base from
// the full check. Pinned by TestFastFetchHitMatchesCheckPage.
func (m *MMU) FastFetchHit() { m.tlb.CountHit() }

// PeekPage resolves a linear address to a physical one without
// charging cycles, counting TLB statistics, or filling the TLB: the
// cached translation is used when present, otherwise the page tables
// are walked read-only. Privilege and write-permission bits are NOT
// checked. The CPU's block builder uses this to pre-resolve fetch
// addresses; the counted, charged, checked translation still happens
// on every execution of the cached block, so accounting is unchanged.
func (m *MMU) PeekPage(linear uint32) (uint32, bool) {
	page := linear &^ uint32(mem.PageMask)
	if e, ok := m.tlb.peek(page); ok {
		return e.frame | (linear & mem.PageMask), true
	}
	if m.space == nil {
		return 0, false
	}
	leaf := m.space.Lookup(linear)
	if !leaf.Present() {
		return 0, false
	}
	return leaf.Frame() | (linear & mem.PageMask), true
}

// Translate runs the full segment + page pipeline for an access of
// `size` bytes at sel:off performed at privilege cpl.
func (m *MMU) Translate(sel Selector, off, size uint32, acc Access, cpl int) (uint32, *Fault) {
	linear, f := m.CheckSegment(sel, off, size, acc, cpl)
	if f != nil {
		return 0, f
	}
	return m.CheckPage(linear, acc, cpl, sel, off)
}

// SegProbe caches the outcome of one passing segment-level check. The
// segment checks that do not depend on the offset — descriptor
// presence, type, readability/writability, privilege — are functions
// of (selector, access kind, CPL, descriptor contents) only, and every
// descriptor mutation advances the translation generation; so while
// the generation, selector, access and CPL match, only the offset-
// dependent limit check needs re-running, against the cached base and
// limit. The CPU's threaded-code tier binds one probe to each compiled
// memory operand (and the stack primitives), turning the common-case
// data translation into two compares plus the page-level check.
//
// Segment checks charge no cycles and count no statistics, so a probe
// hit is observationally identical to the full CheckSegment; pinned by
// TestTranslateProbedMatchesTranslate.
type SegProbe struct {
	gen   uint64
	sel   Selector
	acc   Access
	cpl   int8
	valid bool
	// elide: the operand bound attested at fill time (see
	// TranslateVerified) is within this descriptor's limit, so the
	// offset check may be skipped while the probe stays warm.
	elide bool
	base  uint32
	limit uint32
}

// TranslateProbed is Translate with the segment-level half served from
// the probe when it still matches. The fault identities are exactly
// Translate's: a probe hit can only fail the limit check, whose fault
// CheckSegment would raise with identical fields (the offset-
// independent checks all passed when the probe was filled and their
// inputs are unchanged).
func (m *MMU) TranslateProbed(p *SegProbe, sel Selector, off, size uint32, acc Access, cpl int) (uint32, *Fault) {
	if p.valid && p.sel == sel && p.acc == acc && int(p.cpl) == cpl && p.gen == m.segGen {
		end := off + size - 1
		if end >= off && end <= p.limit {
			return m.CheckPage(p.base+off, acc, cpl, sel, off)
		}
		return 0, fault(GP, sel, off, 0, acc, cpl, "segment limit violation")
	}
	linear, f := m.CheckSegment(sel, off, size, acc, cpl)
	if f != nil {
		p.valid = false
		return 0, f
	}
	d := m.Descriptor(sel)
	*p = SegProbe{gen: m.segGen, sel: sel, acc: acc, cpl: int8(cpl), valid: true, base: d.Base, limit: d.Limit}
	return m.CheckPage(linear, acc, cpl, sel, off)
}

// TranslateVerified is TranslateProbed for operands carrying a
// load-time verifier fact: the static analysis proved that every
// runtime offset of this operand satisfies off+size-1 <= bound. The
// bound is re-attested against the live descriptor each time the probe
// is (re)filled — a descriptor mutation bumps the segment generation,
// forcing a refill — so on a warm hit with p.elide set, the limit
// check is provably redundant and is skipped (counted in
// ElidedChecks). The page-level check still runs on every access: PPL
// enforcement is never elided. Segment checks charge no cycles and
// count no statistics, so elision leaves every simulated metric
// bit-identical; pinned by TestTranslateVerifiedMatchesProbed and the
// soundness fuzz.
func (m *MMU) TranslateVerified(p *SegProbe, bound uint32, sel Selector, off, size uint32, acc Access, cpl int) (uint32, *Fault) {
	if p.valid && p.sel == sel && p.acc == acc && int(p.cpl) == cpl && p.gen == m.segGen {
		if p.elide {
			m.elided++
			return m.CheckPage(p.base+off, acc, cpl, sel, off)
		}
		end := off + size - 1
		if end >= off && end <= p.limit {
			return m.CheckPage(p.base+off, acc, cpl, sel, off)
		}
		return 0, fault(GP, sel, off, 0, acc, cpl, "segment limit violation")
	}
	linear, f := m.CheckSegment(sel, off, size, acc, cpl)
	if f != nil {
		p.valid = false
		return 0, f
	}
	d := m.Descriptor(sel)
	*p = SegProbe{gen: m.segGen, sel: sel, acc: acc, cpl: int8(cpl), valid: true, base: d.Base, limit: d.Limit,
		elide: bound <= d.Limit}
	return m.CheckPage(linear, acc, cpl, sel, off)
}

// ElidedChecks returns how many segment-limit re-validations
// TranslateVerified has skipped on this MMU.
func (m *MMU) ElidedChecks() uint64 { return m.elided }

// Read32 translates and reads a 32-bit word.
func (m *MMU) Read32(sel Selector, off uint32, cpl int) (uint32, *Fault) {
	pa, f := m.Translate(sel, off, 4, Read, cpl)
	if f != nil {
		return 0, f
	}
	return m.Phys.Read32(pa), nil
}

// Write32 translates and writes a 32-bit word.
func (m *MMU) Write32(sel Selector, off uint32, v uint32, cpl int) *Fault {
	pa, f := m.Translate(sel, off, 4, Write, cpl)
	if f != nil {
		return f
	}
	m.Phys.Write32(pa, v)
	return nil
}

// Read8 translates and reads one byte.
func (m *MMU) Read8(sel Selector, off uint32, cpl int) (byte, *Fault) {
	pa, f := m.Translate(sel, off, 1, Read, cpl)
	if f != nil {
		return 0, f
	}
	return m.Phys.Read8(pa), nil
}

// Write8 translates and writes one byte.
func (m *MMU) Write8(sel Selector, off uint32, v byte, cpl int) *Fault {
	pa, f := m.Translate(sel, off, 1, Write, cpl)
	if f != nil {
		return f
	}
	m.Phys.Write8(pa, v)
	return nil
}
