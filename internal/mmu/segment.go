// Package mmu models the Intel x86 virtual memory architecture as
// described in Section 3 of the paper: variable-length segments with a
// 4-level privilege ring selected through GDT/LDT descriptors, plus
// two-level page tables with a 2-level page privilege (user/supervisor)
// and read/write permission bits, fronted by a TLB that is flushed on
// every CR3 (page-table base) load.
//
// Every memory access of the simulated CPU goes through
// MMU.Translate, which performs, in hardware order:
//
//  1. segment present / type check,
//  2. segment-level privilege check (max(CPL,RPL) <= DPL for data),
//  3. segment limit check,
//  4. linear address formation (base + offset),
//  5. page-level translation (TLB, then two-level walk),
//  6. page privilege check (CPL 3 cannot touch supervisor/PPL-0 pages),
//  7. page write-permission check.
//
// Violations surface as *Fault values mirroring x86 exception classes
// (#GP for segment-level violations, #PF for page-level ones).
package mmu

import "fmt"

// Selector is an x86 segment selector: a 13-bit descriptor-table index,
// a table-indicator bit (0 = GDT, 1 = LDT), and a 2-bit requested
// privilege level.
type Selector uint16

// MakeSelector builds a selector from a table index, table indicator
// and requested privilege level.
func MakeSelector(index int, ldt bool, rpl int) Selector {
	s := Selector(index<<3) | Selector(rpl&3)
	if ldt {
		s |= 1 << 2
	}
	return s
}

// Index returns the descriptor-table index.
func (s Selector) Index() int { return int(s >> 3) }

// IsLDT reports whether the selector refers to the LDT.
func (s Selector) IsLDT() bool { return s&(1<<2) != 0 }

// RPL returns the requested privilege level.
func (s Selector) RPL() int { return int(s & 3) }

// IsNull reports whether the selector is the null selector (index 0 in
// the GDT); loading a null selector into CS/SS faults, and using one
// for data access faults.
func (s Selector) IsNull() bool { return s&^3 == 0 }

// String formats the selector as index:table:rpl.
func (s Selector) String() string {
	t := "gdt"
	if s.IsLDT() {
		t = "ldt"
	}
	return fmt.Sprintf("%d(%s,rpl%d)", s.Index(), t, s.RPL())
}

// SegKind distinguishes descriptor types.
type SegKind int

const (
	// SegNull marks an unused descriptor slot.
	SegNull SegKind = iota
	// SegCode is an executable code segment.
	SegCode
	// SegData is a readable/writable data or stack segment.
	SegData
	// SegCallGate is a call-gate descriptor (Section 3.2).
	SegCallGate
	// SegIntGate is an interrupt-gate descriptor.
	SegIntGate
	// SegTSS is a task-state-segment descriptor.
	SegTSS
)

func (k SegKind) String() string {
	switch k {
	case SegNull:
		return "null"
	case SegCode:
		return "code"
	case SegData:
		return "data"
	case SegCallGate:
		return "callgate"
	case SegIntGate:
		return "intgate"
	case SegTSS:
		return "tss"
	}
	return fmt.Sprintf("SegKind(%d)", int(k))
}

// Descriptor is a segment or gate descriptor, the in-simulator
// equivalent of the 8-byte GDT/LDT entry in Figure 1 of the paper.
type Descriptor struct {
	Kind    SegKind
	Base    uint32 // segment start linear address
	Limit   uint32 // highest valid offset (inclusive)
	DPL     int    // descriptor privilege level, 0 (most) .. 3 (least)
	Present bool
	// Writable applies to data segments; Readable to code segments
	// (execute-only code cannot be read as data).
	Writable bool
	Readable bool
	// Conforming code segments execute at the caller's CPL.
	Conforming bool

	// Gate fields (SegCallGate / SegIntGate): control transfers
	// through the gate land at GateSel:GateOff.
	GateSel Selector
	GateOff uint32
}

// Contains reports whether [off, off+size-1] lies within the segment
// limit. Size must be >= 1.
func (d *Descriptor) Contains(off uint32, size uint32) bool {
	if size == 0 {
		size = 1
	}
	// Guard against wraparound: off+size-1 must not overflow and must
	// be within the limit.
	end := off + size - 1
	if end < off {
		return false
	}
	return end <= d.Limit
}

// Table is a descriptor table (GDT or LDT).
type Table struct {
	name    string
	entries []Descriptor

	// onMutate, when set (by the MMU that consults this table),
	// runs after every Set/Clear so cached decode state keyed on
	// descriptor contents can be invalidated.
	onMutate func()
}

// NewTable returns a table with capacity n (entry 0 is the null
// descriptor and is never valid).
func NewTable(name string, n int) *Table {
	return &Table{name: name, entries: make([]Descriptor, n)}
}

// Set installs a descriptor at index i.
func (t *Table) Set(i int, d Descriptor) {
	if i <= 0 || i >= len(t.entries) {
		panic(fmt.Sprintf("mmu: %s index %d out of range", t.name, i))
	}
	t.entries[i] = d
	if t.onMutate != nil {
		t.onMutate()
	}
}

// Get returns the descriptor at index i, or nil if out of range.
func (t *Table) Get(i int) *Descriptor {
	if i <= 0 || i >= len(t.entries) {
		return nil
	}
	return &t.entries[i]
}

// AllocIndex returns the first free (null) index, or -1 when full.
func (t *Table) AllocIndex() int {
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].Kind == SegNull && !t.entries[i].Present {
			return i
		}
	}
	return -1
}

// Clear resets index i to the null descriptor.
func (t *Table) Clear(i int) {
	if i <= 0 || i >= len(t.entries) {
		return
	}
	t.entries[i] = Descriptor{}
	if t.onMutate != nil {
		t.onMutate()
	}
}

// Len returns the table capacity.
func (t *Table) Len() int { return len(t.entries) }

// Snapshot copies the table's descriptors.
func (t *Table) Snapshot() []Descriptor {
	out := make([]Descriptor, len(t.entries))
	copy(out, t.entries)
	return out
}

// RestoreEntries rewinds the table to a snapshot produced by Snapshot,
// firing onMutate once (descriptor contents may have changed, so any
// decode state keyed on them must be invalidated).
func (t *Table) RestoreEntries(entries []Descriptor) {
	if len(entries) != len(t.entries) {
		panic(fmt.Sprintf("mmu: %s snapshot size %d != table size %d", t.name, len(entries), len(t.entries)))
	}
	copy(t.entries, entries)
	if t.onMutate != nil {
		t.onMutate()
	}
}

// Clone copies the table for a cloned machine. The clone's onMutate is
// left unset; the owning MMU rebinds it.
func (t *Table) Clone() *Table {
	return &Table{name: t.name, entries: t.Snapshot()}
}

// Access describes the kind of memory access being checked.
type Access int

const (
	// Read is a data read.
	Read Access = iota
	// Write is a data write.
	Write
	// Execute is an instruction fetch.
	Execute
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// FaultKind mirrors the x86 exception classes relevant to protection.
type FaultKind int

const (
	// GP is a general-protection fault (segment-level violation:
	// limit, privilege, type, or null selector).
	GP FaultKind = iota
	// PF is a page fault (not-present page, page-privilege violation,
	// or write to a read-only page).
	PF
	// SS is a stack-segment fault.
	SS
	// NP is a segment-not-present fault.
	NP
	// UD is an invalid-opcode fault.
	UD
)

func (k FaultKind) String() string {
	switch k {
	case GP:
		return "#GP"
	case PF:
		return "#PF"
	case SS:
		return "#SS"
	case NP:
		return "#NP"
	case UD:
		return "#UD"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault describes a protection violation or translation failure.
type Fault struct {
	Kind   FaultKind
	Sel    Selector // segment involved (segment-level faults)
	Off    uint32   // offending offset within the segment
	Linear uint32   // offending linear address (page-level faults)
	Access Access
	CPL    int
	Reason string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s: %s access at sel %s off %#x (linear %#x, cpl %d): %s",
		f.Kind, f.Access, f.Sel, f.Off, f.Linear, f.CPL, f.Reason)
}
