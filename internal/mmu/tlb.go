package mmu

// tlbEntry caches one linear-page translation together with the leaf
// permission bits consulted during the page-level check.
type tlbEntry struct {
	frame    uint32
	writable bool
	user     bool
}

// TLB is a translation lookaside buffer. As on the x86 (Figure 1), it
// is flushed whenever CR3 is loaded, i.e. on every task switch; the
// cost of refilling it afterwards is charged as TLBMiss page walks.
type TLB struct {
	entries map[uint32]tlbEntry
	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[uint32]tlbEntry)}
}

func (t *TLB) lookup(page uint32) (tlbEntry, bool) {
	e, ok := t.entries[page]
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return e, ok
}

func (t *TLB) insert(page uint32, e tlbEntry) {
	t.entries[page] = e
}

// Invalidate drops the entry for one page (the invlpg instruction);
// used when the kernel changes a single mapping's permissions.
func (t *TLB) Invalidate(page uint32) {
	delete(t.entries, page)
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	clear(t.entries)
	t.flushes++
}

// Stats reports hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len reports the number of live entries.
func (t *TLB) Len() int { return len(t.entries) }
