package mmu

import "repro/internal/mem"

// tlbEntry carries one linear-page translation together with the leaf
// permission bits consulted during the page-level check.
type tlbEntry struct {
	frame    uint32
	writable bool
	user     bool
}

const (
	// The 20-bit virtual page number is split into a root index and a
	// leaf index; leaves are allocated lazily so an idle TLB costs one
	// root array. Indexing covers the full VPN space, so the array
	// TLB never suffers conflict evictions: hit/miss behaviour is
	// identical, entry for entry, to the unbounded map it replaced.
	tlbLeafBits = 10
	tlbLeafSize = 1 << tlbLeafBits
	tlbRootSize = 1 << (32 - mem.PageShift - tlbLeafBits)

	// Packed-entry flag bits. They live in the low 12 bits of the
	// entry word, which are always zero in the page-aligned frame
	// address. Validity is carried by the epoch tag in the high 32
	// bits, not by a flag.
	tlbFlagWritable = 1 << 1
	tlbFlagUser     = 1 << 2
)

// tlbLeaf holds the packed translations for one aligned 4 MB slice of
// the linear address space: [epoch:32 | frame:20<<12 | flags:3].
type tlbLeaf [tlbLeafSize]uint64

// TLB is a translation lookaside buffer. As on the x86 (Figure 1), it
// is flushed whenever CR3 is loaded, i.e. on every task switch; the
// cost of refilling it afterwards is charged as TLBMiss page walks.
//
// The backing store is a two-level array indexed directly by virtual
// page number — the interpreter's hottest lookup is two shifts, two
// indexed loads and a compare instead of a Go map probe. Each element
// packs an epoch in its high 32 bits; Flush just bumps the current
// epoch, invalidating every entry in O(1) without touching the leaves.
type TLB struct {
	root    [tlbRootSize]*tlbLeaf
	epoch   uint32
	live    int
	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{epoch: 1}
}

func unpack(e uint64) tlbEntry {
	lo := uint32(e)
	return tlbEntry{
		frame:    lo &^ uint32(mem.PageMask),
		writable: lo&tlbFlagWritable != 0,
		user:     lo&tlbFlagUser != 0,
	}
}

// lookup probes the TLB for a page-aligned linear address, counting
// the probe as a hit or a miss.
func (t *TLB) lookup(page uint32) (tlbEntry, bool) {
	e, ok := t.peek(page)
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return e, ok
}

// peek reports the cached translation for a page without touching the
// hit/miss counters. It is the single probe implementation (lookup
// wraps it with counting): the CPU's block builder uses it directly,
// since its stat-free pre-translation must see exactly the state a
// counted lookup would.
func (t *TLB) peek(page uint32) (tlbEntry, bool) {
	vpn := page >> mem.PageShift
	leaf := t.root[vpn>>tlbLeafBits]
	if leaf == nil {
		return tlbEntry{}, false
	}
	e := leaf[vpn&(tlbLeafSize-1)]
	if uint32(e>>32) != t.epoch {
		return tlbEntry{}, false
	}
	return unpack(e), true
}

func (t *TLB) insert(page uint32, e tlbEntry) {
	vpn := page >> mem.PageShift
	leaf := t.root[vpn>>tlbLeafBits]
	if leaf == nil {
		leaf = new(tlbLeaf)
		t.root[vpn>>tlbLeafBits] = leaf
	}
	idx := vpn & (tlbLeafSize - 1)
	if uint32(leaf[idx]>>32) != t.epoch {
		t.live++
	}
	lo := e.frame &^ uint32(mem.PageMask)
	if e.writable {
		lo |= tlbFlagWritable
	}
	if e.user {
		lo |= tlbFlagUser
	}
	leaf[idx] = uint64(t.epoch)<<32 | uint64(lo)
}

// Invalidate drops the entry for one page (the invlpg instruction);
// used when the kernel changes a single mapping's permissions.
func (t *TLB) Invalidate(page uint32) {
	vpn := page >> mem.PageShift
	leaf := t.root[vpn>>tlbLeafBits]
	if leaf == nil {
		return
	}
	idx := vpn & (tlbLeafSize - 1)
	if uint32(leaf[idx]>>32) == t.epoch {
		t.live--
	}
	leaf[idx] = 0
}

// Flush empties the TLB by advancing the epoch; every entry stamped
// with an older epoch is dead. (The epoch is 32 bits: over four
// billion flushes would be needed to wrap it within one simulation.)
func (t *TLB) Flush() {
	t.epoch++
	t.live = 0
	t.flushes++
}

// CountHit records one TLB hit without re-probing the arrays. It is
// the accounting half of the CPU's same-page fetch fast path: when a
// block's next instruction fetch lands on the page the previous fetch
// just translated (and nothing that could invalidate the entry has
// happened — the translation generation is unchanged), the probe is
// guaranteed to hit, so only the counter moves. The counter effect is
// exactly that of a hitting lookup: hits+1, misses+0, no charge.
func (t *TLB) CountHit() { t.hits++ }

// Stats reports hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Clone deep-copies the TLB: contents, epoch and counters. A cloned or
// restored machine must resume with exactly this TLB state, because
// hit/miss behaviour feeds the charged page-walk costs — a flush
// instead of a copy would perturb every subsequent simulated metric.
func (t *TLB) Clone() *TLB {
	c := &TLB{epoch: t.epoch, live: t.live, hits: t.hits, misses: t.misses, flushes: t.flushes}
	for i, leaf := range t.root {
		if leaf != nil {
			nl := *leaf
			c.root[i] = &nl
		}
	}
	return c
}

// restoreFrom rewinds this TLB to the state of a snapshot produced by
// Clone, reusing existing leaves where possible.
func (t *TLB) restoreFrom(s *TLB) {
	t.epoch, t.live, t.hits, t.misses, t.flushes = s.epoch, s.live, s.hits, s.misses, s.flushes
	for i := range t.root {
		switch {
		case s.root[i] == nil:
			t.root[i] = nil
		case t.root[i] == nil:
			nl := *s.root[i]
			t.root[i] = &nl
		default:
			*t.root[i] = *s.root[i]
		}
	}
}

// Len reports the number of live entries.
func (t *TLB) Len() int { return t.live }
