package mmu

import (
	"testing"

	"repro/internal/mem"
)

// mapModelTLB is a reference model of the TLB the array implementation
// replaced: an unbounded map of cached pages. Replaying an access
// trace against both and comparing the counters pins the array TLB to
// the exact hit/miss/flush accounting of the map.
type mapModelTLB struct {
	cached  map[uint32]bool
	hits    uint64
	misses  uint64
	flushes uint64
}

func (m *mapModelTLB) access(page uint32) {
	if m.cached[page] {
		m.hits++
		return
	}
	m.misses++
	m.cached[page] = true
}

func (m *mapModelTLB) invalidate(page uint32) { delete(m.cached, page) }

func (m *mapModelTLB) flush() {
	clear(m.cached)
	m.flushes++
}

// TestArrayTLBMatchesMapModel replays a fixed workload — strided and
// repeated page accesses interleaved with single-page invalidations
// and full flushes — through MMU.Translate while driving the map
// model in lockstep, then requires identical hit/miss/flush counts.
func TestArrayTLBMatchesMapModel(t *testing.T) {
	m, as := testMMU(t)
	model := &mapModelTLB{cached: make(map[uint32]bool)}
	// Compare deltas: testMMU's boot LoadCR3 already counted a flush.
	h0, m0, f0 := m.TLB().Stats()

	// A deterministic page set: 64 user pages, mapped up front.
	// (Mapping allocates page-table frames but never touches the TLB.)
	pages := make([]uint32, 64)
	for i := range pages {
		lin := uint32(0x0040_0000 + i*mem.PageSize)
		if err := as.Map(lin, uint32(0x0100_0000+i*mem.PageSize), true, true); err != nil {
			t.Fatal(err)
		}
		pages[i] = lin
	}

	access := func(lin uint32) {
		t.Helper()
		if _, f := m.Translate(MakeSelector(4, false, 3), lin, 4, Read, 3); f != nil {
			t.Fatalf("translate %#x: %v", lin, f)
		}
		model.access(lin &^ uint32(mem.PageMask))
	}

	// xorshift PRNG with a fixed seed keeps the trace deterministic.
	state := uint32(0x9E3779B9)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return int(state) & (n - 1)
	}

	for round := 0; round < 2000; round++ {
		switch {
		case round%97 == 96:
			m.LoadCR3(as) // flush
			model.flush()
		case round%13 == 12:
			lin := pages[next(len(pages))]
			m.InvalidatePage(lin)
			model.invalidate(lin)
		default:
			access(pages[next(len(pages))])
		}
	}

	hits, misses, flushes := m.TLB().Stats()
	hits, misses, flushes = hits-h0, misses-m0, flushes-f0
	if hits != model.hits || misses != model.misses || flushes != model.flushes {
		t.Errorf("array TLB %d/%d/%d (hit/miss/flush), map model %d/%d/%d",
			hits, misses, flushes, model.hits, model.misses, model.flushes)
	}
	if hits == 0 || misses == 0 || flushes == 0 {
		t.Errorf("degenerate trace: %d/%d/%d", hits, misses, flushes)
	}
	if m.TLB().Len() > len(pages) {
		t.Errorf("live entries = %d, more than the %d distinct pages", m.TLB().Len(), len(pages))
	}
}
