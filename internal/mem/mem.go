// Package mem implements the simulated physical memory and the page
// frame allocator. Physical memory is sparse: 4 KB frames are allocated
// on first touch, so a 4 GB physical address space costs only what is
// actually used.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of a physical page frame in bytes (4 KB, as on
// the Intel x86 architecture).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

const (
	// The 20-bit physical frame number is split into a root index and
	// a chunk index; chunks are allocated lazily, so sparse use of the
	// 4 GB physical space stays cheap while every access is two
	// indexed loads instead of a map probe — this sits under every
	// simulated load, store and page-table walk.
	physChunkBits = 10
	physChunkSize = 1 << physChunkBits
	physRootSize  = 1 << (32 - PageShift - physChunkBits)
)

type physChunk [physChunkSize]*[PageSize]byte

// Physical is a sparse physical memory.
type Physical struct {
	root    [physRootSize]*physChunk
	touched int
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{}
}

func (p *Physical) frame(pa uint32) *[PageSize]byte {
	fn := pa >> PageShift
	c := p.root[fn>>physChunkBits]
	if c == nil {
		c = new(physChunk)
		p.root[fn>>physChunkBits] = c
	}
	f := c[fn&(physChunkSize-1)]
	if f == nil {
		f = new([PageSize]byte)
		c[fn&(physChunkSize-1)] = f
		p.touched++
	}
	return f
}

// Read8 reads one byte at physical address pa.
func (p *Physical) Read8(pa uint32) byte {
	return p.frame(pa)[pa&PageMask]
}

// Write8 writes one byte at physical address pa.
func (p *Physical) Write8(pa uint32, v byte) {
	p.frame(pa)[pa&PageMask] = v
}

// Read32 reads a little-endian 32-bit word at pa. Accesses that
// straddle a frame boundary are assembled byte-wise (the MMU has
// already translated and checked each page).
func (p *Physical) Read32(pa uint32) uint32 {
	if pa&PageMask <= PageSize-4 {
		f := p.frame(pa)
		off := pa & PageMask
		return binary.LittleEndian.Uint32(f[off : off+4])
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(p.Read8(pa+i)) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word at pa.
func (p *Physical) Write32(pa uint32, v uint32) {
	if pa&PageMask <= PageSize-4 {
		f := p.frame(pa)
		off := pa & PageMask
		binary.LittleEndian.PutUint32(f[off:off+4], v)
		return
	}
	for i := uint32(0); i < 4; i++ {
		p.Write8(pa+i, byte(v>>(8*i)))
	}
}

// Read16 reads a little-endian 16-bit word at pa.
func (p *Physical) Read16(pa uint32) uint16 {
	return uint16(p.Read8(pa)) | uint16(p.Read8(pa+1))<<8
}

// Write16 writes a little-endian 16-bit word at pa.
func (p *Physical) Write16(pa uint32, v uint16) {
	p.Write8(pa, byte(v))
	p.Write8(pa+1, byte(v>>8))
}

// ReadBytes copies n bytes starting at pa into a new slice.
func (p *Physical) ReadBytes(pa uint32, n int) []byte {
	b := make([]byte, n)
	copied := 0
	for copied < n {
		f := p.frame(pa)
		off := int(pa & PageMask)
		c := copy(b[copied:], f[off:])
		copied += c
		pa += uint32(c)
	}
	return b
}

// WriteBytes copies b into physical memory starting at pa.
func (p *Physical) WriteBytes(pa uint32, b []byte) {
	for len(b) > 0 {
		f := p.frame(pa)
		off := int(pa & PageMask)
		c := copy(f[off:], b)
		b = b[c:]
		pa += uint32(c)
	}
}

// Zero clears n bytes starting at pa.
func (p *Physical) Zero(pa uint32, n int) {
	for n > 0 {
		f := p.frame(pa)
		off := int(pa & PageMask)
		c := min(n, PageSize-off)
		clear(f[off : off+c])
		n -= c
		pa += uint32(c)
	}
}

// FrameCount reports how many frames have been touched.
func (p *Physical) FrameCount() int { return p.touched }

// FrameAllocator hands out physical page frames from a fixed region of
// physical memory. Frames are identified by their physical base
// address.
type FrameAllocator struct {
	next  uint32
	limit uint32
	free  []uint32
}

// NewFrameAllocator manages frames in [start, start+size).
// Both start and size must be page-aligned.
func NewFrameAllocator(start, size uint32) *FrameAllocator {
	if start&PageMask != 0 || size&PageMask != 0 {
		panic(fmt.Sprintf("mem: unaligned frame region %#x+%#x", start, size))
	}
	return &FrameAllocator{next: start, limit: start + size}
}

// Alloc returns the base physical address of a fresh frame.
func (a *FrameAllocator) Alloc() (uint32, error) {
	if n := len(a.free); n > 0 {
		pa := a.free[n-1]
		a.free = a.free[:n-1]
		return pa, nil
	}
	if a.next >= a.limit {
		return 0, fmt.Errorf("mem: out of physical frames (limit %#x)", a.limit)
	}
	pa := a.next
	a.next += PageSize
	return pa, nil
}

// Free returns a frame to the allocator.
func (a *FrameAllocator) Free(pa uint32) {
	if pa&PageMask != 0 {
		panic(fmt.Sprintf("mem: freeing unaligned frame %#x", pa))
	}
	a.free = append(a.free, pa)
}

// Available reports how many frames can still be allocated.
func (a *FrameAllocator) Available() int {
	return int((a.limit-a.next)/PageSize) + len(a.free)
}
