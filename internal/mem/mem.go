// Package mem implements the simulated physical memory and the page
// frame allocator. Physical memory is sparse: 4 KB frames are allocated
// on first touch, so a 4 GB physical address space costs only what is
// actually used.
//
// The frame store is copy-on-write: Snapshot freezes the current frame
// table into an immutable parent, Clone derives a new Physical sharing
// every frame with its source, and the first write through a shared
// frame clones just that frame. Whole-machine snapshot/restore
// (internal/cpu, internal/kernel, internal/core) and O(1) fleet machine
// cloning (internal/fleet) are built on this layer.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"slices"
	"sync/atomic"
)

// PageSize is the size of a physical page frame in bytes (4 KB, as on
// the Intel x86 architecture).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

const (
	// The 20-bit physical frame number is split into a root index and
	// a chunk index; chunks are allocated lazily, so sparse use of the
	// 4 GB physical space stays cheap while every access is two
	// indexed loads instead of a map probe — this sits under every
	// simulated load, store and page-table walk.
	physChunkBits = 10
	physChunkSize = 1 << physChunkBits
	physRootSize  = 1 << (32 - PageShift - physChunkBits)
)

// frame is one 4 KB physical page frame. refs counts how many chunk
// tables reference it; a frame is written in place only while that
// count is 1, so a frame reachable from a snapshot or a clone is
// immutable until the writer clones it off (the COW write fault).
// The count is atomic because clones run on different goroutines.
type frame struct {
	refs atomic.Int32
	data [PageSize]byte
}

// frameSlabSize is how many frames one slab allocation holds. Frames
// carry no pointers, so a slab is a single no-scan allocation: booting
// a machine costs a handful of slab allocations instead of hundreds of
// individual 4 KB ones, which is what used to drive GC frequency in
// boot-heavy drivers (Table 3 cells, fleets). The tradeoff: a slab is
// retained while ANY of its frames is referenced, so a workload that
// releases almost all of a machine's memory but pins a few scattered
// frames (a sparse long-lived snapshot) can retain up to
// frameSlabSize× the frame bytes the refcounts say are live. Machines
// are normally retained or released wholesale, where the slab granule
// costs nothing.
const frameSlabSize = 64

// newFrame hands out the next frame from this Physical's slab. Slabs
// are per-Physical (each simulated machine is goroutine-owned), so no
// locking is needed; the frames themselves may still be shared
// copy-on-write across Physicals afterwards.
func (p *Physical) newFrame() *frame {
	if len(p.slab) == 0 {
		p.slab = make([]frame, frameSlabSize)
	}
	f := &p.slab[0]
	p.slab = p.slab[1:]
	f.refs.Store(1)
	return f
}

// physChunk is one 4 MB-aligned slice of the frame table. refs counts
// how many frame tables (Physicals and Snapshots) reference the chunk;
// the frames array is mutated only while that count is 1. Sharing is
// two-level so Snapshot/Clone touch only the ~1k chunk pointers, not
// every frame.
type physChunk struct {
	refs   atomic.Int32
	frames [physChunkSize]*frame
}

func newChunk() *physChunk {
	c := &physChunk{}
	c.refs.Store(1)
	return c
}

// releaseChunk drops one reference to c, cascading a frame release when
// the chunk itself dies.
func releaseChunk(c *physChunk) {
	if c.refs.Add(-1) == 0 {
		for _, f := range c.frames {
			if f != nil {
				f.refs.Add(-1)
			}
		}
	}
}

// Physical is a sparse, copy-on-write physical memory.
type Physical struct {
	root    [physRootSize]*physChunk
	touched int

	// cowCopies counts frames cloned by write faults; snapshots counts
	// Snapshot calls; deduped counts frames folded onto a canonical
	// FrameStore frame by Intern (diagnostics only — COW and interning
	// charge no simulated cycles, so the non-snapshot paths stay
	// bit-identical).
	cowCopies uint64
	snapshots uint64
	deduped   uint64

	// onRestore, when set (by the MMU observing this memory), runs
	// after every Restore so translation-keyed decode state (the CPU's
	// decoded-block cache generation) is invalidated: the restored
	// frame table may back the same physical addresses with different
	// bytes and different installed code.
	onRestore func()

	// slab batches frame allocation (see newFrame).
	slab []frame
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{}
}

// OnRestore registers the restore hook (one consumer: the MMU).
func (p *Physical) OnRestore(fn func()) { p.onRestore = fn }

// exclusiveChunk returns the chunk covering frame number fn with this
// Physical as its sole owner, creating it when absent and splitting it
// off when it is shared with a snapshot or a clone (the chunk-level
// half of the COW write fault).
func (p *Physical) exclusiveChunk(fn uint32) *physChunk {
	ci := fn >> physChunkBits
	c := p.root[ci]
	if c == nil {
		c = newChunk()
		p.root[ci] = c
		return c
	}
	if c.refs.Load() == 1 {
		return c
	}
	nc := newChunk()
	nc.frames = c.frames
	for _, f := range nc.frames {
		if f != nil {
			f.refs.Add(1)
		}
	}
	// Publish the new chunk before dropping the shared one: another
	// owner may treat a refcount of 1 as exclusive the instant the
	// decrement lands, so all our copying must be done by then.
	p.root[ci] = nc
	releaseChunk(c)
	return nc
}

// readFrame returns the frame backing pa for reading. An absent frame
// is allocated zeroed, exactly as the pre-COW store did, so FrameCount
// accounting is unchanged on non-snapshot paths.
func (p *Physical) readFrame(pa uint32) *[PageSize]byte {
	fn := pa >> PageShift
	if c := p.root[fn>>physChunkBits]; c != nil {
		if f := c.frames[fn&(physChunkSize-1)]; f != nil {
			return &f.data
		}
	}
	c := p.exclusiveChunk(fn)
	f := p.newFrame()
	c.frames[fn&(physChunkSize-1)] = f
	p.touched++
	return &f.data
}

// writeFrame returns the frame backing pa for writing, cloning a
// shared frame first (the frame-level half of the COW write fault).
func (p *Physical) writeFrame(pa uint32) *[PageSize]byte {
	fn := pa >> PageShift
	c := p.exclusiveChunk(fn)
	i := fn & (physChunkSize - 1)
	f := c.frames[i]
	if f == nil {
		f = p.newFrame()
		c.frames[i] = f
		p.touched++
		return &f.data
	}
	if f.refs.Load() > 1 {
		nf := p.newFrame()
		nf.data = f.data
		c.frames[i] = nf
		f.refs.Add(-1)
		p.cowCopies++
		f = nf
	}
	return &f.data
}

// Snapshot freezes the current frame table into an immutable parent:
// every chunk becomes shared, so later writes through this Physical
// (or any clone) fault their frame off before mutating it. Snapshots
// charge no simulated cycles and leave all simulated metrics
// untouched. Call Release when the snapshot is no longer needed so
// frames stop being treated as shared.
func (p *Physical) Snapshot() *Snapshot {
	s := &Snapshot{touched: p.touched}
	s.root = p.root
	for _, c := range s.root {
		if c != nil {
			c.refs.Add(1)
		}
	}
	p.snapshots++
	return s
}

// Restore resets the memory image to exactly the snapshot's state and
// fires the restore hook (invalidating translation-keyed decode state
// in the MMU's consumers). The snapshot stays valid and can be
// restored again.
func (p *Physical) Restore(s *Snapshot) {
	if s.released {
		panic("mem: restoring a released snapshot")
	}
	old := p.root
	p.root = s.root
	for _, c := range p.root {
		if c != nil {
			c.refs.Add(1)
		}
	}
	for _, c := range old {
		if c != nil {
			releaseChunk(c)
		}
	}
	p.touched = s.touched
	if p.onRestore != nil {
		p.onRestore()
	}
}

// Clone derives a new Physical whose initial contents are bit-identical
// to p, sharing every frame copy-on-write. The cost is O(chunks), not
// O(bytes): this is what makes whole-machine cloning O(1) in the size
// of memory. The clone may be used from another goroutine; the shared
// refcounts are atomic.
func (p *Physical) Clone() *Physical {
	q := &Physical{touched: p.touched}
	q.root = p.root
	for _, c := range q.root {
		if c != nil {
			c.refs.Add(1)
		}
	}
	return q
}

// Snapshot is an immutable frozen frame table.
type Snapshot struct {
	root     [physRootSize]*physChunk
	touched  int
	released bool
}

// Release drops the snapshot's frame references; restoring it
// afterwards panics. Releasing lets sole-owner frames be written in
// place again instead of being COW-cloned forever.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	for _, c := range s.root {
		if c != nil {
			releaseChunk(c)
		}
	}
}

// ForEachPageRun invokes fn once per maximal page-contained run of
// [addr, addr+n): fn(runAddr, runLen) with runLen clamped so a run
// never crosses a page boundary. It is the single implementation of
// the page-chunking loop used by every page-wise copy path (kernel
// user copies, loader writes, extension-segment staging), so boundary
// arithmetic lives in exactly one place.
func ForEachPageRun(addr uint32, n int, fn func(addr uint32, n int) error) error {
	for n > 0 {
		c := PageSize - int(addr&PageMask)
		if c > n {
			c = n
		}
		if err := fn(addr, c); err != nil {
			return err
		}
		addr += uint32(c)
		n -= c
	}
	return nil
}

// FrameView returns the whole 4 KB frame containing pa for READING.
// The caller must not write through it: a viewed frame may be shared
// copy-on-write with snapshots or clones (use FrameMut for writing).
// Like every read, an absent frame is allocated zeroed. Bulk scanners
// (page-table walks, fingerprinting, copies) use this to replace
// word-at-a-time Read32 loops with direct frame access.
func (p *Physical) FrameView(pa uint32) *[PageSize]byte {
	return p.readFrame(pa)
}

// FrameMut returns the whole 4 KB frame containing pa for WRITING,
// performing the same copy-on-write fault a Write32 would (shared
// chunks and frames are split off first). Bulk writers use it to
// replace word-at-a-time Write32 loops.
func (p *Physical) FrameMut(pa uint32) *[PageSize]byte {
	return p.writeFrame(pa)
}

// FrameViewStable returns the frame containing pa for reading, plus
// whether the caller may keep reading through the returned pointer
// while it performs further accesses on this Physical: true only when
// this Physical is the frame's sole owner (chunk and frame both
// unshared), so no copy-on-write fault triggered by an interleaved
// write can replace the frame underneath a held pointer. A shared
// frame is still returned — valid for this one read — but must not be
// cached: a later write to the same page would clone the frame and
// leave the held pointer reading frozen snapshot bytes. The CPU's
// trace tier uses this to pin frames for a dispatch, during which
// nothing can newly share a frame (Snapshot and Clone never run
// mid-dispatch).
func (p *Physical) FrameViewStable(pa uint32) (*[PageSize]byte, bool) {
	fn := pa >> PageShift
	if c := p.root[fn>>physChunkBits]; c != nil {
		if f := c.frames[fn&(physChunkSize-1)]; f != nil {
			return &f.data, c.refs.Load() == 1 && f.refs.Load() == 1
		}
	}
	return p.readFrame(pa), false
}

// Read8 reads one byte at physical address pa.
func (p *Physical) Read8(pa uint32) byte {
	return p.readFrame(pa)[pa&PageMask]
}

// Write8 writes one byte at physical address pa.
func (p *Physical) Write8(pa uint32, v byte) {
	p.writeFrame(pa)[pa&PageMask] = v
}

// Read32 reads a little-endian 32-bit word at pa. Accesses that
// straddle a frame boundary are assembled byte-wise (the MMU has
// already translated and checked each page).
func (p *Physical) Read32(pa uint32) uint32 {
	if pa&PageMask <= PageSize-4 {
		f := p.readFrame(pa)
		off := pa & PageMask
		return binary.LittleEndian.Uint32(f[off : off+4])
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(p.Read8(pa+i)) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word at pa.
func (p *Physical) Write32(pa uint32, v uint32) {
	if pa&PageMask <= PageSize-4 {
		f := p.writeFrame(pa)
		off := pa & PageMask
		binary.LittleEndian.PutUint32(f[off:off+4], v)
		return
	}
	for i := uint32(0); i < 4; i++ {
		p.Write8(pa+i, byte(v>>(8*i)))
	}
}

// Read16 reads a little-endian 16-bit word at pa.
func (p *Physical) Read16(pa uint32) uint16 {
	return uint16(p.Read8(pa)) | uint16(p.Read8(pa+1))<<8
}

// Write16 writes a little-endian 16-bit word at pa.
func (p *Physical) Write16(pa uint32, v uint16) {
	p.Write8(pa, byte(v))
	p.Write8(pa+1, byte(v>>8))
}

// ReadBytes copies n bytes starting at pa into a new slice.
func (p *Physical) ReadBytes(pa uint32, n int) []byte {
	b := make([]byte, n)
	copied := 0
	for copied < n {
		f := p.readFrame(pa)
		off := int(pa & PageMask)
		c := copy(b[copied:], f[off:])
		copied += c
		pa += uint32(c)
	}
	return b
}

// WriteBytes copies b into physical memory starting at pa.
func (p *Physical) WriteBytes(pa uint32, b []byte) {
	for len(b) > 0 {
		f := p.writeFrame(pa)
		off := int(pa & PageMask)
		c := copy(f[off:], b)
		b = b[c:]
		pa += uint32(c)
	}
}

// Zero clears n bytes starting at pa. A frame that has never been
// touched is born zeroed, so zeroing it only materializes it — this is
// the page-table/stack-page boot path, which used to allocate a zeroed
// frame and then clear it again.
func (p *Physical) Zero(pa uint32, n int) {
	for n > 0 {
		off := int(pa & PageMask)
		c := min(n, PageSize-off)
		fn := pa >> PageShift
		ch := p.root[fn>>physChunkBits]
		if ch == nil || ch.frames[fn&(physChunkSize-1)] == nil {
			// Absent frame: materialize it (already all zero), with
			// the same touch accounting a write would perform.
			ch = p.exclusiveChunk(fn)
			ch.frames[fn&(physChunkSize-1)] = p.newFrame()
			p.touched++
		} else {
			f := p.writeFrame(pa)
			clear(f[off : off+c])
		}
		n -= c
		pa += uint32(c)
	}
}

// FrameCount reports how many frames have been touched.
func (p *Physical) FrameCount() int { return p.touched }

// COWStats reports copy-on-write diagnostics: snapshots taken on this
// Physical, frames cloned by write faults, and resident frames
// replaced by content-addressed interning (Intern) — dedupedFrames is
// how many private frames this Physical gave up in favor of canonical
// FrameStore frames.
func (p *Physical) COWStats() (snapshots, frameCopies, dedupedFrames uint64) {
	return p.snapshots, p.cowCopies, p.deduped
}

// fingerprintSeed is fixed so fingerprints are comparable across
// Physicals within one process (differential tests hash two machines).
var fingerprintSeed = maphash.MakeSeed()

// Fingerprint hashes every touched frame (index and contents) into one
// value; two Physicals with identical allocated frames and identical
// bytes fingerprint equally. It never allocates frames.
func (p *Physical) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fingerprintSeed)
	var idx [4]byte
	for ci, c := range p.root {
		if c == nil {
			continue
		}
		for fi, f := range c.frames {
			if f == nil {
				continue
			}
			binary.LittleEndian.PutUint32(idx[:], uint32(ci)<<physChunkBits|uint32(fi))
			h.Write(idx[:])
			h.Write(f.data[:])
		}
	}
	return h.Sum64()
}

// FrameAllocator hands out physical page frames from a fixed region of
// physical memory. Frames are identified by their physical base
// address.
type FrameAllocator struct {
	next  uint32
	limit uint32
	free  []uint32
}

// NewFrameAllocator manages frames in [start, start+size).
// Both start and size must be page-aligned.
func NewFrameAllocator(start, size uint32) *FrameAllocator {
	if start&PageMask != 0 || size&PageMask != 0 {
		panic(fmt.Sprintf("mem: unaligned frame region %#x+%#x", start, size))
	}
	return &FrameAllocator{next: start, limit: start + size}
}

// Alloc returns the base physical address of a fresh frame.
func (a *FrameAllocator) Alloc() (uint32, error) {
	if n := len(a.free); n > 0 {
		pa := a.free[n-1]
		a.free = a.free[:n-1]
		return pa, nil
	}
	if a.next >= a.limit {
		return 0, fmt.Errorf("mem: out of physical frames (limit %#x)", a.limit)
	}
	pa := a.next
	a.next += PageSize
	return pa, nil
}

// Free returns a frame to the allocator.
func (a *FrameAllocator) Free(pa uint32) {
	if pa&PageMask != 0 {
		panic(fmt.Sprintf("mem: freeing unaligned frame %#x", pa))
	}
	a.free = append(a.free, pa)
}

// Available reports how many frames can still be allocated.
func (a *FrameAllocator) Available() int {
	return int((a.limit-a.next)/PageSize) + len(a.free)
}

// Clone copies the allocator (cursor and free list) for a cloned
// machine, so both sides keep handing out the same deterministic frame
// sequence their shared history established.
func (a *FrameAllocator) Clone() *FrameAllocator {
	return &FrameAllocator{next: a.next, limit: a.limit, free: slices.Clone(a.free)}
}

// AllocatorState is a FrameAllocator snapshot.
type AllocatorState struct {
	next uint32
	free []uint32
}

// Save captures the allocator state.
func (a *FrameAllocator) Save() AllocatorState {
	return AllocatorState{next: a.next, free: slices.Clone(a.free)}
}

// RestoreState rewinds the allocator to a saved state.
func (a *FrameAllocator) RestoreState(s AllocatorState) {
	a.next = s.next
	a.free = append(a.free[:0], s.free...)
}
