package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWrite8(t *testing.T) {
	p := NewPhysical()
	p.Write8(0x1234, 0xAB)
	if got := p.Read8(0x1234); got != 0xAB {
		t.Errorf("Read8 = %#x, want 0xAB", got)
	}
	if got := p.Read8(0x1235); got != 0 {
		t.Errorf("untouched byte = %#x, want 0", got)
	}
}

func TestReadWrite32LittleEndian(t *testing.T) {
	p := NewPhysical()
	p.Write32(0x100, 0xDEADBEEF)
	if got := p.Read8(0x100); got != 0xEF {
		t.Errorf("low byte = %#x, want 0xEF (little endian)", got)
	}
	if got := p.Read32(0x100); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x", got)
	}
}

func TestWord32AcrossPageBoundary(t *testing.T) {
	p := NewPhysical()
	addr := uint32(PageSize - 2)
	p.Write32(addr, 0x11223344)
	if got := p.Read32(addr); got != 0x11223344 {
		t.Errorf("straddling Read32 = %#x", got)
	}
	if p.FrameCount() != 2 {
		t.Errorf("frames touched = %d, want 2", p.FrameCount())
	}
}

func TestReadWrite16(t *testing.T) {
	p := NewPhysical()
	p.Write16(7, 0xBEEF)
	if got := p.Read16(7); got != 0xBEEF {
		t.Errorf("Read16 = %#x", got)
	}
}

func TestBytesAndZero(t *testing.T) {
	p := NewPhysical()
	src := []byte("palladium")
	p.WriteBytes(0x2000, src)
	if got := p.ReadBytes(0x2000, len(src)); !bytes.Equal(got, src) {
		t.Errorf("ReadBytes = %q", got)
	}
	p.Zero(0x2000, 4)
	if got := p.ReadBytes(0x2000, len(src)); !bytes.Equal(got, append([]byte{0, 0, 0, 0}, src[4:]...)) {
		t.Errorf("after Zero = %q", got)
	}
}

func TestSparseness(t *testing.T) {
	p := NewPhysical()
	p.Write8(0, 1)
	p.Write8(0xFFFF_F000, 1)
	if p.FrameCount() != 2 {
		t.Errorf("sparse memory touched %d frames, want 2", p.FrameCount())
	}
}

func TestWrite32ReadBack32Property(t *testing.T) {
	p := NewPhysical()
	f := func(addr, v uint32) bool {
		p.Write32(addr, v)
		return p.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrite32ByteDecompositionProperty(t *testing.T) {
	p := NewPhysical()
	f := func(addr, v uint32) bool {
		p.Write32(addr, v)
		for i := uint32(0); i < 4; i++ {
			if p.Read8(addr+i) != byte(v>>(8*i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameAllocator(t *testing.T) {
	a := NewFrameAllocator(0x10000, 3*PageSize)
	if a.Available() != 3 {
		t.Fatalf("available = %d, want 3", a.Available())
	}
	f1, err := a.Alloc()
	if err != nil || f1 != 0x10000 {
		t.Fatalf("first frame = %#x, err %v", f1, err)
	}
	f2, _ := a.Alloc()
	f3, _ := a.Alloc()
	if f2 == f1 || f3 == f2 || f3 == f1 {
		t.Fatal("allocator returned duplicate frames")
	}
	if _, err := a.Alloc(); err == nil {
		t.Fatal("allocation beyond the limit must fail")
	}
	a.Free(f2)
	if a.Available() != 1 {
		t.Errorf("available after free = %d, want 1", a.Available())
	}
	f4, err := a.Alloc()
	if err != nil || f4 != f2 {
		t.Errorf("reuse after free = %#x, want %#x", f4, f2)
	}
}

func TestFrameAllocatorAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned region must panic")
		}
	}()
	NewFrameAllocator(123, PageSize)
}

func TestFrameAllocatorUniqueProperty(t *testing.T) {
	// All frames handed out between frees are distinct and page
	// aligned.
	a := NewFrameAllocator(0, 64*PageSize)
	seen := make(map[uint32]bool)
	for {
		f, err := a.Alloc()
		if err != nil {
			break
		}
		if f&PageMask != 0 {
			t.Fatalf("unaligned frame %#x", f)
		}
		if seen[f] {
			t.Fatalf("duplicate frame %#x", f)
		}
		seen[f] = true
	}
	if len(seen) != 64 {
		t.Errorf("allocated %d frames, want 64", len(seen))
	}
}
