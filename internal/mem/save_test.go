package mem

import (
	"bytes"
	"errors"
	"testing"
)

// scribble populates p with a deterministic mix of zero, sparse and
// dense frames across several chunks.
func scribble(p *Physical) {
	for i := uint32(0); i < 40; i++ {
		pa := i * 3 * PageSize
		p.WriteBytes(pa, bytes.Repeat([]byte{byte(i + 1)}, 100+int(i)))
	}
	p.Zero(64*PageSize, 4*PageSize)          // explicit zero frames
	p.Write32((physChunkSize+7)*PageSize, 7) // second chunk
	p.Read32(200 * PageSize)                 // read-materialized zero frame
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := NewPhysical()
	scribble(p)
	p.Snapshot().Release()
	p.Write8(0, 9) // nonzero cowCopies via released-snapshot history
	img := p.SaveBytes()

	q := NewPhysical()
	q.Write32(5000*PageSize, 123) // pre-existing junk must be replaced
	restored := false
	q.OnRestore(func() { restored = true })
	if err := q.LoadBytes(img); err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	if !restored {
		t.Errorf("restore hook did not fire")
	}
	if got, want := q.Fingerprint(), p.Fingerprint(); got != want {
		t.Errorf("fingerprint %#x != %#x", got, want)
	}
	if q.FrameCount() != p.FrameCount() {
		t.Errorf("FrameCount %d != %d", q.FrameCount(), p.FrameCount())
	}
	ps, pc, pd := p.COWStats()
	qs, qc, qd := q.COWStats()
	if ps != qs || pc != qc || pd != qd {
		t.Errorf("COWStats (%d,%d,%d) != (%d,%d,%d)", qs, qc, qd, ps, pc, pd)
	}
	// Serialization is deterministic: a re-save is byte-identical.
	if !bytes.Equal(q.SaveBytes(), img) {
		t.Errorf("re-serialized image differs from original")
	}
}

func TestLoadBytesCorruption(t *testing.T) {
	p := NewPhysical()
	scribble(p)
	img := p.SaveBytes()
	fp := p.Fingerprint()

	fresh := func() *Physical {
		q := NewPhysical()
		q.Write8(0, 1)
		return q
	}
	check := func(t *testing.T, data []byte, want error) {
		t.Helper()
		q := fresh()
		wantFP, wantFC := q.Fingerprint(), q.FrameCount()
		err := q.LoadBytes(data)
		if err == nil {
			t.Fatalf("LoadBytes accepted bad image")
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("error %v, want %v", err, want)
		}
		if q.Fingerprint() != wantFP || q.FrameCount() != wantFC {
			t.Errorf("failed load mutated the target (half-machine)")
		}
	}

	t.Run("empty", func(t *testing.T) { check(t, nil, ErrTruncated) })
	t.Run("truncated-header", func(t *testing.T) { check(t, img[:10], ErrTruncated) })
	for _, cut := range []int{len(img) - 1, len(img) / 2, envHdrLen + 3} {
		t.Run("truncated", func(t *testing.T) {
			// A shortened envelope fails the length/CRC checks.
			check(t, img[:cut], nil)
		})
	}
	t.Run("bad-magic", func(t *testing.T) {
		bad := bytes.Clone(img)
		bad[0] ^= 0xff
		check(t, bad, ErrBadMagic)
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := bytes.Clone(img)
		bad[envMagicLen] ^= 0xff
		check(t, bad, ErrBadVersion)
	})
	t.Run("bit-flips", func(t *testing.T) {
		// Any single flipped bit past the version field trips the CRC.
		for _, off := range []int{envHdrLen, envHdrLen + 5, len(img) / 2, len(img) - 1} {
			bad := bytes.Clone(img)
			bad[off] ^= 0x10
			check(t, bad, ErrChecksum)
		}
	})
	t.Run("structural", func(t *testing.T) {
		// Resealed (valid CRC) but structurally corrupt payloads.
		payload, err := Open(physMagic, physVersion, img)
		if err != nil {
			t.Fatal(err)
		}
		mut := func(f func(b []byte) []byte) []byte {
			return Seal(physMagic, physVersion, f(bytes.Clone(payload)))
		}
		check(t, mut(func(b []byte) []byte { b[0] = 0xff; b[1] = 0xff; b[2] = 0xff; b[3] = 0xff; return b }), ErrCorrupt) // frame count
		check(t, mut(func(b []byte) []byte { return b[:len(b)-4] }), ErrTruncated)                                        // counters cut
		check(t, mut(func(b []byte) []byte { b[4] = 0xff; b[5] = 0xff; b[6] = 0xff; b[7] = 0xff; return b }), ErrCorrupt) // first fn out of range
		check(t, mut(func(b []byte) []byte { b[8] = 7; return b }), ErrCorrupt)                                           // unknown flag
		check(t, mut(func(b []byte) []byte { return append(b, 0) }), ErrCorrupt)                                          // trailing byte
	})

	// The original stayed intact through all of this.
	if p.Fingerprint() != fp {
		t.Errorf("source Physical mutated by corruption tests")
	}
}

func TestAllocatorSaveLoad(t *testing.T) {
	a := NewFrameAllocator(0x1000_0000, 0x100_0000)
	for i := 0; i < 10; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	a.Free(0x1000_2000)
	a.Free(0x1000_5000)
	var e Enc
	a.SaveTo(&e)

	b := NewFrameAllocator(0x1000_0000, 0x100_0000)
	if err := b.LoadFrom(NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if b.next != a.next || !equalU32(b.free, a.free) {
		t.Errorf("allocator state mismatch: next %#x free %v, want %#x %v", b.next, b.free, a.next, a.free)
	}

	// Region mismatch must be rejected without touching the target.
	c := NewFrameAllocator(0x1000_0000, 0x200_0000)
	if err := c.LoadFrom(NewDec(e.Data())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("limit mismatch error %v, want ErrCorrupt", err)
	}
	if c.next != 0x1000_0000 || len(c.free) != 0 {
		t.Errorf("failed allocator load mutated target")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReleaseUnsharesTemplate(t *testing.T) {
	p := NewPhysical()
	scribble(p)
	fp := p.Fingerprint()
	fc := p.FrameCount()

	clones := make([]*Physical, 8)
	for i := range clones {
		clones[i] = p.Clone()
		clones[i].Write32(uint32(i)*PageSize, uint32(i)+100)
	}
	if p.SoleOwnerFrames() != 0 {
		t.Errorf("template frames not shared while clones live")
	}
	for _, c := range clones {
		c.Release()
		if c.FrameCount() != 0 {
			t.Errorf("released clone still reports %d frames", c.FrameCount())
		}
	}
	if p.Fingerprint() != fp || p.FrameCount() != fc {
		t.Errorf("template changed by clone churn")
	}
	if got := p.SoleOwnerFrames(); got != fc {
		t.Errorf("%d of %d frames still falsely shared after release", fc-got, fc)
	}
	_, copies, _ := p.COWStats()
	p.Write8(0, p.Read8(0)) // in-place write: no COW fault after release
	if _, c2, _ := p.COWStats(); c2 != copies {
		t.Errorf("template write COW-copied after all clones released")
	}
}

func TestInternDedupsRestoredMachines(t *testing.T) {
	p := NewPhysical()
	scribble(p)
	img := p.SaveBytes()

	const n = 8
	store := NewFrameStore()
	machines := make([]*Physical, n)
	for i := range machines {
		q := NewPhysical()
		if err := q.LoadBytes(img); err != nil {
			t.Fatal(err)
		}
		machines[i] = q
	}
	naive, unique := ResidentFrames(machines...)
	if naive != n*p.FrameCount() || unique != naive {
		t.Fatalf("before intern: naive %d unique %d, want %d private frames", naive, unique, n*p.FrameCount())
	}
	for _, q := range machines {
		q.Intern(store)
	}
	naive, unique = ResidentFrames(machines...)
	if naive != n*p.FrameCount() {
		t.Errorf("intern changed logical residency: naive %d", naive)
	}
	// Identical-content frames fold within a machine too (the zeroed
	// frames share one canonical), so unique is the number of distinct
	// contents — at most one machine's worth, for >= n-fold dedup.
	if unique != store.Frames() || unique > p.FrameCount() || naive < n*unique {
		t.Errorf("after intern: %d unique frames (store %d, per-machine %d, ratio %.1fx)",
			unique, store.Frames(), p.FrameCount(), float64(naive)/float64(unique))
	}
	for i, q := range machines {
		if q.Fingerprint() != p.Fingerprint() {
			t.Fatalf("intern changed machine %d contents", i)
		}
	}
	_, _, ded := machines[1].COWStats()
	if ded == 0 {
		t.Errorf("COWStats dedupedFrames not counted")
	}

	// Writes through interned frames still COW off private copies.
	m0 := machines[0].Fingerprint()
	machines[1].Write32(0, 0xdeadbeef)
	if machines[0].Fingerprint() != m0 {
		t.Errorf("write through interned frame leaked into sibling")
	}

	// The store pins canonicals: releasing every machine must leave
	// the canonical frames immutable for later interners.
	for _, q := range machines {
		q.Release()
	}
	r := NewPhysical()
	if err := r.LoadBytes(img); err != nil {
		t.Fatal(err)
	}
	if got := r.Intern(store); got != r.FrameCount() {
		t.Errorf("fresh machine interned %d of %d frames against pinned store", got, r.FrameCount())
	}
	if r.Fingerprint() != p.Fingerprint() {
		t.Errorf("intern against aged store changed contents")
	}
}

// FuzzLoadBytes drives the framing decoder with arbitrary input: it
// must never panic and never leave the target half-loaded.
func FuzzLoadBytes(f *testing.F) {
	p := NewPhysical()
	scribble(p)
	img := p.SaveBytes()
	f.Add(img)
	f.Add(img[:len(img)-9])
	f.Add([]byte(physMagic))
	f.Add(Seal(physMagic, physVersion, []byte{1, 0, 0, 0}))
	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewPhysical()
		q.Write8(0, 1)
		fp, fc := q.Fingerprint(), q.FrameCount()
		if err := q.LoadBytes(data); err != nil {
			if q.Fingerprint() != fp || q.FrameCount() != fc {
				t.Fatalf("failed LoadBytes mutated target")
			}
		}
	})
}

// FuzzDec drives the primitive decoders directly.
func FuzzDec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		d.U8()
		d.Bool()
		d.U16()
		d.U32()
		d.U64()
		d.F64()
		d.Bytes()
		_ = d.String()
		d.Len("x", 100)
		d.Raw(3)
		_ = d.Err()
	})
}
