// Wire framing for snapshot-to-bytes serialization. Every layer that
// serializes machine state (mem, mmu, cpu, kernel, core, webserver)
// encodes through Enc and decodes through Dec, so the one decoder that
// must survive hostile input — length handling, bounds checks, typed
// errors — lives in exactly one place and is the fuzz target for all
// of them.
//
// The format is deterministic: fixed-width little-endian integers,
// length-prefixed byte strings, and map contents emitted in sorted key
// order by the callers. Determinism is load-bearing — the round-trip
// tests compare serialized images byte-for-byte.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
)

// Typed decode errors. Callers (and tests) classify failures with
// errors.Is; a LoadBytes never panics and never applies a partial
// image, it returns one of these wrapped with context.
var (
	// ErrTruncated: the input ended before the structure it promised.
	ErrTruncated = errors.New("mem: truncated image")
	// ErrBadMagic: the envelope does not start with the expected magic.
	ErrBadMagic = errors.New("mem: bad image magic")
	// ErrBadVersion: the envelope version is not the supported one.
	ErrBadVersion = errors.New("mem: unsupported image version")
	// ErrChecksum: the envelope CRC does not match its contents.
	ErrChecksum = errors.New("mem: image checksum mismatch")
	// ErrCorrupt: the framing decoded but the contents violate a
	// structural invariant (out-of-range index, wrong order, ...).
	ErrCorrupt = errors.New("mem: corrupt image")
)

// Enc accumulates a serialized image. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Data returns the accumulated encoding.
func (e *Enc) Data() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian 16-bit value.
func (e *Enc) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian 32-bit value.
func (e *Enc) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian 64-bit value.
func (e *Enc) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I32 appends a little-endian 32-bit value in two's complement.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a little-endian 64-bit value in two's complement.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends the IEEE 754 bit pattern of v (exact round trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends b with a 32-bit length prefix.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends s with a 32-bit length prefix.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends b with no length prefix (fixed-size fields whose length
// the decoder knows from the format).
func (e *Enc) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Dec decodes a serialized image. It is error-sticky: the first
// failure latches into err, every later accessor returns a zero value
// without advancing, and the caller checks Err once at the end — decode
// loops stay free of per-field error plumbing while still never
// reading out of bounds.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over b. The decoder aliases b; the caller
// must not mutate it while decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err reports the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many bytes have not been consumed.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Failf latches a structural-corruption error (wrapping ErrCorrupt)
// unless an earlier failure already latched.
func (d *Dec) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (at offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

// take consumes n bytes, latching ErrTruncated when fewer remain.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, d.off, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 consumes one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool consumes a boolean byte, latching ErrCorrupt unless it is 0 or 1.
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.Failf("boolean byte %#x", v)
		return false
	}
	return v == 1
}

// U16 consumes a little-endian 16-bit value.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 consumes a little-endian 32-bit value.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 consumes a little-endian 64-bit value.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 consumes a little-endian 32-bit two's-complement value.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// I64 consumes a little-endian 64-bit two's-complement value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 consumes an IEEE 754 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes consumes a 32-bit length prefix and that many bytes. The
// returned slice aliases the input buffer.
func (d *Dec) Bytes() []byte {
	n := d.U32()
	return d.take(int(n))
}

// String consumes a 32-bit length prefix and that many bytes.
func (d *Dec) String() string { return string(d.Bytes()) }

// Raw consumes exactly n bytes. The returned slice aliases the input.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// Len consumes a 32-bit count and validates it against an upper bound,
// latching ErrCorrupt when it exceeds the bound. Decoders size every
// collection through this so a flipped length byte cannot drive a
// multi-gigabyte allocation before validation catches it.
func (d *Dec) Len(what string, max int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		d.Failf("%s count %d exceeds limit %d", what, n, max)
		return 0
	}
	return int(n)
}

// The envelope wraps a payload with magic, version, explicit length
// and a trailing CRC:
//
//	magic[8] | version u16 | payloadLen u64 | payload | crc64 u64
//
// The CRC covers everything before it. Open verifies all four fields
// before returning the payload, so layer decoders behind it only see
// images that were produced by a matching Seal and survived transit
// bit-exactly — random corruption is caught here with ErrChecksum,
// and the structural checks in the decoders catch crafted input.
const (
	envMagicLen = 8
	envHdrLen   = envMagicLen + 2 + 8
	envCRCLen   = 8
)

var envCRCTable = crc64.MakeTable(crc64.ECMA)

// Seal wraps payload in an envelope. magic must be exactly 8 bytes.
func Seal(magic string, version uint16, payload []byte) []byte {
	if len(magic) != envMagicLen {
		panic(fmt.Sprintf("mem: envelope magic %q is not %d bytes", magic, envMagicLen))
	}
	out := make([]byte, 0, envHdrLen+len(payload)+envCRCLen)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint64(out, crc64.Checksum(out, envCRCTable))
}

// Open verifies the envelope and returns the payload (aliasing data).
func Open(magic string, version uint16, data []byte) ([]byte, error) {
	if len(magic) != envMagicLen {
		panic(fmt.Sprintf("mem: envelope magic %q is not %d bytes", magic, envMagicLen))
	}
	if len(data) < envHdrLen+envCRCLen {
		return nil, fmt.Errorf("%w: envelope needs %d bytes, have %d", ErrTruncated, envHdrLen+envCRCLen, len(data))
	}
	if string(data[:envMagicLen]) != magic {
		return nil, fmt.Errorf("%w: want %q, have %q", ErrBadMagic, magic, data[:envMagicLen])
	}
	if v := binary.LittleEndian.Uint16(data[envMagicLen:]); v != version {
		return nil, fmt.Errorf("%w: want %d, have %d", ErrBadVersion, version, v)
	}
	plen := binary.LittleEndian.Uint64(data[envMagicLen+2:])
	if plen != uint64(len(data)-envHdrLen-envCRCLen) {
		if plen > uint64(len(data)) {
			return nil, fmt.Errorf("%w: envelope promises %d payload bytes, have %d", ErrTruncated, plen, len(data)-envHdrLen-envCRCLen)
		}
		return nil, fmt.Errorf("%w: payload length %d does not match envelope size", ErrCorrupt, plen)
	}
	body := data[:len(data)-envCRCLen]
	want := binary.LittleEndian.Uint64(data[len(data)-envCRCLen:])
	if got := crc64.Checksum(body, envCRCTable); got != want {
		return nil, fmt.Errorf("%w: crc64 %#x != %#x", ErrChecksum, got, want)
	}
	return data[envHdrLen : len(data)-envCRCLen], nil
}
