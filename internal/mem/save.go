// Snapshot-to-bytes serialization of the physical frame store.
//
// The on-wire view is refcount-free and logical: just the resident
// frames in ascending frame-number order, each as its index plus
// either a zero marker or its 4096 raw bytes. COW sharing, chunk
// structure and slab placement are host-side representation and are
// reconstructed, not serialized — two Physicals that Fingerprint
// equally serialize identically regardless of how their frames came
// to be shared.
package mem

import "fmt"

// physMagic/physVersion frame a standalone Physical image (SaveBytes).
// Composed images (whole machines) embed SaveTo output inside their
// own envelope instead.
const (
	physMagic   = "PALLPHYS"
	physVersion = 1
)

// totalFrames is the number of addressable 4 KB frames in the 4 GB
// simulated physical space.
const totalFrames = physRootSize * physChunkSize

// zeroPage is the reference all-zero frame contents; frames equal to
// it serialize as a one-byte marker instead of 4096 zeros.
var zeroPage [PageSize]byte

// SaveTo appends the deterministic serialization of every resident
// frame to e. Layout:
//
//	frameCount u32
//	repeat frameCount times, ascending frame number:
//	  fn u32 | flag u8 (0 = all-zero frame, 1 = raw) | data[4096] if raw
//	cowCopies u64 | snapshots u64 | deduped u64
func (p *Physical) SaveTo(e *Enc) {
	n := 0
	for _, c := range p.root {
		if c == nil {
			continue
		}
		for _, f := range c.frames {
			if f != nil {
				n++
			}
		}
	}
	e.U32(uint32(n))
	for ci, c := range p.root {
		if c == nil {
			continue
		}
		for fi, f := range c.frames {
			if f == nil {
				continue
			}
			e.U32(uint32(ci)<<physChunkBits | uint32(fi))
			if f.data == zeroPage {
				e.U8(0)
			} else {
				e.U8(1)
				e.Raw(f.data[:])
			}
		}
	}
	e.U64(p.cowCopies)
	e.U64(p.snapshots)
	e.U64(p.deduped)
}

// LoadFrom decodes a SaveTo image from d and replaces this Physical's
// contents with it. The image is decoded and validated into a staging
// frame table first; on any error the receiver is untouched — a
// corrupt image can never produce a half-loaded memory. On success the
// previous frame table is released and the restore hook fires (the
// MMU invalidates translation-keyed decode state, exactly as after
// Restore).
func (p *Physical) LoadFrom(d *Dec) error {
	staging, err := decodePhysical(d)
	if err != nil {
		return err
	}
	p.adopt(staging)
	return nil
}

// decodePhysical decodes a SaveTo image into a fresh staging Physical
// (carrying the decoded diagnostic counters in its own fields) without
// touching any live machine.
func decodePhysical(d *Dec) (*Physical, error) {
	staging := NewPhysical()
	n := d.Len("frame", totalFrames)
	last := -1
	for i := 0; i < n; i++ {
		fn := d.U32()
		flag := d.U8()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if int(fn) <= last {
			d.Failf("frame %#x out of order after %#x", fn, last)
			return nil, d.Err()
		}
		if fn >= totalFrames {
			d.Failf("frame number %#x out of range", fn)
			return nil, d.Err()
		}
		last = int(fn)
		f := staging.newFrame()
		switch flag {
		case 0: // born zeroed
		case 1:
			raw := d.Raw(PageSize)
			if raw == nil {
				return nil, d.Err()
			}
			copy(f.data[:], raw)
		default:
			d.Failf("frame %#x has unknown flag %#x", fn, flag)
			return nil, d.Err()
		}
		ci := fn >> physChunkBits
		c := staging.root[ci]
		if c == nil {
			c = newChunk()
			staging.root[ci] = c
		}
		c.frames[fn&(physChunkSize-1)] = f
		staging.touched++
	}
	staging.cowCopies = d.U64()
	staging.snapshots = d.U64()
	staging.deduped = d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return staging, nil
}

// PhysImage is a decoded-but-not-yet-applied physical memory image:
// the staging half of the two-phase load that composed (whole-machine)
// decoders use to keep their all-or-nothing contract — decode and
// validate every layer first, adopt only when nothing can fail
// anymore. Single use: adopt an image into exactly one Physical.
type PhysImage struct {
	staging *Physical
}

// DecodePhysImage decodes a SaveTo image into staging without touching
// any live Physical.
func DecodePhysImage(d *Dec) (*PhysImage, error) {
	staging, err := decodePhysical(d)
	if err != nil {
		return nil, err
	}
	return &PhysImage{staging: staging}, nil
}

// AdoptImage replaces this Physical's contents with a decoded image,
// releasing the previous frame table and firing the restore hook.
func (p *Physical) AdoptImage(img *PhysImage) {
	if img.staging == nil {
		panic("mem: PhysImage adopted twice")
	}
	p.adopt(img.staging)
	img.staging = nil
}

// adopt swaps the staging frame table into p, releases the previous
// one and fires the restore hook.
func (p *Physical) adopt(staging *Physical) {
	old := p.root
	p.root = staging.root
	p.touched = staging.touched
	p.cowCopies = staging.cowCopies
	p.snapshots = staging.snapshots
	p.deduped = staging.deduped
	for _, c := range old {
		if c != nil {
			releaseChunk(c)
		}
	}
	if p.onRestore != nil {
		p.onRestore()
	}
}

// SaveBytes serializes the memory image into a standalone enveloped
// byte slice; LoadBytes restores it exactly (same Fingerprint, same
// FrameCount, same COWStats).
func (p *Physical) SaveBytes() []byte {
	var e Enc
	p.SaveTo(&e)
	return Seal(physMagic, physVersion, e.Data())
}

// LoadBytes replaces this Physical's contents with a SaveBytes image.
// On error (truncated, corrupted, wrong magic/version) the receiver is
// untouched.
func (p *Physical) LoadBytes(data []byte) error {
	payload, err := Open(physMagic, physVersion, data)
	if err != nil {
		return err
	}
	d := NewDec(payload)
	staging, err := decodePhysical(d)
	if err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after frame image", ErrCorrupt, d.Remaining())
	}
	p.adopt(staging)
	return nil
}

// Release drops every frame reference this Physical holds, leaving it
// empty. An ephemeral clone must be released when discarded: its
// references are what mark the template's frames shared, and leaking
// them would force the template to COW-copy on every later write
// (falsely-shared frames) and would pin dead private frames resident
// (leaked frames).
func (p *Physical) Release() {
	for ci, c := range p.root {
		if c != nil {
			releaseChunk(c)
			p.root[ci] = nil
		}
	}
	p.touched = 0
}

// SoleOwnerFrames reports how many resident frames this Physical can
// write in place — both the chunk and the frame are unshared. After
// every clone and snapshot of a template has been released, this must
// equal FrameCount: anything less means a discarded clone leaked
// references (the falsely-shared-frame bug the churn tests hammer).
func (p *Physical) SoleOwnerFrames() int {
	n := 0
	for _, c := range p.root {
		if c == nil {
			continue
		}
		sole := c.refs.Load() == 1
		for _, f := range c.frames {
			if f != nil && sole && f.refs.Load() == 1 {
				n++
			}
		}
	}
	return n
}

// SaveTo appends the allocator's state (cursor, limit, free list) to e.
func (a *FrameAllocator) SaveTo(e *Enc) {
	e.U32(a.next)
	e.U32(a.limit)
	e.U32(uint32(len(a.free)))
	for _, pa := range a.free {
		e.U32(pa)
	}
}

// LoadFrom decodes allocator state from d and applies it. The decoded
// limit must match this allocator's (the restore target is a twin boot
// managing the same physical region); all frames must be page-aligned
// and inside the region. On error the receiver is untouched.
func (a *FrameAllocator) LoadFrom(d *Dec) error {
	next := d.U32()
	limit := d.U32()
	n := d.Len("free frame", totalFrames)
	free := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		pa := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		if pa&PageMask != 0 || pa >= limit {
			d.Failf("freed frame %#x unaligned or outside region", pa)
			return d.Err()
		}
		free = append(free, pa)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if limit != a.limit {
		d.Failf("allocator region limit %#x does not match target %#x", limit, a.limit)
		return d.Err()
	}
	if next&PageMask != 0 || next > limit {
		d.Failf("allocator cursor %#x unaligned or past limit %#x", next, limit)
		return d.Err()
	}
	a.next = next
	a.free = free
	return nil
}
