package mem

import (
	"fmt"
	"sync"
	"testing"
)

func TestSnapshotFreezesImageAndRestores(t *testing.T) {
	p := NewPhysical()
	p.WriteBytes(0x1000, []byte("hello"))
	p.Write32(0x40_0000, 0xdeadbeef) // a second chunk
	framesBefore := p.FrameCount()
	fpBefore := p.Fingerprint()

	s := p.Snapshot()
	p.WriteBytes(0x1000, []byte("WORLD"))
	p.Write8(0x80_0000, 7) // fresh frame after the snapshot
	if got := string(p.ReadBytes(0x1000, 5)); got != "WORLD" {
		t.Fatalf("post-snapshot write lost: %q", got)
	}

	p.Restore(s)
	if got := string(p.ReadBytes(0x1000, 5)); got != "hello" {
		t.Errorf("restore: got %q, want hello", got)
	}
	if p.Read32(0x40_0000) != 0xdeadbeef {
		t.Errorf("restore lost second chunk word")
	}
	if p.FrameCount() != framesBefore {
		t.Errorf("FrameCount = %d, want %d", p.FrameCount(), framesBefore)
	}
	if p.Fingerprint() != fpBefore {
		t.Errorf("fingerprint differs after restore")
	}

	// The snapshot stays valid: diverge and restore again.
	p.Write8(0x1000, 'X')
	p.Restore(s)
	if got := p.Read8(0x1000); got != 'h' {
		t.Errorf("second restore: got %q", got)
	}
	s.Release()
}

func TestRestoreReleasedSnapshotPanics(t *testing.T) {
	p := NewPhysical()
	p.Write8(0, 1)
	s := p.Snapshot()
	s.Release()
	defer func() {
		if recover() == nil {
			t.Error("Restore after Release did not panic")
		}
	}()
	p.Restore(s)
}

func TestCloneIsIndependentAndBitIdentical(t *testing.T) {
	p := NewPhysical()
	for i := uint32(0); i < 64; i++ {
		p.Write32(i*PageSize, i^0x5a5a)
	}
	q := p.Clone()
	if q.Fingerprint() != p.Fingerprint() {
		t.Fatalf("clone fingerprint differs")
	}
	if q.FrameCount() != p.FrameCount() {
		t.Fatalf("clone FrameCount %d != %d", q.FrameCount(), p.FrameCount())
	}

	q.Write32(3*PageSize, 111)
	p.Write32(5*PageSize, 222)
	if p.Read32(3*PageSize) != 3^0x5a5a {
		t.Errorf("clone write leaked into source")
	}
	if q.Read32(5*PageSize) != 5^0x5a5a {
		t.Errorf("source write leaked into clone")
	}
	if q.Read32(3*PageSize) != 111 || p.Read32(5*PageSize) != 222 {
		t.Errorf("own writes lost")
	}
}

func TestReadsNeverCopyFrames(t *testing.T) {
	p := NewPhysical()
	p.WriteBytes(0, make([]byte, 4*PageSize))
	q := p.Clone()
	for i := uint32(0); i < 4*PageSize; i += 4 {
		q.Read32(i)
	}
	if _, copies, _ := q.COWStats(); copies != 0 {
		t.Errorf("reads caused %d COW frame copies", copies)
	}
	// One write copies exactly one frame.
	q.Write8(0, 1)
	if _, copies, _ := q.COWStats(); copies != 1 {
		t.Errorf("one write caused %d COW frame copies, want 1", copies)
	}
}

func TestReleaseRestoresInPlaceWrites(t *testing.T) {
	p := NewPhysical()
	p.Write8(0, 1)
	s := p.Snapshot()
	s.Release()
	p.Write8(0, 2) // sole owner again: no copy
	if _, copies, _ := p.COWStats(); copies != 0 {
		t.Errorf("write after release copied %d frames", copies)
	}
}

// TestCOWHammerConcurrentClones is the -race leg's core target: many
// goroutines writing and reading through clones that share frames with
// one template, while snapshots are taken and restored on the side.
func TestCOWHammerConcurrentClones(t *testing.T) {
	p := NewPhysical()
	const pages = 128
	for i := uint32(0); i < pages; i++ {
		p.Write32(i*PageSize, i)
	}
	base := p.Fingerprint()

	const clones = 8
	var wg sync.WaitGroup
	errs := make(chan error, clones)
	for c := 0; c < clones; c++ {
		q := p.Clone()
		wg.Add(1)
		go func(id uint32, q *Physical) {
			defer wg.Done()
			s := q.Snapshot()
			defer s.Release()
			for round := 0; round < 3; round++ {
				for i := uint32(0); i < pages; i++ {
					q.Write32(i*PageSize, i*1000+id)
				}
				for i := uint32(0); i < pages; i++ {
					if got := q.Read32(i * PageSize); got != i*1000+id {
						errs <- fmt.Errorf("clone %d: page %d = %d", id, i, got)
						return
					}
				}
				q.Restore(s)
				for i := uint32(0); i < pages; i++ {
					if got := q.Read32(i * PageSize); got != i {
						errs <- fmt.Errorf("clone %d after restore: page %d = %d", id, i, got)
						return
					}
				}
			}
		}(uint32(c), q)
	}
	// The template keeps serving reads (and its own writes to fresh
	// pages) while the clones hammer shared frames.
	for i := uint32(0); i < pages; i++ {
		if got := p.Read32(i * PageSize); got != i {
			t.Errorf("template page %d = %d during hammer", i, got)
		}
		p.Write32((pages+i)*PageSize, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Template's original image is untouched by every clone's traffic.
	q := NewPhysical()
	for i := uint32(0); i < pages; i++ {
		q.Write32(i*PageSize, p.Read32(i*PageSize))
	}
	if q.Fingerprint() != base {
		t.Errorf("template image mutated by clone traffic")
	}
}
