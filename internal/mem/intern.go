// Content-addressed frame interning. COW cloning shares frames that
// have a common ancestor; interning shares frames that merely have
// equal contents — N machines restored from the same serialized image
// (or booted separately) hold N private copies of every frame until
// an Intern pass folds them onto one canonical frame per distinct
// content. The dedup is exact (hash buckets are confirmed by byte
// comparison), and interned frames are safe to share because the
// store pins one reference to every canonical frame, so no owner ever
// sees a refcount of 1 and mutates it in place — a write through any
// sharer COW-faults off a private copy exactly as for clone-shared
// frames.
package mem

import (
	"bytes"
	"hash/maphash"
	"sync"
)

// FrameStore is a content-addressed pool of canonical frames, shared
// by any number of Physicals. Safe for concurrent Intern calls from
// different machine-owning goroutines.
type FrameStore struct {
	mu      sync.Mutex
	seed    maphash.Seed
	buckets map[uint64][]*frame
	hits    uint64
}

// NewFrameStore returns an empty frame store.
func NewFrameStore() *FrameStore {
	return &FrameStore{seed: maphash.MakeSeed(), buckets: make(map[uint64][]*frame)}
}

// canonical returns the store's canonical frame for the given
// contents, registering f itself (with one pinning reference) when the
// contents are new.
func (s *FrameStore) canonical(f *frame) *frame {
	h := maphash.Bytes(s.seed, f.data[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cf := range s.buckets[h] {
		if cf == f || bytes.Equal(cf.data[:], f.data[:]) {
			if cf != f {
				s.hits++
			}
			return cf
		}
	}
	f.refs.Add(1) // the store's pin: keeps the canonical frame >1-referenced, hence immutable
	s.buckets[h] = append(s.buckets[h], f)
	return f
}

// Frames reports how many distinct canonical frames the store holds.
func (s *FrameStore) Frames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.buckets {
		n += len(b)
	}
	return n
}

// Hits reports how many Intern lookups resolved to an already-known
// canonical frame (each hit is one frame of resident memory saved).
func (s *FrameStore) Hits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Intern folds every resident frame of p onto the store's canonical
// frame for its contents, and reports how many frames were replaced
// by an existing canonical (each replacement frees one private frame
// once its other references drop). Must be called by the goroutine
// owning p while no access is in flight, like every Physical method;
// distinct Physicals may intern into the same store concurrently.
// Frame contents and Fingerprint are unchanged; replaced frames
// become COW-shared, so later writes fault a private copy off first.
func (p *Physical) Intern(s *FrameStore) (replaced int) {
	for ci := range p.root {
		if p.root[ci] == nil {
			continue
		}
		for fi := 0; fi < physChunkSize; fi++ {
			f := p.root[ci].frames[fi]
			if f == nil {
				continue
			}
			cf := s.canonical(f)
			if cf == f {
				continue
			}
			// Splitting a shared chunk replaces p.root[ci]; re-read it
			// (done above on each iteration) and swap in the canonical.
			fn := uint32(ci)<<physChunkBits | uint32(fi)
			c := p.exclusiveChunk(fn)
			cf.refs.Add(1)
			c.frames[fi] = cf
			f.refs.Add(-1)
			replaced++
		}
	}
	p.deduped += uint64(replaced)
	return replaced
}

// ResidentFrames reports frame residency across a set of Physicals:
// naive is the sum of per-machine frame counts (what residency would
// be with no sharing at all), unique is the number of distinct frames
// actually resident. naive/unique is the dedup ratio the -clones
// bench publishes.
func ResidentFrames(ps ...*Physical) (naive, unique int) {
	seen := make(map[*frame]struct{})
	for _, p := range ps {
		for _, c := range p.root {
			if c == nil {
				continue
			}
			for _, f := range c.frames {
				if f != nil {
					naive++
					seen[f] = struct{}{}
				}
			}
		}
	}
	return naive, len(seen)
}
