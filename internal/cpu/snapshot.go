package cpu

import (
	"maps"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// MachineSnapshot captures everything a Machine needs to resume
// bit-identically: architectural state, the installed code/service/
// breakpoint tables, the lifetime counters, the clock, the MMU state
// (descriptor tables, TLB contents and statistics) and the physical
// memory image (copy-on-write, so a snapshot is O(chunks), not
// O(bytes)).
//
// The decoded-block cache and the trace-superblock registry are
// deliberately NOT captured: both are pure wall-clock accelerators with
// no simulated side effects, and restore invalidates them wholesale
// (clearBlockCache clears traces first, and the MMU generation bump
// retires anything decoded on the abandoned timeline) so stale
// translations can never execute. A restored machine re-detects heat
// and rebuilds its traces with bit-identical simulated metrics.
//
// The installed-code map — one entry per instruction, the only large
// machine table — is captured by reference and marked shared; the
// machine copies it off only if code is installed or removed while a
// snapshot holds it. A snapshot/restore cycle around a run that
// installs no code (the InvokeTx fast path) therefore costs O(small),
// matching the COW frame store. The small tables (IDT, services,
// breakpoints) are copied eagerly.
type MachineSnapshot struct {
	phys  *mem.Snapshot
	mmu   *mmu.MMUState
	clock float64

	regs           [8]uint32
	eip            uint32
	cs, ds, ss, es mmu.Selector
	flags          Flags
	tss            TSS

	idt      map[uint8]mmu.Descriptor
	code     map[uint32]*isa.Instr
	services map[uint32]*Service
	breaks   map[uint32]bool

	instret    uint64
	haltFlag   bool
	tickCycles float64
	nextTick   float64
}

// Snapshot captures the machine: CPU, MMU, counters, clock and the COW
// physical memory image. It charges no simulated cycles and perturbs
// no simulated metric, so a snapshot can be taken mid-run.
func (m *Machine) Snapshot() *MachineSnapshot {
	m.codeShared = true
	return &MachineSnapshot{
		phys:  m.Phys.Snapshot(),
		mmu:   m.MMU.SaveState(),
		clock: m.Clock.Cycles(),

		regs: m.Regs, eip: m.EIP,
		cs: m.CS, ds: m.DS, ss: m.SS, es: m.ES,
		flags: m.Flags, tss: m.TSS,

		idt:      maps.Clone(m.IDT),
		code:     m.code, // shared copy-on-write (m.codeShared above)
		services: maps.Clone(m.services),
		breaks:   maps.Clone(m.breaks),

		instret:    m.instret,
		haltFlag:   m.haltFlag,
		tickCycles: m.TickCycles,
		nextTick:   m.nextTick,
	}
}

// Restore rewinds the machine to a snapshot. Memory, translation
// state, TLB statistics, the clock and every architectural register
// return to exactly their captured values, so a restored run is
// bit-identical to one that never diverged. The decoded-block cache is
// dropped (rebuilt lazily; wall-clock only). The snapshot remains
// valid for further restores.
func (m *Machine) Restore(s *MachineSnapshot) {
	m.Phys.Restore(s.phys) // fires the MMU generation bump
	m.MMU.RestoreState(s.mmu)
	m.Clock.SetCycles(s.clock)

	m.Regs, m.EIP = s.regs, s.eip
	m.CS, m.DS, m.SS, m.ES = s.cs, s.ds, s.ss, s.es
	m.Flags, m.TSS = s.flags, s.tss

	m.IDT = maps.Clone(s.idt)
	m.code = s.code // the snapshot still holds it: stay copy-on-write
	m.codeShared = true
	m.services = maps.Clone(s.services)
	m.breaks = maps.Clone(s.breaks)

	m.instret = s.instret
	m.haltFlag = s.haltFlag
	m.TickCycles = s.tickCycles
	m.nextTick = s.nextTick

	m.recomputeDispatchHints()
	m.clearBlockCache()
}

// Release frees the snapshot's hold on the COW frame store so
// sole-owner frames become writable in place again.
func (s *MachineSnapshot) Release() { s.phys.Release() }

// Clone copies the machine onto already-cloned physical memory, MMU
// and clock (the caller clones those first so it can rebind the layers
// above them). Architectural state, code/break tables and counters
// carry over; the decoded-block cache starts empty (wall-clock only).
//
// The services map is copied as-is: handlers receive the executing
// machine as an argument, so capture-free handlers work unchanged on
// the clone. Handlers that close over owner state (the kernel's
// syscall entries) must be re-registered by that owner; OnTick is left
// nil for the same reason.
func (m *Machine) Clone(phys *mem.Physical, mu *mmu.MMU, clock *cycles.Clock) *Machine {
	// Share the code map copy-on-write between source and clone: the
	// first side to install/remove code splits its own copy off (the
	// flag is per-machine, so each owner goroutine touches only its
	// own).
	m.codeShared = true
	c := &Machine{
		Phys:  phys,
		MMU:   mu,
		Clock: clock,
		Model: m.Model,

		Regs: m.Regs, EIP: m.EIP,
		CS: m.CS, DS: m.DS, SS: m.SS, ES: m.ES,
		Flags: m.Flags, TSS: m.TSS,

		IDT:        maps.Clone(m.IDT),
		code:       m.code,
		codeShared: true,
		services:   maps.Clone(m.services),
		breaks:     maps.Clone(m.breaks),

		instret:    m.instret,
		haltFlag:   m.haltFlag,
		TickCycles: m.TickCycles,
		nextTick:   m.nextTick,

		// The trace tier's knob carries over; its caches do not — the
		// clone re-detects heat and rebuilds its own traces, with
		// bit-identical simulated metrics (traces never alter them).
		TraceThreshold: m.TraceThreshold,
	}
	c.recomputeDispatchHints()
	return c
}
