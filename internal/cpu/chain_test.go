package cpu

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mmu"
)

// hotLoopSrc is a small compute loop whose body block exits through a
// taken conditional branch back to itself — the shape block chaining
// exists for.
const hotLoopSrc = `
	entry:
		mov eax, 0
		mov ecx, 50
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		dec ecx
		jne loop
	stop:
		nop
	.data
	scratch: .long 0
`

// TestChainEngagesOnHotLoop: the specialized tier must actually engage
// on a hot loop — chained dispatches and same-page fetch fast-path
// hits both counting — while producing the correct architectural
// result.
func TestChainEngagesOnHotLoop(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, hotLoopSrc)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 10_000})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if got, want := h.m.Reg(isa.EAX), uint32(50*51/2); got != want {
		t.Errorf("eax = %d, want %d", got, want)
	}
	chains, fast := h.m.ChainStats()
	if chains == 0 {
		t.Errorf("hot loop executed with zero chained dispatches")
	}
	if fast == 0 {
		t.Errorf("hot loop executed with zero same-page fetch fast-path hits")
	}
}

// TestChainSeveredBySetBreak: arming a breakpoint at a chained target
// must stop the very next run there — the chain may not skip the entry
// checks the edge was recorded under.
func TestChainSeveredBySetBreak(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, hotLoopSrc)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	runToStop(t, h, syms["entry"]) // builds and chains the loop

	h.m.SetBreak(syms["loop"])
	h.m.EIP = syms["entry"]
	res := h.m.Run(RunLimits{MaxInstructions: 10_000})
	if res.Reason != StopBreak || h.m.EIP != syms["loop"] {
		t.Fatalf("stop = %+v at %#x, want breakpoint at %#x", res, h.m.EIP, syms["loop"])
	}

	h.m.ClearBreak(syms["loop"])
	if got, want := runToStop(t, h, syms["entry"]), uint32(50*51/2); got != want {
		t.Errorf("eax after ClearBreak = %d, want %d", got, want)
	}
}

// TestChainSeesInstallCodeOnSuccessor: rewriting the chained
// successor's first instruction must be honoured by the next run even
// though the predecessor's chain edge pointed at the old block.
func TestChainSeesInstallCodeOnSuccessor(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
			jmp next
		next:
			mov ebx, 2
		stop:
			nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	runToStop(t, h, syms["entry"]) // records entry -> next chain edge

	pa, f := h.m.MMU.Translate(gsel(selXCode, 3), syms["next"], 4, mmu.Execute, 3)
	if f != nil {
		t.Fatal(f)
	}
	h.m.InstallCode(pa, []isa.Instr{{Op: isa.MOV, Dst: isa.R(isa.EBX), Src: isa.I(77), Size: 4}})
	runToStop(t, h, syms["entry"])
	if got := h.m.Reg(isa.EBX); got != 77 {
		t.Errorf("ebx after InstallCode over chained successor = %d, want 77", got)
	}
}

// TestChainSurvivesInvalidatePage pins the generation split: a pure
// paging event (invlpg) must NOT rebuild cached blocks — the live
// page-level check follows it — so a serving loop that flips page
// privileges per request keeps its decoded blocks.
func TestChainSurvivesInvalidatePage(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, hotLoopSrc)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	want := runToStop(t, h, syms["entry"])
	_, builds0, _ := h.m.BlockCacheStats()

	h.m.MMU.InvalidatePage(syms["loop"])
	if got := runToStop(t, h, syms["entry"]); got != want {
		t.Errorf("eax after InvalidatePage = %d, want %d", got, want)
	}
	if _, builds1, _ := h.m.BlockCacheStats(); builds1 != builds0 {
		t.Errorf("InvalidatePage rebuilt blocks (%d -> %d builds); paging events must not flush the block cache",
			builds0, builds1)
	}
}

// TestChainBailsOnLoadCR3MidChain: a CR3 load fired from the timer
// hook while a chain is hot must be honoured — the next fetch executes
// whatever the new address space maps, exactly as stepping uncached
// would.
func TestChainBailsOnLoadCR3MidChain(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
		spin:
			add eax, 1
			jmp spin
	`)
	// A second address space mapping different code at the same linear
	// page: "mov ebx, 9; hlt-substitute" — use a self-loop that sets
	// EBX so the redirect is observable.
	as2, err := mmu.NewAddressSpace(h.m.Phys, h.alloc)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := h.alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	h.m.InstallCode(alt, []isa.Instr{
		{Op: isa.MOV, Dst: isa.R(isa.EBX), Src: isa.I(9), Size: 4},
		{Op: isa.JMP, Dst: isa.I(int32(syms["entry"]) + 4)},
	})
	if err := as2.Map(0x0001_0000, alt, false, true); err != nil {
		t.Fatal(err)
	}

	h.startUser(syms["entry"])
	fired := false
	h.m.TickCycles = 200
	h.m.OnTick = func(m *Machine) error {
		if !fired {
			fired = true
			m.MMU.LoadCR3(as2)
		}
		return nil
	}
	res := h.m.Run(RunLimits{MaxInstructions: 2_000})
	if res.Reason != StopBudget {
		t.Fatalf("stop = %+v", res)
	}
	if !fired {
		t.Fatal("tick hook never fired")
	}
	if got := h.m.Reg(isa.EBX); got != 9 {
		t.Errorf("ebx = %d, want 9 (CR3 switch mid-chain not honoured)", got)
	}
}

// TestSubstitutedSlotTickParity: when a code page is remapped under a
// cached block (invlpg'd, so the live page check sees the new frame
// while the block survives — pa != slot.pa per slot), the substituted
// instructions' charges are NOT bounded by the compiled slots' worst
// case, so the batched deadline horizon must be discarded: timer ticks
// must fire at exactly the instruction boundaries the uncached
// interpreter fires them at. Regression test for a stale-horizon bug
// found in review.
func TestSubstitutedSlotTickParity(t *testing.T) {
	const codePage = uint32(0x0001_0000)
	exec := func(runner func(*Machine, RunLimits) RunResult) (*Machine, int) {
		h := newHarness(t)
		syms := h.install(codePage, `
			entry:
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				nop
				jmp stop
			stop:
				nop
		`)
		h.startUser(syms["entry"])
		h.m.SetBreak(syms["stop"])
		res := runner(h.m, RunLimits{MaxInstructions: 1000})
		if res.Reason != StopBreak {
			t.Fatalf("warm run stop = %+v", res)
		}
		// Remap the code page to an expensive variant (imul charges 10
		// cycles where the compiled slot budgeted a 1-cycle nop) and
		// invlpg, so the next run substitutes live instructions into
		// the surviving block.
		alt, err := h.alloc.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		expensive := make([]isa.Instr, 13)
		for i := 0; i < 12; i++ {
			expensive[i] = isa.Instr{Op: isa.IMUL, Dst: isa.R(isa.EBX), Src: isa.R(isa.EBX), Size: 4}
		}
		expensive[12] = isa.Instr{Op: isa.JMP, Dst: isa.I(int32(syms["stop"]))}
		h.m.InstallCode(alt, expensive)
		if err := h.as.Map(codePage, alt, false, true); err != nil {
			t.Fatal(err)
		}
		h.m.MMU.InvalidatePage(codePage)

		ticks := 0
		h.m.TickCycles = 15
		h.m.OnTick = func(*Machine) error { ticks++; return nil }
		h.m.EIP = syms["entry"]
		if res := runner(h.m, RunLimits{MaxInstructions: 1000}); res.Reason != StopBreak {
			t.Fatalf("substituted run stop = %+v", res)
		}
		return h.m, ticks
	}
	mRun, ticksRun := exec((*Machine).Run)
	mStep, ticksStep := exec(stepRun)
	if ticksRun != ticksStep {
		t.Errorf("ticks: Run %d, Step %d", ticksRun, ticksStep)
	}
	if a, b := mRun.Clock.Cycles(), mStep.Clock.Cycles(); a != b {
		t.Errorf("cycles: Run %v, Step %v", a, b)
	}
	if a, b := mRun.Instructions(), mStep.Instructions(); a != b {
		t.Errorf("instret: Run %d, Step %d", a, b)
	}
}

// TestColdTLBTickParity: the batched deadline horizon must account
// for the fetch-side TLB-miss walk a page-run head can charge. With a
// cold TLB (flushed by a CR3 reload) the block head's CheckPage
// charges a 24-cycle walk the compiled instruction charges alone
// would not predict; ticks must still fire at exactly the boundaries
// the uncached interpreter fires them at. Regression test for a
// stale-horizon bug found in review.
func TestColdTLBTickParity(t *testing.T) {
	for _, tick := range []float64{5, 27, 53, 121} {
		exec := func(runner func(*Machine, RunLimits) RunResult) (*Machine, int) {
			h := newHarness(t)
			syms := h.install(0x0001_0000, hotLoopSrc)
			h.startUser(syms["entry"])
			h.m.SetBreak(syms["stop"])
			if res := runner(h.m, RunLimits{MaxInstructions: 10_000}); res.Reason != StopBreak {
				t.Fatalf("warm run stop = %+v", res)
			}
			// Flush the TLB under the surviving block cache, then run
			// with a tick period that lands inside the refill walks.
			h.m.MMU.LoadCR3(h.as)
			ticks := 0
			h.m.TickCycles = tick
			h.m.OnTick = func(*Machine) error { ticks++; return nil }
			h.m.EIP = syms["entry"]
			if res := runner(h.m, RunLimits{MaxInstructions: 10_000}); res.Reason != StopBreak {
				t.Fatalf("cold run stop = %+v", res)
			}
			return h.m, ticks
		}
		mRun, ticksRun := exec((*Machine).Run)
		mStep, ticksStep := exec(stepRun)
		if ticksRun != ticksStep {
			t.Errorf("tick=%v: ticks: Run %d, Step %d", tick, ticksRun, ticksStep)
		}
		if a, b := mRun.Clock.Cycles(), mStep.Clock.Cycles(); a != b {
			t.Errorf("tick=%v: cycles: Run %v, Step %v", tick, a, b)
		}
		if a, b := mRun.Instructions(), mStep.Instructions(); a != b {
			t.Errorf("tick=%v: instret: Run %d, Step %d", tick, a, b)
		}
	}
}

// TestChainHostileRegressionSeeds deterministically selects seeds
// whose scripted event streams contain each chain-hostile event kind
// (4 = LoadCR3 mid-chain, 5 = RemoveCode over a chained successor,
// 6 = InstallCode over a chained successor) and replays the full
// Run-vs-Step differential on them. Since diffExec runs with a
// hair-trigger TraceThreshold, the same events are also trace-hostile:
// each strikes while fused superblocks are live, so these replays pin
// the trace tier's invalidation and deopt paths too.
func TestChainHostileRegressionSeeds(t *testing.T) {
	const base, span, perKind = int64(59990000), int64(4000), 2
	found := map[int][]int64{}
	covered := func() bool {
		return len(found[4]) >= perKind && len(found[5]) >= perKind && len(found[6]) >= perKind
	}
	for seed := base; seed < base+span && !covered(); seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, nblocks := genProgram(rng)
		for _, ev := range genEvents(rng, nblocks) {
			if ev.kind >= 4 && len(found[ev.kind]) < perKind {
				found[ev.kind] = append(found[ev.kind], seed)
				break
			}
		}
	}
	if !covered() {
		t.Fatalf("seed scan did not cover every chain-hostile kind: %v", found)
	}
	for kind := 4; kind <= 6; kind++ {
		for _, seed := range found[kind] {
			t.Run(fmt.Sprintf("kind%d/seed%d", kind, seed), func(t *testing.T) {
				diffCheck(t, seed)
			})
		}
	}
}
