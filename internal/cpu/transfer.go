package cpu

import (
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mmu"
)

// checkCodeTarget validates a far-transfer destination code segment.
func (m *Machine) checkCodeTarget(sel mmu.Selector) (*mmu.Descriptor, *mmu.Fault) {
	if sel.IsNull() {
		return nil, m.gpf("far transfer to null code selector")
	}
	d := m.MMU.Descriptor(sel)
	if d == nil || d.Kind != mmu.SegCode {
		return nil, m.gpf("far transfer target is not a code segment")
	}
	if !d.Present {
		return nil, &mmu.Fault{Kind: mmu.NP, Sel: sel, CPL: m.CPL(), Reason: "target code segment not present"}
	}
	return d, nil
}

// lcallGate performs a far call through a call gate (Section 3.2).
// retEIP is the return address pushed for the matching far return.
//
// When the gate targets a more privileged code segment the hardware:
//  1. loads the inner stack pointer for the target privilege level
//     from the TSS,
//  2. pushes the caller's SS:ESP on that inner stack,
//  3. pushes the caller's CS:EIP,
//  4. jumps to the gate's entry point at the new privilege level.
//
// Step 1 is the behaviour Palladium's AppCallGate routine compensates
// for: the inner ESP restored from the TSS is *not* the value the
// application had when it called Prepare, so the stub must restore the
// saved stack/base pointers explicitly (Section 4.5.1).
func (m *Machine) lcallGate(gateSel mmu.Selector, retEIP uint32) *mmu.Fault {
	gate := m.MMU.Descriptor(gateSel)
	if gate == nil || gate.Kind != mmu.SegCallGate {
		return m.gpf("lcall: not a call gate")
	}
	if !gate.Present {
		return &mmu.Fault{Kind: mmu.NP, Sel: gateSel, CPL: m.CPL(), Reason: "call gate not present"}
	}
	// Gate privilege: callers below the gate's DPL are rejected. This
	// check is what makes call gates safe entry points: the gate
	// descriptor lives in the GDT/LDT, modifiable only at SPL 0.
	if max(m.CPL(), gateSel.RPL()) > gate.DPL {
		return m.gpf("lcall: gate DPL below caller privilege")
	}
	target, f := m.checkCodeTarget(gate.GateSel)
	if f != nil {
		return f
	}
	if target.DPL > m.CPL() {
		return m.gpf("lcall: gate targets less privileged code")
	}
	if target.DPL == m.CPL() || target.Conforming {
		// Same-privilege far call: push CS:EIP on the current stack.
		m.Clock.Charge(m.Model, cycles.CallFarSame)
		if f := m.Push(uint32(m.CS)); f != nil {
			return f
		}
		if f := m.Push(retEIP); f != nil {
			return f
		}
		m.CS = mmu.MakeSelector(gate.GateSel.Index(), gate.GateSel.IsLDT(), m.CPL())
		m.EIP = gate.GateOff
		return nil
	}

	// Inter-privilege call: switch to the inner stack from the TSS.
	m.Clock.Charge(m.Model, cycles.LcallGateInter)
	newCPL := target.DPL
	oldSS, oldESP, oldCS := m.SS, m.Regs[isa.ESP], m.CS
	m.SS = m.TSS.SS[newCPL]
	m.Regs[isa.ESP] = m.TSS.ESP[newCPL]
	m.CS = mmu.MakeSelector(gate.GateSel.Index(), gate.GateSel.IsLDT(), newCPL)
	m.EIP = gate.GateOff
	if f := m.Push(uint32(oldSS)); f != nil {
		return f
	}
	if f := m.Push(oldESP); f != nil {
		return f
	}
	if f := m.Push(uint32(oldCS)); f != nil {
		return f
	}
	if f := m.Push(retEIP); f != nil {
		return f
	}
	return nil
}

// lretTransfer performs a far return, optionally releasing n extra
// bytes of stack. A far return to a *numerically higher* RPL lowers
// the privilege level; this is how Palladium's Prepare routine
// transfers control "downhill" into an extension, twisting the x86
// call/return asymmetry (a more privileged segment cannot far-call a
// less privileged one, but it can far-return into it).
func (m *Machine) lretTransfer(n uint32) *mmu.Fault {
	retEIP, f := m.Pop()
	if f != nil {
		return f
	}
	csWord, f := m.Pop()
	if f != nil {
		return f
	}
	newCS := mmu.Selector(uint16(csWord))
	if newCS.RPL() < m.CPL() {
		return m.gpf("lret to more privileged level")
	}
	target, f := m.checkCodeTarget(newCS)
	if f != nil {
		return f
	}
	if !target.Conforming && target.DPL != newCS.RPL() {
		return m.gpf("lret: code segment DPL != return RPL")
	}
	m.Regs[isa.ESP] += n
	if newCS.RPL() == m.CPL() {
		m.Clock.Charge(m.Model, cycles.LretSame)
		m.CS = newCS
		m.EIP = retEIP
		return nil
	}

	// Privilege-lowering return: pop the outer SS:ESP.
	m.Clock.Charge(m.Model, cycles.LretInter)
	newESP, f := m.Pop()
	if f != nil {
		return f
	}
	ssWord, f := m.Pop()
	if f != nil {
		return f
	}
	newCPL := newCS.RPL()
	m.CS = newCS
	m.EIP = retEIP
	m.SS = mmu.Selector(uint16(ssWord))
	m.Regs[isa.ESP] = newESP + n
	m.nullInvalidDataSegs(newCPL)
	return nil
}

// intTransfer vectors through an interrupt gate. software=true applies
// the DPL check that stops unprivileged code from raising kernel-only
// vectors.
func (m *Machine) intTransfer(vector uint8, software bool) *mmu.Fault {
	gate, ok := m.IDT[vector]
	if !ok || gate.Kind != mmu.SegIntGate {
		return m.gpf("int: no gate for vector")
	}
	if software && m.CPL() > gate.DPL {
		return m.gpf("int: gate DPL below caller privilege")
	}
	target, f := m.checkCodeTarget(gate.GateSel)
	if f != nil {
		return f
	}
	m.Clock.Charge(m.Model, cycles.IntGate)
	retEIP := m.EIP + isa.InstrSlot
	oldCS, oldFlags := m.CS, m.Flags.pack()
	if target.DPL < m.CPL() {
		oldSS, oldESP := m.SS, m.Regs[isa.ESP]
		newCPL := target.DPL
		m.SS = m.TSS.SS[newCPL]
		m.Regs[isa.ESP] = m.TSS.ESP[newCPL]
		m.CS = mmu.MakeSelector(gate.GateSel.Index(), gate.GateSel.IsLDT(), newCPL)
		if f := m.Push(uint32(oldSS)); f != nil {
			return f
		}
		if f := m.Push(oldESP); f != nil {
			return f
		}
	} else {
		m.CS = mmu.MakeSelector(gate.GateSel.Index(), gate.GateSel.IsLDT(), m.CPL())
	}
	if f := m.Push(oldFlags); f != nil {
		return f
	}
	if f := m.Push(uint32(oldCS)); f != nil {
		return f
	}
	if f := m.Push(retEIP); f != nil {
		return f
	}
	m.EIP = gate.GateOff
	return nil
}

// iretTransfer returns from an interrupt frame.
func (m *Machine) iretTransfer() *mmu.Fault {
	retEIP, f := m.Pop()
	if f != nil {
		return f
	}
	csWord, f := m.Pop()
	if f != nil {
		return f
	}
	flagsWord, f := m.Pop()
	if f != nil {
		return f
	}
	newCS := mmu.Selector(uint16(csWord))
	if newCS.RPL() < m.CPL() {
		return m.gpf("iret to more privileged level")
	}
	if _, f := m.checkCodeTarget(newCS); f != nil {
		return f
	}
	if newCS.RPL() == m.CPL() {
		m.Clock.Charge(m.Model, cycles.Iret)
		m.CS = newCS
		m.EIP = retEIP
		m.Flags = unpackFlags(flagsWord)
		return nil
	}
	m.Clock.Charge(m.Model, cycles.IretInter)
	newESP, f := m.Pop()
	if f != nil {
		return f
	}
	ssWord, f := m.Pop()
	if f != nil {
		return f
	}
	m.CS = newCS
	m.EIP = retEIP
	m.Flags = unpackFlags(flagsWord)
	m.SS = mmu.Selector(uint16(ssWord))
	m.Regs[isa.ESP] = newESP
	m.nullInvalidDataSegs(newCS.RPL())
	return nil
}

// nullInvalidDataSegs emulates the x86 rule that, on a return to a
// less privileged level, data segment registers whose descriptors are
// more privileged than the new CPL are loaded with the null selector,
// preventing the outer code from inheriting inner-segment access.
func (m *Machine) nullInvalidDataSegs(newCPL int) {
	for _, sr := range []*mmu.Selector{&m.DS, &m.ES} {
		if sr.IsNull() {
			continue
		}
		d := m.MMU.Descriptor(*sr)
		if d == nil {
			*sr = 0
			continue
		}
		if d.Kind == mmu.SegData && d.DPL < newCPL {
			*sr = 0
		}
	}
}
