package cpu

import (
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mmu"
)

// The block compiler turns each decoded instruction into a pre-bound
// closure (threaded code): operands are resolved to register indices,
// immediates and effective-address recipes at block-build time, the
// cycle charge is pre-read from the model's cost table, and the
// per-instruction opcode/operand switches of the uncached interpreter
// disappear from the hot loop. Every closure replicates execute()'s
// behavior bit for bit — same charge values in the same order, same
// fault identities, same flag semantics — which the Run-vs-Step
// differential fuzz pins continuously.
//
// compile also returns the instruction's worst-case cycle charge
// (static cost plus one potential TLB-miss walk per address
// translation it can perform). runChain sums these into per-block
// prefix bounds so the per-instruction timer-deadline check can be
// skipped wholesale while the clock provably cannot reach the next
// tick (see tickHorizon).

// execFn executes one pre-bound instruction. The machine's EIP is the
// instruction's own address on entry and is advanced (or redirected)
// exactly as execute() would.
type execFn func(*Machine) *mmu.Fault

// readFn reads an operand value; writeFn stores one.
type readFn func(*Machine) (uint32, *mmu.Fault)
type writeFn func(*Machine, uint32) *mmu.Fault

// addrFn computes a memory operand's effective (segment-relative)
// address from the live registers.
type addrFn func(*Machine) uint32

// compileAddr specializes effAddr for the operand's present components.
func compileAddr(op *isa.Operand) addrFn {
	disp := uint32(op.Disp)
	base, index, scale := op.Base, op.Index, uint32(op.Scale)
	switch {
	case base == isa.NoReg && index == isa.NoReg:
		return func(*Machine) uint32 { return disp }
	case index == isa.NoReg:
		return func(m *Machine) uint32 { return m.Regs[base] + disp }
	case base == isa.NoReg:
		return func(m *Machine) uint32 { return m.Regs[index]*scale + disp }
	default:
		return func(m *Machine) uint32 { return m.Regs[base] + m.Regs[index]*scale + disp }
	}
}

// memSeg reports whether the operand addresses through SS (stack-
// relative bases), mirroring Machine.dataSeg — the choice depends only
// on the static base register, so it is a compile-time constant.
func memSeg(op *isa.Operand) bool {
	return op.Base == isa.EBP || op.Base == isa.ESP
}

// xlateFn is a memory operand's bound translation path.
type xlateFn func(m *Machine, sel mmu.Selector, off, size uint32, acc mmu.Access) (uint32, *mmu.Fault)

// memXlate binds the operand's SegProbe, selecting the verified
// check-elision path when the load-time verifier proved a bound for
// every runtime address of this operand (isa.Operand.Proved). Both
// paths are observationally identical on the simulated machine —
// segment checks charge no cycles — and the differential soundness
// fuzz holds them to it.
func memXlate(op *isa.Operand) xlateFn {
	probe := new(mmu.SegProbe)
	if op.Proved {
		bound := op.ProvedEnd
		return func(m *Machine, sel mmu.Selector, off, size uint32, acc mmu.Access) (uint32, *mmu.Fault) {
			return m.MMU.TranslateVerified(probe, bound, sel, off, size, acc, m.CPL())
		}
	}
	return func(m *Machine, sel mmu.Selector, off, size uint32, acc mmu.Access) (uint32, *mmu.Fault) {
		return m.MMU.TranslateProbed(probe, sel, off, size, acc, m.CPL())
	}
}

// compileRead specializes readOperand.
func compileRead(op *isa.Operand, size uint8) readFn {
	switch op.Kind {
	case isa.KindReg:
		r := op.Reg
		return func(m *Machine) (uint32, *mmu.Fault) { return m.Regs[r], nil }
	case isa.KindImm:
		v := uint32(op.Imm)
		return func(*Machine) (uint32, *mmu.Fault) { return v, nil }
	case isa.KindMem:
		addr := compileAddr(op)
		useSS := memSeg(op)
		xl := memXlate(op)
		if size == 1 {
			return func(m *Machine) (uint32, *mmu.Fault) {
				sel := m.DS
				if useSS {
					sel = m.SS
				}
				pa, f := xl(m, sel, addr(m), 1, mmu.Read)
				if f != nil {
					return 0, f
				}
				return uint32(m.Phys.Read8(pa)), nil
			}
		}
		return func(m *Machine) (uint32, *mmu.Fault) {
			sel := m.DS
			if useSS {
				sel = m.SS
			}
			pa, f := xl(m, sel, addr(m), 4, mmu.Read)
			if f != nil {
				return 0, f
			}
			return m.Phys.Read32(pa), nil
		}
	}
	return func(*Machine) (uint32, *mmu.Fault) { return 0, nil }
}

// compileWrite specializes writeOperand.
func compileWrite(op *isa.Operand, size uint8) writeFn {
	switch op.Kind {
	case isa.KindReg:
		r := op.Reg
		if size == 1 {
			// Byte ops targeting a register zero-extend, as in
			// writeOperand.
			return func(m *Machine, v uint32) *mmu.Fault { m.Regs[r] = v & 0xFF; return nil }
		}
		return func(m *Machine, v uint32) *mmu.Fault { m.Regs[r] = v; return nil }
	case isa.KindMem:
		addr := compileAddr(op)
		useSS := memSeg(op)
		xl := memXlate(op)
		if size == 1 {
			return func(m *Machine, v uint32) *mmu.Fault {
				sel := m.DS
				if useSS {
					sel = m.SS
				}
				pa, f := xl(m, sel, addr(m), 1, mmu.Write)
				if f != nil {
					return f
				}
				m.Phys.Write8(pa, byte(v))
				return nil
			}
		}
		return func(m *Machine, v uint32) *mmu.Fault {
			sel := m.DS
			if useSS {
				sel = m.SS
			}
			pa, f := xl(m, sel, addr(m), 4, mmu.Write)
			if f != nil {
				return f
			}
			m.Phys.Write32(pa, v)
			return nil
		}
	}
	return func(m *Machine, v uint32) *mmu.Fault { return m.gpf("bad destination operand") }
}

// condFn evaluates one Jcc predicate on the flags.
type condFn func(Flags) bool

var condFns = map[isa.Op]condFn{
	isa.JE:  func(f Flags) bool { return f.ZF },
	isa.JNE: func(f Flags) bool { return !f.ZF },
	isa.JL:  func(f Flags) bool { return f.SF != f.OF },
	isa.JLE: func(f Flags) bool { return f.ZF || f.SF != f.OF },
	isa.JG:  func(f Flags) bool { return !f.ZF && f.SF == f.OF },
	isa.JGE: func(f Flags) bool { return f.SF == f.OF },
	isa.JB:  func(f Flags) bool { return f.CF },
	isa.JBE: func(f Flags) bool { return f.CF || f.ZF },
	isa.JA:  func(f Flags) bool { return !f.CF && !f.ZF },
	isa.JAE: func(f Flags) bool { return !f.CF },
	isa.JS:  func(f Flags) bool { return f.SF },
	isa.JNS: func(f Flags) bool { return !f.SF },
}

// binCompute performs one ALU operation and sets CF/OF exactly as
// Machine.binop does; SF/ZF and the byte mask are applied by the
// caller, which sees the raw result.
type binCompute func(a, b uint32, f *Flags) uint32

var binComputes = map[isa.Op]binCompute{
	isa.ADD: func(a, b uint32, f *Flags) uint32 {
		r := a + b
		f.CF = r < a
		f.OF = (a>>31 == b>>31) && (r>>31 != a>>31)
		return r
	},
	isa.SUB: subCompute, isa.CMP: subCompute,
	isa.AND: andCompute, isa.TEST: andCompute,
	isa.OR: func(a, b uint32, f *Flags) uint32 {
		f.CF, f.OF = false, false
		return a | b
	},
	isa.XOR: func(a, b uint32, f *Flags) uint32 {
		f.CF, f.OF = false, false
		return a ^ b
	},
}

func subCompute(a, b uint32, f *Flags) uint32 {
	r := a - b
	f.CF = a < b
	f.OF = (a>>31 != b>>31) && (r>>31 != a>>31)
	return r
}

func andCompute(a, b uint32, f *Flags) uint32 {
	f.CF, f.OF = false, false
	return a & b
}

// compile translates one instruction at eip into a threaded-code
// closure and returns it together with the instruction's worst-case
// cycle charge under model (used for timer-deadline batching).
func compile(ins *isa.Instr, eip uint32, model *cycles.Model) (execFn, float64) {
	next := eip + isa.InstrSlot
	tlb := model.Cost(cycles.TLBMiss)

	switch ins.Op {
	case isa.NOP:
		c := model.Cost(cycles.Nop)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			m.EIP = next
			return nil
		}, c

	case isa.HLT:
		c := model.Cost(cycles.Hlt)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			if m.CPL() != 0 {
				return m.gpf("hlt at CPL > 0")
			}
			m.haltFlag = true
			m.EIP = next
			return nil
		}, c

	case isa.MOV:
		c := model.Cost(costKind(ins))
		maxc := c
		if ins.Dst.Kind == isa.KindMem {
			maxc += tlb
		}
		if ins.Src.Kind == isa.KindMem {
			maxc += tlb
		}
		// Fully inlined fast paths for the register destinations.
		if ins.Dst.Kind == isa.KindReg && ins.Size != 1 {
			dst := ins.Dst.Reg
			switch ins.Src.Kind {
			case isa.KindImm:
				v := uint32(ins.Src.Imm)
				return func(m *Machine) *mmu.Fault {
					m.Clock.Add(c)
					m.Regs[dst] = v
					m.EIP = next
					return nil
				}, maxc
			case isa.KindReg:
				src := ins.Src.Reg
				return func(m *Machine) *mmu.Fault {
					m.Clock.Add(c)
					m.Regs[dst] = m.Regs[src]
					m.EIP = next
					return nil
				}, maxc
			}
		}
		rs := compileRead(&ins.Src, ins.Size)
		wd := compileWrite(&ins.Dst, ins.Size)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			v, f := rs(m)
			if f != nil {
				return f
			}
			if f := wd(m, v); f != nil {
				return f
			}
			m.EIP = next
			return nil
		}, maxc

	case isa.LEA:
		c := model.Cost(cycles.Lea)
		dst := ins.Dst.Reg
		addr := compileAddr(&ins.Src)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			m.Regs[dst] = addr(m)
			m.EIP = next
			return nil
		}, c

	case isa.PUSH:
		c := model.Cost(costKind(ins))
		maxc := c + tlb // the stack store
		if ins.Dst.Kind == isa.KindMem {
			maxc += tlb
		}
		rd := compileRead(&ins.Dst, 4)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			v, f := rd(m)
			if f != nil {
				return f
			}
			if f := m.Push(v); f != nil {
				return f
			}
			m.EIP = next
			return nil
		}, maxc

	case isa.POP:
		c := model.Cost(costKind(ins))
		maxc := c + tlb
		if ins.Dst.Kind == isa.KindMem {
			maxc += tlb
		}
		wd := compileWrite(&ins.Dst, 4)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			v, f := m.Pop()
			if f != nil {
				return f
			}
			if f := wd(m, v); f != nil {
				// x86 restores ESP if the store faults.
				m.Regs[isa.ESP] -= 4
				return f
			}
			m.EIP = next
			return nil
		}, maxc

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST:
		c := model.Cost(costKind(ins))
		maxc := c
		if ins.Dst.Kind == isa.KindMem {
			maxc += 2 * tlb // read + write translate
		}
		if ins.Src.Kind == isa.KindMem {
			maxc += tlb
		}
		compute := binComputes[ins.Op]
		noWrite := ins.Op == isa.CMP || ins.Op == isa.TEST
		// Inlined fast path: dword, register destination, register or
		// immediate source — the bulk of generated ALU traffic.
		if ins.Size != 1 && ins.Dst.Kind == isa.KindReg && ins.Src.Kind != isa.KindMem {
			dst := ins.Dst.Reg
			rb := compileRead(&ins.Src, 4)
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				b, _ := rb(m)
				r := compute(m.Regs[dst], b, &m.Flags)
				m.Flags.SF = r&0x8000_0000 != 0
				m.Flags.ZF = r == 0
				if !noWrite {
					m.Regs[dst] = r
				}
				m.EIP = next
				return nil
			}, maxc
		}
		ra := compileRead(&ins.Dst, ins.Size)
		rb := compileRead(&ins.Src, ins.Size)
		var wd writeFn
		if !noWrite {
			wd = compileWrite(&ins.Dst, ins.Size)
		}
		byteOp := ins.Size == 1
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			a, f := ra(m)
			if f != nil {
				return f
			}
			b, f := rb(m)
			if f != nil {
				return f
			}
			r := compute(a, b, &m.Flags)
			if byteOp {
				r &= 0xFF
				m.Flags.SF = r&0x80 != 0
			} else {
				m.Flags.SF = r&0x8000_0000 != 0
			}
			m.Flags.ZF = r == 0
			if wd != nil {
				if f := wd(m, r); f != nil {
					return f
				}
			}
			m.EIP = next
			return nil
		}, maxc

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		c := model.Cost(costKind(ins))
		maxc := c
		if ins.Dst.Kind == isa.KindMem {
			maxc += 2 * tlb
		}
		return compileUnop(ins, c, next), maxc

	case isa.SHL, isa.SHR, isa.SAR:
		c := model.Cost(costKind(ins))
		maxc := c
		if ins.Dst.Kind == isa.KindMem {
			maxc += 2 * tlb
		}
		return compileShift(ins, c, next), maxc

	case isa.IMUL:
		c := model.Cost(cycles.Mul)
		maxc := c
		if ins.Src.Kind == isa.KindMem {
			maxc += tlb
		}
		dst := ins.Dst.Reg
		rs := compileRead(&ins.Src, 4)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			a := int32(m.Regs[dst])
			bv, f := rs(m)
			if f != nil {
				return f
			}
			m.Regs[dst] = uint32(a * int32(bv))
			m.EIP = next
			return nil
		}, maxc

	case isa.XCHG:
		c := model.Cost(cycles.Xchg)
		maxc := c
		if ins.Dst.Kind == isa.KindMem {
			maxc += 2 * tlb
		}
		if ins.Src.Kind == isa.KindMem {
			maxc += 2 * tlb
		}
		ra := compileRead(&ins.Dst, ins.Size)
		rb := compileRead(&ins.Src, ins.Size)
		wa := compileWrite(&ins.Dst, ins.Size)
		wb := compileWrite(&ins.Src, ins.Size)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			a, f := ra(m)
			if f != nil {
				return f
			}
			b, f := rb(m)
			if f != nil {
				return f
			}
			if f := wa(m, b); f != nil {
				return f
			}
			if f := wb(m, a); f != nil {
				return f
			}
			m.EIP = next
			return nil
		}, maxc

	case isa.JMP:
		c := model.Cost(cycles.JmpNear)
		switch ins.Dst.Kind {
		case isa.KindImm:
			tgt := uint32(ins.Dst.Imm)
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				m.EIP = tgt
				return nil
			}, c
		case isa.KindReg:
			r := ins.Dst.Reg
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				m.EIP = m.Regs[r]
				return nil
			}, c
		}
		cl := model.Cost(cycles.Load)
		rd := compileRead(&ins.Dst, 4)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			m.Clock.Add(cl)
			t, f := rd(m)
			if f != nil {
				return f
			}
			m.EIP = t
			return nil
		}, c + cl + tlb

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
		cond := condFns[ins.Op]
		cT := model.Cost(cycles.JccTaken)
		cN := model.Cost(cycles.JccNotTaken)
		tgt := uint32(ins.Dst.Imm)
		return func(m *Machine) *mmu.Fault {
			if cond(m.Flags) {
				m.Clock.Add(cT)
				m.EIP = tgt
			} else {
				m.Clock.Add(cN)
				m.EIP = next
			}
			return nil
		}, model.MaxCost(cycles.JccTaken, cycles.JccNotTaken)

	case isa.CALL:
		c := model.Cost(cycles.CallNear)
		maxc := c + tlb // the return-address push
		if ins.Dst.Kind == isa.KindImm {
			tgt := uint32(ins.Dst.Imm)
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				if f := m.Push(next); f != nil {
					return f
				}
				m.EIP = tgt
				return nil
			}, maxc
		}
		cl := model.Cost(cycles.Load)
		isMem := ins.Dst.Kind == isa.KindMem
		if isMem {
			maxc += cl + tlb
		}
		rd := compileRead(&ins.Dst, 4)
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			if isMem {
				m.Clock.Add(cl)
			}
			t, f := rd(m)
			if f != nil {
				return f
			}
			if f := m.Push(next); f != nil {
				return f
			}
			m.EIP = t
			return nil
		}, maxc

	case isa.RET:
		c := model.Cost(cycles.RetNear)
		var rel uint32
		if ins.Dst.Kind == isa.KindImm {
			rel = uint32(ins.Dst.Imm)
		}
		return func(m *Machine) *mmu.Fault {
			m.Clock.Add(c)
			t, f := m.Pop()
			if f != nil {
				return f
			}
			m.Regs[isa.ESP] += rel
			m.EIP = t
			return nil
		}, c + tlb

	case isa.LCALL:
		sel := mmu.Selector(uint16(ins.Dst.Imm))
		return func(m *Machine) *mmu.Fault {
			return m.lcallGate(sel, next)
		}, model.MaxCost(cycles.CallFarSame, cycles.LcallGateInter) + 4*tlb

	case isa.LRET:
		var n uint32
		if ins.Dst.Kind == isa.KindImm {
			n = uint32(ins.Dst.Imm)
		}
		return func(m *Machine) *mmu.Fault {
			return m.lretTransfer(n)
		}, model.MaxCost(cycles.LretSame, cycles.LretInter) + 4*tlb

	case isa.INT:
		vec := uint8(ins.Dst.Imm)
		return func(m *Machine) *mmu.Fault {
			return m.intTransfer(vec, true)
		}, model.Cost(cycles.IntGate) + 5*tlb

	case isa.IRET:
		return func(m *Machine) *mmu.Fault {
			return m.iretTransfer()
		}, model.MaxCost(cycles.Iret, cycles.IretInter) + 5*tlb
	}

	// Unimplemented opcode: route through execute, whose default arm
	// raises the canonical #UD (keeping the fault text in one place).
	return func(m *Machine) *mmu.Fault {
		return m.execute(ins)
	}, 0
}

// compileUnop builds INC/DEC/NEG/NOT closures mirroring Machine.unop.
func compileUnop(ins *isa.Instr, c float64, next uint32) execFn {
	byteOp := ins.Size == 1
	// Register fast path, dword.
	if ins.Dst.Kind == isa.KindReg && !byteOp {
		r := ins.Dst.Reg
		switch ins.Op {
		case isa.INC:
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				v := m.Regs[r] + 1
				m.Flags.OF = v == 0x8000_0000
				m.Flags.SF = v&0x8000_0000 != 0
				m.Flags.ZF = v == 0
				m.Regs[r] = v
				m.EIP = next
				return nil
			}
		case isa.DEC:
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				a := m.Regs[r]
				v := a - 1
				m.Flags.OF = a == 0x8000_0000
				m.Flags.SF = v&0x8000_0000 != 0
				m.Flags.ZF = v == 0
				m.Regs[r] = v
				m.EIP = next
				return nil
			}
		case isa.NEG:
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				a := m.Regs[r]
				v := -a
				m.Flags.CF = a != 0
				m.Flags.SF = v&0x8000_0000 != 0
				m.Flags.ZF = v == 0
				m.Regs[r] = v
				m.EIP = next
				return nil
			}
		case isa.NOT:
			return func(m *Machine) *mmu.Fault {
				m.Clock.Add(c)
				m.Regs[r] = ^m.Regs[r] // NOT does not affect flags
				m.EIP = next
				return nil
			}
		}
	}
	op := ins.Op
	ra := compileRead(&ins.Dst, ins.Size)
	wd := compileWrite(&ins.Dst, ins.Size)
	return func(m *Machine) *mmu.Fault {
		m.Clock.Add(c)
		a, f := ra(m)
		if f != nil {
			return f
		}
		var r uint32
		switch op {
		case isa.INC:
			r = a + 1
			m.Flags.OF = r == 0x8000_0000
		case isa.DEC:
			r = a - 1
			m.Flags.OF = a == 0x8000_0000
		case isa.NEG:
			r = -a
			m.Flags.CF = a != 0
		case isa.NOT:
			if f := wd(m, ^a); f != nil {
				return f
			}
			m.EIP = next
			return nil // NOT does not affect flags
		}
		if byteOp {
			r &= 0xFF
			m.Flags.SF = r&0x80 != 0
		} else {
			m.Flags.SF = r&0x8000_0000 != 0
		}
		m.Flags.ZF = r == 0
		if f := wd(m, r); f != nil {
			return f
		}
		m.EIP = next
		return nil
	}
}

// compileShift builds SHL/SHR/SAR closures mirroring Machine.shift.
func compileShift(ins *isa.Instr, c float64, next uint32) execFn {
	n := uint32(ins.Src.Imm) & 31
	op := ins.Op
	ra := compileRead(&ins.Dst, 4)
	wd := compileWrite(&ins.Dst, 4)
	return func(m *Machine) *mmu.Fault {
		m.Clock.Add(c)
		a, f := ra(m)
		if f != nil {
			return f
		}
		var r uint32
		switch op {
		case isa.SHL:
			r = a << n
			if n > 0 {
				m.Flags.CF = a&(1<<(32-n)) != 0
			}
		case isa.SHR:
			r = a >> n
			if n > 0 {
				m.Flags.CF = a&(1<<(n-1)) != 0
			}
		case isa.SAR:
			r = uint32(int32(a) >> n)
			if n > 0 {
				m.Flags.CF = a&(1<<(n-1)) != 0
			}
		}
		m.Flags.ZF = r == 0
		m.Flags.SF = r&0x8000_0000 != 0
		if f := wd(m, r); f != nil {
			return f
		}
		m.EIP = next
		return nil
	}
}
