package cpu

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Differential fuzzing of the decoded-block cache (PR 1) and the
// trace-superblock tier (PR 8): a seeded generator builds random
// straight-line + branchy programs, runs each on two identical
// machines — one through the cached Run loop, one through uncached
// single Steps — while a scripted stream of invalidation events
// (InvalidatePage, SetBreak/ClearBreak, InstallCode mid-stream) fires
// from the timer hook, and asserts the two executions are
// indistinguishable: same stop reason and fault, same retired
// instructions, same simulated cycles, same TLB statistics, same
// final registers, flags and memory.
//
// diffExec drops TraceThreshold to 3, so hot labels promote into
// fused traces almost immediately and every scripted event is also a
// trace-hostile event: paging events and code edits strike while a
// trace is live, breakpoints land inside fused ranges, ticks and
// budgets expire mid-trace, and generated faults hit arbitrary fused
// positions. The oracle therefore pins tier-3 deoptimization — the
// partial-commit path — to tier-1 semantics along with the chains.

// diffRegs are the registers random programs scribble on. ESP and EBP
// are excluded so stack handling stays structured (push/pop pairs and
// call/ret); wild memory traffic is exercised through indirect
// addressing instead.
var diffRegs = []string{"eax", "ebx", "ecx", "edx", "esi", "edi"}

// diffEvent is one scripted invalidation, applied by the timer hook at
// an identical simulated cycle on both machines. Kinds 4-6 are the
// chain-hostile events: they strike while the specialized tier is
// mid-chain — a CR3 reload (TLB flush + translation-generation bump
// under a running chain), a RemoveCode over a chained successor (the
// very next dispatch of that label must raise #UD), and a two-slot
// InstallCode over a chained successor's entry and interior.
type diffEvent struct {
	kind  int   // 0 invlpg, 1 set break, 2 clear break, 3 install code, 4 load cr3, 5 remove code, 6 install 2 slots
	block int   // target block label index
	imm   int32 // replacement immediate for install-code events
}

// genProgram emits a random program of labelled blocks over a shared
// data buffer, always ending in a reachable stop label, plus two leaf
// functions. Termination is not guaranteed (loops are allowed); the
// differential runs bound instructions and compare the budget stop.
func genProgram(rng *rand.Rand) (string, int) {
	nblocks := 4 + rng.Intn(8)
	var b strings.Builder
	b.WriteString("entry:\n")
	reg := func() string { return diffRegs[rng.Intn(len(diffRegs))] }
	disp := func() int { return 4 * rng.Intn(60) }
	alu := []string{"add", "sub", "and", "or", "xor", "cmp", "test"}
	una := []string{"inc", "dec", "neg", "not"}
	shf := []string{"shl", "shr", "sar"}
	jcc := []string{"je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae", "js", "jns"}

	for blk := 0; blk < nblocks; blk++ {
		fmt.Fprintf(&b, "b%d:\n", blk)
		for n := 1 + rng.Intn(6); n > 0; n-- {
			switch rng.Intn(22) {
			case 0:
				fmt.Fprintf(&b, "\tmov %s, %d\n", reg(), rng.Int31())
			case 1:
				fmt.Fprintf(&b, "\tmov %s, %s\n", reg(), reg())
			case 2:
				fmt.Fprintf(&b, "\tmov %s, [buf+%d]\n", reg(), disp())
			case 3:
				if rng.Intn(4) == 0 {
					fmt.Fprintf(&b, "\tmov [buf+%d], %d\n", disp(), rng.Int31())
				} else {
					fmt.Fprintf(&b, "\tmov [buf+%d], %s\n", disp(), reg())
				}
			case 4:
				fmt.Fprintf(&b, "\tmovb %s, [buf+%d]\n", reg(), disp())
			case 5:
				fmt.Fprintf(&b, "\tmovb [buf+%d], %s\n", disp(), reg())
			case 6:
				fmt.Fprintf(&b, "\t%s %s, %s\n", alu[rng.Intn(len(alu))], reg(), reg())
			case 7:
				fmt.Fprintf(&b, "\t%s %s, %d\n", alu[rng.Intn(len(alu))], reg(), rng.Int31n(1<<16))
			case 8:
				fmt.Fprintf(&b, "\t%s %s, [buf+%d]\n", alu[rng.Intn(len(alu))], reg(), disp())
			case 9:
				fmt.Fprintf(&b, "\t%s %s\n", una[rng.Intn(len(una))], reg())
			case 10:
				fmt.Fprintf(&b, "\t%s %s, %d\n", shf[rng.Intn(len(shf))], reg(), rng.Intn(32))
			case 11:
				fmt.Fprintf(&b, "\timul %s, %s\n", reg(), reg())
			case 12:
				fmt.Fprintf(&b, "\tlea %s, [buf+%d]\n", reg(), disp())
			case 13:
				r1, r2 := reg(), reg()
				fmt.Fprintf(&b, "\tpush %s\n\tpop %s\n", r1, r2)
			case 14:
				fmt.Fprintf(&b, "\tcall fn%d\n", rng.Intn(2))
			case 15:
				// Wild indirect access: the register value is whatever
				// the program computed, so this may fault — both
				// executions must fault identically.
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "\tmov %s, [%s]\n", reg(), reg())
				} else {
					fmt.Fprintf(&b, "\tmov [%s], %s\n", reg(), reg())
				}
			// Memory-destination and exotic forms, added with the
			// trace tier so its fused read-modify-write micro-ops are
			// under the differential too.
			case 16:
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "\t%s [buf+%d], %s\n", alu[rng.Intn(len(alu))], disp(), reg())
				} else {
					fmt.Fprintf(&b, "\t%s [buf+%d], %d\n", alu[rng.Intn(len(alu))], disp(), rng.Int31n(1<<16))
				}
			case 17:
				fmt.Fprintf(&b, "\t%s [buf+%d]\n", una[rng.Intn(len(una))], disp())
			case 18:
				fmt.Fprintf(&b, "\t%s [buf+%d], %d\n", shf[rng.Intn(len(shf))], disp(), rng.Intn(32))
			case 19:
				switch rng.Intn(3) {
				case 0:
					fmt.Fprintf(&b, "\txchg %s, %s\n", reg(), reg())
				case 1:
					fmt.Fprintf(&b, "\txchg %s, [buf+%d]\n", reg(), disp())
				case 2:
					fmt.Fprintf(&b, "\txchg [buf+%d], %s\n", disp(), reg())
				}
			case 20:
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "\timul %s, %d\n", reg(), rng.Int31n(1<<8))
				} else {
					fmt.Fprintf(&b, "\timul %s, [buf+%d]\n", reg(), disp())
				}
			case 21:
				switch rng.Intn(3) {
				case 0:
					fmt.Fprintf(&b, "\tpush %d\n\tpop %s\n", rng.Int31(), reg())
				case 1:
					fmt.Fprintf(&b, "\tpush [buf+%d]\n\tpop %s\n", disp(), reg())
				case 2:
					fmt.Fprintf(&b, "\tpush %s\n\tpop [buf+%d]\n", reg(), disp())
				}
			}
		}
		if blk == nblocks-1 {
			b.WriteString("\tjmp stop\n")
			continue
		}
		switch rng.Intn(10) {
		case 0, 1, 2:
			// Fall through.
		case 3, 4:
			fmt.Fprintf(&b, "\tjmp b%d\n", rng.Intn(nblocks))
		default:
			fmt.Fprintf(&b, "\t%s b%d\n", jcc[rng.Intn(len(jcc))], rng.Intn(nblocks))
		}
	}
	b.WriteString("stop:\n\tnop\n")
	for f := 0; f < 2; f++ {
		fmt.Fprintf(&b, "fn%d:\n\tpush ebx\n\t%s ebx\n\tpop ebx\n\tret\n", f, una[f])
	}
	b.WriteString(".data\nbuf: .space 256\n")
	return b.String(), nblocks
}

// genEvents scripts 2-8 invalidation events against random blocks.
func genEvents(rng *rand.Rand, nblocks int) []diffEvent {
	events := make([]diffEvent, 2+rng.Intn(7))
	for i := range events {
		events[i] = diffEvent{
			kind:  rng.Intn(7),
			block: rng.Intn(nblocks),
			imm:   rng.Int31n(1 << 20),
		}
	}
	return events
}

// applyEvent performs one scripted invalidation on a machine.
func applyEvent(h *harness, syms map[string]uint32, ev diffEvent) {
	lin := syms[fmt.Sprintf("b%d", ev.block)]
	switch ev.kind {
	case 0:
		h.m.MMU.InvalidatePage(lin)
	case 1:
		h.m.SetBreak(lin)
	case 2:
		h.m.ClearBreak(lin)
	case 3:
		if pa, ok := h.m.MMU.PeekPage(lin); ok {
			h.m.InstallCode(pa, []isa.Instr{
				{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.I(ev.imm), Size: 4},
			})
		}
	case 4:
		// CR3 reload mid-chain: flushes the TLB (charged identically
		// on both machines) and advances the translation generation
		// under whatever chain is executing.
		h.m.MMU.LoadCR3(h.as)
	case 5:
		// RemoveCode over a chained successor: the next dispatch of
		// this label must raise #UD on both machines.
		if pa, ok := h.m.MMU.PeekPage(lin); ok {
			h.m.RemoveCode(pa, 1)
		}
	case 6:
		// Two-slot install over a chained successor's entry and
		// interior.
		if pa, ok := h.m.MMU.PeekPage(lin); ok {
			h.m.InstallCode(pa, []isa.Instr{
				{Op: isa.MOV, Dst: isa.R(isa.EBX), Src: isa.I(ev.imm), Size: 4},
				{Op: isa.NOP},
			})
		}
	}
}

// diffExec runs the seeded program on a fresh machine with the given
// runner and returns the final state.
func diffExec(tb testing.TB, runner func(*Machine, RunLimits) RunResult,
	src string, events []diffEvent, tick float64, budget uint64) (*harness, map[string]uint32, RunResult) {
	h := newHarness(tb)
	syms := h.install(0x0001_0000, src)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	// Hair-trigger trace promotion: every generated loop goes hot, so
	// the scripted events double as trace-hostile events (the Step leg
	// never builds traces — stepRun bypasses the block runner — so the
	// differential still compares tiers, not trace-vs-trace).
	h.m.TraceThreshold = 3
	next := 0
	h.m.TickCycles = tick
	h.m.OnTick = func(m *Machine) error {
		if next < len(events) {
			applyEvent(h, syms, events[next])
			next++
		}
		return nil
	}
	res := runner(h.m, RunLimits{MaxInstructions: budget})
	return h, syms, res
}

// readRange returns the bytes at [lin, lin+n) through the live
// translation, without charging or counting anything.
func readRange(tb testing.TB, h *harness, lin uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		pa, ok := h.m.MMU.PeekPage(lin + uint32(i))
		if !ok {
			tb.Fatalf("readRange: %#x not mapped", lin+uint32(i))
		}
		out[i] = h.m.Phys.Read8(pa)
	}
	return out
}

// diffCheck is the differential oracle: Run and Step executions of the
// same seeded program must be indistinguishable.
func diffCheck(tb testing.TB, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src, nblocks := genProgram(rng)
	events := genEvents(rng, nblocks)
	tick := 60 + float64(rng.Intn(150))
	budget := uint64(1200 + rng.Intn(1800))

	hRun, symsRun, resRun := diffExec(tb, (*Machine).Run, src, events, tick, budget)
	hStep, symsStep, resStep := diffExec(tb, stepRun, src, events, tick, budget)

	fail := func(format string, args ...any) {
		tb.Helper()
		tb.Errorf("seed %d: "+format, append([]any{seed}, args...)...)
	}
	if resRun.Reason != resStep.Reason {
		fail("stop reason: Run %v (%v), Step %v (%v)\nprogram:\n%s",
			resRun.Reason, resRun.Err, resStep.Reason, resStep.Err, src)
		return
	}
	if (resRun.Fault == nil) != (resStep.Fault == nil) {
		fail("fault presence: Run %v, Step %v", resRun.Fault, resStep.Fault)
	} else if resRun.Fault != nil && *resRun.Fault != *resStep.Fault {
		fail("fault: Run %+v, Step %+v", resRun.Fault, resStep.Fault)
	}
	if resRun.Instructions != resStep.Instructions {
		fail("instructions: Run %d, Step %d", resRun.Instructions, resStep.Instructions)
	}
	if a, b := hRun.m.Instructions(), hStep.m.Instructions(); a != b {
		fail("instret: Run %d, Step %d", a, b)
	}
	if a, b := hRun.m.Clock.Cycles(), hStep.m.Clock.Cycles(); a != b {
		fail("cycles: Run %v, Step %v", a, b)
	}
	rh, rm, rf := hRun.m.MMU.TLB().Stats()
	sh, sm, sf := hStep.m.MMU.TLB().Stats()
	if rh != sh || rm != sm || rf != sf {
		fail("TLB stats: Run %d/%d/%d, Step %d/%d/%d", rh, rm, rf, sh, sm, sf)
	}
	if hRun.m.Regs != hStep.m.Regs {
		fail("registers: Run %v, Step %v", hRun.m.Regs, hStep.m.Regs)
	}
	if hRun.m.EIP != hStep.m.EIP || hRun.m.CS != hStep.m.CS || hRun.m.Flags != hStep.m.Flags {
		fail("eip/cs/flags: Run %#x/%v/%+v, Step %#x/%v/%+v",
			hRun.m.EIP, hRun.m.CS, hRun.m.Flags, hStep.m.EIP, hStep.m.CS, hStep.m.Flags)
	}
	if symsRun["buf"] != symsStep["buf"] {
		tb.Fatalf("seed %d: layouts diverged", seed)
	}
	bufRun := readRange(tb, hRun, symsRun["buf"], 256)
	bufStep := readRange(tb, hStep, symsStep["buf"], 256)
	if string(bufRun) != string(bufStep) {
		fail("data buffer diverged")
	}
	stackRun := readRange(tb, hRun, 0x0008_0000, int(mem.PageSize))
	stackStep := readRange(tb, hStep, 0x0008_0000, int(mem.PageSize))
	if string(stackRun) != string(stackStep) {
		fail("stack page diverged")
	}
	// Sanity on the oracle itself: a breakpoint stop must be at the
	// stop label or at a block label a scripted SetBreak event armed.
	if resRun.Reason == StopBreak && hRun.m.EIP != symsRun["stop"] {
		armed := false
		for _, ev := range events {
			if ev.kind == 1 && symsRun[fmt.Sprintf("b%d", ev.block)] == hRun.m.EIP {
				armed = true
			}
		}
		if !armed {
			fail("stopped at breakpoint away from stop and armed labels: eip %#x", hRun.m.EIP)
		}
	}
}

// TestRunMatchesStepDifferential is the deterministic leg: a fixed
// fan of seeds derived from the package seed, so CI covers a spread of
// generated programs and any failure names its seed.
func TestRunMatchesStepDifferential(t *testing.T) {
	base := testSeed(t)
	for i := int64(0); i < 24; i++ {
		seed := base + i
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			diffCheck(t, seed)
		})
	}
}

// FuzzRunMatchesStep is the native fuzzing leg: go test -fuzz explores
// fresh seeds, widening the differential search beyond the fixed fan.
func FuzzRunMatchesStep(f *testing.F) {
	for i := int64(0); i < 8; i++ {
		f.Add(defaultTestSeed + i)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffCheck(t, seed)
	})
}

// TestDiffProgramsExerciseTheCache guards the oracle's power: across
// the seed fan, the generated programs must actually hit the decoded-
// block cache, promote into traces, deoptimize out of them, and
// trigger explicit invalidations — or the differential would be
// testing the uncached path against itself.
func TestDiffProgramsExerciseTheCache(t *testing.T) {
	base := testSeed(t)
	var hits, builds, invalidations uint64
	var ts TraceStats
	var faults, breaks, budgets int
	for i := int64(0); i < 24; i++ {
		rng := rand.New(rand.NewSource(base + i))
		src, nblocks := genProgram(rng)
		events := genEvents(rng, nblocks)
		tick := 60 + float64(rng.Intn(150))
		budget := uint64(1200 + rng.Intn(1800))
		h, _, res := diffExec(t, (*Machine).Run, src, events, tick, budget)
		bh, bb, bi := h.m.BlockCacheStats()
		hits += bh
		builds += bb
		invalidations += bi
		mt := h.m.TraceStats()
		ts.Built += mt.Built
		ts.Invalidated += mt.Invalidated
		ts.Dispatches += mt.Dispatches
		ts.SideExits += mt.SideExits
		ts.DeoptTick += mt.DeoptTick
		ts.DeoptFault += mt.DeoptFault
		ts.DeoptPage += mt.DeoptPage
		ts.DeoptBudget += mt.DeoptBudget
		switch res.Reason {
		case StopFault:
			faults++
		case StopBreak:
			breaks++
		case StopBudget:
			budgets++
		}
	}
	if hits == 0 || builds == 0 {
		t.Errorf("seed fan never exercised the block cache (hits %d, builds %d)", hits, builds)
	}
	if invalidations == 0 {
		t.Errorf("seed fan never triggered a block invalidation")
	}
	if ts.Built == 0 || ts.Dispatches == 0 {
		t.Errorf("seed fan never engaged the trace tier (%+v)", ts)
	}
	if ts.Invalidated == 0 {
		t.Errorf("seed fan never invalidated a trace; events are not trace-hostile (%+v)", ts)
	}
	if ts.DeoptTick+ts.DeoptFault+ts.DeoptPage+ts.DeoptBudget == 0 {
		t.Errorf("seed fan never deoptimized mid-trace; partial commits untested (%+v)", ts)
	}
	t.Logf("outcome mix: %d breaks, %d faults, %d budgets; cache: %d hits, %d builds, %d invalidations",
		breaks, faults, budgets, hits, builds, invalidations)
	t.Logf("traces: %+v", ts)
}
