package cpu

import (
	"encoding/binary"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

const noReg = uint8(isa.NoReg)

// traceCond evaluates a Jcc predicate on the trace's local flags;
// mirrors condFns (translate.go) exactly.
func traceCond(sub isa.Op, zf, sf, cf, of bool) bool {
	switch sub {
	case isa.JE:
		return zf
	case isa.JNE:
		return !zf
	case isa.JL:
		return sf != of
	case isa.JLE:
		return zf || sf != of
	case isa.JG:
		return !zf && sf == of
	case isa.JGE:
		return sf == of
	case isa.JB:
		return cf
	case isa.JBE:
		return cf || zf
	case isa.JA:
		return !cf && !zf
	case isa.JAE:
		return !cf
	case isa.JS:
		return sf
	case isa.JNS:
		return !sf
	}
	return false
}

// aluCF computes a binary ALU result with its CF/OF effects; mirrors
// binComputes (translate.go) exactly. SF/ZF and the byte mask are
// applied by the caller on the raw result, as there.
func aluCF(sub isa.Op, a, b uint32) (r uint32, cf, of bool) {
	switch sub {
	case isa.ADD:
		r = a + b
		cf = r < a
		// Same sign in, different sign out: bit-exact XOR form of
		// (a>>31 == b>>31) && (r>>31 != a>>31).
		of = (^(a^b)&(a^r))>>31 != 0
	case isa.SUB, isa.CMP:
		r = a - b
		cf = a < b
		// Different sign in, result sign differs from a: XOR form of
		// (a>>31 != b>>31) && (r>>31 != a>>31).
		of = ((a^b)&(a^r))>>31 != 0
	case isa.AND, isa.TEST:
		r = a & b
	case isa.OR:
		r = a | b
	case isa.XOR:
		r = a ^ b
	}
	return
}

// fastR replays this op's read translation from its dispatch-scoped
// inline cache (traceOp.fsR..frameR): a live seq tag plus a page match
// mean the warm TranslateBatched outcome is guaranteed to repeat, so
// the replay performs — and counts — exactly what that path would: one
// batched elision when the verifier proof applies (else the identical
// limit check), and one batched TLB hit. Every miss (first use this
// dispatch, page crossed, limit violated) reports !ok having counted
// nothing, and the caller takes TranslateBatched live, which does and
// counts everything itself; slowR then refills the cache. The split
// exists so this hit path inlines into runTrace's dispatch loop.
func (op *traceOp) fastR(off, size, seq uint32, elided, batch *uint64) (uint32, bool) {
	if op.fsR != seq {
		return 0, false
	}
	lin := op.segBaseR + off
	if lin&^uint32(mem.PageMask) != op.vpageR {
		return 0, false
	}
	if op.elideR {
		*elided++
	} else {
		end := off + size - 1
		if end < off || end > op.segLimitR {
			return 0, false
		}
	}
	*batch++
	return op.frameR | (lin & uint32(mem.PageMask)), true
}

// fastW is fastR over the write-side cache.
func (op *traceOp) fastW(off, size, seq uint32, elided, batch *uint64) (uint32, bool) {
	if op.fsW != seq {
		return 0, false
	}
	lin := op.segBaseW + off
	if lin&^uint32(mem.PageMask) != op.vpageW {
		return 0, false
	}
	if op.elideW {
		*elided++
	} else {
		end := off + size - 1
		if end < off || end > op.segLimitW {
			return 0, false
		}
	}
	*batch++
	return op.frameW | (lin & uint32(mem.PageMask)), true
}

// slowR is the fast-path miss handler: the live TranslateBatched with
// this op's read probe and page slot, refilling the inline cache on
// success. proved/bound are taken from the call site, not the op —
// stack accesses translate unproved even when the op's memory operand
// carries a bound.
func (m *Machine) slowR(op *traceOp, proved bool, bound uint32, sel mmu.Selector, off, size uint32, cpl int, seq uint32, batch *uint64) (uint32, *mmu.Fault) {
	pa, f := m.MMU.TranslateBatched(&op.probeR, proved, bound, sel, off, size, mmu.Read, cpl, &op.pcR, seq, batch)
	if f == nil {
		op.segBaseR, op.segLimitR, op.elideR = op.probeR.Base(), op.probeR.Limit(), op.probeR.Elide()
		op.vpageR = (op.segBaseR + off) &^ uint32(mem.PageMask)
		op.frameR = pa &^ uint32(mem.PageMask)
		op.fsR = seq
	}
	return pa, f
}

// slowW is slowR over the write-side probe, slot and cache.
func (m *Machine) slowW(op *traceOp, proved bool, bound uint32, sel mmu.Selector, off, size uint32, cpl int, seq uint32, batch *uint64) (uint32, *mmu.Fault) {
	pa, f := m.MMU.TranslateBatched(&op.probeW, proved, bound, sel, off, size, mmu.Write, cpl, &op.pcW, seq, batch)
	if f == nil {
		op.segBaseW, op.segLimitW, op.elideW = op.probeW.Base(), op.probeW.Limit(), op.probeW.Elide()
		op.vpageW = (op.segBaseW + off) &^ uint32(mem.PageMask)
		op.frameW = pa &^ uint32(mem.PageMask)
		op.fsW = seq
	}
	return pa, f
}

// cachedR32 reads a dword at pa through the op's dispatch-scoped
// frame cache; the hit path is a page-match compare and one unaligned
// load, inlined into the dispatch loop. The bytes read are exactly what
// Physical.Read32 would return: the cached pointer is the frame an
// uncached walk would resolve to (see traceOp's cache invariant).
func (op *traceOp) cachedR32(pa, seq uint32) (uint32, bool) {
	// One unsigned compare covers page match AND no-straddle: d is the
	// in-page offset iff pa lands on the cached page, and ≥ PageSize
	// (or wrapped-huge) otherwise. The slow path lives in a separate
	// function because a call expression alone costs most of the inline
	// budget; this hit path must inline into the dispatch loop.
	if d := pa - op.fpageR; op.msR == seq && d <= mem.PageSize-4 {
		return binary.LittleEndian.Uint32(op.memR[d : d+4]), true
	}
	return 0, false
}

// load32Slow is cachedR32's miss path: read via the live frame walk, and
// pin the frame for the rest of the dispatch when this Physical owns
// it exclusively (a shared frame could be COW-replaced by a later
// write, so it is read but never cached). Straddling reads keep
// Read32's byte-wise assembly.
func (op *traceOp) load32Slow(phys *mem.Physical, pa, seq uint32) uint32 {
	off := pa & uint32(mem.PageMask)
	if off > mem.PageSize-4 {
		return phys.Read32(pa)
	}
	f, stable := phys.FrameViewStable(pa)
	if stable {
		op.memR, op.fpageR, op.msR = f, pa&^uint32(mem.PageMask), seq
	}
	return binary.LittleEndian.Uint32(f[off : off+4])
}

// cachedW32 writes a dword at pa through the op's dispatch-scoped
// frame cache; see cachedR32.
func (op *traceOp) cachedW32(pa, seq, v uint32) bool {
	// Single-compare page-and-straddle check; see cachedR32.
	if d := pa - op.fpageW; op.msW == seq && d <= mem.PageSize-4 {
		binary.LittleEndian.PutUint32(op.memW[d:d+4], v)
		return true
	}
	return false
}

// store32Slow is cachedW32's miss path: the full COW write fault
// (FrameMut), after which the frame is exclusively owned and safe to
// pin for the rest of the dispatch. Straddling writes keep Write32's
// byte-wise split.
func (op *traceOp) store32Slow(phys *mem.Physical, pa, seq, v uint32) {
	off := pa & uint32(mem.PageMask)
	if off > mem.PageSize-4 {
		phys.Write32(pa, v)
		return
	}
	f := phys.FrameMut(pa)
	op.memW, op.fpageW, op.msW = f, pa&^uint32(mem.PageMask), seq
	binary.LittleEndian.PutUint32(f[off:off+4], v)
}

// runTrace executes a trace superblock. It keeps the simulated
// registers and flags in locals, accumulates cycle charges and
// guaranteed TLB-hit counts locally, and commits everything to the
// machine exactly once — at the side exit, or at the deoptimization
// point with the architectural state the tier-2 closure sequence would
// have left. It returns a stop result (the caller owns Instructions)
// and the number of instructions retired.
func (m *Machine) runTrace(tr *trace, remaining uint64) (*RunResult, uint64) {
	// Entry deadline check, mirroring runChain's block-entry check: if
	// the hook ran and redirected execution, invalidated the entry
	// block or this trace, or performed a paging event, finish one step
	// uncached and let Run re-dispatch from live state.
	ticking := m.OnTick != nil && m.TickCycles > 0
	if ticking {
		tgen := m.MMU.TransGen()
		stop, ticked := m.tickCheck()
		if stop != nil {
			return stop, 0
		}
		if ticked {
			if m.EIP != tr.entryEIP || m.CS != tr.cs ||
				m.blocks[blockIndex(tr.entryLin)] != tr.entry || tr.entry.trace != tr ||
				tgen != m.MMU.TransGen() {
				stop, done := m.fetchExec()
				var n uint64
				if done {
					n = 1
				}
				return stop, n
			}
		}
	}
	m.trStats.Dispatches++

	// Per-dispatch sequence for the fetch-check and page-slot tags. On
	// wrap, stale tags from 2^32 dispatches ago could alias, so sweep
	// them; the sweep preserves correctness, not just accounting — a
	// false fseq match would skip the check that validates op.pa.
	seq := tr.seq + 1
	if seq == 0 {
		for i := range tr.ops {
			tr.ops[i].fseq = 0
			tr.ops[i].pcR = mmu.PageSlot{}
			tr.ops[i].pcW = mmu.PageSlot{}
			tr.ops[i].fsR, tr.ops[i].fsW = 0, 0
			tr.ops[i].msR, tr.ops[i].msW = 0, 0
		}
		seq = 1
	}
	tr.seq = seq

	// Hot architectural state in locals. CS/DS/SS and the CPL cannot
	// change mid-trace (no fused instruction writes a segment register,
	// and far transfers are never fused), so they are loop invariants.
	regs := m.Regs
	zf, sf, cf, of := m.Flags.ZF, m.Flags.SF, m.Flags.CF, m.Flags.OF
	cs, ds, ss := m.CS, m.DS, m.SS
	cpl := m.CPL()
	phys := m.Phys
	mm := m.MMU
	ops := tr.ops
	nops := len(ops)

	var accum float64 // batched cycle charges
	var batch uint64  // TLB hits observed by live batched checks
	var g uint64      // guaranteed-hit fetches (no probe performed)
	var elided uint64 // limit checks elided by the inline fast path
	var n uint64      // instructions retired this dispatch

	// Deadline horizon over the worst-case charge prefix: ops with
	// index below nextCheck provably cannot cross the tick deadline.
	// Past it, a precise check against clock+accum runs at each op
	// boundary; any non-linear transfer re-anchors the horizon at its
	// target (the prefix only bounds linear runs).
	nextCheck := nops
	if ticking {
		nextCheck = tr.wc.Horizon(m.Clock.Cycles(), m.nextTick, 0, nops)
	}

	var stop *RunResult
	var ceip uint32     // EIP to commit
	var livePA uint32   // deopt-page: live physical fetch address
	var pageOp *traceOp // deopt-page: the op whose frame moved

	i := 0
loop:
	for {
		op := &ops[i]

		// Instruction budget (0 = unlimited), checked before the op
		// executes so exactly `remaining` instructions retire — the
		// same truncation point as runChain's per-block limit.
		if remaining > 0 && n >= remaining {
			ceip = op.eip
			m.trStats.DeoptBudget++
			break loop
		}

		if op.code == opExit {
			// Untraceable instruction ahead: normal side exit before it.
			ceip = op.exitEIP
			m.trStats.SideExits++
			break loop
		}

		if ticking && i >= nextCheck {
			eff := m.Clock.Cycles() + accum
			if eff >= m.nextTick {
				// Deadline reached at this op boundary: deoptimize. The
				// commit lands the clock on eff and EIP here, so Run's
				// re-dispatch fires the hook at the identical point the
				// tier-2 mid-block check would have.
				ceip = op.eip
				m.trStats.DeoptTick++
				break loop
			}
			nextCheck = tr.wc.Horizon(eff, m.nextTick, i, nops)
		}

		// Page-level fetch check: full (charged, counted, faulting)
		// once per dispatch at page heads; every other executed fetch
		// is a guaranteed TLB hit, batched into g.
		if op.pageHead && op.fseq != seq {
			pa, f := mm.CheckPageBatched(op.lin, mmu.Execute, cpl, cs, op.eip, &batch)
			if f != nil {
				stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
				ceip = op.eip
				m.trStats.DeoptFault++
				break loop
			}
			if pa != op.pa {
				// The mapping changed under the trace (honoured lazily,
				// as on hardware): commit, then execute what the live
				// translation holds — tier 2's substitution arm.
				ceip = op.eip
				livePA = pa
				pageOp = op
				m.trStats.DeoptPage++
				break loop
			}
			op.fseq = seq
		} else {
			g++
		}

		// Charge first, then access — the closure order (translate.go).
		accum += op.cost

		switch op.code {
		case opNop:

		case opMovRI:
			regs[op.dst] = op.imm
		case opMovRR:
			regs[op.dst] = regs[op.src]
		case opMovRRB:
			regs[op.dst] = regs[op.src] & 0xFF

		case opLea:
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			regs[op.dst] = off

		case opMovLoad:
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			pa, ok := op.fastR(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowR(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if op.size == 1 {
				regs[op.dst] = uint32(phys.Read8(pa))
			} else {
				r32, rok := op.cachedR32(pa, seq)
				if !rok {
					r32 = op.load32Slow(phys, pa, seq)
				}
				regs[op.dst] = r32
			}

		case opMovStoreR, opMovStoreI:
			v := op.imm
			if op.code == opMovStoreR {
				v = regs[op.src]
			}
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			pa, ok := op.fastW(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowW(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if op.size == 1 {
				phys.Write8(pa, byte(v))
			} else {
				if !op.cachedW32(pa, seq, v) {
					op.store32Slow(phys, pa, seq, v)
				}
			}

		case opAluRR, opAluRI:
			a := regs[op.dst]
			b := op.imm
			if op.code == opAluRR {
				b = regs[op.src]
			}
			r, ncf, nof := aluCF(op.sub, a, b)
			cf, of = ncf, nof
			if op.size == 1 {
				r &= 0xFF
				sf = r&0x80 != 0
			} else {
				sf = r&0x8000_0000 != 0
			}
			zf = r == 0
			if op.sub != isa.CMP && op.sub != isa.TEST {
				regs[op.dst] = r // byte results already masked
			}

		case opAluRM:
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			pa, ok := op.fastR(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowR(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			var b uint32
			if op.size == 1 {
				b = uint32(phys.Read8(pa))
			} else {
				r32, rok := op.cachedR32(pa, seq)
				if !rok {
					r32 = op.load32Slow(phys, pa, seq)
				}
				b = r32
			}
			r, ncf, nof := aluCF(op.sub, regs[op.dst], b)
			cf, of = ncf, nof
			if op.size == 1 {
				r &= 0xFF
				sf = r&0x80 != 0
			} else {
				sf = r&0x8000_0000 != 0
			}
			zf = r == 0
			if op.sub != isa.CMP && op.sub != isa.TEST {
				regs[op.dst] = r
			}

		case opAluMR, opAluMI:
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paR, ok := op.fastR(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			var a uint32
			if op.size == 1 {
				a = uint32(phys.Read8(paR))
			} else {
				r32, rok := op.cachedR32(paR, seq)
				if !rok {
					r32 = op.load32Slow(phys, paR, seq)
				}
				a = r32
			}
			b := op.imm
			if op.code == opAluMR {
				b = regs[op.src]
			}
			r, ncf, nof := aluCF(op.sub, a, b)
			cf, of = ncf, nof
			if op.size == 1 {
				r &= 0xFF
				sf = r&0x80 != 0
			} else {
				sf = r&0x8000_0000 != 0
			}
			zf = r == 0
			if op.sub != isa.CMP && op.sub != isa.TEST {
				paW, ok := op.fastW(off, uint32(op.size), seq, &elided, &batch)
				if !ok {
					var f *mmu.Fault
					if paW, f = m.slowW(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
						stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
						ceip = op.eip
						m.trStats.DeoptFault++
						break loop
					}
				}
				if op.size == 1 {
					phys.Write8(paW, byte(r))
				} else {
					if !op.cachedW32(paW, seq, r) {
						op.store32Slow(phys, paW, seq, r)
					}
				}
			}

		case opUnR:
			a := regs[op.dst]
			var r uint32
			switch op.sub {
			case isa.INC:
				r = a + 1
				of = r == 0x8000_0000
			case isa.DEC:
				r = a - 1
				of = a == 0x8000_0000
			case isa.NEG:
				r = -a
				cf = a != 0
			case isa.NOT:
				// NOT does not affect flags.
				if op.size == 1 {
					regs[op.dst] = ^a & 0xFF
				} else {
					regs[op.dst] = ^a
				}
				goto retired
			}
			if op.size == 1 {
				r &= 0xFF
				sf = r&0x80 != 0
			} else {
				sf = r&0x8000_0000 != 0
			}
			zf = r == 0
			regs[op.dst] = r

		case opUnM:
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paR, ok := op.fastR(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			var a uint32
			if op.size == 1 {
				a = uint32(phys.Read8(paR))
			} else {
				r32, rok := op.cachedR32(paR, seq)
				if !rok {
					r32 = op.load32Slow(phys, paR, seq)
				}
				a = r32
			}
			var r uint32
			flagless := false
			switch op.sub {
			case isa.INC:
				r = a + 1
				of = r == 0x8000_0000
			case isa.DEC:
				r = a - 1
				of = a == 0x8000_0000
			case isa.NEG:
				r = -a
				cf = a != 0
			case isa.NOT:
				r = ^a
				flagless = true
			}
			if !flagless {
				if op.size == 1 {
					r &= 0xFF
					sf = r&0x80 != 0
				} else {
					sf = r&0x8000_0000 != 0
				}
				zf = r == 0
			}
			paW, ok2 := op.fastW(off, uint32(op.size), seq, &elided, &batch)
			if !ok2 {
				var f *mmu.Fault
				if paW, f = m.slowW(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if op.size == 1 {
				phys.Write8(paW, byte(r))
			} else {
				if !op.cachedW32(paW, seq, r) {
					op.store32Slow(phys, paW, seq, r)
				}
			}

		case opShR:
			a := regs[op.dst]
			k := op.imm
			var r uint32
			switch op.sub {
			case isa.SHL:
				r = a << k
				if k > 0 {
					cf = a&(1<<(32-k)) != 0
				}
			case isa.SHR:
				r = a >> k
				if k > 0 {
					cf = a&(1<<(k-1)) != 0
				}
			case isa.SAR:
				r = uint32(int32(a) >> k)
				if k > 0 {
					cf = a&(1<<(k-1)) != 0
				}
			}
			zf = r == 0
			sf = r&0x8000_0000 != 0
			regs[op.dst] = r

		case opShM:
			// Shifts read and write a dword regardless of Size
			// (compileShift binds size 4).
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paR, ok := op.fastR(off, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, op.proved, op.bound, sel, off, 4, cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			r32, rok := op.cachedR32(paR, seq)
			if !rok {
				r32 = op.load32Slow(phys, paR, seq)
			}
			a := r32
			k := op.imm
			var r uint32
			switch op.sub {
			case isa.SHL:
				r = a << k
				if k > 0 {
					cf = a&(1<<(32-k)) != 0
				}
			case isa.SHR:
				r = a >> k
				if k > 0 {
					cf = a&(1<<(k-1)) != 0
				}
			case isa.SAR:
				r = uint32(int32(a) >> k)
				if k > 0 {
					cf = a&(1<<(k-1)) != 0
				}
			}
			zf = r == 0
			sf = r&0x8000_0000 != 0
			paW, ok2 := op.fastW(off, 4, seq, &elided, &batch)
			if !ok2 {
				var f *mmu.Fault
				if paW, f = m.slowW(op, op.proved, op.bound, sel, off, 4, cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if !op.cachedW32(paW, seq, r) {
				op.store32Slow(phys, paW, seq, r)
			}

		case opImulRR:
			regs[op.dst] = uint32(int32(regs[op.dst]) * int32(regs[op.src]))
		case opImulRI:
			regs[op.dst] = uint32(int32(regs[op.dst]) * int32(op.imm))
		case opImulRM:
			a := int32(regs[op.dst])
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			// IMUL reads its source as a dword (translate.go binds 4).
			pa, ok := op.fastR(off, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowR(op, op.proved, op.bound, sel, off, 4, cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			r32, rok := op.cachedR32(pa, seq)
			if !rok {
				r32 = op.load32Slow(phys, pa, seq)
			}
			regs[op.dst] = uint32(a * int32(r32))

		case opXchgRR:
			a, b := regs[op.dst], regs[op.src]
			if op.size == 1 {
				regs[op.dst], regs[op.src] = b&0xFF, a&0xFF
			} else {
				regs[op.dst], regs[op.src] = b, a
			}

		case opXchgRM, opXchgMR:
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paR, ok := op.fastR(off, uint32(op.size), seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			var mv uint32
			if op.size == 1 {
				mv = uint32(phys.Read8(paR))
			} else {
				r32, rok := op.cachedR32(paR, seq)
				if !rok {
					r32 = op.load32Slow(phys, paR, seq)
				}
				mv = r32
			}
			if op.code == opXchgRM {
				// dst reg <-> src mem: reg write first, then mem write,
				// matching the wa-then-wb closure order.
				a := regs[op.dst]
				if op.size == 1 {
					regs[op.dst] = mv & 0xFF
				} else {
					regs[op.dst] = mv
				}
				paW, ok2 := op.fastW(off, uint32(op.size), seq, &elided, &batch)
				if !ok2 {
					var f *mmu.Fault
					if paW, f = m.slowW(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
						stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
						ceip = op.eip
						m.trStats.DeoptFault++
						break loop
					}
				}
				if op.size == 1 {
					phys.Write8(paW, byte(a))
				} else {
					if !op.cachedW32(paW, seq, a) {
						op.store32Slow(phys, paW, seq, a)
					}
				}
			} else {
				// dst mem <-> src reg: mem write first, then reg write.
				rv := regs[op.src]
				paW, ok2 := op.fastW(off, uint32(op.size), seq, &elided, &batch)
				if !ok2 {
					var f *mmu.Fault
					if paW, f = m.slowW(op, op.proved, op.bound, sel, off, uint32(op.size), cpl, seq, &batch); f != nil {
						stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
						ceip = op.eip
						m.trStats.DeoptFault++
						break loop
					}
				}
				if op.size == 1 {
					phys.Write8(paW, byte(rv))
				} else {
					if !op.cachedW32(paW, seq, rv) {
						op.store32Slow(phys, paW, seq, rv)
					}
				}
				if op.size == 1 {
					regs[op.src] = mv & 0xFF
				} else {
					regs[op.src] = mv
				}
			}

		case opPushR, opPushI:
			v := op.imm
			if op.code == opPushR {
				v = regs[op.src]
			}
			esp := regs[isa.ESP] - 4
			pa, ok := op.fastW(esp, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowW(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS // ESP unchanged, as in Machine.Push
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if !op.cachedW32(pa, seq, v) {
				op.store32Slow(phys, pa, seq, v)
			}
			regs[isa.ESP] = esp

		case opPushM:
			// PUSH reads its operand as a dword (compileRead size 4).
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paR, ok := op.fastR(off, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, op.proved, op.bound, sel, off, 4, cpl, seq, &batch); f != nil {
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			r32, rok := op.cachedR32(paR, seq)
			if !rok {
				r32 = op.load32Slow(phys, paR, seq)
			}
			v := r32
			esp := regs[isa.ESP] - 4
			paW, ok2 := op.fastW(esp, 4, seq, &elided, &batch)
			if !ok2 {
				var f *mmu.Fault
				if paW, f = m.slowW(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if !op.cachedW32(paW, seq, v) {
				op.store32Slow(phys, paW, seq, v)
			}
			regs[isa.ESP] = esp

		case opPopR:
			esp := regs[isa.ESP]
			pa, ok := op.fastR(esp, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowR(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			regs[isa.ESP] = esp + 4
			r32, rok := op.cachedR32(pa, seq)
			if !rok {
				r32 = op.load32Slow(phys, pa, seq)
			}
			regs[op.dst] = r32

		case opPopM:
			esp := regs[isa.ESP]
			paR, ok := op.fastR(esp, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if paR, f = m.slowR(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			r32, rok := op.cachedR32(paR, seq)
			if !rok {
				r32 = op.load32Slow(phys, paR, seq)
			}
			v := r32
			regs[isa.ESP] = esp + 4
			sel := ds
			if op.useSS {
				sel = ss
			}
			off := op.disp
			if op.base != noReg {
				off += regs[op.base]
			}
			if op.ix != noReg {
				off += regs[op.ix] * uint32(op.scale)
			}
			paW, ok2 := op.fastW(off, 4, seq, &elided, &batch)
			if !ok2 {
				var f *mmu.Fault
				if paW, f = m.slowW(op, op.proved, op.bound, sel, off, 4, cpl, seq, &batch); f != nil {
					// x86 restores ESP if the store faults (translate.go).
					regs[isa.ESP] -= 4
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if !op.cachedW32(paW, seq, v) {
				op.store32Slow(phys, paW, seq, v)
			}

		case opJmp:
			n++
			i = int(op.next)
			if ticking && i < nextCheck {
				nextCheck = i // horizon only bounds linear runs
			}
			continue

		case opJmpExit:
			n++
			ceip = op.exitEIP
			m.trStats.SideExits++
			break loop

		case opJcc:
			taken := traceCond(op.sub, zf, sf, cf, of)
			if taken == op.follow {
				n++
				i = int(op.next)
				if ticking && i < nextCheck {
					nextCheck = i
				}
				continue
			}
			accum += op.alt - op.cost // charged op.cost above; actual is alt
			n++
			ceip = op.exitEIP
			m.trStats.SideExits++
			break loop

		case opJccExit:
			taken := traceCond(op.sub, zf, sf, cf, of)
			if taken {
				ceip = op.imm
			} else {
				accum += op.alt - op.cost
				ceip = op.exitEIP
			}
			n++
			m.trStats.SideExits++
			break loop

		case opCall, opCallExit:
			esp := regs[isa.ESP] - 4
			pa, ok := op.fastW(esp, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowW(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			if !op.cachedW32(pa, seq, op.eip+isa.InstrSlot) {
				op.store32Slow(phys, pa, seq, op.eip+isa.InstrSlot)
			}
			regs[isa.ESP] = esp
			n++
			if op.code == opCallExit {
				ceip = op.exitEIP
				m.trStats.SideExits++
				break loop
			}
			i = int(op.next)
			if ticking && i < nextCheck {
				nextCheck = i
			}
			continue

		case opRet:
			esp := regs[isa.ESP]
			pa, ok := op.fastR(esp, 4, seq, &elided, &batch)
			if !ok {
				var f *mmu.Fault
				if pa, f = m.slowR(op, false, 0, ss, esp, 4, cpl, seq, &batch); f != nil {
					f.Kind = mmu.SS
					stop = &RunResult{Reason: StopFault, Fault: f, Err: f}
					ceip = op.eip
					m.trStats.DeoptFault++
					break loop
				}
			}
			regs[isa.ESP] = esp + 4 + op.imm
			n++
			r32, rok := op.cachedR32(pa, seq)
			if !rok {
				r32 = op.load32Slow(phys, pa, seq)
			}
			ceip = r32
			m.trStats.SideExits++
			break loop
		}

	retired:
		n++
		ni := int(op.next)
		if ticking && ni != i+1 && ni < nextCheck {
			// Non-linear advance: the horizon proof only bounds linear
			// runs, so force a precise check at the transfer target.
			nextCheck = ni
		}
		i = ni
	}

	// Commit: architectural state, batched charges, batched accounting.
	m.Regs = regs
	m.Flags = Flags{ZF: zf, SF: sf, CF: cf, OF: of}
	m.EIP = ceip
	m.Clock.Add(accum)
	m.instret += n
	m.MMU.TLB().AddHits(batch + g)
	m.MMU.AddElided(elided)
	m.bcFastFetches += g

	if pageOp != nil {
		// Deopt-page: the frame under pageOp moved. State is committed
		// at the op; now execute what the live translation holds —
		// exactly runChain's substitution arm — and let Run re-dispatch.
		ins := m.code[livePA]
		if ins == nil {
			f := &mmu.Fault{Kind: mmu.UD, Sel: cs, Off: pageOp.eip, Linear: pageOp.lin,
				Access: mmu.Execute, CPL: cpl, Reason: "no instruction at address"}
			return &RunResult{Reason: StopFault, Fault: f, Err: f}, n
		}
		if f := m.execute(ins); f != nil {
			return &RunResult{Reason: StopFault, Fault: f, Err: f}, n
		}
		m.instret++
		n++
		if m.haltFlag {
			return &RunResult{Reason: StopHalt}, n
		}
		return nil, n
	}
	return stop, n
}
