package cpu

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mmu"
)

// stepRun drives the machine with the uncached single-step path under
// the same stop conditions as Run, for equivalence comparisons.
func stepRun(m *Machine, lim RunLimits) RunResult {
	var res RunResult
	for {
		if lim.MaxInstructions > 0 && res.Instructions >= lim.MaxInstructions {
			res.Reason = StopBudget
			return res
		}
		stop, done := m.Step()
		if stop != nil {
			stop.Instructions += res.Instructions
			return *stop
		}
		if done {
			res.Instructions++
		}
	}
}

const equivalenceSrc = `
	entry:
		mov eax, 0
		mov ecx, 25
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		call bump
		dec ecx
		jne loop
	stop:
		nop
	bump:
		inc edx
		ret
	.data
	scratch: .long 0
`

// TestRunMatchesStep pins the decoded-block cache to the uncached
// interpreter: the same program on two identical machines — one driven
// by Run, one by single Steps — must retire the same instruction
// count, charge the same simulated cycles, produce the same TLB
// hit/miss/flush statistics, fire the same number of timer ticks and
// end in the same architectural state.
func TestRunMatchesStep(t *testing.T) {
	exec := func(runner func(*Machine, RunLimits) RunResult) (*Machine, RunResult, int) {
		h := newHarness(t)
		syms := h.install(0x0001_0000, equivalenceSrc)
		h.startUser(syms["entry"])
		h.m.SetBreak(syms["stop"])
		ticks := 0
		h.m.TickCycles = 75
		h.m.OnTick = func(*Machine) error { ticks++; return nil }
		res := runner(h.m, RunLimits{MaxInstructions: 1000})
		return h.m, res, ticks
	}
	mRun, resRun, ticksRun := exec((*Machine).Run)
	mStep, resStep, ticksStep := exec(stepRun)

	if resRun.Reason != StopBreak || resStep.Reason != StopBreak {
		t.Fatalf("reasons = %v / %v, want breakpoint", resRun.Reason, resStep.Reason)
	}
	if resRun.Instructions != resStep.Instructions {
		t.Errorf("instructions: Run %d, Step %d", resRun.Instructions, resStep.Instructions)
	}
	if mRun.Instructions() != mStep.Instructions() {
		t.Errorf("instret: Run %d, Step %d", mRun.Instructions(), mStep.Instructions())
	}
	if a, b := mRun.Clock.Cycles(), mStep.Clock.Cycles(); a != b {
		t.Errorf("cycles: Run %v, Step %v", a, b)
	}
	rh, rm, rf := mRun.MMU.TLB().Stats()
	sh, sm, sf := mStep.MMU.TLB().Stats()
	if rh != sh || rm != sm || rf != sf {
		t.Errorf("TLB stats: Run %d/%d/%d, Step %d/%d/%d", rh, rm, rf, sh, sm, sf)
	}
	if ticksRun != ticksStep {
		t.Errorf("ticks: Run %d, Step %d", ticksRun, ticksStep)
	}
	if mRun.Regs != mStep.Regs || mRun.EIP != mStep.EIP || mRun.Flags != mStep.Flags {
		t.Errorf("state diverged: Run regs=%v eip=%#x, Step regs=%v eip=%#x",
			mRun.Regs, mRun.EIP, mStep.Regs, mStep.EIP)
	}
}

// runToStop executes from entry to the armed stop break and returns
// EAX.
func runToStop(t *testing.T, h *harness, entry uint32) uint32 {
	t.Helper()
	h.m.EIP = entry
	res := h.m.Run(RunLimits{MaxInstructions: 1000})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	return h.m.Reg(isa.EAX)
}

// TestBlockCacheSeesCodeMutation: rewriting an instruction that sits
// inside an already-executed (hence cached) block must be visible to
// the next run.
func TestBlockCacheSeesCodeMutation(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
			mov ebx, 2
		stop:
			nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if got := runToStop(t, h, syms["entry"]); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}
	pa, f := h.m.MMU.Translate(gsel(selXCode, 3), syms["entry"], 4, mmu.Execute, 3)
	if f != nil {
		t.Fatal(f)
	}
	h.m.InstallCode(pa, []isa.Instr{{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.I(42), Size: 4}})
	if got := runToStop(t, h, syms["entry"]); got != 42 {
		t.Errorf("eax after code mutation = %d, want 42", got)
	}
	h.m.RemoveCode(pa, 1)
	h.m.EIP = syms["entry"]
	if res := h.m.Run(RunLimits{MaxInstructions: 10}); res.Reason != StopFault || res.Fault.Kind != mmu.UD {
		t.Errorf("after RemoveCode: %+v, want #UD", res)
	}
}

// TestBlockCacheSeesNewBreakpoint: arming a breakpoint in the middle
// of a cached block must stop the very next run there.
func TestBlockCacheSeesNewBreakpoint(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
		mid:
			mov eax, 2
		stop:
			nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	runToStop(t, h, syms["entry"])

	h.m.SetBreak(syms["mid"])
	h.m.EIP = syms["entry"]
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopBreak || h.m.EIP != syms["mid"] {
		t.Fatalf("stop = %+v at %#x, want breakpoint at %#x", res, h.m.EIP, syms["mid"])
	}
	if got := h.m.Reg(isa.EAX); got != 1 {
		t.Errorf("eax = %d, want 1 (mid not executed)", got)
	}

	h.m.ClearBreak(syms["mid"])
	if got := runToStop(t, h, syms["entry"]); got != 2 {
		t.Errorf("eax after ClearBreak = %d, want 2", got)
	}
}

// TestBlockCacheSeesNewService: installing a trusted endpoint at an
// address inside a cached block must dispatch it on the next run.
func TestBlockCacheSeesNewService(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
		mid:
			mov eax, 2
		stop:
			nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	runToStop(t, h, syms["entry"])

	sentinel := errors.New("service ran")
	h.m.RegisterService(syms["mid"], &Service{
		Name: "probe", Kind: ServiceCallGate,
		Handler: func(*Machine) error { return sentinel },
	})
	h.m.EIP = syms["entry"]
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopError || !errors.Is(res.Err, sentinel) {
		t.Fatalf("stop = %+v err=%v, want service sentinel", res, res.Err)
	}

	h.m.UnregisterService(syms["mid"])
	if got := runToStop(t, h, syms["entry"]); got != 2 {
		t.Errorf("eax after UnregisterService = %d, want 2", got)
	}
}

// TestBlockCacheSeesInvalidatePage: remapping an executed code page is
// honoured lazily (stale TLB, as on hardware) and becomes visible to
// the next run after InvalidatePage.
func TestBlockCacheSeesInvalidatePage(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
		stop:
			nop
	`)
	// A second frame holding "mov eax, 99; nop" for the same linear
	// page, installed up front so only the remap is under test.
	alt, err := h.alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	h.m.InstallCode(alt, []isa.Instr{
		{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.I(99), Size: 4},
		{Op: isa.NOP},
	})
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if got := runToStop(t, h, syms["entry"]); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}

	// Remap without invlpg: the stale translation keeps executing the
	// old frame, exactly as a hardware TLB would.
	if err := h.as.Map(0x0001_0000, alt, false, true); err != nil {
		t.Fatal(err)
	}
	if got := runToStop(t, h, syms["entry"]); got != 1 {
		t.Errorf("eax after remap without invlpg = %d, want stale 1", got)
	}

	h.m.MMU.InvalidatePage(0x0001_0000)
	if got := runToStop(t, h, syms["entry"]); got != 99 {
		t.Errorf("eax after InvalidatePage = %d, want 99", got)
	}
}

// TestBlockCacheSeesLoadCR3: switching address spaces must be visible
// to the next run even when the linear addresses coincide.
func TestBlockCacheSeesLoadCR3(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
		stop:
			nop
	`)
	as2, err := mmu.NewAddressSpace(h.m.Phys, h.alloc)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := h.alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	h.m.InstallCode(alt, []isa.Instr{
		{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.I(7), Size: 4},
		{Op: isa.NOP},
	})
	if err := as2.Map(0x0001_0000, alt, false, true); err != nil {
		t.Fatal(err)
	}
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if got := runToStop(t, h, syms["entry"]); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}

	h.m.MMU.LoadCR3(as2)
	if got := runToStop(t, h, syms["entry"]); got != 7 {
		t.Errorf("eax after LoadCR3 = %d, want 7", got)
	}

	h.m.MMU.LoadCR3(h.as)
	if got := runToStop(t, h, syms["entry"]); got != 1 {
		t.Errorf("eax after switching back = %d, want 1", got)
	}
}

// TestBlockCacheSeesDescriptorMutation: rewriting the code-segment
// descriptor (here: shrinking its limit below EIP) must invalidate
// cached decode state.
func TestBlockCacheSeesDescriptorMutation(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
		stop:
			nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	runToStop(t, h, syms["entry"])

	h.m.MMU.GDT.Set(selXCode, mmu.Descriptor{
		Kind: mmu.SegCode, Base: 0, Limit: 0x100, DPL: 3, Present: true, Readable: true,
	})
	h.m.EIP = syms["entry"]
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop after descriptor shrink = %+v, want #GP", res)
	}
}

// TestFirstTickDeferred is the regression test for the tick scheduler:
// the first OnTick must not fire before TickCycles simulated cycles
// have elapsed (it used to fire on the very first instruction, because
// the first deadline was left at cycle zero).
func TestFirstTickDeferred(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
		spin:
			jmp spin
	`)
	h.startUser(syms["entry"])
	ticks := 0
	var firstTickAt float64
	h.m.TickCycles = 50
	h.m.OnTick = func(m *Machine) error {
		if ticks == 0 {
			firstTickAt = m.Clock.Cycles()
		}
		ticks++
		return errors.New("stop")
	}
	start := h.m.Clock.Cycles()

	// One instruction retires without a tick.
	if res := h.m.Run(RunLimits{MaxInstructions: 1}); res.Reason != StopBudget {
		t.Fatalf("stop = %+v", res)
	}
	if ticks != 0 {
		t.Fatalf("tick fired after the first instruction (%d ticks)", ticks)
	}

	// Spin until the hook fires; a full period must have elapsed.
	if res := h.m.Run(RunLimits{MaxInstructions: 100000}); res.Reason != StopError {
		t.Fatalf("stop = %+v", res)
	}
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1", ticks)
	}
	if elapsed := firstTickAt - start; elapsed < h.m.TickCycles {
		t.Errorf("first tick after %.0f cycles, want >= %.0f", elapsed, h.m.TickCycles)
	}
}

// BenchmarkRunHotLoop measures the interpreter's sustained
// instructions-per-second on a tight compute loop — the path the
// decoded-block cache accelerates.
func BenchmarkRunHotLoop(b *testing.B) {
	h := newHarness(b)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 0
			mov ecx, 1000
		loop:
			add eax, ecx
			mov [scratch], eax
			mov ebx, [scratch]
			dec ecx
			jne loop
		stop:
			nop
		.data
		scratch: .long 0
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	b.ResetTimer()
	var instr uint64
	chains0, fast0 := h.m.ChainStats()
	for i := 0; i < b.N; i++ {
		h.m.EIP = syms["entry"]
		res := h.m.Run(RunLimits{})
		if res.Reason != StopBreak {
			b.Fatalf("stop = %+v", res)
		}
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
	chains, fast := h.m.ChainStats()
	b.ReportMetric(float64(chains-chains0)/float64(b.N), "chain-hits/op")
	b.ReportMetric(float64(fast-fast0)/float64(instr)*100, "fastpath-pct")
}
