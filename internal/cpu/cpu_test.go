package cpu

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// Selector layout used throughout the CPU tests, mirroring Palladium's
// user-level arrangement (Figure 5): extension segments at SPL 3, the
// extensible application at SPL 2, the kernel at SPL 0.
const (
	selKCode = 1 // DPL 0, base 3G
	selKData = 2
	selXCode = 3 // DPL 3, base 0 (extension)
	selXData = 4
	selACode = 5 // DPL 2, base 0 (application)
	selAData = 6
	selGate  = 7 // call gate DPL 3 -> app code
)

type harness struct {
	t     testing.TB
	m     *Machine
	as    *mmu.AddressSpace
	alloc *mem.FrameAllocator
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	phys := mem.NewPhysical()
	clock := cycles.NewClock(200)
	model := cycles.Measured()
	mu := mmu.New(phys, 32, clock, model)
	const uLim = 0xBFFF_FFFF
	mu.GDT.Set(selKCode, mmu.Descriptor{Kind: mmu.SegCode, Base: 0xC000_0000, Limit: 0x3FFF_FFFF, DPL: 0, Present: true, Readable: true})
	mu.GDT.Set(selKData, mmu.Descriptor{Kind: mmu.SegData, Base: 0xC000_0000, Limit: 0x3FFF_FFFF, DPL: 0, Present: true, Writable: true})
	mu.GDT.Set(selXCode, mmu.Descriptor{Kind: mmu.SegCode, Base: 0, Limit: uLim, DPL: 3, Present: true, Readable: true})
	mu.GDT.Set(selXData, mmu.Descriptor{Kind: mmu.SegData, Base: 0, Limit: uLim, DPL: 3, Present: true, Writable: true})
	mu.GDT.Set(selACode, mmu.Descriptor{Kind: mmu.SegCode, Base: 0, Limit: uLim, DPL: 2, Present: true, Readable: true})
	mu.GDT.Set(selAData, mmu.Descriptor{Kind: mmu.SegData, Base: 0, Limit: uLim, DPL: 2, Present: true, Writable: true})

	alloc := mem.NewFrameAllocator(0x0010_0000, 1024*mem.PageSize)
	as, err := mmu.NewAddressSpace(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	mu.LoadCR3(as)
	m := New(phys, mu, clock, model)
	return &harness{t: t, m: m, as: as, alloc: alloc}
}

func gsel(idx, rpl int) mmu.Selector { return mmu.MakeSelector(idx, false, rpl) }

// mapAt maps a fresh frame at the given linear page and returns its
// physical base.
func (h *harness) mapAt(linear uint32, writable, user bool) uint32 {
	h.t.Helper()
	f, err := h.alloc.Alloc()
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.as.Map(linear, f, writable, user); err != nil {
		h.t.Fatal(err)
	}
	return f
}

// install assembles src and loads text at linear address textBase and
// data right after it, resolving all symbols to linear addresses
// (base-0 segments). It returns the symbol table.
func (h *harness) install(textBase uint32, src string) map[string]uint32 {
	h.t.Helper()
	obj, err := isa.Assemble("test", src)
	if err != nil {
		h.t.Fatal(err)
	}
	obj = obj.Clone()
	dataBase := textBase + ((obj.TextBytes() + 0xFFF) &^ 0xFFF)
	syms := make(map[string]uint32)
	addrOf := func(name string) uint32 {
		s := obj.Symbol(name)
		if s == nil || s.Section == isa.SecUndef {
			h.t.Fatalf("undefined symbol %q", name)
		}
		switch s.Section {
		case isa.SecText:
			return textBase + s.Off
		default:
			return dataBase + s.Off
		}
	}
	for _, r := range obj.Relocs {
		v := int32(addrOf(r.Sym)) + r.Addend
		switch r.Slot {
		case isa.RelDstDisp:
			obj.Text[r.Index].Dst.Disp += v
		case isa.RelSrcDisp:
			obj.Text[r.Index].Src.Disp += v
		case isa.RelDstImm:
			obj.Text[r.Index].Dst.Imm += v
		case isa.RelSrcImm:
			obj.Text[r.Index].Src.Imm += v
		case isa.RelData:
			old := uint32(obj.Data[r.Index]) | uint32(obj.Data[r.Index+1])<<8 |
				uint32(obj.Data[r.Index+2])<<16 | uint32(obj.Data[r.Index+3])<<24
			nv := old + uint32(v)
			obj.Data[r.Index] = byte(nv)
			obj.Data[r.Index+1] = byte(nv >> 8)
			obj.Data[r.Index+2] = byte(nv >> 16)
			obj.Data[r.Index+3] = byte(nv >> 24)
		}
	}
	for name := range obj.Symbols {
		if obj.Symbols[name].Section != isa.SecUndef {
			syms[name] = addrOf(name)
		}
	}
	// Map code pages (PPL 1 so both CPL 2 and 3 can fetch) and copy in.
	for off := uint32(0); off < obj.TextBytes(); off += mem.PageSize {
		frame := h.mapAt(textBase+off, false, true)
		_ = frame
	}
	pa, f := h.m.MMU.Translate(gsel(selXCode, 3), textBase, 4, mmu.Execute, 3)
	if f != nil {
		h.t.Fatalf("code address not executable: %v", f)
	}
	h.m.InstallCode(pa, obj.Text)
	// Map data pages (PPL 1, writable) and copy.
	dataLen := uint32(len(obj.Data)) + obj.BSSSize
	for off := uint32(0); off < dataLen || off == 0; off += mem.PageSize {
		h.mapAt(dataBase+off, true, true)
		if dataLen == 0 {
			break
		}
	}
	for i, b := range obj.Data {
		pa, f := h.m.MMU.Translate(gsel(selXData, 3), dataBase+uint32(i), 1, mmu.Write, 3)
		if f != nil {
			h.t.Fatalf("data write: %v", f)
		}
		h.m.Phys.Write8(pa, b)
	}
	return syms
}

// startUser prepares CPL 3 execution at entry with a fresh stack.
func (h *harness) startUser(entry uint32) {
	h.mapAt(0x0008_0000, true, true)
	h.m.CS = gsel(selXCode, 3)
	h.m.DS = gsel(selXData, 3)
	h.m.SS = gsel(selXData, 3)
	h.m.EIP = entry
	h.m.Regs[isa.ESP] = 0x0008_1000
}

func TestALUAndLoop(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		; sum 1..10 into eax
		entry:
			mov eax, 0
			mov ecx, 10
		loop:
			add eax, ecx
			dec ecx
			jne loop
			hlt
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 1000})
	// HLT at CPL 3 faults with #GP -- use that as the stop signal.
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop = %+v", res)
	}
	if got := h.m.Reg(isa.EAX); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryOpsAndFlags(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, [val]
			add eax, 2
			mov [val], eax
			cmp eax, 9
			je good
			mov ebx, 0
			jmp done
		good:
			mov ebx, 1
		done:
			nop
		.data
		val: .word 7
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["done"] + isa.InstrSlot)
	res := h.m.Run(RunLimits{MaxInstructions: 100})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if h.m.Reg(isa.EBX) != 1 {
		t.Errorf("ebx = %d, want 1 (add+cmp flags)", h.m.Reg(isa.EBX))
	}
}

func TestStackAndNearCall(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			push 41
			call inc
			mov ebx, eax
		stop:
			nop
		inc:
			mov eax, [esp+4]
			inc eax
			ret
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 100})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if h.m.Reg(isa.EBX) != 42 {
		t.Errorf("result = %d, want 42", h.m.Reg(isa.EBX))
	}
	// push 41 remains on the stack (caller cleanup not done).
	if esp := h.m.Reg(isa.ESP); esp != 0x0008_1000-4 {
		t.Errorf("esp = %#x", esp)
	}
}

func TestByteOps(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			movb eax, [msg+1]
			movb [msg], eax
		stop: nop
		.data
		msg: .byte 0x11, 0xAB
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if res := h.m.Run(RunLimits{MaxInstructions: 10}); res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	pa, _ := h.m.MMU.Translate(gsel(selXData, 3), syms["msg"], 1, mmu.Read, 3)
	if got := h.m.Phys.Read8(pa); got != 0xAB {
		t.Errorf("msg[0] = %#x, want 0xAB", got)
	}
}

func TestShiftAndMul(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 3
			shl eax, 4      ; 48
			mov ebx, 5
			imul ebx, eax   ; 240
			shr eax, 2      ; 12
			sar eax, 1      ; 6
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if res := h.m.Run(RunLimits{MaxInstructions: 10}); res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if h.m.Reg(isa.EBX) != 240 || h.m.Reg(isa.EAX) != 6 {
		t.Errorf("ebx=%d eax=%d", h.m.Reg(isa.EBX), h.m.Reg(isa.EAX))
	}
}

func TestUnsignedAndSignedBranches(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, -1       ; 0xFFFFFFFF
			cmp eax, 1
			jb below          ; unsigned: 0xFFFFFFFF > 1, not taken
			mov ebx, 1
			cmp eax, 1
			jl less           ; signed: -1 < 1, taken
			mov ecx, 0
			jmp stop
		below:
			mov ebx, 0
			jmp stop
		less:
			mov ecx, 1
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	if res := h.m.Run(RunLimits{MaxInstructions: 20}); res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if h.m.Reg(isa.EBX) != 1 || h.m.Reg(isa.ECX) != 1 {
		t.Errorf("ebx=%d ecx=%d, want 1/1", h.m.Reg(isa.EBX), h.m.Reg(isa.ECX))
	}
}

func TestFaultOnSupervisorPageAccess(t *testing.T) {
	h := newHarness(t)
	// A PPL 0 page at 0x6000 that CPL 3 code tries to read: the exact
	// violation Palladium detects for misbehaving user extensions.
	h.mapAt(0x0000_6000, true, false)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, [0x6000]
			nop
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.PF {
		t.Fatalf("stop = %+v, want #PF", res)
	}
	if res.Fault.Linear != 0x6000 {
		t.Errorf("fault linear = %#x", res.Fault.Linear)
	}
}

func TestFetchBeyondSegmentLimitFaults(t *testing.T) {
	h := newHarness(t)
	// Shrink the extension code segment to 64 KB and jump past it.
	d := *h.m.MMU.GDT.Get(selXCode)
	d.Limit = 0xFFFF
	h.m.MMU.GDT.Set(selXCode, d)
	syms := h.install(0x0000_1000, `
		entry:
			jmp 0x20000
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop = %+v, want #GP (limit)", res)
	}
}

func TestUndefinedInstructionFaults(t *testing.T) {
	h := newHarness(t)
	h.mapAt(0x0001_0000, false, true)
	h.startUser(0x0001_0000)
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.UD {
		t.Fatalf("stop = %+v, want #UD", res)
	}
}

// setupRings installs TSS stacks and gates for privilege-transition
// tests: app code at CPL 2 (selACode), extension at CPL 3 (selXCode),
// call gate selGate (DPL 3) into app code.
func (h *harness) setupRings(appEntry uint32) {
	h.mapAt(0x0009_0000, true, false) // app ring-2 stack page (PPL 0)
	h.m.TSS.SS[2] = gsel(selAData, 2)
	h.m.TSS.ESP[2] = 0x0009_1000
	h.m.MMU.GDT.Set(selGate, mmu.Descriptor{
		Kind: mmu.SegCallGate, DPL: 3, Present: true,
		GateSel: gsel(selACode, 2), GateOff: appEntry,
	})
}

func TestInterPrivilegeLretAndLcall(t *testing.T) {
	h := newHarness(t)
	// App code (CPL 2) far-returns into extension code (CPL 3); the
	// extension lcalls back through the gate. This is the skeleton of
	// Palladium's Prepare/Transfer/AppCallGate cycle.
	syms := h.install(0x0001_0000, `
		; runs at CPL 2 (app)
		appentry:
			push 0x0000001F   ; extension SS: selXData idx4 rpl3 -> (4<<3)|3 = 0x23
			push 0x00070FF0   ; extension ESP
			push 0x0000001B   ; extension CS: selXCode idx3 rpl3 -> (3<<3)|3
			push extcode
			lret              ; "call" downhill into the extension
		appback:
			mov ebx, eax      ; result from extension
			nop
		; runs at CPL 3 (extension)
		extcode:
			mov eax, 1234
			lcall 0x3B        ; gate: idx7 rpl3 -> (7<<3)|3
	`)
	// Fix the pushed selectors to the computed ones.
	h.setupRings(syms["appback"])
	h.mapAt(0x0007_0000, true, true) // extension stack page (PPL 1)

	h.m.CS = gsel(selACode, 2)
	h.m.DS = gsel(selXData, 3) // survives the CPL 3 transition
	h.m.SS = gsel(selAData, 2)
	h.m.EIP = syms["appentry"]
	h.m.Regs[isa.ESP] = 0x0009_1000
	// The gate returns into appback, but the TSS ESP (0x91000) is not
	// where the app stack was -- exactly the x86 behaviour Palladium's
	// AppCallGate compensates for. Here the app has no frame to
	// restore, so execution continues fine.
	h.m.SetBreak(syms["appback"] + isa.InstrSlot)
	res := h.m.Run(RunLimits{MaxInstructions: 100})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if h.m.Reg(isa.EBX) != 1234 {
		t.Errorf("result = %d, want 1234", h.m.Reg(isa.EBX))
	}
	if h.m.CPL() != 2 {
		t.Errorf("final CPL = %d, want 2", h.m.CPL())
	}
}

func TestLretToMorePrivilegedFaults(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			push 0x00000010   ; selKData rpl0... irrelevant, lret pops CS second
			push 0
			push 0x00000008   ; selKCode rpl0: try to "return" to ring 0
			push 0
			lret
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop = %+v, want #GP", res)
	}
	if !strings.Contains(res.Fault.Reason, "more privileged") {
		t.Errorf("reason = %q", res.Fault.Reason)
	}
}

func TestCallGateDPLEnforced(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			lcall 0x3B
	`)
	// Gate with DPL 1: CPL 3 may not call through it.
	h.m.MMU.GDT.Set(selGate, mmu.Descriptor{
		Kind: mmu.SegCallGate, DPL: 1, Present: true,
		GateSel: gsel(selACode, 2), GateOff: 0,
	})
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop = %+v, want #GP", res)
	}
	if !strings.Contains(res.Fault.Reason, "gate DPL") {
		t.Errorf("reason = %q", res.Fault.Reason)
	}
}

func TestLcallToNonGateFaults(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			lcall 0x1B   ; selXCode: a code segment, not a gate
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || !strings.Contains(res.Fault.Reason, "not a call gate") {
		t.Fatalf("stop = %+v", res)
	}
}

func TestTSSStackSwitchOnGateCall(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		appentry:
			nop
		extcode:
			lcall 0x3B
	`)
	h.setupRings(syms["appentry"])
	h.mapAt(0x0007_0000, true, true)
	h.startUser(syms["extcode"])
	h.m.Regs[isa.ESP] = 0x0007_0FF0
	h.m.SetBreak(syms["appentry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	// After the inter-privilege call: SS:ESP from TSS minus the
	// 4-word frame (old SS, old ESP, old CS, return EIP).
	if h.m.SS != gsel(selAData, 2) {
		t.Errorf("SS = %v", h.m.SS)
	}
	if esp := h.m.Reg(isa.ESP); esp != 0x0009_1000-16 {
		t.Errorf("esp = %#x, want %#x", esp, 0x0009_1000-16)
	}
	// Verify the frame contents.
	words := make([]uint32, 4)
	for i := range words {
		v, f := h.m.Peek(uint32(i) * 4)
		if f != nil {
			t.Fatal(f)
		}
		words[i] = v
	}
	if words[0] != syms["extcode"]+isa.InstrSlot {
		t.Errorf("return EIP = %#x", words[0])
	}
	if mmu.Selector(words[1]) != gsel(selXCode, 3) {
		t.Errorf("saved CS = %#x", words[1])
	}
	if words[2] != 0x0007_0FF0 {
		t.Errorf("saved ESP = %#x", words[2])
	}
	if mmu.Selector(words[3]) != gsel(selXData, 3) {
		t.Errorf("saved SS = %#x", words[3])
	}
}

func TestIntGateToRing0Service(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 20     ; syscall number
			int 0x80
			mov ebx, eax    ; result
		stop: nop
	`)
	// IDT gate for 0x80 targeting a kernel-space service address.
	h.m.IDT[0x80] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 3, Present: true,
		GateSel: gsel(selKCode, 0), GateOff: 0x0000_0100,
	}
	h.m.TSS.SS[0] = gsel(selKData, 0)
	h.m.TSS.ESP[0] = 0x0000_3000 // kernel stack offset (linear 0xC0003000)
	h.mapAt(0xC000_2000, true, false)
	var gotNr uint32
	h.m.RegisterService(0xC000_0100, &Service{
		Name: "getpid", Kind: ServiceInt,
		Handler: func(m *Machine) error {
			gotNr = m.Reg(isa.EAX)
			m.SetReg(isa.EAX, 777)
			return nil
		},
	})
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 100})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if gotNr != 20 {
		t.Errorf("syscall nr = %d", gotNr)
	}
	if h.m.Reg(isa.EBX) != 777 {
		t.Errorf("result = %d, want 777", h.m.Reg(isa.EBX))
	}
	if h.m.CPL() != 3 {
		t.Errorf("CPL after iret = %d, want 3", h.m.CPL())
	}
}

func TestIntGateDPLBlocksUser(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry: int 0x81
	`)
	h.m.IDT[0x81] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 0, Present: true,
		GateSel: gsel(selKCode, 0), GateOff: 0x200,
	}
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.GP {
		t.Fatalf("stop = %+v, want #GP (gate DPL)", res)
	}
}

func TestServiceErrorStopsRun(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry: int 0x80
	`)
	h.m.IDT[0x80] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 3, Present: true,
		GateSel: gsel(selKCode, 0), GateOff: 0x100,
	}
	h.m.TSS.SS[0] = gsel(selKData, 0)
	h.m.TSS.ESP[0] = 0x3000
	h.mapAt(0xC000_2000, true, false)
	wantErr := errors.New("kill")
	h.m.RegisterService(0xC000_0100, &Service{
		Name: "bad", Kind: ServiceInt,
		Handler: func(m *Machine) error { return wantErr },
	})
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopError || !errors.Is(res.Err, wantErr) {
		t.Fatalf("stop = %+v", res)
	}
}

func TestTickHookFires(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
		spin:
			jmp spin
	`)
	h.startUser(syms["entry"])
	ticks := 0
	h.m.TickCycles = 50
	h.m.OnTick = func(m *Machine) error {
		ticks++
		if ticks >= 3 {
			return errors.New("time limit exceeded")
		}
		return nil
	}
	res := h.m.Run(RunLimits{MaxInstructions: 100000})
	if res.Reason != StopError {
		t.Fatalf("stop = %+v", res)
	}
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
}

func TestRunBudget(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
		spin: jmp spin
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 7})
	if res.Reason != StopBudget || res.Instructions != 7 {
		t.Fatalf("stop = %+v", res)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
			mov ebx, 2
			add eax, ebx
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	h.m.MMU.LoadCR3(h.as) // flush translations warmed during install
	start := h.m.Clock.Cycles()
	h.m.Run(RunLimits{MaxInstructions: 10})
	got := h.m.Clock.Cycles() - start
	// 2x MovImm(1) + ALU(1) = 3 plus one TLB miss for the code page.
	want := 3 + 1*h.m.Model.Cost(cycles.TLBMiss)
	if got != want {
		t.Errorf("cycles = %v, want %v", got, want)
	}
}

func TestHltAtRing0(t *testing.T) {
	h := newHarness(t)
	// Install code reachable via kernel code segment (base 3G): put
	// it at linear 0xC0010000, i.e. offset 0x10000.
	f := h.mapAt(0xC001_0000, false, false)
	obj := isa.MustAssemble("k", "hlt")
	h.m.InstallCode(f, obj.Text)
	h.m.CS = gsel(selKCode, 0)
	h.m.DS = gsel(selKData, 0)
	h.m.SS = gsel(selKData, 0)
	h.m.EIP = 0x0001_0000
	h.mapAt(0xC000_2000, true, false)
	h.m.Regs[isa.ESP] = 0x3000
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopHalt {
		t.Fatalf("stop = %+v", res)
	}
	h.m.ClearHalt()
}

func TestLoadSegRegChargesAndChecks(t *testing.T) {
	h := newHarness(t)
	var ds mmu.Selector
	before := h.m.Clock.Cycles()
	if f := h.m.LoadSegReg(&ds, gsel(selXData, 3)); f != nil {
		t.Fatalf("valid load faulted: %v", f)
	}
	if got := h.m.Clock.Cycles() - before; got != 12 {
		t.Errorf("segment register load cost = %v, want 12 (paper 5.1)", got)
	}
	if ds != gsel(selXData, 3) {
		t.Error("selector not loaded")
	}
	// CPL 3 loading a DPL 0 selector faults.
	h.m.CS = gsel(selXCode, 3)
	if f := h.m.LoadSegReg(&ds, gsel(selKData, 0)); f == nil {
		t.Error("privileged selector load at CPL 3 must fault")
	}
}

func TestXchg(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 1
			mov ebx, 2
			xchg eax, ebx
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	h.m.Run(RunLimits{MaxInstructions: 10})
	if h.m.Reg(isa.EAX) != 2 || h.m.Reg(isa.EBX) != 1 {
		t.Errorf("eax=%d ebx=%d", h.m.Reg(isa.EAX), h.m.Reg(isa.EBX))
	}
}

func TestIndirectCallAndJmp(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, fn
			call eax
			mov ebx, eax
			jmp [next]
		fn:
			mov eax, 5
			ret
		land:
			mov ecx, 9
		stop: nop
		.data
		next: .word land
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 100})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if h.m.Reg(isa.EBX) != 5 || h.m.Reg(isa.ECX) != 9 {
		t.Errorf("ebx=%d ecx=%d", h.m.Reg(isa.EBX), h.m.Reg(isa.ECX))
	}
}

func TestNegNotIncDec(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 5
			neg eax        ; -5
			not eax        ; 4
			inc eax        ; 5
			dec eax        ; 4
			dec eax        ; 3
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	h.m.Run(RunLimits{MaxInstructions: 10})
	if h.m.Reg(isa.EAX) != 3 {
		t.Errorf("eax = %d, want 3", h.m.Reg(isa.EAX))
	}
}

func TestWriteToReadOnlyCodePageFaults(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			mov [entry], eax   ; write to own (read-only) code page
	`)
	h.startUser(syms["entry"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopFault || res.Fault.Kind != mmu.PF {
		t.Fatalf("stop = %+v, want #PF (read-only code page)", res)
	}
}
