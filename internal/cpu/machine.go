// Package cpu implements the simulated processor: an IA-32-style core
// that fetches and executes isa.Instr values through the MMU's
// segmentation and paging checks, with the 4-level privilege ring,
// TSS-based stack switching, call gates and interrupt gates of
// Section 3 of the paper.
//
// Trusted code (the kernel, extensible-application cores) runs as Go
// and interacts with the machine through registered service endpoints;
// untrusted code (extensions, control-transfer stubs, shared library
// routines) executes instruction-by-instruction on this CPU, so every
// one of its memory references is subject to the hardware checks.
package cpu

import (
	"fmt"
	"maps"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// TSS is the task state segment: per-privilege-level stack pointers for
// rings 0-2. Ring 3 needs no slot (the x86 never switches *to* a less
// privileged stack through a gate), which is exactly the asymmetry
// Palladium's Prepare/AppCallGate stubs work around (Section 4.5.1).
type TSS struct {
	SS  [3]mmu.Selector
	ESP [3]uint32
}

// ServiceKind tells the machine how a Go service endpoint was entered,
// so it can synthesize the matching return transfer.
type ServiceKind int

const (
	// ServiceCallGate endpoints are entered via lcall through a call
	// gate and exited with a far return.
	ServiceCallGate ServiceKind = iota
	// ServiceInt endpoints are entered via int N and exited with iret.
	ServiceInt
)

// Service is a trusted (Go-level) endpoint reachable from simulated
// code: a system call, a core kernel service exposed to kernel
// extensions, or an application service exposed to user extensions.
// The handler runs logically at the privilege level of the gate target
// and must charge its own costs to the machine clock.
type Service struct {
	Name    string
	Kind    ServiceKind
	Handler func(m *Machine) error
}

// StopReason says why Run returned.
type StopReason int

const (
	// StopHalt: the CPU executed HLT at CPL 0.
	StopHalt StopReason = iota
	// StopFault: an unhandled protection fault was raised.
	StopFault
	// StopBreak: execution reached a breakpoint address.
	StopBreak
	// StopBudget: the cycle budget for this run was exhausted.
	StopBudget
	// StopError: a service handler or tick hook returned an error.
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopFault:
		return "fault"
	case StopBreak:
		return "breakpoint"
	case StopBudget:
		return "budget"
	case StopError:
		return "error"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// RunResult summarizes a Run.
type RunResult struct {
	Reason StopReason
	Fault  *mmu.Fault
	Err    error
	// Instructions executed during this run.
	Instructions uint64
}

// Machine is one simulated processor plus its physical memory and MMU.
type Machine struct {
	Phys  *mem.Physical
	MMU   *mmu.MMU
	Clock *cycles.Clock
	Model *cycles.Model

	// Architectural state.
	Regs  [8]uint32
	EIP   uint32
	CS    mmu.Selector
	DS    mmu.Selector
	SS    mmu.Selector
	ES    mmu.Selector
	Flags Flags
	TSS   TSS

	// IDT maps interrupt vectors to gate descriptors.
	IDT map[uint8]mmu.Descriptor

	code map[uint32]*isa.Instr // physical address -> instruction
	// codeShared marks the code map as referenced by a snapshot or a
	// clone: the next InstallCode/RemoveCode copies it first. The map
	// is by far the largest machine table (one entry per installed
	// instruction), and it changes only on code install/remove, so
	// sharing it keeps Snapshot/Restore O(small) on the common path.
	codeShared bool
	services   map[uint32]*Service // linear address -> trusted endpoint

	// Breakpoints are linear addresses at which Run stops *before*
	// executing; used to return control to trusted callers.
	breaks map[uint32]bool

	// OnTick, if set, runs every TickCycles simulated cycles; the
	// kernel uses it for timer interrupts (extension CPU limits). A
	// non-nil error stops the run.
	OnTick     func(m *Machine) error
	TickCycles float64
	nextTick   float64

	instret  uint64 // lifetime instruction counter
	haltFlag bool

	// Decoded-block cache (see blockcache.go): direct-mapped by
	// linear start address, tagged with the code segment and the
	// MMU's translation generation.
	blocks             [blockCacheSize]*codeBlock
	liveBlocks         int
	blockMin, blockMax uint32 // linear envelope over live blocks
	blocksBloom        uint64 // aggregate page bloom over cached blocks
	bcHits             uint64
	bcBuilds           uint64
	bcInvalidations    uint64
	bcChainHits        uint64 // chained block dispatches
	bcFastFetches      uint64 // same-page fetch fast-path hits

	// Trace tier (see trace.go). TraceThreshold is the chain-follow
	// count that promotes a block into a trace entry (0 disables the
	// tier); the registry mirrors the block cache's invalidation
	// envelope and aggregate page bloom at trace granularity.
	TraceThreshold     uint32
	traces             []*trace
	traceMin, traceMax uint32
	tracesBloom        uint64
	trStats            TraceStats

	// Conservative linear envelopes over the armed breakpoints and
	// registered services, so Run's dispatch loop can reject both maps
	// with two compares instead of map probes. They grow on arm and
	// re-anchor when their map empties.
	brkLo, brkHi uint32 // inclusive envelope; valid while len(breaks) > 0
	svcLo, svcHi uint32 // inclusive envelope; valid while len(services) > 0

	// Segment probes for the stack primitives (one per access kind;
	// see mmu.SegProbe). Probe hits skip only uncharged, uncounted
	// segment checks, so Push/Pop/Peek accounting is unchanged.
	pushProbe mmu.SegProbe
	popProbe  mmu.SegProbe
}

// ClearHalt re-arms the machine after a HLT.
func (m *Machine) ClearHalt() { m.haltFlag = false }

// Flags holds the condition codes.
type Flags struct {
	ZF, SF, CF, OF bool
}

// Context is a snapshot of the architectural state, used by trusted
// code to save and restore the machine around extension invocations.
type Context struct {
	Regs           [8]uint32
	EIP            uint32
	CS, DS, SS, ES mmu.Selector
	Flags          Flags
}

// SaveContext snapshots the architectural state.
func (m *Machine) SaveContext() Context {
	return Context{Regs: m.Regs, EIP: m.EIP, CS: m.CS, DS: m.DS, SS: m.SS, ES: m.ES, Flags: m.Flags}
}

// RestoreContext reinstates a snapshot.
func (m *Machine) RestoreContext(c Context) {
	m.Regs, m.EIP, m.CS, m.DS, m.SS, m.ES, m.Flags = c.Regs, c.EIP, c.CS, c.DS, c.SS, c.ES, c.Flags
}

// pack encodes the flags for pushing in interrupt frames.
func (f Flags) pack() uint32 {
	var v uint32
	if f.CF {
		v |= 1 << 0
	}
	if f.ZF {
		v |= 1 << 6
	}
	if f.SF {
		v |= 1 << 7
	}
	if f.OF {
		v |= 1 << 11
	}
	return v
}

func unpackFlags(v uint32) Flags {
	return Flags{
		CF: v&(1<<0) != 0,
		ZF: v&(1<<6) != 0,
		SF: v&(1<<7) != 0,
		OF: v&(1<<11) != 0,
	}
}

// New creates a machine over shared physical memory, MMU and clock.
func New(phys *mem.Physical, m *mmu.MMU, clock *cycles.Clock, model *cycles.Model) *Machine {
	return &Machine{
		Phys:           phys,
		MMU:            m,
		Clock:          clock,
		Model:          model,
		IDT:            make(map[uint8]mmu.Descriptor),
		code:           make(map[uint32]*isa.Instr),
		services:       make(map[uint32]*Service),
		breaks:         make(map[uint32]bool),
		TraceThreshold: defaultTraceThreshold,
	}
}

// CPL returns the current privilege level (the RPL bits of CS).
func (m *Machine) CPL() int { return m.CS.RPL() }

// Reg returns register r.
func (m *Machine) Reg(r isa.Reg) uint32 { return m.Regs[r] }

// SetReg sets register r.
func (m *Machine) SetReg(r isa.Reg, v uint32) { m.Regs[r] = v }

// mutableCode returns the code map safe to mutate, splitting it off
// first when a snapshot or clone still references it (copy-on-write
// at map granularity, mirroring the frame store's discipline).
func (m *Machine) mutableCode() map[uint32]*isa.Instr {
	if m.codeShared {
		m.code = maps.Clone(m.code)
		m.codeShared = false
	}
	return m.code
}

// InstallCode writes a sequence of instructions at the given physical
// address (one per 4-byte slot) and stamps a recognizable marker byte
// into physical memory so data reads of code see something.
func (m *Machine) InstallCode(pa uint32, text []isa.Instr) {
	code := m.mutableCode()
	var pages uint64
	for i := range text {
		addr := pa + uint32(i)*isa.InstrSlot
		code[addr] = &text[i]
		m.Phys.Write8(addr, byte(text[i].Op))
		pages |= pageBloomBit(addr)
	}
	m.invalidateBlocksByPages(pages)
}

// RemoveCode drops n instruction slots starting at pa.
func (m *Machine) RemoveCode(pa uint32, n int) {
	code := m.mutableCode()
	var pages uint64
	for i := 0; i < n; i++ {
		addr := pa + uint32(i)*isa.InstrSlot
		delete(code, addr)
		pages |= pageBloomBit(addr)
	}
	m.invalidateBlocksByPages(pages)
}

// CodeAt returns the instruction installed at physical address pa.
func (m *Machine) CodeAt(pa uint32) *isa.Instr { return m.code[pa] }

// RegisterService installs a trusted endpoint at a linear address.
func (m *Machine) RegisterService(linear uint32, s *Service) {
	if len(m.services) == 0 {
		m.svcLo, m.svcHi = linear, linear
	} else {
		m.svcLo = min(m.svcLo, linear)
		m.svcHi = max(m.svcHi, linear)
	}
	m.services[linear] = s
	m.invalidateBlocksAt(linear)
}

// UnregisterService removes the endpoint at a linear address.
func (m *Machine) UnregisterService(linear uint32) {
	delete(m.services, linear)
	m.invalidateBlocksAt(linear)
}

// SetBreak arms a breakpoint at a linear address.
func (m *Machine) SetBreak(linear uint32) {
	if len(m.breaks) == 0 {
		m.brkLo, m.brkHi = linear, linear
	} else {
		m.brkLo = min(m.brkLo, linear)
		m.brkHi = max(m.brkHi, linear)
	}
	m.breaks[linear] = true
	m.invalidateBlocksAt(linear)
}

// ClearBreak removes a breakpoint.
func (m *Machine) ClearBreak(linear uint32) {
	delete(m.breaks, linear)
	m.invalidateBlocksAt(linear)
}

// recomputeDispatchHints rebuilds the break/service envelopes from the
// live maps; snapshot restore and clone install maps wholesale.
func (m *Machine) recomputeDispatchHints() {
	first := true
	for lin := range m.breaks {
		if first {
			m.brkLo, m.brkHi = lin, lin
			first = false
		} else {
			m.brkLo = min(m.brkLo, lin)
			m.brkHi = max(m.brkHi, lin)
		}
	}
	first = true
	for lin := range m.services {
		if first {
			m.svcLo, m.svcHi = lin, lin
			first = false
		} else {
			m.svcLo = min(m.svcLo, lin)
			m.svcHi = max(m.svcHi, lin)
		}
	}
}

// Instructions returns the lifetime retired-instruction count.
func (m *Machine) Instructions() uint64 { return m.instret }

// LoadSegReg models an explicit data-segment register load (the
// cross-segment reference overhead of Section 5.1: 12 cycles measured,
// 2-3 per the manual). It validates the selector as a data-segment
// load at the current CPL.
func (m *Machine) LoadSegReg(dst *mmu.Selector, sel mmu.Selector) *mmu.Fault {
	m.Clock.Charge(m.Model, cycles.SegRegLoad)
	if sel.IsNull() {
		*dst = sel // loading null into DS/ES is legal; use faults later
		return nil
	}
	d := m.MMU.Descriptor(sel)
	if d == nil || !d.Present {
		return &mmu.Fault{Kind: mmu.GP, Sel: sel, CPL: m.CPL(), Reason: "segment register load: bad selector"}
	}
	if d.Kind != mmu.SegData && !(d.Kind == mmu.SegCode && d.Readable) {
		return &mmu.Fault{Kind: mmu.GP, Sel: sel, CPL: m.CPL(), Reason: "segment register load: not a data segment"}
	}
	if d.Kind == mmu.SegData && max(m.CPL(), sel.RPL()) > d.DPL {
		return &mmu.Fault{Kind: mmu.GP, Sel: sel, CPL: m.CPL(), Reason: "segment register load: privilege"}
	}
	*dst = sel
	return nil
}

// linearEIP returns the linear address of CS:EIP without charging.
func (m *Machine) linearEIP() uint32 {
	d := m.MMU.Descriptor(m.CS)
	if d == nil {
		return m.EIP
	}
	return d.Base + m.EIP
}

// dataSeg selects the segment register for a memory operand: stack-
// relative addressing (EBP or ESP base) uses SS, everything else DS,
// as on the x86.
func (m *Machine) dataSeg(op *isa.Operand) mmu.Selector {
	if op.Base == isa.EBP || op.Base == isa.ESP {
		return m.SS
	}
	return m.DS
}

// effAddr computes the effective (segment-relative) address of a
// memory operand.
func (m *Machine) effAddr(op *isa.Operand) uint32 {
	addr := uint32(op.Disp)
	if op.Base != isa.NoReg {
		addr += m.Regs[op.Base]
	}
	if op.Index != isa.NoReg {
		addr += m.Regs[op.Index] * uint32(op.Scale)
	}
	return addr
}

// readMem reads size bytes (1 or 4, zero-extended) at the operand's
// effective address.
func (m *Machine) readMem(op *isa.Operand, size uint8) (uint32, *mmu.Fault) {
	sel := m.dataSeg(op)
	off := m.effAddr(op)
	pa, f := m.MMU.Translate(sel, off, uint32(size), mmu.Read, m.CPL())
	if f != nil {
		return 0, f
	}
	if size == 1 {
		return uint32(m.Phys.Read8(pa)), nil
	}
	return m.Phys.Read32(pa), nil
}

// writeMem writes size bytes at the operand's effective address.
func (m *Machine) writeMem(op *isa.Operand, size uint8, v uint32) *mmu.Fault {
	sel := m.dataSeg(op)
	off := m.effAddr(op)
	pa, f := m.MMU.Translate(sel, off, uint32(size), mmu.Write, m.CPL())
	if f != nil {
		return f
	}
	if size == 1 {
		m.Phys.Write8(pa, byte(v))
	} else {
		m.Phys.Write32(pa, v)
	}
	return nil
}

// Push pushes a 32-bit value on the current stack.
func (m *Machine) Push(v uint32) *mmu.Fault {
	esp := m.Regs[isa.ESP] - 4
	pa, f := m.MMU.TranslateProbed(&m.pushProbe, m.SS, esp, 4, mmu.Write, m.CPL())
	if f != nil {
		f.Kind = mmu.SS
		return f
	}
	m.Phys.Write32(pa, v)
	m.Regs[isa.ESP] = esp
	return nil
}

// Pop pops a 32-bit value off the current stack.
func (m *Machine) Pop() (uint32, *mmu.Fault) {
	esp := m.Regs[isa.ESP]
	pa, f := m.MMU.TranslateProbed(&m.popProbe, m.SS, esp, 4, mmu.Read, m.CPL())
	if f != nil {
		f.Kind = mmu.SS
		return 0, f
	}
	m.Regs[isa.ESP] = esp + 4
	return m.Phys.Read32(pa), nil
}

// Peek reads the stack word at ESP+off without popping.
func (m *Machine) Peek(off uint32) (uint32, *mmu.Fault) {
	pa, f := m.MMU.TranslateProbed(&m.popProbe, m.SS, m.Regs[isa.ESP]+off, 4, mmu.Read, m.CPL())
	if f != nil {
		return 0, f
	}
	return m.Phys.Read32(pa), nil
}
