package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mmu"
)

// snapMetrics gathers every simulated metric the snapshot contract
// promises to preserve: instructions, cycles, TLB statistics,
// registers, flags, memory and the final stop result (faults
// included).
type snapMetrics struct {
	instret      uint64
	cycles       float64
	hits, misses uint64
	flushes      uint64
	regs         [8]uint32
	eip          uint32
	flags        Flags
	memFP        uint64
	reason       StopReason
}

func capture(m *Machine, stop RunResult) snapMetrics {
	h, ms, fl := m.MMU.TLB().Stats()
	return snapMetrics{
		instret: m.Instructions(),
		cycles:  m.Clock.Cycles(),
		hits:    h, misses: ms, flushes: fl,
		regs: m.Regs, eip: m.EIP, flags: m.Flags,
		memFP:  m.Phys.Fingerprint(),
		reason: stop.Reason,
	}
}

const snapRetBreak = 0x7000 // sentinel return address armed as a breakpoint

// prepRun points the machine at start with a mapped stack and the
// sentinel return address on it.
func prepRun(t *testing.T, h *harness, start uint32) {
	t.Helper()
	m := h.m
	m.CS, m.DS, m.SS = gsel(selACode, 2), gsel(selAData, 2), gsel(selAData, 2)
	m.EIP = start
	m.Regs[isa.ESP] = 0xB000
	if f := m.Push(snapRetBreak); f != nil {
		t.Fatal(f)
	}
	m.SetBreak(snapRetBreak)
}

// TestSnapshotRestoreRunBitIdentical is the machine-level determinism
// anchor: running to completion after a snapshot+restore is
// bit-identical — instructions, cycles, TLB statistics, registers,
// flags, memory and the final stop — to running through uninterrupted.
func TestSnapshotRestoreRunBitIdentical(t *testing.T) {
	build := func() *harness {
		h := newHarness(t)
		h.mapAt(0x8000, false, true)
		h.mapAt(0x9000, true, true)
		h.mapAt(0xA000, true, true) // stack
		syms := h.install(0x8000, `
			.global start
			start:
				mov ecx, 200
				mov eax, 0
			loop:
				add eax, ecx
				mov [0x9000], eax
				mov edx, [0x9000]
				dec ecx
				cmp ecx, 0
				jne loop
				mov [0x9ffc], eax    ; second word dirtied near the end
				ret
		`)
		prepRun(t, h, syms["start"])
		return h
	}

	// Uninterrupted reference run.
	ref := build()
	refStop := ref.m.Run(RunLimits{})
	if refStop.Reason != StopBreak {
		t.Fatalf("reference run stopped with %v (%v)", refStop.Reason, refStop.Err)
	}
	want := capture(ref.m, refStop)

	// Interrupted run: execute ~half, snapshot, finish once, restore,
	// finish again. Both finishes must equal the reference.
	h := build()
	mid := h.m.Run(RunLimits{MaxInstructions: 300})
	if mid.Reason != StopBudget {
		t.Fatalf("mid run stopped with %v", mid.Reason)
	}
	snap := h.m.Snapshot()
	defer snap.Release()

	stop1 := h.m.Run(RunLimits{})
	if got1 := capture(h.m, stop1); got1 != want {
		t.Errorf("first finish diverged:\n got %+v\nwant %+v", got1, want)
	}

	h.m.Restore(snap)
	stop2 := h.m.Run(RunLimits{})
	if got2 := capture(h.m, stop2); got2 != want {
		t.Errorf("post-restore finish diverged:\n got %+v\nwant %+v", got2, want)
	}
}

// TestRestoreUndoesCodeAndBreakpointChanges pins the staleness
// contract: code installed and breakpoints armed after the snapshot
// vanish on restore, and decoded blocks from the abandoned timeline
// never execute (the MMU generation bump invalidates them).
func TestRestoreUndoesCodeAndBreakpointChanges(t *testing.T) {
	h := newHarness(t)
	h.mapAt(0x8000, false, true)
	h.mapAt(0xA000, true, true) // stack
	syms := h.install(0x8000, `
		.global start
		start:
			mov eax, 1
			ret
	`)
	m := h.m
	prepRun(t, h, syms["start"])

	snap := m.Snapshot()
	defer snap.Release()

	// Divergent timeline: overwrite the first instruction and run.
	pa, ok := m.MMU.PeekPage(syms["start"])
	if !ok {
		t.Fatal("start page not mapped")
	}
	m.InstallCode(pa, []isa.Instr{{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.I(42), Size: 4}})
	res := m.Run(RunLimits{})
	if res.Reason != StopBreak {
		t.Fatalf("divergent run: %v (%v), want breakpoint", res.Reason, res.Err)
	}
	if m.Reg(isa.EAX) != 42 {
		t.Fatalf("divergent run EAX = %d, want 42", m.Reg(isa.EAX))
	}

	m.Restore(snap)
	res = m.Run(RunLimits{})
	if res.Reason != StopBreak {
		t.Fatalf("restored run: %v (%v), want breakpoint", res.Reason, res.Err)
	}
	if m.Reg(isa.EAX) != 1 {
		t.Errorf("restored run EAX = %d, want 1 (original code)", m.Reg(isa.EAX))
	}
}

// TestCloneMachineRunsIndependently checks a cloned machine executes
// from the clone point with identical results while the source stays
// untouched, and that their memories diverge independently.
func TestCloneMachineRunsIndependently(t *testing.T) {
	h := newHarness(t)
	h.mapAt(0x8000, false, true)
	h.mapAt(0x9000, true, true)
	h.mapAt(0xA000, true, true) // stack
	syms := h.install(0x8000, `
		.global start
		start:
			mov eax, [0x9000]
			add eax, 5
			mov [0x9000], eax
			ret
	`)
	prepRun(t, h, syms["start"])
	m := h.m

	phys2 := m.Phys.Clone()
	clock2 := m.Clock.Clone()
	mu2 := m.MMU.Clone(phys2, clock2)
	mu2.AdoptSpace(mmu.AdoptAddressSpace(phys2, h.alloc.Clone(), h.as.CR3()))
	m2 := m.Clone(phys2, mu2, clock2)

	if res := m2.Run(RunLimits{}); res.Reason != StopBreak {
		t.Fatalf("clone run: %v (%v)", res.Reason, res.Err)
	}
	if res := m.Run(RunLimits{}); res.Reason != StopBreak {
		t.Fatalf("source run: %v (%v)", res.Reason, res.Err)
	}
	if m.Reg(isa.EAX) != m2.Reg(isa.EAX) {
		t.Errorf("EAX diverged: source %d clone %d", m.Reg(isa.EAX), m2.Reg(isa.EAX))
	}
	if m.Instructions() != m2.Instructions() || m.Clock.Cycles() != m2.Clock.Cycles() {
		t.Errorf("counters diverged: %d/%v vs %d/%v",
			m.Instructions(), m.Clock.Cycles(), m2.Instructions(), m2.Clock.Cycles())
	}
	if m.Phys.Fingerprint() != m2.Phys.Fingerprint() {
		t.Errorf("memory fingerprints diverged after identical runs")
	}
}
