// Snapshot-to-bytes serialization of the machine. Mirrors
// MachineSnapshot: architectural state, code/break tables, lifetime
// counters, the clock and (through the MMU) the translation state. The
// decoded-block cache and trace registry are wall-clock accelerators
// with no simulated side effects and are not serialized; LoadFrom
// clears them, and a restored machine re-detects heat with
// bit-identical simulated metrics.
//
// The services map is the one table that cannot cross the byte
// boundary: its handlers are Go closures over their owning kernel and
// application. LoadFrom therefore restores INTO a deterministically
// booted twin machine and validates that the twin's registered
// endpoints (address, name, kind) exactly match the serialized set —
// the handlers themselves are the twin's, already bound to the right
// owners.
package cpu

import (
	"maps"
	"slices"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func saveOperand(e *mem.Enc, o *isa.Operand) {
	e.U8(uint8(o.Kind))
	e.U8(uint8(o.Reg))
	e.I32(o.Imm)
	e.U8(uint8(o.Base))
	e.U8(uint8(o.Index))
	e.U8(o.Scale)
	e.I32(o.Disp)
	e.Bool(o.Proved)
	e.U32(o.ProvedEnd)
}

func loadOperand(d *mem.Dec) isa.Operand {
	return isa.Operand{
		Kind:      isa.OperandKind(d.U8()),
		Reg:       isa.Reg(d.U8()),
		Imm:       d.I32(),
		Base:      isa.Reg(d.U8()),
		Index:     isa.Reg(d.U8()),
		Scale:     d.U8(),
		Disp:      d.I32(),
		Proved:    d.Bool(),
		ProvedEnd: d.U32(),
	}
}

// SaveTo appends the machine image: clock, architectural state, IDT,
// installed code, breakpoints, service endpoints (for validation), the
// MMU state and the lifetime counters. Maps are emitted in sorted key
// order so serialization is deterministic.
func (m *Machine) SaveTo(e *mem.Enc) {
	e.F64(m.Clock.Cycles())
	e.F64(m.Clock.MHz())

	for _, r := range m.Regs {
		e.U32(r)
	}
	e.U32(m.EIP)
	e.U16(uint16(m.CS))
	e.U16(uint16(m.DS))
	e.U16(uint16(m.SS))
	e.U16(uint16(m.ES))
	e.Bool(m.Flags.ZF)
	e.Bool(m.Flags.SF)
	e.Bool(m.Flags.CF)
	e.Bool(m.Flags.OF)
	for i := 0; i < 3; i++ {
		e.U16(uint16(m.TSS.SS[i]))
		e.U32(m.TSS.ESP[i])
	}

	e.U32(uint32(len(m.IDT)))
	for _, vec := range slices.Sorted(maps.Keys(m.IDT)) {
		gate := m.IDT[vec]
		e.U8(vec)
		mmu.SaveDescriptor(e, &gate)
	}

	e.U32(uint32(len(m.code)))
	for _, pa := range slices.Sorted(maps.Keys(m.code)) {
		in := m.code[pa]
		e.U32(pa)
		e.U8(uint8(in.Op))
		e.U8(in.Size)
		saveOperand(e, &in.Dst)
		saveOperand(e, &in.Src)
	}

	e.U32(uint32(len(m.breaks)))
	for _, pa := range slices.Sorted(maps.Keys(m.breaks)) {
		e.U32(pa)
	}

	e.U32(uint32(len(m.services)))
	for _, addr := range slices.Sorted(maps.Keys(m.services)) {
		svc := m.services[addr]
		e.U32(addr)
		e.String(svc.Name)
		e.U8(uint8(svc.Kind))
	}

	e.U64(m.instret)
	e.Bool(m.haltFlag)
	e.F64(m.TickCycles)
	e.F64(m.nextTick)

	// The MMU comes last so LoadFrom can decode and validate every
	// cpu-level field before the first mutating step runs.
	m.MMU.SaveTo(e)
}

// LoadFrom decodes a SaveTo image into this machine, which must be a
// deterministically booted twin (same boot path as the saved machine):
// its service-endpoint registry is validated against the image and
// kept, since the handlers are closures only a boot can construct.
// adoptSpace resolves the serialized CR3 (see MMU.LoadFrom). All
// decoding and validation happens before anything is applied; on error
// the machine is untouched.
func (m *Machine) LoadFrom(d *mem.Dec, adoptSpace func(cr3 uint32) *mmu.AddressSpace) error {
	clock := d.F64()
	mhz := d.F64()
	if d.Err() == nil && mhz != m.Clock.MHz() {
		d.Failf("image clock is %v MHz, machine runs at %v MHz", mhz, m.Clock.MHz())
	}

	var regs [8]uint32
	for i := range regs {
		regs[i] = d.U32()
	}
	eip := d.U32()
	cs := mmu.Selector(d.U16())
	ds := mmu.Selector(d.U16())
	ss := mmu.Selector(d.U16())
	es := mmu.Selector(d.U16())
	var flags Flags
	flags.ZF = d.Bool()
	flags.SF = d.Bool()
	flags.CF = d.Bool()
	flags.OF = d.Bool()
	var tss TSS
	for i := 0; i < 3; i++ {
		tss.SS[i] = mmu.Selector(d.U16())
		tss.ESP[i] = d.U32()
	}

	nIDT := d.Len("idt gate", 256)
	idt := make(map[uint8]mmu.Descriptor, nIDT)
	lastVec := -1
	for i := 0; i < nIDT; i++ {
		vec := d.U8()
		if d.Err() == nil && int(vec) <= lastVec {
			d.Failf("idt vector %#x out of order", vec)
		}
		lastVec = int(vec)
		idt[vec] = mmu.LoadDescriptor(d)
		if d.Err() != nil {
			return d.Err()
		}
	}

	nCode := d.Len("code entry", 1<<26)
	code := make(map[uint32]*isa.Instr, nCode)
	lastPA := int64(-1)
	for i := 0; i < nCode; i++ {
		pa := d.U32()
		if d.Err() == nil && int64(pa) <= lastPA {
			d.Failf("code address %#x out of order", pa)
		}
		lastPA = int64(pa)
		in := &isa.Instr{}
		in.Op = isa.Op(d.U8())
		in.Size = d.U8()
		in.Dst = loadOperand(d)
		in.Src = loadOperand(d)
		if d.Err() != nil {
			return d.Err()
		}
		code[pa] = in
	}

	nBrk := d.Len("breakpoint", 1<<20)
	breaks := make(map[uint32]bool, nBrk)
	for i := 0; i < nBrk; i++ {
		breaks[d.U32()] = true
	}

	// Service endpoints: validate the twin's registry against the
	// image. The twin's handlers stay — they are already bound to the
	// owners the twin boot constructed.
	nSvc := d.Len("service", 1<<16)
	if d.Err() == nil && nSvc != len(m.services) {
		d.Failf("image has %d service endpoints, booted twin has %d", nSvc, len(m.services))
	}
	for i := 0; i < nSvc; i++ {
		addr := d.U32()
		name := d.String()
		kind := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		svc := m.services[addr]
		if svc == nil {
			d.Failf("image service %q at %#x not registered in booted twin", name, addr)
			return d.Err()
		}
		if svc.Name != name || uint8(svc.Kind) != kind {
			d.Failf("service at %#x is %q kind %d in image, %q kind %d in twin", addr, name, kind, svc.Name, svc.Kind)
			return d.Err()
		}
	}

	instret := d.U64()
	haltFlag := d.Bool()
	tickCycles := d.F64()
	nextTick := d.F64()
	if err := d.Err(); err != nil {
		return err
	}

	// MMU.LoadFrom validates everything it decodes before applying and
	// is the last fallible step, so the all-or-nothing contract holds:
	// either nothing has been applied yet, or nothing can fail anymore.
	if err := m.MMU.LoadFrom(d, adoptSpace); err != nil {
		return err
	}

	m.Clock.SetCycles(clock)
	m.Regs, m.EIP = regs, eip
	m.CS, m.DS, m.SS, m.ES = cs, ds, ss, es
	m.Flags, m.TSS = flags, tss
	m.IDT = idt
	m.code = code
	m.codeShared = false
	m.breaks = breaks
	m.instret = instret
	m.haltFlag = haltFlag
	m.TickCycles = tickCycles
	m.nextTick = nextTick
	m.recomputeDispatchHints()
	m.clearBlockCache()
	return nil
}
