package cpu

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// RunLimits bounds a Run invocation.
type RunLimits struct {
	// MaxInstructions stops the run after this many instructions
	// (0 = unlimited). This is a simulator safety net, not the
	// kernel's extension time limit (which uses the tick hook).
	MaxInstructions uint64
}

// Run executes instructions until a stop condition occurs. The hot
// loop executes through the decoded-block cache's threaded-code tier:
// breakpoints, service endpoints and block decode are resolved once
// per straight-line run instead of once per instruction (with the
// break/service maps themselves consulted only when armed and
// overlapping, via the machine's linear envelopes), hot blocks chain
// directly to their successors, timer-deadline checks are batched
// behind per-block worst-case charge bounds, and same-page fetches
// take a counted fast path — while every per-instruction architectural
// event (timer ticks, page-level fetch checks with their TLB
// statistics and page-walk charges, faults mid-block) happens exactly
// as it would stepping uncached.
func (m *Machine) Run(lim RunLimits) RunResult {
	var res RunResult
	// prev/prevExit remember the chainable exit that led to the next
	// dispatch, so the edge can be recorded once the successor has
	// passed the break/service entry checks.
	var prev *codeBlock
	var prevExit uint32
	for {
		if lim.MaxInstructions > 0 && res.Instructions >= lim.MaxInstructions {
			res.Reason = StopBudget
			return res
		}
		lin := m.linearEIP()
		if len(m.breaks) != 0 && lin >= m.brkLo && lin <= m.brkHi && m.breaks[lin] {
			res.Reason = StopBreak
			return res
		}
		if len(m.services) != 0 && lin >= m.svcLo && lin <= m.svcHi {
			if svc := m.services[lin]; svc != nil {
				prev = nil
				if stop := serviceStop(m.runService(svc)); stop != nil {
					stop.Instructions = res.Instructions
					return *stop
				}
				continue
			}
		}
		gen := m.MMU.SegGen()
		b := m.lookupBlock(lin, gen)
		if b == nil {
			b = m.buildBlock(lin, gen)
		}
		if b == nil {
			prev = nil
			// Nothing fetchable or decodable here: take the uncached
			// path, which raises the right fault with the right
			// charges.
			if stop, _ := m.tickCheck(); stop != nil {
				stop.Instructions += res.Instructions
				return *stop
			}
			stop, done := m.fetchExec()
			if stop != nil {
				stop.Instructions += res.Instructions
				return *stop
			}
			if done {
				res.Instructions++
			}
			continue
		}
		if prev != nil && prev.gen == gen && prev.cs == b.cs {
			// The successor passed this iteration's break/service
			// checks: record the chain edge. SetBreak/RegisterService
			// at any address the successor covers will drop it from
			// its cache slot, which the follow-side validation sees.
			prev.setSucc(prevExit, b)
		}
		var remaining uint64
		if lim.MaxInstructions > 0 {
			remaining = lim.MaxInstructions - res.Instructions
		}
		if m.TraceThreshold > 0 {
			// Trace tier: promote a hot chain entry (runChain bailed
			// out here after the chain-follow counter crossed the
			// threshold) and dispatch through its superblock. A live b
			// implies a live trace: both carry the same (gen, cs) tag,
			// and everything that invalidates the entry block also
			// detaches the trace.
			if b.trace == nil && !b.traceFailed && b.hot >= m.TraceThreshold {
				m.buildTrace(b, gen)
			}
			if tr := b.trace; tr != nil {
				prev = nil
				stop, n := m.runTrace(tr, remaining)
				res.Instructions += n
				if stop != nil {
					stop.Instructions = res.Instructions
					return *stop
				}
				continue
			}
		}
		stop, n, exit, exitLin := m.runChain(b, remaining)
		res.Instructions += n
		if stop != nil {
			stop.Instructions = res.Instructions
			return *stop
		}
		prev, prevExit = exit, exitLin
	}
}

// runChain executes a cached block and then follows chained successors
// for as long as each exit's cached block revalidates, stopping early
// at the remaining instruction budget (0 = unlimited), a timer-hook
// error, a fault, or HLT. It returns the retired-instruction count, a
// stop result whose Instructions field the caller owns, and — when the
// final block left through a chainable exit whose successor was not
// yet linked — that block and its exit's linear target, so Run can
// record the edge after re-running the entry checks.
func (m *Machine) runChain(b *codeBlock, remaining uint64) (*RunResult, uint64, *codeBlock, uint32) {
	gen := b.gen // segment-check generation the chain was built under
	// tgen guards the translation-level caches (the same-page fetch
	// fast path): any paging event a timer hook performs advances it,
	// and the chain bails out to live-state dispatch.
	tgen := m.MMU.TransGen()
	cpl := m.CPL()
	var n uint64
	// Same-page fetch fast path: curFrame/curPage hold the frame base
	// the last full CheckPage returned. Within one chain dispatch the
	// cached translation can only be invalidated by events that bump
	// the translation generation, which bail out below.
	var curFrame, curPage uint32
	haveFrame := false
	for {
		slots := b.slots
		limit := len(slots)
		if remaining > 0 {
			left := remaining - n
			if left == 0 {
				// Budget exhausted; Run's top-of-loop check reports it.
				return nil, n, nil, 0
			}
			if uint64(limit) > left {
				limit = int(left)
			}
		}
		// Deadline check for the block entry (the check "before slot
		// 0"), then the horizon below which per-slot checks provably
		// cannot fire.
		horizon := limit
		ticking := m.OnTick != nil && m.TickCycles > 0
		if ticking {
			stop, ticked := m.tickCheck()
			if stop != nil {
				return stop, n, nil, 0
			}
			if ticked {
				if m.EIP != slots[0].eip || m.CS != b.cs ||
					m.blocks[blockIndex(b.lin)] != b || tgen != m.MMU.TransGen() {
					// The tick handler redirected execution or
					// invalidated cached state; finish this step
					// uncached and let Run re-dispatch from live state.
					stop, done := m.fetchExec()
					if done {
						n++
					}
					return stop, n, nil, 0
				}
				haveFrame = false
			}
			horizon = b.tickHorizon(m.Clock.Cycles(), m.nextTick, 0, limit)
		}
		for i := 0; i < limit; i++ {
			if i >= horizon {
				stop, ticked := m.tickCheck()
				if stop != nil {
					return stop, n, nil, 0
				}
				if ticked {
					if m.EIP != slots[i].eip || m.CS != b.cs ||
						m.blocks[blockIndex(b.lin)] != b || tgen != m.MMU.TransGen() {
						stop, done := m.fetchExec()
						if done {
							n++
						}
						return stop, n, nil, 0
					}
					haveFrame = false
				}
				horizon = b.tickHorizon(m.Clock.Cycles(), m.nextTick, i, limit)
			}
			slot := &slots[i]
			// Page-level fetch check: counted against the TLB and
			// charged on a miss exactly as the uncached fetch would
			// be, and the page-privilege faults are raised mid-block
			// as on hardware. Same-page fetches reuse the page-run
			// head's translation, counting the guaranteed TLB hit.
			var pa uint32
			if page := slot.lin &^ uint32(mem.PageMask); haveFrame && page == curPage {
				m.MMU.FastFetchHit()
				m.bcFastFetches++
				pa = curFrame | (slot.lin & mem.PageMask)
			} else {
				full, f := m.MMU.CheckPage(slot.lin, mmu.Execute, cpl, b.cs, slot.eip)
				if f != nil {
					return &RunResult{Reason: StopFault, Fault: f, Err: f}, n, nil, 0
				}
				pa = full
				curFrame = pa &^ uint32(mem.PageMask)
				curPage = page
				haveFrame = true
			}
			if pa != slot.pa {
				// The mapping changed under the block (e.g. a PTE
				// store with no invlpg, honoured lazily as on
				// hardware): execute what the live translation holds.
				ins := m.code[pa]
				if ins == nil {
					f := &mmu.Fault{Kind: mmu.UD, Sel: b.cs, Off: slot.eip, Linear: slot.lin,
						Access: mmu.Execute, CPL: cpl, Reason: "no instruction at address"}
					return &RunResult{Reason: StopFault, Fault: f, Err: f}, n, nil, 0
				}
				if f := m.execute(ins); f != nil {
					return &RunResult{Reason: StopFault, Fault: f, Err: f}, n, nil, 0
				}
				m.instret++
				n++
				if m.haltFlag {
					return &RunResult{Reason: StopHalt}, n, nil, 0
				}
				if m.EIP != slot.eip+isa.InstrSlot {
					// The substituted instruction transferred control;
					// the rest of the cached run no longer follows.
					// Re-dispatch from live state.
					return nil, n, nil, 0
				}
				// The live instruction's charge is not bounded by the
				// compiled slot's worst case, so the deadline horizon
				// no longer proves anything: force a full check (and a
				// re-derivation) before the next slot.
				if ticking && horizon > i+1 {
					horizon = i + 1
				}
				continue
			}
			if f := slot.exec(m); f != nil {
				return &RunResult{Reason: StopFault, Fault: f, Err: f}, n, nil, 0
			}
			m.instret++
			n++
			if m.haltFlag {
				return &RunResult{Reason: StopHalt}, n, nil, 0
			}
		}
		if limit < len(slots) {
			// Budget truncation; Run's top-of-loop check reports it.
			return nil, n, nil, 0
		}
		// Block complete: follow the chain if this exit's successor is
		// recorded and still the live block for its address under the
		// live generation (whatever invalidates a block drops it from
		// its slot or retires its generation, so a stale successor can
		// never revalidate).
		target := b.base + m.EIP
		if next := b.chainExit(target); next != nil &&
			next.lin == target && next.gen == gen && next.cs == b.cs &&
			m.blocks[blockIndex(next.lin)] == next {
			m.bcChainHits++
			if m.TraceThreshold > 0 {
				// Heat detection for the trace tier: count the chain
				// follow and, once the successor is hot (or already has
				// a trace), bail to Run so it can build/dispatch the
				// superblock from the top of the dispatch loop. EIP is
				// already at the successor's entry.
				next.hot++
				if next.trace != nil || (next.hot >= m.TraceThreshold && !next.traceFailed) {
					return nil, n, nil, 0
				}
			}
			b = next
			continue
		}
		if b.chainable(target) {
			return nil, n, b, target
		}
		return nil, n, nil, 0
	}
}

// Step executes at most one instruction (or one trusted service call)
// without consulting the block cache. It returns a non-nil stop result
// when the run must end, and reports whether an instruction was
// retired.
func (m *Machine) Step() (*RunResult, bool) {
	lin := m.linearEIP()
	if m.breaks[lin] {
		return &RunResult{Reason: StopBreak}, false
	}
	if svc := m.services[lin]; svc != nil {
		return serviceStop(m.runService(svc)), false
	}

	// Timer tick (the kernel's extension CPU-time limit).
	if stop, _ := m.tickCheck(); stop != nil {
		return stop, false
	}
	return m.fetchExec()
}

// serviceStop classifies a service-handler outcome into a stop result
// (nil when the service completed normally); shared by Run and Step so
// their dispatch cannot diverge.
func serviceStop(err error) *RunResult {
	if err == nil {
		return nil
	}
	if f, ok := err.(*mmu.Fault); ok {
		return &RunResult{Reason: StopFault, Fault: f, Err: f}
	}
	return &RunResult{Reason: StopError, Err: err}
}

// fetchExec is the uncached fetch-and-execute tail shared by Step and
// Run's fallback path: full segment+page translation, decoded-code
// lookup, execution, and instruction retirement.
func (m *Machine) fetchExec() (*RunResult, bool) {
	pa, f := m.MMU.Translate(m.CS, m.EIP, isa.InstrSlot, mmu.Execute, m.CPL())
	if f != nil {
		return &RunResult{Reason: StopFault, Fault: f, Err: f}, false
	}
	ins := m.code[pa]
	if ins == nil {
		f := &mmu.Fault{Kind: mmu.UD, Sel: m.CS, Off: m.EIP, Linear: m.linearEIP(), Access: mmu.Execute,
			CPL: m.CPL(), Reason: "no instruction at address"}
		return &RunResult{Reason: StopFault, Fault: f, Err: f}, false
	}
	if f := m.execute(ins); f != nil {
		return &RunResult{Reason: StopFault, Fault: f, Err: f}, false
	}
	m.instret++
	if m.halted() {
		return &RunResult{Reason: StopHalt, Instructions: 1}, true
	}
	return nil, true
}

// tickCheck fires the timer hook when the clock has reached the next
// tick deadline, reporting whether the hook ran. The first deadline is
// armed lazily, one full TickCycles period after ticking is first
// observed enabled, so the hook does not fire before any simulated
// time has elapsed.
func (m *Machine) tickCheck() (*RunResult, bool) {
	if m.OnTick == nil || m.TickCycles <= 0 {
		return nil, false
	}
	if m.nextTick == 0 {
		m.nextTick = m.Clock.Cycles() + m.TickCycles
		return nil, false
	}
	if m.Clock.Cycles() < m.nextTick {
		return nil, false
	}
	m.nextTick = m.Clock.Cycles() + m.TickCycles
	if err := m.OnTick(m); err != nil {
		return &RunResult{Reason: StopError, Err: err}, true
	}
	return nil, true
}

// halted is set by HLT.
func (m *Machine) halted() bool { return m.haltFlag }

// runService invokes a trusted Go endpoint and synthesizes the return
// transfer that real code would perform.
func (m *Machine) runService(svc *Service) error {
	if err := svc.Handler(m); err != nil {
		return err
	}
	switch svc.Kind {
	case ServiceCallGate:
		if f := m.lretTransfer(0); f != nil {
			return f
		}
	case ServiceInt:
		if f := m.iretTransfer(); f != nil {
			return f
		}
	}
	return nil
}

// costKind classifies an instruction for the cycle model.
func costKind(i *isa.Instr) cycles.Kind {
	switch i.Op {
	case isa.NOP:
		return cycles.Nop
	case isa.MOV:
		switch {
		case i.Dst.Kind == isa.KindMem:
			return cycles.Store
		case i.Src.Kind == isa.KindMem:
			return cycles.Load
		case i.Src.Kind == isa.KindImm:
			return cycles.MovImm
		default:
			return cycles.MovRR
		}
	case isa.LEA:
		return cycles.Lea
	case isa.PUSH:
		switch i.Dst.Kind {
		case isa.KindReg:
			return cycles.PushReg
		case isa.KindMem:
			return cycles.PushMem
		default:
			return cycles.PushImm
		}
	case isa.POP:
		if i.Dst.Kind == isa.KindMem {
			return cycles.PopMem
		}
		return cycles.PopReg
	case isa.IMUL:
		return cycles.Mul
	case isa.XCHG:
		return cycles.Xchg
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST,
		isa.INC, isa.DEC, isa.SHL, isa.SHR, isa.SAR, isa.NEG, isa.NOT:
		if i.HasMemOperand() {
			return cycles.ALUMem
		}
		return cycles.ALU
	case isa.JMP:
		return cycles.JmpNear
	case isa.CALL:
		return cycles.CallNear
	case isa.RET:
		return cycles.RetNear
	case isa.HLT:
		return cycles.Hlt
	}
	// Branches and far transfers are charged inside execute, where
	// the outcome (taken, privilege change) is known.
	return cycles.Nop
}

// execute runs one instruction. EIP advances unless the instruction
// itself transferred control.
func (m *Machine) execute(ins *isa.Instr) *mmu.Fault {
	next := m.EIP + isa.InstrSlot
	switch ins.Op {
	case isa.NOP:
		m.Clock.Charge(m.Model, cycles.Nop)

	case isa.HLT:
		m.Clock.Charge(m.Model, cycles.Hlt)
		if m.CPL() != 0 {
			return m.gpf("hlt at CPL > 0")
		}
		m.haltFlag = true

	case isa.MOV:
		m.Clock.Charge(m.Model, costKind(ins))
		v, f := m.readOperand(&ins.Src, ins.Size)
		if f != nil {
			return f
		}
		if f := m.writeOperand(&ins.Dst, ins.Size, v); f != nil {
			return f
		}

	case isa.LEA:
		m.Clock.Charge(m.Model, cycles.Lea)
		m.Regs[ins.Dst.Reg] = m.effAddr(&ins.Src)

	case isa.PUSH:
		m.Clock.Charge(m.Model, costKind(ins))
		v, f := m.readOperand(&ins.Dst, 4)
		if f != nil {
			return f
		}
		if f := m.Push(v); f != nil {
			return f
		}

	case isa.POP:
		m.Clock.Charge(m.Model, costKind(ins))
		v, f := m.Pop()
		if f != nil {
			return f
		}
		if f := m.writeOperand(&ins.Dst, 4, v); f != nil {
			// x86 restores ESP if the store faults.
			m.Regs[isa.ESP] -= 4
			return f
		}

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST:
		m.Clock.Charge(m.Model, costKind(ins))
		if f := m.binop(ins); f != nil {
			return f
		}

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		m.Clock.Charge(m.Model, costKind(ins))
		if f := m.unop(ins); f != nil {
			return f
		}

	case isa.SHL, isa.SHR, isa.SAR:
		m.Clock.Charge(m.Model, costKind(ins))
		if f := m.shift(ins); f != nil {
			return f
		}

	case isa.IMUL:
		m.Clock.Charge(m.Model, cycles.Mul)
		a := int32(m.Regs[ins.Dst.Reg])
		bv, f := m.readOperand(&ins.Src, 4)
		if f != nil {
			return f
		}
		m.Regs[ins.Dst.Reg] = uint32(a * int32(bv))

	case isa.XCHG:
		m.Clock.Charge(m.Model, cycles.Xchg)
		a, f := m.readOperand(&ins.Dst, ins.Size)
		if f != nil {
			return f
		}
		b, f := m.readOperand(&ins.Src, ins.Size)
		if f != nil {
			return f
		}
		if f := m.writeOperand(&ins.Dst, ins.Size, b); f != nil {
			return f
		}
		if f := m.writeOperand(&ins.Src, ins.Size, a); f != nil {
			return f
		}

	case isa.JMP:
		m.Clock.Charge(m.Model, cycles.JmpNear)
		t, f := m.branchTarget(&ins.Dst)
		if f != nil {
			return f
		}
		m.EIP = t
		return nil

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
		if m.cond(ins.Op) {
			m.Clock.Charge(m.Model, cycles.JccTaken)
			m.EIP = uint32(ins.Dst.Imm)
			return nil
		}
		m.Clock.Charge(m.Model, cycles.JccNotTaken)

	case isa.CALL:
		m.Clock.Charge(m.Model, cycles.CallNear)
		t, f := m.branchTarget(&ins.Dst)
		if f != nil {
			return f
		}
		if f := m.Push(next); f != nil {
			return f
		}
		m.EIP = t
		return nil

	case isa.RET:
		m.Clock.Charge(m.Model, cycles.RetNear)
		t, f := m.Pop()
		if f != nil {
			return f
		}
		if ins.Dst.Kind == isa.KindImm {
			m.Regs[isa.ESP] += uint32(ins.Dst.Imm)
		}
		m.EIP = t
		return nil

	case isa.LCALL:
		// Cost charged inside the transfer, which knows whether the
		// privilege level changes.
		if f := m.lcallGate(mmu.Selector(uint16(ins.Dst.Imm)), next); f != nil {
			return f
		}
		return nil

	case isa.LRET:
		var n uint32
		if ins.Dst.Kind == isa.KindImm {
			n = uint32(ins.Dst.Imm)
		}
		if f := m.lretTransfer(n); f != nil {
			return f
		}
		return nil

	case isa.INT:
		if f := m.intTransfer(uint8(ins.Dst.Imm), true); f != nil {
			return f
		}
		return nil

	case isa.IRET:
		if f := m.iretTransfer(); f != nil {
			return f
		}
		return nil

	default:
		return &mmu.Fault{Kind: mmu.UD, Sel: m.CS, Off: m.EIP, CPL: m.CPL(),
			Reason: fmt.Sprintf("unimplemented opcode %s", ins.Op)}
	}
	m.EIP = next
	return nil
}

// branchTarget resolves a jmp/call operand: immediate (direct),
// register, or memory (indirect, e.g. a PLT entry jumping through its
// GOT slot — the extra memory read is charged as a Load).
func (m *Machine) branchTarget(op *isa.Operand) (uint32, *mmu.Fault) {
	switch op.Kind {
	case isa.KindImm:
		return uint32(op.Imm), nil
	case isa.KindReg:
		return m.Regs[op.Reg], nil
	case isa.KindMem:
		m.Clock.Charge(m.Model, cycles.Load)
		return m.readMem(op, 4)
	}
	return 0, m.gpf("bad branch operand")
}

func (m *Machine) readOperand(op *isa.Operand, size uint8) (uint32, *mmu.Fault) {
	switch op.Kind {
	case isa.KindReg:
		return m.Regs[op.Reg], nil
	case isa.KindImm:
		return uint32(op.Imm), nil
	case isa.KindMem:
		return m.readMem(op, size)
	}
	return 0, nil
}

func (m *Machine) writeOperand(op *isa.Operand, size uint8, v uint32) *mmu.Fault {
	switch op.Kind {
	case isa.KindReg:
		if size == 1 {
			// Byte ops targeting a register zero-extend (movzx
			// semantics), so byte loads never leave stale upper bits.
			m.Regs[op.Reg] = v & 0xFF
		} else {
			m.Regs[op.Reg] = v
		}
		return nil
	case isa.KindMem:
		return m.writeMem(op, size, v)
	}
	return m.gpf("bad destination operand")
}

func (m *Machine) binop(ins *isa.Instr) *mmu.Fault {
	a, f := m.readOperand(&ins.Dst, ins.Size)
	if f != nil {
		return f
	}
	b, f := m.readOperand(&ins.Src, ins.Size)
	if f != nil {
		return f
	}
	var r uint32
	switch ins.Op {
	case isa.ADD:
		r = a + b
		m.Flags.CF = r < a
		m.Flags.OF = (a>>31 == b>>31) && (r>>31 != a>>31)
	case isa.SUB, isa.CMP:
		r = a - b
		m.Flags.CF = a < b
		m.Flags.OF = (a>>31 != b>>31) && (r>>31 != a>>31)
	case isa.AND, isa.TEST:
		r = a & b
		m.Flags.CF, m.Flags.OF = false, false
	case isa.OR:
		r = a | b
		m.Flags.CF, m.Flags.OF = false, false
	case isa.XOR:
		r = a ^ b
		m.Flags.CF, m.Flags.OF = false, false
	}
	if ins.Size == 1 {
		r &= 0xFF
		m.Flags.SF = r&0x80 != 0
	} else {
		m.Flags.SF = r&0x8000_0000 != 0
	}
	m.Flags.ZF = r == 0
	if ins.Op == isa.CMP || ins.Op == isa.TEST {
		return nil
	}
	return m.writeOperand(&ins.Dst, ins.Size, r)
}

func (m *Machine) unop(ins *isa.Instr) *mmu.Fault {
	a, f := m.readOperand(&ins.Dst, ins.Size)
	if f != nil {
		return f
	}
	var r uint32
	switch ins.Op {
	case isa.INC:
		r = a + 1
		m.Flags.OF = r == 0x8000_0000
	case isa.DEC:
		r = a - 1
		m.Flags.OF = a == 0x8000_0000
	case isa.NEG:
		r = -a
		m.Flags.CF = a != 0
	case isa.NOT:
		r = ^a
		if f := m.writeOperand(&ins.Dst, ins.Size, r); f != nil {
			return f
		}
		return nil // NOT does not affect flags
	}
	if ins.Size == 1 {
		r &= 0xFF
		m.Flags.SF = r&0x80 != 0
	} else {
		m.Flags.SF = r&0x8000_0000 != 0
	}
	m.Flags.ZF = r == 0
	return m.writeOperand(&ins.Dst, ins.Size, r)
}

func (m *Machine) shift(ins *isa.Instr) *mmu.Fault {
	a, f := m.readOperand(&ins.Dst, 4)
	if f != nil {
		return f
	}
	n := uint32(ins.Src.Imm) & 31
	var r uint32
	switch ins.Op {
	case isa.SHL:
		r = a << n
		if n > 0 {
			m.Flags.CF = a&(1<<(32-n)) != 0
		}
	case isa.SHR:
		r = a >> n
		if n > 0 {
			m.Flags.CF = a&(1<<(n-1)) != 0
		}
	case isa.SAR:
		r = uint32(int32(a) >> n)
		if n > 0 {
			m.Flags.CF = a&(1<<(n-1)) != 0
		}
	}
	m.Flags.ZF = r == 0
	m.Flags.SF = r&0x8000_0000 != 0
	return m.writeOperand(&ins.Dst, 4, r)
}

func (m *Machine) cond(op isa.Op) bool {
	f := m.Flags
	switch op {
	case isa.JE:
		return f.ZF
	case isa.JNE:
		return !f.ZF
	case isa.JL:
		return f.SF != f.OF
	case isa.JLE:
		return f.ZF || f.SF != f.OF
	case isa.JG:
		return !f.ZF && f.SF == f.OF
	case isa.JGE:
		return f.SF == f.OF
	case isa.JB:
		return f.CF
	case isa.JBE:
		return f.CF || f.ZF
	case isa.JA:
		return !f.CF && !f.ZF
	case isa.JAE:
		return !f.CF
	case isa.JS:
		return f.SF
	case isa.JNS:
		return !f.SF
	}
	return false
}

func (m *Machine) gpf(reason string) *mmu.Fault {
	return &mmu.Fault{Kind: mmu.GP, Sel: m.CS, Off: m.EIP, Linear: m.linearEIP(),
		Access: mmu.Execute, CPL: m.CPL(), Reason: reason}
}
