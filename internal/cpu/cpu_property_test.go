package cpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mmu"
)

// runBinop executes `op eax, ebx` on the simulated CPU and returns
// EAX plus the resulting flags.
func runBinop(t *testing.T, op string, a, b uint32) (uint32, Flags) {
	t.Helper()
	h := newHarness(t)
	syms := h.install(0x0001_0000, fmt.Sprintf(`
		entry:
			%s eax, ebx
		stop: nop
	`, op))
	h.startUser(syms["entry"])
	h.m.Regs[isa.EAX] = a
	h.m.Regs[isa.EBX] = b
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 5})
	if res.Reason != StopBreak {
		t.Fatalf("%s: %+v", op, res)
	}
	return h.m.Reg(isa.EAX), h.m.Flags
}

func TestALUMatchesGoSemanticsProperty(t *testing.T) {
	type alu struct {
		name string
		gold func(a, b uint32) uint32
	}
	ops := []alu{
		{"add", func(a, b uint32) uint32 { return a + b }},
		{"sub", func(a, b uint32) uint32 { return a - b }},
		{"and", func(a, b uint32) uint32 { return a & b }},
		{"or", func(a, b uint32) uint32 { return a | b }},
		{"xor", func(a, b uint32) uint32 { return a ^ b }},
	}
	rng := testRand(t)
	for _, op := range ops {
		op := op
		f := func(a, b uint32) bool {
			got, flags := runBinop(t, op.name, a, b)
			want := op.gold(a, b)
			if got != want {
				return false
			}
			if flags.ZF != (want == 0) {
				return false
			}
			return flags.SF == (want&0x8000_0000 != 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
			t.Errorf("%s: %v", op.name, err)
		}
	}
}

func TestCmpFlagsMatchComparisonsProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		_, flags := runBinop(t, "cmp", a, b)
		if flags.ZF != (a == b) {
			return false
		}
		if flags.CF != (a < b) { // unsigned below
			return false
		}
		signedLess := int32(a) < int32(b)
		return (flags.SF != flags.OF) == signedLess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: testRand(t)}); err != nil {
		t.Error(err)
	}
}

func TestPushPopRoundTripProperty(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			push eax
			push ebx
			pop ecx
			pop edx
		stop: nop
	`)
	f := func(a, b uint32) bool {
		h.startUser(syms["entry"])
		h.m.Regs[isa.EAX] = a
		h.m.Regs[isa.EBX] = b
		h.m.SetBreak(syms["stop"])
		res := h.m.Run(RunLimits{MaxInstructions: 10})
		if res.Reason != StopBreak {
			return false
		}
		return h.m.Reg(isa.ECX) == b && h.m.Reg(isa.EDX) == a &&
			h.m.Reg(isa.ESP) == 0x0008_1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: testRand(t)}); err != nil {
		t.Error(err)
	}
}

func TestLretWithImmediateReleasesStack(t *testing.T) {
	h := newHarness(t)
	// Same-privilege far return with an 8-byte release.
	syms := h.install(0x0001_0000, `
		entry:
			push 1            ; two dummy args the lret 8 releases
			push 2
			push 0x1B         ; CS: selXCode rpl3
			push target
			lret 8
		target:
			nop
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 10})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if esp := h.m.Reg(isa.ESP); esp != 0x0008_1000 {
		t.Errorf("esp = %#x, want stack fully released", esp)
	}
}

func TestSamePrivilegeFarCallThroughGate(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			lcall 0x3B       ; gate (idx 7, rpl 3)
			mov ebx, eax
		stop: nop
		far:
			mov eax, 55
			lret
	`)
	// Gate targets code at the SAME privilege (DPL 3): no stack
	// switch, plain far call/return.
	h.m.MMU.GDT.Set(selGate, mmu.Descriptor{
		Kind: mmu.SegCallGate, DPL: 3, Present: true,
		GateSel: gsel(selXCode, 3), GateOff: syms["far"],
	})
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 20})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if h.m.Reg(isa.EBX) != 55 || h.m.CPL() != 3 {
		t.Errorf("ebx=%d cpl=%d", h.m.Reg(isa.EBX), h.m.CPL())
	}
}

func TestConformingCodeExecutesAtCallerCPL(t *testing.T) {
	h := newHarness(t)
	// A conforming DPL-0 code segment is fetchable from CPL 3
	// without a gate (x86 conforming semantics).
	d := *h.m.MMU.GDT.Get(selXCode)
	d.Conforming = true
	d.DPL = 0
	h.m.MMU.GDT.Set(selXCode, d)
	syms := h.install(0x0001_0000, `
		entry:
			mov eax, 7
		stop: nop
	`)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 5})
	if res.Reason != StopBreak {
		t.Fatalf("conforming fetch failed: %+v", res)
	}
}

func TestStackFaultOnUnmappedStack(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry: push eax
	`)
	h.startUser(syms["entry"])
	h.m.Regs[isa.ESP] = 0x0050_0000 // unmapped
	res := h.m.Run(RunLimits{MaxInstructions: 5})
	if res.Reason != StopFault || res.Fault.Kind != mmu.SS {
		t.Fatalf("stop = %+v, want #SS", res)
	}
}

func TestIretRestoresFlags(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, `
		entry:
			cmp eax, eax      ; sets ZF
			int 0x80
			je zf_set         ; ZF must survive the interrupt
			mov ebx, 0
			jmp stop
		zf_set:
			mov ebx, 1
		stop: nop
	`)
	h.m.IDT[0x80] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 3, Present: true,
		GateSel: gsel(selKCode, 0), GateOff: 0x100,
	}
	h.m.TSS.SS[0] = gsel(selKData, 0)
	h.m.TSS.ESP[0] = 0x3000
	h.mapAt(0xC000_2000, true, false)
	h.m.RegisterService(0xC000_0100, &Service{
		Name: "clobber", Kind: ServiceInt,
		Handler: func(m *Machine) error {
			// The handler's own flag changes must not leak back.
			m.Flags = Flags{}
			return nil
		},
	})
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	res := h.m.Run(RunLimits{MaxInstructions: 50})
	if res.Reason != StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if h.m.Reg(isa.EBX) != 1 {
		t.Error("ZF was not restored by iret")
	}
}

func TestContextSaveRestoreRoundTrip(t *testing.T) {
	h := newHarness(t)
	h.m.Regs = [8]uint32{1, 2, 3, 4, 5, 6, 7, 8}
	h.m.EIP = 0x1234
	h.m.CS = gsel(selACode, 2)
	h.m.Flags = Flags{ZF: true, CF: true}
	saved := h.m.SaveContext()
	h.m.Regs = [8]uint32{}
	h.m.EIP = 0
	h.m.Flags = Flags{}
	h.m.RestoreContext(saved)
	if h.m.Regs[isa.EDI] != 8 || h.m.EIP != 0x1234 || !h.m.Flags.ZF || h.m.CS != gsel(selACode, 2) {
		t.Error("context round trip lost state")
	}
}

func TestFlagsPackUnpackProperty(t *testing.T) {
	f := func(zf, sf, cf, of bool) bool {
		fl := Flags{ZF: zf, SF: sf, CF: cf, OF: of}
		return unpackFlags(fl.pack()) == fl
	}
	if err := quick.Check(f, &quick.Config{Rand: testRand(t)}); err != nil {
		t.Error(err)
	}
}

func TestStopReasonStrings(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopHalt: "halt", StopFault: "fault", StopBreak: "breakpoint",
		StopBudget: "budget", StopError: "error",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}
