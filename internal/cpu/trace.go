package cpu

import (
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// Tier 3: trace superblocks.
//
// Tier 2 (blockcache.go) made dispatch cheap; its remaining steady-
// state tax is per-instruction and per-block bookkeeping: every closure
// call re-loads machine state through a pointer, every flag lives in a
// struct field, every cycle charge is a float64 add against the shared
// clock, and every block boundary re-derives the deadline horizon and
// revalidates a chain hint. Tier 3 removes that tax for hot paths: the
// chain-hit counter promotes a block whose chain is followed often into
// a *trace* — a fused superblock covering the whole hot path (loops
// included), compiled into a flat micro-op array executed by one
// dispatch loop that keeps the simulated registers and EFLAGS in Go
// locals, accumulates cycle charges in a local, and batches the
// guaranteed TLB-hit accounting into per-dispatch counters committed
// once per exit.
//
// Bit-identity. Every simulated metric must be exactly what tiers 1/2
// produce:
//
//   - Cycle charges are accumulated locally and added to the clock at
//     commit, interleaved (in program order) with the live charges a
//     TLB-miss walk makes directly. This reorders float additions, so
//     the trace tier only engages when the cost model passes
//     cycles.Model.BatchSafe: every cost a multiple of 0.5, making
//     summation exact in any order.
//   - Page-level checks still happen per executed instruction. Fetches:
//     a full (charged, counted, checked) probe at every trace page-run
//     head and at every in-trace branch target, once per dispatch; all
//     other fetches are guaranteed TLB hits (the array TLB never
//     evicts, and nothing that could invalidate an entry — CR3 load,
//     invlpg, descriptor mutation, a timer hook — can happen mid-
//     dispatch, because any of them ends the dispatch first), counted
//     wholesale at commit. Data accesses go through per-op segment
//     probes and per-dispatch page slots (mmu.TranslateBatched) with
//     identical fault identities, charges and miss behaviour.
//   - Timer deadlines use the same worst-case prefix-sum batching as
//     tier 2 (cycles.Prefix); past the proven horizon the trace checks
//     precisely against clock+accum at each op boundary and, if the
//     deadline has arrived, deoptimizes: it commits the architectural
//     state at that instruction boundary and returns to Run, whose
//     tier-2 re-dispatch fires the hook at the identical clock reading
//     and EIP.
//   - A fused page whose frame no longer matches the build-time
//     translation deoptimizes to one live uncached execute (exactly
//     tier 2's lazy-remap substitution), then re-dispatches.
//   - Faults commit the partially-executed architectural state exactly
//     as the tier-2 closure sequence would have left it: charge already
//     made, flags as mutated so far, partial memory effects persisted,
//     EIP at the faulting instruction.
//
// Invalidation mirrors the block cache: SegGen retires traces via
// their entry block's tag; arming a break/service inside any fused
// range and installing/removing code over any decoded page kill the
// trace explicitly (invalidateTracesAt / invalidateTracesByPages);
// snapshot restore clears everything (clearBlockCache). Traces are
// never captured by Snapshot/Clone — a restored or cloned machine
// re-detects heat and rebuilds, with bit-identical simulated metrics.
const (
	// defaultTraceThreshold is the chain-follow count at which a block
	// is promoted to a trace entry.
	defaultTraceThreshold = 64
	// maxTraceOps caps the micro-ops fused into one trace.
	maxTraceOps = 512
	// maxTraceBlocks caps the blocks fused into one trace.
	maxTraceBlocks = 64
	// maxMachineTraces caps live traces per machine; above it the
	// registry is swept of unreachable traces and, if still full, new
	// builds are refused until invalidation makes room.
	maxMachineTraces = 256
)

// traceOp codes. Ops with memory operands carry pre-bound segment
// probes and per-dispatch page slots; ops that can leave the trace
// carry the side-exit EIP.
const (
	opExit      uint8 = iota // side exit before this address (untraceable instruction)
	opNop                    //
	opMovRI                  // dst <- imm (byte form pre-masked)
	opMovRR                  // dst <- src, dword
	opMovRRB                 // dst <- src & 0xFF
	opLea                    // dst <- effective address
	opAluRR                  // sub: ADD..TEST; dst op= src
	opAluRI                  // dst op= imm
	opAluRM                  // dst op= mem
	opAluMR                  // mem op= src
	opAluMI                  // mem op= imm
	opUnR                    // sub: INC/DEC/NEG/NOT on reg
	opUnM                    // on mem
	opShR                    // sub: SHL/SHR/SAR on reg, count imm
	opShM                    // on mem
	opImulRR                 // dst *= src
	opImulRI                 // dst *= imm
	opImulRM                 // dst *= mem
	opXchgRR                 // swap regs
	opXchgRM                 // dst reg <-> src mem
	opXchgMR                 // dst mem <-> src reg
	opMovLoad                // dst reg <- mem
	opMovStoreR              // mem <- src reg
	opMovStoreI              // mem <- imm
	opPushR                  // push reg
	opPushI                  // push imm
	opPushM                  // push mem
	opPopR                   // pop into reg
	opPopM                   // pop into mem
	opJmp                    // jmp imm, followed in-trace (next)
	opJmpExit                // jmp imm, side exit to exitEIP
	opJcc                    // sub: JE..JNS; followed direction in-trace
	opJccExit                // neither direction followed: exit taken (imm) or fall (exitEIP)
	opCall                   // call imm, callee followed in-trace
	opCallExit               // call imm, side exit to exitEIP
	opRet                    // ret [imm]: always a side exit
)

// traceOp is one fused micro-operation. The executor (tracerun.go)
// dispatches on code with the hot architectural state in locals.
type traceOp struct {
	code     uint8
	sub      isa.Op // ALU/unop/shift kind or Jcc condition
	size     uint8  // operand size (1 or 4) where it matters
	scale    uint8
	dst, src uint8 // register indices
	base, ix uint8 // memory operand base/index (isa.NoReg when absent)
	useSS    bool  // memory operand addresses through SS
	pageHead bool  // fetch needs a full page check once per dispatch
	follow   bool  // opJcc: the followed direction is the taken branch
	proved   bool  // memory operand carries a verifier bound
	bound    uint32
	imm      uint32 // immediate / shift count / RET pop / JccExit taken EIP
	disp     uint32
	eip      uint32 // segment-relative address of this instruction
	lin      uint32 // linear fetch address
	pa       uint32 // physical fetch address at build time
	next     uint32 // successor op index
	exitEIP  uint32 // side-exit EIP for branch/exit ops
	cost     float64
	alt      float64 // opJcc/opJccExit: cost of the unfollowed direction
	fseq     uint32  // dispatch seq of the last full fetch check
	probeR   mmu.SegProbe
	probeW   mmu.SegProbe
	pcR      mmu.PageSlot
	pcW      mmu.PageSlot

	// Dispatch-scoped inline translation cache, one set per access
	// direction: a flattened mirror of (probe, page slot) state filled
	// after a successful TranslateBatched, valid while fsR/fsW equals
	// the trace's dispatch seq. Within one dispatch nothing can go cold
	// underneath it — descriptor mutation, paging events and TLB
	// flushes all end the dispatch first — so a seq match plus a page
	// match replays the cached translation with exactly one batched TLB
	// hit (and one batched elision when the verifier proof applies),
	// the same accounting TranslateBatched's warm slot-hit path does.
	fsR, fsW            uint32
	segBaseR, segLimitR uint32
	vpageR, frameR      uint32
	segBaseW, segLimitW uint32
	vpageW, frameW      uint32
	elideR, elideW      bool

	// Dispatch-scoped frame-pointer cache for dword accesses, the
	// physical half of the fast path above: a direct pointer into the
	// backing frame, valid while msR/msW equals the dispatch seq. The
	// read side is filled only when the frame is exclusively owned
	// (mem.FrameViewStable), the write side via the full COW fault
	// (mem.FrameMut) which makes it so; an exclusive frame cannot be
	// COW-replaced mid-dispatch, so the pointer stays the one every
	// uncached access would resolve to.
	msR, msW       uint32
	fpageR, fpageW uint32
	memR, memW     *[mem.PageSize]byte
}

// trace is a compiled superblock: a flat micro-op array over the fused
// blocks' instructions, plus the metadata invalidation needs.
type trace struct {
	entry    *codeBlock // owning entry block (entry.trace == this while live)
	entryEIP uint32
	entryLin uint32
	cs       mmu.Selector
	gen      uint64 // mmu.SegGen at build
	lo, hi   uint32 // linear envelope over all fused block ranges
	pages    uint64 // bloom over decoded physical pages
	ops      []traceOp
	wc       cycles.Prefix // worst-case charge prefix over ops
	seq      uint32        // dispatch sequence for fseq/PageSlot tags
}

// TraceStats reports the trace tier's counters: traces built and
// invalidated, trace dispatches, normal side exits, and deoptimizations
// by cause. A "deopt" commits partial architectural state mid-trace and
// falls back to tier 1/2: Tick (deadline reached at an op boundary; the
// re-dispatch fires the hook there), Fault (the faulting op's state is
// committed exactly as tier 2 would), Page (a fused page's frame no
// longer matches the build-time translation; one live substituted
// execute follows, as in tier 2), Budget (instruction budget exhausted
// mid-trace).
type TraceStats struct {
	Built       uint64
	Invalidated uint64
	Dispatches  uint64
	SideExits   uint64
	DeoptTick   uint64
	DeoptFault  uint64
	DeoptPage   uint64
	DeoptBudget uint64
}

// TraceStats reports the machine's trace-tier counters.
func (m *Machine) TraceStats() TraceStats { return m.trStats }

// invalidateTracesAt kills every trace whose fused linear range covers
// lin (breakpoint or service endpoint armed there).
func (m *Machine) invalidateTracesAt(lin uint32) {
	if len(m.traces) == 0 || lin < m.traceMin || lin >= m.traceMax {
		return
	}
	live := m.traces[:0]
	for _, tr := range m.traces {
		if tr.lo <= lin && lin < tr.hi {
			tr.entry.trace = nil
			m.trStats.Invalidated++
		} else {
			live = append(live, tr)
		}
	}
	m.traces = live
}

// invalidateTracesByPages kills every trace that decoded instructions
// from a physical page in the bloom set (code installed or removed).
func (m *Machine) invalidateTracesByPages(pages uint64) {
	if len(m.traces) == 0 || m.tracesBloom&pages == 0 {
		return
	}
	live := m.traces[:0]
	for _, tr := range m.traces {
		if tr.pages&pages != 0 {
			tr.entry.trace = nil
			m.trStats.Invalidated++
		} else {
			live = append(live, tr)
		}
	}
	m.traces = live
}

// clearTraces kills every trace; snapshot restore path.
func (m *Machine) clearTraces() {
	for _, tr := range m.traces {
		tr.entry.trace = nil
	}
	m.traces = m.traces[:0]
	m.traceMin, m.traceMax = 0, 0
	m.tracesBloom = 0
}

// registerTrace attaches a built trace to its entry block and the
// machine registry, maintaining the invalidation envelope and bloom.
func (m *Machine) registerTrace(tr *trace) {
	if len(m.traces) >= maxMachineTraces {
		// Sweep unreachable traces: entry no longer in its cache slot
		// or from a retired generation.
		gen := m.MMU.SegGen()
		live := m.traces[:0]
		for _, t := range m.traces {
			if t.gen == gen && m.blocks[blockIndex(t.entryLin)] == t.entry {
				live = append(live, t)
			} else {
				t.entry.trace = nil
			}
		}
		m.traces = live
		if len(m.traces) >= maxMachineTraces {
			tr.entry.traceFailed = true
			return
		}
	}
	if len(m.traces) == 0 {
		m.traceMin, m.traceMax = tr.lo, tr.hi
	} else {
		m.traceMin = min(m.traceMin, tr.lo)
		m.traceMax = max(m.traceMax, tr.hi)
	}
	m.tracesBloom |= tr.pages
	m.traces = append(m.traces, tr)
	tr.entry.trace = tr
	m.trStats.Built++
}

// validBlockAt returns the live cached block starting at linear target
// under (gen, cs), or nil. Unlike lookupBlock it takes the tag from the
// trace being built and moves no counters.
func (m *Machine) validBlockAt(target uint32, gen uint64, cs mmu.Selector) *codeBlock {
	b := m.blocks[blockIndex(target)]
	if b != nil && b.lin == target && b.gen == gen && b.cs == cs {
		return b
	}
	return nil
}

// buildTrace fuses the hot path starting at block b into a trace. It
// follows each block's terminal transfer into the cached successor
// while one exists (loop back-edges and internal joins become in-trace
// branches), stopping at untraceable instructions (far transfers,
// indirect targets, HLT), cache misses, or the size caps. Build is
// charge-free and count-free, like buildBlock: it reads decoded slots
// and peeks translations only. Returns nil (and marks the block) when
// no useful trace exists here.
func (m *Machine) buildTrace(b *codeBlock, gen uint64) *trace {
	if !m.Model.BatchSafe() {
		b.traceFailed = true
		return nil
	}
	tr := &trace{
		entry:    b,
		entryEIP: b.slots[0].eip,
		entryLin: b.lin,
		cs:       b.cs,
		gen:      gen,
		lo:       b.lin,
		hi:       b.end,
	}
	tlbMiss := m.Model.Cost(cycles.TLBMiss)
	// wcs collects each op's worst-case charge before page-head TLB
	// walks are known (join targets are marked after the walk order is
	// final); the prefix table is assembled at the end.
	wcs := make([]float64, 0, 32)
	blockStart := make(map[uint32]int) // block linear start -> first op index
	cur := b
	nblocks := 0
	for {
		nblocks++
		blockStart[cur.lin] = len(tr.ops)
		tr.lo = min(tr.lo, cur.lin)
		tr.hi = max(tr.hi, cur.end)
		tr.pages |= cur.pages
		nslots := len(cur.slots)
		term := cur.slots[nslots-1].ins
		termSpecial := term.Op.TransfersControl()
		body := nslots
		if termSpecial {
			body--
		}
		bailed := false
		for i := 0; i < body; i++ {
			s := &cur.slots[i]
			if !m.appendTraceOp(tr, &wcs, cur, i) {
				tr.ops = append(tr.ops, traceOp{code: opExit, eip: s.eip, exitEIP: s.eip})
				wcs = append(wcs, 0)
				bailed = true
				break
			}
		}
		if bailed {
			break
		}
		ts := &cur.slots[nslots-1]
		if !termSpecial {
			// Fall-through continuation (length cap or a decode
			// boundary): the terminal is an ordinary op.
			if !m.appendTraceOp(tr, &wcs, cur, nslots-1) {
				tr.ops = append(tr.ops, traceOp{code: opExit, eip: ts.eip, exitEIP: ts.eip})
				wcs = append(wcs, 0)
				break
			}
			nxt, done := m.traceCont(tr, blockStart, cur.end, gen, nblocks)
			if done {
				// Continuation leaves the trace: exit before the next
				// instruction.
				tr.ops = append(tr.ops, traceOp{code: opExit, eip: ts.eip + isa.InstrSlot,
					exitEIP: ts.eip + isa.InstrSlot})
				wcs = append(wcs, 0)
				break
			}
			tr.ops[len(tr.ops)-1].next = uint32(len(tr.ops))
			if nxt.block == nil {
				tr.ops[len(tr.ops)-1].next = uint32(nxt.idx)
				break
			}
			cur = nxt.block
			continue
		}
		if !m.traceVerifySlot(ts) {
			tr.ops = append(tr.ops, traceOp{code: opExit, eip: ts.eip, exitEIP: ts.eip})
			wcs = append(wcs, 0)
			break
		}
		stop := m.appendTraceTerminal(tr, &wcs, cur, blockStart, gen, nblocks)
		if stop.block == nil {
			break
		}
		cur = stop.block
	}
	if !traceUseful(tr) {
		b.traceFailed = true
		return nil
	}
	// Mark in-trace branch targets as page heads: an op reached by a
	// non-linear transfer cannot prove its page was touched earlier in
	// this dispatch by its linear predecessor, so it takes the full
	// per-dispatch check (which is counting-identical to tier 2's page-
	// transition check whether it hits or walks).
	for i := range tr.ops {
		op := &tr.ops[i]
		switch op.code {
		case opJmp, opCall:
			tr.ops[op.next].pageHead = true
		case opJcc:
			tr.ops[op.next].pageHead = true
		default:
			if op.next != 0 && int(op.next) != i+1 {
				tr.ops[op.next].pageHead = true
			}
		}
	}
	// Linear page transitions and the entry are page heads too.
	for i := range tr.ops {
		if i == 0 || tr.ops[i].lin>>mem.PageShift != tr.ops[i-1].lin>>mem.PageShift {
			tr.ops[i].pageHead = true
		}
	}
	tr.wc = cycles.NewPrefix(len(tr.ops))
	for i := range tr.ops {
		wc := wcs[i]
		if tr.ops[i].pageHead {
			wc += tlbMiss
		}
		tr.wc = tr.wc.Append(wc)
	}
	m.registerTrace(tr)
	if tr.entry.trace != tr {
		return nil // registry full
	}
	return tr
}

// traceUseful reports whether the built op list makes progress: at
// least one retiring op, and the entry op itself retires (a trace whose
// first op is an exit would commit without advancing — an infinite
// dispatch loop).
func traceUseful(tr *trace) bool {
	return len(tr.ops) > 0 && tr.ops[0].code != opExit
}

// traceTarget is a continuation: either a cached block to fuse next or
// an op index (an internal join / loop back-edge).
type traceTarget struct {
	block *codeBlock
	idx   int
}

// traceCont resolves a continuation at linear target: an already-fused
// op index, a valid cached successor block that still fits, or done
// (leave the trace). nblocks counts blocks fused so far.
func (m *Machine) traceCont(tr *trace, blockStart map[uint32]int, target uint32, gen uint64, nblocks int) (traceTarget, bool) {
	if target == tr.entryLin {
		return traceTarget{idx: 0}, false
	}
	if j, ok := blockStart[target]; ok {
		return traceTarget{idx: j}, false
	}
	succ := m.validBlockAt(target, gen, tr.cs)
	if succ == nil || nblocks >= maxTraceBlocks ||
		len(tr.ops)+len(succ.slots)+2 > maxTraceOps {
		return traceTarget{}, true
	}
	return traceTarget{block: succ}, false
}

// traceVerifySlot checks that a slot's build-time physical fetch
// address still matches the live translation. Fusing a stale slot
// would execute the stale decode where tier 2 would substitute the
// live instruction, so the trace must stop before it.
func (m *Machine) traceVerifySlot(s *blockSlot) bool {
	pp, ok := m.MMU.PeekPage(s.lin)
	return ok && pp == s.pa
}

// appendTraceTerminal fuses a block's terminal control transfer. It
// returns the block to continue fusing at, or a zero target when the
// trace is complete. The terminal slot has already been verified
// against the live translation.
func (m *Machine) appendTraceTerminal(tr *trace, wcs *[]float64, cur *codeBlock, blockStart map[uint32]int, gen uint64, nblocks int) traceTarget {
	s := &cur.slots[len(cur.slots)-1]
	ins := s.ins
	model := m.Model
	fall := s.eip + isa.InstrSlot
	switch {
	case ins.Op == isa.JMP && ins.Dst.Kind == isa.KindImm:
		target := uint32(ins.Dst.Imm)
		c := model.Cost(cycles.JmpNear)
		nxt, done := m.traceCont(tr, blockStart, cur.base+target, gen, nblocks)
		if done {
			tr.ops = append(tr.ops, m.newTraceOp(opJmpExit, s, c, func(op *traceOp) {
				op.exitEIP = target
			}))
			*wcs = append(*wcs, c)
			return traceTarget{}
		}
		op := m.newTraceOp(opJmp, s, c, func(op *traceOp) {
			op.next = uint32(len(tr.ops) + 1)
			if nxt.block == nil {
				op.next = uint32(nxt.idx)
			}
		})
		tr.ops = append(tr.ops, op)
		*wcs = append(*wcs, c)
		return nxt

	case ins.Op.IsBranch():
		target := uint32(ins.Dst.Imm)
		cT := model.Cost(cycles.JccTaken)
		cN := model.Cost(cycles.JccNotTaken)
		// Prefer fusing the backward edge (the loop): a taken target at
		// or before this block is a back-edge. Forward branches prefer
		// the fall-through (the straight-line hot path). The unpreferred
		// direction is still tried when the preferred one can't fuse.
		takenLin, fallLin := cur.base+target, cur.end
		order := [2]bool{true, false} // true = taken
		if takenLin > cur.lin {
			order = [2]bool{false, true}
		}
		for _, dir := range order {
			lin := fallLin
			if dir {
				lin = takenLin
			}
			nxt, done := m.traceCont(tr, blockStart, lin, gen, nblocks)
			if done {
				continue
			}
			op := m.newTraceOp(opJcc, s, 0, func(op *traceOp) {
				op.sub = ins.Op
				op.follow = dir
				op.next = uint32(len(tr.ops) + 1)
				if nxt.block == nil {
					op.next = uint32(nxt.idx)
				}
				if dir {
					op.cost, op.alt = cT, cN
					op.exitEIP = fall
				} else {
					op.cost, op.alt = cN, cT
					op.exitEIP = target
				}
			})
			tr.ops = append(tr.ops, op)
			*wcs = append(*wcs, model.MaxCost(cycles.JccTaken, cycles.JccNotTaken))
			return nxt
		}
		tr.ops = append(tr.ops, m.newTraceOp(opJccExit, s, 0, func(op *traceOp) {
			op.sub = ins.Op
			op.cost, op.alt = cT, cN
			op.imm = target
			op.exitEIP = fall
		}))
		*wcs = append(*wcs, model.MaxCost(cycles.JccTaken, cycles.JccNotTaken))
		return traceTarget{}

	case ins.Op == isa.CALL && ins.Dst.Kind == isa.KindImm:
		target := uint32(ins.Dst.Imm)
		c := model.Cost(cycles.CallNear)
		nxt, done := m.traceCont(tr, blockStart, cur.base+target, gen, nblocks)
		if done {
			tr.ops = append(tr.ops, m.newTraceOp(opCallExit, s, c, func(op *traceOp) {
				op.exitEIP = target
			}))
			*wcs = append(*wcs, c+m.Model.Cost(cycles.TLBMiss))
			return traceTarget{}
		}
		op := m.newTraceOp(opCall, s, c, func(op *traceOp) {
			op.next = uint32(len(tr.ops) + 1)
			if nxt.block == nil {
				op.next = uint32(nxt.idx)
			}
		})
		tr.ops = append(tr.ops, op)
		*wcs = append(*wcs, c+m.Model.Cost(cycles.TLBMiss))
		return nxt

	case ins.Op == isa.RET:
		c := model.Cost(cycles.RetNear)
		tr.ops = append(tr.ops, m.newTraceOp(opRet, s, c, func(op *traceOp) {
			if ins.Dst.Kind == isa.KindImm {
				op.imm = uint32(ins.Dst.Imm)
			}
		}))
		*wcs = append(*wcs, c+m.Model.Cost(cycles.TLBMiss))
		return traceTarget{}
	}
	// Indirect jmp/call, far transfers, HLT: exit before the terminal.
	tr.ops = append(tr.ops, traceOp{code: opExit, eip: s.eip, exitEIP: s.eip})
	*wcs = append(*wcs, 0)
	return traceTarget{}
}

// newTraceOp builds a traceOp pre-filled with the slot's addresses and
// charge, then applies fill.
func (m *Machine) newTraceOp(code uint8, s *blockSlot, cost float64, fill func(*traceOp)) traceOp {
	op := traceOp{code: code, eip: s.eip, lin: s.lin, pa: s.pa, cost: cost}
	if fill != nil {
		fill(&op)
	}
	return op
}

// bindTraceMem fills a traceOp's memory-operand fields from o.
func bindTraceMem(op *traceOp, o *isa.Operand) {
	op.base = uint8(o.Base)
	op.ix = uint8(o.Index)
	op.scale = o.Scale
	op.disp = uint32(o.Disp)
	op.useSS = o.Base == isa.EBP || o.Base == isa.ESP
	op.proved = o.Proved
	op.bound = o.ProvedEnd
}

// appendTraceOp fuses one non-terminal (straight-line) instruction,
// verifying its build-time translation first. Returns false when the
// instruction cannot be fused; the caller then ends the trace with an
// exit before it.
func (m *Machine) appendTraceOp(tr *trace, wcs *[]float64, cur *codeBlock, idx int) bool {
	s := &cur.slots[idx]
	if !m.traceVerifySlot(s) {
		return false
	}
	ins := s.ins
	model := m.Model
	tlb := model.Cost(cycles.TLBMiss)
	var op traceOp
	op.eip, op.lin, op.pa = s.eip, s.lin, s.pa
	op.size = ins.Size
	if op.size == 0 {
		op.size = 4
	}
	op.next = uint32(len(tr.ops) + 1)
	wc := 0.0

	switch ins.Op {
	case isa.NOP:
		op.code = opNop
		op.cost = model.Cost(cycles.Nop)
		wc = op.cost

	case isa.MOV:
		op.cost = model.Cost(costKind(ins))
		wc = op.cost
		switch {
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindImm:
			op.code = opMovRI
			op.dst = uint8(ins.Dst.Reg)
			op.imm = uint32(ins.Src.Imm)
			if op.size == 1 {
				op.imm &= 0xFF
			}
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindReg:
			op.code = opMovRR
			if op.size == 1 {
				op.code = opMovRRB
			}
			op.dst = uint8(ins.Dst.Reg)
			op.src = uint8(ins.Src.Reg)
		case ins.Dst.Kind == isa.KindReg: // load
			op.code = opMovLoad
			op.dst = uint8(ins.Dst.Reg)
			bindTraceMem(&op, &ins.Src)
			wc += tlb
		case ins.Src.Kind == isa.KindReg: // store
			op.code = opMovStoreR
			op.src = uint8(ins.Src.Reg)
			bindTraceMem(&op, &ins.Dst)
			wc += tlb
		case ins.Src.Kind == isa.KindImm:
			op.code = opMovStoreI
			op.imm = uint32(ins.Src.Imm)
			bindTraceMem(&op, &ins.Dst)
			wc += tlb
		default: // mem <- mem does not assemble
			return false
		}

	case isa.LEA:
		op.code = opLea
		op.cost = model.Cost(cycles.Lea)
		wc = op.cost
		op.dst = uint8(ins.Dst.Reg)
		bindTraceMem(&op, &ins.Src)

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST:
		op.sub = ins.Op
		op.cost = model.Cost(costKind(ins))
		wc = op.cost
		switch {
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindReg:
			op.code = opAluRR
			op.dst = uint8(ins.Dst.Reg)
			op.src = uint8(ins.Src.Reg)
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindImm:
			op.code = opAluRI
			op.dst = uint8(ins.Dst.Reg)
			op.imm = uint32(ins.Src.Imm)
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindMem:
			op.code = opAluRM
			op.dst = uint8(ins.Dst.Reg)
			bindTraceMem(&op, &ins.Src)
			wc += tlb
		case ins.Dst.Kind == isa.KindMem && ins.Src.Kind == isa.KindReg:
			op.code = opAluMR
			op.src = uint8(ins.Src.Reg)
			bindTraceMem(&op, &ins.Dst)
			wc += 2 * tlb
		case ins.Dst.Kind == isa.KindMem && ins.Src.Kind == isa.KindImm:
			op.code = opAluMI
			op.imm = uint32(ins.Src.Imm)
			bindTraceMem(&op, &ins.Dst)
			wc += 2 * tlb
		default:
			return false
		}

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		op.sub = ins.Op
		op.cost = model.Cost(costKind(ins))
		wc = op.cost
		switch ins.Dst.Kind {
		case isa.KindReg:
			op.code = opUnR
			op.dst = uint8(ins.Dst.Reg)
		case isa.KindMem:
			op.code = opUnM
			bindTraceMem(&op, &ins.Dst)
			wc += 2 * tlb
		default:
			return false
		}

	case isa.SHL, isa.SHR, isa.SAR:
		op.sub = ins.Op
		op.cost = model.Cost(costKind(ins))
		wc = op.cost
		op.imm = uint32(ins.Src.Imm) & 31
		switch ins.Dst.Kind {
		case isa.KindReg:
			op.code = opShR
			op.dst = uint8(ins.Dst.Reg)
		case isa.KindMem:
			op.code = opShM
			bindTraceMem(&op, &ins.Dst)
			wc += 2 * tlb
		default:
			return false
		}

	case isa.IMUL:
		op.cost = model.Cost(cycles.Mul)
		wc = op.cost
		op.dst = uint8(ins.Dst.Reg)
		switch ins.Src.Kind {
		case isa.KindReg:
			op.code = opImulRR
			op.src = uint8(ins.Src.Reg)
		case isa.KindImm:
			op.code = opImulRI
			op.imm = uint32(ins.Src.Imm)
		case isa.KindMem:
			op.code = opImulRM
			bindTraceMem(&op, &ins.Src)
			wc += tlb
		default:
			return false
		}

	case isa.XCHG:
		op.cost = model.Cost(cycles.Xchg)
		wc = op.cost
		switch {
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindReg:
			op.code = opXchgRR
			op.dst = uint8(ins.Dst.Reg)
			op.src = uint8(ins.Src.Reg)
		case ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindMem:
			op.code = opXchgRM
			op.dst = uint8(ins.Dst.Reg)
			bindTraceMem(&op, &ins.Src)
			wc += 2 * tlb
		case ins.Dst.Kind == isa.KindMem && ins.Src.Kind == isa.KindReg:
			op.code = opXchgMR
			op.src = uint8(ins.Src.Reg)
			bindTraceMem(&op, &ins.Dst)
			wc += 2 * tlb
		default: // mem <-> mem would need four probes; not fused
			return false
		}

	case isa.PUSH:
		op.cost = model.Cost(costKind(ins))
		wc = op.cost + tlb // stack store
		switch ins.Dst.Kind {
		case isa.KindReg:
			op.code = opPushR
			op.src = uint8(ins.Dst.Reg)
		case isa.KindImm:
			op.code = opPushI
			op.imm = uint32(ins.Dst.Imm)
		case isa.KindMem:
			op.code = opPushM
			bindTraceMem(&op, &ins.Dst)
			wc += tlb
		default:
			return false
		}

	case isa.POP:
		op.cost = model.Cost(costKind(ins))
		wc = op.cost + tlb // stack load
		switch ins.Dst.Kind {
		case isa.KindReg:
			op.code = opPopR
			op.dst = uint8(ins.Dst.Reg)
		case isa.KindMem:
			op.code = opPopM
			bindTraceMem(&op, &ins.Dst)
			wc += tlb
		default:
			return false
		}

	default:
		// HLT, far transfers, branches (terminals, handled by
		// appendTraceTerminal) and unimplemented opcodes are not fused.
		return false
	}

	tr.ops = append(tr.ops, op)
	*wcs = append(*wcs, wc)
	return true
}
