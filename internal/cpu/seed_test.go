package cpu

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// defaultTestSeed is the logged constant every randomized test in this
// package derives its pseudo-random stream from, so a failure
// reproduces exactly by re-running the test. Override with
// PALLADIUM_TEST_SEED=<int64> to explore other streams (e.g. to replay
// a seed a fuzzing run found).
const defaultTestSeed int64 = 19991212 // SOSP '99

// testSeed returns the base seed, logging it so failures are
// reproducible from the test output alone.
func testSeed(tb testing.TB) int64 {
	seed := defaultTestSeed
	if s := os.Getenv("PALLADIUM_TEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("bad PALLADIUM_TEST_SEED %q: %v", s, err)
		}
		seed = v
	}
	tb.Logf("randomized test seed = %d (override with PALLADIUM_TEST_SEED)", seed)
	return seed
}

// testRand returns the package's deterministic random stream.
func testRand(tb testing.TB) *rand.Rand {
	return rand.New(rand.NewSource(testSeed(tb)))
}
