package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// The decoded-block cache removes the per-instruction map lookups and
// segment walks from Run's hot loop. A block is a straight-line run of
// predecoded instructions starting at a linear EIP; the segment-level
// fetch checks (code-segment type, DPL, limit) are performed once at
// build time and revalidated wholesale through cache invalidation,
// while the page-level check — the one with architecturally visible
// side effects (TLB hit/miss statistics, page-walk cycle charges,
// page-privilege faults) — still runs per executed instruction, so
// cycle and TLB accounting is bit-for-bit what the uncached
// interpreter produced.
//
// Invalidation:
//   - CR3 loads, single-page invalidations, LDT switches and GDT/LDT
//     descriptor mutations advance mmu.TransGen, which is part of every
//     block's tag (gen), killing all blocks at once.
//   - SetBreak/ClearBreak and RegisterService/UnregisterService
//     invalidate exactly the cached blocks whose linear range covers
//     the armed address (breakpoints and trusted endpoints must be
//     honoured mid-run by the very next instruction).
//   - InstallCode/RemoveCode invalidate the blocks whose decoded
//     instructions came from any touched physical page, matched through
//     a per-block page bloom filter (false positives only cost a
//     rebuild).
const (
	// blockCacheSize is the number of direct-mapped block slots.
	blockCacheSize = 2048
	// maxBlockLen caps the instructions decoded per block.
	maxBlockLen = 128
)

// blockSlot is one predecoded instruction of a cached block.
type blockSlot struct {
	ins *isa.Instr
	eip uint32 // segment-relative address of the fetch
	lin uint32 // linear address of the fetch
	pa  uint32 // physical address the decode came from
}

// codeBlock is a cached straight-line run. end is the linear address
// one past the last slot, for break/service range invalidation.
type codeBlock struct {
	lin   uint32
	end   uint32
	cs    mmu.Selector
	gen   uint64 // mmu.TransGen at build time
	pages uint64 // bloom over the physical pages the decode read
	slots []blockSlot
}

// pageBloomBit maps a physical address to its bloom bit.
func pageBloomBit(pa uint32) uint64 {
	return 1 << ((pa >> mem.PageShift) & 63)
}

func blockIndex(lin uint32) uint32 {
	return (lin / isa.InstrSlot) & (blockCacheSize - 1)
}

// lookupBlock returns the cached block starting at lin under the
// current code segment and translation generation, or nil.
func (m *Machine) lookupBlock(lin uint32, gen uint64) *codeBlock {
	b := m.blocks[blockIndex(lin)]
	if b != nil && b.lin == lin && b.cs == m.CS && b.gen == gen {
		m.bcHits++
		return b
	}
	return nil
}

// buildBlock decodes a straight-line run starting at CS:EIP (whose
// linear address is lin) and caches it. It performs no charged or
// counted work: segment checks are free in the cycle model, and page
// translation uses MMU.PeekPage, so the charged, counted page check
// still happens on every execution. Returns nil when not even the
// first instruction is fetchable here — the caller then takes the
// uncached path, which raises the appropriate fault with the
// appropriate charges.
func (m *Machine) buildBlock(lin uint32, gen uint64) *codeBlock {
	cpl := m.CPL()
	b := &codeBlock{lin: lin, cs: m.CS, gen: gen}
	eip := m.EIP
	for len(b.slots) < maxBlockLen {
		flin, f := m.MMU.CheckSegment(m.CS, eip, isa.InstrSlot, mmu.Execute, cpl)
		if f != nil {
			break
		}
		// A block interior must be free of breakpoints and service
		// endpoints: Run dispatches those only at block entry. (The
		// entry address itself was just checked by Run.)
		if len(b.slots) > 0 && (m.breaks[flin] || m.services[flin] != nil) {
			break
		}
		pa, ok := m.MMU.PeekPage(flin)
		if !ok {
			break
		}
		ins := m.code[pa]
		if ins == nil {
			break
		}
		b.slots = append(b.slots, blockSlot{ins: ins, eip: eip, lin: flin, pa: pa})
		b.pages |= pageBloomBit(pa)
		if ins.Op.TransfersControl() {
			break
		}
		eip += isa.InstrSlot
	}
	if len(b.slots) == 0 {
		return nil
	}
	b.end = b.slots[len(b.slots)-1].lin + isa.InstrSlot
	m.bcBuilds++
	idx := blockIndex(lin)
	if m.blocks[idx] == nil {
		m.liveBlocks++
	}
	// Maintain the conservative [blockMin, blockMax) envelope over all
	// live blocks so address-keyed invalidation can reject misses in
	// O(1). It only grows (evictions leave it wide); it re-anchors
	// whenever the cache refills from empty.
	if m.liveBlocks == 1 && m.blocks[idx] == nil {
		// First live block after an empty cache: anchor the envelope.
		m.blockMin, m.blockMax = b.lin, b.end
	} else {
		m.blockMin = min(m.blockMin, b.lin)
		m.blockMax = max(m.blockMax, b.end)
	}
	m.blocks[idx] = b
	return b
}

// invalidateBlocksAt drops every cached block whose linear range
// covers lin; used when a breakpoint or service endpoint is armed or
// disarmed at that address.
func (m *Machine) invalidateBlocksAt(lin uint32) {
	if m.liveBlocks == 0 || lin < m.blockMin || lin >= m.blockMax {
		return
	}
	for i, b := range &m.blocks {
		if b != nil && b.lin <= lin && lin < b.end {
			m.blocks[i] = nil
			m.liveBlocks--
			m.bcInvalidations++
		}
	}
}

// invalidateBlocksByPages drops every cached block that may have
// decoded instructions from a physical page in the bloom set; used
// when code is installed or removed.
func (m *Machine) invalidateBlocksByPages(pages uint64) {
	if m.liveBlocks == 0 {
		return
	}
	for i, b := range &m.blocks {
		if b != nil && b.pages&pages != 0 {
			m.blocks[i] = nil
			m.liveBlocks--
			m.bcInvalidations++
		}
	}
}

// clearBlockCache empties the decoded-block cache and resets the
// invalidation envelope; used by snapshot restore (the restored image
// may hold different code behind the same physical addresses).
func (m *Machine) clearBlockCache() {
	if m.liveBlocks == 0 {
		return
	}
	for i := range m.blocks {
		m.blocks[i] = nil
	}
	m.liveBlocks = 0
	m.blockMin, m.blockMax = 0, 0
}

// BlockCacheStats reports decoded-block cache counters: cached-block
// executions, block builds, and explicit invalidations.
func (m *Machine) BlockCacheStats() (hits, builds, invalidations uint64) {
	return m.bcHits, m.bcBuilds, m.bcInvalidations
}
