package cpu

import (
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// The decoded-block cache removes the per-instruction map lookups and
// segment walks from Run's hot loop; since the threaded-code tier it
// also removes the per-instruction opcode dispatch (each slot carries a
// pre-bound closure, see translate.go), batches the timer-deadline
// check behind a per-block worst-case cycle bound (maxPrefix), takes a
// same-page fast path for the page-level fetch check (fetches on the
// page the previous fetch translated reuse its frame, counting the
// guaranteed TLB hit through mmu.FastFetchHit), and chains hot blocks directly
// to their successors so steady-state loops never consult the breaks/
// services/block maps at all.
//
// A block is a straight-line run of predecoded instructions starting at
// a linear EIP; the segment-level fetch checks (code-segment type, DPL,
// limit) are performed once at build time and revalidated wholesale
// through cache invalidation, while the page-level check — the one with
// architecturally visible side effects (TLB hit/miss statistics,
// page-walk cycle charges, page-privilege faults) — still happens per
// executed instruction (full CheckPage at every page-run head, counted
// fast path within a page), so cycle and TLB accounting is bit-for-bit
// what the uncached interpreter produced.
//
// Invalidation:
//   - LDT switches, GDT/LDT descriptor mutations and whole-image
//     restores advance mmu.SegGen, which is part of every block's tag
//     (gen), killing all blocks at once. Pure paging events (CR3
//     loads, invlpg) advance only mmu.TransGen: they do not invalidate
//     blocks — the live per-execution page check follows remaps
//     lazily, exactly as the uncached interpreter would — but any such
//     event fired from a timer hook makes the running chain bail out
//     and re-dispatch from live state. Chain edges carry no generation
//     of their own: a chained successor is revalidated against the
//     live generation and the live cache slot on every follow, so
//     whatever kills a block also unhooks every chain into it.
//   - SetBreak/ClearBreak and RegisterService/UnregisterService
//     invalidate exactly the cached blocks whose linear range covers
//     the armed address (breakpoints and trusted endpoints must be
//     honoured mid-run by the very next instruction). Dropping the
//     covering block from its cache slot is what severs chains to it.
//   - InstallCode/RemoveCode invalidate the blocks whose decoded
//     instructions came from any touched physical page, matched through
//     a per-block page bloom filter (false positives only cost a
//     rebuild) behind a machine-wide aggregate bloom that rejects
//     non-overlapping installs in O(1).
//
// Blocks whose generation is no longer current can never tag-match
// again (the generation is monotonic), so the address- and page-keyed
// invalidation scans skip them.
const (
	// blockCacheSize is the number of direct-mapped block slots.
	blockCacheSize = 2048
	// maxBlockLen caps the instructions decoded per block.
	maxBlockLen = 128
)

// blockSlot is one predecoded, pre-bound instruction of a cached block.
type blockSlot struct {
	ins  *isa.Instr
	exec execFn // threaded-code closure (translate.go)
	eip  uint32 // segment-relative address of the fetch
	lin  uint32 // linear address of the fetch
	pa   uint32 // physical address the decode came from
}

// codeBlock is a cached straight-line run. end is the linear address
// one past the last slot, for break/service range invalidation.
type codeBlock struct {
	lin   uint32
	end   uint32
	base  uint32 // code-segment base at build time (lin - slots[0].eip)
	cs    mmu.Selector
	gen   uint64 // mmu.SegGen at build time
	pages uint64 // bloom over the physical pages the decode read
	slots []blockSlot

	// maxPrefix[i] is the worst-case cycle charge of slots[0:i]
	// (prefix sums of each slot's compile-time charge bound), used by
	// tickHorizon to skip per-instruction deadline checks that
	// provably cannot fire.
	maxPrefix []float64

	// Chain exits. fallLin is the linear address execution continues at
	// when the block falls through (no terminal transfer, or a
	// conditional branch not taken); takenLin is the target of the
	// terminal direct transfer (jmp/jcc/call with an immediate target).
	// A zero *OK flag means that exit is not chainable (indirect or far
	// transfers, halts). succFall/succTaken cache the successor block
	// last dispatched from that exit; they are hints revalidated on
	// every follow.
	fallLin   uint32
	takenLin  uint32
	fallOK    bool
	takenOK   bool
	succFall  *codeBlock
	succTaken *codeBlock

	// Trace tier (see trace.go). hot counts chain-follows into this
	// block; at Machine.TraceThreshold the block is promoted to a trace
	// entry. trace is the compiled superblock rooted here (nil when
	// none); traceFailed remembers that a build was refused so the
	// dispatcher stops retrying until the block itself is rebuilt.
	hot         uint32
	trace       *trace
	traceFailed bool
}

// chainExit resolves the exit at linear target to this block's
// chainable-edge hint (nil when the exit is not chainable or no
// successor has been recorded yet).
func (b *codeBlock) chainExit(target uint32) *codeBlock {
	if b.fallOK && target == b.fallLin {
		return b.succFall
	}
	if b.takenOK && target == b.takenLin {
		return b.succTaken
	}
	return nil
}

// chainable reports whether the exit at linear target may be chained.
func (b *codeBlock) chainable(target uint32) bool {
	return (b.fallOK && target == b.fallLin) || (b.takenOK && target == b.takenLin)
}

// setSucc records the successor dispatched from the exit at target.
func (b *codeBlock) setSucc(target uint32, succ *codeBlock) {
	if b.fallOK && target == b.fallLin {
		b.succFall = succ
	}
	if b.takenOK && target == b.takenLin {
		b.succTaken = succ
	}
}

// pageBloomBit maps a physical address to its bloom bit.
func pageBloomBit(pa uint32) uint64 {
	return 1 << ((pa >> mem.PageShift) & 63)
}

func blockIndex(lin uint32) uint32 {
	return (lin / isa.InstrSlot) & (blockCacheSize - 1)
}

// lookupBlock returns the cached block starting at lin under the
// current code segment and segment-check generation, or nil.
func (m *Machine) lookupBlock(lin uint32, gen uint64) *codeBlock {
	b := m.blocks[blockIndex(lin)]
	if b != nil && b.lin == lin && b.cs == m.CS && b.gen == gen {
		m.bcHits++
		return b
	}
	return nil
}

// buildBlock decodes a straight-line run starting at CS:EIP (whose
// linear address is lin), compiles each instruction into its threaded
// closure, and caches it. It performs no charged or counted work:
// segment checks are free in the cycle model, and page translation
// uses MMU.PeekPage, so the charged, counted page check still happens
// on every execution. Returns nil when not even the first instruction
// is fetchable here — the caller then takes the uncached path, which
// raises the appropriate fault with the appropriate charges.
func (m *Machine) buildBlock(lin uint32, gen uint64) *codeBlock {
	cpl := m.CPL()
	b := &codeBlock{lin: lin, cs: m.CS, gen: gen, base: lin - m.EIP,
		maxPrefix: make([]float64, 1, 16)}
	eip := m.EIP
	for len(b.slots) < maxBlockLen {
		flin, f := m.MMU.CheckSegment(m.CS, eip, isa.InstrSlot, mmu.Execute, cpl)
		if f != nil {
			break
		}
		// A block interior must be free of breakpoints and service
		// endpoints: Run dispatches those only at block entry. (The
		// entry address itself was just checked by Run.)
		if len(b.slots) > 0 && (m.breaks[flin] || m.services[flin] != nil) {
			break
		}
		pa, ok := m.MMU.PeekPage(flin)
		if !ok {
			break
		}
		ins := m.code[pa]
		if ins == nil {
			break
		}
		fn, maxCharge := compile(ins, eip, m.Model)
		if len(b.slots) == 0 ||
			flin>>mem.PageShift != b.slots[len(b.slots)-1].lin>>mem.PageShift {
			// Page-run head: executing this slot may also charge a
			// fetch-side TLB-miss walk (the full CheckPage runs here;
			// interior slots take the charge-free fast path, and a
			// post-tick full re-check is a guaranteed hit). The walk
			// must be inside the worst-case bound or the batched
			// deadline check could skip a tick the uncached
			// interpreter fires.
			maxCharge += m.Model.Cost(cycles.TLBMiss)
		}
		b.slots = append(b.slots, blockSlot{ins: ins, exec: fn, eip: eip, lin: flin, pa: pa})
		b.maxPrefix = append(b.maxPrefix, b.maxPrefix[len(b.maxPrefix)-1]+maxCharge)
		b.pages |= pageBloomBit(pa)
		if ins.Op.TransfersControl() {
			break
		}
		eip += isa.InstrSlot
	}
	if len(b.slots) == 0 {
		return nil
	}
	last := &b.slots[len(b.slots)-1]
	b.end = last.lin + isa.InstrSlot

	// Chain-exit metadata. Only near transfers with immediate targets
	// (and plain fall-through) are chainable: far transfers change the
	// code segment, and indirect targets change per execution.
	switch term := last.ins; {
	case !term.Op.TransfersControl():
		// Decode stopped at the length cap or a boundary: execution
		// falls through to end.
		b.fallLin, b.fallOK = b.end, true
	case term.Op.IsFarTransfer():
		// Far transfers change CS (and therefore the segment base the
		// exit target would be derived from): never chained.
	case term.Op == isa.JMP && term.Dst.Kind == isa.KindImm:
		b.takenLin, b.takenOK = b.base+uint32(term.Dst.Imm), true
	case term.Op == isa.CALL && term.Dst.Kind == isa.KindImm:
		b.takenLin, b.takenOK = b.base+uint32(term.Dst.Imm), true
	case term.Op.IsBranch():
		b.takenLin, b.takenOK = b.base+uint32(term.Dst.Imm), true
		b.fallLin, b.fallOK = b.end, true
	}

	m.bcBuilds++
	idx := blockIndex(lin)
	if m.blocks[idx] == nil {
		m.liveBlocks++
	}
	// Maintain the conservative [blockMin, blockMax) envelope over all
	// live blocks so address-keyed invalidation can reject misses in
	// O(1). It only grows (evictions leave it wide); it re-anchors
	// whenever the cache refills from empty.
	if m.liveBlocks == 1 && m.blocks[idx] == nil {
		// First live block after an empty cache: anchor the envelope.
		m.blockMin, m.blockMax = b.lin, b.end
	} else {
		m.blockMin = min(m.blockMin, b.lin)
		m.blockMax = max(m.blockMax, b.end)
	}
	m.blocksBloom |= b.pages
	m.blocks[idx] = b
	return b
}

// tickHorizon returns the exclusive horizon h for deadline checks:
// slots with index in [start, h) execute without a per-instruction
// deadline check. Slot start itself is always exempt (the caller just
// performed its check); a later slot j is exempt when the worst-case
// charge prefix proves the clock cannot have reached deadline before
// j begins (cyc + maxPrefix[j] - maxPrefix[start] < deadline). A
// return of limit means the rest of the block is check-free.
func (b *codeBlock) tickHorizon(cyc, deadline float64, start, limit int) int {
	// maxPrefix is monotonic: binary-search the largest index whose
	// prefix still fits under the deadline slack.
	slack := deadline - cyc + b.maxPrefix[start]
	lo, hi := start, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.maxPrefix[mid] < slack {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo >= limit {
		return limit
	}
	return lo + 1
}

// invalidateBlocksAt drops every cached block whose linear range
// covers lin; used when a breakpoint or service endpoint is armed or
// disarmed at that address. Blocks from an older translation
// generation are unreachable (lookup and chain validation both require
// the live generation) and are skipped.
func (m *Machine) invalidateBlocksAt(lin uint32) {
	// Traces first: their envelope spans every fused block, which may
	// be wider than any single covering block (and must be checked even
	// when the block-level early-out below fires).
	m.invalidateTracesAt(lin)
	if m.liveBlocks == 0 || lin < m.blockMin || lin >= m.blockMax {
		return
	}
	gen := m.MMU.SegGen()
	for i, b := range &m.blocks {
		if b != nil && b.gen == gen && b.lin <= lin && lin < b.end {
			m.blocks[i] = nil
			m.liveBlocks--
			m.bcInvalidations++
		}
	}
}

// invalidateBlocksByPages drops every cached block that may have
// decoded instructions from a physical page in the bloom set; used
// when code is installed or removed. The machine-wide aggregate bloom
// (the union of every cached block's page set, conservatively stale
// across invalidations) rejects non-overlapping installs without
// scanning the cache.
func (m *Machine) invalidateBlocksByPages(pages uint64) {
	m.invalidateTracesByPages(pages)
	if m.liveBlocks == 0 || m.blocksBloom&pages == 0 {
		return
	}
	gen := m.MMU.SegGen()
	for i, b := range &m.blocks {
		if b != nil && b.gen == gen && b.pages&pages != 0 {
			m.blocks[i] = nil
			m.liveBlocks--
			m.bcInvalidations++
		}
	}
}

// clearBlockCache empties the decoded-block cache and resets the
// invalidation envelope and aggregate page bloom; used by snapshot
// restore (the restored image may hold different code behind the same
// physical addresses).
func (m *Machine) clearBlockCache() {
	m.clearTraces()
	if m.liveBlocks == 0 {
		return
	}
	for i := range m.blocks {
		m.blocks[i] = nil
	}
	m.liveBlocks = 0
	m.blockMin, m.blockMax = 0, 0
	m.blocksBloom = 0
}

// BlockCacheStats reports decoded-block cache counters: cached-block
// dispatches through the block map, block builds, and explicit
// invalidations. Chained dispatches (which bypass the map) are
// reported by ChainStats.
func (m *Machine) BlockCacheStats() (hits, builds, invalidations uint64) {
	return m.bcHits, m.bcBuilds, m.bcInvalidations
}

// ChainStats reports the specialized execution tier's counters:
// chained block dispatches (successor followed directly, no break/
// service/block-map consultation) and same-page fetch fast-path hits
// (page-level fetch checks satisfied by the page-run head's
// translation, each counted as a TLB hit).
func (m *Machine) ChainStats() (chainHits, fastFetches uint64) {
	return m.bcChainHits, m.bcFastFetches
}
