package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mmu"
)

// Tier-3 directed tests: trace superblocks must engage on hot loops,
// stay bit-identical to single-stepping on every simulated metric, and
// deoptimize correctly under every trace-hostile event — a fault at
// any position inside the fused body, a timer deadline mid-trace, a
// breakpoint armed inside the fused range, and paging events fired
// from the tick hook while the trace is hot.

// traceLoopSrc is the canonical hot loop: five fused instructions per
// iteration including a store and a load, so a trace covers ALU,
// memory and conditional-branch micro-ops.
const traceLoopSrc = `
	entry:
		mov eax, 0
		mov ecx, 500
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		dec ecx
		jne loop
	stop:
		nop
	.data
	scratch: .long 0
`

// traceExec runs src to the stop breakpoint with the given runner and
// trace threshold (0 disables the trace tier) and returns the harness
// and stop result.
func traceExec(t *testing.T, runner func(*Machine, RunLimits) RunResult, src string, threshold uint32) (*harness, map[string]uint32, RunResult) {
	t.Helper()
	h := newHarness(t)
	syms := h.install(0x0001_0000, src)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	h.m.TraceThreshold = threshold
	res := runner(h.m, RunLimits{})
	return h, syms, res
}

// traceCompare asserts every simulated metric two executions must
// share: stop reason, fault identity, instructions, cycles, TLB
// statistics, registers, flags and EIP.
func traceCompare(t *testing.T, label string, hA, hB *harness, resA, resB RunResult) {
	t.Helper()
	if resA.Reason != resB.Reason {
		t.Fatalf("%s: stop reason %v vs %v (%v / %v)", label, resA.Reason, resB.Reason, resA.Err, resB.Err)
	}
	if (resA.Fault == nil) != (resB.Fault == nil) {
		t.Errorf("%s: fault presence %v vs %v", label, resA.Fault, resB.Fault)
	} else if resA.Fault != nil && *resA.Fault != *resB.Fault {
		t.Errorf("%s: fault %+v vs %+v", label, resA.Fault, resB.Fault)
	}
	if a, b := hA.m.Instructions(), hB.m.Instructions(); a != b {
		t.Errorf("%s: instret %d vs %d", label, a, b)
	}
	if a, b := hA.m.Clock.Cycles(), hB.m.Clock.Cycles(); a != b {
		t.Errorf("%s: cycles %v vs %v", label, a, b)
	}
	ah, am, af := hA.m.MMU.TLB().Stats()
	bh, bm, bf := hB.m.MMU.TLB().Stats()
	if ah != bh || am != bm || af != bf {
		t.Errorf("%s: TLB stats %d/%d/%d vs %d/%d/%d", label, ah, am, af, bh, bm, bf)
	}
	if a, b := hA.m.MMU.ElidedChecks(), hB.m.MMU.ElidedChecks(); a != b {
		t.Errorf("%s: elided checks %d vs %d", label, a, b)
	}
	if hA.m.Regs != hB.m.Regs {
		t.Errorf("%s: registers %v vs %v", label, hA.m.Regs, hB.m.Regs)
	}
	if hA.m.Flags != hB.m.Flags || hA.m.EIP != hB.m.EIP {
		t.Errorf("%s: flags/eip %+v/%#x vs %+v/%#x", label, hA.m.Flags, hA.m.EIP, hB.m.Flags, hB.m.EIP)
	}
}

// TestTraceEngagesOnHotLoop: the hot loop must actually promote into a
// trace and run through it, with every simulated metric bit-identical
// to the uncached single-step execution.
func TestTraceEngagesOnHotLoop(t *testing.T) {
	hRun, _, resRun := traceExec(t, (*Machine).Run, traceLoopSrc, 4)
	hStep, _, resStep := traceExec(t, stepRun, traceLoopSrc, 4)
	if resRun.Reason != StopBreak {
		t.Fatalf("run stop = %v (%v)", resRun.Reason, resRun.Err)
	}
	ts := hRun.m.TraceStats()
	if ts.Built == 0 || ts.Dispatches == 0 {
		t.Fatalf("trace tier never engaged: %+v", ts)
	}
	if ts.DeoptPage != 0 || ts.DeoptFault != 0 || ts.DeoptTick != 0 {
		t.Errorf("unexpected deopts on a quiet hot loop: %+v", ts)
	}
	traceCompare(t, "hot loop", hRun, hStep, resRun, resStep)
}

// TestTraceSeveredBySetBreak: arming a breakpoint on an instruction
// inside the fused range must invalidate the trace, and the very next
// dispatch must honour the break.
func TestTraceSeveredBySetBreak(t *testing.T) {
	h, syms, res := traceExec(t, (*Machine).Run, traceLoopSrc, 4)
	if res.Reason != StopBreak {
		t.Fatalf("warm run stop = %v", res.Reason)
	}
	if h.m.TraceStats().Dispatches == 0 {
		t.Fatal("warm run never dispatched a trace")
	}
	h.m.SetBreak(syms["loop"])
	if got := h.m.TraceStats().Invalidated; got == 0 {
		t.Fatalf("SetBreak inside fused range invalidated no trace: %+v", h.m.TraceStats())
	}
	h.m.EIP = syms["entry"]
	res = h.m.Run(RunLimits{})
	if res.Reason != StopBreak || h.m.EIP != syms["loop"] {
		t.Fatalf("break inside former trace not honoured: %v at %#x, want %#x",
			res.Reason, h.m.EIP, syms["loop"])
	}
}

// TestTraceTickDeoptParity: timer deadlines landing mid-trace must
// deoptimize to the identical tick points — same tick count, same
// clock readings, same instret — as single-stepping, across a fan of
// tick granularities.
func TestTraceTickDeoptParity(t *testing.T) {
	var sawDeoptTick bool
	for _, tick := range []float64{75, 150, 400, 1000} {
		exec := func(runner func(*Machine, RunLimits) RunResult) (*harness, RunResult, int) {
			h := newHarness(t)
			syms := h.install(0x0001_0000, traceLoopSrc)
			h.startUser(syms["entry"])
			h.m.SetBreak(syms["stop"])
			h.m.TraceThreshold = 4
			ticks := 0
			h.m.TickCycles = tick
			h.m.OnTick = func(*Machine) error { ticks++; return nil }
			res := runner(h.m, RunLimits{})
			return h, res, ticks
		}
		hRun, resRun, ticksRun := exec((*Machine).Run)
		hStep, resStep, ticksStep := exec(stepRun)
		if ticksRun != ticksStep {
			t.Errorf("tick=%v: ticks %d vs %d", tick, ticksRun, ticksStep)
		}
		traceCompare(t, "tick parity", hRun, hStep, resRun, resStep)
		ts := hRun.m.TraceStats()
		if ts.Dispatches == 0 {
			t.Errorf("tick=%v: trace tier never engaged under ticking: %+v", tick, ts)
		}
		if ts.DeoptTick > 0 {
			sawDeoptTick = true
		}
	}
	if !sawDeoptTick {
		t.Error("no tick granularity ever deoptimized mid-trace; deadline batching untested")
	}
}

// TestTraceFaultAtEachPosition: a memory operand faulting at each
// fused position — first store, load, read-modify-write, and a
// segment-limit violation — must commit the partial architectural
// state and the fault identity exactly as single-stepping does.
func TestTraceFaultAtEachPosition(t *testing.T) {
	const src = `
		entry:
			mov ecx, 400
		loop:
			mov [esi], ecx
			mov eax, [edi]
			add [edx], ecx
			dec ecx
			jne loop
		stop:
			nop
		.data
		buf: .long 0
		.space 12
	`
	poisons := []struct {
		name string
		reg  isa.Reg
		addr uint32
	}{
		{"store-pf", isa.ESI, 0x00F0_0000}, // unmapped page: PF at position 0
		{"load-pf", isa.EDI, 0x00F0_0000},  // unmapped page: PF at position 1
		{"rmw-pf", isa.EDX, 0x00F0_0000},   // unmapped page: PF at position 2
		{"store-gp", isa.ESI, 0xFFFF_0000}, // beyond segment limit: GP at position 0
	}
	for _, p := range poisons {
		t.Run(p.name, func(t *testing.T) {
			exec := func(runner func(*Machine, RunLimits) RunResult) (*harness, RunResult) {
				h := newHarness(t)
				syms := h.install(0x0001_0000, src)
				h.startUser(syms["entry"])
				h.m.SetBreak(syms["stop"])
				h.m.TraceThreshold = 4
				for _, r := range []isa.Reg{isa.ESI, isa.EDI, isa.EDX} {
					h.m.Regs[r] = syms["buf"]
				}
				// Warm up: enough iterations to build and dispatch the
				// trace, stopped on a budget mid-loop.
				warm := runner(h.m, RunLimits{MaxInstructions: 600})
				if warm.Reason != StopBudget {
					t.Fatalf("warmup stop = %v", warm.Reason)
				}
				// Poison one operand register and resume: the next pass
				// over the poisoned position must fault.
				h.m.Regs[p.reg] = p.addr
				res := runner(h.m, RunLimits{})
				return h, res
			}
			hRun, resRun := exec((*Machine).Run)
			hStep, resStep := exec(stepRun)
			if resRun.Reason != StopFault {
				t.Fatalf("poisoned run stop = %v (%v), want fault", resRun.Reason, resRun.Err)
			}
			if hRun.m.TraceStats().Dispatches == 0 {
				t.Fatal("poisoned run never dispatched a trace")
			}
			if hRun.m.TraceStats().DeoptFault == 0 {
				t.Fatal("fault did not deoptimize a trace (struck outside the fused body?)")
			}
			traceCompare(t, p.name, hRun, hStep, resRun, resStep)
		})
	}
}

// TestTracePagingEventsMidTrace: CR3 reloads and page invalidations
// fired from the tick hook while traces are hot must stay bit-identical
// to single-stepping (the trace entry check redirects through the
// uncached path and the trace follows remaps lazily, as tier 2 does).
func TestTracePagingEventsMidTrace(t *testing.T) {
	exec := func(runner func(*Machine, RunLimits) RunResult) (*harness, RunResult) {
		h := newHarness(t)
		syms := h.install(0x0001_0000, traceLoopSrc)
		h.startUser(syms["entry"])
		h.m.SetBreak(syms["stop"])
		h.m.TraceThreshold = 4
		n := 0
		h.m.TickCycles = 120
		h.m.OnTick = func(m *Machine) error {
			if n%2 == 0 {
				m.MMU.LoadCR3(h.as)
			} else {
				m.MMU.InvalidatePage(syms["scratch"])
			}
			n++
			return nil
		}
		res := runner(h.m, RunLimits{})
		return h, res
	}
	hRun, resRun := exec((*Machine).Run)
	hStep, resStep := exec(stepRun)
	if hRun.m.TraceStats().Dispatches == 0 {
		t.Fatalf("trace tier never engaged under paging events: %+v", hRun.m.TraceStats())
	}
	traceCompare(t, "paging events", hRun, hStep, resRun, resStep)
}

// TestSnapshotRestoreRebuildsTraces: snapshots never capture traces;
// a restored machine re-detects heat, rebuilds, and finishes with
// every simulated metric bit-identical to an uninterrupted run.
func TestSnapshotRestoreRebuildsTraces(t *testing.T) {
	build := func() (*harness, map[string]uint32) {
		h := newHarness(t)
		syms := h.install(0x0001_0000, traceLoopSrc)
		h.startUser(syms["entry"])
		h.m.SetBreak(syms["stop"])
		h.m.TraceThreshold = 4
		return h, syms
	}

	ref, _ := build()
	refStop := ref.m.Run(RunLimits{})
	if refStop.Reason != StopBreak {
		t.Fatalf("reference stop = %v", refStop.Reason)
	}
	if ref.m.TraceStats().Dispatches == 0 {
		t.Fatal("reference run never dispatched a trace")
	}
	want := capture(ref.m, refStop)

	h, _ := build()
	if mid := h.m.Run(RunLimits{MaxInstructions: 700}); mid.Reason != StopBudget {
		t.Fatalf("mid stop = %v", mid.Reason)
	}
	if h.m.TraceStats().Dispatches == 0 {
		t.Fatal("interrupted run never dispatched a trace before the snapshot")
	}
	snap := h.m.Snapshot()
	defer snap.Release()

	stop1 := h.m.Run(RunLimits{})
	if got := capture(h.m, stop1); got != want {
		t.Errorf("first finish diverged:\n got %+v\nwant %+v", got, want)
	}

	h.m.Restore(snap)
	if n := len(h.m.traces); n != 0 {
		t.Errorf("restore left %d traces live; the registry must be cleared", n)
	}
	before := h.m.TraceStats().Built
	stop2 := h.m.Run(RunLimits{})
	if got := capture(h.m, stop2); got != want {
		t.Errorf("post-restore finish diverged:\n got %+v\nwant %+v", got, want)
	}
	if h.m.TraceStats().Built == before {
		t.Error("post-restore run never rebuilt a trace")
	}
}

// TestCloneCarriesTraceTier: a cloned machine inherits the trace
// threshold (the tier must not silently disable on clones) and builds
// its own traces, with metrics identical to the source running the
// same program.
func TestCloneCarriesTraceTier(t *testing.T) {
	h := newHarness(t)
	syms := h.install(0x0001_0000, traceLoopSrc)
	h.startUser(syms["entry"])
	h.m.SetBreak(syms["stop"])
	h.m.TraceThreshold = 4
	m := h.m

	phys2 := m.Phys.Clone()
	clock2 := m.Clock.Clone()
	mu2 := m.MMU.Clone(phys2, clock2)
	mu2.AdoptSpace(mmu.AdoptAddressSpace(phys2, h.alloc.Clone(), h.as.CR3()))
	m2 := m.Clone(phys2, mu2, clock2)

	if m2.TraceThreshold != m.TraceThreshold {
		t.Fatalf("clone TraceThreshold = %d, want %d", m2.TraceThreshold, m.TraceThreshold)
	}
	if res := m.Run(RunLimits{}); res.Reason != StopBreak {
		t.Fatalf("source run: %v", res.Reason)
	}
	if res := m2.Run(RunLimits{}); res.Reason != StopBreak {
		t.Fatalf("clone run: %v", res.Reason)
	}
	if m2.TraceStats().Dispatches == 0 {
		t.Errorf("clone never dispatched a trace: %+v", m2.TraceStats())
	}
	if m.Instructions() != m2.Instructions() || m.Clock.Cycles() != m2.Clock.Cycles() {
		t.Errorf("counters diverged: %d/%v vs %d/%v",
			m.Instructions(), m.Clock.Cycles(), m2.Instructions(), m2.Clock.Cycles())
	}
	if m.Regs != m2.Regs {
		t.Errorf("registers diverged: %v vs %v", m.Regs, m2.Regs)
	}
}

// TestTraceOpKitchenSinkParity drives every fusable micro-op form —
// all MOV/ALU/unary/shift/IMUL/XCHG addressing modes, immediate and
// memory push/pop, calls into a fused leaf, byte accesses — through a
// hot loop at a hair-trigger threshold and demands bit-identity with
// single-stepping.
func TestTraceOpKitchenSinkParity(t *testing.T) {
	const src = `
		entry:
			mov ecx, 120
		loop:
			mov eax, 4660
			mov ebx, eax
			movb edx, [bytes]
			movb [bytes+1], edx
			mov [scratch], eax
			mov [scratch+4], 99
			mov edi, [scratch]
			lea eax, [scratch+8]
			add eax, ebx
			sub eax, 3
			and eax, [mask]
			or [scratch], ebx
			xor [scratch], 5
			cmp eax, ebx
			test eax, 1
			inc eax
			dec ebx
			neg edx
			not edi
			inc [scratch+4]
			shl eax, 3
			shr ebx, 2
			sar edx, 1
			shl [scratch], 1
			imul eax, ebx
			imul ebx, 3
			imul edx, [mask]
			xchg eax, ebx
			xchg eax, [scratch]
			xchg [scratch+4], ebx
			push eax
			push 42
			push [scratch]
			pop eax
			pop [scratch+8]
			pop ebx
			call leaffn
			dec ecx
			jne loop
		stop:
			nop
		leaffn:
			inc esi
			ret
		.data
		bytes: .byte 1, 2, 3, 4
		scratch: .long 0
		.space 8
		mask: .long 255
	`
	hRun, _, resRun := traceExec(t, (*Machine).Run, src, 3)
	hStep, _, resStep := traceExec(t, stepRun, src, 3)
	if resRun.Reason != StopBreak {
		t.Fatalf("run stop = %v (%v)", resRun.Reason, resRun.Err)
	}
	ts := hRun.m.TraceStats()
	if ts.Built == 0 || ts.Dispatches == 0 {
		t.Fatalf("kitchen-sink loop never promoted: %+v", ts)
	}
	traceCompare(t, "kitchen sink", hRun, hStep, resRun, resStep)
}

// TestTraceJccBothDirectionsParity covers every conditional branch
// through the trace tier in both the trace-followed and side-exit
// directions: each jcc gates on a value that alternates per iteration,
// so a fused trace built along one direction must side-exit on the
// other, bit-identically to single-stepping.
func TestTraceJccBothDirectionsParity(t *testing.T) {
	for _, cc := range []string{"je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae", "js", "jns"} {
		t.Run(cc, func(t *testing.T) {
			src := `
		entry:
			mov ecx, 200
		loop:
			mov eax, ecx
			and eax, 3
			sub eax, 2
			` + cc + ` taken
			add ebx, 1
			jmp next
		taken:
			add edx, 1
		next:
			dec ecx
			jne loop
		stop:
			nop
	`
			hRun, _, resRun := traceExec(t, (*Machine).Run, src, 3)
			hStep, _, resStep := traceExec(t, stepRun, src, 3)
			if hRun.m.TraceStats().Dispatches == 0 {
				t.Fatalf("%s loop never promoted: %+v", cc, hRun.m.TraceStats())
			}
			traceCompare(t, cc, hRun, hStep, resRun, resStep)
		})
	}
}
