// Package rpc models the two IPC baselines the paper compares against:
//
//   - Linux socket-based RPC between a client and a server process on
//     the same machine (Table 2's "Linux RPC" column) — "socket-based
//     and not optimized for intra-machine RPC";
//   - an L4-style optimized IPC (Section 5.1's comparison: 242 cycles
//     best case for a request-reply, four protection-domain crossings
//     versus Palladium's two).
//
// Both are cost models charged to the shared simulated clock, composed
// from the same kernel primitives Palladium's accounting uses (system
// call entries, context switches with their TLB flushes, per-byte
// copies). The paper's comparator is the stock Linux RPC facility, so
// the stack-processing constants are calibrated against its Table 2
// measurements: about 349 microseconds for a 32-byte round trip,
// growing to about 423 microseconds at 256 bytes.
package rpc

import (
	"repro/internal/cycles"
	"repro/internal/kernel"
)

// Costs holds the RPC path constants (cycles).
type Costs struct {
	// StubOverhead is the client+server RPC library work per call:
	// XDR marshaling setup, select/poll dispatch, stub glue.
	StubOverhead float64
	// SocketSyscall is the kernel socket write/read path beyond the
	// bare trap: fd lookup, buffer management, wakeups.
	SocketSyscall float64
	// TCPSegment is per-message TCP/IP processing (header build,
	// checksum setup, loopback delivery).
	TCPSegment float64
	// Wakeup is scheduler wakeup + run-queue latency per handoff.
	Wakeup float64
	// PerByte is the per-byte cost across all copies and checksums
	// (user->kernel, kernel->user on each side, marshal/unmarshal).
	PerByte float64
}

// DefaultCosts is calibrated against Table 2 (see EXPERIMENTS.md):
// the fixed path sums to about 67,700 cycles per round trip and the
// per-byte slope to about 66 cycles per payload byte, reproducing the
// 349.19 us (32 B) to 423.33 us (256 B) figures at 200 MHz.
func DefaultCosts() Costs {
	return Costs{
		StubOverhead:  19_796,
		SocketSyscall: 3_200,
		TCPSegment:    4_600,
		Wakeup:        1_800,
		PerByte:       33.1,
	}
}

// Loopback is a same-machine socket RPC channel between two simulated
// processes.
type Loopback struct {
	K      *kernel.Kernel
	Costs  Costs
	Client *kernel.Process
	Server *kernel.Process
}

// NewLoopback builds the client/server process pair.
func NewLoopback(k *kernel.Kernel) (*Loopback, error) {
	c, err := k.CreateProcess()
	if err != nil {
		return nil, err
	}
	s, err := k.Fork(c)
	if err != nil {
		return nil, err
	}
	return &Loopback{K: k, Costs: DefaultCosts(), Client: c, Server: s}, nil
}

// oneWay prices one message of n bytes from one process to the other:
// send syscall, TCP processing, copies, wakeup, context switch to the
// peer, receive syscall.
func (l *Loopback) oneWay(n int, to *kernel.Process) {
	k, c := l.K, l.Costs
	// Sender: write() on the socket.
	k.Clock.Add(k.Costs.SyscallEntry + k.Costs.SyscallExit)
	k.Clock.Charge(k.Model, cycles.IntGate)
	k.Clock.Charge(k.Model, cycles.IretInter)
	k.Clock.Add(c.SocketSyscall + c.TCPSegment)
	k.Clock.Add(c.PerByte * float64(n) / 2)
	// Handoff: wakeup + context switch (CR3 load flushes the TLB —
	// the cost Palladium's intra-address-space design never pays).
	k.Clock.Add(c.Wakeup)
	k.Switch(to)
	// Receiver: read() returns the data.
	k.Clock.Add(k.Costs.SyscallEntry + k.Costs.SyscallExit)
	k.Clock.Charge(k.Model, cycles.IntGate)
	k.Clock.Charge(k.Model, cycles.IretInter)
	k.Clock.Add(c.SocketSyscall)
	k.Clock.Add(c.PerByte * float64(n) / 2)
}

// Call performs a request-reply RPC carrying reqBytes out and
// respBytes back, plus serverWork cycles of server-side processing.
// It returns the total cycles consumed.
func (l *Loopback) Call(reqBytes, respBytes int, serverWork float64) float64 {
	start := l.K.Clock.Cycles()
	l.K.Clock.Add(l.Costs.StubOverhead) // client stub + marshal
	l.oneWay(reqBytes, l.Server)
	l.K.Clock.Add(l.Costs.StubOverhead) // server stub + dispatch
	l.K.Clock.Add(serverWork)
	l.oneWay(respBytes, l.Client)
	return l.K.Clock.Cycles() - start
}

// L4Costs prices an L4-style optimized same-machine IPC: no page-table
// switch (segment-register reload instead), register-carried payload,
// but still four protection-domain crossings per request-reply.
type L4Costs struct {
	// Crossing is one protection-domain crossing on the optimized
	// path.
	Crossing float64
	// FixedPerRoundTrip is the remaining per-round-trip work
	// (segment reload, thread switch bookkeeping).
	FixedPerRoundTrip float64
}

// DefaultL4Costs reproduces the paper's 242-cycle best case.
func DefaultL4Costs() L4Costs {
	return L4Costs{Crossing: 53, FixedPerRoundTrip: 30}
}

// L4 is the L4-style IPC baseline.
type L4 struct {
	Clock *cycles.Clock
	Costs L4Costs
}

// NewL4 returns the baseline bound to a clock.
func NewL4(clock *cycles.Clock) *L4 {
	return &L4{Clock: clock, Costs: DefaultL4Costs()}
}

// Call prices one request-reply: four crossings plus the fixed work.
// Palladium's protected call makes two crossings (one lret, one
// lcall); this is the structural difference Section 5.1 highlights.
func (l *L4) Call() float64 {
	start := l.Clock.Cycles()
	l.Clock.Add(4*l.Costs.Crossing + l.Costs.FixedPerRoundTrip)
	return l.Clock.Cycles() - start
}

// Crossings reports the crossings per round trip for the comparison
// tables.
func (l *L4) Crossings() int { return 4 }
