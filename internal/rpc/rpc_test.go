package rpc

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/kernel"
)

func newLoop(t *testing.T) *Loopback {
	t.Helper()
	k, err := kernel.New(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoopback(k)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTable2RPCAnchors(t *testing.T) {
	// Table 2: Linux RPC for the string-reverse server: 349.19 us at
	// 32 bytes rising to 423.33 us at 256 bytes. Accept +-10%.
	l := newLoop(t)
	cases := []struct {
		n    int
		want float64 // microseconds
	}{
		{32, 349.19},
		{64, 352.55},
		{128, 374.20},
		{256, 423.33},
	}
	for _, c := range cases {
		cyc := l.Call(c.n, c.n, 0)
		us := l.K.Clock.Micros(cyc)
		if us < c.want*0.9 || us > c.want*1.1 {
			t.Errorf("RPC %dB = %.2f us, paper %.2f us", c.n, us, c.want)
		}
	}
}

func TestRPCMonotoneInSize(t *testing.T) {
	l := newLoop(t)
	prev := 0.0
	for _, n := range []int{16, 64, 256, 1024} {
		c := l.Call(n, n, 0)
		if c <= prev {
			t.Errorf("RPC cost not monotone at %dB: %v <= %v", n, c, prev)
		}
		prev = c
	}
}

func TestRPCIncludesContextSwitchesAndTLBFlushes(t *testing.T) {
	l := newLoop(t)
	_, _, before := l.K.MMU.TLB().Stats()
	l.Call(32, 32, 0)
	_, _, after := l.K.MMU.TLB().Stats()
	if after-before < 2 {
		t.Errorf("RPC round trip flushed the TLB %d times, want >= 2 (one per direction)", after-before)
	}
}

func TestRPCServerWorkAdds(t *testing.T) {
	l := newLoop(t)
	base := l.Call(32, 32, 0)
	withWork := l.Call(32, 32, 5000)
	if diff := withWork - base; diff < 4999 || diff > 5001 {
		t.Errorf("server work delta = %v, want ~5000", diff)
	}
}

func TestL4BestCaseAnchor(t *testing.T) {
	// Section 5.1: 242 cycles for an L4 request-reply best case.
	l4 := NewL4(cycles.NewClock(200))
	if got := l4.Call(); got != 242 {
		t.Errorf("L4 round trip = %v cycles, paper 242", got)
	}
	if l4.Crossings() != 4 {
		t.Error("L4 makes four crossings per round trip")
	}
}

func TestPalladiumFasterThanL4ByAbout100Cycles(t *testing.T) {
	// "Palladium as measured on the Linux kernel is faster than the
	// best case of L4 by 100 cycles": 242 - 142 = 100.
	l4 := NewL4(cycles.NewClock(200))
	const palladiumProtectedCall = 142 // Table 1
	if diff := l4.Call() - palladiumProtectedCall; diff != 100 {
		t.Errorf("L4 - Palladium = %v cycles, paper 100", diff)
	}
}
