package isa

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Assemble translates assembly source into a relocatable Object.
//
// Syntax (Intel-ish, one instruction per line, ';' or '#' comments):
//
//	.text
//	strrev:                     ; labels end with ':'
//	    push ebp
//	    mov ebp, esp
//	    mov eax, [ebp+8]        ; memory operands: [base+index*scale+disp]
//	    movb ecx, [eax+2]       ; 'b' suffix: byte-sized access
//	    cmp ecx, 0
//	    je done
//	    lcall 0x43              ; far call through a call gate selector
//	    int 0x80                ; software interrupt
//	done:
//	    pop ebp
//	    ret
//	.data
//	buf:  .space 64
//	msg:  .asciz "hi"
//	tab:  .word 1, 2, labelref  ; 32-bit words; symbols relocate
//	.global strrev
//
// All symbolic references (branch targets, [sym+off] operands, bare
// symbol immediates such as `push Transfer`) are emitted as
// relocations and patched by the loader with absolute virtual
// addresses.
func Assemble(name, src string) (*Object, error) {
	a := &assembler{
		obj: &Object{Name: name, Symbols: make(map[string]*Symbol)},
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.obj, nil
}

// asmCache memoizes MustAssemble: the built-in sources (stubs, libc,
// the benchmark extensions) are re-assembled on every machine boot,
// which boot-heavy drivers (Table 3 cells, fleets) repeat hundreds of
// times. Entries are immutable templates; MustAssemble returns a deep
// Clone so callers may relocate freely. Concurrent boots (fleet
// workers) share the cache, hence the RWMutex. The cache is bounded:
// a long-lived process feeding it unbounded distinct sources (e.g.
// per-client compiled filters) wholesale-resets it at the cap rather
// than growing without limit — recurring sources simply re-memoize.
const asmCacheMax = 512

var asmCache = struct {
	sync.RWMutex
	m map[string]*Object
}{m: make(map[string]*Object)}

// AssembleCached is Assemble memoized by (name, source); the returned
// object is a fresh deep copy each call, so callers may relocate it
// freely. Use it for sources that recur across boots (built-ins,
// generated stubs); one-off sources should use Assemble.
func AssembleCached(name, src string) (*Object, error) {
	key := name + "\x00" + src
	asmCache.RLock()
	tmpl := asmCache.m[key]
	asmCache.RUnlock()
	if tmpl == nil {
		o, err := Assemble(name, src)
		if err != nil {
			return nil, err
		}
		asmCache.Lock()
		if len(asmCache.m) >= asmCacheMax {
			clear(asmCache.m)
		}
		asmCache.m[key] = o
		asmCache.Unlock()
		tmpl = o
	}
	return tmpl.Clone(), nil
}

// MustAssemble is AssembleCached for known-good built-in sources; it
// panics on error.
func MustAssemble(name, src string) *Object {
	o, err := AssembleCached(name, src)
	if err != nil {
		panic(fmt.Sprintf("isa: assembling %s: %v", name, err))
	}
	return o
}

type assembler struct {
	obj     *Object
	section Section
	lineNo  int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", a.obj.Name, a.lineNo, fmt.Sprintf(format, args...))
}

func (a *assembler) run(src string) error {
	a.section = SecText
	for _, raw := range strings.Split(src, "\n") {
		a.lineNo++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly several, possibly followed by code.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t[\",") {
				break
			}
			if err := a.defineLabel(strings.TrimSpace(line[:i])); err != nil {
				return err
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) defineLabel(name string) error {
	if name == "" {
		return a.errf("empty label")
	}
	if s, ok := a.obj.Symbols[name]; ok && s.Section != SecUndef {
		return a.errf("duplicate label %q", name)
	}
	var off uint32
	switch a.section {
	case SecText:
		off = uint32(len(a.obj.Text)) * InstrSlot
	case SecData:
		off = uint32(len(a.obj.Data))
	case SecBSS:
		off = a.obj.BSSSize
	}
	prev := a.obj.Symbols[name]
	global := prev != nil && prev.Global
	a.obj.Symbols[name] = &Symbol{Name: name, Section: a.section, Off: off, Global: global}
	return nil
}

func (a *assembler) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.section = SecText
	case ".data":
		a.section = SecData
	case ".bss":
		a.section = SecBSS
	case ".global", ".globl":
		for _, n := range splitOperands(rest) {
			if s, ok := a.obj.Symbols[n]; ok {
				s.Global = true
			} else {
				a.obj.Symbols[n] = &Symbol{Name: n, Section: SecUndef, Global: true}
			}
		}
	case ".extern":
		for _, n := range splitOperands(rest) {
			if _, ok := a.obj.Symbols[n]; !ok {
				a.obj.Symbols[n] = &Symbol{Name: n, Section: SecUndef}
			}
		}
	case ".space", ".skip":
		n, err := parseNumber(rest)
		if err != nil {
			return a.errf(".space: %v", err)
		}
		switch a.section {
		case SecData:
			a.obj.Data = append(a.obj.Data, make([]byte, n)...)
		case SecBSS:
			a.obj.BSSSize += uint32(n)
		default:
			return a.errf(".space outside .data/.bss")
		}
	case ".word", ".long":
		if a.section != SecData {
			return a.errf(".word outside .data")
		}
		for _, tok := range splitOperands(rest) {
			if v, err := parseNumber(tok); err == nil {
				a.appendWord(uint32(v))
			} else {
				// Symbolic word: relocate.
				a.obj.Relocs = append(a.obj.Relocs, Reloc{
					Slot: RelData, Index: len(a.obj.Data), Sym: tok,
				})
				a.appendWord(0)
			}
		}
	case ".byte":
		if a.section != SecData {
			return a.errf(".byte outside .data")
		}
		for _, tok := range splitOperands(rest) {
			v, err := parseNumber(tok)
			if err != nil {
				return a.errf(".byte: %v", err)
			}
			a.obj.Data = append(a.obj.Data, byte(v))
		}
	case ".asciz", ".string":
		if a.section != SecData {
			return a.errf(".asciz outside .data")
		}
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(".asciz: %v", err)
		}
		a.obj.Data = append(a.obj.Data, []byte(s)...)
		a.obj.Data = append(a.obj.Data, 0)
	case ".align":
		n, err := parseNumber(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(".align: need a power of two")
		}
		switch a.section {
		case SecData:
			for len(a.obj.Data)%int(n) != 0 {
				a.obj.Data = append(a.obj.Data, 0)
			}
		case SecBSS:
			for a.obj.BSSSize%uint32(n) != 0 {
				a.obj.BSSSize++
			}
		case SecText:
			for (uint32(len(a.obj.Text))*InstrSlot)%uint32(n) != 0 {
				a.obj.Text = append(a.obj.Text, Instr{Op: NOP, Size: 4})
			}
		}
	default:
		return a.errf("unknown directive %s", dir)
	}
	return nil
}

func (a *assembler) appendWord(v uint32) {
	a.obj.Data = append(a.obj.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

var mnemonics = map[string]Op{}

func init() {
	for op := NOP; op < numOps; op++ {
		mnemonics[op.String()] = op
	}
}

// byteSuffixable lists opcodes that accept the 'b' size suffix.
var byteSuffixable = map[Op]bool{
	MOV: true, CMP: true, ADD: true, SUB: true, AND: true, OR: true,
	XOR: true, TEST: true, INC: true, DEC: true,
}

func (a *assembler) instruction(line string) error {
	if a.section != SecText {
		return a.errf("instruction outside .text")
	}
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	size := uint8(4)
	op, ok := mnemonics[mnemonic]
	if !ok && strings.HasSuffix(mnemonic, "b") {
		if base, ok2 := mnemonics[strings.TrimSuffix(mnemonic, "b")]; ok2 && byteSuffixable[base] {
			op, ok, size = base, true, 1
		}
	}
	if !ok {
		return a.errf("unknown mnemonic %q", mnemonic)
	}
	idx := len(a.obj.Text)
	ins := Instr{Op: op, Size: size}
	operands := splitOperands(rest)

	parse := func(tok string, slotDisp, slotImm RelocSlot) (Operand, error) {
		o, sym, addend, err := a.parseOperand(tok)
		if err != nil {
			return o, err
		}
		if sym != "" {
			slot := slotImm
			if o.Kind == KindMem {
				slot = slotDisp
			}
			a.obj.Relocs = append(a.obj.Relocs, Reloc{Slot: slot, Index: idx, Sym: sym, Addend: addend})
			a.noteExtern(sym)
		}
		return o, nil
	}

	var err error
	switch len(operands) {
	case 0:
	case 1:
		ins.Dst, err = parse(operands[0], RelDstDisp, RelDstImm)
	case 2:
		if ins.Dst, err = parse(operands[0], RelDstDisp, RelDstImm); err == nil {
			ins.Src, err = parse(operands[1], RelSrcDisp, RelSrcImm)
		}
	default:
		return a.errf("too many operands")
	}
	if err != nil {
		return err
	}
	if err := validate(&ins); err != nil {
		return a.errf("%s: %v", line, err)
	}
	a.obj.Text = append(a.obj.Text, ins)
	return nil
}

func (a *assembler) noteExtern(sym string) {
	if _, ok := a.obj.Symbols[sym]; !ok {
		a.obj.Symbols[sym] = &Symbol{Name: sym, Section: SecUndef}
	}
}

// parseOperand parses one operand token, returning the operand plus an
// optional symbol reference (with addend) to relocate.
func (a *assembler) parseOperand(tok string) (Operand, string, int32, error) {
	if r, ok := parseReg(tok); ok {
		return R(r), "", 0, nil
	}
	if strings.HasPrefix(tok, "[") {
		if !strings.HasSuffix(tok, "]") {
			return Operand{}, "", 0, a.errf("unterminated memory operand %q", tok)
		}
		return a.parseMem(tok[1 : len(tok)-1])
	}
	if v, err := parseNumber(tok); err == nil {
		return I(int32(v)), "", 0, nil
	}
	// Bare symbol: immediate absolute address (e.g. `push Transfer`).
	sym, addend, err := splitSymAddend(tok)
	if err != nil {
		return Operand{}, "", 0, a.errf("bad operand %q", tok)
	}
	return I(0), sym, addend, nil
}

// parseMem parses the inside of a bracketed memory operand.
func (a *assembler) parseMem(expr string) (Operand, string, int32, error) {
	o := Operand{Kind: KindMem, Base: NoReg, Index: NoReg}
	sym := ""
	var disp int64
	for _, term := range splitTerms(expr) {
		neg := false
		t := term
		if strings.HasPrefix(t, "-") {
			neg, t = true, t[1:]
		}
		switch {
		case t == "":
			return o, "", 0, a.errf("empty term in [%s]", expr)
		case strings.Contains(t, "*"):
			parts := strings.SplitN(t, "*", 2)
			r, ok := parseReg(strings.TrimSpace(parts[0]))
			if !ok || neg {
				return o, "", 0, a.errf("bad index term %q", term)
			}
			s, err := parseNumber(strings.TrimSpace(parts[1]))
			if err != nil || (s != 1 && s != 2 && s != 4 && s != 8) {
				return o, "", 0, a.errf("bad scale in %q", term)
			}
			o.Index, o.Scale = r, uint8(s)
		default:
			if r, ok := parseReg(t); ok {
				if neg {
					return o, "", 0, a.errf("negated register in %q", expr)
				}
				if o.Base == NoReg {
					o.Base = r
				} else if o.Index == NoReg {
					o.Index, o.Scale = r, 1
				} else {
					return o, "", 0, a.errf("too many registers in [%s]", expr)
				}
				continue
			}
			if v, err := parseNumber(t); err == nil {
				if neg {
					v = -v
				}
				disp += v
				continue
			}
			if sym != "" || neg {
				return o, "", 0, a.errf("bad term %q in [%s]", term, expr)
			}
			sym = t
		}
	}
	if disp < -1<<31 || disp > 1<<31-1 {
		return o, "", 0, a.errf("displacement overflow in [%s]", expr)
	}
	if sym != "" {
		// Symbol goes through a relocation; accumulated numeric
		// displacement rides along as the addend.
		return o, sym, int32(disp), nil
	}
	o.Disp = int32(disp)
	return o, "", 0, nil
}

func parseReg(s string) (Reg, bool) {
	switch strings.ToLower(s) {
	case "eax":
		return EAX, true
	case "ecx":
		return ECX, true
	case "edx":
		return EDX, true
	case "ebx":
		return EBX, true
	case "esp":
		return ESP, true
	case "ebp":
		return EBP, true
	case "esi":
		return ESI, true
	case "edi":
		return EDI, true
	}
	return NoReg, false
}

func parseNumber(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		u, err := strconv.Unquote(s)
		if err != nil || len(u) != 1 {
			return 0, fmt.Errorf("bad char literal %s", s)
		}
		return int64(u[0]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// splitSymAddend parses "sym", "sym+4" or "sym-4".
func splitSymAddend(tok string) (string, int32, error) {
	i := strings.IndexAny(tok[1:], "+-")
	if i < 0 {
		if !validSymbol(tok) {
			return "", 0, fmt.Errorf("bad symbol %q", tok)
		}
		return tok, 0, nil
	}
	i++
	sym := tok[:i]
	if !validSymbol(sym) {
		return "", 0, fmt.Errorf("bad symbol %q", sym)
	}
	v, err := parseNumber(tok[i:])
	if err != nil {
		return "", 0, err
	}
	return sym, int32(v), nil
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$', c == '@':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas that are not inside brackets or
// quotes.
func splitOperands(s string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				if t := strings.TrimSpace(s[start:i]); t != "" {
					out = append(out, t)
				}
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

// splitTerms splits a bracket expression on top-level '+' and keeps
// '-' attached to the following term.
func splitTerms(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '+':
			if t := strings.TrimSpace(s[start:i]); t != "" {
				out = append(out, t)
			}
			start = i + 1
		case '-':
			if i > start {
				if t := strings.TrimSpace(s[start:i]); t != "" {
					out = append(out, t)
				}
			}
			start = i // keep the '-'
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

// validate rejects operand combinations the CPU does not implement.
func validate(i *Instr) error {
	nd, ns := i.Dst.Kind, i.Src.Kind
	two := func() error {
		if nd == KindNone || ns == KindNone {
			return fmt.Errorf("needs two operands")
		}
		if nd == KindImm {
			return fmt.Errorf("immediate destination")
		}
		if nd == KindMem && ns == KindMem {
			return fmt.Errorf("memory-to-memory not supported")
		}
		return nil
	}
	one := func() error {
		if nd == KindNone || ns != KindNone {
			return fmt.Errorf("needs one operand")
		}
		return nil
	}
	switch i.Op {
	case MOV, ADD, SUB, AND, OR, XOR, CMP, TEST, XCHG:
		if err := two(); err != nil {
			return err
		}
		if i.Op == XCHG && (nd == KindImm || ns == KindImm) {
			return fmt.Errorf("xchg with immediate")
		}
	case LEA:
		if nd != KindReg || ns != KindMem {
			return fmt.Errorf("lea needs reg, mem")
		}
	case IMUL:
		if nd != KindReg {
			return fmt.Errorf("imul destination must be a register")
		}
	case SHL, SHR, SAR:
		if nd == KindImm || ns != KindImm {
			return fmt.Errorf("shift needs dst, imm")
		}
	case INC, DEC, NEG, NOT:
		if err := one(); err != nil {
			return err
		}
		if nd == KindImm {
			return fmt.Errorf("immediate operand")
		}
	case PUSH:
		return one()
	case POP:
		if err := one(); err != nil {
			return err
		}
		if nd == KindImm {
			return fmt.Errorf("pop immediate")
		}
	case JMP, CALL:
		return one()
	case JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		if err := one(); err != nil {
			return err
		}
		if nd != KindImm {
			return fmt.Errorf("conditional branch target must be a label")
		}
	case LCALL, INT:
		if err := one(); err != nil {
			return err
		}
		if nd != KindImm {
			return fmt.Errorf("%s needs an immediate", i.Op)
		}
	case RET, LRET:
		if nd == KindNone {
			return nil
		}
		if nd != KindImm || ns != KindNone {
			return fmt.Errorf("%s takes an optional immediate", i.Op)
		}
	case IRET, NOP, HLT:
		if nd != KindNone || ns != KindNone {
			return fmt.Errorf("%s takes no operands", i.Op)
		}
	}
	return nil
}
