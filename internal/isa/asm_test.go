package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func assemble(t *testing.T, src string) *Object {
	t.Helper()
	o, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return o
}

func TestBasicInstructions(t *testing.T) {
	o := assemble(t, `
		.text
		mov eax, 42
		mov ebx, eax
		mov ecx, [ebp+8]
		mov [esp-4], edx
		add eax, 1
		cmp eax, ebx
		nop
		hlt
	`)
	if len(o.Text) != 8 {
		t.Fatalf("instruction count = %d, want 8", len(o.Text))
	}
	i0 := o.Text[0]
	if i0.Op != MOV || i0.Dst.Reg != EAX || i0.Src.Kind != KindImm || i0.Src.Imm != 42 {
		t.Errorf("instr 0 = %v", i0)
	}
	i2 := o.Text[2]
	if i2.Src.Kind != KindMem || i2.Src.Base != EBP || i2.Src.Disp != 8 {
		t.Errorf("instr 2 = %v", i2)
	}
	i3 := o.Text[3]
	if i3.Dst.Kind != KindMem || i3.Dst.Base != ESP || i3.Dst.Disp != -4 {
		t.Errorf("instr 3 = %v", i3)
	}
}

func TestScaledIndexOperand(t *testing.T) {
	o := assemble(t, `mov eax, [ebx+ecx*4+12]`)
	op := o.Text[0].Src
	if op.Base != EBX || op.Index != ECX || op.Scale != 4 || op.Disp != 12 {
		t.Errorf("operand = %+v", op)
	}
	o = assemble(t, `mov eax, [ebx+ecx]`)
	op = o.Text[0].Src
	if op.Base != EBX || op.Index != ECX || op.Scale != 1 {
		t.Errorf("two-register operand = %+v", op)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	o := assemble(t, `
		.text
		start:
			dec eax
			jne start
			ret
	`)
	sym := o.Symbol("start")
	if sym == nil || sym.Section != SecText || sym.Off != 0 {
		t.Fatalf("start symbol = %+v", sym)
	}
	// The branch target is a relocation against the label.
	var found bool
	for _, r := range o.Relocs {
		if r.Sym == "start" && r.Index == 1 && r.Slot == RelDstImm {
			found = true
		}
	}
	if !found {
		t.Errorf("missing branch reloc; relocs = %+v", o.Relocs)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	o := assemble(t, `loop: dec eax
		jne loop`)
	if o.Symbol("loop") == nil {
		t.Fatal("label on same line as instruction not recorded")
	}
	if len(o.Text) != 2 {
		t.Fatalf("text = %d instrs, want 2", len(o.Text))
	}
}

func TestDataDirectives(t *testing.T) {
	o := assemble(t, `
		.data
		buf: .space 8
		msg: .asciz "hi"
		val: .word 0x11223344
		tab: .byte 1, 2, 3
	`)
	if got := o.Symbol("buf"); got.Off != 0 {
		t.Errorf("buf at %d", got.Off)
	}
	if got := o.Symbol("msg"); got.Off != 8 {
		t.Errorf("msg at %d", got.Off)
	}
	if string(o.Data[8:10]) != "hi" || o.Data[10] != 0 {
		t.Errorf("asciz bytes = %v", o.Data[8:11])
	}
	if o.Data[11] != 0x44 || o.Data[14] != 0x11 {
		t.Errorf("word bytes = %v", o.Data[11:15])
	}
	if o.Data[15] != 1 || o.Data[17] != 3 {
		t.Errorf("byte list = %v", o.Data[15:18])
	}
}

func TestBSSAndAlign(t *testing.T) {
	o := assemble(t, `
		.data
		a: .byte 1
		.align 4
		b: .word 2
		.bss
		stack: .space 4096
	`)
	if o.Symbol("b").Off != 4 {
		t.Errorf("aligned symbol at %d, want 4", o.Symbol("b").Off)
	}
	if o.BSSSize != 4096 || o.Symbol("stack").Section != SecBSS {
		t.Errorf("bss size = %d, stack = %+v", o.BSSSize, o.Symbol("stack"))
	}
}

func TestSymbolicReferences(t *testing.T) {
	o := assemble(t, `
		.text
		mov eax, [counter]
		mov [counter+4], eax
		push handler
		call strcpy
		.data
		counter: .word 0, 0
	`)
	wantRelocs := map[string]RelocSlot{
		"counter": RelSrcDisp,
		"handler": RelDstImm,
		"strcpy":  RelDstImm,
	}
	got := map[string]bool{}
	for _, r := range o.Relocs {
		got[r.Sym] = true
		if want, ok := wantRelocs[r.Sym]; ok && r.Index == 0 && r.Slot != want {
			t.Errorf("reloc %s slot = %v, want %v", r.Sym, r.Slot, want)
		}
	}
	for s := range wantRelocs {
		if !got[s] {
			t.Errorf("missing reloc for %s", s)
		}
	}
	// counter is defined locally; strcpy/handler are extern.
	ext := o.Externs()
	if len(ext) != 2 {
		t.Errorf("externs = %v, want handler+strcpy", ext)
	}
	// Addend form.
	o = assemble(t, `mov eax, [counter+4]
		.data
		counter: .word 0, 0`)
	if o.Relocs[0].Addend != 4 {
		t.Errorf("addend = %d, want 4", o.Relocs[0].Addend)
	}
}

func TestByteSizedOps(t *testing.T) {
	o := assemble(t, `
		movb ecx, [esi]
		movb [edi], ecx
		cmpb ecx, 0
	`)
	for i, ins := range o.Text {
		if ins.Size != 1 {
			t.Errorf("instr %d size = %d, want 1", i, ins.Size)
		}
	}
}

func TestFarAndTrapOps(t *testing.T) {
	o := assemble(t, `
		lcall 0x43
		lret
		lret 8
		int 0x80
		iret
		ret 12
	`)
	if o.Text[0].Op != LCALL || o.Text[0].Dst.Imm != 0x43 {
		t.Errorf("lcall = %v", o.Text[0])
	}
	if o.Text[2].Dst.Imm != 8 {
		t.Errorf("lret imm = %v", o.Text[2])
	}
	if o.Text[3].Dst.Imm != 0x80 {
		t.Errorf("int = %v", o.Text[3])
	}
	if o.Text[5].Dst.Imm != 12 {
		t.Errorf("ret imm = %v", o.Text[5])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	o := assemble(t, `
		; full-line comment
		# hash comment
		nop  ; trailing
		nop  # trailing hash
	`)
	if len(o.Text) != 2 {
		t.Errorf("instrs = %d, want 2", len(o.Text))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"unknown mnemonic", "bogus eax", "unknown mnemonic"},
		{"imm dest", "mov 4, eax", "immediate destination"},
		{"mem-mem", "mov [eax], [ebx]", "memory-to-memory"},
		{"pop imm", "pop 4", "pop immediate"},
		{"dup label", "x: nop\nx: nop", "duplicate label"},
		{"bad scale", "mov eax, [ebx+ecx*3]", "bad scale"},
		{"instr in data", ".data\nnop", "outside .text"},
		{"word in text", ".word 4", "outside .data"},
		{"bad align", ".data\n.align 3", "power of two"},
		{"unterminated mem", "mov eax, [ebx", "unterminated"},
		{"iret operand", "iret 4", "no operands"},
		{"branch to reg", "je eax", "must be a label"},
		{"too many regs", "mov eax, [ebx+ecx+edx]", "too many registers"},
	}
	for _, c := range cases {
		if _, err := Assemble("t", c.src); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestGlobalDirective(t *testing.T) {
	o := assemble(t, `
		.global fn, other
		.text
		fn: ret
	`)
	if !o.Symbol("fn").Global {
		t.Error("fn should be global")
	}
	if o.Symbol("other").Section != SecUndef {
		t.Error("other should be undefined")
	}
}

func TestClone(t *testing.T) {
	o := assemble(t, `
		.text
		fn: mov eax, [x]
		.data
		x: .word 7
	`)
	c := o.Clone()
	c.Text[0].Src.Disp = 99
	c.Symbols["fn"].Off = 12
	c.Data[0] = 0
	if o.Text[0].Src.Disp == 99 || o.Symbols["fn"].Off == 12 || o.Data[0] == 0 {
		t.Error("Clone must be deep")
	}
}

func TestOperandStringRoundTripProperty(t *testing.T) {
	// Formatting then re-parsing a random register/mem operand
	// preserves it.
	a := &assembler{obj: &Object{Name: "p", Symbols: map[string]*Symbol{}}}
	f := func(baseI, idxI uint8, scaleSel uint8, disp int16) bool {
		base := Reg(baseI % 8)
		idx := Reg(idxI % 8)
		if idx == base {
			return true // ambiguous formatting; skip
		}
		scale := []uint8{1, 2, 4, 8}[scaleSel%4]
		op := MIdx(base, idx, scale, int32(disp))
		parsed, sym, _, err := a.parseOperand(op.String())
		if err != nil || sym != "" {
			return false
		}
		return parsed == op
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInstrStringFormat(t *testing.T) {
	o := assemble(t, "mov eax, [ebx+8]")
	if got := o.Text[0].String(); got != "mov eax, [ebx+8]" {
		t.Errorf("String() = %q", got)
	}
	o = assemble(t, "movb ecx, [esi]")
	if got := o.Text[0].String(); !strings.HasPrefix(got, "movb") {
		t.Errorf("byte-op String() = %q", got)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble must panic on bad source")
		}
	}()
	MustAssemble("bad", "bogus")
}

func TestTextBytes(t *testing.T) {
	o := assemble(t, "nop\nnop\nnop")
	if o.TextBytes() != 3*InstrSlot {
		t.Errorf("TextBytes = %d", o.TextBytes())
	}
}

func TestCharLiteralAndHex(t *testing.T) {
	o := assemble(t, `cmp eax, 'A'
		mov ebx, 0xff`)
	if o.Text[0].Src.Imm != 65 {
		t.Errorf("char literal = %d", o.Text[0].Src.Imm)
	}
	if o.Text[1].Src.Imm != 255 {
		t.Errorf("hex literal = %d", o.Text[1].Src.Imm)
	}
}
