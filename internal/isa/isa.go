// Package isa defines the IA-32-style instruction set executed by the
// simulated CPU, together with a two-pass assembler and a relocatable
// object format. Untrusted code — Palladium extensions, the
// control-transfer stubs of Figure 6, shared-library routines — is
// written in this assembly, so every instruction fetch and data access
// it performs goes through the simulated segmentation and paging
// checks.
//
// Instructions are structured values rather than encoded bytes; each
// occupies a fixed 4-byte slot of the address space so that EIP
// arithmetic, segment limit checks on fetches, and return addresses
// behave as on real hardware.
package isa

import (
	"fmt"
	"strings"
)

// InstrSlot is the number of address-space bytes occupied by one
// instruction.
const InstrSlot = 4

// Reg names a general-purpose 32-bit register, in x86 encoding order.
type Reg uint8

const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	// NoReg marks an absent base/index register in a memory operand.
	NoReg Reg = 0xFF
)

var regNames = map[Reg]string{
	EAX: "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
	ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi",
}

// String returns the register mnemonic.
func (r Reg) String() string {
	if n, ok := regNames[r]; ok {
		return n
	}
	if r == NoReg {
		return "<none>"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an opcode.
type Op uint8

const (
	NOP Op = iota
	MOV
	LEA
	PUSH
	POP
	ADD
	SUB
	AND
	OR
	XOR
	CMP
	TEST
	INC
	DEC
	SHL
	SHR
	SAR
	IMUL
	NEG
	NOT
	XCHG
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	CALL
	RET
	LCALL
	LRET
	INT
	IRET
	HLT
	numOps
)

var opNames = [...]string{
	NOP: "nop", MOV: "mov", LEA: "lea", PUSH: "push", POP: "pop",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	CMP: "cmp", TEST: "test", INC: "inc", DEC: "dec",
	SHL: "shl", SHR: "shr", SAR: "sar", IMUL: "imul",
	NEG: "neg", NOT: "not", XCHG: "xchg",
	JMP: "jmp", JE: "je", JNE: "jne", JL: "jl", JLE: "jle",
	JG: "jg", JGE: "jge", JB: "jb", JBE: "jbe", JA: "ja", JAE: "jae",
	JS: "js", JNS: "jns",
	CALL: "call", RET: "ret", LCALL: "lcall", LRET: "lret",
	INT: "int", IRET: "iret", HLT: "hlt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool { return o >= JE && o <= JNS }

// TransfersControl reports whether executing the opcode can set EIP to
// anything other than the next instruction slot (or stop the machine):
// jumps, conditional branches, calls, returns, gate transfers and HLT.
// Such an instruction ends a straight-line run in the CPU's
// decoded-block cache.
func (o Op) TransfersControl() bool {
	switch o {
	case JMP, CALL, RET, LCALL, LRET, INT, IRET, HLT:
		return true
	}
	return o.IsBranch()
}

// IsFarTransfer reports whether the opcode can change the code segment
// (and therefore the privilege level and the segment base used to form
// linear fetch addresses). Far transfers are never block-chained: the
// successor's linear address cannot be derived from the predecessor's
// cached segment base.
func (o Op) IsFarTransfer() bool {
	switch o {
	case LCALL, LRET, INT, IRET:
		return true
	}
	return false
}

// HasMemOperand reports whether either operand is a memory reference.
func (i *Instr) HasMemOperand() bool {
	return i.Dst.Kind == KindMem || i.Src.Kind == KindMem
}

// OperandKind distinguishes operand classes.
type OperandKind uint8

const (
	// KindNone marks an absent operand.
	KindNone OperandKind = iota
	// KindReg is a general-purpose register.
	KindReg
	// KindImm is an immediate value (also used for resolved branch
	// targets and absolute symbol addresses).
	KindImm
	// KindMem is a memory reference base+index*scale+disp.
	KindMem
)

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Imm   int32
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32

	// Proved/ProvedEnd carry a static-verifier fact for memory
	// operands: every runtime effective address of this operand
	// satisfies addr+size-1 <= ProvedEnd, where ProvedEnd lives in the
	// same address domain as Disp (the loader adds the relocation
	// value to both when it patches the displacement). The tier-2
	// translator may use the fact to elide the segment-limit
	// re-validation on a warm SegProbe; see mmu.TranslateVerified for
	// the re-attestation that keeps the elision sound.
	Proved    bool
	ProvedEnd uint32
}

// R builds a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// I builds an immediate operand.
func I(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// M builds a memory operand base+disp.
func M(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: NoReg, Disp: disp}
}

// MIdx builds a memory operand base+index*scale+disp.
func MIdx(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

// MAbs builds an absolute memory operand.
func MAbs(addr int32) Operand {
	return Operand{Kind: KindMem, Base: NoReg, Index: NoReg, Disp: addr}
}

// String formats the operand in the assembler's syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		var b strings.Builder
		b.WriteByte('[')
		sep := ""
		if o.Base != NoReg {
			b.WriteString(o.Base.String())
			sep = "+"
		}
		if o.Index != NoReg {
			fmt.Fprintf(&b, "%s%s*%d", sep, o.Index, o.Scale)
			sep = "+"
		}
		if o.Disp != 0 || sep == "" {
			if o.Disp < 0 {
				fmt.Fprintf(&b, "%d", o.Disp)
			} else {
				fmt.Fprintf(&b, "%s%d", sep, o.Disp)
			}
		}
		b.WriteByte(']')
		return b.String()
	}
	return "?"
}

// Instr is one decoded instruction. Size is the data width of the
// operation (4 for dword, 1 for byte variants such as movb/cmpb).
type Instr struct {
	Op   Op
	Dst  Operand
	Src  Operand
	Size uint8
}

// String disassembles the instruction.
func (i Instr) String() string {
	suffix := ""
	if i.Size == 1 {
		suffix = "b"
	}
	switch {
	case i.Dst.Kind == KindNone && i.Src.Kind == KindNone:
		return i.Op.String() + suffix
	case i.Src.Kind == KindNone:
		return fmt.Sprintf("%s%s %s", i.Op, suffix, i.Dst)
	default:
		return fmt.Sprintf("%s%s %s, %s", i.Op, suffix, i.Dst, i.Src)
	}
}

// Section identifies an object-file section.
type Section uint8

const (
	// SecText holds instructions.
	SecText Section = iota
	// SecData holds initialized data.
	SecData
	// SecBSS is zero-initialized data (size only).
	SecBSS
	// SecUndef marks an unresolved external symbol.
	SecUndef
)

func (s Section) String() string {
	switch s {
	case SecText:
		return ".text"
	case SecData:
		return ".data"
	case SecBSS:
		return ".bss"
	case SecUndef:
		return "undef"
	}
	return "?"
}

// Symbol is an object-file symbol.
type Symbol struct {
	Name    string
	Section Section
	Off     uint32 // offset within section (byte offset; text symbols are instruction-slot aligned)
	Global  bool
}

// RelocSlot names the patched field of an instruction or data word.
type RelocSlot uint8

const (
	// RelDstDisp patches Dst.Disp (memory operand displacement).
	RelDstDisp RelocSlot = iota
	// RelSrcDisp patches Src.Disp.
	RelSrcDisp
	// RelDstImm patches Dst.Imm.
	RelDstImm
	// RelSrcImm patches Src.Imm.
	RelSrcImm
	// RelData patches a 32-bit word in the data section.
	RelData
)

// Reloc records that a field must be patched with the absolute virtual
// address of Sym (+Addend) at load time. Index is the instruction
// index for text relocations and the byte offset for data relocations.
type Reloc struct {
	Slot   RelocSlot
	Index  int
	Sym    string
	Addend int32
}

// Object is a relocatable unit produced by the assembler and consumed
// by the loader.
type Object struct {
	Name    string
	Text    []Instr
	Data    []byte
	BSSSize uint32
	Symbols map[string]*Symbol
	Relocs  []Reloc
}

// TextBytes returns the address-space size of the text section.
func (o *Object) TextBytes() uint32 { return uint32(len(o.Text)) * InstrSlot }

// Symbol returns the named symbol or nil.
func (o *Object) Symbol(name string) *Symbol { return o.Symbols[name] }

// Clone deep-copies the object so a loader can relocate it without
// mutating the original (objects are templates reused across loads).
func (o *Object) Clone() *Object {
	c := &Object{
		Name:    o.Name,
		Text:    append([]Instr(nil), o.Text...),
		Data:    append([]byte(nil), o.Data...),
		BSSSize: o.BSSSize,
		Symbols: make(map[string]*Symbol, len(o.Symbols)),
		Relocs:  append([]Reloc(nil), o.Relocs...),
	}
	for n, s := range o.Symbols {
		cp := *s
		c.Symbols[n] = &cp
	}
	return c
}

// RenameSymbol renames a symbol and every relocation referencing it,
// reporting whether the symbol existed. Consumers that load many
// instances of one cached template object but need unique global
// names per load (the compiled packet filters' entry points) rename
// after cloning instead of re-assembling.
func (o *Object) RenameSymbol(old, new string) bool {
	s, ok := o.Symbols[old]
	if !ok {
		return false
	}
	s.Name = new
	delete(o.Symbols, old)
	o.Symbols[new] = s
	for i := range o.Relocs {
		if o.Relocs[i].Sym == old {
			o.Relocs[i].Sym = new
		}
	}
	return true
}

// Externs lists the undefined symbols the object references.
func (o *Object) Externs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, r := range o.Relocs {
		if r.Sym == "" || seen[r.Sym] {
			continue
		}
		if s, ok := o.Symbols[r.Sym]; !ok || s.Section == SecUndef {
			seen[r.Sym] = true
			out = append(out, r.Sym)
		}
	}
	return out
}
