// Package lint implements genbumplint, a stdlib-only static check
// (go/parser + go/ast, no external analysis framework) for the MMU's
// generation-bump discipline.
//
// The simulator caches segment-check and translation decisions keyed
// on two generation counters (MMU.SegGen / MMU.TransGen): tier-2
// translated blocks, SegProbe warm hits and the verifier's elided
// checks all stay valid only while their generation matches. Any
// method that mutates generation-guarded state — descriptor-table
// entries, the installed GDT/LDT, the active address space — must
// therefore advance a generation (directly via bumpGen/bumpSegGen,
// or through a mutator that fires one, like Table.Set or
// RestoreEntries) in the same function. A mutation without a bump is
// exactly the kind of bug that silently serves stale translations.
//
// Functions with a deliberate exception carry a directive comment:
//
//	//lint:genbump-exempt <reason>
//
// on the declaration; the reason is mandatory and the exemption is
// reported (so the waiver list stays visible in CI logs).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// guardedFields are the receiver fields whose mutation must be paired
// with a generation bump.
var guardedFields = map[string]bool{
	"entries": true, // descriptor-table contents (Table)
	"GDT":     true, // installed global descriptor table (MMU)
	"LDT":     true, // installed local descriptor table (MMU)
	"space":   true, // active address space / CR3 (MMU)
}

// bumpCalls are the callee names that advance a generation, directly
// or by construction (Table mutators fire onMutate; RestoreEntries
// fires it once; LoadCR3/SetLDT/InvalidatePage bump internally).
var bumpCalls = map[string]bool{
	"bumpGen":        true,
	"bumpSegGen":     true,
	"onMutate":       true,
	"Set":            true,
	"Clear":          true,
	"RestoreEntries": true,
	"LoadCR3":        true,
	"SetLDT":         true,
	"InvalidatePage": true,
}

// exemptDirective marks a reviewed exception; a reason must follow.
const exemptDirective = "//lint:genbump-exempt"

// Finding is one rule violation (or an Exempt waiver being used).
type Finding struct {
	Pos    token.Position
	Func   string
	Fields []string
	// Exempt is set for functions that mutate guarded state under a
	// genbump-exempt directive; Reason carries the directive's text.
	Exempt bool
	Reason string
}

func (f Finding) String() string {
	if f.Exempt {
		return fmt.Sprintf("%s: %s mutates %s without a generation bump (exempt: %s)",
			f.Pos, f.Func, strings.Join(f.Fields, ", "), f.Reason)
	}
	return fmt.Sprintf("%s: %s mutates %s without advancing a generation (call bumpGen/bumpSegGen/onMutate, or add %s <reason>)",
		f.Pos, f.Func, strings.Join(f.Fields, ", "), exemptDirective)
}

// CheckSource lints one file's source text.
func CheckSource(filename, src string) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return checkFile(fset, file), nil
}

// CheckDir lints every non-test Go file in dir.
func CheckDir(dir string) ([]Finding, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fs, err := CheckSource(filepath.Join(dir, name), string(b))
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
			continue // only methods mutate generation-guarded receiver state
		}
		recv := fn.Recv.List[0].Names[0].Name
		mutated := mutatedGuarded(fn.Body, recv)
		if len(mutated) == 0 {
			continue
		}
		if callsBump(fn.Body) {
			continue
		}
		f := Finding{Pos: fset.Position(fn.Pos()), Func: fn.Name.Name, Fields: mutated}
		if reason, ok := exemptReason(fn.Doc); ok {
			f.Exempt, f.Reason = true, reason
		}
		out = append(out, f)
	}
	return out
}

// exemptReason extracts the directive's reason from a doc comment.
func exemptReason(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, exemptDirective); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// mutatedGuarded collects guarded receiver fields the body writes:
// assignments (plain or compound) through a selector path rooted at
// the receiver, and copy() into such a path.
func mutatedGuarded(body *ast.BlockStmt, recv string) []string {
	seen := map[string]bool{}
	record := func(expr ast.Expr) {
		if f, ok := guardedPath(expr, recv); ok {
			seen[f] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(st.X)
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
				record(st.Args[0])
			}
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// guardedPath reports the first guarded field on a selector/index
// path rooted at the receiver identifier. `m.LDT.onMutate = ...`
// matches LDT; `t.entries[i] = d` matches entries; `c.GDT = ...` with
// c not the receiver matches nothing.
func guardedPath(expr ast.Expr, recv string) (string, bool) {
	var fields []string
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			fields = append(fields, e.Sel.Name)
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if e.Name != recv {
				return "", false
			}
			for _, f := range fields {
				if guardedFields[f] {
					return f, true
				}
			}
			return "", false
		default:
			return "", false
		}
	}
}

// callsBump reports whether the body invokes any generation-advancing
// callee (method value assignments like `t.onMutate = ...` do not
// count; only calls do).
func callsBump(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if bumpCalls[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if bumpCalls[fun.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}
