package lint

import (
	"strings"
	"testing"
)

// lintSrc wraps a body of declarations in a package clause and runs
// the check, returning finding strings for easy matching.
func lintSrc(t *testing.T, decls string) []Finding {
	t.Helper()
	fs, err := CheckSource("fixture.go", "package mmu\n\n"+decls)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func TestGenbumpFixtures(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		want  []string // substrings of finding strings, in order
		clean bool
	}{
		{
			name: "mutation with bump is clean",
			src: `func (m *MMU) LoadTable(g Table) {
	m.GDT = g
	m.bumpSegGen()
}`,
			clean: true,
		},
		{
			name: "mutation through a table helper is clean",
			src: `func (t *Table) Install(i int, d Descriptor) {
	t.entries[i] = d
	t.onMutate()
}`,
			clean: true,
		},
		{
			name: "bare mutation is flagged",
			src: `func (m *MMU) swap(s *AddressSpace) {
	m.space = s
}`,
			want: []string{"swap mutates space without advancing a generation"},
		},
		{
			name: "copy into guarded slice is flagged",
			src: `func (t *Table) restore(src []Descriptor) {
	copy(t.entries, src)
}`,
			want: []string{"restore mutates entries"},
		},
		{
			name: "nested selector path is flagged",
			src: `func (m *MMU) rewire(fn func()) {
	m.LDT.onMutate = fn
}`,
			want: []string{"rewire mutates LDT"},
		},
		{
			name: "exempt directive downgrades to waiver",
			src: `// adopt rebinds the space.
//lint:genbump-exempt clone rebinding, tables identical
func (m *MMU) adopt(s *AddressSpace) {
	m.space = s
}`,
			want: []string{"exempt: clone rebinding, tables identical"},
		},
		{
			name: "non-receiver root is ignored",
			src: `func (m *MMU) CloneInto(c *MMU) {
	c.GDT = m.GDT
	c.space = nil
}`,
			clean: true,
		},
		{
			name: "plain function is ignored",
			src: `func reset(m *MMU) {
	m.space = nil
}`,
			clean: true,
		},
		{
			name: "unguarded field is ignored",
			src: `func (m *MMU) charge(n uint64) {
	m.cycles += n
}`,
			clean: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := lintSrc(t, tc.src)
			if tc.clean {
				if len(fs) != 0 {
					t.Fatalf("want no findings, got %v", fs)
				}
				return
			}
			if len(fs) != len(tc.want) {
				t.Fatalf("want %d finding(s), got %v", len(tc.want), fs)
			}
			for i, sub := range tc.want {
				if got := fs[i].String(); !strings.Contains(got, sub) {
					t.Fatalf("finding %d = %q, want substring %q", i, got, sub)
				}
			}
			exempt := strings.HasPrefix(tc.name, "exempt")
			if fs[0].Exempt != exempt {
				t.Fatalf("finding Exempt = %v, want %v", fs[0].Exempt, exempt)
			}
		})
	}
}

// TestGenbumpMMUPackage pins the real package's lint state: the only
// acceptable output is the AdoptSpace waiver (clone rebinding).
func TestGenbumpMMUPackage(t *testing.T) {
	fs, err := CheckDir("../mmu")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if !f.Exempt {
			t.Errorf("violation: %s", f)
		}
	}
	waivers := 0
	for _, f := range fs {
		if f.Exempt {
			waivers++
			if f.Func != "AdoptSpace" {
				t.Errorf("unexpected waiver: %s", f)
			}
		}
	}
	if waivers != 1 {
		t.Errorf("want exactly the AdoptSpace waiver, got %d waiver(s): %v", waivers, fs)
	}
}
