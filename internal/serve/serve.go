// Package serve is the network front end of the reproduction: a real
// HTTP daemon mapping each incoming request to a webserver.ServeRequest
// on a machine of a fleet.Pool, the paper's extensible HTTP/CGI server
// (Table 3) finally put behind a listener.
//
// The tier adds exactly three things around the fleet, in that order:
//
//   - Admission control: a bounded submission queue. A full queue
//     refuses the request immediately — fleet.ErrBackpressure is
//     classified as sandbox.Fault{Class: Backpressure} and surfaces as
//     HTTP 503 with a Retry-After header — instead of queueing callers
//     behind capacity the fleet does not have.
//   - Dispatch: admitted requests go through the pool's balanced
//     submission path; any idle machine steals them.
//   - Autoscaling: a sampler watches queue depth and, while it stays
//     above a per-worker threshold, adds a worker cloned from a
//     pristine template machine (PR 3's clone-boot, so scale-up costs
//     one Clone and the new machine's simulated state is bit-identical
//     to a boot-time worker's).
//
// Observability: per-request simulated and wall-clock latency
// histograms with p50/p99/p999 (/metrics), fleet and interpreter
// counters, and net/http/pprof.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/webserver"
	"repro/sandbox"
)

// Config sizes the serving tier.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// FileSize is the served file size in bytes (default 28, the
	// paper's headline Table 3 row).
	FileSize uint32
	// Workers is the initial fleet size (default 1).
	Workers int
	// MaxWorkers caps autoscaling; <= Workers disables it.
	MaxWorkers int
	// Queue bounds admitted-but-unfinished requests (default
	// 4*max(Workers, MaxWorkers)); beyond it requests get 503.
	Queue int
	// ScaleInterval is the autoscaler's sampling period (default 10ms).
	ScaleInterval time.Duration
	// ScaleUpDepth scales up while inflight > ScaleUpDepth*workers
	// (default 2).
	ScaleUpDepth float64
	// ScaleDownDepth enables scale-down: while the fleet is above its
	// boot size and inflight < ScaleDownDepth*(workers-1), the newest
	// live worker drains and retires. 0 disables scale-down.
	ScaleDownDepth float64
	// ClonePerRequest switches the tier to ephemeral-clone serving:
	// every admitted request runs on a fresh clone forked from the
	// pristine template (pre-forked into a warm pool off the hot path)
	// and discarded — never reused — on completion.
	ClonePerRequest bool
	// WarmClones bounds the pre-forked warm clone pool (default 2;
	// only meaningful with ClonePerRequest).
	WarmClones int
	// RestoreImage, when non-nil, is a webserver.SaveBytes image the
	// template machine is restored from instead of booting fresh — the
	// -restore cold-start path. FileSize is taken from the image.
	RestoreImage []byte
	// DefaultModel names the model serving requests that pass no
	// ?model= (default "libcgi-prot" — the paper's protected serving
	// path).
	DefaultModel string
}

// modelNames maps the ?model= query values to execution models.
var modelNames = map[string]webserver.Model{
	"static":      webserver.Static,
	"cgi":         webserver.CGI,
	"fastcgi":     webserver.FastCGI,
	"libcgi":      webserver.LibCGI,
	"libcgi-prot": webserver.LibCGIProtected,
}

// ParseModel resolves a ?model= query value.
func ParseModel(name string) (webserver.Model, error) {
	m, ok := modelNames[name]
	if !ok {
		known := make([]string, 0, len(modelNames))
		for n := range modelNames {
			known = append(known, n)
		}
		return 0, fmt.Errorf("serve: unknown model %q (have %s)", name, strings.Join(known, ", "))
	}
	return m, nil
}

// workerCounters is a per-worker snapshot of the simulator-internal
// counters, refreshed by the owning worker after every request it
// serves, so /metrics can read them without touching a machine another
// goroutine owns.
type workerCounters struct {
	blockHits, blockBuilds, blockInvalids atomic.Uint64
	chainHits, fastFetches                atomic.Uint64
	traceBuilds, traceDispatches          atomic.Uint64
	traceInvalids, traceDeopts            atomic.Uint64
	tlbHits, tlbMisses, tlbFlushes        atomic.Uint64
}

// Server is the HTTP serving tier over a fleet of web-serving
// machines.
type Server struct {
	cfg          Config
	defaultModel webserver.Model
	pool         *fleet.Pool[*webserver.Server]
	// tmpl is the pristine clone source: it never serves, so every
	// scale-up clone is bit-identical to a boot-time worker.
	tmpl *webserver.Server
	// clones is the warm ephemeral-clone pool (ClonePerRequest mode).
	clones *fleet.ClonePool[*webserver.Server]

	ln net.Listener
	hs *http.Server

	// Request accounting. admitted counts requests accepted into the
	// fleet queue; completed+failed must equal it after a drain —
	// the "no accepted request is ever dropped" invariant.
	admitted   atomic.Uint64
	rejected   atomic.Uint64 // 503s (admission refusals)
	completed  atomic.Uint64
	failed     atomic.Uint64 // admitted but handler returned an error
	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64

	simHist  *Hist // simulated service latency, microseconds
	wallHist *Hist // wall-clock admission-to-completion latency, microseconds

	wmu    sync.RWMutex
	wstats []*workerCounters // indexed by worker; grows with scale-up

	maxWorkers int
	stop       chan struct{}
	stopOnce   sync.Once
	scalerDone chan struct{}
	serveDone  chan struct{}
	mu         sync.Mutex // guards Close transitions
	closed     bool
}

// result carries one request's outcome from the fleet worker back to
// the HTTP handler.
type result struct {
	status    int
	simMicros float64
	err       error
}

// New boots the serving tier: one template machine plus cfg.Workers
// clones of it in the pool. It does not start listening; call Start.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.FileSize == 0 {
		cfg.FileSize = 28
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxWorkers < cfg.Workers {
		cfg.MaxWorkers = cfg.Workers
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.MaxWorkers
	}
	if cfg.ScaleInterval <= 0 {
		cfg.ScaleInterval = 10 * time.Millisecond
	}
	if cfg.ScaleUpDepth <= 0 {
		cfg.ScaleUpDepth = 2
	}
	if cfg.DefaultModel == "" {
		cfg.DefaultModel = "libcgi-prot"
	}
	defaultModel, err := ParseModel(cfg.DefaultModel)
	if err != nil {
		return nil, err
	}

	var tmpl *webserver.Server
	if cfg.RestoreImage != nil {
		tmpl, err = webserver.LoadServerBytes(cfg.RestoreImage)
		if err != nil {
			return nil, fmt.Errorf("serve: restoring template: %w", err)
		}
		cfg.FileSize = tmpl.FileSize
	} else {
		tmpl, err = webserver.BootServer(cfg.FileSize)
		if err != nil {
			return nil, fmt.Errorf("serve: booting template: %w", err)
		}
	}
	// Every worker — boot-time and scaled-up alike — is a clone of the
	// never-serving template, so all workers are bit-identical at
	// birth no matter when they join.
	pool, err := fleet.New(fleet.Config{Workers: cfg.Workers, Queue: cfg.Queue},
		func(int) (*webserver.Server, error) { return tmpl.Clone() })
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		defaultModel: defaultModel,
		pool:         pool,
		tmpl:         tmpl,
		simHist:      &Hist{},
		wallHist:     &Hist{},
		wstats:       make([]*workerCounters, cfg.MaxWorkers),
		maxWorkers:   cfg.MaxWorkers,
		stop:         make(chan struct{}),
		scalerDone:   make(chan struct{}),
		serveDone:    make(chan struct{}),
	}
	for i := range s.wstats {
		s.wstats[i] = &workerCounters{}
	}
	if cfg.ClonePerRequest {
		if cfg.WarmClones <= 0 {
			cfg.WarmClones = 2
		}
		s.cfg.WarmClones = cfg.WarmClones
		// Discarded clones release their frame references so the
		// template's frames never stay falsely shared and the spent
		// clone's private frames are reclaimed.
		s.clones = fleet.NewClonePool(cfg.WarmClones,
			tmpl.Clone,
			func(c *webserver.Server) { c.S.K.Phys.Release() })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleServe)
	mux.HandleFunc("/serve", s.handleServe)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: mux}
	return s, nil
}

// Start binds the listener and serves in the background until Close.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go s.autoscale()
	go func() {
		defer close(s.serveDone)
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Printf("serve: http: %v\n", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (only valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base URL of the daemon.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Workers reports the current fleet size.
func (s *Server) Workers() int { return s.pool.Workers() }

// ScaleUps reports how many workers the autoscaler added.
func (s *Server) ScaleUps() uint64 { return s.scaleUps.Load() }

// Pool exposes the underlying fleet pool (tests reach in to pin
// placement and block workers deterministically).
func (s *Server) Pool() *fleet.Pool[*webserver.Server] { return s.pool }

// Counters is the serving tier's request accounting snapshot.
type Counters struct {
	Admitted, Rejected, Completed, Failed, ScaleUps, ScaleDowns uint64
}

// CountersSnapshot returns the request accounting. After a drain,
// Admitted == Completed + Failed — an admitted request is never
// dropped.
func (s *Server) CountersSnapshot() Counters {
	return Counters{
		Admitted:   s.admitted.Load(),
		Rejected:   s.rejected.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		ScaleUps:   s.scaleUps.Load(),
		ScaleDowns: s.scaleDowns.Load(),
	}
}

// ScaleDowns reports how many workers the autoscaler retired.
func (s *Server) ScaleDowns() uint64 { return s.scaleDowns.Load() }

// CloneStats snapshots the ephemeral-clone pool gauges; ok is false
// when the tier is not in ClonePerRequest mode.
func (s *Server) CloneStats() (st fleet.CloneStats, ok bool) {
	if s.clones == nil {
		return fleet.CloneStats{}, false
	}
	return s.clones.Stats(), true
}

// SimHist and WallHist expose the latency histograms (µs).
func (s *Server) SimHist() *Hist  { return s.simHist }
func (s *Server) WallHist() *Hist { return s.wallHist }

// handleServe maps one HTTP request onto a fleet machine.
func (s *Server) handleServe(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/serve" {
		http.NotFound(w, r)
		return
	}
	model := s.defaultModel
	if name := r.URL.Query().Get("model"); name != "" {
		m, err := ParseModel(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		model = m
	}

	t0 := time.Now()
	done := make(chan result, 1)
	handler := func(wk int, srv *webserver.Server) error {
		before := srv.SimCycles()
		status, err := srv.ServeRequest(model)
		cyc := srv.SimCycles() - before
		s.refreshWorkerCounters(wk, srv)
		done <- result{status: status, simMicros: srv.S.Clock().Micros(cyc), err: err}
		return err
	}
	if s.clones != nil {
		// Ephemeral-clone mode: the fleet still provides admission
		// control and worker concurrency, but the request executes on a
		// fresh clone popped from the warm pool, not on the worker's
		// long-lived machine, and the clone is discarded afterwards.
		handler = func(wk int, _ *webserver.Server) error {
			c, err := s.clones.Take()
			if err != nil {
				done <- result{err: err}
				return err
			}
			before := c.SimCycles()
			status, serr := c.ServeRequest(model)
			cyc := c.SimCycles() - before
			s.refreshWorkerCounters(wk, c)
			res := result{status: status, simMicros: c.S.Clock().Micros(cyc), err: serr}
			// Discard before completing the request, so the pool gauges
			// are settled by the time the response is observable.
			s.clones.Discard(c)
			done <- res
			return serr
		}
	}
	err := s.pool.TrySubmit(handler)
	if err != nil {
		// Queue full (or shutting down): typed backpressure, HTTP 503.
		fault := sandbox.NewFault(sandbox.Backpressure, "serve", "admit", err)
		if errors.Is(err, fleet.ErrClosed) {
			fault = sandbox.NewFault(sandbox.Revoked, "serve", "admit", err)
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set("X-Fault-Class", fault.Class.String())
		http.Error(w, fault.Error(), http.StatusServiceUnavailable)
		return
	}
	s.admitted.Add(1)

	// Admission is final: even if the client goes away, the request
	// runs and is accounted. The buffered channel lets the worker
	// complete without a reader.
	var res result
	select {
	case res = <-done:
	case <-r.Context().Done():
		res = <-done
	}
	wallMicros := time.Since(t0).Microseconds()
	s.wallHist.Record(uint64(wallMicros))
	s.simHist.Record(uint64(res.simMicros))
	if res.err != nil {
		s.failed.Add(1)
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
		return
	}
	s.completed.Add(1)
	w.Header().Set("X-Model", model.String())
	w.Header().Set("X-Sim-Micros", fmt.Sprintf("%.3f", res.simMicros))
	w.Header().Set("X-Wall-Micros", fmt.Sprintf("%d", wallMicros))
	fmt.Fprintf(w, "status=%d model=%q sim_us=%.3f wall_us=%d\n",
		res.status, model.String(), res.simMicros, wallMicros)
}

// refreshWorkerCounters publishes worker wk's simulator counters; it
// runs on the worker goroutine that owns srv, so the reads are safe.
func (s *Server) refreshWorkerCounters(wk int, srv *webserver.Server) {
	s.wmu.RLock()
	var c *workerCounters
	if wk < len(s.wstats) {
		c = s.wstats[wk]
	}
	s.wmu.RUnlock()
	if c == nil {
		return
	}
	hits, builds, invalids := srv.S.K.Machine.BlockCacheStats()
	chains, fast := srv.S.K.Machine.ChainStats()
	ts := srv.S.K.Machine.TraceStats()
	th, tm, tf := srv.S.K.MMU.TLB().Stats()
	c.blockHits.Store(hits)
	c.blockBuilds.Store(builds)
	c.blockInvalids.Store(invalids)
	c.chainHits.Store(chains)
	c.fastFetches.Store(fast)
	c.traceBuilds.Store(ts.Built)
	c.traceDispatches.Store(ts.Dispatches)
	c.traceInvalids.Store(ts.Invalidated)
	c.traceDeopts.Store(ts.DeoptTick + ts.DeoptFault + ts.DeoptPage + ts.DeoptBudget)
	c.tlbHits.Store(th)
	c.tlbMisses.Store(tm)
	c.tlbFlushes.Store(tf)
}

// autoscale samples queue depth every ScaleInterval and adds a cloned
// worker while the backlog exceeds ScaleUpDepth per worker. Scale-up
// is one Clone of the pristine template (PR 3), so a scaled-up
// worker's simulated state is bit-identical to a boot-time worker's.
func (s *Server) autoscale() {
	defer close(s.scalerDone)
	t := time.NewTicker(s.cfg.ScaleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		workers := s.pool.Workers()
		if workers < s.maxWorkers && float64(s.pool.Inflight()) > s.cfg.ScaleUpDepth*float64(workers) {
			if err := s.ScaleUp(); err != nil {
				if !errors.Is(err, fleet.ErrClosed) {
					fmt.Printf("serve: scale-up: %v\n", err)
				}
				return
			}
			continue
		}
		if s.cfg.ScaleDownDepth > 0 && workers > s.cfg.Workers &&
			float64(s.pool.Inflight()) < s.cfg.ScaleDownDepth*float64(workers-1) {
			if err := s.ScaleDown(); err != nil && !errors.Is(err, fleet.ErrClosed) {
				fmt.Printf("serve: scale-down: %v\n", err)
			}
		}
	}
}

// ScaleUp adds one worker cloned from the pristine template. The
// autoscaler calls it on queue pressure; tests call it directly.
func (s *Server) ScaleUp() error {
	clone, err := s.tmpl.Clone()
	if err != nil {
		return err
	}
	w, err := s.pool.AddMachine(clone)
	if err != nil {
		return err
	}
	// Worker indices keep growing across retire/add cycles, so the
	// counter table grows with them rather than being capped at
	// MaxWorkers.
	s.wmu.Lock()
	for len(s.wstats) <= w {
		s.wstats = append(s.wstats, &workerCounters{})
	}
	s.wmu.Unlock()
	s.scaleUps.Add(1)
	return nil
}

// ScaleDown retires the newest live worker: it stops receiving new
// submissions, drains its queue (conservation-exact — nothing it
// accepted is dropped), exits, and its machine's frames are released.
// The fleet never shrinks below its boot size.
func (s *Server) ScaleDown() error {
	live := s.pool.LiveWorkers()
	if len(live) <= s.cfg.Workers {
		return nil
	}
	w := live[len(live)-1]
	m, err := s.pool.RemoveMachine(w)
	if err != nil {
		return err
	}
	m.S.K.Phys.Release()
	s.scaleDowns.Add(1)
	return nil
}

// Close shuts the tier down in dependency order: stop the autoscaler,
// stop accepting HTTP, let in-flight handlers finish (their fleet
// requests execute — the pool drains accepted work), then close the
// pool. Safe to call more than once.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.stopOnce.Do(func() { close(s.stop) })
	var err error
	if s.ln != nil { // Start ran: the scaler and listener goroutines exist
		<-s.scalerDone
		err = s.hs.Shutdown(ctx)
		<-s.serveDone
	}
	if _, cerr := s.pool.Close(); err == nil {
		err = cerr
	}
	// Workers are gone; no handler can Take any more. Drain the warm
	// clones so their frame references are released.
	if s.clones != nil {
		s.clones.Close()
	}
	return err
}
