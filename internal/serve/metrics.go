package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the observability surface as hand-rolled
// Prometheus-style text: serving-tier request accounting, fleet
// dispatcher counters, per-worker interpreter/chain/TLB counters
// (published by the owning workers, so no machine state is read across
// goroutines), and the latency quantiles.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder

	c := s.CountersSnapshot()
	fmt.Fprintf(&b, "# serving tier\n")
	fmt.Fprintf(&b, "palladium_serve_admitted_total %d\n", c.Admitted)
	fmt.Fprintf(&b, "palladium_serve_rejected_total %d\n", c.Rejected)
	fmt.Fprintf(&b, "palladium_serve_completed_total %d\n", c.Completed)
	fmt.Fprintf(&b, "palladium_serve_failed_total %d\n", c.Failed)
	fmt.Fprintf(&b, "palladium_serve_scaleups_total %d\n", c.ScaleUps)
	fmt.Fprintf(&b, "palladium_serve_scaledowns_total %d\n", c.ScaleDowns)
	fmt.Fprintf(&b, "palladium_serve_inflight %d\n", s.pool.Inflight())
	fmt.Fprintf(&b, "palladium_serve_queue_bound %d\n", s.pool.Bound())
	fmt.Fprintf(&b, "palladium_serve_workers %d\n", s.pool.Workers())
	fmt.Fprintf(&b, "palladium_serve_workers_retired %d\n", s.pool.TotalWorkers()-s.pool.Workers())
	fmt.Fprintf(&b, "palladium_serve_max_workers %d\n", s.maxWorkers)

	if cs, ok := s.CloneStats(); ok {
		fmt.Fprintf(&b, "# ephemeral clone pool (clone-per-request mode)\n")
		fmt.Fprintf(&b, "palladium_clone_warm_depth %d\n", cs.WarmDepth)
		fmt.Fprintf(&b, "palladium_clone_target_depth %d\n", cs.TargetDepth)
		fmt.Fprintf(&b, "palladium_clone_forks_total %d\n", cs.Forks)
		fmt.Fprintf(&b, "palladium_clone_cold_steals_total %d\n", cs.ColdSteals)
		fmt.Fprintf(&b, "palladium_clone_discards_total %d\n", cs.Discards)
	}

	st := s.pool.Stats()
	fmt.Fprintf(&b, "# fleet dispatcher (totals since boot)\n")
	fmt.Fprintf(&b, "palladium_fleet_requests_total %d\n", st.Requests)
	fmt.Fprintf(&b, "palladium_fleet_errors_total %d\n", st.Errors)
	fmt.Fprintf(&b, "palladium_fleet_steals_total %d\n", st.Steals)
	fmt.Fprintf(&b, "palladium_fleet_queue_high_water %d\n", st.QueueHighWater)
	fmt.Fprintf(&b, "palladium_fleet_sim_cycles_total %.0f\n", st.SimCycles)
	fmt.Fprintf(&b, "palladium_fleet_busy_seconds_total %.6f\n", st.Busy.Seconds())
	for _, ws := range st.Workers {
		fmt.Fprintf(&b, "palladium_fleet_worker_requests_total{worker=\"%d\"} %d\n", ws.Worker, ws.Requests)
		fmt.Fprintf(&b, "palladium_fleet_worker_sim_cycles_total{worker=\"%d\"} %.0f\n", ws.Worker, ws.SimCycles)
	}

	// Interpreter counters summed over the per-worker snapshots the
	// owning workers publish after each request.
	var blockHits, blockBuilds, blockInvalids, chainHits, fastFetches, tlbHits, tlbMisses, tlbFlushes uint64
	var traceBuilds, traceDispatches, traceInvalids, traceDeopts uint64
	s.wmu.RLock()
	wstats := append([]*workerCounters(nil), s.wstats...)
	s.wmu.RUnlock()
	for _, wc := range wstats {
		blockHits += wc.blockHits.Load()
		blockBuilds += wc.blockBuilds.Load()
		blockInvalids += wc.blockInvalids.Load()
		chainHits += wc.chainHits.Load()
		fastFetches += wc.fastFetches.Load()
		traceBuilds += wc.traceBuilds.Load()
		traceDispatches += wc.traceDispatches.Load()
		traceInvalids += wc.traceInvalids.Load()
		traceDeopts += wc.traceDeopts.Load()
		tlbHits += wc.tlbHits.Load()
		tlbMisses += wc.tlbMisses.Load()
		tlbFlushes += wc.tlbFlushes.Load()
	}
	fmt.Fprintf(&b, "# interpreter (summed per-worker snapshots)\n")
	fmt.Fprintf(&b, "palladium_interp_block_hits_total %d\n", blockHits)
	fmt.Fprintf(&b, "palladium_interp_block_builds_total %d\n", blockBuilds)
	fmt.Fprintf(&b, "palladium_interp_block_invalidations_total %d\n", blockInvalids)
	fmt.Fprintf(&b, "palladium_interp_chain_hits_total %d\n", chainHits)
	fmt.Fprintf(&b, "palladium_interp_fast_fetches_total %d\n", fastFetches)
	fmt.Fprintf(&b, "palladium_interp_trace_builds_total %d\n", traceBuilds)
	fmt.Fprintf(&b, "palladium_interp_trace_dispatches_total %d\n", traceDispatches)
	fmt.Fprintf(&b, "palladium_interp_trace_invalidations_total %d\n", traceInvalids)
	fmt.Fprintf(&b, "palladium_interp_trace_deopts_total %d\n", traceDeopts)
	fmt.Fprintf(&b, "palladium_tlb_hits_total %d\n", tlbHits)
	fmt.Fprintf(&b, "palladium_tlb_misses_total %d\n", tlbMisses)
	fmt.Fprintf(&b, "palladium_tlb_flushes_total %d\n", tlbFlushes)

	fmt.Fprintf(&b, "# latency (microseconds)\n")
	writeHist(&b, "palladium_serve_sim_latency_us", s.simHist)
	writeHist(&b, "palladium_serve_wall_latency_us", s.wallHist)

	fmt.Fprintf(&b, "# models\n")
	names := make([]string, 0, len(modelNames))
	for n := range modelNames {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# available: %s (default %s)\n", strings.Join(names, " "), s.cfg.DefaultModel)

	fmt.Fprint(w, b.String())
}

func writeHist(b *strings.Builder, name string, h *Hist) {
	p50, p99, p999 := h.Quantiles()
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_mean %.3f\n", name, h.Mean())
	fmt.Fprintf(b, "%s{quantile=\"0.5\"} %d\n", name, p50)
	fmt.Fprintf(b, "%s{quantile=\"0.99\"} %d\n", name, p99)
	fmt.Fprintf(b, "%s{quantile=\"0.999\"} %d\n", name, p999)
	fmt.Fprintf(b, "%s_max %d\n", name, h.Max())
}
