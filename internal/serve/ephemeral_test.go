package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/webserver"
)

// TestScaleDownRetiresIdleWorkers: ScaleDown retires the newest live
// worker and refuses to shrink below the boot size.
func TestScaleDownRetiresIdleWorkers(t *testing.T) {
	s := startServer(t, Config{Workers: 1, MaxWorkers: 3})
	if err := s.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if err := s.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 3 {
		t.Fatalf("workers = %d after two scale-ups", s.Workers())
	}
	for i := 0; i < 2; i++ {
		if err := s.ScaleDown(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Workers() != 1 {
		t.Fatalf("workers = %d after two scale-downs, want 1", s.Workers())
	}
	// At the floor, ScaleDown is a refusal, not an error.
	if err := s.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 1 {
		t.Fatalf("ScaleDown shrank below boot size")
	}
	if c := s.CountersSnapshot(); c.ScaleUps != 2 || c.ScaleDowns != 2 {
		t.Errorf("counters %+v, want 2 scale-ups and 2 scale-downs", c)
	}
	if _, body := get(t, s.URL()+"/metrics"); !strings.Contains(body, "palladium_serve_scaledowns_total 2") ||
		!strings.Contains(body, "palladium_serve_workers_retired 2") {
		t.Errorf("metrics missing scale-down gauges:\n%s", body)
	}
	// The shrunken fleet still serves.
	if resp, body := get(t, s.URL()+"/serve"); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d after scale-down: %s", resp.StatusCode, body)
	}
}

// TestAutoscaleDownToFloor: with ScaleDownDepth set, an idle fleet
// drains back to its boot size on its own.
func TestAutoscaleDownToFloor(t *testing.T) {
	s := startServer(t, Config{
		Workers:        1,
		MaxWorkers:     3,
		ScaleInterval:  time.Millisecond,
		ScaleDownDepth: 1,
	})
	if err := s.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if err := s.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	// Workers() drops when a retiring worker stops accepting work; the
	// ScaleDowns counter lands after its drain — wait for both.
	for s.Workers() != 1 || s.ScaleDowns() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("idle fleet stuck at %d workers, %d scale-downs", s.Workers(), s.ScaleDowns())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScaleDownConservation runs real load through a fleet that is
// scaling in both directions and checks the accounting invariant:
// after the drain, every admitted request completed or failed —
// retiring workers dropped nothing.
func TestScaleDownConservation(t *testing.T) {
	s := startServer(t, Config{
		Workers:        1,
		MaxWorkers:     4,
		Queue:          64,
		ScaleInterval:  time.Millisecond,
		ScaleUpDepth:   0.5,
		ScaleDownDepth: 2,
	})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, body := get(t, s.URL()+"/serve?model=static")
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("HTTP %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := s.CountersSnapshot()
	if c.Admitted != c.Completed+c.Failed {
		t.Errorf("admitted %d != completed %d + failed %d: scale churn dropped requests",
			c.Admitted, c.Completed, c.Failed)
	}
	if c.Failed != 0 {
		t.Errorf("%d requests failed", c.Failed)
	}
}

// TestCloneTaxBitIdentical is the per-size anchor for ephemeral-clone
// serving: for every Table 3 file size and model, a request served on
// a fresh clone of a pristine template burns exactly the same
// simulated cycles as that request on a shared machine with identical
// history — cloning is invisible in simulated metrics, so the clone
// tax is pure wall-clock (measured by the -clones bench).
func TestCloneTaxBitIdentical(t *testing.T) {
	models := []webserver.Model{webserver.Static, webserver.CGI, webserver.FastCGI,
		webserver.LibCGI, webserver.LibCGIProtected}
	for _, size := range experiments.Table3Sizes() {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			tmpl, err := webserver.BootServer(size)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range models {
				// The shared machine's history matches the template's:
				// none. (Per-request cycles are otherwise deterministic
				// but may carry a tiny one-time warm-up, so the anchor
				// compares equal histories.)
				shared, err := webserver.BootServer(size)
				if err != nil {
					t.Fatal(err)
				}
				before := shared.SimCycles()
				if _, err := shared.ServeRequest(m); err != nil {
					t.Fatal(err)
				}
				sharedCycles := shared.SimCycles() - before

				c, err := tmpl.Clone()
				if err != nil {
					t.Fatal(err)
				}
				before = c.SimCycles()
				if _, err := c.ServeRequest(m); err != nil {
					t.Fatal(err)
				}
				cloneCycles := c.SimCycles() - before
				c.S.K.Phys.Release()

				if cloneCycles != sharedCycles {
					t.Errorf("%v: clone burned %.0f cycles, shared machine %.0f", m, cloneCycles, sharedCycles)
				}
			}
		})
	}
}

// TestClonePerRequestServing drives the tier in ephemeral-clone mode:
// every request runs on a discarded-after-use clone, the template
// machine never changes, the pool gauges add up, and the simulated
// latency is bit-identical to shared-machine serving.
func TestClonePerRequestServing(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Queue: 64, ClonePerRequest: true, WarmClones: 3})
	tmplFP := s.tmpl.S.K.Phys.Fingerprint()
	tmplFrames := s.tmpl.S.K.Phys.FrameCount()

	const n = 30
	var mu sync.Mutex
	micros := map[string]map[string]bool{} // model -> set of sim latencies
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"static", "cgi", "libcgi-prot"}[i%3]
			resp, body := get(t, s.URL()+"/serve?model="+model)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("HTTP %d: %s", resp.StatusCode, body)
				return
			}
			mu.Lock()
			if micros[model] == nil {
				micros[model] = map[string]bool{}
			}
			micros[model][resp.Header.Get("X-Sim-Micros")] = true
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	// Every request of a model costs identical simulated time (each ran
	// on an identical fresh clone), and that time matches a fresh
	// shared machine serving the same request.
	for model, set := range micros {
		if len(set) != 1 {
			t.Errorf("model %s: ephemeral clones disagreed on sim latency: %v", model, set)
			continue
		}
		m, err := ParseModel(model)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := webserver.BootServer(s.tmpl.FileSize)
		if err != nil {
			t.Fatal(err)
		}
		before := fresh.SimCycles()
		if _, err := fresh.ServeRequest(m); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%.3f", fresh.S.Clock().Micros(fresh.SimCycles()-before))
		if !set[want] {
			t.Errorf("model %s: clone latency %v != shared-machine latency %s", model, set, want)
		}
	}

	// The template is untouched by 30 clone/serve/discard cycles.
	if fp := s.tmpl.S.K.Phys.Fingerprint(); fp != tmplFP {
		t.Errorf("template fingerprint changed under clone churn")
	}
	if fc := s.tmpl.S.K.Phys.FrameCount(); fc != tmplFrames {
		t.Errorf("template frames %d, was %d", fc, tmplFrames)
	}

	st, ok := s.CloneStats()
	if !ok {
		t.Fatal("CloneStats not available in clone mode")
	}
	if st.Discards != n {
		t.Errorf("discards = %d, want %d (one per request)", st.Discards, n)
	}
	if st.Forks < n {
		t.Errorf("forks = %d, want >= %d", st.Forks, n)
	}
	if st.TargetDepth != 3 {
		t.Errorf("target depth = %d, want 3", st.TargetDepth)
	}
	_, body := get(t, s.URL()+"/metrics")
	for _, want := range []string{
		"palladium_clone_warm_depth", "palladium_clone_target_depth 3",
		"palladium_clone_forks_total", "palladium_clone_cold_steals_total",
		fmt.Sprintf("palladium_clone_discards_total %d", st.Discards),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRestoreColdStart: a serving tier booted from a SaveBytes image
// (-restore) starts from the saved machine bit-for-bit — including in
// clone-per-request mode, where every ephemeral clone forks from the
// restored state.
func TestRestoreColdStart(t *testing.T) {
	src, err := webserver.BootServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := src.ServeRequest(webserver.LibCGIProtected); err != nil {
			t.Fatal(err)
		}
	}
	img := src.SaveBytes()

	s := startServer(t, Config{Workers: 1, RestoreImage: img, ClonePerRequest: true})
	if s.tmpl.FileSize != 1024 {
		t.Errorf("FileSize %d not taken from the image", s.tmpl.FileSize)
	}
	if s.tmpl.S.K.Phys.Fingerprint() != src.S.K.Phys.Fingerprint() {
		t.Fatalf("restored template differs from saved machine")
	}
	resp, body := get(t, s.URL()+"/serve?model=libcgi-prot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	// A clone of the restored template serves the request for exactly
	// the cycles the saved machine would have spent on it.
	before := src.SimCycles()
	if _, err := src.ServeRequest(webserver.LibCGIProtected); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%.3f", src.S.Clock().Micros(src.SimCycles()-before))
	if got := resp.Header.Get("X-Sim-Micros"); got != want {
		t.Errorf("restored-clone latency %s, saved machine %s", got, want)
	}

	// Corrupt images refuse to boot a tier at all.
	if _, err := New(Config{RestoreImage: img[:len(img)/2]}); err == nil {
		t.Errorf("New accepted a truncated restore image")
	}
}
