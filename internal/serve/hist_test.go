package serve

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHistExactLowValues checks that values below 64 are recorded and
// reported exactly.
func TestHistExactLowValues(t *testing.T) {
	h := &Hist{}
	for v := uint64(0); v < 64; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 63 {
		t.Errorf("p100 = %d, want 63", got)
	}
	if got := h.Quantile(0.5); got != 31 && got != 32 {
		t.Errorf("p50 = %d, want 31 or 32", got)
	}
	if h.Count() != 64 {
		t.Errorf("count = %d", h.Count())
	}
}

// TestHistQuantileError checks the log-linear bucketing's relative
// error bound (~3%) against exact order statistics on random data.
func TestHistQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := &Hist{}
	var vals []uint64
	for i := 0; i < 50000; i++ {
		// Log-uniform over [1, ~1e9]: exercises many bucket scales.
		v := uint64(1 + rng.Float64()*float64(uint64(1)<<uint(1+rng.Intn(30))))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		if got > exact {
			t.Errorf("q=%v: estimate %d above exact %d (must be a lower bound)", q, got, exact)
		}
		if float64(got) < float64(exact)*0.96-1 {
			t.Errorf("q=%v: estimate %d more than ~4%% below exact %d", q, got, exact)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Errorf("max = %d, want %d", h.Max(), vals[len(vals)-1])
	}
}

// TestHistBucketRoundTrip checks bucketLow(bucketOf(v)) <= v for
// representative values across the range, and that bucket edges map to
// themselves.
func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketOf(v)
		low := bucketLow(i)
		if low > v {
			t.Errorf("bucketLow(bucketOf(%d)) = %d > value", v, low)
		}
		if bucketOf(low) != i {
			t.Errorf("edge %d maps to bucket %d, want %d", low, bucketOf(low), i)
		}
	}
}

// TestHistEmpty checks zero-value behaviour.
func TestHistEmpty(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}
