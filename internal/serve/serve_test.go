package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/webserver"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServeHTTPThroughFleet is the end-to-end path: a real HTTP
// request reaches a fleet machine, runs the protected LibCGI script on
// the simulated hardware, and reports both latencies.
func TestServeHTTPThroughFleet(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	for _, model := range []string{"", "static", "cgi", "fastcgi", "libcgi", "libcgi-prot"} {
		url := s.URL() + "/serve"
		if model != "" {
			url += "?model=" + model
		}
		resp, body := get(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %q: HTTP %d: %s", model, resp.StatusCode, body)
		}
		if !strings.Contains(body, "status=200") {
			t.Errorf("model %q: body %q lacks script status", model, body)
		}
		if model != "static" && resp.Header.Get("X-Sim-Micros") == "0.000" {
			t.Errorf("model %q: zero simulated latency", model)
		}
		if resp.Header.Get("X-Wall-Micros") == "" {
			t.Errorf("model %q: no wall latency header", model)
		}
	}
	if resp, body := get(t, s.URL()+"/serve?model=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: HTTP %d %q, want 400", resp.StatusCode, body)
	}
	if resp, _ := get(t, s.URL()+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	if resp, _ := get(t, s.URL()+"/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: HTTP %d, want 404", resp.StatusCode)
	}
	c := s.CountersSnapshot()
	if c.Completed != 6 || c.Failed != 0 {
		t.Errorf("counters = %+v, want 6 completed", c)
	}
	if s.SimHist().Count() != 6 || s.WallHist().Count() != 6 {
		t.Errorf("histograms recorded %d/%d samples, want 6/6", s.SimHist().Count(), s.WallHist().Count())
	}
}

// TestBackpressure503 pins the admission-control contract: with every
// worker blocked and the queue full, a request is refused immediately
// with HTTP 503, a Retry-After header and the typed backpressure fault
// class — it does not block behind capacity the fleet does not have.
func TestBackpressure503(t *testing.T) {
	s := startServer(t, Config{Workers: 1, Queue: 1})
	release := make(chan struct{})
	// Occupy the lone worker and fill the 1-deep queue through the
	// pool directly, so the HTTP request below deterministically hits
	// a full queue.
	if err := s.Pool().SubmitTo(0, func(int, *webserver.Server) error {
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	defer close(release)

	resp, body := get(t, s.URL()+"/serve")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d %q, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := resp.Header.Get("X-Fault-Class"); got != "backpressure" {
		t.Errorf("fault class %q, want backpressure", got)
	}
	if !strings.Contains(body, "backpressure") {
		t.Errorf("body %q does not name the fault class", body)
	}
	if c := s.CountersSnapshot(); c.Rejected != 1 || c.Admitted != 0 {
		t.Errorf("counters = %+v, want 1 rejected, 0 admitted", c)
	}
}

// TestMetricsEndpoint checks the observability surface: serving
// counters, fleet counters, per-worker interpreter counters and
// latency quantiles all render, and pprof answers.
func TestMetricsEndpoint(t *testing.T) {
	// 100 requests, not a handful: the worker's hot serving loop must
	// cross the trace-promotion threshold so the tier-3 counters below
	// are provably live end to end.
	s := startServer(t, Config{Workers: 1})
	for i := 0; i < 100; i++ {
		if resp, _ := get(t, s.URL()+"/serve?model=libcgi-prot"); resp.StatusCode != 200 {
			t.Fatalf("request %d failed", i)
		}
	}
	_, body := get(t, s.URL()+"/metrics")
	for _, want := range []string{
		"palladium_serve_completed_total 100",
		"palladium_serve_rejected_total 0",
		"palladium_serve_workers 1",
		"palladium_fleet_requests_total 100",
		"palladium_fleet_worker_requests_total{worker=\"0\"} 100",
		"palladium_interp_chain_hits_total",
		"palladium_interp_trace_builds_total",
		"palladium_interp_trace_dispatches_total",
		"palladium_interp_trace_deopts_total",
		"palladium_tlb_hits_total",
		"palladium_serve_sim_latency_us{quantile=\"0.5\"}",
		"palladium_serve_wall_latency_us{quantile=\"0.999\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The protected serving path runs real simulated code: the
	// per-worker interpreter counters — including the trace tier's —
	// must be live, not zero.
	for _, counter := range []string{
		"palladium_interp_chain_hits_total",
		"palladium_interp_trace_dispatches_total",
		"palladium_tlb_hits_total",
	} {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, counter+" ") && strings.TrimPrefix(line, counter+" ") == "0" {
				t.Errorf("%s is zero after 100 protected requests", counter)
			}
		}
	}
	if resp, _ := get(t, s.URL()+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: HTTP %d", resp.StatusCode)
	}
}

// TestAutoscaleUp checks that queue pressure grows the fleet: a burst
// beyond the scale-up threshold against a 1-worker fleet must add
// workers up to the cap, and the scaled-up workers actually serve.
func TestAutoscaleUp(t *testing.T) {
	s := startServer(t, Config{
		Workers: 1, MaxWorkers: 4, Queue: 64,
		ScaleInterval: time.Millisecond, ScaleUpDepth: 1,
	})
	// Hold worker 0 hostage so the backlog builds, forcing scale-up.
	release := make(chan struct{})
	if err := s.Pool().SubmitTo(0, func(int, *webserver.Server) error {
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var okN atomic.Uint64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL() + "/serve?model=libcgi-prot")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				okN.Add(1)
			}
		}()
	}
	deadline := time.After(10 * time.Second)
	for s.Workers() == 1 {
		select {
		case <-deadline:
			t.Fatal("autoscaler never scaled up under backlog")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	if s.Workers() < 2 || s.Workers() > 4 {
		t.Errorf("workers = %d, want in [2, 4]", s.Workers())
	}
	if s.ScaleUps() == 0 {
		t.Error("no scale-ups counted")
	}
	if okN.Load() == 0 {
		t.Error("no requests served during scale-up")
	}
	// The scaled-up workers exist because worker 0 was blocked: they
	// must have taken real work.
	st := s.Pool().Stats()
	var scaledServed uint64
	for _, ws := range st.Workers[1:] {
		scaledServed += ws.Requests
	}
	if scaledServed == 0 {
		t.Error("scaled-up workers served nothing")
	}
}

// TestAutoscaledWorkerBitIdenticalToStatic is the simulated-metrics
// guarantee of clone-based scale-up: a worker added mid-run serves
// with exactly the same simulated cycle accounting as a worker of a
// statically sized fleet, because both are clones of a pristine
// template. The request sequence is pinned per machine, so per-machine
// simulated spans are deterministic.
func TestAutoscaledWorkerBitIdenticalToStatic(t *testing.T) {
	const requests = 16

	// Static twin: 2 workers from boot.
	static, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close(context.Background())

	// Autoscaled twin: 1 worker at boot, second added by ScaleUp
	// after the first has already served (the dirty-template hazard:
	// scale-up must clone the pristine template, not a serving
	// machine).
	scaled, err := New(Config{Workers: 1, MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer scaled.Close(context.Background())
	if err := scaled.Pool().SubmitTo(0, func(_ int, srv *webserver.Server) error {
		_, err := srv.ServeRequest(webserver.LibCGIProtected)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	scaled.Pool().Drain()
	if err := scaled.ScaleUp(); err != nil {
		t.Fatal(err)
	}

	serveSeq := func(s *Server, w int) (boot, span float64) {
		t.Helper()
		run := s.Pool().BeginRun()
		for i := 0; i < requests; i++ {
			if err := s.Pool().SubmitTo(w, func(_ int, srv *webserver.Server) error {
				_, err := srv.ServeRequest(webserver.LibCGIProtected)
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
		s.Pool().Drain()
		rs := run.Stats()
		if rs.Workers[w].Requests != requests {
			t.Fatalf("worker %d served %d of %d", w, rs.Workers[w].Requests, requests)
		}
		return s.Pool().Stats().Workers[w].BootCycles, rs.Workers[w].SpanCycles
	}

	staticBoot, staticSpan := serveSeq(static, 1)
	scaledBoot, scaledSpan := serveSeq(scaled, 1)
	if scaledBoot != staticBoot {
		t.Errorf("scaled-up worker boot cycles %v != static worker's %v", scaledBoot, staticBoot)
	}
	if scaledSpan != staticSpan {
		t.Errorf("scaled-up worker span %v != static worker's %v (must be bit-identical)", scaledSpan, staticSpan)
	}
	// And the derived serving rate — the Table 3 quantity — matches
	// bit-for-bit too.
	rs := scaled.Pool().Machine(1).SustainedRate(scaledSpan, requests)
	rt := static.Pool().Machine(1).SustainedRate(staticSpan, requests)
	if rs != rt {
		t.Errorf("scaled-up rate %v != static rate %v", rs, rt)
	}
}

// TestShutdownDrainsAccepted checks the daemon half of the drain
// guarantee: Close completes every admitted request (counters
// conserve) and later requests are refused, not hung.
func TestShutdownDrainsAccepted(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Queue: 32})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL() + "/serve")
			if err != nil {
				return // racing shutdown: connection refusal is fine
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	c := s.CountersSnapshot()
	if got := c.Completed + c.Failed; got != c.Admitted {
		t.Errorf("admitted %d but completed+failed %d: accepted requests dropped", c.Admitted, got)
	}
	if c.Failed != 0 {
		t.Errorf("%d requests failed during clean shutdown", c.Failed)
	}
}

// TestParseModelRejectsUnknown covers the error path.
func TestParseModelRejectsUnknown(t *testing.T) {
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel(bogus) = nil error")
	}
	m, err := ParseModel("static")
	if err != nil || m != webserver.Static {
		t.Errorf("ParseModel(static) = %v, %v", m, err)
	}
}

// TestLoadgenClosedLoop runs the load generator against a live
// daemon: nonzero throughput, sane quantiles, zero dropped-accepted.
func TestLoadgenClosedLoop(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	res, err := RunLoad(LoadConfig{
		URL: s.URL(), Model: "libcgi-prot", Conns: 4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 || res.AchievedReqPerSec <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.WallP50 == 0 || res.WallP99 < res.WallP50 {
		t.Errorf("wall quantiles: p50=%d p99=%d", res.WallP50, res.WallP99)
	}
	if res.SimP50 == 0 {
		t.Errorf("sim p50 = 0 for the protected model")
	}
	if res.Errors != 0 {
		t.Errorf("%d transport errors", res.Errors)
	}
}

// TestLoadgenOpenLoop paces arrivals at a fixed rate and checks the
// achieved rate lands near it (the fleet has ample capacity at this
// rate, so nothing should be shed or rejected).
func TestLoadgenOpenLoop(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	const rate = 200.0
	res, err := RunLoad(LoadConfig{
		URL: s.URL(), Conns: 8, Rate: rate,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatalf("open loop completed nothing: %+v", res)
	}
	if res.AchievedReqPerSec > rate*1.5 {
		t.Errorf("achieved %.0f req/s against a %.0f pace", res.AchievedReqPerSec, rate)
	}
	if res.Rejected != 0 {
		t.Errorf("%d rejections at a rate far below capacity", res.Rejected)
	}
}

// TestSweepReport runs a miniature connections x workers sweep and
// checks the report invariants the CI smoke leg asserts.
func TestSweepReport(t *testing.T) {
	rep, err := Sweep(SweepConfig{
		Workers:  []int{1, 2},
		Conns:    []int{1, 2},
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(rep.Cells))
	}
	if rep.CapacityReqPerSec <= 0 || rep.CeilingWorkers == 0 || rep.CeilingConns == 0 {
		t.Errorf("no capacity ceiling: %+v", rep)
	}
	if rep.DroppedAccepted != 0 {
		t.Errorf("dropped accepted = %d, want 0", rep.DroppedAccepted)
	}
	for _, c := range rep.Cells {
		if c.OK == 0 || c.WallP50 == 0 || c.SimP50 == 0 {
			t.Errorf("hollow cell: %+v", c)
		}
	}
}

// TestServeConcurrentHammer pushes concurrent HTTP load (with -race
// this is the serving tier's memory-safety proof) and checks request
// conservation: every 200 was really served by the fleet.
func TestServeConcurrentHammer(t *testing.T) {
	s := startServer(t, Config{Workers: 4, Queue: 64})
	const clients = 8
	const perClient = 25
	var ok, rejected atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(s.URL() + "/serve")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					t.Errorf("HTTP %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("nothing served")
	}
	st := s.Pool().Stats()
	if st.Requests != ok.Load() {
		t.Errorf("fleet served %d, clients saw %d OKs", st.Requests, ok.Load())
	}
	c := s.CountersSnapshot()
	if c.Completed != ok.Load() || c.Rejected != rejected.Load() {
		t.Errorf("counters %+v vs client view ok=%d rejected=%d", c, ok.Load(), rejected.Load())
	}
	if got := fmt.Sprint(ok.Load() + rejected.Load()); got != fmt.Sprint(clients*perClient) {
		t.Errorf("conservation: %s outcomes for %d requests", got, clients*perClient)
	}
}
