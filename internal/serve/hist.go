package serve

import (
	"math/bits"
	"sync"
)

// histBuckets is sized for 6 exact low buckets (values 0..63) plus 32
// log-linear sub-buckets per power of two above that, covering the
// full uint64 range: 64 + 58*32.
const histBuckets = 64 + 58*32

// Hist is a log-linear latency histogram in the HDR style: values
// below 64 are recorded exactly, larger values land in one of 32
// sub-buckets per power of two, bounding the relative quantile error
// at ~3%. Recording is O(1) and allocation-free; a mutex keeps it
// goroutine-safe (the serving path records once per request, so the
// lock is uncontended next to the request itself).
type Hist struct {
	mu      sync.Mutex
	count   uint64
	sum     float64
	max     uint64
	buckets [histBuckets]uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < 64 {
		return int(v)
	}
	b := bits.Len64(v) // 7..64
	return 64 + (b-7)*32 + int((v>>(b-6))&31)
}

// bucketLow returns the smallest value mapping to bucket i (the
// quantile estimate reported for samples in that bucket).
func bucketLow(i int) uint64 {
	if i < 64 {
		return uint64(i)
	}
	exp := (i-64)/32 + 6
	sub := uint64((i - 64) % 32)
	return 1<<exp + sub<<(exp-5)
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	h.mu.Lock()
	h.count++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest recorded sample.
func (h *Hist) Max() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the value at quantile q in [0, 1]: the lower edge
// of the bucket holding the q-th sample, except the exact maximum for
// q reaching the last sample. Returns 0 when empty.
func (h *Hist) Quantile(q float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(q*float64(h.count-1)) + 1
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if seen == h.count && bucketOf(h.max) == i {
				return h.max
			}
			return bucketLow(i)
		}
	}
	return h.max
}

// Quantiles returns p50/p99/p999 in one pass-friendly call.
func (h *Hist) Quantiles() (p50, p99, p999 uint64) {
	return h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)
}
