package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// LoadConfig drives one load-generation cell against a running
// daemon.
type LoadConfig struct {
	// URL is the daemon base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// Model is the ?model= value ("" uses the daemon default).
	Model string
	// Conns is the number of concurrent client connections (and, in
	// open-loop mode, the cap on outstanding requests).
	Conns int
	// Rate is the open-loop arrival rate in requests/second; 0 runs
	// closed-loop (each connection issues back-to-back requests),
	// which is how the sweep finds the capacity ceiling.
	Rate float64
	// Duration is how long to generate load.
	Duration time.Duration
}

// LoadResult is one cell of the sweep.
type LoadResult struct {
	Workers int     `json:"workers"`
	Conns   int     `json:"conns"`
	Rate    float64 `json:"open_loop_rate,omitempty"`

	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	// Rejected counts HTTP 503 admission refusals (typed
	// backpressure), Errors transport/5xx failures, Shed open-loop
	// arrivals dropped client-side because all Conns slots were
	// outstanding.
	Rejected uint64 `json:"rejected_503"`
	Errors   uint64 `json:"errors"`
	Shed     uint64 `json:"shed_arrivals,omitempty"`

	WallSeconds       float64 `json:"wall_seconds"`
	AchievedReqPerSec float64 `json:"achieved_req_per_s"`

	// Latency quantiles in microseconds: wall is client-observed
	// request latency, sim is the simulated service time reported by
	// the daemon per request.
	WallP50  uint64 `json:"wall_p50_us"`
	WallP99  uint64 `json:"wall_p99_us"`
	WallP999 uint64 `json:"wall_p999_us"`
	SimP50   uint64 `json:"sim_p50_us"`
	SimP99   uint64 `json:"sim_p99_us"`
	SimP999  uint64 `json:"sim_p999_us"`
}

// RunLoad generates load per cfg and aggregates client-side results.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	url := cfg.URL + "/serve"
	if cfg.Model != "" {
		url += "?model=" + cfg.Model
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Conns,
		MaxIdleConnsPerHost: cfg.Conns,
	}}
	defer client.CloseIdleConnections()

	res := LoadResult{Conns: cfg.Conns, Rate: cfg.Rate}
	wall, sim := &Hist{}, &Hist{}

	type tally struct{ requests, ok, rejected, errors uint64 }
	tallies := make(chan tally, cfg.Conns)

	shoot := func() (code int, simMicros float64, err error) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, 0, err
		}
		simMicros, _ = strconv.ParseFloat(resp.Header.Get("X-Sim-Micros"), 64)
		return resp.StatusCode, simMicros, nil
	}
	record := func(t *tally, code int, simMicros float64, wallStart time.Time, err error) {
		t.requests++
		switch {
		case err != nil:
			t.errors++
		case code == http.StatusOK:
			t.ok++
			wall.Record(uint64(time.Since(wallStart).Microseconds()))
			sim.Record(uint64(simMicros))
		case code == http.StatusServiceUnavailable:
			t.rejected++
		default:
			t.errors++
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	if cfg.Rate <= 0 {
		// Closed loop: Conns connections issuing back-to-back
		// requests — the saturation probe the capacity sweep uses.
		for c := 0; c < cfg.Conns; c++ {
			go func() {
				var t tally
				for time.Now().Before(deadline) {
					t0 := time.Now()
					code, simMicros, err := shoot()
					record(&t, code, simMicros, t0, err)
				}
				tallies <- t
			}()
		}
		for c := 0; c < cfg.Conns; c++ {
			t := <-tallies
			res.Requests += t.requests
			res.OK += t.ok
			res.Rejected += t.rejected
			res.Errors += t.errors
		}
	} else {
		// Open loop: arrivals at a fixed rate regardless of response
		// progress, bounded by Conns outstanding; arrivals past the
		// bound are shed (and counted) rather than queued client-side,
		// so server-side latency is not hidden by client queueing.
		slots := make(chan struct{}, cfg.Conns)
		for i := 0; i < cfg.Conns; i++ {
			slots <- struct{}{}
		}
		results := make(chan tally, cfg.Conns)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		var outstanding int
		var shed uint64
	genloop:
		for {
			select {
			case now := <-ticker.C:
				if !now.Before(deadline) {
					break genloop
				}
				select {
				case <-slots:
					outstanding++
					go func(t0 time.Time) {
						var t tally
						code, simMicros, err := shoot()
						record(&t, code, simMicros, t0, err)
						slots <- struct{}{}
						results <- t
					}(now)
				default:
					shed++
				}
			case t := <-results:
				outstanding--
				res.Requests += t.requests
				res.OK += t.ok
				res.Rejected += t.rejected
				res.Errors += t.errors
			}
		}
		ticker.Stop()
		for ; outstanding > 0; outstanding-- {
			t := <-results
			res.Requests += t.requests
			res.OK += t.ok
			res.Rejected += t.rejected
			res.Errors += t.errors
		}
		res.Shed = shed
	}

	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.AchievedReqPerSec = float64(res.OK) / res.WallSeconds
	}
	res.WallP50, res.WallP99, res.WallP999 = wall.Quantiles()
	res.SimP50, res.SimP99, res.SimP999 = sim.Quantiles()
	if res.Requests == 0 {
		return res, fmt.Errorf("serve: load generator issued no requests against %s", cfg.URL)
	}
	return res, nil
}

// SweepConfig drives the connections x workers capacity sweep.
type SweepConfig struct {
	FileSize uint32
	Model    string
	Workers  []int // fleet sizes to boot, one in-process daemon each
	Conns    []int // client connection counts per fleet size
	Rate     float64
	Duration time.Duration
	Queue    int // admission bound per daemon (0 = fleet default)
}

// Report is the BENCH_serve.json payload: every cell of the sweep plus
// the capacity ceiling and the accepted-request conservation check.
type Report struct {
	Note         string       `json:"note"`
	FileSize     uint32       `json:"file_size_bytes"`
	Model        string       `json:"model"`
	DurationSecs float64      `json:"duration_secs_per_cell"`
	Cells        []LoadResult `json:"cells"`

	// CapacityReqPerSec is the ceiling: the best achieved wall-clock
	// rate over all cells, with the cell that reached it.
	CapacityReqPerSec float64 `json:"capacity_req_per_s"`
	CeilingWorkers    int     `json:"ceiling_workers"`
	CeilingConns      int     `json:"ceiling_conns"`

	// DroppedAccepted sums, over every daemon booted by the sweep,
	// admitted requests that neither completed nor failed — always 0,
	// or the drain guarantee is broken.
	DroppedAccepted uint64 `json:"dropped_accepted"`
	// Rejected503 sums typed-backpressure refusals across cells: the
	// admission controller refusing load instead of queueing it.
	Rejected503 uint64 `json:"rejected_503_total"`
}

// Sweep boots an in-process daemon per worker count and runs one load
// cell per connection count against it.
func Sweep(cfg SweepConfig) (Report, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4}
	}
	if len(cfg.Conns) == 0 {
		cfg.Conns = []int{1, 4, 16}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.FileSize == 0 {
		cfg.FileSize = 28
	}
	rep := Report{
		Note: "HTTP serving capacity of the palladium-serve tier: each cell is an in-process daemon with a " +
			"fixed fleet size under the given client connection count (closed-loop saturation unless " +
			"open_loop_rate is set). Achieved rates are host wall-clock and depend on host cores; " +
			"sim latencies are simulated service time and are host-independent.",
		FileSize:     cfg.FileSize,
		Model:        cfg.Model,
		DurationSecs: cfg.Duration.Seconds(),
	}
	for _, workers := range cfg.Workers {
		s, err := New(Config{
			FileSize: cfg.FileSize,
			Workers:  workers,
			Queue:    cfg.Queue,
			// Fixed fleet per cell: the sweep measures workersxconns,
			// so autoscaling stays out of the picture.
			MaxWorkers: workers,
		})
		if err != nil {
			return rep, err
		}
		if err := s.Start(); err != nil {
			return rep, err
		}
		for _, conns := range cfg.Conns {
			cell, err := RunLoad(LoadConfig{
				URL: s.URL(), Model: cfg.Model, Conns: conns,
				Rate: cfg.Rate, Duration: cfg.Duration,
			})
			if err != nil {
				s.Close(context.Background())
				return rep, err
			}
			cell.Workers = workers
			rep.Cells = append(rep.Cells, cell)
			rep.Rejected503 += cell.Rejected
			if cell.AchievedReqPerSec > rep.CapacityReqPerSec {
				rep.CapacityReqPerSec = cell.AchievedReqPerSec
				rep.CeilingWorkers = workers
				rep.CeilingConns = conns
			}
		}
		if err := s.Close(context.Background()); err != nil {
			return rep, err
		}
		c := s.CountersSnapshot()
		if done := c.Completed + c.Failed; c.Admitted > done {
			rep.DroppedAccepted += c.Admitted - done
		}
	}
	return rep, nil
}

// RenderReport prints the sweep in a table.
func RenderReport(w io.Writer, rep Report) {
	fmt.Fprintf(w, "palladium-serve capacity sweep (%d-byte file, model %q, %.1fs/cell)\n",
		rep.FileSize, rep.Model, rep.DurationSecs)
	fmt.Fprintf(w, "%-8s %-6s %10s %12s %9s %9s %9s %9s %9s %9s\n",
		"workers", "conns", "req/s", "ok/503/err", "wall-p50", "wall-p99", "wall-p999", "sim-p50", "sim-p99", "sim-p999")
	for _, c := range rep.Cells {
		fmt.Fprintf(w, "%-8d %-6d %10.0f %12s %8dus %8dus %8dus %8dus %8dus %8dus\n",
			c.Workers, c.Conns, c.AchievedReqPerSec,
			fmt.Sprintf("%d/%d/%d", c.OK, c.Rejected, c.Errors),
			c.WallP50, c.WallP99, c.WallP999, c.SimP50, c.SimP99, c.SimP999)
	}
	fmt.Fprintf(w, "capacity ceiling: %.0f req/s at %d workers x %d conns; dropped accepted: %d\n",
		rep.CapacityReqPerSec, rep.CeilingWorkers, rep.CeilingConns, rep.DroppedAccepted)
}
