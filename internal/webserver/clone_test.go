package webserver

import (
	"sync"
	"testing"
)

var cloneModels = []Model{CGI, FastCGI, LibCGIProtected, LibCGI, Static}

// TestServerCloneServesBitIdentical: a cloned server is
// indistinguishable, in every simulated metric, from a freshly booted
// one — boot cycles, per-model sustained rates and the full memory
// image after serving.
func TestServerCloneServesBitIdentical(t *testing.T) {
	tmpl, err := BootServer(28)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := tmpl.Clone()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BootServer(28)
	if err != nil {
		t.Fatal(err)
	}
	if c, f := clone.SimCycles(), fresh.SimCycles(); c != f {
		t.Fatalf("boot cycles: clone %v, fresh %v", c, f)
	}
	for _, m := range cloneModels {
		rc, err := clone.Throughput(m, 40)
		if err != nil {
			t.Fatalf("clone %v: %v", m, err)
		}
		rf, err := fresh.Throughput(m, 40)
		if err != nil {
			t.Fatalf("fresh %v: %v", m, err)
		}
		if rc != rf {
			t.Errorf("%v: clone rate %v != fresh rate %v", m, rc, rf)
		}
	}
	if clone.S.K.Phys.Fingerprint() != fresh.S.K.Phys.Fingerprint() {
		t.Error("memory fingerprints differ after identical serving")
	}
	ch, cm, cf := clone.S.K.MMU.TLB().Stats()
	fh, fm, ff := fresh.S.K.MMU.TLB().Stats()
	if ch != fh || cm != fm || cf != ff {
		t.Errorf("TLB stats differ: clone %d/%d/%d, fresh %d/%d/%d", ch, cm, cf, fh, fm, ff)
	}
}

// TestServerSnapshotRestoreServingDeterministic: snapshotting
// mid-service and restoring replays the remaining requests
// bit-identically — the whole-machine determinism check at the top of
// the stack.
func TestServerSnapshotRestoreServingDeterministic(t *testing.T) {
	srv, err := BootServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cloneModels { // mid-life state, warm TLB and caches
		if _, err := srv.Throughput(m, 10); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.S.Snapshot()
	defer snap.Release()

	type obs struct {
		rates   [5]float64
		cycles  float64
		instret uint64
		memFP   uint64
	}
	serve := func() obs {
		var o obs
		for i, m := range cloneModels {
			r, err := srv.Throughput(m, 15)
			if err != nil {
				t.Fatal(err)
			}
			o.rates[i] = r
		}
		o.cycles = srv.S.K.Clock.Cycles()
		o.instret = srv.S.K.Machine.Instructions()
		o.memFP = srv.S.K.Phys.Fingerprint()
		return o
	}
	run1 := serve()
	srv.S.Restore(snap)
	run2 := serve()
	if run1 != run2 {
		t.Errorf("post-restore serving diverged:\n run1 %+v\n run2 %+v", run1, run2)
	}
}

// TestCloneHammerConcurrentServing drives a template and many clones
// from concurrent goroutines; under -race this is the end-to-end check
// that COW frame sharing between live serving machines is sound.
func TestCloneHammerConcurrentServing(t *testing.T) {
	tmpl, err := BootServer(28)
	if err != nil {
		t.Fatal(err)
	}
	const clones = 6
	servers := make([]*Server, clones)
	for i := range servers {
		if servers[i], err = tmpl.Clone(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	rates := make([]float64, clones)
	errs := make([]error, clones)
	for i, s := range servers {
		wg.Add(1)
		go func(i int, s *Server) {
			defer wg.Done()
			for _, m := range cloneModels {
				r, err := s.Throughput(m, 20)
				if err != nil {
					errs[i] = err
					return
				}
				if m == LibCGIProtected {
					rates[i] = r
				}
			}
		}(i, s)
	}
	// The template serves concurrently with every clone.
	var tmplRate float64
	for _, m := range cloneModels {
		r, err := tmpl.Throughput(m, 20)
		if err != nil {
			t.Fatal(err)
		}
		if m == LibCGIProtected {
			tmplRate = r
		}
	}
	wg.Wait()
	for i := range servers {
		if errs[i] != nil {
			t.Fatalf("clone %d: %v", i, errs[i])
		}
		if rates[i] != tmplRate {
			t.Errorf("clone %d protected rate %v != template %v", i, rates[i], tmplRate)
		}
	}
}
