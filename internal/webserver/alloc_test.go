package webserver

import (
	"fmt"
	"testing"
)

// TestServeSteadyStateZeroAlloc pins the allocation audit of the
// steady-state serving path: after warmup, a request under every
// persistent execution model must allocate nothing — the per-request
// staging buffers are per-server scratch, the kernel copy paths are
// buffer-reusing, and the extension time limit is the kernel's armed
// limiter rather than a per-call closure. The CGI model is exempt by
// design: it forks a fresh process per request, and a process is an
// allocation.
func TestServeSteadyStateZeroAlloc(t *testing.T) {
	srv := newServer(t, 28)
	for _, m := range []Model{Static, FastCGI, LibCGI, LibCGIProtected} {
		t.Run(fmt.Sprint(m), func(t *testing.T) {
			// Warm: fault pages in, build decoded blocks, size buffers.
			for i := 0; i < 5; i++ {
				if _, err := srv.ServeRequest(m); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if _, err := srv.ServeRequest(m); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("%v: %.2f allocs per steady-state request, want 0", m, avg)
			}
		})
	}
}

// BenchmarkServeRequest measures the wall-clock serving rate of the
// steady-state path (one booted server, repeated requests); -benchmem
// documents the zero-allocation property the test above asserts.
func BenchmarkServeRequest(b *testing.B) {
	for _, m := range []Model{Static, LibCGI, LibCGIProtected} {
		b.Run(fmt.Sprint(m), func(b *testing.B) {
			s := newBenchServer(b, 28)
			for i := 0; i < 3; i++ {
				if _, err := s.ServeRequest(m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ServeRequest(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
