package webserver

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/fleet"
)

// Fleet is a pool of independently booted web-serving machines: each
// fleet worker owns a complete Palladium system with its own kernel,
// MMU, clock and loaded LibCGI script, so N workers model N machines
// behind a load balancer. Simulated per-machine metrics are untouched
// by concurrency — a worker's machine serves exactly as the serial
// Server does — while wall-clock work spreads across the pool.
type Fleet struct {
	Pool     *fleet.Pool[*Server]
	FileSize uint32
}

// FleetResult summarizes one model's run through a fleet.
type FleetResult struct {
	Model    Model
	Workers  int
	Requests int
	// AggregateReqPerSec is the fleet's serving capacity: the sum of
	// each machine's sustained simulated request rate over the span it
	// measured locally (each machine has its own clock and client
	// link, as N real machines would).
	AggregateReqPerSec float64
	// PerWorkerReqPerSec lists each machine's own sustained rate
	// (zero for a worker that served no requests of this run).
	PerWorkerReqPerSec []float64
	// PerWorkerRequests lists how many requests each machine served.
	PerWorkerRequests []uint64
	// WallSeconds is the host wall-clock time from first submission
	// to drain.
	WallSeconds float64
	// QueueHighWater and Steals are dispatcher counters for THIS run
	// only (a fleet.Pool.BeginRun delta), so back-to-back Serve calls
	// on the same fleet report independent values.
	QueueHighWater int
	Steals         uint64
}

// BootServer boots one machine exactly as the serial Table 3 harness
// boots its single machine; exported for the snapshot benchmark, which
// times a lone template boot against a lone clone.
func BootServer(fileSize uint32) (*Server, error) { return bootServer(fileSize) }

// bootServer boots one machine exactly as the serial Table 3 harness
// boots its single machine.
func bootServer(fileSize uint32) (*Server, error) {
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	return New(s, fileSize)
}

// NewFleet boots a fleet of workers serving the given file size: ONE
// template machine is booted exactly as the serial Table 3 harness
// boots its single machine, and the remaining workers are cloned from
// it (COW memory, copied machine state). A clone's simulated state is
// bit-identical to a fresh boot's, so the fleet serves exactly as a
// serially booted one while paying one boot instead of N (the
// BENCH_snapshot.json measurement).
func NewFleet(fileSize uint32, workers int) (*Fleet, error) {
	pool, err := fleet.NewFromTemplate(fleet.Config{Workers: workers},
		func() (*Server, error) { return bootServer(fileSize) },
		func(_ int, tmpl *Server) (*Server, error) { return tmpl.Clone() })
	if err != nil {
		return nil, err
	}
	return &Fleet{Pool: pool, FileSize: fileSize}, nil
}

// NewFleetSerial boots every worker from scratch (the pre-snapshot
// behaviour); kept as the baseline the clone-boot benchmark and the
// bit-identity tests compare against.
func NewFleetSerial(fileSize uint32, workers int) (*Fleet, error) {
	pool, err := fleet.New(fleet.Config{Workers: workers}, func(int) (*Server, error) {
		return bootServer(fileSize)
	})
	if err != nil {
		return nil, err
	}
	return &Fleet{Pool: pool, FileSize: fileSize}, nil
}

// Serve pushes requests of one model through the fleet and returns the
// aggregate sustained rate. With one worker the result is bit-identical
// to the serial Server.Throughput on a machine with the same history,
// because the single machine executes the same request sequence and the
// rate is computed from the same span by the same formula.
func (f *Fleet) Serve(m Model, requests int) (FleetResult, error) {
	// Per-machine spans are the run's first-to-last clock readings of
	// each machine — the same single end-minus-start subtraction the
	// serial Throughput does, recorded by the worker itself around its
	// first and last served request — rather than a float sum of
	// per-request deltas, so N=1 rates are bit-identical to the serial
	// path, and a worker that joins mid-run (autoscaling) measures its
	// own local span instead of inheriting the run's global start.
	run := f.Pool.BeginRun()
	workers := f.Pool.Workers()
	start := time.Now()
	for i := 0; i < requests; i++ {
		// Round-robin pinned placement: the load balancer decides
		// which machine serves which request, so the per-machine
		// simulated spans are deterministic regardless of how the
		// host schedules the worker goroutines.
		err := f.Pool.SubmitTo(i%workers, func(_ int, srv *Server) error {
			_, err := srv.ServeRequest(m)
			return err
		})
		if err != nil {
			return FleetResult{}, err
		}
	}
	f.Pool.Drain()
	rs := run.Stats()

	res := FleetResult{
		Model:              m,
		Workers:            len(rs.Workers),
		Requests:           requests,
		PerWorkerReqPerSec: make([]float64, len(rs.Workers)),
		PerWorkerRequests:  make([]uint64, len(rs.Workers)),
		WallSeconds:        time.Since(start).Seconds(),
		QueueHighWater:     rs.QueueHighWater,
		Steals:             rs.Steals,
	}
	served := uint64(0)
	for w := range rs.Workers {
		n := rs.Workers[w].Requests
		res.PerWorkerRequests[w] = n
		served += n
		if n == 0 {
			continue
		}
		rate := f.Pool.Machine(w).SustainedRate(rs.Workers[w].SpanCycles, int(n))
		res.PerWorkerReqPerSec[w] = rate
		res.AggregateReqPerSec += rate
	}
	if served != uint64(requests) {
		return res, fmt.Errorf("webserver: fleet served %d of %d requests", served, requests)
	}
	if rs.Errors != 0 {
		_, err := f.Pool.Close()
		if err == nil {
			err = fmt.Errorf("webserver: %d fleet requests failed", rs.Errors)
		}
		return res, err
	}
	return res, nil
}

// Close drains and shuts the fleet down.
func (f *Fleet) Close() error {
	_, err := f.Pool.Close()
	return err
}

// ServeConcurrent is the one-shot concurrent serving path: it boots a
// fleet of `clients` machines, serves `requests` requests of model m
// through it, and shuts the fleet down. clients=1 reproduces the
// serial Table 3 numbers bit-identically.
func ServeConcurrent(fileSize uint32, m Model, clients, requests int) (FleetResult, error) {
	f, err := NewFleet(fileSize, clients)
	if err != nil {
		return FleetResult{}, err
	}
	res, err := f.Serve(m, requests)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return res, err
}
