package webserver

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// machineState gathers every simulated metric the round-trip must
// reproduce exactly.
type machineState struct {
	fingerprint             uint64
	frames                  int
	clock                   float64
	instret                 uint64
	tlbHits, tlbMiss, tlbFl uint64
	snapshots, copies       uint64
	console                 string
	curPID                  int
}

func stateOf(srv *Server) machineState {
	k := srv.S.K
	h, m, f := k.MMU.TLB().Stats()
	snaps, copies, _ := k.Phys.COWStats()
	return machineState{
		fingerprint: k.Phys.Fingerprint(),
		frames:      k.Phys.FrameCount(),
		clock:       k.Clock.Cycles(),
		instret:     k.Machine.Instructions(),
		tlbHits:     h, tlbMiss: m, tlbFl: f,
		snapshots: snaps, copies: copies,
		console: string(k.ConsoleOut),
		curPID:  k.Current().PID,
	}
}

// TestServerSaveLoadRoundTrip drives a server through real requests
// under every model, saves it, restores it into a twin, and requires
// the twin to be bit-identical in every simulated metric — then to
// serve the SAME future: each subsequent request must land both
// machines on identical clocks and fingerprints.
func TestServerSaveLoadRoundTrip(t *testing.T) {
	srv, err := bootServer(10 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{Static, CGI, FastCGI, LibCGI, LibCGIProtected} {
		for i := 0; i < 3; i++ {
			if _, err := srv.ServeRequest(m); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
		}
	}

	img := srv.SaveBytes()
	want := stateOf(srv)

	restored, err := LoadServerBytes(img)
	if err != nil {
		t.Fatalf("LoadServerBytes: %v", err)
	}
	if got := stateOf(restored); got != want {
		t.Fatalf("restored state differs:\n got %+v\nwant %+v", got, want)
	}
	// Serialization is deterministic: a re-save is byte-identical.
	if !bytes.Equal(restored.SaveBytes(), img) {
		t.Errorf("re-serialized image differs from original")
	}

	// The restored machine serves the same future as the original.
	for _, m := range []Model{LibCGIProtected, CGI, LibCGI, FastCGI} {
		s1, err1 := srv.ServeRequest(m)
		s2, err2 := restored.ServeRequest(m)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", m, err1, err2)
		}
		if s1 != s2 {
			t.Fatalf("%v: status %d vs %d", m, s1, s2)
		}
		a, b := stateOf(srv), stateOf(restored)
		if a != b {
			t.Fatalf("%v: post-request state diverged:\n orig %+v\n rest %+v", m, a, b)
		}
	}
}

// TestServerLoadBytesCorruption feeds damaged images to the restore
// path: every corruption must produce a typed error and no server.
func TestServerLoadBytesCorruption(t *testing.T) {
	srv, err := bootServer(28)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ServeRequest(LibCGIProtected); err != nil {
		t.Fatal(err)
	}
	img := srv.SaveBytes()

	check := func(t *testing.T, data []byte) {
		t.Helper()
		s, err := LoadServerBytes(data)
		if err == nil {
			t.Fatalf("LoadServerBytes accepted bad image")
		}
		if s != nil {
			t.Fatalf("LoadServerBytes returned a server alongside error %v", err)
		}
	}

	t.Run("empty", func(t *testing.T) { check(t, nil) })
	t.Run("wrong-magic", func(t *testing.T) {
		p, err := mem.Open(srvMagic, srvVersion, img)
		if err != nil {
			t.Fatal(err)
		}
		check(t, mem.Seal("PALLPHYS", srvVersion, p))
	})
	for _, cut := range []int{10, len(img) / 3, len(img) - 1} {
		t.Run("truncated", func(t *testing.T) { check(t, img[:cut]) })
	}
	t.Run("bit-flips", func(t *testing.T) {
		for _, off := range []int{20, len(img) / 2, len(img) - 2} {
			bad := bytes.Clone(img)
			bad[off] ^= 0x40
			check(t, bad)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		// Reseal a shortened payload: the CRC passes, the decoder must
		// still reject it.
		p, err := mem.Open(srvMagic, srvVersion, img)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{4, len(p) / 2, len(p) - 3} {
			check(t, mem.Seal(srvMagic, srvVersion, p[:cut]))
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		p, err := mem.Open(srvMagic, srvVersion, img)
		if err != nil {
			t.Fatal(err)
		}
		check(t, mem.Seal(srvMagic, srvVersion, append(bytes.Clone(p), 0)))
	})
}

// TestRestoredCloneIdentity: the restore path composes with cloning —
// a clone of a restored server is bit-identical to a clone of the
// original, which is what lets a fleet restore ONE template from disk
// and fork ephemeral clones from it.
func TestRestoredCloneIdentity(t *testing.T) {
	srv, err := bootServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ServeRequest(LibCGIProtected); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadServerBytes(srv.SaveBytes())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := srv.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := restored.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c1.ServeRequest(LibCGIProtected); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.ServeRequest(LibCGIProtected); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := stateOf(c1), stateOf(c2); a != b {
		t.Fatalf("clone-of-restored diverged from clone-of-original:\n %+v\n %+v", a, b)
	}
}
