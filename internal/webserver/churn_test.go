package webserver

import (
	"sync"
	"testing"
)

// TestCloneChurnLeavesTemplateIntact is the frame-accounting hammer
// behind ephemeral-clone serving: 500 fork/serve/discard cycles
// against one template, forks serialized (the template must be
// quiescent while cloned) but serving and discarding concurrent. The
// template must come out bit-identical, at its original frame count,
// and with every frame sole-owned again — no frame leaked to a dead
// clone, none left falsely shared.
func TestCloneChurnLeavesTemplateIntact(t *testing.T) {
	tmpl, err := bootServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	fp := tmpl.S.K.Phys.Fingerprint()
	frames := tmpl.S.K.Phys.FrameCount()
	models := []Model{Static, CGI, FastCGI, LibCGI, LibCGIProtected}

	const (
		goroutines = 4
		perG       = 125 // 500 churn cycles total
	)
	var forkMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				forkMu.Lock()
				c, err := tmpl.Clone()
				forkMu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.ServeRequest(models[(g+i)%len(models)]); err != nil {
					t.Error(err)
				}
				c.S.K.Phys.Release()
			}
		}(g)
	}
	wg.Wait()

	if got := tmpl.S.K.Phys.Fingerprint(); got != fp {
		t.Errorf("template fingerprint changed under churn")
	}
	if got := tmpl.S.K.Phys.FrameCount(); got != frames {
		t.Errorf("template frames %d, was %d", got, frames)
	}
	if sole := tmpl.S.K.Phys.SoleOwnerFrames(); sole != frames {
		t.Errorf("%d of %d template frames still falsely shared after churn", frames-sole, frames)
	}
	// The template still serves, identically to a never-churned
	// machine.
	fresh, err := bootServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		s1, err1 := tmpl.ServeRequest(m)
		s2, err2 := fresh.ServeRequest(m)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", m, err1, err2)
		}
		if s1 != s2 {
			t.Fatalf("%v: churned template status %d, fresh %d", m, s1, s2)
		}
	}
	if tmpl.S.K.Phys.Fingerprint() != fresh.S.K.Phys.Fingerprint() {
		t.Errorf("churned template diverged from fresh machine after identical requests")
	}
	// Post-churn writes on the template must not COW-copy: nothing
	// shares its frames any more. (Last: Write8 materializes the frame
	// if absent, which would skew the comparisons above.)
	_, copies, _ := tmpl.S.K.Phys.COWStats()
	tmpl.S.K.Phys.Write8(0, tmpl.S.K.Phys.Read8(0))
	if _, c2, _ := tmpl.S.K.Phys.COWStats(); c2 != copies {
		t.Errorf("template write COW-copied after all clones released")
	}
}
