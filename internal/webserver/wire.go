// Snapshot-to-bytes serialization of a whole web server: the envelope
// the -restore cold-start path and the clone bench persist to disk.
// SaveBytes captures the server scalars, the system (kernel, machine,
// frame store) and the application; LoadServerBytes boots a fresh twin
// — the same deterministic boot the saved server went through — and
// overlays the image onto it. A restored server is bit-identical in
// every simulated metric (memory fingerprint, clock, instret, TLB and
// COW counters) to the server that was saved; on any decode or
// validation error the half-restored twin is discarded and an error
// returned, so callers never observe a partial machine.
package webserver

import (
	"fmt"

	"repro/internal/mem"
	"repro/sandbox"
)

const (
	srvMagic   = "PALLWSRV"
	srvVersion = 1
)

// SaveBytes serializes the server into a standalone enveloped image.
// Save while no request is in flight.
func (srv *Server) SaveBytes() []byte {
	var e mem.Enc
	e.U32(srv.FileSize)
	e.F64(srv.NetBandwidthMbps)
	e.F64(srv.Costs.BaseRequest)
	e.F64(srv.Costs.PerByte)
	e.F64(srv.Costs.CGIEnv)
	e.F64(srv.Costs.CGIProcessExtra)
	e.F64(srv.Costs.FastCGIRoundTrip)
	e.I32(int32(srv.Costs.EnvBytes))
	e.U32(srv.scriptRaw)
	e.U32(srv.shared)
	e.I32(int32(srv.cgiProc.PID))
	e.U32(srv.script.PrepareAddr)
	e.U32(srv.script.TransferAddr)
	e.U32(srv.script.FnAddr)
	srv.S.SaveTo(&e)
	srv.app.SaveTo(&e)
	return mem.Seal(srvMagic, srvVersion, e.Data())
}

// LoadServerBytes reconstructs a server from a SaveBytes image: it
// boots a twin for the image's file size and overlays the saved
// machine onto it. The wall-clock cost is one boot plus the decode;
// the simulated state is the saved server's, exactly.
func LoadServerBytes(data []byte) (*Server, error) {
	payload, err := mem.Open(srvMagic, srvVersion, data)
	if err != nil {
		return nil, err
	}
	d := mem.NewDec(payload)
	fileSize := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	srv, err := bootServer(fileSize)
	if err != nil {
		return nil, fmt.Errorf("webserver: booting restore twin: %w", err)
	}
	if err := srv.loadFrom(d); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after server image", mem.ErrCorrupt, d.Remaining())
	}
	return srv, nil
}

// loadFrom overlays an image (past its fileSize header) onto this
// freshly booted twin. On error the twin is unusable and must be
// discarded — LoadServerBytes never hands it out.
func (srv *Server) loadFrom(d *mem.Dec) error {
	srv.NetBandwidthMbps = d.F64()
	srv.Costs.BaseRequest = d.F64()
	srv.Costs.PerByte = d.F64()
	srv.Costs.CGIEnv = d.F64()
	srv.Costs.CGIProcessExtra = d.F64()
	srv.Costs.FastCGIRoundTrip = d.F64()
	srv.Costs.EnvBytes = int(d.I32())
	scriptRaw := d.U32()
	shared := d.U32()
	cgiPID := int(d.I32())
	prep := d.U32()
	xfer := d.U32()
	fn := d.U32()
	if d.Err() == nil && (scriptRaw != srv.scriptRaw || shared != srv.shared || cgiPID != srv.cgiProc.PID) {
		d.Failf("server layout (script %#x shared %#x cgi pid %d) differs from booted twin's (%#x %#x %d)",
			scriptRaw, shared, cgiPID, srv.scriptRaw, srv.shared, srv.cgiProc.PID)
	}
	if d.Err() == nil && (prep != srv.script.PrepareAddr || xfer != srv.script.TransferAddr || fn != srv.script.FnAddr) {
		d.Failf("protected-script stub addresses differ from booted twin's")
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := srv.S.LoadFrom(d); err != nil {
		return err
	}
	if err := srv.app.LoadFrom(d); err != nil {
		return err
	}
	// The kernel restored processes in place, so the twin's handles
	// stay valid; the sandbox adapters are rebuilt for clarity (they
	// hold no simulated state).
	srv.cgiProc = srv.S.K.Process(cgiPID)
	srv.extDirect = sandbox.AdoptDirect(srv.app, "cgi_script", srv.scriptRaw)
	srv.extProt = sandbox.AdoptProtected(srv.script)
	return nil
}
