package webserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
)

func newServer(t *testing.T, fileSize uint32) *Server {
	t.Helper()
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(s, fileSize)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// newBenchServer is newServer for benchmarks.
func newBenchServer(tb testing.TB, fileSize uint32) *Server {
	tb.Helper()
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := New(s, fileSize)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

func TestAllModelsServe200(t *testing.T) {
	srv := newServer(t, 28)
	for _, m := range []Model{Static, CGI, FastCGI, LibCGI, LibCGIProtected} {
		status, err := srv.ServeRequest(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if status != 200 {
			t.Errorf("%v: status %d", m, status)
		}
	}
}

func TestTable3Anchors28B(t *testing.T) {
	// Table 3, 28-byte row: CGI 98, FastCGI 193, LibCGI protected
	// 437, unprotected 448, static 460 requests/second. Accept +-7%.
	srv := newServer(t, 28)
	want := map[Model]float64{
		Static:          460,
		CGI:             98,
		FastCGI:         193,
		LibCGI:          448,
		LibCGIProtected: 437,
	}
	for m, w := range want {
		got, err := srv.Throughput(m, 40)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got < w*0.93 || got > w*1.07 {
			t.Errorf("%v = %.1f req/s, paper %v", m, got, w)
		}
	}
}

func TestTable3Shape100KB(t *testing.T) {
	// At 100 KB the per-byte work dominates and the models converge:
	// static and both LibCGI variants within a few percent, CGI still
	// visibly behind (paper: 57/57/57 vs 33).
	srv := newServer(t, 100*1024)
	static, _ := srv.Throughput(Static, 10)
	prot, _ := srv.Throughput(LibCGIProtected, 10)
	unprot, _ := srv.Throughput(LibCGI, 10)
	cgi, _ := srv.Throughput(CGI, 10)
	if static < 50 || static > 65 {
		t.Errorf("static @100KB = %.1f req/s, paper 57", static)
	}
	if prot < unprot*0.96 {
		t.Errorf("protected %.1f not within 4%% of unprotected %.1f", prot, unprot)
	}
	if unprot > static || prot > unprot {
		t.Errorf("ordering violated: static %.1f, unprot %.1f, prot %.1f", static, unprot, prot)
	}
	if cgi > 0.7*static {
		t.Errorf("CGI %.1f should remain well behind static %.1f at 100KB", cgi, static)
	}
}

func TestProtectedWithinFourPercentOfUnprotected(t *testing.T) {
	// "In all cases, protected LibCGI performs within 4% of
	// unprotected LibCGI."
	for _, size := range []uint32{28, 1024, 10 * 1024, 100 * 1024} {
		srv := newServer(t, size)
		unprot, err := srv.Throughput(LibCGI, 20)
		if err != nil {
			t.Fatal(err)
		}
		prot, err := srv.Throughput(LibCGIProtected, 20)
		if err != nil {
			t.Fatal(err)
		}
		ratio := prot / unprot
		if ratio < 0.96 || ratio > 1.0 {
			t.Errorf("size %d: protected/unprotected = %.3f, want [0.96,1.0]", size, ratio)
		}
	}
}

func TestLibCGIBeatsFastCGIBelowTenKB(t *testing.T) {
	// "protected LibCGI is at least twice as fast as FastCGI for data
	// size smaller than 10 KBytes".
	for _, size := range []uint32{28, 1024} {
		srv := newServer(t, size)
		fast, _ := srv.Throughput(FastCGI, 20)
		prot, _ := srv.Throughput(LibCGIProtected, 20)
		if prot < 2*fast {
			t.Errorf("size %d: protected %.1f < 2x FastCGI %.1f", size, prot, fast)
		}
	}
}

func TestScriptActuallyRunsThroughPalladium(t *testing.T) {
	// The protected path drives the real mechanism: a request must
	// leave the response metadata in the shared area.
	srv := newServer(t, 28)
	if _, err := srv.ServeRequest(LibCGIProtected); err != nil {
		t.Fatal(err)
	}
	meta, err := srv.App().ReadMem(srv.shared+4, 8)
	if err != nil {
		t.Fatal(err)
	}
	status := uint32(meta[0]) | uint32(meta[1])<<8 | uint32(meta[2])<<16 | uint32(meta[3])<<24
	length := uint32(meta[4]) | uint32(meta[5])<<8 | uint32(meta[6])<<16 | uint32(meta[7])<<24
	if status != 200 || length != 28 {
		t.Errorf("script response = status %d length %d", status, length)
	}
}

func TestModelString(t *testing.T) {
	if Static.String() != "Web Server" || LibCGIProtected.String() != "LibCGI (protected)" {
		t.Error("model names wrong")
	}
	if Model(99).String() == "" {
		t.Error("unknown model must format")
	}
}

func TestNetworkCapAppliesToHugeFiles(t *testing.T) {
	// A 1 MB file exceeds what 100 Mbps can carry at the CPU rate the
	// model would otherwise achieve only if CPU were infinitely fast;
	// verify the cap logic by dropping CPU costs to zero.
	srv := newServer(t, 1024*1024)
	srv.Costs.BaseRequest = 0
	srv.Costs.PerByte = 0
	got, err := srv.Throughput(Static, 5)
	if err != nil {
		t.Fatal(err)
	}
	wire := float64(1024*1024) + 350
	want := 100e6 / 8 / wire
	if got > want*1.01 || got < want*0.99 {
		t.Errorf("network-bound rate = %.2f, want %.2f", got, want)
	}
}
