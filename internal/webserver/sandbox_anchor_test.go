package webserver

// Bit-identity anchor for the sandbox API redesign: ServeRequest's
// registry dispatch and sandbox-extension invocations must reproduce
// the pre-redesign switch (raw CallUnprotected / ProtectedFunc.Call)
// exactly, at full float precision, across every model and the
// request sequencing TLB warmth depends on.

import (
	"fmt"
	"testing"
)

// legacyServeRequest replicates the pre-redesign ServeRequest switch
// against the same server state.
func legacyServeRequest(srv *Server, m Model) (int, error) {
	k := srv.S.K
	c := srv.Costs
	k.Clock.Add(c.BaseRequest + c.PerByte*float64(srv.FileSize))
	switch m {
	case Static:
		return 200, nil

	case CGI:
		child, err := k.Fork(srv.cgiProc)
		if err != nil {
			return 0, err
		}
		if err := k.Exec(child); err != nil {
			return 0, err
		}
		k.Clock.Add(c.CGIEnv + c.CGIProcessExtra)
		k.Exit(child, 0)
		return 200, nil

	case FastCGI:
		k.Clock.Add(c.CGIEnv + c.FastCGIRoundTrip)
		return 200, nil

	case LibCGI:
		k.Clock.Add(c.CGIEnv)
		if err := srv.app.WriteMem(srv.shared, leWord(srv.FileSize)); err != nil {
			return 0, err
		}
		status, err := srv.app.CallUnprotected(srv.scriptRaw, srv.shared)
		if err != nil {
			return 0, err
		}
		return int(status), nil

	case LibCGIProtected:
		k.Clock.Add(c.CGIEnv)
		env := make([]byte, c.EnvBytes)
		copy(env, leWord(srv.FileSize))
		if err := srv.app.WriteMem(srv.shared, env); err != nil {
			return 0, err
		}
		if err := k.SetRange(srv.app.P, srv.shared, 1, true); err != nil {
			return 0, err
		}
		status, err := srv.script.Call(srv.shared)
		if err != nil {
			return 0, err
		}
		if _, err := srv.app.ReadMem(srv.shared+4, 8); err != nil {
			return 0, err
		}
		if err := k.SetRange(srv.app.P, srv.shared, 1, false); err != nil {
			return 0, err
		}
		return int(status), nil
	}
	return 0, fmt.Errorf("webserver: unknown model %v", m)
}

func TestServeRequestBitIdenticalThroughSandbox(t *testing.T) {
	// Two machines with identical histories: one served through the
	// new registry+sandbox path, one through the pre-redesign switch.
	// Model order matches the Table 3 harness so TLB warmth carries
	// over identically.
	order := []Model{CGI, FastCGI, LibCGIProtected, LibCGI, Static}
	for _, size := range []uint32{28, 10 * 1024} {
		srvNew, err := bootServer(size)
		if err != nil {
			t.Fatal(err)
		}
		srvLegacy, err := bootServer(size)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range order {
			const requests = 25
			startNew := srvNew.S.K.Clock.Cycles()
			startLegacy := srvLegacy.S.K.Clock.Cycles()
			for i := 0; i < requests; i++ {
				sNew, err := srvNew.ServeRequest(m)
				if err != nil {
					t.Fatal(err)
				}
				sLegacy, err := legacyServeRequest(srvLegacy, m)
				if err != nil {
					t.Fatal(err)
				}
				if sNew != sLegacy {
					t.Fatalf("%v size %d: status %d != legacy %d", m, size, sNew, sLegacy)
				}
			}
			rateNew := srvNew.SustainedRate(srvNew.S.K.Clock.Cycles()-startNew, requests)
			rateLegacy := srvLegacy.SustainedRate(srvLegacy.S.K.Clock.Cycles()-startLegacy, requests)
			if rateNew != rateLegacy {
				t.Errorf("%v size %d: sandbox rate %v != pre-redesign rate %v (want bit-identical)",
					m, size, rateNew, rateLegacy)
			}
		}
	}
}
