// Package webserver implements the LibCGI application of Section 5.2:
// an Apache-style web server whose CGI scripts can be executed under
// four models — classic CGI (fork+exec per request), FastCGI
// (persistent CGI process reached over a local socket), LibCGI
// (the script as an in-process function call), and protected LibCGI
// (the script as a Palladium user-level extension). Table 3 compares
// their throughput against serving the static file directly.
//
// The trusted server core is Go code charging calibrated path costs;
// the LibCGI script itself is a real simulated extension invoked
// through the genuine Palladium (or plain call) machinery, so the
// protected-vs-unprotected difference is produced by the mechanism,
// not by a constant.
package webserver

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/sandbox"
)

// Model selects the request execution model.
type Model int

const (
	// Static serves the file directly from the server (the Table 3
	// "Web Server" bound: no CGI invocation at all).
	Static Model = iota
	// CGI forks and execs a fresh script process per request.
	CGI
	// FastCGI keeps a persistent script process and talks to it over
	// a local socket.
	FastCGI
	// LibCGI calls the script as an unprotected in-process function.
	LibCGI
	// LibCGIProtected calls the script as a Palladium user-level
	// extension.
	LibCGIProtected
)

func (m Model) String() string {
	switch m {
	case Static:
		return "Web Server"
	case CGI:
		return "CGI"
	case FastCGI:
		return "FastCGI"
	case LibCGI:
		return "LibCGI (unprotected)"
	case LibCGIProtected:
		return "LibCGI (protected)"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Costs holds the server path constants (cycles), calibrated against
// Table 3 on the 200 MHz testbed; EXPERIMENTS.md records the anchors.
type Costs struct {
	// BaseRequest is the per-request HTTP path: accept, parse,
	// logging, socket writes (excluding per-byte file costs).
	BaseRequest float64
	// PerByte covers reading the memory-resident file and writing it
	// to the socket, per response byte.
	PerByte float64
	// CGIEnv is the in-process CGI environment setup LibCGI performs.
	CGIEnv float64
	// CGIProcessExtra is classic CGI's per-request cost beyond the
	// charged fork+exec: pipe setup, wait4, scheduler latency, ld.so
	// start-up of the script binary, process teardown.
	CGIProcessExtra float64
	// FastCGIRoundTrip is the persistent-process model's per-request
	// cost: two local-socket messages with context switches plus
	// FastCGI protocol framing and the mod_fastcgi server side.
	FastCGIRoundTrip float64
	// EnvBytes is the CGI meta-variable block staged into the shared
	// data area per protected request.
	EnvBytes int
}

// DefaultCosts returns the Table-3 calibration.
func DefaultCosts() Costs {
	return Costs{
		BaseRequest:      433_941,
		PerByte:          30.03,
		CGIEnv:           11_400,
		CGIProcessExtra:  1_206_000,
		FastCGIRoundTrip: 601_000,
		EnvBytes:         700,
	}
}

// scriptSrc is the LibCGI script: it reads the request word the
// server staged, writes an HTTP status and the response length into
// the shared area, and returns the status. The file body itself is
// streamed by the server (charged per byte), exactly as the paper's
// script "does exactly the same thing" as the static path.
const scriptSrc = `
	.global cgi_script
	.text
	cgi_script:
		mov eax, [esp+4]      ; shared area address
		mov ecx, [eax]        ; request: file length
		mov [eax+4], 200      ; response: status
		mov [eax+8], ecx      ; response: content length
		mov eax, 200
		ret
`

// Server is the extensible web server.
type Server struct {
	S     *core.System
	Costs Costs
	// FileSize is the size of the requested memory-resident file.
	FileSize uint32
	// NetBandwidthMbps is the client link (100 Mbps quiescent Fast
	// Ethernet in the paper's setup).
	NetBandwidthMbps float64

	app       *core.App
	script    *core.ProtectedFunc
	scriptRaw uint32 // unprotected entry address
	shared    uint32
	cgiProc   *kernel.Process

	// The LibCGI script through the unified sandbox API: the same
	// loaded module adopted as a direct-backend extension (the
	// unprotected model) and as a palladium-user extension (the
	// protected model). Both wrap the handles loaded above, so
	// adopting them adds no simulated work to the boot.
	extDirect sandbox.Extension
	extProt   sandbox.Extension

	// Per-server request scratch, reused across requests so the
	// steady-state serving path allocates nothing (asserted by
	// TestServeSteadyStateZeroAlloc). Never shared: each Server is
	// goroutine-owned, and Clone starts with fresh scratch.
	envBuf  []byte  // staged CGI meta-variable block (protected model)
	wordBuf [4]byte // little-endian request word
	respBuf [8]byte // response meta readback
}

// New builds the server and loads the LibCGI script both as a
// protected extension and as a plain function.
func New(s *core.System, fileSize uint32) (*Server, error) {
	srv := &Server{
		S: s, Costs: DefaultCosts(), FileSize: fileSize,
		NetBandwidthMbps: 100,
	}
	app, err := core.NewApp(s)
	if err != nil {
		return nil, err
	}
	if err := app.InitPL(); err != nil {
		return nil, err
	}
	srv.app = app
	h, err := app.SegDlopen(isa.MustAssemble("cgiscript", scriptSrc))
	if err != nil {
		return nil, err
	}
	if srv.script, err = app.SegDlsym(h, "cgi_script"); err != nil {
		return nil, err
	}
	if srv.scriptRaw, err = app.Dlsym(h, "cgi_script"); err != nil {
		return nil, err
	}
	if srv.shared, err = app.SharedAlloc(mem.PageSize); err != nil {
		return nil, err
	}
	// A helper process standing in for forked CGI children.
	if srv.cgiProc, err = s.K.CreateProcess(); err != nil {
		return nil, err
	}
	srv.extDirect = sandbox.AdoptDirect(app, "cgi_script", srv.scriptRaw)
	srv.extProt = sandbox.AdoptProtected(srv.script)
	return srv, nil
}

// App exposes the underlying extensible application (tests and
// examples inspect it).
func (srv *Server) App() *core.App { return srv.app }

// Clone derives an independent server from this one without re-running
// the boot: the underlying system is cloned (COW memory, copied
// machine/kernel state) and the application, script handles and CGI
// helper process are rebound to the clone. The clone's simulated state
// is bit-identical to this server's at the moment of cloning, so a
// clone of a freshly booted server serves exactly like a freshly
// booted server. Clone while no request is in flight; the clone may
// then serve from another goroutine.
func (srv *Server) Clone() (*Server, error) {
	s2, err := srv.S.Clone()
	if err != nil {
		return nil, err
	}
	app2, err := srv.app.Clone(s2)
	if err != nil {
		return nil, err
	}
	script2 := srv.script.Rebind(app2)
	return &Server{
		S: s2, Costs: srv.Costs, FileSize: srv.FileSize,
		NetBandwidthMbps: srv.NetBandwidthMbps,

		app:       app2,
		script:    script2,
		scriptRaw: srv.scriptRaw,
		shared:    srv.shared,
		cgiProc:   s2.K.Process(srv.cgiProc.PID),

		extDirect: sandbox.AdoptDirect(app2, "cgi_script", srv.scriptRaw),
		extProt:   sandbox.AdoptProtected(script2),
	}, nil
}

// modelHandlers is the execution-model registry: ServeRequest
// dispatches by lookup, and the two LibCGI models invoke the script
// through its sandbox extensions — the same registry-lookup shape the
// matrix runner uses, with no per-model switch to extend. modelMu
// guards it because fleet workers call ServeRequest concurrently
// while RegisterModel may install new models.
var (
	modelMu       sync.RWMutex
	modelHandlers = map[Model]func(*Server) (int, error){
		Static:          (*Server).serveStatic,
		CGI:             (*Server).serveCGI,
		FastCGI:         (*Server).serveFastCGI,
		LibCGI:          (*Server).serveLibCGI,
		LibCGIProtected: (*Server).serveLibCGIProtected,
	}
)

// RegisterModel installs (or replaces) the handler for an execution
// model; new serving models can hook into ServeRequest without
// touching the server. The registry is package-global: a registered
// model is visible to every Server.
func RegisterModel(m Model, h func(*Server) (int, error)) {
	modelMu.Lock()
	defer modelMu.Unlock()
	modelHandlers[m] = h
}

// ServeRequest executes one request under the given model, charging
// all costs to the system clock, and returns the HTTP status.
func (srv *Server) ServeRequest(m Model) (int, error) {
	k := srv.S.K
	c := srv.Costs
	k.Clock.Add(c.BaseRequest + c.PerByte*float64(srv.FileSize))
	modelMu.RLock()
	h, ok := modelHandlers[m]
	modelMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("webserver: unknown model %v", m)
	}
	return h(srv)
}

// serveStatic serves the file directly (no CGI invocation at all).
func (srv *Server) serveStatic() (int, error) { return 200, nil }

// serveCGI runs a fresh process per request: real fork + exec costs
// plus the modeled pipe/wait/teardown path.
func (srv *Server) serveCGI() (int, error) {
	k, c := srv.S.K, srv.Costs
	child, err := k.Fork(srv.cgiProc)
	if err != nil {
		return 0, err
	}
	if err := k.Exec(child); err != nil {
		return 0, err
	}
	k.Clock.Add(c.CGIEnv + c.CGIProcessExtra)
	k.Exit(child, 0)
	return 200, nil
}

// serveFastCGI reaches the persistent script process over a local
// socket.
func (srv *Server) serveFastCGI() (int, error) {
	srv.S.K.Clock.Add(srv.Costs.CGIEnv + srv.Costs.FastCGIRoundTrip)
	return 200, nil
}

// serveLibCGI calls the script as an unprotected in-process function
// (the direct sandbox backend).
func (srv *Server) serveLibCGI() (int, error) {
	srv.S.K.Clock.Add(srv.Costs.CGIEnv)
	// Request passed by pointer: no staging copies needed.
	putLEWord(srv.wordBuf[:], srv.FileSize)
	if err := srv.app.WriteMem(srv.shared, srv.wordBuf[:]); err != nil {
		return 0, err
	}
	status, err := srv.extDirect.Invoke(srv.shared)
	if err != nil {
		return 0, err
	}
	return int(status), nil
}

// serveLibCGIProtected calls the script as a Palladium user-level
// extension (the palladium-user sandbox backend): the CGI
// meta-variables are staged into the shared area and exposed for the
// duration of the call, then hidden again — the per-request PPL
// marking and copying that Section 4.4.1 warns about ("may also lead
// to additional data copying unless the shared data is carefully
// placed").
func (srv *Server) serveLibCGIProtected() (int, error) {
	k, c := srv.S.K, srv.Costs
	k.Clock.Add(c.CGIEnv)
	if cap(srv.envBuf) < c.EnvBytes {
		srv.envBuf = make([]byte, c.EnvBytes)
	}
	env := srv.envBuf[:c.EnvBytes]
	clear(env)
	putLEWord(env, srv.FileSize)
	if err := srv.app.WriteMem(srv.shared, env); err != nil {
		return 0, err
	}
	if err := k.SetRange(srv.app.P, srv.shared, 1, true); err != nil {
		return 0, err
	}
	status, err := srv.extProt.Invoke(srv.shared)
	if err != nil {
		return 0, err
	}
	if err := srv.app.ReadMemInto(srv.shared+4, srv.respBuf[:]); err != nil { // response meta
		return 0, err
	}
	if err := k.SetRange(srv.app.P, srv.shared, 1, false); err != nil {
		return 0, err
	}
	return int(status), nil
}

func putLEWord(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// leWord allocates a fresh little-endian word; the serving path uses
// putLEWord into per-server scratch instead (kept for the pre-redesign
// replication in the anchor tests).
func leWord(v uint32) []byte {
	b := make([]byte, 4)
	putLEWord(b, v)
	return b
}

// Throughput serves n requests under the model and returns the
// sustained request rate in requests/second: the CPU-bound rate capped
// by the 100 Mbps client link (response body plus ~350 bytes of HTTP
// framing per request).
func (srv *Server) Throughput(m Model, n int) (float64, error) {
	k := srv.S.K
	start := k.Clock.Cycles()
	for i := 0; i < n; i++ {
		if _, err := srv.ServeRequest(m); err != nil {
			return 0, err
		}
	}
	return srv.SustainedRate(k.Clock.Cycles()-start, n), nil
}

// SustainedRate converts a measured span of cyc simulated cycles over
// n requests into the sustained requests/second rate: the CPU-bound
// rate capped by this server's client link (response body plus ~350
// bytes of HTTP framing per request). It is shared by the serial
// Throughput path and the fleet's per-worker accounting so both
// produce bit-identical rates from the same span.
func (srv *Server) SustainedRate(cyc float64, n int) float64 {
	k := srv.S.K
	secs := k.Clock.Micros(cyc) / 1e6 / float64(n)
	cpuRate := 1 / secs
	wireBytes := float64(srv.FileSize) + 350
	netRate := srv.NetBandwidthMbps * 1e6 / 8 / wireBytes
	if netRate < cpuRate {
		return netRate
	}
	return cpuRate
}

// SimCycles reports the simulated clock of this server's machine,
// implementing fleet.Machine so servers can be fleet workers.
func (srv *Server) SimCycles() float64 { return srv.S.K.Clock.Cycles() }
