package webserver

import (
	"testing"
)

// TestFleetN1MatchesSerialThroughput pins the fleet's N=1 case to the
// serial path: one fleet machine serving the same request sequence
// must report a bit-identical rate for every model, because the
// machine boots identically, executes identically, and the rate comes
// from the same span through the same formula.
func TestFleetN1MatchesSerialThroughput(t *testing.T) {
	const requests = 30
	for _, m := range []Model{Static, CGI, FastCGI, LibCGI, LibCGIProtected} {
		serial := newServer(t, 28)
		want, err := serial.Throughput(m, requests)
		if err != nil {
			t.Fatalf("%v serial: %v", m, err)
		}
		got, err := ServeConcurrent(28, m, 1, requests)
		if err != nil {
			t.Fatalf("%v fleet: %v", m, err)
		}
		if got.AggregateReqPerSec != want {
			t.Errorf("%v: fleet N=1 rate %v != serial %v (must be bit-identical)", m, got.AggregateReqPerSec, want)
		}
		if got.PerWorkerRequests[0] != requests {
			t.Errorf("%v: worker 0 served %d of %d", m, got.PerWorkerRequests[0], requests)
		}
	}
}

// TestFleetAggregateScalesLinearly checks the point of the fleet: N
// independent machines have N times the simulated serving capacity.
func TestFleetAggregateScalesLinearly(t *testing.T) {
	const requests = 40
	single, err := ServeConcurrent(28, LibCGIProtected, 1, requests)
	if err != nil {
		t.Fatal(err)
	}
	four, err := ServeConcurrent(28, LibCGIProtected, 4, requests)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := four.AggregateReqPerSec / single.AggregateReqPerSec; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4-worker aggregate = %.1f req/s, single = %.1f: ratio %.2f, want ~4",
			four.AggregateReqPerSec, single.AggregateReqPerSec, ratio)
	}
	// Round-robin placement: every machine served its share.
	for w, n := range four.PerWorkerRequests {
		if n != requests/4 {
			t.Errorf("worker %d served %d, want %d", w, n, requests/4)
		}
	}
}

// TestFleetReusedAcrossModels mirrors the Table 3 harness: one fleet
// serving all five models in sequence, each span measured separately.
func TestFleetReusedAcrossModels(t *testing.T) {
	f, err := NewFleet(28, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var static, cgi float64
	for _, m := range []Model{Static, CGI} {
		res, err := f.Serve(m, 20)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		switch m {
		case Static:
			static = res.AggregateReqPerSec
		case CGI:
			cgi = res.AggregateReqPerSec
		}
	}
	if static <= cgi {
		t.Errorf("static (%.0f) must outrun CGI (%.0f) in aggregate too", static, cgi)
	}
}

// TestFleetPerRunCountersNotContaminated is the regression test for
// the pool-lifetime-counter bug: back-to-back Serve runs on one fleet
// must report their own QueueHighWater (a heavy run used to leak its
// high water into a later light run's result, contaminating
// BENCH_fleet.json).
func TestFleetPerRunCountersNotContaminated(t *testing.T) {
	f, err := NewFleet(28, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	heavy, err := f.Serve(Static, 40)
	if err != nil {
		t.Fatal(err)
	}
	light, err := f.Serve(Static, 2)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.QueueHighWater == 0 {
		t.Error("heavy run reports no queue high water")
	}
	if light.QueueHighWater > 1 {
		t.Errorf("light run (1 request/worker) high water = %d, want <= 1 (got the heavy run's?)",
			light.QueueHighWater)
	}
	if light.Steals != 0 {
		t.Errorf("pinned light run steals = %d, want 0", light.Steals)
	}
	if n := light.PerWorkerRequests[0] + light.PerWorkerRequests[1]; n != 2 {
		t.Errorf("light run served %d requests, want 2", n)
	}
}
