package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fleet"
	"repro/internal/mem"
	"repro/internal/webserver"
)

// CloneTaxPoint compares serving one Table 3 file size on a shared
// long-lived machine against ephemeral-clone serving, where every
// request runs on a fresh clone of a pristine template and the clone
// is discarded afterwards. Wall-clock columns carry the clone tax; the
// simulated metrics are bit-identical by construction, and
// BitIdentical verifies it per model.
type CloneTaxPoint struct {
	FileSize uint32 `json:"file_size_bytes"`
	Requests int    `json:"requests"`

	// Host wall-clock seconds for the same request mix.
	SharedWallSeconds    float64 `json:"shared_wall_seconds"`
	ColdCloneWallSeconds float64 `json:"cold_clone_wall_seconds"` // fork inline on the request path
	WarmCloneWallSeconds float64 `json:"warm_clone_wall_seconds"` // pre-forked warm pool

	// Per-request clone tax in host microseconds, cold and warm.
	ColdTaxMicrosPerRequest float64 `json:"cold_tax_micros_per_request"`
	WarmTaxMicrosPerRequest float64 `json:"warm_tax_micros_per_request"`

	// BitIdentical: for every model, a request on a fresh clone burns
	// exactly the simulated cycles of the same request on a fresh
	// shared machine — the clone tax is invisible in simulated metrics.
	BitIdentical bool `json:"bit_identical"`
}

// CloneRoundTrip reports the snapshot-to-bytes fidelity check:
// SaveBytes -> LoadBytes must reproduce the machine exactly.
type CloneRoundTrip struct {
	ImageBytes       int  `json:"image_bytes"`
	FingerprintMatch bool `json:"fingerprint_match"`
	// SimMetricsMatch: clock, retired instructions, TLB counters, frame
	// count, COW counters and console output all survive the trip.
	SimMetricsMatch bool `json:"sim_metrics_match"`
	// Deterministic: re-serializing the restored machine is
	// byte-identical to the original image.
	Deterministic bool `json:"deterministic"`
}

// CloneDedup reports content-addressed frame interning across many
// resident machines restored from the same image.
type CloneDedup struct {
	Machines             int     `json:"machines"`
	FramesPerMachine     int     `json:"frames_per_machine"`
	NaiveResidentFrames  int     `json:"naive_resident_frames"`
	UniqueResidentFrames int     `json:"unique_resident_frames"`
	Ratio                float64 `json:"ratio"`
	// FingerprintsIntact: interning never changes any machine's logical
	// contents.
	FingerprintsIntact bool `json:"fingerprints_intact"`
}

// CloneReport is the BENCH_clone.json payload.
type CloneReport struct {
	Note      string          `json:"note"`
	Tax       []CloneTaxPoint `json:"tax"`
	RoundTrip CloneRoundTrip  `json:"round_trip"`
	Dedup     CloneDedup      `json:"dedup"`
}

// MeasureClones produces the ephemeral-clone serving report: the
// per-size clone tax, the snapshot round-trip fidelity, and the
// content-addressed dedup ratio across dedupMachines restored
// machines.
func MeasureClones(sizes []uint32, requests, dedupMachines int) (CloneReport, error) {
	rep := CloneReport{
		Note: "Ephemeral-clone request serving vs a shared long-lived machine. Wall seconds are host " +
			"wall-clock for the same request mix; simulated metrics are bit-identical (bit_identical " +
			"checks per-model cycles). round_trip is SaveBytes->LoadBytes fidelity; dedup is " +
			"content-addressed frame interning across machines restored from one image.",
	}
	for _, size := range sizes {
		pt, err := measureCloneTax(size, requests)
		if err != nil {
			return rep, err
		}
		rep.Tax = append(rep.Tax, pt)
	}
	rt, img, err := measureRoundTrip()
	if err != nil {
		return rep, err
	}
	rep.RoundTrip = rt
	dd, err := measureDedup(img, dedupMachines)
	if err != nil {
		return rep, err
	}
	rep.Dedup = dd
	return rep, nil
}

func measureCloneTax(size uint32, requests int) (CloneTaxPoint, error) {
	pt := CloneTaxPoint{FileSize: size, Requests: requests}
	tmpl, err := webserver.BootServer(size)
	if err != nil {
		return pt, err
	}

	// Bit-identity anchor: per model, one request on a fresh clone vs
	// the same request on a fresh shared machine (equal histories —
	// per-request cycles may carry a one-time warm-up).
	pt.BitIdentical = true
	for _, m := range fleetModels {
		anchor, err := webserver.BootServer(size)
		if err != nil {
			return pt, err
		}
		before := anchor.SimCycles()
		if _, err := anchor.ServeRequest(m); err != nil {
			return pt, err
		}
		anchorCycles := anchor.SimCycles() - before
		c, err := tmpl.Clone()
		if err != nil {
			return pt, err
		}
		before = c.SimCycles()
		if _, err := c.ServeRequest(m); err != nil {
			return pt, err
		}
		if c.SimCycles()-before != anchorCycles {
			pt.BitIdentical = false
		}
		c.S.K.Phys.Release()
	}

	// Shared baseline: one long-lived machine serves the whole mix.
	shared, err := webserver.BootServer(size)
	if err != nil {
		return pt, err
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := shared.ServeRequest(fleetModels[i%len(fleetModels)]); err != nil {
			return pt, err
		}
	}
	pt.SharedWallSeconds = time.Since(start).Seconds()

	// Cold path: fork inline on the request path, discard after.
	start = time.Now()
	for i := 0; i < requests; i++ {
		c, err := tmpl.Clone()
		if err != nil {
			return pt, err
		}
		if _, err := c.ServeRequest(fleetModels[i%len(fleetModels)]); err != nil {
			return pt, err
		}
		c.S.K.Phys.Release()
	}
	pt.ColdCloneWallSeconds = time.Since(start).Seconds()

	// Warm path: the pool's filler pre-forks off the request path.
	pool := fleet.NewClonePool(4, tmpl.Clone,
		func(c *webserver.Server) { c.S.K.Phys.Release() })
	start = time.Now()
	for i := 0; i < requests; i++ {
		c, err := pool.Take()
		if err != nil {
			pool.Close()
			return pt, err
		}
		if _, err := c.ServeRequest(fleetModels[i%len(fleetModels)]); err != nil {
			pool.Close()
			return pt, err
		}
		pool.Discard(c)
	}
	pt.WarmCloneWallSeconds = time.Since(start).Seconds()
	pool.Close()

	pt.ColdTaxMicrosPerRequest = (pt.ColdCloneWallSeconds - pt.SharedWallSeconds) / float64(requests) * 1e6
	pt.WarmTaxMicrosPerRequest = (pt.WarmCloneWallSeconds - pt.SharedWallSeconds) / float64(requests) * 1e6
	return pt, nil
}

func measureRoundTrip() (CloneRoundTrip, []byte, error) {
	var rt CloneRoundTrip
	srv, err := webserver.BootServer(1024)
	if err != nil {
		return rt, nil, err
	}
	for _, m := range fleetModels {
		if _, err := srv.ServeRequest(m); err != nil {
			return rt, nil, err
		}
	}
	img := srv.SaveBytes()
	rt.ImageBytes = len(img)
	restored, err := webserver.LoadServerBytes(img)
	if err != nil {
		return rt, nil, fmt.Errorf("experiments: restore: %w", err)
	}
	rt.FingerprintMatch = restored.S.K.Phys.Fingerprint() == srv.S.K.Phys.Fingerprint()
	rt.SimMetricsMatch = cloneMetricsEqual(srv, restored)
	resave := restored.SaveBytes()
	rt.Deterministic = len(resave) == len(img)
	if rt.Deterministic {
		for i := range img {
			if resave[i] != img[i] {
				rt.Deterministic = false
				break
			}
		}
	}
	return rt, img, nil
}

// cloneMetricsEqual compares every simulated metric two machines
// expose: clock, retired instructions, TLB counters, frames, COW
// counters and console output.
func cloneMetricsEqual(a, b *webserver.Server) bool {
	ka, kb := a.S.K, b.S.K
	ah, am, af := ka.MMU.TLB().Stats()
	bh, bm, bf := kb.MMU.TLB().Stats()
	as, ac, ad := ka.Phys.COWStats()
	bs, bc, bd := kb.Phys.COWStats()
	return ka.Clock.Cycles() == kb.Clock.Cycles() &&
		ka.Machine.Instructions() == kb.Machine.Instructions() &&
		ah == bh && am == bm && af == bf &&
		as == bs && ac == bc && ad == bd &&
		ka.Phys.FrameCount() == kb.Phys.FrameCount() &&
		string(ka.ConsoleOut) == string(kb.ConsoleOut)
}

func measureDedup(img []byte, n int) (CloneDedup, error) {
	dd := CloneDedup{Machines: n}
	store := mem.NewFrameStore()
	machines := make([]*webserver.Server, n)
	phys := make([]*mem.Physical, n)
	fps := make([]uint64, n)
	for i := range machines {
		m, err := webserver.LoadServerBytes(img)
		if err != nil {
			return dd, err
		}
		machines[i] = m
		phys[i] = m.S.K.Phys
		fps[i] = m.S.K.Phys.Fingerprint()
	}
	dd.FramesPerMachine = phys[0].FrameCount()
	for _, p := range phys {
		p.Intern(store)
	}
	naive, unique := mem.ResidentFrames(phys...)
	dd.NaiveResidentFrames = naive
	dd.UniqueResidentFrames = unique
	if unique > 0 {
		dd.Ratio = float64(naive) / float64(unique)
	}
	dd.FingerprintsIntact = true
	for i, p := range phys {
		if p.Fingerprint() != fps[i] {
			dd.FingerprintsIntact = false
		}
	}
	return dd, nil
}

// RenderClones prints the ephemeral-clone serving report.
func RenderClones(w io.Writer, rep CloneReport) {
	fmt.Fprintf(w, "Ephemeral-clone serving: clone tax vs shared machine (%d requests/path)\n",
		reqCount(rep))
	fmt.Fprintf(w, "%-10s %11s %11s %11s %11s %11s %13s\n",
		"Size", "shared(s)", "cold(s)", "warm(s)", "cold(us/r)", "warm(us/r)", "bit-identical")
	for _, p := range rep.Tax {
		fmt.Fprintf(w, "%-10d %11.4f %11.4f %11.4f %11.1f %11.1f %13v\n",
			p.FileSize, p.SharedWallSeconds, p.ColdCloneWallSeconds, p.WarmCloneWallSeconds,
			p.ColdTaxMicrosPerRequest, p.WarmTaxMicrosPerRequest, p.BitIdentical)
	}
	fmt.Fprintf(w, "round trip: %d-byte image, fingerprint match %v, sim metrics match %v, deterministic %v\n",
		rep.RoundTrip.ImageBytes, rep.RoundTrip.FingerprintMatch,
		rep.RoundTrip.SimMetricsMatch, rep.RoundTrip.Deterministic)
	fmt.Fprintf(w, "dedup: %d machines x %d frames: %d resident -> %d unique (%.1fx), contents intact %v\n",
		rep.Dedup.Machines, rep.Dedup.FramesPerMachine, rep.Dedup.NaiveResidentFrames,
		rep.Dedup.UniqueResidentFrames, rep.Dedup.Ratio, rep.Dedup.FingerprintsIntact)
}

func reqCount(rep CloneReport) int {
	if len(rep.Tax) == 0 {
		return 0
	}
	return rep.Tax[0].Requests
}
