package experiments

import (
	"testing"

	"repro/internal/webserver"
)

// TestTable3ConcurrentN1BitIdentical is the acceptance anchor for the
// fleet refactor: a 1-worker fleet regenerates Table 3 bit-identically
// to the serial path, so every paper number is the N=1 case of the
// concurrent serving tier.
func TestTable3ConcurrentN1BitIdentical(t *testing.T) {
	sizes := []uint32{28, 10 * 1024}
	const requests = 25
	serial, err := Table3(sizes, requests)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := Table3Concurrent(sizes, requests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(fleet) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(fleet))
	}
	for i := range serial {
		s, f := serial[i], fleet[i]
		if f.Size != s.Size || f.Workers != 1 {
			t.Fatalf("row %d metadata: %+v", i, f)
		}
		if f.CGI != s.CGI || f.FastCGI != s.FastCGI || f.LibCGIProt != s.LibCGIProt ||
			f.LibCGIUnprot != s.LibCGIUnprot || f.WebServer != s.WebServer {
			t.Errorf("size %d: fleet N=1 row %+v != serial %+v (must be bit-identical)", s.Size, f, s)
		}
	}
}

// TestTable3CloneFleetN8BitIdentical extends the N=1 anchor to the
// clone-booted fleet: 8 workers cloned from one template must serve
// Table 3 exactly as 8 serially booted machines do — every worker's
// sustained rate bit-identical for every model — and the aggregate row
// must match a serial machine's rate scaled by the worker count (each
// of the 8 identical machines serves requests/8 of the per-cell load).
func TestTable3CloneFleetN8BitIdentical(t *testing.T) {
	const (
		size     = 28
		workers  = 8
		requests = 64 // 8 per worker under pinned round-robin
	)
	cloned, err := webserver.NewFleet(size, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer cloned.Close()
	serialFleet, err := webserver.NewFleetSerial(size, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer serialFleet.Close()

	// A lone serial machine serving the same per-worker request count
	// anchors the fleet rates back to the Table 3 path.
	solo, err := webserver.BootServer(size)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fleetModels {
		rc, err := cloned.Serve(m, requests)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := serialFleet.Serve(m, requests)
		if err != nil {
			t.Fatal(err)
		}
		soloRate, err := solo.Throughput(m, requests/workers)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			if rc.PerWorkerReqPerSec[w] != rs.PerWorkerReqPerSec[w] {
				t.Errorf("%v worker %d: clone-boot %v != serial-boot %v",
					m, w, rc.PerWorkerReqPerSec[w], rs.PerWorkerReqPerSec[w])
			}
			if rc.PerWorkerReqPerSec[w] != soloRate {
				t.Errorf("%v worker %d: fleet rate %v != serial Table 3 machine %v",
					m, w, rc.PerWorkerReqPerSec[w], soloRate)
			}
		}
		if rc.AggregateReqPerSec != rs.AggregateReqPerSec {
			t.Errorf("%v aggregate: clone-boot %v != serial-boot %v", m, rc.AggregateReqPerSec, rs.AggregateReqPerSec)
		}
	}
}

// TestMeasureFleetScalingCurve sanity-checks the BENCH_fleet.json
// generator: monotone aggregate capacity and the >=3x-at-8-workers
// acceptance bar (checked here at a smaller scale to keep the test
// cheap: 4 workers must already be >=3x).
func TestMeasureFleetScalingCurve(t *testing.T) {
	rep, err := MeasureFleet(28, 24, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scaling) != 3 {
		t.Fatalf("scaling points = %d, want 3", len(rep.Scaling))
	}
	base := rep.Scaling[0]
	if base.SpeedupVs1 != 1 {
		t.Errorf("1-worker speedup = %v, want 1", base.SpeedupVs1)
	}
	prev := 0.0
	for _, pt := range rep.Scaling {
		if pt.LibCGIProt <= prev {
			t.Errorf("aggregate LibCGI(prot) not monotone: %v after %v at %d workers", pt.LibCGIProt, prev, pt.Workers)
		}
		prev = pt.LibCGIProt
		if pt.FilterPktPerSec <= 0 {
			t.Errorf("%d workers: no filter fleet rate", pt.Workers)
		}
	}
	if last := rep.Scaling[2]; last.SpeedupVs1 < 3 {
		t.Errorf("4-worker speedup = %.2f, want >= 3", last.SpeedupVs1)
	}
	if len(rep.Table3N1) != 4 {
		t.Errorf("Table3N1 rows = %d, want the 4 paper sizes", len(rep.Table3N1))
	}
}
