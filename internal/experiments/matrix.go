package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/verify"
	"repro/sandbox"
)

// The workload×backend matrix: both evaluation workloads (the Figure
// 7 packet filter and the Table 3 LibCGI script) run under every
// applicable sandbox backend — including the combinations the paper
// never measured (a packet filter under SFI or as a protected
// user-level extension, the CGI script inside a kernel segment or
// behind loopback RPC). The unified sandbox API is what makes these
// cells one loop instead of five hand-wired harnesses.

// MatrixWorkloads lists the matrix's workload names.
func MatrixWorkloads() []string { return []string{"packet-filter", "libcgi"} }

// MatrixCell is one workload×backend measurement.
type MatrixCell struct {
	Workload string `json:"workload"`
	Backend  string `json:"backend"`
	// Supported is false for combinations the mechanism cannot
	// express (BPF bytecode cannot encode the CGI script).
	Supported bool `json:"supported"`
	// InPaper marks cells the paper's evaluation measured (Figure 7:
	// bpf + palladium-kernel filters; Table 3: direct +
	// palladium-user LibCGI).
	InPaper bool `json:"in_paper"`
	// CyclesPerOp is the simulated cycles of one operation (one
	// packet match, one CGI invocation), averaged over the run after
	// a warm-up op.
	CyclesPerOp float64 `json:"cycles_per_op"`
	// OpsPerSec converts CyclesPerOp at the machine's clock rate.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Result is the workload's sanity value (filter verdict 1, HTTP
	// status 200).
	Result uint32 `json:"result"`
	// Verified is the load-time static verifier's verdict for the
	// cell's extension ("clean", "guarded"), or "-" where the cell
	// does not verify (unsupported combinations). Matrix cells load
	// with sandbox.LoadOptions.Verify, so clean cells also run with
	// tier-2 check elision — whose simulated metrics are bit-identical
	// to the unverified load by construction.
	Verified string `json:"verified,omitempty"`
	Note     string `json:"note,omitempty"`
}

// MatrixReport is the BENCH_matrix.json payload.
type MatrixReport struct {
	Note      string       `json:"note"`
	Requests  int          `json:"requests_per_cell"`
	Backends  []string     `json:"backends"`
	Workloads []string     `json:"workloads"`
	Supported int          `json:"supported_cells"`
	Novel     int          `json:"cells_not_in_paper"`
	Cells     []MatrixCell `json:"cells"`
}

// matrixOp is one prepared cell: op runs one operation and returns
// the workload's sanity value.
type matrixOp struct {
	op       func() (uint32, error)
	clock    *cycles.Clock
	inPaper  bool
	note     string
	verified string
}

// verifiedOf reads the static verifier's verdict off a loaded
// extension ("-" when the backend attached no report).
func verifiedOf(ext sandbox.Extension) string {
	type reporter interface{ VerifyReport() *verify.Report }
	if vr, ok := ext.(reporter); ok {
		if rep := vr.VerifyReport(); rep != nil {
			return rep.Status.String()
		}
	}
	return "-"
}

// cgiScriptSrc is the Table 3 LibCGI script (webserver.scriptSrc's
// semantics): it reads the request word the server staged at the
// shared address it is passed, writes response status and length
// beside it, and returns the status.
const cgiScriptSrc = `
	.global cgi_script
	.text
	cgi_script:
		mov eax, [esp+4]      ; shared area address
		mov ecx, [eax]        ; request: file length
		mov [eax+4], 200      ; response: status
		mov [eax+8], ecx      ; response: content length
		mov eax, 200
		ret
`

// kernelCGIScriptSrc adds an in-module data area so the script can run
// inside a kernel extension segment (addresses are segment-relative
// there; the staged area must live inside the segment).
const kernelCGIScriptSrc = cgiScriptSrc + `
	.data
	.global cgi_env
	cgi_env: .space 1024
`

// MeasureMatrix runs the full workload×backend matrix, `requests`
// operations per cell, booting one fresh machine per cell so cells
// are independent and deterministic. backends nil or empty selects
// every registered backend.
func MeasureMatrix(requests int, backends []string) (MatrixReport, error) {
	if requests < 1 {
		return MatrixReport{}, fmt.Errorf("experiments: matrix needs requests >= 1, got %d", requests)
	}
	if len(backends) == 0 {
		backends = sandbox.Backends()
	}
	rep := MatrixReport{
		Note: "Workload x backend matrix through the unified sandbox API: simulated cycles per operation " +
			"(packet match / CGI invocation) for each isolation mechanism, including combinations the paper " +
			"never measured. Each cell boots its own machine; cells are deterministic.",
		Requests:  requests,
		Backends:  backends,
		Workloads: MatrixWorkloads(),
	}
	for _, workload := range rep.Workloads {
		for _, backend := range backends {
			cell := MatrixCell{Workload: workload, Backend: backend}
			prep, err := prepareCell(workload, backend)
			if err != nil {
				return rep, fmt.Errorf("experiments: matrix %s x %s: %w", workload, backend, err)
			}
			if prep == nil {
				cell.Note = "mechanism cannot express this workload"
				rep.Cells = append(rep.Cells, cell)
				continue
			}
			cell.Supported = true
			cell.InPaper = prep.inPaper
			cell.Note = prep.note
			cell.Verified = prep.verified
			// Warm one op (the paper's cache-warm methodology), then
			// measure the span of the run.
			if cell.Result, err = prep.op(); err != nil {
				return rep, fmt.Errorf("experiments: matrix %s x %s warm-up: %w", workload, backend, err)
			}
			start := prep.clock.Cycles()
			for i := 0; i < requests; i++ {
				v, err := prep.op()
				if err != nil {
					return rep, fmt.Errorf("experiments: matrix %s x %s op %d: %w", workload, backend, i, err)
				}
				cell.Result = v
			}
			cell.CyclesPerOp = (prep.clock.Cycles() - start) / float64(requests)
			if cell.CyclesPerOp > 0 {
				cell.OpsPerSec = prep.clock.MHz() * 1e6 / cell.CyclesPerOp
			}
			rep.Supported++
			if !cell.InPaper {
				rep.Novel++
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// prepareCell boots a machine and builds the cell's op; nil means the
// combination is unsupported.
func prepareCell(workload, backend string) (*matrixOp, error) {
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	if _, err := s.K.CreateProcess(); err != nil {
		return nil, err
	}
	switch workload {
	case "packet-filter":
		return preparePacketFilterCell(s, backend)
	case "libcgi":
		return prepareLibCGICell(s, backend)
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func preparePacketFilterCell(s *core.System, backend string) (*matrixOp, error) {
	pkt := filter.MakeUDPPacket(1234, 53, 64)
	terms := filter.TermsTrueFor(pkt, 4)
	var (
		fil *filter.Filter
		err error
		mo  = &matrixOp{clock: s.Clock()}
	)
	switch backend {
	case "bpf":
		fil, err = filter.NewInterpreted(s, terms)
		mo.inPaper, mo.note = true, "Figure 7 interpreted filter"
	case "palladium-kernel":
		// filter.NewCompiled's exact load, plus the static verifier:
		// verified cells run with tier-2 check elision (metrics are
		// bit-identical to the unverified load by construction).
		obj, entry, cerr := filter.CompileObject(terms)
		if cerr != nil {
			return nil, cerr
		}
		b, oerr := sandbox.Open(backend, sandbox.HostFor(s))
		if oerr != nil {
			return nil, oerr
		}
		ext, lerr := b.Load(obj, sandbox.WithVerify(sandbox.LoadOptions{Entry: entry, SharedSymbol: "shared_area"}))
		if lerr != nil {
			return nil, lerr
		}
		fil = filter.NewFilter("Palladium", ext, true)
		mo.inPaper, mo.note = true, "Figure 7 compiled in-kernel filter"
	case "direct", "palladium-user", "sfi", "rpc":
		obj, entry, cerr := filter.CompileObject(terms)
		if cerr != nil {
			return nil, cerr
		}
		b, oerr := sandbox.Open(backend, sandbox.HostFor(s))
		if oerr != nil {
			return nil, oerr
		}
		opts := sandbox.WithVerify(sandbox.LoadOptions{Entry: entry, SharedSymbol: "shared_area",
			ReqBytes: filter.HeaderLen, RespBytes: 4})
		if backend == "sfi" {
			// Read guards: the filter only loads packet bytes, so the
			// write-only mode would guard nothing.
			opts.SFI = sandbox.DefaultSFIRegion
			opts.SFI.GuardReads = true
		}
		ext, lerr := b.Load(obj, opts)
		if lerr != nil {
			return nil, lerr
		}
		fil = filter.NewFilter(backend, ext, true)
		mo.note = map[string]string{
			"direct":         "compiled filter as a plain user-level call (not in paper)",
			"palladium-user": "compiled filter as a protected user-level extension (not in paper)",
			"sfi":            "compiled filter under SFI read+write guards (not in paper)",
			"rpc":            "compiled filter in a server process behind loopback RPC (not in paper)",
		}[backend]
	default:
		return nil, fmt.Errorf("unknown backend %q", backend)
	}
	if err != nil {
		return nil, err
	}
	mo.verified = verifiedOf(fil.Extension())
	mo.op = func() (uint32, error) {
		ok, err := fil.Match(pkt)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("all-true packet rejected")
		}
		return 1, nil
	}
	return mo, nil
}

func prepareLibCGICell(s *core.System, backend string) (*matrixOp, error) {
	const fileSize = 28 // Table 3's headline row
	env := make([]byte, 700)
	env[0] = fileSize
	mo := &matrixOp{clock: s.Clock()}

	src, opts := cgiScriptSrc, sandbox.LoadOptions{Entry: "cgi_script", SharedBytes: mem.PageSize}
	switch backend {
	case "bpf":
		return nil, nil // BPF bytecode cannot encode the script
	case "direct":
		mo.inPaper, mo.note = true, "Table 3 LibCGI (unprotected)"
	case "palladium-user":
		mo.inPaper, mo.note = true, "Table 3 LibCGI (protected)"
	case "palladium-kernel":
		src, opts = kernelCGIScriptSrc, sandbox.LoadOptions{Entry: "cgi_script", SharedSymbol: "cgi_env"}
		mo.note = "CGI script inside a kernel extension segment (not in paper)"
	case "sfi":
		opts = sandbox.LoadOptions{Entry: "cgi_script"} // stages at the region base
		mo.note = "CGI script under SFI write guards (not in paper)"
	case "rpc":
		opts.ReqBytes, opts.RespBytes = len(env), 8
		mo.note = "CGI script in a server process behind loopback RPC (not in paper)"
	default:
		return nil, fmt.Errorf("unknown backend %q", backend)
	}
	b, err := sandbox.Open(backend, sandbox.HostFor(s))
	if err != nil {
		return nil, err
	}
	ext, err := b.Load(isa.MustAssemble("cgiscript", src), sandbox.WithVerify(opts))
	if err != nil {
		return nil, err
	}
	mo.verified = verifiedOf(ext)
	st, ok := ext.(sandbox.Stager)
	if !ok {
		return nil, fmt.Errorf("%s extension has no staging area", backend)
	}
	mo.op = func() (uint32, error) {
		if err := st.Stage(env); err != nil {
			return 0, err
		}
		status, err := ext.Invoke(st.SharedArg())
		if err != nil {
			return 0, err
		}
		if status != 200 {
			return status, fmt.Errorf("script returned %d", status)
		}
		return status, nil
	}
	return mo, nil
}

// RenderMatrix prints the matrix as a workload-major grid.
func RenderMatrix(w io.Writer, rep MatrixReport) {
	fmt.Fprintf(w, "Workload x backend matrix (%d ops/cell, simulated cycles per op; * = measured in the paper)\n",
		rep.Requests)
	fmt.Fprintf(w, "%-14s", "")
	for _, b := range rep.Backends {
		fmt.Fprintf(w, " %16s", b)
	}
	fmt.Fprintln(w)
	for _, wl := range rep.Workloads {
		fmt.Fprintf(w, "%-14s", wl)
		for _, b := range rep.Backends {
			cell := findCell(rep, wl, b)
			switch {
			case cell == nil || !cell.Supported:
				fmt.Fprintf(w, " %16s", "-")
			case cell.InPaper:
				fmt.Fprintf(w, " %15.0f*", cell.CyclesPerOp)
			default:
				fmt.Fprintf(w, " %16.0f", cell.CyclesPerOp)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nLoad-time verifier verdict per cell (clean = all accesses proven, guarded = runtime checks carry the burden)")
	fmt.Fprintf(w, "%-14s", "")
	for _, b := range rep.Backends {
		fmt.Fprintf(w, " %16s", b)
	}
	fmt.Fprintln(w)
	for _, wl := range rep.Workloads {
		fmt.Fprintf(w, "%-14s", wl)
		for _, b := range rep.Backends {
			cell := findCell(rep, wl, b)
			v := "-"
			if cell != nil && cell.Supported && cell.Verified != "" {
				v = cell.Verified
			}
			fmt.Fprintf(w, " %16s", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d supported cells, %d combinations not measured in the paper\n", rep.Supported, rep.Novel)
}

func findCell(rep MatrixReport, workload, backend string) *MatrixCell {
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Workload == workload && c.Backend == backend {
			return c
		}
	}
	return nil
}
