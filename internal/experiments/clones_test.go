package experiments

import "testing"

// TestMeasureClones is the acceptance gate for ephemeral-clone
// serving: bit-identical simulated metrics on clones, exact snapshot
// round-trip, and >= 2x resident-frame dedup across 8 restored
// machines.
func TestMeasureClones(t *testing.T) {
	rep, err := MeasureClones([]uint32{28, 1024}, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tax) != 2 {
		t.Fatalf("got %d tax points", len(rep.Tax))
	}
	for _, pt := range rep.Tax {
		if !pt.BitIdentical {
			t.Errorf("size %d: clone serving not bit-identical to shared machine", pt.FileSize)
		}
		if pt.SharedWallSeconds <= 0 || pt.ColdCloneWallSeconds <= 0 || pt.WarmCloneWallSeconds <= 0 {
			t.Errorf("size %d: empty wall measurements: %+v", pt.FileSize, pt)
		}
	}
	rt := rep.RoundTrip
	if !rt.FingerprintMatch || !rt.SimMetricsMatch || !rt.Deterministic {
		t.Errorf("round trip degraded: %+v", rt)
	}
	if rt.ImageBytes == 0 {
		t.Errorf("empty snapshot image")
	}
	dd := rep.Dedup
	if dd.Machines != 8 || !dd.FingerprintsIntact {
		t.Errorf("dedup ran wrong: %+v", dd)
	}
	if dd.Ratio < 2 {
		t.Errorf("dedup ratio %.2fx across %d machines, want >= 2x", dd.Ratio, dd.Machines)
	}
	if dd.NaiveResidentFrames != dd.Machines*dd.FramesPerMachine {
		t.Errorf("naive residency %d != %d machines x %d frames",
			dd.NaiveResidentFrames, dd.Machines, dd.FramesPerMachine)
	}
}
