package experiments

import (
	"strings"
	"testing"
)

// TestMeasureSnapshotReport checks the BENCH_snapshot.json generator:
// clone-booted fleets must be flagged bit-identical and the rollback
// verification must pass. (The >=5x speedup at 8 workers is asserted
// by the committed BENCH_snapshot.json run, not here: wall-clock
// ratios at test scale are noisy.)
func TestMeasureSnapshotReport(t *testing.T) {
	rep, err := MeasureSnapshot(28, 20, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Boot) != 2 {
		t.Fatalf("boot points = %d, want 2", len(rep.Boot))
	}
	for _, pt := range rep.Boot {
		if !pt.BitIdentical {
			t.Errorf("%d workers: clone-booted fleet not bit-identical to serial boots", pt.Workers)
		}
		if pt.SerialBootSeconds <= 0 || pt.CloneBootSeconds <= 0 {
			t.Errorf("%d workers: non-positive boot timings %+v", pt.Workers, pt)
		}
	}
	if !rep.RollbackVerified {
		t.Error("rollback verification failed")
	}
	var b strings.Builder
	RenderSnapshot(&b, rep)
	if !strings.Contains(b.String(), "rollback verified: true") {
		t.Errorf("render missing rollback line:\n%s", b.String())
	}
}
