package experiments

import (
	"fmt"
	"io"
)

// RenderTable1 prints the decomposition like the paper's Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: protected call cost decomposition (CPU cycles)\n")
	fmt.Fprintf(w, "%-22s %8s %8s %10s\n", "Component", "Inter", "Intra", "Hardware")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8.0f %8.0f %10.0f\n", r.Component, r.Inter, r.Intra, r.Hardware)
	}
}

// RenderTable2 prints the string-reverse latencies like Table 2.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: string reverse latency (microseconds)\n")
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "Size (bytes)", "Unprotected", "Palladium", "Linux RPC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %12.2f %12.2f %12.2f\n", r.Size, r.Unprotected, r.Palladium, r.RPC)
	}
}

// RenderTable3 prints the CGI throughput comparison like Table 3.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: CGI execution throughput (requests/second)\n")
	fmt.Fprintf(w, "%-12s %8s %9s %12s %14s %10s\n",
		"File size", "CGI", "FastCGI", "LibCGI(prot)", "LibCGI(unprot)", "WebServer")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.0f %9.0f %12.0f %14.0f %10.0f\n",
			sizeLabel(r.Size), r.CGI, r.FastCGI, r.LibCGIProt, r.LibCGIUnprot, r.WebServer)
	}
}

func sizeLabel(n uint32) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%d KBytes", n/1024)
	default:
		return fmt.Sprintf("%d Bytes", n)
	}
}

// RenderFigure7 prints the filter comparison as the series behind
// Figure 7.
func RenderFigure7(w io.Writer, pts []Figure7Point) {
	fmt.Fprintf(w, "Figure 7: packet filter cost vs number of conjunction terms (cycles)\n")
	fmt.Fprintf(w, "%-8s %10s %12s\n", "Terms", "BPF", "Palladium")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %10.0f %12.0f\n", p.Terms, p.BPF, p.Palladium)
	}
}

// RenderMicro prints the Section 5.1 micro-measurements.
func RenderMicro(w io.Writer, m Micro) {
	fmt.Fprintf(w, "Section 5.1 micro-measurements\n")
	fmt.Fprintf(w, "%-44s %10.0f   (paper: 142)\n", "protected call + return (cycles)", m.PalladiumCallCycles)
	fmt.Fprintf(w, "%-44s %10.0f   (paper: 3,325)\n", "SIGSEGV fault-to-delivery (cycles)", m.SIGSEGVDeliveryCycles)
	fmt.Fprintf(w, "%-44s %10.0f   (paper: 1,020)\n", "kernel extension #GP processing (cycles)", m.KernelGPFaultCycles)
	fmt.Fprintf(w, "%-44s %10.1f   (paper: ~400)\n", "dlopen of null extension (us)", m.DlopenMicros)
	fmt.Fprintf(w, "%-44s %10.1f   (paper: ~420)\n", "seg_dlopen of null extension (us)", m.SegDlopenMicros)
	fmt.Fprintf(w, "%-44s %10.0f   (paper: 12)\n", "segment register load (cycles)", m.SegRegLoadCycles)
	fmt.Fprintf(w, "%-44s %10.0f   (paper: 242)\n", "L4-style IPC round trip (cycles)", m.L4RoundTripCycles)
}

// RenderAblations prints the design-choice studies.
func RenderAblations(w io.Writer, sfiPts []SFIPoint, cc CrossingsComparison) {
	fmt.Fprintf(w, "Ablation: SFI overhead vs memory-op density\n")
	fmt.Fprintf(w, "%-18s %12s\n", "mem ops / 100", "overhead %%")
	for _, p := range sfiPts {
		fmt.Fprintf(w, "%-18d %11.1f%%\n", p.MemOpsPercent, p.OverheadPct)
	}
	fmt.Fprintf(w, "\nAblation: domain-crossing strategies (cycles per logical call)\n")
	fmt.Fprintf(w, "%-44s %8.0f\n", "Palladium (2 crossings, Figure 6)", cc.Palladium2Crossings)
	fmt.Fprintf(w, "%-44s %8.0f\n", "L4-style IPC (4 crossings)", cc.L4Style4Crossings)
	fmt.Fprintf(w, "%-44s %8.0f\n", "rejected: TSS update via system call", cc.TSSSyscallVariant)
}
