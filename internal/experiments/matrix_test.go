package experiments

import (
	"strings"
	"testing"
)

func TestMatrixCoversWorkloadsAndBackends(t *testing.T) {
	rep, err := MeasureMatrix(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 12 {
		t.Fatalf("cells = %d, want 12 (2 workloads x 6 backends)", len(rep.Cells))
	}
	if rep.Supported < 8 {
		t.Errorf("supported cells = %d, want >= 8", rep.Supported)
	}
	if rep.Novel < 2 {
		t.Errorf("novel cells = %d, want >= 2 combinations the paper never measured", rep.Novel)
	}
	inPaper := 0
	for _, c := range rep.Cells {
		if c.Workload == "libcgi" && c.Backend == "bpf" {
			if c.Supported {
				t.Error("libcgi x bpf marked supported")
			}
			continue
		}
		if !c.Supported {
			t.Errorf("%s x %s unsupported", c.Workload, c.Backend)
			continue
		}
		if c.CyclesPerOp <= 0 || c.OpsPerSec <= 0 {
			t.Errorf("%s x %s: cycles/op %v, ops/s %v", c.Workload, c.Backend, c.CyclesPerOp, c.OpsPerSec)
		}
		switch c.Workload {
		case "packet-filter":
			if c.Result != 1 {
				t.Errorf("%s x %s verdict = %d, want accept", c.Workload, c.Backend, c.Result)
			}
		case "libcgi":
			if c.Result != 200 {
				t.Errorf("%s x %s status = %d, want 200", c.Workload, c.Backend, c.Result)
			}
		}
		if c.InPaper {
			inPaper++
		}
	}
	// Exactly the four cells the paper's evaluation measured: Figure
	// 7's two filters and Table 3's two LibCGI models.
	if inPaper != 4 {
		t.Errorf("in-paper cells = %d, want 4", inPaper)
	}
}

func TestMatrixDeterministic(t *testing.T) {
	a, err := MeasureMatrix(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureMatrix(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %s x %s differs across runs: %+v vs %+v",
				a.Cells[i].Workload, a.Cells[i].Backend, a.Cells[i], b.Cells[i])
		}
	}
}

func TestMatrixBackendRestriction(t *testing.T) {
	rep, err := MeasureMatrix(3, []string{"bpf", "palladium-kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("restricted cells = %d, want 4", len(rep.Cells))
	}
	var out strings.Builder
	RenderMatrix(&out, rep)
	for _, want := range []string{"packet-filter", "libcgi", "palladium-kernel", "*"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}

func TestMatrixOrderingConsistentWithPaper(t *testing.T) {
	// The cross-mechanism claims the matrix must reproduce: the
	// compiled in-kernel filter beats the interpreter (Figure 7) and
	// the protected LibCGI call costs more than the unprotected one
	// but nowhere near the RPC-style isolation (Table 2/3).
	rep, err := MeasureMatrix(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(w, b string) *MatrixCell {
		c := findCell(rep, w, b)
		if c == nil || !c.Supported {
			t.Fatalf("missing cell %s x %s", w, b)
		}
		return c
	}
	if bpfC, pal := cell("packet-filter", "bpf"), cell("packet-filter", "palladium-kernel"); bpfC.CyclesPerOp < 2*pal.CyclesPerOp {
		t.Errorf("interpreted filter %v not >2x compiled %v", bpfC.CyclesPerOp, pal.CyclesPerOp)
	}
	unprot, prot := cell("libcgi", "direct"), cell("libcgi", "palladium-user")
	if prot.CyclesPerOp <= unprot.CyclesPerOp {
		t.Errorf("protected libcgi %v not above unprotected %v", prot.CyclesPerOp, unprot.CyclesPerOp)
	}
	if rpcCell := cell("libcgi", "rpc"); rpcCell.CyclesPerOp < 10*prot.CyclesPerOp {
		t.Errorf("rpc libcgi %v not an order of magnitude above protected %v", rpcCell.CyclesPerOp, prot.CyclesPerOp)
	}
}
