package experiments

import (
	"strings"
	"testing"
)

// TestMeasureVerifyReport pins the -verify bench end to end: every
// escape program is statically rejected with a populated report, every
// paper workload is accepted, and elision leaves the simulated metrics
// bit-identical while actually eliding checks.
func TestMeasureVerifyReport(t *testing.T) {
	rep, err := MeasureVerify(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 8 {
		t.Fatalf("rejected cases = %d, want 8", len(rep.Rejected))
	}
	for _, c := range rep.Rejected {
		if c.Status != "rejected" {
			t.Errorf("%s (%s): status %q, want rejected", c.Name, c.Backend, c.Status)
		}
		if len(c.Violations) == 0 {
			t.Errorf("%s (%s): rejected with no violations", c.Name, c.Backend)
		}
	}
	if len(rep.Accepted) != 6 {
		t.Fatalf("accepted cases = %d, want 6", len(rep.Accepted))
	}
	bounded := 0
	for _, c := range rep.Accepted {
		if c.Status != "clean" && c.Status != "guarded" {
			t.Errorf("%s (%s): status %q, want clean or guarded", c.Name, c.Backend, c.Status)
		}
		if c.Bounded {
			bounded++
		}
	}
	// Data-dependent loops (strrev over a NUL-terminated string) are
	// legitimately unbounded statically; the constant-trip hot loop and
	// the straight-line filters must still prove a step bound.
	if bounded < 3 {
		t.Errorf("bounded accepts = %d, want >= 3", bounded)
	}
	el := rep.Elision
	if !el.MetricsIdentical {
		t.Fatal("elision changed simulated metrics")
	}
	if el.SimCyclesVerified != el.SimCyclesBaseline {
		t.Fatalf("sim cycles differ: verified %v vs baseline %v", el.SimCyclesVerified, el.SimCyclesBaseline)
	}
	if el.ElidedChecks == 0 {
		t.Fatal("verified run elided no checks")
	}
	if el.Result != 500500 {
		t.Fatalf("hot loop result = %d, want 500500", el.Result)
	}
	var out strings.Builder
	RenderVerify(&out, rep)
	for _, want := range []string{"rejected", "clean", "elided"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}

// TestMatrixVerifiedColumn pins the matrix's verifier column: every
// supported cell carries a verdict, everything is clean except libcgi
// under sfi, whose shared-arg pointer accesses the rewriter leaves for
// runtime masking (so the verifier conservatively reports guarded).
func TestMatrixVerifiedColumn(t *testing.T) {
	rep, err := MeasureMatrix(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !c.Supported {
			if c.Verified != "" {
				t.Errorf("%s x %s unsupported but verified=%q", c.Workload, c.Backend, c.Verified)
			}
			continue
		}
		want := "clean"
		if c.Workload == "libcgi" && c.Backend == "sfi" {
			want = "guarded"
		}
		if c.Verified != want {
			t.Errorf("%s x %s verified = %q, want %q", c.Workload, c.Backend, c.Verified, want)
		}
	}
}
