// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) on the simulated system. It is shared
// by the root benchmark suite, the cmd/palladium-bench tool, and the
// regression tests that pin the reproduced shapes.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/rpc"
	"repro/internal/sfi"
	"repro/internal/webserver"
	"repro/sandbox"
)

// StrrevSrc is the Table 2 extension: "an artificial extension
// function that accepts a pointer to a string and reverses the
// string".
const StrrevSrc = `
	.global strrev
	.text
	strrev:
		push ebx
		push esi
		push edi
		mov esi, [esp+16]     ; s
		mov ecx, esi
	len:
		movb edx, [ecx]
		inc ecx
		cmp edx, 0
		jne len
		sub ecx, 2            ; right = end-1
		mov edi, esi          ; left
		mov eax, esi          ; return value
	rev:
		cmp edi, ecx
		jae done
		movb edx, [edi]
		movb ebx, [ecx]
		movb [edi], ebx
		movb [ecx], edx
		inc edi
		dec ecx
		jmp rev
	done:
		pop edi
		pop esi
		pop ebx
		ret
`

// NullExtSrc is the Table 1 null extension.
const NullExtSrc = `
	.global nullfn
	.text
	nullfn: ret
`

// newSystem boots a fresh Palladium system.
func newSystem(model *cycles.Model) (*core.System, error) {
	return core.NewSystem(model)
}

func newApp(s *core.System) (*core.App, error) {
	a, err := core.NewApp(s)
	if err != nil {
		return nil, err
	}
	if err := a.InitPL(); err != nil {
		return nil, err
	}
	return a, nil
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one decomposition row.
type Table1Row struct {
	Component string
	Inter     float64
	Intra     float64
	Hardware  float64
}

// Table1 regenerates the protected-call cost decomposition.
func Table1() ([]Table1Row, error) {
	inter, err := measurePhases(cycles.Measured(), true)
	if err != nil {
		return nil, err
	}
	intra, err := measurePhases(cycles.Measured(), false)
	if err != nil {
		return nil, err
	}
	hw, err := measurePhases(cycles.Manual(), true)
	if err != nil {
		return nil, err
	}
	return []Table1Row{
		{"Setting up stack", inter.Setup, intra.Setup, hw.Setup},
		{"Calling function", inter.Call, intra.Call, hw.Call},
		{"Returning to caller", inter.Return, intra.Return, hw.Return},
		{"Restoring state", inter.Restore, intra.Restore, hw.Restore},
		{"Total Cost", inter.Total(), intra.Total(), hw.Total()},
	}, nil
}

func measurePhases(model *cycles.Model, protected bool) (core.Phases, error) {
	s, err := newSystem(model)
	if err != nil {
		return core.Phases{}, err
	}
	a, err := newApp(s)
	if err != nil {
		return core.Phases{}, err
	}
	h, err := a.SegDlopen(isa.MustAssemble("null", NullExtSrc))
	if err != nil {
		return core.Phases{}, err
	}
	if protected {
		pf, err := a.SegDlsym(h, "nullfn")
		if err != nil {
			return core.Phases{}, err
		}
		return core.MeasureProtectedCall(pf, 0)
	}
	addr, err := a.Dlsym(h, "nullfn")
	if err != nil {
		return core.Phases{}, err
	}
	return core.MeasureUnprotectedCall(a, addr, 0)
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one string-size row, in microseconds.
type Table2Row struct {
	Size        int
	Unprotected float64
	Palladium   float64
	RPC         float64
}

// Table2 regenerates the string-reverse comparison for the given
// sizes (the paper uses 32/64/128/256). The strrev module is loaded
// once and dispatched through the unified sandbox API: the same
// handle adopted as a direct-backend extension (the unprotected
// column) and as a palladium-user extension (the Palladium column),
// so both columns measure the same loaded bytes and the rows are
// bit-identical to the pre-redesign pf.Call / CallUnprotected path
// (pinned by TestTable2BitIdenticalThroughSandbox). The RPC column
// stays the Loopback cost model: it prices shipping the string to a
// server doing the measured unprotected work.
func Table2(sizes []int) ([]Table2Row, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	a, err := newApp(s)
	if err != nil {
		return nil, err
	}
	h, err := a.SegDlopen(isa.MustAssemble("strrev", StrrevSrc))
	if err != nil {
		return nil, err
	}
	pf, err := a.SegDlsym(h, "strrev")
	if err != nil {
		return nil, err
	}
	raw, err := a.Dlsym(h, "strrev")
	if err != nil {
		return nil, err
	}
	buf, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	loop, err := rpc.NewLoopback(s.K)
	if err != nil {
		return nil, err
	}
	direct := sandbox.AdoptDirect(a, "strrev", raw)
	prot := sandbox.AdoptProtected(pf)

	clock := s.Clock()
	var rows []Table2Row
	for _, n := range sizes {
		str := strings.Repeat("ab", n/2)[:n]
		if err := a.WriteString(buf, str); err != nil {
			return nil, err
		}
		// Warm (the paper fully warms the CPU cache).
		if _, err := direct.Invoke(buf); err != nil {
			return nil, err
		}
		unprot := clock.Span(func() {
			if _, err2 := direct.Invoke(buf); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		if _, err := prot.Invoke(buf); err != nil {
			return nil, err
		}
		protCyc := clock.Span(func() {
			if _, err2 := prot.Invoke(buf); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		// RPC: ship the string both ways; the server does the same
		// reverse work.
		rpcCyc := loop.Call(n, n, unprot)
		rows = append(rows, Table2Row{
			Size:        n,
			Unprotected: clock.Micros(unprot),
			Palladium:   clock.Micros(protCyc),
			RPC:         clock.Micros(rpcCyc),
		})
	}
	return rows, nil
}

// VerifyReverse checks the extension actually reverses (used by tests
// and the quickstart example).
func VerifyReverse() (string, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return "", err
	}
	a, err := newApp(s)
	if err != nil {
		return "", err
	}
	h, err := a.SegDlopen(isa.MustAssemble("strrev", StrrevSrc))
	if err != nil {
		return "", err
	}
	pf, err := a.SegDlsym(h, "strrev")
	if err != nil {
		return "", err
	}
	buf, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		return "", err
	}
	if err := a.WriteString(buf, "palladium"); err != nil {
		return "", err
	}
	if _, err := pf.Call(buf); err != nil {
		return "", err
	}
	return a.ReadString(buf, 32)
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one file-size row, in requests/second.
type Table3Row struct {
	Size                     uint32
	CGI, FastCGI             float64
	LibCGIProt, LibCGIUnprot float64
	WebServer                float64
}

// Table3Sizes returns the paper's Table 3 file sizes; shared by the
// serial and fleet drivers so their rows stay diffable.
func Table3Sizes() []uint32 {
	return []uint32{28, 1024, 10 * 1024, 100 * 1024}
}

// Table3 regenerates the CGI throughput comparison. requests is the
// per-cell request count (the paper uses 1000; smaller counts converge
// to the same rates because the model is deterministic).
func Table3(sizes []uint32, requests int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, size := range sizes {
		s, err := newSystem(cycles.Measured())
		if err != nil {
			return nil, err
		}
		srv, err := webserver.New(s, size)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Size: size}
		dst := modelDests(&row.CGI, &row.FastCGI, &row.LibCGIProt, &row.LibCGIUnprot, &row.WebServer)
		// Fixed serving order: the per-request TLB warmth carried from
		// one model to the next shifts the rates a few parts per
		// million, so map-iteration order would make the full-precision
		// values nondeterministic (the fleet's N=1 path is pinned
		// bit-identical to these rows).
		for _, m := range fleetModels {
			v, err := srv.Throughput(m, requests)
			if err != nil {
				return nil, err
			}
			*dst[m] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 7

// Figure7Point is one x-position of the figure.
type Figure7Point struct {
	Terms     int
	BPF       float64 // cycles
	Palladium float64 // cycles
}

// Figure7 regenerates the compiled-vs-interpreted filter comparison
// for 0..maxTerms conjunction terms (all true).
func Figure7(maxTerms int) ([]Figure7Point, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	if _, err := s.K.CreateProcess(); err != nil {
		return nil, err
	}
	pkt := filter.MakeUDPPacket(1234, 53, 64)
	var pts []Figure7Point
	for n := 0; n <= maxTerms; n++ {
		terms := filter.TermsTrueFor(pkt, n)
		ifil, err := filter.NewInterpreted(s, terms)
		if err != nil {
			return nil, err
		}
		cfil, err := filter.NewCompiled(s, terms)
		if err != nil {
			return nil, err
		}
		b, err := filter.MeasureMatch(s, ifil, pkt)
		if err != nil {
			return nil, err
		}
		p, err := filter.MeasureMatch(s, cfil, pkt)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Figure7Point{Terms: n, BPF: b, Palladium: p})
	}
	return pts, nil
}

// ---------------------------------------------------------------- micro

// Micro holds the Section 5.1 one-off measurements.
type Micro struct {
	SIGSEGVDeliveryCycles float64 // paper: 3,325
	KernelGPFaultCycles   float64 // paper: 1,020
	DlopenMicros          float64 // paper: ~400
	SegDlopenMicros       float64 // paper: ~420
	SegRegLoadCycles      float64 // paper: 12 (2-3 per manual)
	L4RoundTripCycles     float64 // paper: 242
	PalladiumCallCycles   float64 // paper: 142
}

// MeasureMicro regenerates them.
func MeasureMicro() (Micro, error) {
	var mc Micro
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return mc, err
	}
	a, err := newApp(s)
	if err != nil {
		return mc, err
	}
	k := s.K

	// SIGSEGV delivery: a user extension touching a hidden page.
	secret, err := a.P.Mmap(k, 0, mem.PageSize, true, "secret")
	if err != nil {
		return mc, err
	}
	if err := a.P.Touch(k, secret, mem.PageSize); err != nil {
		return mc, err
	}
	a.P.SignalHandler = func(kernel.SignalInfo) {}
	f := &mmu.Fault{Kind: mmu.PF, Linear: secret, Access: mmu.Write, CPL: 3, Reason: "page privilege violation"}
	mc.SIGSEGVDeliveryCycles = k.Clock.Span(func() { k.HandleFault(a.P, f) })

	// Kernel extension GP processing.
	g := &mmu.Fault{Kind: mmu.GP, CPL: 1, Reason: "segment limit violation"}
	mc.KernelGPFaultCycles = k.Clock.Span(func() { k.HandleFault(a.P, g) })

	// dlopen vs seg_dlopen of the null extension: the difference is
	// the PPL-marking pass seg_dlopen performs.
	obj := isa.MustAssemble("null", NullExtSrc)
	var herr error
	d := k.Clock.Span(func() { _, _, herr = a.DL.Dlopen(obj.Clone(), loader.ExtensionOptions()) })
	if herr != nil {
		return mc, herr
	}
	mc.DlopenMicros = k.Clock.Micros(d)
	d = k.Clock.Span(func() { _, herr = a.SegDlopen(obj.Clone()) })
	if herr != nil {
		return mc, herr
	}
	mc.SegDlopenMicros = k.Clock.Micros(d)

	mc.SegRegLoadCycles = cycles.Measured().Cost(cycles.SegRegLoad)
	mc.L4RoundTripCycles = rpc.NewL4(cycles.NewClock(200)).Call()

	ph, err := measurePhases(cycles.Measured(), true)
	if err != nil {
		return mc, err
	}
	mc.PalladiumCallCycles = ph.Total()
	return mc, nil
}

// ---------------------------------------------------------------- ablations

// SFIPoint is one density point of the SFI-overhead ablation.
type SFIPoint struct {
	MemOpsPercent int
	OverheadPct   float64
}

// AblationSFI measures SFI's execution-time overhead as a function of
// memory-operation density, reproducing the Section 2.1 observation
// that SFI costs are proportional to the guarded instruction mix
// (the paper quotes 1%-220% across workloads).
func AblationSFI() ([]SFIPoint, error) {
	var pts []SFIPoint
	const regionBase, regionSize = 0x2000_0000, 0x0001_0000
	for _, mix := range []struct{ memOps, aluOps int }{
		{1, 99}, {5, 95}, {20, 80}, {50, 50}, {80, 20},
	} {
		var b strings.Builder
		b.WriteString(".global f\n.text\nf:\n")
		fmt.Fprintf(&b, "\tmov ecx, %d\n\tmov eax, 0\n", regionBase+64)
		for i := 0; i < mix.memOps; i++ {
			b.WriteString("\tmov [ecx], eax\n")
		}
		for i := 0; i < mix.aluOps; i++ {
			b.WriteString("\tadd eax, 1\n")
		}
		b.WriteString("\tret\n")
		obj := isa.MustAssemble("m", b.String())

		base, err := runSFIWorkload(obj, regionBase, regionSize, false)
		if err != nil {
			return nil, err
		}
		guarded, err := runSFIWorkload(obj, regionBase, regionSize, true)
		if err != nil {
			return nil, err
		}
		pts = append(pts, SFIPoint{
			MemOpsPercent: mix.memOps,
			OverheadPct:   (guarded - base) / base * 100,
		})
	}
	return pts, nil
}

func runSFIWorkload(obj *isa.Object, regionBase, regionSize uint32, sandbox bool) (float64, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return 0, err
	}
	a, err := newApp(s)
	if err != nil {
		return 0, err
	}
	if _, err := a.P.MmapPPL1(s.K, regionBase, regionSize, true, "sfi-region"); err != nil {
		return 0, err
	}
	if err := a.P.Touch(s.K, regionBase, regionSize); err != nil {
		return 0, err
	}
	run := obj
	if sandbox {
		re, _, err := sfi.Rewrite(obj, sfi.Config{DataBase: regionBase, DataSize: regionSize})
		if err != nil {
			return 0, err
		}
		run = re
	}
	h, err := a.SegDlopen(run)
	if err != nil {
		return 0, err
	}
	addr, err := a.Dlsym(h, "f")
	if err != nil {
		return 0, err
	}
	if _, err := a.CallUnprotected(addr, 0); err != nil { // warm
		return 0, err
	}
	cyc := s.Clock().Span(func() {
		if _, err2 := a.CallUnprotected(addr, 0); err2 != nil {
			err = err2
		}
	})
	return cyc, err
}

// CrossingsComparison prices the design-choice ablation of Section
// 4.5.1/5.1: Palladium's 2-crossing call (142), an L4-style 4-crossing
// round trip (242), and the rejected TSS-via-syscall alternative
// (protected call + a system call to update the TSS).
type CrossingsComparison struct {
	Palladium2Crossings float64
	L4Style4Crossings   float64
	TSSSyscallVariant   float64
}

// AblationCrossings computes the comparison.
func AblationCrossings() (CrossingsComparison, error) {
	var cc CrossingsComparison
	ph, err := measurePhases(cycles.Measured(), true)
	if err != nil {
		return cc, err
	}
	cc.Palladium2Crossings = ph.Total()
	cc.L4Style4Crossings = rpc.NewL4(cycles.NewClock(200)).Call()
	// The rejected alternative: save the stack pointers into the TSS
	// so the hardware restores them — at the price of a kernel entry
	// (int gate + handler + iret) on every protected call.
	m := cycles.Measured()
	k := kernel.DefaultCosts()
	cc.TSSSyscallVariant = ph.Total() + m.Cost(cycles.IntGate) + m.Cost(cycles.IretInter) +
		k.SyscallEntry + k.SyscallExit
	return cc, nil
}
