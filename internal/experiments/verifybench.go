package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/verify"
	"repro/sandbox"
)

// The -verify experiment: run the load-time static verifier over the
// adversarial escape suite (every program must be refused before it
// runs) and the paper's workloads (every one must be accepted), then
// benchmark what verification buys at run time — tier-2 check elision
// on the hot loop, with every simulated metric bit-identical to the
// unverified run.

// VerifyCase is one program's verdict through a backend's load gate.
type VerifyCase struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Status is the verifier's verdict ("clean", "guarded",
	// "rejected").
	Status string `json:"status"`
	// Violations are the definite findings of rejected programs.
	Violations []string `json:"violations,omitempty"`
	// Elidable counts proved accesses the tier-2 translator may elide.
	Elidable int `json:"elidable_accesses,omitempty"`
	// MaxSteps is the proven step bound of bounded programs.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	Bounded  bool   `json:"bounded"`
}

// VerifyElision is the run-time half: the verified hot loop against
// its unverified twin.
type VerifyElision struct {
	// Invocations per measured run.
	Invocations int `json:"invocations"`
	// Runs is the median pool size for the host wall-clock numbers.
	Runs int `json:"runs"`
	// Result is the loop's return value (both runs must agree).
	Result uint32 `json:"result"`
	// SimCyclesVerified/SimCyclesBaseline are the total simulated
	// cycles of each run; MetricsIdentical asserts they are
	// bit-identical (elision only skips re-validation work the cost
	// model never charged).
	SimCyclesVerified float64 `json:"sim_cycles_verified"`
	SimCyclesBaseline float64 `json:"sim_cycles_baseline"`
	MetricsIdentical  bool    `json:"metrics_identical"`
	// ElidedChecks counts segment-limit re-validations skipped by the
	// verified run (0 for the baseline by construction).
	ElidedChecks uint64 `json:"elided_checks"`
	// HostNsVerified/HostNsBaseline are median host wall-clock
	// nanoseconds per run; SpeedupPct is the host-time improvement of
	// the verified run (positive = faster).
	HostNsVerified int64   `json:"host_ns_verified"`
	HostNsBaseline int64   `json:"host_ns_baseline"`
	SpeedupPct     float64 `json:"speedup_pct"`
}

// VerifyBenchReport is the BENCH_verify.json payload.
type VerifyBenchReport struct {
	Note     string        `json:"note"`
	Accepted []VerifyCase  `json:"accepted"`
	Rejected []VerifyCase  `json:"rejected"`
	Elision  VerifyElision `json:"elision"`
}

// verifyEscapes is the PR-2-style adversarial escape suite routed
// through the sandbox gates: each program must be refused at load.
func verifyEscapes() []struct{ name, backend, src string } {
	absWrite := fmt.Sprintf(`
		.global escape
		.text
		escape:
			mov eax, 1
			mov [%d], eax
			ret
	`, int32(0x0040_3000))
	indirectJmp := fmt.Sprintf(`
		.global escape
		.text
		escape:
			mov eax, %d
			jmp eax
	`, int32(-0x3FFF_F000)) // 0xC0001000
	lcallLiteral := `
		.global escape
		.text
		escape:
			lcall 0x08
			ret
	`
	forgedLret := `
		.global escape
		.text
		escape:
			push 0x08
			push 0
			lret
	`
	kernelOOB := fmt.Sprintf(`
		.global escape
		.text
		escape:
			mov eax, 255
			mov [%d], eax
			ret
	`, int32(0x0003_0000))
	return []struct{ name, backend, src string }{
		{"abs write to hidden page", "palladium-user", absWrite},
		{"indirect jump into the kernel", "palladium-user", indirectJmp},
		{"lcall at the kernel code descriptor", "palladium-user", lcallLiteral},
		{"lret to a forged ring-0 selector", "palladium-user", forgedLret},
		{"abs write beyond the segment", "palladium-kernel", kernelOOB},
		{"indirect jump out of the segment", "palladium-kernel", indirectJmp},
		{"indirect jump under sfi", "sfi", indirectJmp},
		{"abs write under direct", "direct", absWrite},
	}
}

// verifyHotLoopSrc is BenchmarkRunHotLoop's counted compute loop as a
// loadable extension: both scratch accesses verify Clean with
// elidable facts and the dec/jne latch proves the step bound.
const verifyHotLoopSrc = `
	.global hotloop
	.text
	hotloop:
		mov eax, 0
		mov ecx, 1000
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		dec ecx
		jne loop
		ret
	.data
	scratch: .long 0
`

func verifyCaseOf(name, backend string, rep *verify.Report) VerifyCase {
	c := VerifyCase{
		Name: name, Backend: backend, Status: rep.Status.String(),
		Elidable: rep.Elidable, MaxSteps: rep.MaxSteps, Bounded: rep.Bounded,
	}
	for _, f := range rep.Violations {
		c.Violations = append(c.Violations, f.String())
	}
	return c
}

func newVerifyHost() (*sandbox.Host, error) {
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	if _, err := s.K.CreateProcess(); err != nil {
		return nil, err
	}
	return sandbox.HostFor(s), nil
}

// MeasureVerify runs the static-verification experiment:
// `invocations` hot-loop calls per elision run, `runs` runs for the
// host wall-clock median.
func MeasureVerify(invocations, runs int) (VerifyBenchReport, error) {
	if invocations < 1 || runs < 1 {
		return VerifyBenchReport{}, fmt.Errorf("experiments: verify needs invocations and runs >= 1")
	}
	rep := VerifyBenchReport{
		Note: "Load-time static verifier: escape programs are refused before they run, paper workloads are " +
			"accepted, and verified-clean extensions run tier 2 with segment-limit re-validations elided — " +
			"host-time savings at bit-identical simulated metrics.",
	}

	// Reject side: every escape program, through the real load gates.
	for _, esc := range verifyEscapes() {
		h, err := newVerifyHost()
		if err != nil {
			return rep, err
		}
		b, err := sandbox.Open(esc.backend, h)
		if err != nil {
			return rep, err
		}
		obj := isa.MustAssemble("escape", esc.src)
		_, err = b.Load(obj, sandbox.WithVerify(sandbox.LoadOptions{Entry: "escape"}))
		f, ok := err.(*sandbox.Fault)
		if !ok || f.Report == nil || f.Report.Accepted() {
			return rep, fmt.Errorf("experiments: escape %q x %s not statically rejected (err %v)", esc.name, esc.backend, err)
		}
		rep.Rejected = append(rep.Rejected, verifyCaseOf(esc.name, esc.backend, f.Report))
	}

	// Accept side: the paper workloads, through the same gates.
	accepts := []struct {
		name, backend, src, entry string
		opts                      sandbox.LoadOptions
	}{
		{"hot loop", "palladium-kernel", verifyHotLoopSrc, "hotloop", sandbox.LoadOptions{}},
		{"Table 2 strrev", "palladium-user", StrrevSrc, "strrev", sandbox.LoadOptions{SharedBytes: 4096}},
		{"Table 3 LibCGI script", "palladium-user", cgiScriptSrc, "cgi_script", sandbox.LoadOptions{SharedBytes: 4096}},
		{"LibCGI script in a kernel segment", "palladium-kernel", kernelCGIScriptSrc, "cgi_script", sandbox.LoadOptions{SharedSymbol: "cgi_env"}},
	}
	for _, ac := range accepts {
		h, err := newVerifyHost()
		if err != nil {
			return rep, err
		}
		b, err := sandbox.Open(ac.backend, h)
		if err != nil {
			return rep, err
		}
		ac.opts.Entry = ac.entry
		ext, err := b.Load(isa.MustAssemble(ac.entry, ac.src), sandbox.WithVerify(ac.opts))
		if err != nil {
			return rep, fmt.Errorf("experiments: workload %q x %s refused: %w", ac.name, ac.backend, err)
		}
		vrep := ext.(interface{ VerifyReport() *verify.Report }).VerifyReport()
		rep.Accepted = append(rep.Accepted, verifyCaseOf(ac.name, ac.backend, vrep))
	}
	// The Figure 7 compiled filter, via its real compiler.
	{
		h, err := newVerifyHost()
		if err != nil {
			return rep, err
		}
		pkt := filter.MakeUDPPacket(1234, 53, 64)
		obj, entry, err := filter.CompileObject(filter.TermsTrueFor(pkt, 4))
		if err != nil {
			return rep, err
		}
		b, err := sandbox.Open("palladium-kernel", h)
		if err != nil {
			return rep, err
		}
		ext, err := b.Load(obj, sandbox.WithVerify(sandbox.LoadOptions{Entry: entry, SharedSymbol: "shared_area"}))
		if err != nil {
			return rep, fmt.Errorf("experiments: compiled filter refused: %w", err)
		}
		vrep := ext.(interface{ VerifyReport() *verify.Report }).VerifyReport()
		rep.Accepted = append(rep.Accepted, verifyCaseOf("Figure 7 compiled filter", "palladium-kernel", vrep))
	}
	// The Figure 7 interpreted filter, through the BPF checker.
	{
		pkt := filter.MakeUDPPacket(1234, 53, 64)
		prog := bpf.Conjunction(filter.TermsTrueFor(pkt, 4))
		rep.Accepted = append(rep.Accepted, verifyCaseOf("Figure 7 interpreted filter", "bpf", prog.Verify()))
	}

	// Elision: the verified hot loop against its unverified twin.
	el, err := measureElision(invocations, runs)
	if err != nil {
		return rep, err
	}
	rep.Elision = el
	return rep, nil
}

// measureElision runs the hot loop with and without verification.
// Simulated metrics must be bit-identical; the verified run skips the
// segment-limit re-validation on each scratch access, and the host
// wall-clock difference is what that skipped work costs.
func measureElision(invocations, runs int) (VerifyElision, error) {
	el := VerifyElision{Invocations: invocations, Runs: runs}
	one := func(verified bool) (uint32, float64, uint64, int64, error) {
		h, err := newVerifyHost()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		b, err := sandbox.Open("palladium-kernel", h)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		opts := sandbox.LoadOptions{Entry: "hotloop"}
		if verified {
			opts = sandbox.WithVerify(opts)
		}
		ext, err := b.Load(isa.MustAssemble("hotloop", verifyHotLoopSrc), opts)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		clock := h.Sys.K.Clock
		startCyc := clock.Cycles()
		var v uint32
		startNs := time.Now()
		for i := 0; i < invocations; i++ {
			if v, err = ext.Invoke(0); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		wall := time.Since(startNs).Nanoseconds()
		return v, clock.Cycles() - startCyc, h.Sys.K.Machine.MMU.ElidedChecks(), wall, nil
	}

	wallsV := make([]int64, 0, runs)
	wallsB := make([]int64, 0, runs)
	for r := 0; r < runs; r++ {
		vB, cycB, elB, wallB, err := one(false)
		if err != nil {
			return el, err
		}
		vV, cycV, elV, wallV, err := one(true)
		if err != nil {
			return el, err
		}
		if elB != 0 {
			return el, fmt.Errorf("experiments: baseline run elided %d checks", elB)
		}
		if elV == 0 {
			return el, fmt.Errorf("experiments: verified run elided no checks")
		}
		el.Result = vV
		el.SimCyclesVerified, el.SimCyclesBaseline = cycV, cycB
		el.MetricsIdentical = vV == vB && cycV == cycB
		if !el.MetricsIdentical {
			return el, fmt.Errorf("experiments: simulated metrics diverge under elision (result %d vs %d, cycles %v vs %v)",
				vV, vB, cycV, cycB)
		}
		el.ElidedChecks = elV
		wallsV = append(wallsV, wallV)
		wallsB = append(wallsB, wallB)
	}
	el.HostNsVerified = medianInt64(wallsV)
	el.HostNsBaseline = medianInt64(wallsB)
	if el.HostNsBaseline > 0 {
		el.SpeedupPct = 100 * float64(el.HostNsBaseline-el.HostNsVerified) / float64(el.HostNsBaseline)
	}
	return el, nil
}

func medianInt64(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// RenderVerify prints the verification report.
func RenderVerify(w io.Writer, rep VerifyBenchReport) {
	fmt.Fprintln(w, "Load-time static verification (abstract interpretation over the ISA)")
	fmt.Fprintln(w, "\nEscape suite — every program refused before it runs:")
	for _, c := range rep.Rejected {
		fmt.Fprintf(w, "  %-38s %-17s %s\n", c.Name, c.Backend, c.Status)
		for _, v := range c.Violations {
			fmt.Fprintf(w, "%42s %s\n", "", v)
		}
	}
	fmt.Fprintln(w, "\nPaper workloads — every one accepted:")
	for _, c := range rep.Accepted {
		extra := ""
		if c.Bounded {
			extra = fmt.Sprintf("  (bounded, <= %d steps)", c.MaxSteps)
		}
		if c.Elidable > 0 {
			extra += fmt.Sprintf("  %d elidable accesses", c.Elidable)
		}
		fmt.Fprintf(w, "  %-38s %-17s %s%s\n", c.Name, c.Backend, c.Status, extra)
	}
	el := rep.Elision
	fmt.Fprintf(w, "\nTier-2 check elision (hot loop, %d invocations, median of %d runs):\n", el.Invocations, el.Runs)
	fmt.Fprintf(w, "  elided segment-limit checks: %d\n", el.ElidedChecks)
	fmt.Fprintf(w, "  simulated metrics identical: %v (%.0f cycles both ways, result %d)\n",
		el.MetricsIdentical, el.SimCyclesVerified, el.Result)
	fmt.Fprintf(w, "  host time: %d ns verified vs %d ns baseline (%.1f%% faster)\n",
		el.HostNsVerified, el.HostNsBaseline, el.SpeedupPct)
}
