package experiments

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
)

// InterpStats reports the simulator-internal performance counters
// accumulated over a fixed workload: how hard the interpreter's
// decoded-block cache and the MMU's TLB worked. These are simulator
// engineering numbers (they decide how fast the reproduction runs),
// not paper results (which are simulated cycles and unaffected by
// either cache).
type InterpStats struct {
	Instructions  uint64
	SimCycles     float64
	BlockHits     uint64
	BlockBuilds   uint64
	BlockInvalids uint64
	// ChainHits counts chained block dispatches: the specialized tier
	// followed a block's cached successor pointer directly, touching
	// neither the breaks/services maps nor the block map.
	ChainHits uint64
	// FastFetches counts page-level fetch checks satisfied by the
	// same-page fast path (each still counted as a TLB hit).
	FastFetches uint64
	// TraceBuilds/TraceDispatches/TraceInvalids count the tier-3
	// superblock engine: hot chains fused into flat traces, how often
	// those traces ran, and how often events tore them down.
	TraceBuilds     uint64
	TraceDispatches uint64
	TraceInvalids   uint64
	// The deopt counters split mid-trace bailouts to the block tier by
	// cause; each commits the partial architectural state
	// bit-identically to tier 2. Tick and budget deopts are expected on
	// any ticking or bounded workload; fault and page deopts mean a
	// guest fault or a fetch-page remap struck inside a fused body and
	// should be zero on the quiet -interp workload.
	TraceDeoptTick   uint64
	TraceDeoptFault  uint64
	TraceDeoptPage   uint64
	TraceDeoptBudget uint64
	TLBHits          uint64
	TLBMisses        uint64
	TLBFlushes       uint64
}

// MeasureInterp runs the Table 2 string-reverse extension `calls`
// times through a protected call and returns the interpreter counters
// for the whole run (boot and loading included).
func MeasureInterp(calls int) (InterpStats, error) {
	var st InterpStats
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return st, err
	}
	a, err := newApp(s)
	if err != nil {
		return st, err
	}
	h, err := a.SegDlopen(isa.MustAssemble("strrev", StrrevSrc))
	if err != nil {
		return st, err
	}
	pf, err := a.SegDlsym(h, "strrev")
	if err != nil {
		return st, err
	}
	buf, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		return st, err
	}
	if err := a.WriteString(buf, "palladium-interpreter-workload"); err != nil {
		return st, err
	}
	for i := 0; i < calls; i++ {
		if _, err := pf.Call(buf); err != nil {
			return st, err
		}
	}
	m := s.K.Machine
	st.Instructions = m.Instructions()
	st.SimCycles = s.Clock().Cycles()
	st.BlockHits, st.BlockBuilds, st.BlockInvalids = m.BlockCacheStats()
	st.ChainHits, st.FastFetches = m.ChainStats()
	ts := m.TraceStats()
	st.TraceBuilds, st.TraceDispatches, st.TraceInvalids = ts.Built, ts.Dispatches, ts.Invalidated
	st.TraceDeoptTick, st.TraceDeoptFault = ts.DeoptTick, ts.DeoptFault
	st.TraceDeoptPage, st.TraceDeoptBudget = ts.DeoptPage, ts.DeoptBudget
	st.TLBHits, st.TLBMisses, st.TLBFlushes = s.K.MMU.TLB().Stats()
	return st, nil
}

// RenderInterp prints the counters in a compact table.
func RenderInterp(w io.Writer, st InterpStats, calls int) {
	fmt.Fprintf(w, "Interpreter counters (%d protected string-reverse calls)\n", calls)
	fmt.Fprintf(w, "  instructions retired   %12d\n", st.Instructions)
	fmt.Fprintf(w, "  simulated cycles       %12.0f\n", st.SimCycles)
	fmt.Fprintf(w, "  block-cache hits       %12d\n", st.BlockHits)
	fmt.Fprintf(w, "  block-cache builds     %12d\n", st.BlockBuilds)
	fmt.Fprintf(w, "  block-cache invalids   %12d\n", st.BlockInvalids)
	fmt.Fprintf(w, "  chained dispatches     %12d\n", st.ChainHits)
	fmt.Fprintf(w, "  fast-path fetches      %12d\n", st.FastFetches)
	fmt.Fprintf(w, "  traces built           %12d\n", st.TraceBuilds)
	fmt.Fprintf(w, "  trace dispatches       %12d\n", st.TraceDispatches)
	fmt.Fprintf(w, "  trace invalidations    %12d\n", st.TraceInvalids)
	fmt.Fprintf(w, "  trace-deopt ticks      %12d\n", st.TraceDeoptTick)
	fmt.Fprintf(w, "  trace-deopt faults     %12d\n", st.TraceDeoptFault)
	fmt.Fprintf(w, "  trace-deopt pages      %12d\n", st.TraceDeoptPage)
	fmt.Fprintf(w, "  trace-deopt budgets    %12d\n", st.TraceDeoptBudget)
	fmt.Fprintf(w, "  TLB hits               %12d\n", st.TLBHits)
	fmt.Fprintf(w, "  TLB misses             %12d\n", st.TLBMisses)
	fmt.Fprintf(w, "  TLB flushes            %12d\n", st.TLBFlushes)
}
