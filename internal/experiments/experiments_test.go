package experiments

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Inter and Intra columns, reproduced exactly.
	wantInter := []float64{26, 34, 75, 7, 142}
	wantIntra := []float64{2, 3, 3, 2, 10}
	for i, r := range rows {
		if r.Inter != wantInter[i] {
			t.Errorf("%s: inter = %v, paper %v", r.Component, r.Inter, wantInter[i])
		}
		if r.Intra != wantIntra[i] {
			t.Errorf("%s: intra = %v, paper %v", r.Component, r.Intra, wantIntra[i])
		}
		if r.Hardware >= r.Inter && r.Component != "Total Cost" && r.Hardware != 0 {
			t.Errorf("%s: hardware column %v must be below measured %v", r.Component, r.Hardware, r.Inter)
		}
	}
	// The hardware (manual) lcall anchor: 44 cycles.
	if rows[2].Hardware != 44 {
		t.Errorf("hardware return = %v, paper 44", rows[2].Hardware)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2([]int{32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	paperRPC := []float64{349.19, 352.55, 374.20, 423.33}
	for i, r := range rows {
		// Palladium tracks the unprotected call with a near-constant
		// gap (paper: 118-153 cycles = 0.59-0.77 us).
		gap := (r.Palladium - r.Unprotected) * 200 // cycles
		if gap < 100 || gap > 200 {
			t.Errorf("size %d: protected-unprotected gap = %.0f cycles, paper 118-153", r.Size, gap)
		}
		// RPC is orders of magnitude slower and near the paper's
		// absolute values.
		if r.RPC < paperRPC[i]*0.9 || r.RPC > paperRPC[i]*1.15 {
			t.Errorf("size %d: RPC = %.2f us, paper %.2f", r.Size, r.RPC, paperRPC[i])
		}
		if r.RPC < 10*r.Palladium {
			t.Errorf("size %d: RPC %.2f not >> Palladium %.2f", r.Size, r.RPC, r.Palladium)
		}
	}
	// Monotone growth in string size.
	for i := 1; i < len(rows); i++ {
		if rows[i].Unprotected <= rows[i-1].Unprotected {
			t.Error("unprotected latency must grow with string size")
		}
	}
	// Two orders of magnitude at 32 bytes (paper's phrasing).
	if rows[0].RPC < 100*rows[0].Palladium {
		t.Errorf("at 32B RPC %.2f not two orders above Palladium %.2f", rows[0].RPC, rows[0].Palladium)
	}
}

func TestVerifyReverse(t *testing.T) {
	got, err := VerifyReverse()
	if err != nil {
		t.Fatal(err)
	}
	if got != "muidallap" {
		t.Errorf("reverse = %q", got)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3([]uint32{28, 100 * 1024}, 20)
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	// Orderings from the paper.
	if !(small.WebServer > small.LibCGIUnprot && small.LibCGIUnprot > small.LibCGIProt &&
		small.LibCGIProt > small.FastCGI && small.FastCGI > small.CGI) {
		t.Errorf("28B ordering violated: %+v", small)
	}
	if small.LibCGIProt < 2*small.FastCGI {
		t.Error("protected LibCGI must be at least 2x FastCGI at 28B")
	}
	// Convergence at 100 KB.
	if big.LibCGIProt < big.WebServer*0.95 {
		t.Errorf("100KB: protected %v should converge to static %v", big.LibCGIProt, big.WebServer)
	}
	if big.CGI > big.WebServer*0.75 {
		t.Errorf("100KB: CGI %v should stay well below static %v", big.CGI, big.WebServer)
	}
}

func TestFigure7Shape(t *testing.T) {
	pts, err := Figure7(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[4].BPF < 2*pts[4].Palladium {
		t.Errorf("at 4 terms BPF %v not >= 2x Palladium %v", pts[4].BPF, pts[4].Palladium)
	}
	bpfSlope := (pts[4].BPF - pts[0].BPF) / 4
	palSlope := (pts[4].Palladium - pts[0].Palladium) / 4
	if palSlope > bpfSlope/4 {
		t.Errorf("Palladium slope %v vs BPF %v: compiled filter must be nearly flat", palSlope, bpfSlope)
	}
}

func TestMicroAnchors(t *testing.T) {
	m, err := MeasureMicro()
	if err != nil {
		t.Fatal(err)
	}
	if m.SIGSEGVDeliveryCycles != 3325 {
		t.Errorf("SIGSEGV delivery = %v, paper 3,325", m.SIGSEGVDeliveryCycles)
	}
	if m.KernelGPFaultCycles != 1020 {
		t.Errorf("GP processing = %v, paper 1,020", m.KernelGPFaultCycles)
	}
	if m.PalladiumCallCycles != 142 {
		t.Errorf("protected call = %v, paper 142", m.PalladiumCallCycles)
	}
	if m.L4RoundTripCycles != 242 {
		t.Errorf("L4 = %v, paper 242", m.L4RoundTripCycles)
	}
	if m.SegRegLoadCycles != 12 {
		t.Errorf("segment register load = %v, paper 12", m.SegRegLoadCycles)
	}
	if m.DlopenMicros < 300 || m.DlopenMicros > 500 {
		t.Errorf("dlopen = %v us, paper ~400", m.DlopenMicros)
	}
	if m.SegDlopenMicros <= m.DlopenMicros {
		t.Error("seg_dlopen must cost more than dlopen (PPL marking)")
	}
	if d := m.SegDlopenMicros - m.DlopenMicros; d < 5 || d > 60 {
		t.Errorf("seg_dlopen - dlopen = %v us, paper ~20", d)
	}
}

func TestAblationSFIMonotone(t *testing.T) {
	pts, err := AblationSFI()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OverheadPct <= pts[i-1].OverheadPct {
			t.Errorf("SFI overhead not increasing with density: %+v", pts)
			break
		}
	}
	if pts[0].OverheadPct > 20 {
		t.Errorf("sparse workload overhead = %.1f%%, expected small", pts[0].OverheadPct)
	}
	if last := pts[len(pts)-1].OverheadPct; last < 40 {
		t.Errorf("dense workload overhead = %.1f%%, expected large", last)
	}
}

func TestAblationCrossings(t *testing.T) {
	cc, err := AblationCrossings()
	if err != nil {
		t.Fatal(err)
	}
	if cc.Palladium2Crossings != 142 || cc.L4Style4Crossings != 242 {
		t.Errorf("crossings comparison = %+v", cc)
	}
	if cc.TSSSyscallVariant <= cc.Palladium2Crossings {
		t.Error("the rejected TSS-syscall variant must cost more than Palladium's design")
	}
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	rows1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(&b, rows1)
	if !strings.Contains(b.String(), "142") {
		t.Error("Table 1 rendering missing total")
	}
	b.Reset()
	RenderTable2(&b, []Table2Row{{Size: 32, Unprotected: 2.2, Palladium: 2.9, RPC: 349.2}})
	if !strings.Contains(b.String(), "349.20") {
		t.Error("Table 2 rendering wrong")
	}
	b.Reset()
	RenderTable3(&b, []Table3Row{{Size: 28, CGI: 98, FastCGI: 193, LibCGIProt: 437, LibCGIUnprot: 448, WebServer: 460}})
	if !strings.Contains(b.String(), "28 Bytes") {
		t.Error("Table 3 rendering wrong")
	}
	b.Reset()
	RenderFigure7(&b, []Figure7Point{{Terms: 4, BPF: 900, Palladium: 300}})
	if !strings.Contains(b.String(), "900") {
		t.Error("Figure 7 rendering wrong")
	}
	b.Reset()
	RenderMicro(&b, Micro{PalladiumCallCycles: 142})
	if !strings.Contains(b.String(), "3,325") {
		t.Error("micro rendering wrong")
	}
	b.Reset()
	RenderAblations(&b, []SFIPoint{{MemOpsPercent: 50, OverheadPct: 80}}, CrossingsComparison{142, 242, 900})
	if !strings.Contains(b.String(), "242") {
		t.Error("ablation rendering wrong")
	}
}
