package experiments

import (
	"fmt"
	"io"

	"repro/internal/filter"
	"repro/internal/webserver"
)

// fleetModels is the fixed serving order shared by the serial Table3
// and every fleet run. The order matters at full float precision: TLB
// warmth carries from one model's requests to the next, so reordering
// (or iterating a map) would shift the rates a few parts per million
// and break the serial-vs-fleet bit-identity anchor.
var fleetModels = []webserver.Model{
	webserver.CGI,
	webserver.FastCGI,
	webserver.LibCGIProtected,
	webserver.LibCGI,
	webserver.Static,
}

// modelDests maps each served model to its destination cell; shared by
// every Table-3-shaped row filler so the model set lives in one place.
func modelDests(cgi, fastcgi, prot, unprot, static *float64) map[webserver.Model]*float64 {
	return map[webserver.Model]*float64{
		webserver.CGI:             cgi,
		webserver.FastCGI:         fastcgi,
		webserver.LibCGIProtected: prot,
		webserver.LibCGI:          unprot,
		webserver.Static:          static,
	}
}

// Table3ConcurrentRow is one file-size row of the fleet-served Table 3:
// aggregate requests/second across all machines of the fleet.
type Table3ConcurrentRow struct {
	Size    uint32 `json:"size_bytes"`
	Workers int    `json:"workers"`

	CGI          float64 `json:"cgi_req_per_s"`
	FastCGI      float64 `json:"fastcgi_req_per_s"`
	LibCGIProt   float64 `json:"libcgi_prot_req_per_s"`
	LibCGIUnprot float64 `json:"libcgi_unprot_req_per_s"`
	WebServer    float64 `json:"static_req_per_s"`
}

// Table3Concurrent regenerates Table 3 through a fleet of `workers`
// machines per file size: every machine boots exactly as the serial
// harness does, and all five models are served through the same fleet
// in a fixed order. requests is the per-cell total across the fleet.
// With workers=1 the rows are bit-identical to Table3's, because the
// single machine executes the same request sequence and the rate comes
// from the same span and formula.
func Table3Concurrent(sizes []uint32, requests, workers int) ([]Table3ConcurrentRow, error) {
	var rows []Table3ConcurrentRow
	for _, size := range sizes {
		f, err := webserver.NewFleet(size, workers)
		if err != nil {
			return nil, err
		}
		row := Table3ConcurrentRow{Size: size, Workers: workers}
		dst := modelDests(&row.CGI, &row.FastCGI, &row.LibCGIProt, &row.LibCGIUnprot, &row.WebServer)
		for _, m := range fleetModels {
			res, err := f.Serve(m, requests)
			if err != nil {
				f.Close()
				return nil, err
			}
			*dst[m] = res.AggregateReqPerSec
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FleetScalePoint is one worker count of the scaling curve, measured
// on the Table 3 workload (28-byte file, the paper's headline row).
type FleetScalePoint struct {
	Workers int `json:"workers"`

	// Aggregate simulated serving capacity per model (req/s summed
	// over the fleet's machines).
	CGI          float64 `json:"cgi_req_per_s"`
	FastCGI      float64 `json:"fastcgi_req_per_s"`
	LibCGIProt   float64 `json:"libcgi_prot_req_per_s"`
	LibCGIUnprot float64 `json:"libcgi_unprot_req_per_s"`
	WebServer    float64 `json:"static_req_per_s"`

	// SpeedupVs1 is LibCGIProt relative to the 1-worker point.
	SpeedupVs1 float64 `json:"libcgi_prot_speedup_vs_1"`

	// Dispatcher behaviour over the whole point.
	WallSeconds    float64 `json:"wall_seconds"`
	QueueHighWater int     `json:"queue_high_water"`
	Steals         uint64  `json:"steals"`

	// FilterPktPerSec is the packet-filter fleet's aggregate rate on
	// the Figure 7 4-term workload at the same worker count.
	FilterPktPerSec float64 `json:"filter_pkt_per_s"`
}

// FleetReport is the BENCH_fleet.json payload.
type FleetReport struct {
	Note     string            `json:"note"`
	Size     uint32            `json:"file_size_bytes"`
	Requests int               `json:"requests_per_cell"`
	Scaling  []FleetScalePoint `json:"scaling"`
	// Table3N1 is the 1-worker fleet Table 3 (all paper sizes), for
	// diffing against the serial rows in BENCH_interp.json.
	Table3N1 []Table3ConcurrentRow `json:"table3_fleet_n1"`
}

// MeasureFleet produces the fleet scaling curve: for each worker
// count, the aggregate Table 3 rates at the given file size plus the
// packet-filter fleet rate, and the 1-worker Table 3 across all paper
// sizes as the bit-identity anchor.
func MeasureFleet(size uint32, requests int, workerCounts []int) (FleetReport, error) {
	rep := FleetReport{
		Note: "Aggregate simulated serving capacity of a fleet of independently booted Palladium machines " +
			"(sum of per-machine sustained rates; each machine's own simulated metrics are identical to the " +
			"serial reproduction). Wall seconds are host time and depend on host cores.",
		Size:     size,
		Requests: requests,
	}
	for _, n := range workerCounts {
		f, err := webserver.NewFleet(size, n)
		if err != nil {
			return rep, err
		}
		pt := FleetScalePoint{Workers: n}
		dst := modelDests(&pt.CGI, &pt.FastCGI, &pt.LibCGIProt, &pt.LibCGIUnprot, &pt.WebServer)
		for _, m := range fleetModels {
			res, err := f.Serve(m, requests)
			if err != nil {
				f.Close()
				return rep, err
			}
			*dst[m] = res.AggregateReqPerSec
			pt.WallSeconds += res.WallSeconds
			// Serve reports per-run deltas, so the point's dispatcher
			// picture is the max high water / summed steals over its
			// five model runs — not pool-lifetime counters that would
			// leak one point's churn into the next.
			if res.QueueHighWater > pt.QueueHighWater {
				pt.QueueHighWater = res.QueueHighWater
			}
			pt.Steals += res.Steals
		}
		if err := f.Close(); err != nil {
			return rep, err
		}

		// Packet-filter fleet on the Figure 7 4-term workload.
		pkt := filter.MakeUDPPacket(1234, 53, 64)
		ff, err := filter.NewFleet(n, filter.TermsTrueFor(pkt, 4))
		if err != nil {
			return rep, err
		}
		pkts := make([][]byte, requests)
		for i := range pkts {
			pkts[i] = pkt
		}
		fres, err := ff.MatchAll(pkts)
		if cerr := ff.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return rep, err
		}
		if fres.Matched != len(pkts) {
			return rep, fmt.Errorf("experiments: filter fleet matched %d of %d all-true packets", fres.Matched, len(pkts))
		}
		pt.FilterPktPerSec = fres.AggregatePktPerSec
		rep.Scaling = append(rep.Scaling, pt)
	}

	// Speedups are strictly relative to the 1-worker point; when the
	// caller measured no 1-worker point the field stays 0 rather than
	// silently renormalizing against some other baseline.
	for _, pt := range rep.Scaling {
		if pt.Workers == 1 && pt.LibCGIProt > 0 {
			for i := range rep.Scaling {
				rep.Scaling[i].SpeedupVs1 = rep.Scaling[i].LibCGIProt / pt.LibCGIProt
			}
			break
		}
	}

	n1, err := Table3Concurrent(Table3Sizes(), requests, 1)
	if err != nil {
		return rep, err
	}
	rep.Table3N1 = n1
	return rep, nil
}

// RenderFleet prints the scaling curve.
func RenderFleet(w io.Writer, rep FleetReport) {
	fmt.Fprintf(w, "Fleet scaling: aggregate req/s on the Table 3 workload (%d-byte file, %d requests/cell)\n",
		rep.Size, rep.Requests)
	fmt.Fprintf(w, "%-8s %8s %9s %12s %14s %10s %10s %12s %7s\n",
		"Workers", "CGI", "FastCGI", "LibCGI(prot)", "LibCGI(unprot)", "WebServer", "speedup", "filter-pkt/s", "steals")
	for _, p := range rep.Scaling {
		fmt.Fprintf(w, "%-8d %8.0f %9.0f %12.0f %14.0f %10.0f %9.2fx %12.0f %7d\n",
			p.Workers, p.CGI, p.FastCGI, p.LibCGIProt, p.LibCGIUnprot, p.WebServer,
			p.SpeedupVs1, p.FilterPktPerSec, p.Steals)
	}
}
