package experiments

// Bit-identity anchors for the sandbox API redesign: every table and
// figure that now flows through repro/sandbox is diffed, cell by cell
// at full float precision, against a replication of the pre-redesign
// entrypoints (ProtectedFunc.Call, App.CallUnprotected,
// bpf.Interp.Run, System.Insmod + KernelExtensionFunc.Invoke,
// rpc.Loopback.Call). The adapters must add zero simulated work.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rpc"
	"repro/sandbox"
)

// legacyTable2 is the pre-redesign Table 2 implementation: raw
// CallUnprotected / ProtectedFunc.Call instead of sandbox extensions.
func legacyTable2(sizes []int) ([]Table2Row, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	a, err := newApp(s)
	if err != nil {
		return nil, err
	}
	h, err := a.SegDlopen(isa.MustAssemble("strrev", StrrevSrc))
	if err != nil {
		return nil, err
	}
	pf, err := a.SegDlsym(h, "strrev")
	if err != nil {
		return nil, err
	}
	raw, err := a.Dlsym(h, "strrev")
	if err != nil {
		return nil, err
	}
	buf, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	loop, err := rpc.NewLoopback(s.K)
	if err != nil {
		return nil, err
	}
	clock := s.Clock()
	var rows []Table2Row
	for _, n := range sizes {
		str := strings.Repeat("ab", n/2)[:n]
		if err := a.WriteString(buf, str); err != nil {
			return nil, err
		}
		if _, err := a.CallUnprotected(raw, buf); err != nil {
			return nil, err
		}
		unprot := clock.Span(func() {
			if _, err2 := a.CallUnprotected(raw, buf); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		if _, err := pf.Call(buf); err != nil {
			return nil, err
		}
		prot := clock.Span(func() {
			if _, err2 := pf.Call(buf); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		rpcCyc := loop.Call(n, n, unprot)
		rows = append(rows, Table2Row{
			Size:        n,
			Unprotected: clock.Micros(unprot),
			Palladium:   clock.Micros(prot),
			RPC:         clock.Micros(rpcCyc),
		})
	}
	return rows, nil
}

func TestTable2BitIdenticalThroughSandbox(t *testing.T) {
	sizes := []int{32, 64, 128, 256}
	got, err := Table2(sizes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyTable2(sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("size %d: sandbox row %+v != pre-redesign row %+v", want[i].Size, got[i], want[i])
		}
	}
}

// legacyFigure7 is the pre-redesign Figure 7 implementation: the BPF
// interpreter and the compiled kernel extension driven through their
// mechanism-specific APIs, in exactly the order the filter package
// performs them.
func legacyFigure7(maxTerms int) ([]Figure7Point, error) {
	s, err := newSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	if _, err := s.K.CreateProcess(); err != nil {
		return nil, err
	}
	pkt := filter.MakeUDPPacket(1234, 53, 64)
	clock := s.Clock()
	var pts []Figure7Point
	for n := 0; n <= maxTerms; n++ {
		terms := filter.TermsTrueFor(pkt, n)

		// Interpreted: validate + interpret over the full packet.
		prog := bpf.Conjunction(terms)
		if err := prog.Validate(); err != nil {
			return nil, err
		}
		in := bpf.NewInterp(s.K.Clock)
		imatch := func() error {
			v, err := in.Run(prog, pkt)
			if err != nil {
				return err
			}
			if v == 0 {
				return fmt.Errorf("reject")
			}
			return nil
		}

		// Compiled: compile, insmod into a fresh segment, stage the
		// header, invoke.
		entry := fmt.Sprintf("anchor_pf_%d", n)
		text, err := bpf.Compile(prog, entry, "shared_area")
		if err != nil {
			return nil, err
		}
		obj, err := isa.Assemble(entry, text+"\n.data\n.global shared_area\nshared_area: .space 2048\n")
		if err != nil {
			return nil, err
		}
		seg, err := s.NewExtSegment(entry, 0)
		if err != nil {
			return nil, err
		}
		im, err := s.Insmod(seg, obj)
		if err != nil {
			return nil, err
		}
		fn, ok := s.ExtensionFunction(entry)
		if !ok {
			return nil, fmt.Errorf("%s not registered", entry)
		}
		off, ok := im.Lookup("shared_area")
		if !ok {
			return nil, fmt.Errorf("shared_area missing")
		}
		cmatch := func() error {
			hdr := pkt[:filter.HeaderLen]
			if err := s.WriteShared(seg, off, hdr); err != nil {
				return err
			}
			v, err := fn.Invoke(uint32(len(hdr)))
			if err != nil {
				return err
			}
			if v == 0 {
				return fmt.Errorf("reject")
			}
			return nil
		}

		// MeasureMatch's warm-then-span, in the same order.
		if err := imatch(); err != nil {
			return nil, err
		}
		b := clock.Span(func() {
			if err2 := imatch(); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		if err := cmatch(); err != nil {
			return nil, err
		}
		p := clock.Span(func() {
			if err2 := cmatch(); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, Figure7Point{Terms: n, BPF: b, Palladium: p})
	}
	return pts, nil
}

func TestFigure7BitIdenticalThroughSandbox(t *testing.T) {
	got, err := Figure7(4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyFigure7(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%d terms: sandbox point %+v != pre-redesign point %+v", want[i].Terms, got[i], want[i])
		}
	}
}

// TestKernelInvokeBitIdenticalThroughAdapter pins the adapter at the
// single-invocation grain: the same extension function invoked
// through sandbox.AdoptKernel costs exactly what a raw
// KernelExtensionFunc.Invoke costs on a machine with identical
// history.
func TestKernelInvokeBitIdenticalThroughAdapter(t *testing.T) {
	span := func(adapted bool) float64 {
		s, err := core.NewSystem(cycles.Measured())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.K.CreateProcess(); err != nil {
			t.Fatal(err)
		}
		seg, err := s.NewExtSegment("m", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insmod(seg, isa.MustAssemble("m", `
			.global f
			.text
			f:
				mov eax, [esp+4]
				add eax, eax
				ret
		`)); err != nil {
			t.Fatal(err)
		}
		fn, _ := s.ExtensionFunction("f")
		call := func() (uint32, error) { return fn.Invoke(21) }
		if adapted {
			ext := sandbox.AdoptKernel(s, fn)
			call = func() (uint32, error) { return ext.Invoke(21) }
		}
		if v, err := call(); err != nil || v != 42 {
			t.Fatalf("warm call = %d, %v", v, err)
		}
		var err2 error
		cyc := s.Clock().Span(func() { _, err2 = call() })
		if err2 != nil {
			t.Fatal(err2)
		}
		return cyc
	}
	raw, viaSandbox := span(false), span(true)
	if raw != viaSandbox {
		t.Errorf("raw invoke = %v cycles, sandbox invoke = %v cycles; want bit-identical", raw, viaSandbox)
	}
}
