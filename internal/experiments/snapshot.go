package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/fleet"
	"repro/internal/isa"
	"repro/internal/webserver"
)

// SnapshotBootPoint compares booting a fleet of N web-serving machines
// serially against booting ONE template and cloning the rest.
type SnapshotBootPoint struct {
	Workers int `json:"workers"`

	// Host wall-clock seconds; the simulated metrics of both fleets
	// are bit-identical (see BitIdentical).
	SerialBootSeconds   float64 `json:"serial_boot_seconds"`
	TemplateBootSeconds float64 `json:"template_boot_seconds"`
	CloneSeconds        float64 `json:"clone_seconds"`
	CloneBootSeconds    float64 `json:"clone_boot_seconds"` // template + clones
	Speedup             float64 `json:"speedup"`

	// BitIdentical reports that every cloned worker's sustained Table 3
	// rate equals the serially booted machine's rate bit-for-bit, for
	// every serving model.
	BitIdentical bool `json:"bit_identical"`
}

// SnapshotReport is the BENCH_snapshot.json payload.
type SnapshotReport struct {
	Note     string              `json:"note"`
	FileSize uint32              `json:"file_size_bytes"`
	Requests int                 `json:"requests_per_model"`
	Boot     []SnapshotBootPoint `json:"boot"`

	// RollbackVerified reports that a kernel extension which faulted
	// under InvokeTx left the machine bit-identical (memory
	// fingerprint, clock) to its pre-call snapshot and the segment
	// stayed alive and invocable.
	RollbackVerified bool `json:"rollback_verified"`
}

// faultingExtSrc escapes its 16 MB extension segment after scribbling
// on its own data, so a rollback must undo both the scribble and every
// kernel-side cost charged on the way.
const faultingExtSrc = `
	.global scribble_escape
	.text
	scribble_escape:
		mov [counter], 777
		mov eax, [0x2000000]   ; 32 MB: beyond the 16 MB segment
		ret
	.data
	.global counter
	counter: .word 0
`

// MeasureSnapshot produces the snapshot/clone report: boot-time
// scaling points for each worker count plus the rollback verification.
func MeasureSnapshot(fileSize uint32, requests int, workerCounts []int) (SnapshotReport, error) {
	rep := SnapshotReport{
		Note: "Template-boot+clone vs serial boots for a web-serving machine fleet. Seconds are host " +
			"wall-clock; every simulated metric of a cloned machine is bit-identical to a serially " +
			"booted one (bit_identical checks the per-worker Table 3 rates).",
		FileSize: fileSize,
		Requests: requests,
	}
	for _, n := range workerCounts {
		pt, err := measureBootPoint(fileSize, requests, n)
		if err != nil {
			return rep, err
		}
		rep.Boot = append(rep.Boot, pt)
	}
	ok, err := verifyRollback()
	if err != nil {
		return rep, err
	}
	rep.RollbackVerified = ok
	return rep, nil
}

func measureBootPoint(fileSize uint32, requests, workers int) (SnapshotBootPoint, error) {
	pt := SnapshotBootPoint{Workers: workers}

	// Serial baseline: N full boots.
	start := time.Now()
	serial, err := webserver.NewFleetSerial(fileSize, workers)
	if err != nil {
		return pt, err
	}
	pt.SerialBootSeconds = time.Since(start).Seconds()

	// Template + clones, with the cost split measured inside the ONE
	// real fleet construction (not from a throwaway extra boot, whose
	// timing could contradict the total).
	var tmplSec, cloneSec float64
	start = time.Now()
	pool, err := fleet.NewFromTemplate(fleet.Config{Workers: workers},
		func() (*webserver.Server, error) {
			t0 := time.Now()
			s, berr := webserver.BootServer(fileSize)
			tmplSec = time.Since(t0).Seconds()
			return s, berr
		},
		func(_ int, tmpl *webserver.Server) (*webserver.Server, error) {
			t0 := time.Now()
			c, cerr := tmpl.Clone()
			cloneSec += time.Since(t0).Seconds()
			return c, cerr
		})
	if err != nil {
		serial.Close()
		return pt, err
	}
	cloned := &webserver.Fleet{Pool: pool, FileSize: fileSize}
	pt.CloneBootSeconds = time.Since(start).Seconds()
	pt.TemplateBootSeconds = tmplSec
	pt.CloneSeconds = cloneSec
	if pt.CloneBootSeconds > 0 {
		pt.Speedup = pt.SerialBootSeconds / pt.CloneBootSeconds
	}

	// Bit-identity: every worker of both fleets must produce the same
	// sustained rate for every model. A serving error fails the check
	// AND surfaces as the returned error — it must never pass silently.
	pt.BitIdentical = true
	for _, m := range fleetModels {
		rs, serr := serial.Serve(m, requests)
		if serr != nil {
			err = fmt.Errorf("experiments: serial fleet %v: %w", m, serr)
			pt.BitIdentical = false
			break
		}
		rc, cerr := cloned.Serve(m, requests)
		if cerr != nil {
			err = fmt.Errorf("experiments: cloned fleet %v: %w", m, cerr)
			pt.BitIdentical = false
			break
		}
		for w := 0; w < workers; w++ {
			if rs.PerWorkerReqPerSec[w] != rc.PerWorkerReqPerSec[w] {
				pt.BitIdentical = false
			}
		}
	}
	if cerr := serial.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := cloned.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return pt, err
}

// verifyRollback runs the scribble-and-escape extension under InvokeTx
// and checks the machine came back bit-identical to its pre-call
// state, with the segment alive.
func verifyRollback() (bool, error) {
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		return false, err
	}
	if _, err := s.K.CreateProcess(); err != nil {
		return false, err
	}
	seg, err := s.NewExtSegment("tx", 0)
	if err != nil {
		return false, err
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("scribbler", faultingExtSrc)); err != nil {
		return false, err
	}
	f, ok := s.ExtensionFunction("scribble_escape")
	if !ok {
		return false, fmt.Errorf("experiments: scribble_escape not registered")
	}
	beforeMem := s.K.Phys.Fingerprint()
	beforeClock := s.K.Clock.Cycles()
	if _, err := f.InvokeTx(0); !errors.Is(err, core.ErrKernelExtensionRolledBack) {
		return false, fmt.Errorf("experiments: InvokeTx = %v, want rollback", err)
	}
	return s.K.Phys.Fingerprint() == beforeMem &&
		s.K.Clock.Cycles() == beforeClock &&
		!seg.Aborted(), nil
}

// RenderSnapshot prints the boot-time comparison.
func RenderSnapshot(w io.Writer, rep SnapshotReport) {
	fmt.Fprintf(w, "Snapshot/clone boot: template-boot+clone vs serial boots (%d-byte file, %d requests/model)\n",
		rep.FileSize, rep.Requests)
	fmt.Fprintf(w, "%-8s %12s %12s %9s %13s\n", "Workers", "serial(s)", "cloned(s)", "speedup", "bit-identical")
	for _, p := range rep.Boot {
		fmt.Fprintf(w, "%-8d %12.4f %12.4f %8.1fx %13v\n",
			p.Workers, p.SerialBootSeconds, p.CloneBootSeconds, p.Speedup, p.BitIdentical)
	}
	fmt.Fprintf(w, "rollback verified: %v\n", rep.RollbackVerified)
}
