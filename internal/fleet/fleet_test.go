package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeMachine is a minimal Machine for pool tests. Its fields are
// deliberately unsynchronized: the pool's machine-per-worker ownership
// guarantee is exactly what makes that safe, and the -race leg of the
// test suite verifies it.
type fakeMachine struct {
	id     int
	cycles float64
	served int
}

func (m *fakeMachine) SimCycles() float64 { return m.cycles }

func newFakePool(t *testing.T, workers, queue int) *Pool[*fakeMachine] {
	t.Helper()
	p, err := New(Config{Workers: workers, Queue: queue}, func(w int) (*fakeMachine, error) {
		return &fakeMachine{id: w}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolHammer floods the pool from many goroutines, mixing
// balanced (Submit) and pinned (SubmitTo) requests, and checks that
// every accepted request executed exactly once and that the aggregate
// stats equal the sum of the per-worker stats. Run with -race this is
// also the machine-ownership proof: each fakeMachine is mutated
// without locks by whichever worker runs the request.
func TestPoolHammer(t *testing.T) {
	const (
		workers    = 8
		submitters = 16
		perSub     = 50
	)
	p := newFakePool(t, workers, 32)
	var executed atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				req := func(w int, m *fakeMachine) error {
					if m.id != w {
						return fmt.Errorf("worker %d got machine %d", w, m.id)
					}
					m.cycles += 3
					m.served++
					executed.Add(1)
					return nil
				}
				var err error
				if i%2 == 0 {
					err = p.Submit(req)
				} else {
					err = p.SubmitTo((s+i)%workers, req)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}

	const want = submitters * perSub
	if got := executed.Load(); got != want {
		t.Errorf("executed %d of %d requests", got, want)
	}
	if stats.Requests != want {
		t.Errorf("stats.Requests = %d, want %d", stats.Requests, want)
	}
	if stats.SimCycles != 3*want {
		t.Errorf("stats.SimCycles = %v, want %v", stats.SimCycles, 3*want)
	}
	if stats.Errors != 0 {
		t.Errorf("stats.Errors = %d", stats.Errors)
	}

	// Aggregate equals the sum (max for the high-water mark) of the
	// per-worker stats.
	var sum Stats
	sum.Workers = stats.Workers
	sum.aggregate()
	if stats.Requests != sum.Requests || stats.Errors != sum.Errors ||
		stats.Steals != sum.Steals || stats.SimCycles != sum.SimCycles ||
		stats.Busy != sum.Busy || stats.QueueHighWater != sum.QueueHighWater {
		t.Errorf("aggregate %+v != recomputed %+v", stats, sum)
	}

	// And the per-worker machine counters agree with the per-worker
	// stats (nothing ran on the wrong machine).
	for w := 0; w < workers; w++ {
		m := p.Machine(w)
		if uint64(m.served) != stats.Workers[w].Requests {
			t.Errorf("worker %d: machine served %d, stats say %d", w, m.served, stats.Workers[w].Requests)
		}
	}
}

// TestDrainDropsNothing checks the graceful-drain guarantee: every
// accepted request completes, across multiple drain cycles and the
// final close.
func TestDrainDropsNothing(t *testing.T) {
	p := newFakePool(t, 4, 8)
	var executed atomic.Uint64
	req := func(_ int, m *fakeMachine) error {
		m.cycles++
		executed.Add(1)
		return nil
	}
	for round := 1; round <= 3; round++ {
		for i := 0; i < 100; i++ {
			if err := p.Submit(req); err != nil {
				t.Fatal(err)
			}
		}
		p.Drain()
		if got := executed.Load(); got != uint64(100*round) {
			t.Fatalf("after drain %d: executed %d, want %d", round, got, 100*round)
		}
	}
	// Requests queued at Close time still execute.
	for i := 0; i < 50; i++ {
		if err := p.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 350 {
		t.Errorf("executed %d, want 350 (close dropped requests)", got)
	}
	if stats.Requests != 350 {
		t.Errorf("stats.Requests = %d, want 350", stats.Requests)
	}
	if err := p.Submit(req); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestPinnedPlacement checks that SubmitTo requests run only on their
// target machine, even with other workers idle and stealing.
func TestPinnedPlacement(t *testing.T) {
	const workers = 4
	p := newFakePool(t, workers, 16)
	var wrong atomic.Uint64
	for i := 0; i < 200; i++ {
		target := i % workers
		if err := p.SubmitTo(target, func(w int, m *fakeMachine) error {
			if w != target || m.id != target {
				wrong.Add(1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wrong.Load() != 0 {
		t.Errorf("%d pinned requests ran on the wrong machine", wrong.Load())
	}
	if stats.Steals != 0 {
		t.Errorf("steals = %d, want 0 for all-pinned load", stats.Steals)
	}
	for w := 0; w < workers; w++ {
		if stats.Workers[w].Requests != 50 {
			t.Errorf("worker %d served %d, want 50", w, stats.Workers[w].Requests)
		}
	}
	if err := p.SubmitTo(99, func(int, *fakeMachine) error { return nil }); err == nil {
		t.Error("SubmitTo(99) on a 4-worker pool must fail")
	}
}

// TestIdleWorkerSteals blocks one worker on a long request and checks
// that the other worker steals the backlog queued behind it.
func TestIdleWorkerSteals(t *testing.T) {
	p := newFakePool(t, 2, 64)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := p.SubmitTo(0, func(_ int, m *fakeMachine) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Worker 0 is blocked; all these land in both queues, and worker 1
	// must steal worker 0's share.
	var executed atomic.Uint64
	for i := 0; i < 40; i++ {
		if err := p.Submit(func(_ int, m *fakeMachine) error {
			executed.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for worker 1 to finish everything stealable.
	deadline := time.After(10 * time.Second)
	for executed.Load() != 40 {
		select {
		case <-deadline:
			t.Fatalf("only %d of 40 requests executed while worker 0 blocked", executed.Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers[1].Steals == 0 {
		t.Error("worker 1 never stole despite worker 0 being blocked")
	}
	if stats.Requests != 41 {
		t.Errorf("stats.Requests = %d, want 41", stats.Requests)
	}
}

// TestRequestErrorsAreCountedAndReturned checks error accounting.
func TestRequestErrorsAreCountedAndReturned(t *testing.T) {
	p := newFakePool(t, 2, 8)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		if err := p.Submit(func(int, *fakeMachine) error {
			if i%3 == 0 {
				return boom
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if !errors.Is(err, boom) {
		t.Errorf("Close error = %v, want boom", err)
	}
	if stats.Errors != 4 {
		t.Errorf("stats.Errors = %d, want 4", stats.Errors)
	}
	if stats.Requests != 10 {
		t.Errorf("stats.Requests = %d, want 10 (errors still count as served)", stats.Requests)
	}
}

// TestBootFailurePropagates checks that a failing boot aborts New.
func TestBootFailurePropagates(t *testing.T) {
	_, err := New(Config{Workers: 3}, func(w int) (*fakeMachine, error) {
		if w == 2 {
			return nil, errors.New("no more frames")
		}
		return &fakeMachine{id: w}, nil
	})
	if err == nil || err.Error() != "fleet: booting machine 2: no more frames" {
		t.Errorf("New error = %v", err)
	}
}

// TestBoundedQueueBlocksSubmit checks the submission bound: with all
// workers blocked, at most Queue requests are accepted before Submit
// blocks, and everything completes once the workers resume.
func TestBoundedQueueBlocksSubmit(t *testing.T) {
	p := newFakePool(t, 2, 4)
	release := make(chan struct{})
	for w := 0; w < 2; w++ {
		if err := p.SubmitTo(w, func(int, *fakeMachine) error {
			<-release
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	accepted := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 20; i++ {
			if err := p.Submit(func(int, *fakeMachine) error { return nil }); err != nil {
				break
			}
			n++
		}
		accepted <- n
	}()
	select {
	case n := <-accepted:
		t.Fatalf("all %d submissions accepted despite blocked workers and bound 4", n)
	case <-time.After(50 * time.Millisecond):
		// Submit is blocking at the bound, as it should.
	}
	close(release)
	if n := <-accepted; n != 20 {
		t.Fatalf("only %d of 20 submissions accepted after release", n)
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 22 {
		t.Errorf("stats.Requests = %d, want 22", stats.Requests)
	}
	if stats.QueueHighWater > 4 {
		t.Errorf("queue high water %d exceeds bound 4", stats.QueueHighWater)
	}
}
