package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeMachine is a minimal Machine for pool tests. Its fields are
// deliberately unsynchronized: the pool's machine-per-worker ownership
// guarantee is exactly what makes that safe, and the -race leg of the
// test suite verifies it.
type fakeMachine struct {
	id     int
	cycles float64
	served int
}

func (m *fakeMachine) SimCycles() float64 { return m.cycles }

func newFakePool(t *testing.T, workers, queue int) *Pool[*fakeMachine] {
	t.Helper()
	p, err := New(Config{Workers: workers, Queue: queue}, func(w int) (*fakeMachine, error) {
		return &fakeMachine{id: w}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolHammer floods the pool from many goroutines, mixing
// balanced (Submit) and pinned (SubmitTo) requests, and checks that
// every accepted request executed exactly once and that the aggregate
// stats equal the sum of the per-worker stats. Run with -race this is
// also the machine-ownership proof: each fakeMachine is mutated
// without locks by whichever worker runs the request.
func TestPoolHammer(t *testing.T) {
	const (
		workers    = 8
		submitters = 16
		perSub     = 50
	)
	p := newFakePool(t, workers, 32)
	var executed atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				req := func(w int, m *fakeMachine) error {
					if m.id != w {
						return fmt.Errorf("worker %d got machine %d", w, m.id)
					}
					m.cycles += 3
					m.served++
					executed.Add(1)
					return nil
				}
				var err error
				if i%2 == 0 {
					err = p.Submit(req)
				} else {
					err = p.SubmitTo((s+i)%workers, req)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}

	const want = submitters * perSub
	if got := executed.Load(); got != want {
		t.Errorf("executed %d of %d requests", got, want)
	}
	if stats.Requests != want {
		t.Errorf("stats.Requests = %d, want %d", stats.Requests, want)
	}
	if stats.SimCycles != 3*want {
		t.Errorf("stats.SimCycles = %v, want %v", stats.SimCycles, 3*want)
	}
	if stats.Errors != 0 {
		t.Errorf("stats.Errors = %d", stats.Errors)
	}

	// Aggregate equals the sum (max for the high-water mark) of the
	// per-worker stats.
	var sum Stats
	sum.Workers = stats.Workers
	sum.aggregate()
	if stats.Requests != sum.Requests || stats.Errors != sum.Errors ||
		stats.Steals != sum.Steals || stats.SimCycles != sum.SimCycles ||
		stats.Busy != sum.Busy || stats.QueueHighWater != sum.QueueHighWater {
		t.Errorf("aggregate %+v != recomputed %+v", stats, sum)
	}

	// And the per-worker machine counters agree with the per-worker
	// stats (nothing ran on the wrong machine).
	for w := 0; w < workers; w++ {
		m := p.Machine(w)
		if uint64(m.served) != stats.Workers[w].Requests {
			t.Errorf("worker %d: machine served %d, stats say %d", w, m.served, stats.Workers[w].Requests)
		}
	}
}

// TestDrainDropsNothing checks the graceful-drain guarantee: every
// accepted request completes, across multiple drain cycles and the
// final close.
func TestDrainDropsNothing(t *testing.T) {
	p := newFakePool(t, 4, 8)
	var executed atomic.Uint64
	req := func(_ int, m *fakeMachine) error {
		m.cycles++
		executed.Add(1)
		return nil
	}
	for round := 1; round <= 3; round++ {
		for i := 0; i < 100; i++ {
			if err := p.Submit(req); err != nil {
				t.Fatal(err)
			}
		}
		p.Drain()
		if got := executed.Load(); got != uint64(100*round) {
			t.Fatalf("after drain %d: executed %d, want %d", round, got, 100*round)
		}
	}
	// Requests queued at Close time still execute.
	for i := 0; i < 50; i++ {
		if err := p.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 350 {
		t.Errorf("executed %d, want 350 (close dropped requests)", got)
	}
	if stats.Requests != 350 {
		t.Errorf("stats.Requests = %d, want 350", stats.Requests)
	}
	if err := p.Submit(req); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestPinnedPlacement checks that SubmitTo requests run only on their
// target machine, even with other workers idle and stealing.
func TestPinnedPlacement(t *testing.T) {
	const workers = 4
	p := newFakePool(t, workers, 16)
	var wrong atomic.Uint64
	for i := 0; i < 200; i++ {
		target := i % workers
		if err := p.SubmitTo(target, func(w int, m *fakeMachine) error {
			if w != target || m.id != target {
				wrong.Add(1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wrong.Load() != 0 {
		t.Errorf("%d pinned requests ran on the wrong machine", wrong.Load())
	}
	if stats.Steals != 0 {
		t.Errorf("steals = %d, want 0 for all-pinned load", stats.Steals)
	}
	for w := 0; w < workers; w++ {
		if stats.Workers[w].Requests != 50 {
			t.Errorf("worker %d served %d, want 50", w, stats.Workers[w].Requests)
		}
	}
	if err := p.SubmitTo(99, func(int, *fakeMachine) error { return nil }); err == nil {
		t.Error("SubmitTo(99) on a 4-worker pool must fail")
	}
}

// TestIdleWorkerSteals blocks one worker on a long request and checks
// that the other worker steals the backlog queued behind it.
func TestIdleWorkerSteals(t *testing.T) {
	p := newFakePool(t, 2, 64)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := p.SubmitTo(0, func(_ int, m *fakeMachine) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Worker 0 is blocked; all these land in both queues, and worker 1
	// must steal worker 0's share.
	var executed atomic.Uint64
	for i := 0; i < 40; i++ {
		if err := p.Submit(func(_ int, m *fakeMachine) error {
			executed.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for worker 1 to finish everything stealable.
	deadline := time.After(10 * time.Second)
	for executed.Load() != 40 {
		select {
		case <-deadline:
			t.Fatalf("only %d of 40 requests executed while worker 0 blocked", executed.Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers[1].Steals == 0 {
		t.Error("worker 1 never stole despite worker 0 being blocked")
	}
	if stats.Requests != 41 {
		t.Errorf("stats.Requests = %d, want 41", stats.Requests)
	}
}

// TestRequestErrorsAreCountedAndReturned checks error accounting.
func TestRequestErrorsAreCountedAndReturned(t *testing.T) {
	p := newFakePool(t, 2, 8)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		if err := p.Submit(func(int, *fakeMachine) error {
			if i%3 == 0 {
				return boom
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.Close()
	if !errors.Is(err, boom) {
		t.Errorf("Close error = %v, want boom", err)
	}
	if stats.Errors != 4 {
		t.Errorf("stats.Errors = %d, want 4", stats.Errors)
	}
	if stats.Requests != 10 {
		t.Errorf("stats.Requests = %d, want 10 (errors still count as served)", stats.Requests)
	}
}

// TestBootFailurePropagates checks that a failing boot aborts New.
func TestBootFailurePropagates(t *testing.T) {
	_, err := New(Config{Workers: 3}, func(w int) (*fakeMachine, error) {
		if w == 2 {
			return nil, errors.New("no more frames")
		}
		return &fakeMachine{id: w}, nil
	})
	if err == nil || err.Error() != "fleet: booting machine 2: no more frames" {
		t.Errorf("New error = %v", err)
	}
}

// TestBoundedQueueBlocksSubmit checks the submission bound: with all
// workers blocked, at most Queue requests are accepted before Submit
// blocks, and everything completes once the workers resume.
func TestBoundedQueueBlocksSubmit(t *testing.T) {
	p := newFakePool(t, 2, 4)
	release := make(chan struct{})
	for w := 0; w < 2; w++ {
		if err := p.SubmitTo(w, func(int, *fakeMachine) error {
			<-release
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	accepted := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 20; i++ {
			if err := p.Submit(func(int, *fakeMachine) error { return nil }); err != nil {
				break
			}
			n++
		}
		accepted <- n
	}()
	select {
	case n := <-accepted:
		t.Fatalf("all %d submissions accepted despite blocked workers and bound 4", n)
	case <-time.After(50 * time.Millisecond):
		// Submit is blocking at the bound, as it should.
	}
	close(release)
	if n := <-accepted; n != 20 {
		t.Fatalf("only %d of 20 submissions accepted after release", n)
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 22 {
		t.Errorf("stats.Requests = %d, want 22", stats.Requests)
	}
	if stats.QueueHighWater > 4 {
		t.Errorf("queue high water %d exceeds bound 4", stats.QueueHighWater)
	}
}

// TestTrySubmitBackpressure checks the non-blocking admission path:
// with all workers blocked and the bound reached, TrySubmit refuses
// with ErrBackpressure instead of queueing the caller, and accepts
// again once capacity frees up.
func TestTrySubmitBackpressure(t *testing.T) {
	p := newFakePool(t, 2, 2)
	release := make(chan struct{})
	for w := 0; w < 2; w++ {
		if err := p.SubmitTo(w, func(int, *fakeMachine) error {
			<-release
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Bound (2) reached: both non-blocking paths must refuse, typed.
	if err := p.TrySubmit(func(int, *fakeMachine) error { return nil }); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("TrySubmit at the bound = %v, want ErrBackpressure", err)
	}
	if err := p.TrySubmitTo(0, func(int, *fakeMachine) error { return nil }); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("TrySubmitTo at the bound = %v, want ErrBackpressure", err)
	}
	if err := p.TrySubmitTo(99, func(int, *fakeMachine) error { return nil }); err == nil {
		t.Fatal("TrySubmitTo(99) on a 2-worker pool must fail")
	}
	close(release)
	p.Drain()
	var ran atomic.Bool
	if err := p.TrySubmit(func(int, *fakeMachine) error { ran.Store(true); return nil }); err != nil {
		t.Fatalf("TrySubmit with capacity free = %v", err)
	}
	p.Drain()
	if !ran.Load() {
		t.Error("accepted TrySubmit request never ran")
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.TrySubmit(func(int, *fakeMachine) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("TrySubmit after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitCtxCancelUnblocks checks that a SubmitCtx blocked on a
// full queue returns the context error when cancelled, and that a
// context cancelled after acceptance does not revoke the request.
func TestSubmitCtxCancelUnblocks(t *testing.T) {
	p := newFakePool(t, 1, 1)
	release := make(chan struct{})
	if err := p.SubmitTo(0, func(int, *fakeMachine) error {
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.SubmitCtx(ctx, func(int, *fakeMachine) error { return nil })
	}()
	select {
	case err := <-errc:
		t.Fatalf("SubmitCtx returned %v before cancel despite full queue", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled SubmitCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitCtx still blocked 5s after cancel")
	}
	// Acceptance is final: cancelling after Submit returns must not
	// drop the request.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var ran atomic.Bool
	go func() { time.Sleep(20 * time.Millisecond); close(release) }()
	if err := p.SubmitCtx(ctx2, func(int, *fakeMachine) error { ran.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	cancel2()
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Error("accepted request dropped after its context was cancelled")
	}
}

// TestCloseWakesBlockedSubmitters checks the shutdown-vs-full-queue
// deadlock fix: submitters blocked at the bound are woken by Close and
// return ErrClosed rather than being stranded.
func TestCloseWakesBlockedSubmitters(t *testing.T) {
	p := newFakePool(t, 1, 1)
	release := make(chan struct{})
	if err := p.SubmitTo(0, func(int, *fakeMachine) error {
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const blocked = 4
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func() {
			errs <- p.Submit(func(int, *fakeMachine) error { return nil })
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the submitters block at the bound
	done := make(chan struct{})
	go func() {
		close(release)
		p.Close()
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errs:
			// Either outcome is legal for a submission racing Close —
			// accepted (nil, and then executed) or refused — but never
			// a hang.
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("blocked Submit woken with %v, want nil or ErrClosed", err)
			}
		case <-deadline:
			t.Fatal("Submit still blocked 5s after Close")
		}
	}
	<-done
}

// TestSubmitRacingCloseNeverDropsAccepted hammers Submit/TrySubmit/
// SubmitCtx from many goroutines racing Close: every submission that
// returned nil must execute exactly once, and nothing may panic. Run
// under -race this is also the drain/shutdown memory-safety proof.
func TestSubmitRacingCloseNeverDropsAccepted(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := newFakePool(t, 4, 8)
		var accepted, executed atomic.Uint64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					req := func(int, *fakeMachine) error {
						executed.Add(1)
						return nil
					}
					var err error
					switch i % 3 {
					case 0:
						err = p.Submit(req)
					case 1:
						err = p.TrySubmit(req)
					default:
						err = p.SubmitCtx(context.Background(), req)
					}
					if err == nil {
						accepted.Add(1)
					} else if errors.Is(err, ErrClosed) {
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Millisecond)
		if _, err := p.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if accepted.Load() != executed.Load() {
			t.Fatalf("round %d: accepted %d but executed %d", round, accepted.Load(), executed.Load())
		}
	}
}

// TestRunStatsPerRunDeltas checks that BeginRun isolates back-to-back
// measurement runs: steals, queue high water, request counts and
// serving spans of one run do not contaminate the next.
func TestRunStatsPerRunDeltas(t *testing.T) {
	p := newFakePool(t, 2, 16)

	run1 := p.BeginRun()
	for i := 0; i < 10; i++ {
		if err := p.SubmitTo(i%2, func(_ int, m *fakeMachine) error {
			m.cycles += 5
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	s1 := run1.Stats()
	if s1.Requests != 10 {
		t.Errorf("run 1 requests = %d, want 10", s1.Requests)
	}
	if s1.QueueHighWater == 0 {
		t.Error("run 1 high water = 0, want > 0")
	}
	for w, ws := range s1.Workers {
		if ws.Requests != 5 {
			t.Errorf("run 1 worker %d requests = %d, want 5", w, ws.Requests)
		}
		if ws.SpanCycles != 25 {
			t.Errorf("run 1 worker %d span = %v cycles, want 25", w, ws.SpanCycles)
		}
		if ws.SpanSeconds < 0 {
			t.Errorf("run 1 worker %d wall span = %v", w, ws.SpanSeconds)
		}
	}

	// A second, smaller run on the same pool: its stats must stand
	// alone (the old cumulative counters would report 12 requests and
	// run 1's high water).
	run2 := p.BeginRun()
	for i := 0; i < 2; i++ {
		if err := p.SubmitTo(0, func(_ int, m *fakeMachine) error {
			m.cycles += 3
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		p.Drain()
	}
	s2 := run2.Stats()
	if s2.Requests != 2 {
		t.Errorf("run 2 requests = %d, want 2", s2.Requests)
	}
	if s2.Workers[0].SpanCycles != 6 {
		t.Errorf("run 2 worker 0 span = %v cycles, want 6 (first-to-last of THIS run)", s2.Workers[0].SpanCycles)
	}
	if s2.Workers[1].Requests != 0 || s2.Workers[1].SpanCycles != 0 {
		t.Errorf("run 2 worker 1 = %+v, want untouched", s2.Workers[1])
	}
	if s2.QueueHighWater > 1 {
		t.Errorf("run 2 high water = %d, want <= 1 (drained between submissions)", s2.QueueHighWater)
	}
	// Draining between the two submissions means at most one request
	// was ever queued, while run 1 queued 5 per worker.
	if s1.QueueHighWater <= s2.QueueHighWater {
		t.Errorf("run 1 high water (%d) should exceed run 2's (%d)", s1.QueueHighWater, s2.QueueHighWater)
	}

	// The superseded run 1 handle still reports correct counter deltas
	// but no longer claims the live span tracking.
	s1again := run1.Stats()
	if s1again.Requests != 12 {
		t.Errorf("superseded run 1 requests = %d, want 12 (deltas keep accumulating)", s1again.Requests)
	}
	if s1again.Workers[0].SpanCycles != 0 || s1again.QueueHighWater != 0 {
		t.Errorf("superseded run must zero span/high-water, got %+v", s1again.Workers[0])
	}

	// Cumulative Pool.Stats never reports spans.
	if ws := p.Stats().Workers[0]; ws.SpanCycles != 0 || ws.SpanSeconds != 0 {
		t.Errorf("cumulative stats carry spans: %+v", ws)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAddMachineGrowsLivePool checks autoscale's primitive: a machine
// added to a serving pool starts taking balanced work, reports its own
// stats, and a run begun before the growth attributes the new worker's
// full counters to the run.
func TestAddMachineGrowsLivePool(t *testing.T) {
	p := newFakePool(t, 1, 64)
	run := p.BeginRun()
	for i := 0; i < 20; i++ {
		if err := p.Submit(func(_ int, m *fakeMachine) error {
			m.cycles++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	w, err := p.AddMachine(&fakeMachine{id: 1, cycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || p.Workers() != 2 {
		t.Fatalf("AddMachine index %d, workers %d; want 1, 2", w, p.Workers())
	}
	for i := 0; i < 20; i++ {
		if err := p.SubmitTo(1, func(_ int, m *fakeMachine) error {
			if m.id != 1 {
				return fmt.Errorf("pinned request ran on machine %d", m.id)
			}
			m.cycles += 2
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	s := run.Stats()
	if s.Requests != 40 {
		t.Errorf("run requests = %d, want 40", s.Requests)
	}
	if s.Workers[1].Requests != 20 {
		t.Errorf("scaled-up worker served %d, want 20", s.Workers[1].Requests)
	}
	// The late worker's span covers its own first-to-last request
	// (100 -> 140), not the run's global start.
	if s.Workers[1].SpanCycles != 40 {
		t.Errorf("scaled-up worker span = %v, want 40", s.Workers[1].SpanCycles)
	}
	if got := p.Stats().Workers[1].BootCycles; got != 100 {
		t.Errorf("scaled-up worker boot cycles = %v, want 100", got)
	}
	stats, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 40 {
		t.Errorf("total requests = %d, want 40", stats.Requests)
	}
	if _, err := p.AddMachine(&fakeMachine{id: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("AddMachine after Close = %v, want ErrClosed", err)
	}
}
