package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoveMachineDrainsAndRetires: a retiring worker finishes every
// request already pinned to it before RemoveMachine returns, then the
// slot is dead — no new submissions land on it.
func TestRemoveMachineDrainsAndRetires(t *testing.T) {
	p := newFakePool(t, 3, 16)
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Uint64
	// Block worker 2, then stack pinned work behind the blocker.
	if err := p.SubmitTo(2, func(_ int, m *fakeMachine) error {
		close(started)
		<-release
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	const pinned = 5
	for i := 0; i < pinned; i++ {
		if err := p.SubmitTo(2, func(_ int, m *fakeMachine) error {
			m.served++
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	got := make(chan *fakeMachine)
	go func() {
		m, err := p.RemoveMachine(2)
		if err != nil {
			t.Error(err)
		}
		got <- m
	}()
	// RemoveMachine must block while the worker is wedged.
	select {
	case <-got:
		t.Fatal("RemoveMachine returned before the worker drained")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	m := <-got
	if m == nil {
		t.Fatal("RemoveMachine returned no machine")
	}
	if want := uint64(1 + pinned); ran.Load() != want {
		t.Errorf("retiring worker ran %d of %d accepted requests", ran.Load(), want)
	}
	if m.served != pinned {
		t.Errorf("returned machine served %d, want %d", m.served, pinned)
	}

	if p.Workers() != 2 || p.TotalWorkers() != 3 {
		t.Errorf("Workers=%d TotalWorkers=%d, want 2/3", p.Workers(), p.TotalWorkers())
	}
	if live := p.LiveWorkers(); len(live) != 2 || live[0] != 0 || live[1] != 1 {
		t.Errorf("LiveWorkers = %v, want [0 1]", live)
	}
	st := p.Stats()
	if !st.Workers[2].Retired {
		t.Errorf("stats row for retired worker not flagged")
	}

	// The dead slot refuses pinned work and double-retire.
	if err := p.SubmitTo(2, func(int, *fakeMachine) error { return nil }); err == nil {
		t.Errorf("SubmitTo retired worker accepted")
	}
	if _, err := p.RemoveMachine(2); err == nil {
		t.Errorf("second RemoveMachine accepted")
	}
	// Balanced work still flows to the survivors.
	var onRetired atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if err := p.Submit(func(w int, _ *fakeMachine) error {
			if w == 2 {
				onRetired.Store(true)
			}
			wg.Done()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if onRetired.Load() {
		t.Errorf("balanced submission landed on retired worker")
	}
}

// TestRemoveMachineRefusesLastWorker: the fleet never shrinks to zero.
func TestRemoveMachineRefusesLastWorker(t *testing.T) {
	p := newFakePool(t, 2, 8)
	defer p.Close()
	if _, err := p.RemoveMachine(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RemoveMachine(1); err == nil {
		t.Fatal("removed the last live worker")
	}
	if _, err := p.RemoveMachine(7); err == nil {
		t.Fatal("removed an out-of-range worker")
	}
}

// TestRemoveThenAddMachine: retire/add cycles keep growing worker
// indices; the pool stays functional throughout.
func TestRemoveThenAddMachine(t *testing.T) {
	p := newFakePool(t, 2, 8)
	defer p.Close()
	if _, err := p.RemoveMachine(1); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddMachine(&fakeMachine{id: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("AddMachine slot %d, want 2 (slots are never reused)", w)
	}
	if p.Workers() != 2 || p.TotalWorkers() != 3 {
		t.Fatalf("Workers=%d TotalWorkers=%d, want 2/3", p.Workers(), p.TotalWorkers())
	}
	done := make(chan int, 1)
	if err := p.SubmitTo(2, func(w int, m *fakeMachine) error {
		done <- m.id
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if id := <-done; id != 2 {
		t.Fatalf("new worker ran machine %d", id)
	}
}

// TestRemoveMachineConservation hammers balanced submissions while
// workers retire mid-stream: every accepted request executes exactly
// once — conservation-exact scale-down.
func TestRemoveMachineConservation(t *testing.T) {
	const workers = 6
	p := newFakePool(t, workers, 64)
	var executed, accepted atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := p.Submit(func(_ int, m *fakeMachine) error {
					m.served++
					executed.Add(1)
					return nil
				})
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Error(err)
					}
					return
				}
				accepted.Add(1)
			}
		}()
	}
	// Retire all but one worker while the flood runs.
	retired := make([]*fakeMachine, 0, workers-1)
	for w := workers - 1; w > 0; w-- {
		m, err := p.RemoveMachine(w)
		if err != nil {
			t.Fatal(err)
		}
		retired = append(retired, m)
	}
	close(stop)
	wg.Wait()
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if accepted.Load() != executed.Load() {
		t.Errorf("accepted %d != executed %d: scale-down dropped work", accepted.Load(), executed.Load())
	}
	// The machines' own counters account for every execution too.
	var sum int
	for _, m := range retired {
		sum += m.served
	}
	sum += p.Machine(0).served
	if uint64(sum) != executed.Load() {
		t.Errorf("machine counters sum %d != executed %d", sum, executed.Load())
	}
}
