package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedClones builds a clone source whose forks block until fed
// through gate, so tests control exactly when the filler can work.
type gatedClones struct {
	gate      chan struct{}
	forked    atomic.Int32
	discarded atomic.Int32
	inClone   atomic.Int32 // concurrency tripwire
}

func (g *gatedClones) clone() (int, error) {
	<-g.gate
	if g.inClone.Add(1) != 1 {
		panic("concurrent clone: template not quiescent")
	}
	defer g.inClone.Add(-1)
	return int(g.forked.Add(1)), nil
}

func (g *gatedClones) discard(int) { g.discarded.Add(1) }

func waitDepth(t *testing.T, p *ClonePool[int], want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().WarmDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("warm depth %d never reached %d", p.Stats().WarmDepth, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClonePoolWarmPath: the filler pre-forks to the target depth off
// the hot path; Take pops warm clones without forking inline.
func TestClonePoolWarmPath(t *testing.T) {
	g := &gatedClones{gate: make(chan struct{}, 100)}
	p := NewClonePool(3, g.clone, g.discard)
	defer p.Close()
	for i := 0; i < 10; i++ {
		g.gate <- struct{}{}
	}
	waitDepth(t, p, 3)

	m, err := p.Take()
	if err != nil {
		t.Fatal(err)
	}
	if m == 0 {
		t.Fatal("got zero clone")
	}
	p.Discard(m)
	waitDepth(t, p, 3) // filler topped the stack back up
	st := p.Stats()
	if st.TargetDepth != 3 || st.ColdSteals != 0 || st.Discards != 1 {
		t.Errorf("stats %+v: want target 3, no cold steals, 1 discard", st)
	}
	if st.Forks != uint64(g.forked.Load()) {
		t.Errorf("Forks gauge %d != clones created %d", st.Forks, g.forked.Load())
	}
}

// TestClonePoolColdSteal: a Take that finds the warm stack dry forks
// inline and is counted as a cold steal.
func TestClonePoolColdSteal(t *testing.T) {
	g := &gatedClones{gate: make(chan struct{}, 100)}
	p := NewClonePool(1, g.clone, g.discard)
	defer p.Close()
	g.gate <- struct{}{}
	waitDepth(t, p, 1)

	if _, err := p.Take(); err != nil { // pops the only warm clone
		t.Fatal(err)
	}
	// The stack is dry and the filler is blocked on the gate: this Take
	// must go down the cold path (and block in clone until fed).
	took := make(chan error, 1)
	go func() {
		_, err := p.Take()
		took <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().ColdSteals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cold steal never counted")
		}
		time.Sleep(time.Millisecond)
	}
	g.gate <- struct{}{}
	g.gate <- struct{}{} // one for the cold path, one for the filler
	if err := <-took; err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.ColdSteals != 1 {
		t.Errorf("ColdSteals = %d, want 1", st.ColdSteals)
	}
}

// TestClonePoolCloseDrains: Close discards every warm clone and fails
// later Takes; clones still out may be discarded afterwards.
func TestClonePoolCloseDrains(t *testing.T) {
	g := &gatedClones{gate: make(chan struct{}, 100)}
	p := NewClonePool(2, g.clone, g.discard)
	for i := 0; i < 4; i++ {
		g.gate <- struct{}{}
	}
	waitDepth(t, p, 2)
	m, err := p.Take()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Take(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Take after Close: %v, want ErrPoolClosed", err)
	}
	p.Discard(m)
	// Every clone ever forked was handed back: warm ones at Close, the
	// taken one explicitly.
	if g.discarded.Load() != g.forked.Load() {
		t.Errorf("%d of %d clones never discarded", g.forked.Load()-g.discarded.Load(), g.forked.Load())
	}
}

// TestClonePoolHammer: concurrent Take/Discard churn under -race, with
// the inClone tripwire proving no two forks ever overlap — the
// template stays quiescent no matter how the warm and cold paths race.
func TestClonePoolHammer(t *testing.T) {
	g := &gatedClones{gate: make(chan struct{}, 1<<20)}
	for i := 0; i < 1<<19; i++ {
		g.gate <- struct{}{}
	}
	p := NewClonePool(4, g.clone, g.discard)
	var wg sync.WaitGroup
	var taken atomic.Int32
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m, err := p.Take()
				if err != nil {
					t.Error(err)
					return
				}
				taken.Add(1)
				p.Discard(m)
			}
		}()
	}
	wg.Wait()
	p.Close()
	if taken.Load() != 800 {
		t.Errorf("took %d clones, want 800", taken.Load())
	}
	if g.discarded.Load() != g.forked.Load() {
		t.Errorf("%d clones leaked", g.forked.Load()-g.discarded.Load())
	}
	st := p.Stats()
	if st.Forks != uint64(g.forked.Load()) || st.Discards != uint64(g.discarded.Load()) {
		t.Errorf("gauges %+v drifted from ground truth fork=%d discard=%d",
			st, g.forked.Load(), g.discarded.Load())
	}
}
