// Warm clone pool for ephemeral-clone request serving: requests run on
// a machine forked from a pristine template and discarded afterwards —
// never restored — so cross-request isolation comes from never reusing
// a machine, not from scrubbing one. The fork happens off the hot path:
// a single filler goroutine (the only goroutine that ever touches the
// template, keeping it quiescent) pre-forks clones into a bounded warm
// stack, and the serving path just pops one. A request that finds the
// stack dry pays the fork tax inline — the ColdSteals gauge counts how
// often the filler lost that race.
package fleet

import (
	"errors"
	"sync"
)

// ErrPoolClosed reports a Take after the clone pool shut down.
var ErrPoolClosed = errors.New("fleet: clone pool is closed")

// CloneStats is a snapshot of the pool gauges.
type CloneStats struct {
	// WarmDepth is the current number of pre-forked clones waiting.
	WarmDepth int
	// TargetDepth is the configured warm bound.
	TargetDepth int
	// Forks counts every clone ever created, warm and cold alike.
	Forks uint64
	// ColdSteals counts Takes that found the warm stack dry and forked
	// inline on the request path.
	ColdSteals uint64
	// Discards counts clones handed back and released.
	Discards uint64
}

// ClonePool pre-forks machines from a template. M is typically
// *webserver.Server; the pool is generic so tests can drive it with
// counters instead of full machines.
type ClonePool[M any] struct {
	clone   func() (M, error) // forks one machine off the template
	discard func(M)           // releases a spent machine's resources

	// forkMu serializes every clone() call: the template must be
	// quiescent while forked, so the filler and cold-path Takes never
	// fork concurrently.
	forkMu sync.Mutex

	mu     sync.Mutex
	warm   []M
	target int
	closed bool

	forks      uint64
	coldSteals uint64
	discards   uint64

	wake chan struct{}
	done chan struct{}
}

// NewClonePool starts a pool keeping up to depth pre-forked clones
// warm. clone runs only on the filler goroutine or inline in a
// cold-path Take, never concurrently with itself — the template stays
// quiescent. discard is called (on the caller's goroutine) for every
// machine handed to Discard and for warm machines at Close.
func NewClonePool[M any](depth int, clone func() (M, error), discard func(M)) *ClonePool[M] {
	if depth < 1 {
		depth = 1
	}
	p := &ClonePool[M]{
		clone:   clone,
		discard: discard,
		warm:    make([]M, 0, depth),
		target:  depth,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go p.fill()
	p.kick()
	return p
}

func (p *ClonePool[M]) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// fill is the filler loop: the one goroutine that forks off the
// template in steady state.
func (p *ClonePool[M]) fill() {
	defer close(p.done)
	for range p.wake {
		for {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			if len(p.warm) >= p.target {
				p.mu.Unlock()
				break
			}
			p.mu.Unlock()
			p.forkMu.Lock()
			m, err := p.clone()
			p.forkMu.Unlock()
			if err != nil {
				// Forks are retried on the next kick; a cold-path Take
				// surfaces the error to a caller who can handle it.
				break
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				p.discard(m)
				return
			}
			p.warm = append(p.warm, m)
			p.forks++
			p.mu.Unlock()
		}
	}
}

// Take pops a warm clone, or forks inline (a cold steal) when the warm
// stack is dry. The caller owns the returned machine exclusively and
// must hand it to Discard when done.
func (p *ClonePool[M]) Take() (M, error) {
	var zero M
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return zero, ErrPoolClosed
	}
	if n := len(p.warm); n > 0 {
		m := p.warm[n-1]
		p.warm[n-1] = zero
		p.warm = p.warm[:n-1]
		p.mu.Unlock()
		p.kick()
		return m, nil
	}
	p.coldSteals++
	p.mu.Unlock()
	p.kick()
	// The template is only ever forked by one goroutine at a time: the
	// filler owns it in steady state, so the cold path serializes with
	// it through forkMu rather than forking concurrently.
	p.forkMu.Lock()
	m, err := p.clone()
	p.forkMu.Unlock()
	if err != nil {
		return zero, err
	}
	p.mu.Lock()
	p.forks++
	p.mu.Unlock()
	return m, nil
}

// Discard releases a spent clone. Never reuse a discarded machine.
func (p *ClonePool[M]) Discard(m M) {
	p.discard(m)
	p.mu.Lock()
	p.discards++
	p.mu.Unlock()
}

// Stats snapshots the pool gauges.
func (p *ClonePool[M]) Stats() CloneStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CloneStats{
		WarmDepth:   len(p.warm),
		TargetDepth: p.target,
		Forks:       p.forks,
		ColdSteals:  p.coldSteals,
		Discards:    p.discards,
	}
}

// Close stops the filler and discards every warm clone. Take fails
// afterwards; machines already taken may still be Discarded.
func (p *ClonePool[M]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	warm := p.warm
	p.warm = nil
	p.mu.Unlock()
	close(p.wake)
	<-p.done
	for _, m := range warm {
		p.discard(m)
		p.mu.Lock()
		p.discards++
		p.mu.Unlock()
	}
}
