// Package fleet runs a pool of independently booted Palladium
// machines behind a work-stealing request dispatcher, turning the
// one-machine-at-a-time reproduction into a concurrent serving tier.
//
// The isolation argument is machine-per-worker ownership: every worker
// goroutine boots and exclusively owns one complete simulated machine
// (its own core.System, kernel, MMU, TLB, physical memory and clock),
// so no simulator state is ever shared between goroutines and the
// simulated metrics of each machine are bit-identical to what the same
// machine would produce serving alone. The pool only adds scheduling
// around the machines: a bounded submission queue, per-worker run
// queues with idle-worker stealing, per-worker and aggregate
// statistics, and a graceful drain that never drops an accepted
// request.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Machine is the constraint for worker-owned simulated machines: the
// pool reads the machine's simulated clock around every request to
// attribute simulated cycles to workers.
type Machine interface {
	// SimCycles returns the machine's simulated clock reading.
	SimCycles() float64
}

// Request is one unit of work executed on a worker-owned machine. The
// worker index identifies the machine the request actually ran on
// (which, under stealing, may differ from the submission target).
type Request[M Machine] func(worker int, m M) error

// ErrClosed reports a Submit after Close. A Submit blocked on a full
// queue when Close arrives is woken and returns ErrClosed too, rather
// than being stranded against a queue no worker will ever drain.
var ErrClosed = errors.New("fleet: pool is closed")

// ErrBackpressure reports a TrySubmit refused because the submission
// bound is reached. The serving tier maps it to a typed
// sandbox.Fault{Class: Backpressure} and HTTP 503.
var ErrBackpressure = errors.New("fleet: submission queue full")

// Config sizes a pool.
type Config struct {
	// Workers is the number of machines to boot (default 1).
	Workers int
	// Queue bounds the number of accepted-but-unfinished requests;
	// Submit blocks while the bound is reached (default 4*Workers).
	Queue int
}

// WorkerStats are one worker's counters. All fields are totals since
// boot; Stats aggregates them by summation (QueueHighWater by max).
type WorkerStats struct {
	Worker int
	// Requests is the number of requests this worker executed.
	Requests uint64
	// Errors counts requests whose handler returned an error.
	Errors uint64
	// Steals counts requests this worker took from another worker's
	// queue while its own was empty.
	Steals uint64
	// SimCycles is the simulated cycles charged to this worker's
	// machine while executing requests.
	SimCycles float64
	// Retired reports that the worker has been removed from the pool
	// (RemoveMachine): it serves nothing further, but its counters stay
	// in every snapshot so pool totals remain conservation-exact across
	// scale-downs.
	Retired bool
	// BootCycles is the machine's simulated clock reading right after
	// boot, before any request ran.
	BootCycles float64
	// Busy is the wall-clock time spent executing requests.
	Busy time.Duration
	// QueueHighWater is the deepest this worker's run queue got: since
	// boot in Pool.Stats snapshots, since BeginRun in Run.Stats ones.
	QueueHighWater int
	// SpanCycles and SpanSeconds are per-run serving spans, populated
	// only by Run.Stats: the machine's simulated clock span and the
	// host wall-clock span from just before this worker's first served
	// request of the run to just after its last. Workers that join the
	// pool mid-run (autoscaling) get a correct local span rather than
	// inheriting the run's global start. Zero in cumulative Pool.Stats
	// snapshots and for workers that served nothing this run.
	SpanCycles  float64
	SpanSeconds float64
}

// Stats is a snapshot of the whole pool.
type Stats struct {
	Workers []WorkerStats
	// Aggregates: sums of the per-worker fields (QueueHighWater is
	// the max across workers).
	Requests       uint64
	Errors         uint64
	Steals         uint64
	SimCycles      float64
	Busy           time.Duration
	QueueHighWater int
}

// aggregate recomputes the summary fields from Workers.
func (s *Stats) aggregate() {
	s.Requests, s.Errors, s.Steals, s.SimCycles, s.Busy, s.QueueHighWater = 0, 0, 0, 0, 0, 0
	for _, w := range s.Workers {
		s.Requests += w.Requests
		s.Errors += w.Errors
		s.Steals += w.Steals
		s.SimCycles += w.SimCycles
		s.Busy += w.Busy
		if w.QueueHighWater > s.QueueHighWater {
			s.QueueHighWater = w.QueueHighWater
		}
	}
}

// item is one queued request. Pinned items model the fleet's load
// balancer assigning a request to a specific machine: they may only
// run on their queue's worker (a steal would change which simulated
// machine's clock the request charges, making simulated placement
// depend on host scheduling).
type item[M Machine] struct {
	req    Request[M]
	pinned bool
}

// ring is a growable circular queue of items. The buffer is allocated
// once (pre-sized to the submission bound) and reused, so steady-state
// Submit/take cycles allocate nothing — the slice-append queues this
// replaces reallocated continuously because popping from the front
// discards capacity.
type ring[M Machine] struct {
	buf  []item[M]
	head int
	n    int
}

func (r *ring[M]) len() int { return r.n }

func (r *ring[M]) at(i int) *item[M] { return &r.buf[(r.head+i)%len(r.buf)] }

func (r *ring[M]) push(it item[M]) {
	if r.n == len(r.buf) {
		nb := make([]item[M], max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = *r.at(i)
		}
		r.buf, r.head = nb, 0
	}
	*r.at(r.n) = it
	r.n++
}

func (r *ring[M]) popFront() item[M] {
	it := r.buf[r.head]
	r.buf[r.head] = item[M]{} // release the closure reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return it
}

// removeAt deletes logical index i in place, shifting the shorter
// side (the dispatcher steals the newest stealable item, so this is
// normally a shift of zero or one element).
func (r *ring[M]) removeAt(i int) item[M] {
	it := *r.at(i)
	if i <= r.n-1-i {
		for j := i; j > 0; j-- {
			*r.at(j) = *r.at(j - 1)
		}
		r.buf[r.head] = item[M]{}
		r.head = (r.head + 1) % len(r.buf)
	} else {
		for j := i; j < r.n-1; j++ {
			*r.at(j) = *r.at(j + 1)
		}
		*r.at(r.n - 1) = item[M]{}
	}
	r.n--
	return it
}

// Pool is a fleet of worker-owned machines behind a work-stealing
// dispatcher.
type Pool[M Machine] struct {
	mu    sync.Mutex
	work  *sync.Cond // work arrived (or the pool is closing)
	space *sync.Cond // the submission bound has room again
	idle  *sync.Cond // all accepted requests finished

	queues   []ring[M]
	inflight int // accepted (queued or running) requests
	next     int // round-robin submission cursor
	bound    int
	closing  bool

	machines []M
	retired  []bool // worker has been told to retire (RemoveMachine)
	exited   []bool // worker goroutine has finished draining and left
	gone     *sync.Cond
	live     int // workers not retired
	stats    []WorkerStats
	epoch    uint64     // bumped by BeginRun; scopes the run tracking
	runs     []runTrack // per-worker tracking for the current run
	firstErr error
	wg       sync.WaitGroup
}

// runTrack is the pool's per-worker bookkeeping for the current
// measurement run (see BeginRun): how many requests the worker served
// this run, the simulated-clock and wall-clock readings bracketing its
// first and last served request, and the run-local queue high water.
type runTrack struct {
	served    uint64
	spanStart float64 // machine clock just before the first request
	spanEnd   float64 // machine clock just after the latest request
	firstWall time.Time
	lastWall  time.Time
	highWater int
}

// New boots cfg.Workers machines (sequentially, so boot-time frame and
// address allocations are deterministic per worker index) and starts
// one goroutine per machine.
func New[M Machine](cfg Config, boot func(worker int) (M, error)) (*Pool[M], error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	p := &Pool[M]{
		queues:   make([]ring[M], cfg.Workers),
		bound:    cfg.Queue,
		machines: make([]M, cfg.Workers),
		retired:  make([]bool, cfg.Workers),
		exited:   make([]bool, cfg.Workers),
		live:     cfg.Workers,
		stats:    make([]WorkerStats, cfg.Workers),
		runs:     make([]runTrack, cfg.Workers),
	}
	for w := range p.queues {
		// Pre-size to the submission bound: no queue can hold more
		// than `bound` items, so steady-state submission never grows.
		p.queues[w].buf = make([]item[M], cfg.Queue)
	}
	p.work = sync.NewCond(&p.mu)
	p.space = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.gone = sync.NewCond(&p.mu)
	for w := 0; w < cfg.Workers; w++ {
		m, err := boot(w)
		if err != nil {
			return nil, fmt.Errorf("fleet: booting machine %d: %w", w, err)
		}
		p.machines[w] = m
		p.stats[w] = WorkerStats{Worker: w, BootCycles: m.SimCycles()}
	}
	p.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go p.run(w, p.machines[w])
	}
	return p, nil
}

// AddMachine grows a live pool by one worker owning machine m and
// returns the new worker's index. The serving tier's autoscaler uses
// it with a clone of a pristine template machine, so a scaled-up
// worker's simulated state is bit-identical to a boot-time worker's.
// Existing queues, in-flight requests and statistics are untouched;
// balanced submissions start landing on the new worker immediately.
func (p *Pool[M]) AddMachine(m M) (int, error) {
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	w := len(p.machines)
	p.machines = append(p.machines, m)
	p.retired = append(p.retired, false)
	p.exited = append(p.exited, false)
	p.live++
	p.stats = append(p.stats, WorkerStats{Worker: w, BootCycles: m.SimCycles()})
	p.queues = append(p.queues, ring[M]{buf: make([]item[M], p.bound)})
	p.runs = append(p.runs, runTrack{})
	p.wg.Add(1)
	p.mu.Unlock()
	go p.run(w, m)
	return w, nil
}

// RemoveMachine retires worker w: balanced submissions stop landing on
// it immediately, it drains whatever its queue already holds (accepted
// work is never dropped — conservation of requests is exact across a
// scale-down), and once empty its goroutine exits. RemoveMachine
// blocks until the drain completes, then returns the machine to the
// caller, who now owns it exclusively (an ephemeral-clone tier must
// release its frame references; see mem.Physical.Release). The
// worker's statistics remain in every later Stats snapshot, flagged
// Retired. The last live worker cannot be removed.
func (p *Pool[M]) RemoveMachine(w int) (M, error) {
	var zero M
	p.mu.Lock()
	defer p.mu.Unlock()
	if w < 0 || w >= len(p.machines) {
		return zero, fmt.Errorf("fleet: no worker %d", w)
	}
	if p.closing {
		return zero, ErrClosed
	}
	if p.retired[w] {
		return zero, fmt.Errorf("fleet: worker %d already retired", w)
	}
	if p.live <= 1 {
		return zero, fmt.Errorf("fleet: cannot retire the last live worker")
	}
	p.retired[w] = true
	p.live--
	p.stats[w].Retired = true
	p.work.Broadcast() // wake w (and stealers of its queue)
	for !p.exited[w] {
		p.gone.Wait()
	}
	m := p.machines[w]
	p.machines[w] = zero // the pool drops its reference; caller owns m
	return m, nil
}

// LiveWorkers lists the indices of workers that have not been retired,
// in ascending order.
func (p *Pool[M]) LiveWorkers() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, p.live)
	for w, r := range p.retired {
		if !r {
			out = append(out, w)
		}
	}
	return out
}

// NewFromTemplate boots ONE template machine and derives the other
// workers by cloning it, replacing cfg.Workers serial boots with a
// single boot plus cfg.Workers-1 clones. The template itself serves as
// worker 0. Because a clone's simulated state is bit-identical to its
// source's, a clone-booted fleet serves exactly as a serially booted
// one — the only difference is wall-clock boot time (see
// BENCH_snapshot.json). All clones are taken up front, before any
// worker goroutine starts, so the template is quiescent while cloned.
func NewFromTemplate[M Machine](cfg Config, bootTemplate func() (M, error), clone func(worker int, template M) (M, error)) (*Pool[M], error) {
	tmpl, err := bootTemplate()
	if err != nil {
		return nil, fmt.Errorf("fleet: booting template machine: %w", err)
	}
	return New(cfg, func(w int) (M, error) {
		if w == 0 {
			return tmpl, nil
		}
		return clone(w, tmpl)
	})
}

// Workers returns the number of live (non-retired) workers. Under
// autoscaling it can change between calls in either direction.
func (p *Pool[M]) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// TotalWorkers returns how many workers the pool has ever had; worker
// indices run [0, TotalWorkers) and retired ones keep theirs.
func (p *Pool[M]) TotalWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.machines)
}

// Inflight reports the number of accepted (queued or running)
// requests; the serving tier's autoscaler samples it as queue depth.
func (p *Pool[M]) Inflight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight
}

// Bound reports the submission bound.
func (p *Pool[M]) Bound() int { return p.bound }

// Submit hands a request to the dispatcher, blocking while the
// submission bound is reached. Requests are placed round-robin on the
// worker run queues; idle workers steal from the longest queue.
func (p *Pool[M]) Submit(req Request[M]) error {
	return p.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with cancellation: a submitter blocked on a full
// queue returns ctx.Err() once ctx is done (and ErrClosed if the pool
// closes first). An accepted request is never revoked by a later
// cancellation of ctx.
func (p *Pool[M]) SubmitCtx(ctx context.Context, req Request[M]) error {
	return p.submit(ctx, balanced, item[M]{req: req})
}

// TrySubmit is the non-blocking Submit used for admission control: a
// full queue refuses immediately with ErrBackpressure instead of
// queueing the caller behind capacity the pool does not have.
func (p *Pool[M]) TrySubmit(req Request[M]) error {
	return p.trySubmit(balanced, item[M]{req: req})
}

// SubmitTo places a request on worker w's queue pinned to its machine:
// only that worker executes it, so simulated placement is decided by
// the caller's balancing policy, not by host scheduling. Capacity
// measurements use this; wall-clock workloads use Submit and let idle
// workers steal.
func (p *Pool[M]) SubmitTo(w int, req Request[M]) error {
	return p.submit(context.Background(), w, item[M]{req: req, pinned: true})
}

// TrySubmitTo is the non-blocking SubmitTo: pinned placement with
// ErrBackpressure instead of blocking at the bound.
func (p *Pool[M]) TrySubmitTo(w int, req Request[M]) error {
	return p.trySubmit(w, item[M]{req: req, pinned: true})
}

// balanced marks a submission with no pinned worker: the target is
// picked round-robin over live workers at enqueue time, so a worker
// retiring while a submitter waits for space never receives new work.
const balanced = -1

// targetLocked resolves a submission target. Caller holds p.mu.
func (p *Pool[M]) targetLocked(w int) (int, error) {
	if w == balanced {
		for {
			t := p.next % len(p.queues)
			p.next++
			if !p.retired[t] {
				return t, nil
			}
		}
	}
	if w < 0 || w >= len(p.machines) {
		return 0, fmt.Errorf("fleet: no worker %d", w)
	}
	if p.retired[w] {
		return 0, fmt.Errorf("fleet: worker %d retired", w)
	}
	return w, nil
}

func (p *Pool[M]) submit(ctx context.Context, w int, it item[M]) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.Done() != nil {
		// Wake the cond loop when the context fires; Wait cannot
		// select on a channel, so the watcher broadcasts instead.
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.space.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	for p.inflight >= p.bound && !p.closing && ctx.Err() == nil {
		p.space.Wait()
	}
	if p.closing {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t, err := p.targetLocked(w)
	if err != nil {
		return err
	}
	p.enqueueLocked(t, it)
	return nil
}

func (p *Pool[M]) trySubmit(w int, it item[M]) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closing {
		return ErrClosed
	}
	if p.inflight >= p.bound {
		return ErrBackpressure
	}
	t, err := p.targetLocked(w)
	if err != nil {
		return err
	}
	p.enqueueLocked(t, it)
	return nil
}

func (p *Pool[M]) enqueueLocked(w int, it item[M]) {
	p.queues[w].push(it)
	p.inflight++
	if n := p.queues[w].len(); n > p.stats[w].QueueHighWater {
		p.stats[w].QueueHighWater = n
	}
	if n := p.queues[w].len(); n > p.runs[w].highWater {
		p.runs[w].highWater = n
	}
	// Broadcast, not Signal: a pinned item must wake its owner, and
	// Signal could wake only a worker that cannot take it.
	p.work.Broadcast()
}

// take returns the next request for worker w: its own queue first
// (FIFO), then a steal of the newest stealable item from the most
// loaded other queue that has one. It blocks while no eligible work
// exists and reports false once the pool is closing and no work
// remains for this worker (so every accepted request is executed).
func (p *Pool[M]) take(w int) (Request[M], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.queues[w].len() > 0 {
			return p.queues[w].popFront().req, true
		}
		if p.retired[w] {
			// Queue drained: the retiring worker leaves without
			// stealing (its machine is about to be handed back).
			return nil, false
		}
		victim, at, depth := -1, -1, 0
		for v := range p.queues {
			q := &p.queues[v]
			if v == w || q.len() <= depth {
				continue
			}
			for i := q.len() - 1; i >= 0; i-- {
				if !q.at(i).pinned {
					victim, at, depth = v, i, q.len()
					break
				}
			}
		}
		if victim >= 0 {
			req := p.queues[victim].removeAt(at).req
			p.stats[w].Steals++
			return req, true
		}
		if p.closing {
			return nil, false
		}
		p.work.Wait()
	}
}

// run is the worker loop: it exclusively owns machine m (worker w).
// The machine is passed in rather than re-read from p.machines so the
// loop never touches the slice header AddMachine may be growing.
func (p *Pool[M]) run(w int, m M) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		p.exited[w] = true
		p.gone.Broadcast()
		p.mu.Unlock()
	}()
	for {
		req, ok := p.take(w)
		if !ok {
			return
		}
		start := time.Now()
		before := m.SimCycles()
		err := req(w, m)
		end := time.Now()
		after := m.SimCycles()

		p.mu.Lock()
		st := &p.stats[w]
		st.Requests++
		st.Busy += end.Sub(start)
		st.SimCycles += after - before
		rt := &p.runs[w]
		if rt.served == 0 {
			rt.spanStart, rt.firstWall = before, start
		}
		rt.spanEnd, rt.lastWall = after, end
		rt.served++
		if err != nil {
			st.Errors++
			if p.firstErr == nil {
				p.firstErr = err
			}
		}
		p.inflight--
		if p.inflight == 0 {
			p.idle.Broadcast()
		}
		p.space.Signal()
		p.mu.Unlock()
	}
}

// Drain blocks until every accepted request has finished. The pool
// stays open for further submissions.
func (p *Pool[M]) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.inflight > 0 {
		p.idle.Wait()
	}
}

// Stats snapshots per-worker and aggregate counters. All counters are
// totals since boot; measurement code that needs per-run values uses
// BeginRun/Run.Stats instead of diffing two cumulative snapshots
// (which cannot recover a per-run queue high water or serving span).
func (p *Pool[M]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked()
}

func (p *Pool[M]) statsLocked() Stats {
	s := Stats{Workers: append([]WorkerStats(nil), p.stats...)}
	s.aggregate()
	return s
}

// Run scopes one measurement run: Stats reports deltas since the
// BeginRun that created it, not pool-lifetime totals.
type Run[M Machine] struct {
	p     *Pool[M]
	epoch uint64
	base  []WorkerStats
}

// BeginRun starts a new measurement run: it snapshots the cumulative
// counters and resets the pool's per-run tracking (queue high water,
// per-worker serving spans). Only one run is tracked at a time — a
// later BeginRun ends span/high-water tracking for earlier handles —
// and runs are expected to begin while the pool is quiescent (after
// Drain), as the measurement harnesses do.
func (p *Pool[M]) BeginRun() *Run[M] {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	for w := range p.runs {
		// Anything already queued counts toward this run's high water.
		p.runs[w] = runTrack{highWater: p.queues[w].len()}
	}
	return &Run[M]{p: p, epoch: p.epoch, base: append([]WorkerStats(nil), p.stats...)}
}

// Stats reports per-run deltas: requests, errors, steals, simulated
// cycles and busy time since BeginRun, the run's queue high water, and
// each worker's serving span from just before its first served request
// to just after its last (SpanCycles/SpanSeconds). Workers added after
// BeginRun (autoscaling) report their full counters, since their base
// is zero. If a newer BeginRun has superseded this run, the counter
// deltas remain correct but spans and high-water marks are zeroed
// rather than silently reporting the newer run's tracking.
func (r *Run[M]) Stats() Stats {
	p := r.p
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{Workers: make([]WorkerStats, len(p.stats))}
	for w := range p.stats {
		ws := p.stats[w]
		if w < len(r.base) {
			b := r.base[w]
			ws.Requests -= b.Requests
			ws.Errors -= b.Errors
			ws.Steals -= b.Steals
			ws.SimCycles -= b.SimCycles
			ws.Busy -= b.Busy
		}
		ws.QueueHighWater = 0
		if r.epoch == p.epoch {
			rt := p.runs[w]
			ws.QueueHighWater = rt.highWater
			if rt.served > 0 {
				ws.SpanCycles = rt.spanEnd - rt.spanStart
				ws.SpanSeconds = rt.lastWall.Sub(rt.firstWall).Seconds()
			}
		}
		s.Workers[w] = ws
	}
	s.aggregate()
	return s
}

// Machine returns worker w's machine. It is only safe to touch the
// machine while no requests are in flight (after Drain or Close); the
// caller is reaching into a worker's private state.
func (p *Pool[M]) Machine(w int) M {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machines[w]
}

// Close executes every already-accepted request, stops the workers,
// and returns the final statistics plus the first request error
// observed (if any). Submissions racing with Close either complete or
// return ErrClosed; accepted ones are never dropped, and submitters
// blocked on a full queue are woken with ErrClosed.
func (p *Pool[M]) Close() (Stats, error) {
	p.mu.Lock()
	if !p.closing {
		p.closing = true
		p.work.Broadcast()
		p.space.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked(), p.firstErr
}
