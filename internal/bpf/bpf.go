// Package bpf implements the interpreted packet-filter baseline of
// Figure 7: a Berkeley-Packet-Filter-style virtual machine in the
// spirit of McCanne & Jacobson, with an accumulator, an index
// register, packet loads, conditional jumps and return instructions.
//
// The kernel interprets filter programs submitted by applications
// (the paper's Section 2.1 "interpretation" approach); every virtual
// instruction pays a dispatch cost plus an operation cost, which is
// what makes interpretation overhead grow with the number of filter
// terms. A separate compiler (compile.go) translates the same
// programs to native code for Palladium's compiled in-kernel filter.
package bpf

import (
	"errors"
	"fmt"

	"repro/internal/cycles"
)

// ErrRunaway reports that an interpreted program exceeded the
// interpreter's step budget. Validated programs cannot trigger it
// (all jumps are forward), so it only fires for programs run without
// validation; sandbox adapters classify it as a time-limit overrun.
var ErrRunaway = errors.New("bpf: runaway program")

// Op is a BPF virtual-machine opcode.
type Op uint8

const (
	// LdAbsB loads the packet byte at absolute offset K into A.
	LdAbsB Op = iota
	// LdAbsH loads a 16-bit big-endian half-word at K.
	LdAbsH
	// LdAbsW loads a 32-bit big-endian word at K.
	LdAbsW
	// LdImm loads the constant K into A.
	LdImm
	// LdLen loads the packet length into A.
	LdLen
	// AddK, SubK, AndK, OrK, RshK, LshK are ALU ops A = A op K.
	AddK
	SubK
	AndK
	OrK
	RshK
	LshK
	// JEq jumps Jt if A == K else Jf.
	JEq
	// JGt jumps Jt if A > K else Jf.
	JGt
	// JGe jumps Jt if A >= K else Jf.
	JGe
	// JSet jumps Jt if A & K != 0 else Jf.
	JSet
	// Ja jumps unconditionally forward by K.
	Ja
	// RetK returns the constant K (0 = reject, nonzero = accept).
	RetK
	// RetA returns the accumulator.
	RetA
	numOps
)

var opNames = [...]string{
	LdAbsB: "ldb", LdAbsH: "ldh", LdAbsW: "ldw", LdImm: "ld",
	LdLen: "ldlen", AddK: "add", SubK: "sub", AndK: "and", OrK: "or",
	RshK: "rsh", LshK: "lsh", JEq: "jeq", JGt: "jgt", JGe: "jge",
	JSet: "jset", Ja: "ja", RetK: "ret", RetA: "reta",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("bpfop(%d)", uint8(o))
}

// Instr is one BPF virtual instruction.
type Instr struct {
	Op     Op
	K      uint32
	Jt, Jf uint8 // forward jump offsets for conditionals
}

// Program is a BPF filter program.
type Program []Instr

// InterpCosts prices the interpreter's work, calibrated so that the
// Figure-7 BPF curve starts near 200 cycles at zero terms and grows by
// roughly 180 cycles per conjunction term on the measured model.
type InterpCosts struct {
	// Invoke is the fixed cost of entering the in-kernel filter
	// function (call, setup, bounds preamble).
	Invoke float64
	// Dispatch is the per-instruction fetch/decode/switch cost.
	Dispatch float64
	// PacketLoad adds the bounds-checked packet access cost.
	PacketLoad float64
	// Branch adds the conditional-jump evaluation cost.
	Branch float64
	// ALU adds the arithmetic cost.
	ALU float64
	// Ret adds the return path cost.
	Ret float64
}

// DefaultInterpCosts returns the calibrated interpreter cost sheet.
func DefaultInterpCosts() InterpCosts {
	return InterpCosts{Invoke: 150, Dispatch: 40, PacketLoad: 45, Branch: 45, ALU: 25, Ret: 20}
}

// Interp is the in-kernel BPF interpreter.
type Interp struct {
	Clock *cycles.Clock
	Costs InterpCosts
}

// NewInterp returns an interpreter charging the given clock.
func NewInterp(clock *cycles.Clock) *Interp {
	return &Interp{Clock: clock, Costs: DefaultInterpCosts()}
}

// Run interprets the program over a packet and returns the filter
// verdict (0 = reject). Programs must have been validated.
func (in *Interp) Run(p Program, pkt []byte) (uint32, error) {
	in.Clock.Add(in.Costs.Invoke)
	var a uint32
	pc := 0
	steps := 0
	for {
		if pc < 0 || pc >= len(p) {
			return 0, fmt.Errorf("bpf: pc out of bounds (%d)", pc)
		}
		if steps++; steps > 10_000 {
			return 0, ErrRunaway
		}
		ins := p[pc]
		in.Clock.Add(in.Costs.Dispatch)
		switch ins.Op {
		case LdAbsB:
			in.Clock.Add(in.Costs.PacketLoad)
			if int(ins.K) >= len(pkt) {
				return 0, nil // out-of-range load rejects, as in BPF
			}
			a = uint32(pkt[ins.K])
		case LdAbsH:
			in.Clock.Add(in.Costs.PacketLoad)
			if int(ins.K)+1 >= len(pkt) {
				return 0, nil
			}
			a = uint32(pkt[ins.K])<<8 | uint32(pkt[ins.K+1])
		case LdAbsW:
			in.Clock.Add(in.Costs.PacketLoad)
			if int(ins.K)+3 >= len(pkt) {
				return 0, nil
			}
			a = uint32(pkt[ins.K])<<24 | uint32(pkt[ins.K+1])<<16 |
				uint32(pkt[ins.K+2])<<8 | uint32(pkt[ins.K+3])
		case LdImm:
			a = ins.K
		case LdLen:
			a = uint32(len(pkt))
		case AddK:
			in.Clock.Add(in.Costs.ALU)
			a += ins.K
		case SubK:
			in.Clock.Add(in.Costs.ALU)
			a -= ins.K
		case AndK:
			in.Clock.Add(in.Costs.ALU)
			a &= ins.K
		case OrK:
			in.Clock.Add(in.Costs.ALU)
			a |= ins.K
		case RshK:
			in.Clock.Add(in.Costs.ALU)
			a >>= ins.K & 31
		case LshK:
			in.Clock.Add(in.Costs.ALU)
			a <<= ins.K & 31
		case JEq, JGt, JGe, JSet:
			in.Clock.Add(in.Costs.Branch)
			var cond bool
			switch ins.Op {
			case JEq:
				cond = a == ins.K
			case JGt:
				cond = a > ins.K
			case JGe:
				cond = a >= ins.K
			case JSet:
				cond = a&ins.K != 0
			}
			if cond {
				pc += 1 + int(ins.Jt)
			} else {
				pc += 1 + int(ins.Jf)
			}
			continue
		case Ja:
			pc += 1 + int(ins.K)
			continue
		case RetK:
			in.Clock.Add(in.Costs.Ret)
			return ins.K, nil
		case RetA:
			in.Clock.Add(in.Costs.Ret)
			return a, nil
		default:
			return 0, fmt.Errorf("bpf: unimplemented op %v", ins.Op)
		}
		pc++
	}
}

// Term is one conjunct of a filter rule: packet byte/half/word at
// Offset compared for equality with Value.
type Term struct {
	Offset uint32
	Size   uint8 // 1, 2 or 4
	Value  uint32
}

// Conjunction builds the BPF program for "term1 && term2 && ... &&
// termN" — the workload of Figure 7. Zero terms yields the
// accept-everything filter.
func Conjunction(terms []Term) Program {
	var p Program
	n := len(terms)
	for i, t := range terms {
		var ld Op
		switch t.Size {
		case 1:
			ld = LdAbsB
		case 2:
			ld = LdAbsH
		default:
			ld = LdAbsW
		}
		p = append(p, Instr{Op: ld, K: t.Offset})
		// On mismatch jump to the reject return at the end; on match
		// fall through to the next term.
		remaining := uint8(2*(n-1-i)) + 1
		p = append(p, Instr{Op: JEq, K: t.Value, Jt: 0, Jf: remaining})
	}
	p = append(p, Instr{Op: RetK, K: 1}) // accept
	p = append(p, Instr{Op: RetK, K: 0}) // reject
	return p
}
