package bpf

import (
	"fmt"
	"strings"
)

// Compile translates a validated BPF program into assembly for the
// simulated ISA, producing the source of a Palladium kernel extension
// (Section 5.2's compiled packet filter): the generated function takes
// the packet length as its 4-byte argument, reads the packet bytes
// from the extension's shared data area (where the kernel places
// packet headers), and returns the filter verdict in EAX.
//
// Register allocation: EAX = accumulator A, ESI = packet base (the
// shared area), EDX = packet length, ECX = scratch.
func Compile(p Program, entryName, sharedSymbol string) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\t.global %s\n\t.text\n%s:\n", entryName, entryName)
	b.WriteString("\tpush esi\n")
	fmt.Fprintf(&b, "\tmov esi, %s\n", sharedSymbol)
	b.WriteString("\tmov edx, [esp+8]\n") // packet length (arg shifted by push)
	b.WriteString("\tmov eax, 0\n")

	label := func(i int) string { return fmt.Sprintf("L%d", i) }
	reject := "Lreject"

	for i, ins := range p {
		fmt.Fprintf(&b, "%s:\n", label(i))
		switch ins.Op {
		case LdAbsB:
			// Bounds check then load — the compiled filter keeps
			// BPF's memory safety; Palladium's segment/page checks
			// guard everything else.
			fmt.Fprintf(&b, "\tmov ecx, %d\n", ins.K)
			b.WriteString("\tcmp ecx, edx\n")
			fmt.Fprintf(&b, "\tjae %s\n", reject)
			fmt.Fprintf(&b, "\tmovb eax, [esi+%d]\n", ins.K)
		case LdAbsH:
			fmt.Fprintf(&b, "\tmov ecx, %d\n", ins.K+1)
			b.WriteString("\tcmp ecx, edx\n")
			fmt.Fprintf(&b, "\tjae %s\n", reject)
			fmt.Fprintf(&b, "\tmovb eax, [esi+%d]\n", ins.K)
			b.WriteString("\tshl eax, 8\n")
			fmt.Fprintf(&b, "\tmovb ecx, [esi+%d]\n", ins.K+1)
			b.WriteString("\tor eax, ecx\n")
		case LdAbsW:
			fmt.Fprintf(&b, "\tmov ecx, %d\n", ins.K+3)
			b.WriteString("\tcmp ecx, edx\n")
			fmt.Fprintf(&b, "\tjae %s\n", reject)
			b.WriteString("\tmov eax, 0\n")
			for o := uint32(0); o < 4; o++ {
				b.WriteString("\tshl eax, 8\n")
				fmt.Fprintf(&b, "\tmovb ecx, [esi+%d]\n", ins.K+o)
				b.WriteString("\tor eax, ecx\n")
			}
		case LdImm:
			fmt.Fprintf(&b, "\tmov eax, %d\n", int32(ins.K))
		case LdLen:
			b.WriteString("\tmov eax, edx\n")
		case AddK:
			fmt.Fprintf(&b, "\tadd eax, %d\n", int32(ins.K))
		case SubK:
			fmt.Fprintf(&b, "\tsub eax, %d\n", int32(ins.K))
		case AndK:
			fmt.Fprintf(&b, "\tand eax, %d\n", int32(ins.K))
		case OrK:
			fmt.Fprintf(&b, "\tor eax, %d\n", int32(ins.K))
		case RshK:
			fmt.Fprintf(&b, "\tshr eax, %d\n", ins.K&31)
		case LshK:
			fmt.Fprintf(&b, "\tshl eax, %d\n", ins.K&31)
		case JEq, JGt, JGe, JSet:
			tgtT := label(i + 1 + int(ins.Jt))
			tgtF := label(i + 1 + int(ins.Jf))
			switch ins.Op {
			case JEq:
				fmt.Fprintf(&b, "\tcmp eax, %d\n\tje %s\n\tjmp %s\n", int32(ins.K), tgtT, tgtF)
			case JGt:
				fmt.Fprintf(&b, "\tcmp eax, %d\n\tja %s\n\tjmp %s\n", int32(ins.K), tgtT, tgtF)
			case JGe:
				fmt.Fprintf(&b, "\tcmp eax, %d\n\tjae %s\n\tjmp %s\n", int32(ins.K), tgtT, tgtF)
			case JSet:
				fmt.Fprintf(&b, "\ttest eax, %d\n\tjne %s\n\tjmp %s\n", int32(ins.K), tgtT, tgtF)
			}
			continue
		case Ja:
			fmt.Fprintf(&b, "\tjmp %s\n", label(i+1+int(ins.K)))
			continue
		case RetK:
			fmt.Fprintf(&b, "\tmov eax, %d\n\tpop esi\n\tret\n", int32(ins.K))
			continue
		case RetA:
			b.WriteString("\tpop esi\n\tret\n")
			continue
		default:
			return "", fmt.Errorf("bpf: cannot compile op %v", ins.Op)
		}
	}
	fmt.Fprintf(&b, "%s:\n\tmov eax, 0\n\tpop esi\n\tret\n", reject)
	return b.String(), nil
}
