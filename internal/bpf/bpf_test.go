package bpf

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cycles"
)

func pkt() []byte {
	// A synthetic 34-byte Ethernet+IP-ish header.
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(i * 7)
	}
	b[12], b[13] = 0x08, 0x00 // ethertype IPv4
	b[23] = 17                // protocol UDP
	return b
}

func run(t *testing.T, p Program, pk []byte) uint32 {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInterp(cycles.NewClock(200))
	v, err := in.Run(p, pk)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAcceptAll(t *testing.T) {
	if v := run(t, Program{{Op: RetK, K: 1}}, pkt()); v != 1 {
		t.Errorf("verdict = %d", v)
	}
}

func TestLoadsAndCompare(t *testing.T) {
	p := Program{
		{Op: LdAbsB, K: 23},
		{Op: JEq, K: 17, Jt: 0, Jf: 1},
		{Op: RetK, K: 1},
		{Op: RetK, K: 0},
	}
	if v := run(t, p, pkt()); v != 1 {
		t.Error("UDP packet should match")
	}
	b := pkt()
	b[23] = 6
	if v := run(t, p, b); v != 0 {
		t.Error("TCP packet should not match")
	}
}

func TestHalfAndWordLoads(t *testing.T) {
	p := Program{
		{Op: LdAbsH, K: 12},
		{Op: JEq, K: 0x0800, Jt: 0, Jf: 1},
		{Op: RetK, K: 1},
		{Op: RetK, K: 0},
	}
	if v := run(t, p, pkt()); v != 1 {
		t.Error("ethertype half-word match failed")
	}
	w := Program{{Op: LdAbsW, K: 0}, {Op: RetA}}
	want := uint32(pkt()[0])<<24 | uint32(pkt()[1])<<16 | uint32(pkt()[2])<<8 | uint32(pkt()[3])
	if v := run(t, w, pkt()); v != want {
		t.Errorf("word load = %#x, want %#x", v, want)
	}
}

func TestALUOps(t *testing.T) {
	p := Program{
		{Op: LdImm, K: 6},
		{Op: AddK, K: 4},
		{Op: SubK, K: 2},
		{Op: LshK, K: 2},
		{Op: RshK, K: 1},
		{Op: AndK, K: 0xFE},
		{Op: OrK, K: 1},
		{Op: RetA},
	}
	// ((6+4-2)<<2>>1)&0xFE|1 = 16&0xFE|1 = 17
	if v := run(t, p, pkt()); v != 17 {
		t.Errorf("alu chain = %d", v)
	}
}

func TestOutOfRangeLoadRejects(t *testing.T) {
	p := Program{{Op: LdAbsB, K: 1000}, {Op: RetK, K: 1}}
	if v := run(t, p, pkt()); v != 0 {
		t.Error("out-of-range load must reject")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want string
	}{
		{"empty", Program{}, "empty"},
		{"no return", Program{{Op: LdImm, K: 1}}, "does not end in a return"},
		{"jump oob", Program{{Op: JEq, Jt: 5, Jf: 5}, {Op: RetK}}, "out of bounds"},
		{"ja oob", Program{{Op: Ja, K: 9}, {Op: RetK}}, "out of bounds"},
		{"bad op", Program{{Op: numOps}, {Op: RetK}}, "unknown opcode"},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestConjunctionSemantics(t *testing.T) {
	terms := []Term{
		{Offset: 12, Size: 2, Value: 0x0800},
		{Offset: 23, Size: 1, Value: 17},
	}
	p := Conjunction(terms)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := run(t, p, pkt()); v != 1 {
		t.Error("both terms true must accept")
	}
	b := pkt()
	b[23] = 6
	if v := run(t, p, b); v != 0 {
		t.Error("second term false must reject")
	}
	b = pkt()
	b[12] = 0x86
	if v := run(t, p, b); v != 0 {
		t.Error("first term false must reject")
	}
	// Zero terms: accept everything.
	if v := run(t, Conjunction(nil), pkt()); v != 1 {
		t.Error("empty conjunction must accept")
	}
}

func TestInterpreterCostGrowsLinearly(t *testing.T) {
	// The Figure-7 property: interpretation cost grows roughly
	// linearly with the number of (all-true) terms.
	pk := pkt()
	cost := func(n int) float64 {
		terms := make([]Term, n)
		for i := range terms {
			terms[i] = Term{Offset: uint32(i), Size: 1, Value: uint32(pk[i])}
		}
		in := NewInterp(cycles.NewClock(200))
		if _, err := in.Run(Conjunction(terms), pk); err != nil {
			t.Fatal(err)
		}
		return in.Clock.Cycles()
	}
	c0, c1, c4 := cost(0), cost(1), cost(4)
	slope := (c4 - c0) / 4
	if slope < 120 || slope > 250 {
		t.Errorf("per-term cost = %v cycles, expected roughly 180", slope)
	}
	if got := c1 - c0; got != slope {
		t.Errorf("non-linear growth: first term %v vs average %v", got, slope)
	}
	if c0 < 150 || c0 > 300 {
		t.Errorf("zero-term cost = %v, expected near 210", c0)
	}
}

func TestRunawayProgramStopped(t *testing.T) {
	// Validate rejects backward jumps by construction (offsets are
	// unsigned forward), so a runaway needs a huge straight-line
	// program; the interpreter's step limit is a defence-in-depth
	// check exercised directly here.
	p := make(Program, 20000)
	for i := range p {
		p[i] = Instr{Op: LdImm, K: 1}
	}
	p[len(p)-1] = Instr{Op: RetK, K: 1}
	in := NewInterp(cycles.NewClock(200))
	if _, err := in.Run(p, pkt()); err == nil {
		t.Error("runaway program must be stopped")
	}
}

func TestConjunctionAlwaysValidatesProperty(t *testing.T) {
	f := func(n uint8, seed uint8) bool {
		terms := make([]Term, int(n)%12)
		for i := range terms {
			terms[i] = Term{Offset: uint32(seed) + uint32(i), Size: []uint8{1, 2, 4}[i%3], Value: uint32(i)}
		}
		return Conjunction(terms).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpMatchesDirectEvaluationProperty(t *testing.T) {
	// Property: the interpreter's verdict on a random conjunction
	// equals direct Go evaluation of the same terms.
	pk := pkt()
	f := func(offs [3]uint8, vals [3]uint8, nTerms uint8) bool {
		n := int(nTerms) % 4
		terms := make([]Term, n)
		expect := uint32(1)
		for i := 0; i < n; i++ {
			off := uint32(offs[i]) % 60
			terms[i] = Term{Offset: off, Size: 1, Value: uint32(vals[i])}
			if uint32(pk[off]) != uint32(vals[i]) {
				expect = 0
			}
		}
		in := NewInterp(cycles.NewClock(200))
		got, err := in.Run(Conjunction(terms), pk)
		return err == nil && got == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if LdAbsB.String() != "ldb" || RetK.String() != "ret" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op must format")
	}
}
