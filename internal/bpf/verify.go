package bpf

import (
	"fmt"

	"repro/internal/verify"
)

// Verify runs the classic BPF safety check — known opcodes, forward
// in-bounds jumps, every path ending in a return — and reports the
// result through the same structured verify.Report the ISA verifier
// produces, so every load-time gate in the sandbox layer speaks one
// report type. Accepted programs are Clean: the virtual machine has no
// addressable state beyond the bounds-checked packet, and forward-only
// jumps bound execution by the program length.
func (p Program) Verify() *verify.Report {
	rep := &verify.Report{
		Object:  "bpf-filter",
		Backend: "bpf",
		Status:  verify.Clean,
		Entries: []string{"filter"},
	}
	reject := func(idx int, instr, format string, args ...any) {
		rep.Status = verify.Rejected
		rep.Violations = append(rep.Violations, verify.Finding{
			Index: idx, Instr: instr, Reason: fmt.Sprintf(format, args...),
		})
	}
	if len(p) == 0 {
		reject(-1, "", "empty program")
		return rep
	}
	for i, ins := range p {
		if ins.Op >= numOps {
			reject(i, fmt.Sprintf("op(%d)", uint8(ins.Op)), "unknown opcode %d", ins.Op)
			continue
		}
		switch ins.Op {
		case JEq, JGt, JGe, JSet:
			if i+1+int(ins.Jt) >= len(p) || i+1+int(ins.Jf) >= len(p) {
				reject(i, ins.Op.String(), "jump out of bounds")
			} else {
				rep.Proven++
			}
		case Ja:
			if i+1+int(ins.K) >= len(p) {
				reject(i, ins.Op.String(), "jump out of bounds")
			} else {
				rep.Proven++
			}
		case LdAbsB, LdAbsH, LdAbsW:
			// Packet loads are bounds-checked by the interpreter (and
			// the compiled filter's preamble) against the live packet
			// length; nothing else is addressable.
			rep.Proven++
		}
	}
	// Program-level finding last, mirroring Validate's historical
	// check order (instruction errors take precedence).
	if last := p[len(p)-1]; last.Op != RetK && last.Op != RetA {
		reject(-1, last.Op.String(), "program does not end in a return")
	}
	if rep.Status == verify.Clean {
		rep.Bounded = true
		rep.MaxSteps = uint64(len(p))
	}
	return rep
}

// Validate performs the classic BPF safety check: all jumps are
// forward and in bounds, every path ends in a return, and opcodes are
// known. This is the entire protection story of the interpretation
// approach — its strength is exactly the interpreter's correctness.
// It is Verify flattened to the historical error strings.
func (p Program) Validate() error {
	rep := p.Verify()
	if rep.Accepted() {
		return nil
	}
	f := rep.Violations[0]
	if f.Index < 0 {
		return fmt.Errorf("bpf: %s", f.Reason)
	}
	return fmt.Errorf("bpf: instruction %d: %s", f.Index, f.Reason)
}
