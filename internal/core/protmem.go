package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// ProtectedRegion is the protected memory service sketched in the
// paper's Section 6 ("we are building a protected memory service that
// uses segmentation to prevent wild pointers or random software errors
// from corrupting specific physical memory regions"): a kernel memory
// region reachable only through a dedicated data segment whose base
// and limit exactly bound it. Accidental accesses with out-of-bounds
// offsets — wild pointers, buffer overruns — trip the segment limit
// check instead of silently corrupting neighbouring kernel memory.
//
// Every guarded access pays the segment-register reload (12 cycles
// measured), which is the service's entire per-access overhead: the
// deliberate trade the paper's segmentation approach makes everywhere.
type ProtectedRegion struct {
	S    *System
	Name string
	Base uint32 // linear base
	Size uint32
	Sel  mmu.Selector // dedicated data segment, DPL 0
}

// NewProtectedRegion allocates size bytes (page-rounded) of kernel
// memory behind a dedicated exact-limit segment.
func (s *System) NewProtectedRegion(name string, size uint32) (*ProtectedRegion, error) {
	size = (size + mem.PageMask) &^ uint32(mem.PageMask)
	if size == 0 {
		return nil, fmt.Errorf("palladium: protected region %q: zero size", name)
	}
	lin, err := s.K.KernelAlloc(size, mem.PageSize)
	if err != nil {
		return nil, err
	}
	idx, err := s.K.AllocGateIndex()
	if err != nil {
		return nil, err
	}
	s.K.MMU.GDT.Set(idx, mmu.Descriptor{
		Kind: mmu.SegData, Base: lin, Limit: size - 1, DPL: 0,
		Present: true, Writable: true,
	})
	return &ProtectedRegion{
		S: s, Name: name, Base: lin, Size: size,
		Sel: mmu.MakeSelector(idx, false, 0),
	}, nil
}

// access performs one bounds-checked access through the dedicated
// segment. It returns the mmu fault (not a Go error) so callers can
// distinguish protection trips from other failures.
func (r *ProtectedRegion) access(off, n uint32, acc mmu.Access) (uint32, *mmu.Fault) {
	var seg mmu.Selector
	if f := r.S.K.Machine.LoadSegReg(&seg, r.Sel); f != nil {
		return 0, f
	}
	return r.S.K.MMU.Translate(seg, off, n, acc, 0)
}

// Write stores b at the given offset; a write that would stray past
// the region's limit faults with #GP before touching anything.
func (r *ProtectedRegion) Write(off uint32, b []byte) *mmu.Fault {
	if _, f := r.access(off, uint32(len(b)), mmu.Write); f != nil {
		return f
	}
	r.S.K.Clock.Add(r.S.K.Costs.CopyPerByte * float64(len(b)))
	for i, v := range b {
		pa, f := r.S.K.MMU.Translate(r.Sel, off+uint32(i), 1, mmu.Write, 0)
		if f != nil {
			return f
		}
		r.S.K.Phys.Write8(pa, v)
	}
	return nil
}

// Read loads n bytes at the given offset under the same bounds check.
func (r *ProtectedRegion) Read(off, n uint32) ([]byte, *mmu.Fault) {
	if _, f := r.access(off, n, mmu.Read); f != nil {
		return nil, f
	}
	r.S.K.Clock.Add(r.S.K.Costs.CopyPerByte * float64(n))
	out := make([]byte, n)
	for i := range out {
		pa, f := r.S.K.MMU.Translate(r.Sel, off+uint32(i), 1, mmu.Read, 0)
		if f != nil {
			return nil, f
		}
		out[i] = r.S.K.Phys.Read8(pa)
	}
	return out, nil
}

// AccessOverhead reports the per-access cost of the service: the
// segment-register reload under the active model.
func (r *ProtectedRegion) AccessOverhead() float64 {
	return r.S.K.Model.Cost(cycles.SegRegLoad)
}
