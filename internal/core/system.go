// Package core implements Palladium, the paper's primary contribution:
// an intra-address-space protection mechanism built on the x86
// segmentation and paging hardware.
//
// Two mechanisms are provided, as in Section 4:
//
//   - Kernel-level extensions (segment-level protection): untrusted
//     modules are insmod'ed into dedicated extension segments at SPL 1
//     carved out of the kernel's 3-4 GB range; the segment limit check
//     confines them, and a general-protection fault aborts offenders.
//
//   - User-level extensions (combined paging + segmentation
//     protection): an extensible application promotes itself to SPL 2
//     with init_PL, which demotes its writable pages to PPL 0.
//     Extensions run at SPL 3 over the *same* 0-3 GB range, so pointers
//     need no swizzling, but the page-privilege check walls them off
//     from everything the application has not exposed via set_range.
//
// Control transfers follow Figure 6 exactly: a logical downhill call is
// two intra-domain calls plus an inter-domain lret; a logical uphill
// return is two intra-domain rets plus an inter-domain lcall through a
// call gate.
package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/kernel"
)

// System is a booted Palladium machine: the mini-kernel plus the
// registries for kernel extension segments.
type System struct {
	K *kernel.Kernel

	segs    []*ExtSegment
	nextSeg uint32

	// EFT is the kernel's Extension Function Table (Section 4.3):
	// extension service entry points registered at insmod time.
	eft map[string]*KernelExtensionFunc

	// retGate / retSvc: the call gate and trusted endpoint through
	// which kernel extensions return to the kernel.
	kernRetGate uint16
	kernPrep    *stubArena

	// ktRanges tracks kernel-text allocations handed to loader spaces
	// so FreeRange can recycle them (the kernel heap only grows).
	ktRanges *rangeList
}

// NewSystem boots a Palladium system under the given cost model
// (cycles.Measured() or cycles.Manual()).
func NewSystem(model *cycles.Model) (*System, error) {
	k, err := kernel.New(model)
	if err != nil {
		return nil, err
	}
	s := &System{
		K:        k,
		nextSeg:  kernel.ExtSegBase,
		eft:      make(map[string]*KernelExtensionFunc),
		ktRanges: newRangeList(),
	}
	if err := s.initKernelMechanism(); err != nil {
		return nil, err
	}
	return s, nil
}

// Clock returns the shared simulated clock.
func (s *System) Clock() *cycles.Clock { return s.K.Clock }

// ExtensionFunction looks up an entry in the Extension Function Table.
func (s *System) ExtensionFunction(name string) (*KernelExtensionFunc, bool) {
	f, ok := s.eft[name]
	return f, ok
}

// ExtensionFunctions lists registered kernel extension entry points.
func (s *System) ExtensionFunctions() []string {
	out := make([]string, 0, len(s.eft))
	for n := range s.eft {
		out = append(out, n)
	}
	return out
}

func (s *System) allocSegRange(size uint32) (uint32, error) {
	base := s.nextSeg
	if base+size < base || base+size > 0xF000_0000 {
		return 0, fmt.Errorf("palladium: kernel extension address space exhausted")
	}
	s.nextSeg += size + 0x0100_0000 // 16 MB guard gap between segments
	return base, nil
}
