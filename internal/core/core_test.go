package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newApp(t *testing.T, s *System) *App {
	t.Helper()
	a, err := NewApp(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InitPL(); err != nil {
		t.Fatal(err)
	}
	return a
}

func mustOpen(t *testing.T, a *App, src string) int {
	t.Helper()
	h, err := a.SegDlopen(isa.MustAssemble("ext", src))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustSym(t *testing.T, a *App, h int, name string) *ProtectedFunc {
	t.Helper()
	pf, err := a.SegDlsym(h, name)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

const incSrc = `
	.global inc
	.text
	inc:
		mov eax, [esp+4]
		inc eax
		ret
`

func TestProtectedCallEndToEnd(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, incSrc)
	pf := mustSym(t, a, h, "inc")
	got, err := pf.Call(41)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("inc(41) = %d", got)
	}
	// Repeated calls work (stubs and stacks are reusable).
	for i := uint32(0); i < 5; i++ {
		if got, err := pf.Call(i); err != nil || got != i+1 {
			t.Fatalf("call %d: %d, %v", i, got, err)
		}
	}
}

func TestTable1PhasesProtected(t *testing.T) {
	// The headline result: a protected procedure call and return
	// costs 142 cycles, decomposed 26 + 34 + 75 + 7 (Table 1).
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global nullfn
		.text
		nullfn: ret
	`)
	pf := mustSym(t, a, h, "nullfn")
	ph, err := MeasureProtectedCall(pf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Setup != 26 {
		t.Errorf("setting up stack = %v cycles, paper 26", ph.Setup)
	}
	if ph.Call != 34 {
		t.Errorf("calling function = %v cycles, paper 34", ph.Call)
	}
	if ph.Return != 75 {
		t.Errorf("returning to caller = %v cycles, paper 75", ph.Return)
	}
	if ph.Restore != 7 {
		t.Errorf("restoring state = %v cycles, paper 7", ph.Restore)
	}
	if ph.Total() != 142 {
		t.Errorf("total = %v cycles, paper 142", ph.Total())
	}
}

func TestTable1PhasesIntra(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global nullfn
		.text
		nullfn: ret
	`)
	addr, err := a.Dlsym(h, "nullfn")
	if err != nil {
		t.Fatal(err)
	}
	ph, err := MeasureUnprotectedCall(a, addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Setup != 2 || ph.Call != 3 || ph.Return != 3 || ph.Restore != 2 {
		t.Errorf("intra phases = %v, paper 2/3/3/2", ph)
	}
	if ph.Total() != 10 {
		t.Errorf("intra total = %v, paper 10", ph.Total())
	}
}

func TestTable1ManualModel(t *testing.T) {
	// The "Hardware" column: same instruction sequence priced with
	// the architecture-manual model; the paper quotes lcall=44 there.
	s, err := NewSystem(cycles.Manual())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewApp(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InitPL(); err != nil {
		t.Fatal(err)
	}
	h := mustOpen(t, a, `
		.global nullfn
		.text
		nullfn: ret
	`)
	pf := mustSym(t, a, h, "nullfn")
	ph, err := MeasureProtectedCall(pf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Return != 44 {
		t.Errorf("manual-model lcall = %v, paper 44", ph.Return)
	}
	if ph.Total() >= 142 {
		t.Errorf("manual-model total = %v, must be below the measured 142", ph.Total())
	}
}

func TestExtensionCallsLibcDirectly(t *testing.T) {
	// Non-buffering libc routines are called through the PLT without
	// any domain crossing (Section 4.4.1).
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global lenof
		.text
		lenof:
			push [esp+4]
			call strlen
			add esp, 4
			ret
	`)
	pf := mustSym(t, a, h, "lenof")
	str, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteString(str, "palladium"); err != nil {
		t.Fatal(err)
	}
	got, err := pf.Call(str)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("strlen via extension = %d", got)
	}
}

func TestExtensionCannotReadHiddenAppData(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	// An app-private (PPL 0) page holding a secret.
	secret, err := a.P.Mmap(s.K, 0, mem.PageSize, true, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteString(secret, "s3cret"); err != nil {
		t.Fatal(err)
	}
	h := mustOpen(t, a, `
		.global snoop
		.text
		snoop:
			mov eax, [esp+4]
			mov eax, [eax]      ; read the secret
			ret
	`)
	pf := mustSym(t, a, h, "snoop")
	var sig *kernel.SignalInfo
	a.P.SignalHandler = func(si kernel.SignalInfo) { sig = &si }
	_, err = pf.Call(secret)
	if !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("err = %v, want ErrExtensionFault", err)
	}
	if sig == nil || sig.Sig != kernel.SIGSEGV {
		t.Fatal("application did not receive SIGSEGV")
	}
	// The application survives and can keep invoking extensions.
	h2 := mustOpen(t, a, incSrc)
	pf2 := mustSym(t, a, h2, "inc")
	if got, err := pf2.Call(1); err != nil || got != 2 {
		t.Errorf("post-fault call = %d, %v", got, err)
	}
}

func TestExtensionCannotWriteAppData(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	target, _ := a.P.Mmap(s.K, 0, mem.PageSize, true, "target")
	a.WriteString(target, "intact")
	h := mustOpen(t, a, `
		.global smash
		.text
		smash:
			mov eax, [esp+4]
			mov [eax], 0
			ret
	`)
	pf := mustSym(t, a, h, "smash")
	if _, err := pf.Call(target); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("err = %v", err)
	}
	got, _ := a.ReadString(target, 16)
	if got != "intact" {
		t.Errorf("app data corrupted: %q", got)
	}
}

func TestExtensionCannotJumpIntoKernel(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global escape
		.text
		escape:
			jmp 0xC0000000   ; beyond the user segment limit
	`)
	pf := mustSym(t, a, h, "escape")
	if _, err := pf.Call(0); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("err = %v, want ErrExtensionFault (segment limit)", err)
	}
}

func TestExtensionCannotCallBufferingLibc(t *testing.T) {
	// bufput keeps its buffer in libc's PPL-0 data: a direct call
	// from SPL 3 faults on the buffer write — the fprintf scenario of
	// Section 4.4.1.
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global tryprint
		.text
		tryprint:
			push [esp+4]
			call bufput
			add esp, 4
			ret
	`)
	pf := mustSym(t, a, h, "tryprint")
	if _, err := pf.Call('x'); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("err = %v, want fault on libc internal buffer", err)
	}
}

func TestApplicationServiceCallGate(t *testing.T) {
	// The application wraps the buffering routine as an application
	// service; the extension reaches it through a call gate.
	s := newSystem(t)
	a := newApp(t, s)
	var collected []byte
	if err := a.ExposeService("svc_putc", func(arg uint32) uint32 {
		collected = append(collected, byte(arg))
		return uint32(len(collected))
	}); err != nil {
		t.Fatal(err)
	}
	h := mustOpen(t, a, `
		.global puts3
		.text
		puts3:
			mov eax, [esp+4]
			push eax
			lcall svc_putc
			pop ecx
			inc eax           ; count returned by the service
			push 'b'
			lcall svc_putc
			pop ecx
			push 'c'
			lcall svc_putc
			pop ecx
			ret
	`)
	pf := mustSym(t, a, h, "puts3")
	got, err := pf.Call('a')
	if err != nil {
		t.Fatal(err)
	}
	if string(collected) != "abc" {
		t.Errorf("service collected %q", collected)
	}
	if got != 3 {
		t.Errorf("final service result = %d", got)
	}
}

func TestSharedDataArea(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	shared, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SharedAlloc(100); err == nil {
		t.Error("non-page-multiple shared area must be rejected")
	}
	a.WriteString(shared, "abc")
	h := mustOpen(t, a, `
		.global upcase
		.text
		upcase:                  ; uppercase a 3-char string in place
			mov eax, [esp+4]
			mov ecx, 3
		loop:
			movb edx, [eax]
			sub edx, 32
			movb [eax], edx
			inc eax
			dec ecx
			jne loop
			mov eax, [esp+4]
			ret
	`)
	pf := mustSym(t, a, h, "upcase")
	if _, err := pf.Call(shared); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadString(shared, 8)
	if got != "ABC" {
		t.Errorf("shared after extension = %q", got)
	}
}

func TestExtensionDirectSyscallRejected(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global trysys
		.text
		trysys:
			mov eax, 20       ; getpid
			int 0x80
			ret
	`)
	pf := mustSym(t, a, h, "trysys")
	got, err := pf.Call(0)
	if err != nil {
		t.Fatal(err)
	}
	if int32(got) != -kernel.EPERM {
		t.Errorf("direct syscall from extension = %d, want -EPERM", int32(got))
	}
}

func TestExtensionTimeLimit(t *testing.T) {
	s := newSystem(t)
	s.K.ExtTimeLimit = 100_000
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global spin
		.text
		spin: jmp spin
	`)
	pf := mustSym(t, a, h, "spin")
	var sig *kernel.SignalInfo
	a.P.SignalHandler = func(si kernel.SignalInfo) { sig = &si }
	if _, err := pf.Call(0); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if sig == nil || sig.Sig != kernel.SIGXCPU {
		t.Error("application did not receive the time-limit signal")
	}
}

func TestLifecycleErrors(t *testing.T) {
	s := newSystem(t)
	a, err := NewApp(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SegDlopen(isa.MustAssemble("x", incSrc)); err == nil {
		t.Error("seg_dlopen before init_PL must fail")
	}
	if err := a.InitPL(); err != nil {
		t.Fatal(err)
	}
	if err := a.InitPL(); err == nil {
		t.Error("double init_PL must fail")
	}
	h := mustOpen(t, a, incSrc)
	if _, err := a.SegDlsym(h, "nosuch"); err == nil {
		t.Error("seg_dlsym of missing symbol must fail")
	}
	if err := a.SegDlclose(h); err != nil {
		t.Error(err)
	}
}

func TestSegDlopenCostSlightlyAboveDlopen(t *testing.T) {
	// Paper 5.1: dlopen 400 us, seg_dlopen 420 us.
	s := newSystem(t)
	a := newApp(t, s)
	obj := isa.MustAssemble("null", `
		.global nullfn
		.text
		nullfn:
			push ebp
			mov ebp, esp
			pop ebp
			ret
	`)
	before := s.Clock().Cycles()
	if _, err := a.SegDlopen(obj); err != nil {
		t.Fatal(err)
	}
	us := s.Clock().Micros(s.Clock().Cycles() - before)
	if us < 380 || us > 480 {
		t.Errorf("seg_dlopen = %.1f us, paper reports ~420 us", us)
	}
}

// --- kernel-level mechanism ---

const kfilterSrc = `
	.global ksum
	.text
	ksum:                      ; sum bytes in the shared area
		mov eax, [esp+4]       ; count
		mov ecx, shared_area
		mov edx, 0
	loop:
		cmp eax, 0
		je done
		movb ebx, [ecx]
		add edx, ebx
		inc ecx
		dec eax
		jmp loop
	done:
		mov eax, edx
		ret
	.data
	.global shared_area
	shared_area: .space 64
`

func TestKernelExtensionEndToEnd(t *testing.T) {
	s := newSystem(t)
	if _, err := s.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	seg, err := s.NewExtSegment("filters", 0)
	if err != nil {
		t.Fatal(err)
	}
	im, err := s.Insmod(seg, isa.MustAssemble("kfilter", kfilterSrc))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.ExtensionFunction("ksum")
	if !ok {
		t.Fatalf("ksum not in EFT; have %v", s.ExtensionFunctions())
	}
	// Shared data area located by its well-known symbol.
	off, ok := im.Lookup("shared_area")
	if !ok {
		t.Fatal("shared_area symbol missing")
	}
	if err := s.WriteShared(seg, off, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	got, err := f.Invoke(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("ksum = %d, want 15", got)
	}
}

func TestKernelExtensionConfinedBySegmentLimit(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	seg, _ := s.NewExtSegment("bad", 0)
	_, err := s.Insmod(seg, isa.MustAssemble("bad", `
		.global escape
		.text
		escape:
			mov eax, [0x2000000]   ; 32 MB: beyond the 16 MB segment
			ret
	`))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("escape")
	_, err = f.Invoke(0)
	if !errors.Is(err, ErrKernelExtensionAborted) {
		t.Fatalf("err = %v, want aborted", err)
	}
	if !seg.Aborted() {
		t.Error("segment not marked aborted")
	}
	// Entry points are gone; re-invocation is impossible.
	if _, ok := s.ExtensionFunction("escape"); ok {
		t.Error("aborted extension still registered")
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("m", incSrc)); err == nil {
		t.Error("insmod into aborted segment must fail")
	}
}

func TestKernelExtensionUsesKernelService(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	// Expose one core kernel service: number 7 doubles its argument.
	s.K.RegisterKernelService(7, func(k *kernel.Kernel, p *kernel.Process, a1, _, _ uint32) uint32 {
		return a1 * 2
	})
	seg, _ := s.NewExtSegment("svc", 0)
	if _, err := s.Insmod(seg, isa.MustAssemble("m", `
		.global viaservice
		.text
		viaservice:
			mov eax, 7
			mov ebx, [esp+4]
			int 0x81
			ret
	`)); err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("viaservice")
	got, err := f.Invoke(21)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("service result = %d", got)
	}
}

func TestUserCodeCannotReachKernelServiceGate(t *testing.T) {
	// int 0x81 has gate DPL 1: user code (CPL 3) raising it faults.
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global try81
		.text
		try81:
			mov eax, 7
			int 0x81
			ret
	`)
	pf := mustSym(t, a, h, "try81")
	if _, err := pf.Call(0); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("err = %v, want fault (gate DPL)", err)
	}
}

func TestKernelExtensionTimeLimit(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	s.K.ExtTimeLimit = 100_000
	seg, _ := s.NewExtSegment("spin", 0)
	s.Insmod(seg, isa.MustAssemble("m", `
		.global kspin
		.text
		kspin: jmp kspin
	`))
	f, _ := s.ExtensionFunction("kspin")
	if _, err := f.Invoke(0); !errors.Is(err, ErrKernelExtensionAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestModulesShareSegmentAndSymbols(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	seg, _ := s.NewExtSegment("multi", 0)
	if _, err := s.Insmod(seg, isa.MustAssemble("m1", `
		.global helper
		.text
		helper:
			mov eax, [esp+4]
			add eax, 100
			ret
	`)); err != nil {
		t.Fatal(err)
	}
	// Module 2 links against module 1's export (same segment).
	if _, err := s.Insmod(seg, isa.MustAssemble("m2", `
		.global caller
		.text
		caller:
			push [esp+4]
			call helper
			add esp, 4
			ret
	`)); err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("caller")
	got, err := f.Invoke(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Errorf("cross-module call = %d", got)
	}
}

func TestAsyncKernelExtensions(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	seg, _ := s.NewExtSegment("async", 0)
	s.Insmod(seg, isa.MustAssemble("m", `
		.global tally
		.text
		tally:
			mov eax, [counter]
			add eax, [esp+4]
			mov [counter], eax
			ret
		.data
		.global counter
		counter: .word 0
	`))
	f, _ := s.ExtensionFunction("tally")
	for _, arg := range []uint32{5, 7, 30} {
		if err := f.InvokeAsync(arg); err != nil {
			t.Fatal(err)
		}
	}
	if seg.Pending() != 3 {
		t.Fatalf("pending = %d", seg.Pending())
	}
	n, err := seg.RunPending()
	if err != nil || n != 3 {
		t.Fatalf("RunPending = %d, %v", n, err)
	}
	im := seg.modules[0]
	off, _ := im.Lookup("counter")
	b, _ := s.ReadShared(seg, off, 4)
	got := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestSharedAccessChargesSegRegLoad(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	seg, _ := s.NewExtSegment("x", 0)
	im, err := s.Insmod(seg, isa.MustAssemble("m", `
		.global f
		.text
		f: ret
		.data
		.global shared_area
		shared_area: .space 16
	`))
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := s.SharedAreaAddr(im, seg, "shared_area")
	if !ok || addr < seg.Base {
		t.Fatalf("shared area addr = %#x", addr)
	}
	off, _ := im.Lookup("shared_area")
	before := s.Clock().Cycles()
	if err := s.WriteShared(seg, off, []byte{1}); err != nil {
		t.Fatal(err)
	}
	cost := s.Clock().Cycles() - before
	// Must include the 12-cycle segment register load of Section 5.1.
	if cost < 12 {
		t.Errorf("cross-segment write cost = %v, must include the 12-cycle segment register load", cost)
	}
}

func TestKernelInvokeOverheadNearTable1(t *testing.T) {
	// The kernel mechanism uses the same Figure-6 sequence; a warm
	// null invocation should cost close to the 142-cycle figure
	// (slightly more: the kernel-side harness push/pop and TLB
	// effects).
	s := newSystem(t)
	s.K.CreateProcess()
	seg, _ := s.NewExtSegment("n", 0)
	s.Insmod(seg, isa.MustAssemble("m", `
		.global knull
		.text
		knull: ret
	`))
	f, _ := s.ExtensionFunction("knull")
	if _, err := f.Invoke(0); err != nil { // warm
		t.Fatal(err)
	}
	before := s.Clock().Cycles()
	if _, err := f.Invoke(0); err != nil {
		t.Fatal(err)
	}
	cost := s.Clock().Cycles() - before
	if cost < 142 || cost > 220 {
		t.Errorf("kernel null invocation = %v cycles, want within [142,220]", cost)
	}
}

func TestPhasesString(t *testing.T) {
	ph := Phases{Setup: 26, Call: 34, Return: 75, Restore: 7}
	sstr := ph.String()
	if !strings.Contains(sstr, "142") {
		t.Errorf("Phases.String() = %q", sstr)
	}
}

func TestAsyncQueueBoundBackpressureAndDrainOnRelease(t *testing.T) {
	// Regression for the unbounded async queue: InvokeAsync used to
	// grow Seg.queue without limit and nothing drained it on release.
	s := newSystem(t)
	s.K.CreateProcess()
	seg, err := s.NewExtSegment("bounded", 0)
	if err != nil {
		t.Fatal(err)
	}
	seg.QueueBound = 3
	im, err := s.Insmod(seg, isa.MustAssemble("m", `
		.global tally
		.text
		tally:
			mov eax, [counter]
			add eax, [esp+4]
			mov [counter], eax
			ret
		.data
		.global counter
		counter: .word 0
	`))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("tally")
	for i := 1; i <= 3; i++ {
		if err := f.InvokeAsync(uint32(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// The bound refuses the fourth request with the typed error.
	err = f.InvokeAsync(99)
	if !errors.Is(err, ErrAsyncBackpressure) {
		t.Fatalf("overflow error = %v, want ErrAsyncBackpressure", err)
	}
	if seg.Pending() != 3 {
		t.Fatalf("pending = %d after refused enqueue, want 3", seg.Pending())
	}

	// Release drains every accepted request (none dropped), then
	// reclaims the segment's entry points.
	if err := seg.Release(); err != nil {
		t.Fatal(err)
	}
	if seg.Pending() != 0 {
		t.Errorf("pending = %d after release", seg.Pending())
	}
	off, _ := im.Lookup("counter")
	b, err := s.ReadShared(seg, off, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if got != 1+2+3 {
		t.Errorf("counter = %d after drain-on-release, want 6", got)
	}
	if _, ok := s.ExtensionFunction("tally"); ok {
		t.Error("released extension still registered")
	}
	if err := f.InvokeAsync(1); !errors.Is(err, ErrKernelExtensionAborted) {
		t.Errorf("post-release InvokeAsync = %v, want ErrKernelExtensionAborted", err)
	}
	// Release is idempotent.
	if err := seg.Release(); err != nil {
		t.Errorf("second release: %v", err)
	}
}

func TestAsyncDefaultBound(t *testing.T) {
	s := newSystem(t)
	s.K.CreateProcess()
	seg, err := s.NewExtSegment("defbound", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("m", "\t.global nop\n\t.text\nnop: ret\n")); err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("nop")
	for i := 0; i < DefaultAsyncQueueBound; i++ {
		if err := f.InvokeAsync(0); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := f.InvokeAsync(0); !errors.Is(err, ErrAsyncBackpressure) {
		t.Fatalf("default bound not enforced: %v", err)
	}
}
