package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// Phases decomposes a call's cycles into the four rows of Table 1.
// Body holds the invoked function's own instructions (the paper's null
// function contributes its prologue/epilogue there and is excluded
// from the Total, which matches the published 142/10 figures).
type Phases struct {
	Setup   float64 // creating the faked activation record, saving registers
	Call    float64 // the actual control transfer to the extension (lret + call)
	Return  float64 // returning control to the caller (lcall)
	Restore float64 // restoring the application's state
	Body    float64 // the invoked function itself (excluded from Total)
	Other   float64 // harness instructions outside the call proper
}

// Total is Setup+Call+Return+Restore, the quantity Table 1 reports.
func (p Phases) Total() float64 { return p.Setup + p.Call + p.Return + p.Restore }

// String renders the decomposition like Table 1.
func (p Phases) String() string {
	return fmt.Sprintf("setup=%.0f call=%.0f return=%.0f restore=%.0f (total %.0f, body %.0f)",
		p.Setup, p.Call, p.Return, p.Restore, p.Total(), p.Body)
}

// stepMeasure single-steps the machine until the break address is hit,
// attributing each instruction's cycles via classify(EIP-before).
func stepMeasure(a *App, classify func(eip uint32) *float64, phases *Phases) error {
	m := a.S.K.Machine
	for {
		eip := m.EIP
		before := m.Clock.Cycles()
		stop, _ := m.Step()
		delta := m.Clock.Cycles() - before
		if stop != nil {
			if stop.Reason == cpu.StopBreak {
				return nil
			}
			return fmt.Errorf("measurement stopped: %v (%v)", stop.Reason, stop.Err)
		}
		if bucket := classify(eip); bucket != nil {
			*bucket += delta
		} else {
			phases.Other += delta
		}
	}
}

// MeasureProtectedCall reproduces the "Inter" column of Table 1: it
// invokes the protected function once to warm caches, then single-
// steps a second invocation, attributing cycles to the four phases by
// instruction address:
//
//	Prepare's first 8 instructions        -> Setting up stack
//	Prepare's lret + Transfer's call      -> Calling function
//	Transfer's lcall                      -> Returning to caller
//	AppCallGate (2 loads + ret)           -> Restoring state
func MeasureProtectedCall(pf *ProtectedFunc, arg uint32) (Phases, error) {
	a := pf.App
	if _, err := pf.Call(arg); err != nil { // warm TLB and stubs
		return Phases{}, err
	}
	k := a.S.K
	m := k.Machine
	saved := m.SaveContext()
	defer m.RestoreContext(saved)

	m.CS = kernel.ACodeSel
	m.DS = kernel.UDataSel
	m.ES = kernel.UDataSel
	m.SS = kernel.ADataSel
	m.Regs[isa.ESP] = a.callStack
	m.EIP = pf.PrepareAddr
	if f := m.Push(arg); f != nil {
		return Phases{}, f
	}
	if f := m.Push(appRetBreak); f != nil {
		return Phases{}, f
	}
	m.SetBreak(appRetBreak)
	defer m.ClearBreak(appRetBreak)

	var ph Phases
	lretAddr := pf.PrepareAddr + 8*isa.InstrSlot
	callAddr := pf.TransferAddr
	lcallAddr := pf.TransferAddr + isa.InstrSlot
	classify := func(eip uint32) *float64 {
		switch {
		case eip >= pf.PrepareAddr && eip < lretAddr:
			return &ph.Setup
		case eip == lretAddr, eip == callAddr:
			return &ph.Call
		case eip == lcallAddr:
			return &ph.Return
		case eip >= a.gateAddr && eip < a.gateAddr+3*isa.InstrSlot:
			return &ph.Restore
		case eip == pf.FnAddr || (eip > pf.FnAddr && eip < pf.FnAddr+0x1000):
			return &ph.Body
		}
		return nil
	}
	if err := stepMeasure(a, classify, &ph); err != nil {
		return ph, err
	}
	return ph, nil
}

// MeasureUnprotectedCall reproduces the "Intra" column of Table 1: a
// plain intra-domain call to the same function through a four-
// instruction caller (push arg / call / pop / ret). The callee's final
// ret is attributed to "Returning to caller", as in the paper's
// decomposition.
func MeasureUnprotectedCall(a *App, fnAddr uint32, arg uint32) (Phases, error) {
	if a.intraCaller == 0 {
		syms, err := a.stubs.add("intracaller", fmt.Sprintf(`
caller:
	push ecx
	call %d
	pop ecx
	ret
`, fnAddr))
		if err != nil {
			return Phases{}, err
		}
		a.intraCaller = syms["caller"]
		a.intraTarget = fnAddr
	} else if a.intraTarget != fnAddr {
		return Phases{}, fmt.Errorf("intra-call caller already bound to %#x", a.intraTarget)
	}
	if _, err := a.CallUnprotected(a.intraCaller, arg); err != nil { // warm
		return Phases{}, err
	}
	k := a.S.K
	m := k.Machine
	saved := m.SaveContext()
	defer m.RestoreContext(saved)
	m.CS = kernel.ACodeSel
	m.DS = kernel.UDataSel
	m.ES = kernel.UDataSel
	m.SS = kernel.ADataSel
	m.Regs[isa.ESP] = a.callStack
	m.Regs[isa.ECX] = arg
	m.EIP = a.intraCaller
	if f := m.Push(appRetBreak); f != nil {
		return Phases{}, f
	}
	m.SetBreak(appRetBreak)
	defer m.ClearBreak(appRetBreak)

	var ph Phases
	classify := func(eip uint32) *float64 {
		switch eip {
		case a.intraCaller:
			return &ph.Setup
		case a.intraCaller + isa.InstrSlot:
			return &ph.Call
		case a.intraCaller + 2*isa.InstrSlot:
			return &ph.Restore
		case a.intraCaller + 3*isa.InstrSlot:
			return &ph.Other // harness ret back to the sentinel
		}
		if eip >= fnAddr && eip < fnAddr+0x1000 {
			ins := m.CodeAt(mustPhys(a, eip))
			if ins != nil && ins.Op == isa.RET {
				return &ph.Return
			}
			return &ph.Body
		}
		return nil
	}
	if err := stepMeasure(a, classify, &ph); err != nil {
		return ph, err
	}
	return ph, nil
}

// mustPhys resolves a user-space linear address to its physical
// address through the process page tables (measurement helper).
func mustPhys(a *App, lin uint32) uint32 {
	e := a.P.AS.Lookup(lin)
	return e.Frame() | lin&0xFFF
}
