package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/loader"
)

// stubArena is a small code region into which control-transfer stubs
// (the Prepare / Transfer / AppCallGate routines of Figure 6) are
// installed incrementally. Stub objects must be closed — every symbol
// they reference is either local or a numeric immediate baked in at
// generation time.
type stubArena struct {
	space loader.Space
	base  uint32
	next  uint32
	end   uint32
}

// rebind copies the arena descriptor onto a cloned machine's space;
// the stub code itself already lives in the clone's (COW-shared)
// memory at the same addresses.
func (a *stubArena) rebind(space loader.Space) *stubArena {
	if a == nil {
		return nil
	}
	return &stubArena{space: space, base: a.base, next: a.next, end: a.end}
}

func newStubArena(space loader.Space, name string, size uint32) (*stubArena, error) {
	base, err := space.AllocRange(size, name, false, true)
	if err != nil {
		return nil, err
	}
	return &stubArena{space: space, base: base, next: base, end: base + size}, nil
}

// add assembles src, places it at the arena cursor, and returns the
// absolute addresses of its text symbols. Stub sources recur verbatim
// across boots (the baked-in addresses are deterministic per layout),
// so assembly is memoized.
func (a *stubArena) add(name, src string) (map[string]uint32, error) {
	obj, err := isa.AssembleCached(name, src)
	if err != nil {
		return nil, fmt.Errorf("palladium: stub %s: %w", name, err)
	}
	if len(obj.Data) != 0 || obj.BSSSize != 0 {
		return nil, fmt.Errorf("palladium: stub %s must be pure code", name)
	}
	need := obj.TextBytes()
	if a.next+need > a.end {
		return nil, fmt.Errorf("palladium: stub arena full")
	}
	base := a.next
	for _, r := range obj.Relocs {
		s := obj.Symbol(r.Sym)
		if s == nil || s.Section != isa.SecText {
			return nil, fmt.Errorf("palladium: stub %s references non-local symbol %q", name, r.Sym)
		}
		v := int32(base+s.Off) + r.Addend
		switch r.Slot {
		case isa.RelDstDisp:
			obj.Text[r.Index].Dst.Disp += v
		case isa.RelSrcDisp:
			obj.Text[r.Index].Src.Disp += v
		case isa.RelDstImm:
			obj.Text[r.Index].Dst.Imm += v
		case isa.RelSrcImm:
			obj.Text[r.Index].Src.Imm += v
		}
	}
	if err := a.space.InstallText(base, obj.Text); err != nil {
		return nil, err
	}
	a.next += need
	syms := make(map[string]uint32)
	for n, s := range obj.Symbols {
		if s.Section == isa.SecText {
			syms[n] = base + s.Off
		}
	}
	return syms, nil
}

// prepareTransferSrc renders the per-extension-function Prepare and
// Transfer routines of Figure 6.
//
// Prepare (runs in the core program's domain):
//  1. copy the 4-byte input argument from the caller's stack to the
//     extension stack's argument slot,
//  2. save the caller's stack and base pointers in the save area
//     (which lives in the core domain, hidden from the extension),
//  3. push a phantom activation record — extension SS, extension ESP,
//     extension CS, Transfer's address — and lret "downhill".
//
// Transfer (runs in the extension's domain) makes a plain local call
// to the extension function, then lcalls back through the return call
// gate.
func prepareTransferSrc(argSlot, spSave, bpSave uint32, extSS, extSP uint32, extCS uint32, fnAddr uint32, retGate uint16) string {
	return fmt.Sprintf(`
prepare:
	push [esp+4]
	pop [%d]
	mov [%d], esp
	mov [%d], ebp
	push %d
	push %d
	push %d
	push transfer
	lret
transfer:
	call %d
	lcall %d
`, argSlot, spSave, bpSave, extSS, extSP, extCS, fnAddr, retGate)
}

// appCallGateSrc renders the per-application AppCallGate routine: the
// call-gate target that restores the saved stack and base pointers
// (the hardware reloaded ESP from the stale TSS slot) and returns
// locally to the original caller of Prepare.
func appCallGateSrc(spSave, bpSave uint32) string {
	return fmt.Sprintf(`
appcallgate:
	mov esp, [%d]
	mov ebp, [%d]
	ret
`, spSave, bpSave)
}

// kernelPrepareSrc renders the kernel-side Prepare routine alone: for
// kernel extensions, Prepare lives in kernel text (it runs at SPL 0)
// while Transfer lives inside the extension segment (it runs at SPL 1
// with the extension's code segment), so the two are generated
// separately and Transfer's segment-relative offset is baked in as an
// immediate.
func kernelPrepareSrc(argSlot, spSave, bpSave uint32, extSS, extSP uint32, extCS uint32, transferOff uint32) string {
	return fmt.Sprintf(`
prepare:
	push [esp+4]
	pop [%d]
	mov [%d], esp
	mov [%d], ebp
	push %d
	push %d
	push %d
	push %d
	lret
`, argSlot, spSave, bpSave, extSS, extSP, extCS, transferOff)
}

// transferSrc renders a stand-alone Transfer routine placed inside an
// extension segment.
func transferSrc(fnOff uint32, retGate uint16) string {
	return fmt.Sprintf(`
transfer:
	call %d
	lcall %d
`, fnOff, retGate)
}

// stubSyms bundles the addresses of one protected function's stubs,
// used by the phase-measurement harness for Table 1.
type stubSyms struct {
	Prepare  uint32
	Transfer uint32
}

func (a *stubArena) addPrepareTransfer(fn string, src string) (stubSyms, error) {
	syms, err := a.add("stub:"+fn, src)
	if err != nil {
		return stubSyms{}, err
	}
	return stubSyms{Prepare: syms["prepare"], Transfer: syms["transfer"]}, nil
}
