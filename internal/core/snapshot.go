package core

import (
	"maps"
	"slices"

	"repro/internal/kernel"
	"repro/internal/loader"
)

// segSave captures one extension segment. The original *ExtSegment
// pointer is kept so Restore rewrites its fields in place and every
// KernelExtensionFunc and caller-held reference stays valid.
type segSave struct {
	seg     *ExtSegment
	next    uint32
	ranges  *rangeList
	mapped  map[uint32]bool
	modules []*loader.Image
	// stubs is the arena object alive at the snapshot (nil when none
	// existed yet) plus its cursor: recording the object itself lets a
	// later restore re-attach an arena that an intermediate restore
	// had detached (nil -> non-nil across two snapshots).
	stubs    *stubArena
	stubNext uint32
	aborted  bool
	busy     bool
	queue    []asyncReq
}

// SystemSnapshot captures a whole Palladium system: the kernel (and
// through it the machine, MMU, clock and COW memory image) plus the
// extension-segment registry and the Extension Function Table. It is
// the unit of the InvokeTx rollback transaction.
type SystemSnapshot struct {
	kern *kernel.Snapshot

	nSegs    int
	segs     []segSave
	nextSeg  uint32
	eft      map[string]*KernelExtensionFunc
	prepNext uint32
	kt       *rangeList
}

// Snapshot captures the system for a later Restore. It charges no
// simulated cycles and perturbs no simulated metric.
func (s *System) Snapshot() *SystemSnapshot {
	sn := &SystemSnapshot{
		kern:     s.K.Snapshot(),
		nSegs:    len(s.segs),
		nextSeg:  s.nextSeg,
		eft:      maps.Clone(s.eft),
		prepNext: s.kernPrep.next,
		kt:       s.ktRanges.clone(),
	}
	for _, seg := range s.segs {
		sv := segSave{
			seg:     seg,
			next:    seg.next,
			ranges:  seg.ranges.clone(),
			mapped:  maps.Clone(seg.mapped),
			modules: slices.Clone(seg.modules),
			stubs:   seg.stubs,
			aborted: seg.aborted,
			busy:    seg.busy,
			queue:   slices.Clone(seg.queue),
		}
		if seg.stubs != nil {
			sv.stubNext = seg.stubs.next
		}
		sn.segs = append(sn.segs, sv)
	}
	return sn
}

// Restore rewinds the system (kernel, machine, memory and the
// Palladium registries) to the snapshot. Segments created after the
// snapshot vanish; segments alive at the snapshot are restored in
// place, including an undo of any abort that happened since. The
// snapshot remains valid for further restores.
func (s *System) Restore(sn *SystemSnapshot) {
	s.K.Restore(sn.kern)
	s.segs = s.segs[:sn.nSegs]
	for _, sv := range sn.segs {
		seg := sv.seg
		seg.next = sv.next
		seg.ranges.restoreFrom(sv.ranges)
		seg.mapped = maps.Clone(sv.mapped)
		seg.modules = append(seg.modules[:0], sv.modules...)
		seg.stubs = sv.stubs
		if seg.stubs != nil {
			seg.stubs.next = sv.stubNext
		}
		seg.aborted = sv.aborted
		seg.busy = sv.busy
		seg.queue = append(seg.queue[:0], sv.queue...)
	}
	s.nextSeg = sn.nextSeg
	s.eft = maps.Clone(sn.eft)
	s.kernPrep.next = sn.prepNext
	s.ktRanges.restoreFrom(sn.kt)
}

// Release frees the snapshot's hold on the COW frame store.
func (sn *SystemSnapshot) Release() { sn.kern.Release() }

// Clone derives a complete, independent Palladium system: the kernel
// clone shares physical memory copy-on-write, and every core-level
// structure (segments, stub arenas, the Extension Function Table) is
// re-built against the clone with identical addresses and cursors. A
// clone of a freshly booted system is bit-identical, in every
// simulated metric, to a system booted from scratch — at a fraction of
// the wall-clock cost, which is what lets a fleet boot one template
// and clone N workers.
//
// Clone must be called while the machine is quiescent; the clone may
// then be driven from another goroutine.
func (s *System) Clone() (*System, error) {
	k2, err := s.K.Clone()
	if err != nil {
		return nil, err
	}
	s2 := &System{
		K:           k2,
		nextSeg:     s.nextSeg,
		eft:         make(map[string]*KernelExtensionFunc, len(s.eft)),
		kernRetGate: s.kernRetGate,
		ktRanges:    s.ktRanges.clone(),
	}
	s2.kernPrep = s.kernPrep.rebind(&kernelTextSpace{s: s2})

	segMap := make(map[*ExtSegment]*ExtSegment, len(s.segs))
	imMap := make(map[*loader.Image]*loader.Image)
	for _, seg := range s.segs {
		seg2 := &ExtSegment{
			S: s2, Name: seg.Name, Base: seg.Base, Limit: seg.Limit,
			Code: seg.Code, Data: seg.Data,
			next:       seg.next,
			ranges:     seg.ranges.clone(),
			mapped:     maps.Clone(seg.mapped),
			aborted:    seg.aborted,
			busy:       seg.busy,
			QueueBound: seg.QueueBound,
		}
		seg2.stubs = seg.stubs.rebind(seg2)
		for _, im := range seg.modules {
			im2 := im.Rebind(seg2)
			imMap[im] = im2
			seg2.modules = append(seg2.modules, im2)
		}
		segMap[seg] = seg2
		s2.segs = append(s2.segs, seg2)
	}
	for name, f := range s.eft {
		s2.eft[name] = &KernelExtensionFunc{
			Seg: segMap[f.Seg], Name: f.Name, FnOff: f.FnOff,
			stub: f.stub, module: imMap[f.module],
		}
	}
	// Pending async requests carry over by entry-point name.
	for _, seg := range s.segs {
		for _, req := range seg.queue {
			if f2 := s2.eft[req.fn.Name]; f2 != nil {
				segMap[seg].queue = append(segMap[seg].queue, asyncReq{fn: f2, arg: req.arg})
			}
		}
	}
	return s2, nil
}

// Clone copies the extensible application onto a cloned system: the
// process, dynamic-loader state and stub addresses carry over (the
// clone's memory holds the same loaded bytes at the same addresses).
// Application services exposed via ExposeService keep their handlers:
// those receive the executing machine as an argument, but a handler
// closing over this App's state will still observe the template's Go
// state — re-expose such services on the clone if they are stateful.
func (a *App) Clone(s2 *System) (*App, error) {
	p2 := s2.K.Process(a.P.PID)
	dl2, imap := a.DL.CloneFor(s2.K, p2)
	a2 := &App{
		S: s2, P: p2, DL: dl2, Libc: imap[a.Libc],

		promoted: a.promoted,
		spSave:   a.spSave,
		bpSave:   a.bpSave,

		extStackTop: a.extStackTop,
		argSlot:     a.argSlot,

		appGateSel:  a.appGateSel,
		gateAddr:    a.gateAddr,
		callStack:   a.callStack,
		svcNext:     a.svcNext,
		xheap:       a.xheap,
		xheapEnd:    a.xheapEnd,
		maxInstr:    a.maxInstr,
		handleCount: a.handleCount,

		intraCaller: a.intraCaller,
		intraTarget: a.intraTarget,
	}
	a2.stubs = a.stubs.rebind(dl2.Space())
	return a2, nil
}

// Rebind returns this protected-function handle bound to a cloned
// application (all stub and function addresses are identical in the
// clone's address space).
func (pf *ProtectedFunc) Rebind(a2 *App) *ProtectedFunc {
	return &ProtectedFunc{
		App: a2, Name: pf.Name,
		PrepareAddr: pf.PrepareAddr, TransferAddr: pf.TransferAddr, FnAddr: pf.FnAddr,
	}
}
