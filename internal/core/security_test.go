package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// TestGOTAttackBlockedBySealing demonstrates the Section 4.4.2 hazard
// and its fix: with the GOT writable, an extension can redirect the
// application's next library call; with the sealed (read-only,
// page-aligned) GOT that Palladium requires, the same store faults.
func TestGOTAttackBlockedBySealing(t *testing.T) {
	build := func(seal bool) (*App, *loader.Image, *ProtectedFunc, uint32) {
		s := newSystem(t)
		a := newApp(t, s)
		// A "victim" library whose function the app calls through its
		// GOT, plus a gadget the attacker wants to run instead.
		lib := isa.MustAssemble("victim", `
			.global victim, gadget
			.text
			victim:
				mov eax, 1
				ret
			gadget:
				mov eax, 666
				ret
		`)
		_, libIm, err := a.DL.Dlopen(lib, loader.LibraryOptions())
		if err != nil {
			t.Fatal(err)
		}
		// The application's own module calls victim via PLT/GOT.
		appObj := isa.MustAssemble("appmod", `
			.global appcall
			.text
			appcall:
				call victim
				ret
		`)
		opt := loader.LibraryOptions()
		opt.SealGOT = seal
		_, im, err2 := a.DL.Dlopen(appObj, opt)
		if err2 != nil {
			t.Fatal(err2)
		}
		// The attacker extension writes [got] = gadget.
		h := mustOpen(t, a, `
			.global smash
			.text
			smash:
				mov edx, [esp+4]     ; argument block
				mov eax, [edx]       ; GOT slot address
				mov ecx, [edx+4]     ; gadget address
				mov [eax], ecx
				ret
		`)
		pf := mustSym(t, a, h, "smash")
		return a, im, pf, libIm.Syms["gadget"]
	}

	// Unsealed: the attack succeeds and hijacks the app's call.
	a, im, pf, gadget := build(false)
	args, err := a.XAlloc(8)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteMem(args, leBytes(im.GOTBase, gadget))
	if _, err := pf.Call(args); err != nil {
		t.Fatalf("unsealed GOT write should succeed: %v", err)
	}
	got, err := a.CallUnprotected(im.Syms["appcall"], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 666 {
		t.Errorf("hijack demo: appcall = %d, expected gadget's 666", got)
	}

	// Sealed: the same attack faults and the app's call is intact.
	a, im, pf, gadget = build(true)
	args, _ = a.XAlloc(8)
	a.WriteMem(args, leBytes(im.GOTBase, gadget))
	if _, err := pf.Call(args); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("sealed GOT write: err = %v, want fault", err)
	}
	got, err = a.CallUnprotected(im.Syms["appcall"], 0)
	if err != nil || got != 1 {
		t.Errorf("appcall after blocked attack = %d, %v; want 1", got, err)
	}
}

func leBytes(vals ...uint32) []byte {
	out := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// TestForkedAppInheritsProtection checks Section 4.5.2: a promoted
// application's fork stays at SPL 2 with its page privileges intact.
func TestForkedAppInheritsProtection(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	secret, _ := a.P.Mmap(s.K, 0, mem.PageSize, true, "secret")
	if err := a.P.Touch(s.K, secret, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	child, err := s.K.Fork(a.P)
	if err != nil {
		t.Fatal(err)
	}
	if child.TaskSPL != 2 {
		t.Error("forked clone must continue at SPL 2")
	}
	if child.AS.Lookup(secret).User() {
		t.Error("forked clone's secret page must stay PPL 0")
	}
	// Exec resets (new processes "by default should start at SPL 3").
	if err := s.K.Exec(child); err != nil {
		t.Fatal(err)
	}
	if child.TaskSPL != 3 {
		t.Error("exec must reset the clone to SPL 3")
	}
}

// TestExtensionUsesLibcMemcpyOnSharedArea exercises a realistic
// extension: it memcpy's between two shared buffers via the PLT.
func TestExtensionUsesLibcMemcpyOnSharedArea(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global copy16
		.text
		copy16:
			mov eax, [esp+4]     ; arg block: [dst][src]
			push 16
			push [eax+4]
			push [eax]
			call memcpy
			add esp, 12
			ret
	`)
	pf := mustSym(t, a, h, "copy16")
	shared, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := shared, shared+256
	if err := a.WriteString(src, "segmentation+pg"); err != nil {
		t.Fatal(err)
	}
	args, _ := a.XAlloc(8)
	a.WriteMem(args, leBytes(dst, src))
	if _, err := pf.Call(args); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadString(dst, 32)
	if got != "segmentation+pg" {
		t.Errorf("memcpy result = %q", got)
	}
}

// TestTwoExtensionModulesNoMutualProtection documents the stated
// non-goal: "among extension modules, the protection is only for
// safety but not for security" — two user extensions of one app can
// touch each other's PPL-1 data.
func TestTwoExtensionModulesNoMutualProtection(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h1 := mustOpen(t, a, `
		.global get
		.text
		get:
			mov eax, [stash]
			ret
		.data
		.global stash
		stash: .word 7
	`)
	stashAddr, err := a.Dlsym(h1, "stash")
	if err != nil {
		t.Fatal(err)
	}
	h2 := mustOpen(t, a, `
		.global poke
		.text
		poke:
			mov eax, [esp+4]
			mov [eax], 99
			ret
	`)
	poke := mustSym(t, a, h2, "poke")
	if _, err := poke.Call(stashAddr); err != nil {
		t.Fatalf("cross-extension write should be allowed: %v", err)
	}
	get := mustSym(t, a, h1, "get")
	if got, _ := get.Call(0); got != 99 {
		t.Errorf("stash = %d, want 99 (modules share the PPL-1 domain)", got)
	}
}

// TestXAllocExhaustion covers the xmalloc heap bound.
func TestXAllocExhaustion(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	if _, err := a.XAlloc(64 * mem.PageSize); err != nil {
		t.Fatal("first large xalloc should fit")
	}
	if _, err := a.XAlloc(16); err == nil {
		t.Error("exhausted xmalloc heap must error")
	}
}

// TestProtectedCallGapConstantAcrossArgs pins the Table 2 observation
// that the protected-unprotected difference is constant (~142 cycles)
// regardless of the argument value.
func TestProtectedCallGapConstantAcrossArgs(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, incSrc)
	pf := mustSym(t, a, h, "inc")
	raw, _ := a.Dlsym(h, "inc")
	pf.Call(0)                // warm
	a.CallUnprotected(raw, 0) // warm
	clock := s.Clock()
	var gaps []float64
	for _, arg := range []uint32{0, 1, 1 << 20, 0xFFFF_FFFF} {
		var protErr error
		prot := clock.Span(func() { _, protErr = pf.Call(arg) })
		unprot := clock.Span(func() { _, _ = a.CallUnprotected(raw, arg) })
		if protErr != nil {
			t.Fatal(protErr)
		}
		gaps = append(gaps, prot-unprot)
	}
	for _, g := range gaps[1:] {
		if g != gaps[0] {
			t.Fatalf("gap varies with argument: %v", gaps)
		}
	}
	if gaps[0] < 130 || gaps[0] > 160 {
		t.Errorf("protected-unprotected gap = %v cycles, paper ~118-153", gaps[0])
	}
}

// TestKernelServiceRunsOnCallersKernelStack checks the Section 4.3
// statement that kernel services invoked by extensions execute on the
// kernel stack of the triggering user process.
func TestKernelServiceRunsOnCallersKernelStack(t *testing.T) {
	s := newSystem(t)
	p, _ := s.K.CreateProcess()
	var sawESP uint32
	s.K.RegisterKernelService(9, func(k *kernel.Kernel, proc *kernel.Process, _, _, _ uint32) uint32 {
		sawESP = k.Machine.Reg(isa.ESP)
		return 0
	})
	seg, _ := s.NewExtSegment("svc", 0)
	s.Insmod(seg, isa.MustAssemble("m", `
		.global callsvc
		.text
		callsvc:
			mov eax, 9
			int 0x81
			ret
	`))
	f, _ := s.ExtensionFunction("callsvc")
	if _, err := f.Invoke(0); err != nil {
		t.Fatal(err)
	}
	top := p.KStackTop - kernel.KernelBase
	if sawESP == 0 || sawESP > top || top-sawESP > mem.PageSize {
		t.Errorf("service ESP = %#x, expected within the caller's kernel stack (top %#x)", sawESP, top)
	}
}

// ---------------------------------------------------------------------------
// Adversarial escape attempts. Each case is an extension that tries to
// break out of its Palladium domain through a specific hole the paper
// claims is closed; the test asserts the exact hardware fault, that
// the protected bytes never changed, and that the trusted side keeps
// working afterwards.

const secretPattern = "\xDE\xAD\xBE\xEF\x50\x4C\x44\x4D"

// userEscapeCase is one SPL-3 (user extension) escape attempt. The
// source is generated against the concrete secret address the app
// hides at PPL 0.
type userEscapeCase struct {
	name string
	src  func(secret uint32) string
	// wantKind/wantReason pin the exact fault the MMU/CPU must raise.
	wantKind   mmu.FaultKind
	wantReason string
	// wantLinear, when true, requires the faulting linear address to
	// be the secret itself.
	wantLinear bool
}

func userEscapeCases() []userEscapeCase {
	return []userEscapeCase{
		{
			// Section 4.4.1: the application's writable pages are PPL 0
			// after init_PL; an SPL-3 store to one that was never
			// exposed via set_range must page-fault.
			name: "spl3 write to hidden PPL-0 page",
			src: func(secret uint32) string {
				return fmt.Sprintf(`
					.global escape
					.text
					escape:
						mov eax, 1
						mov [%d], eax
						ret
				`, int32(secret))
			},
			wantKind:   mmu.PF,
			wantReason: "page privilege violation (PPL 0 page at CPL 3)",
			wantLinear: true,
		},
		{
			// Figure 2: the user segments stop at 3 GB, so a jump at a
			// kernel linear address trips the segment limit before any
			// kernel byte is fetched.
			name: "spl3 jump into the kernel bypassing the call gate",
			src: func(uint32) string {
				kernelTarget := uint32(0xC000_1000)
				return fmt.Sprintf(`
					.global escape
					.text
					escape:
						mov eax, %d
						jmp eax
				`, int32(kernelTarget))
			},
			wantKind:   mmu.GP,
			wantReason: "segment limit violation",
		},
		{
			// Section 4.3: kernel entry points are call gates; an lcall
			// straight at the kernel code descriptor is rejected.
			name: "spl3 lcall directly at the kernel code segment",
			src: func(uint32) string {
				return `
					.global escape
					.text
					escape:
						lcall 0x08
						ret
				`
			},
			wantKind:   mmu.GP,
			wantReason: "lcall: not a call gate",
		},
		{
			// Figure 6's downhill transfer is an lret; forging a frame
			// whose CS names a more privileged segment must not raise
			// privilege.
			name: "spl3 lret to a forged ring-0 selector",
			src: func(uint32) string {
				return `
					.global escape
					.text
					escape:
						push 0x08
						push 0
						lret
				`
			},
			wantKind:   mmu.GP,
			wantReason: "lret to more privileged level",
		},
	}
}

func TestAdversarialUserEscapeAttempts(t *testing.T) {
	for _, tc := range userEscapeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := newSystem(t)
			a := newApp(t, s)

			// The application's secret: a writable (hence PPL 0) page
			// holding a known pattern.
			secret, err := a.P.Mmap(s.K, 0, mem.PageSize, true, "secret")
			if err != nil {
				t.Fatal(err)
			}
			if err := a.P.Touch(s.K, secret, mem.PageSize); err != nil {
				t.Fatal(err)
			}
			if err := a.WriteMem(secret, []byte(secretPattern)); err != nil {
				t.Fatal(err)
			}

			var delivered []kernel.SignalInfo
			a.P.SignalHandler = func(si kernel.SignalInfo) { delivered = append(delivered, si) }

			h := mustOpen(t, a, tc.src(secret))
			pf := mustSym(t, a, h, "escape")
			_, err = pf.Call(0)
			if !errors.Is(err, ErrExtensionFault) {
				t.Fatalf("escape returned %v, want ErrExtensionFault", err)
			}

			// Exactly one SIGSEGV with exactly the expected fault.
			if len(delivered) != 1 || delivered[0].Sig != kernel.SIGSEGV {
				t.Fatalf("signals delivered = %+v, want one SIGSEGV", delivered)
			}
			f := delivered[0].Fault
			if f == nil {
				t.Fatal("SIGSEGV carried no fault")
			}
			if f.Kind != tc.wantKind {
				t.Errorf("fault kind = %v, want %v (%v)", f.Kind, tc.wantKind, f)
			}
			if !strings.Contains(f.Reason, tc.wantReason) {
				t.Errorf("fault reason = %q, want %q", f.Reason, tc.wantReason)
			}
			if f.CPL != 3 {
				t.Errorf("fault CPL = %d, want 3 (the extension, not the app)", f.CPL)
			}
			if tc.wantLinear && f.Linear != secret {
				t.Errorf("fault linear = %#x, want the secret %#x", f.Linear, secret)
			}

			// Not a single protected byte changed.
			got, err := a.ReadMem(secret, len(secretPattern))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != secretPattern {
				t.Errorf("secret after attack = % x, want % x", got, secretPattern)
			}

			// The application still works: a benign protected call
			// succeeds after the attack was aborted.
			h2 := mustOpen(t, a, incSrc)
			inc := mustSym(t, a, h2, "inc")
			if got, err := inc.Call(41); err != nil || got != 42 {
				t.Errorf("post-attack protected call = %d, %v; want 42", got, err)
			}
		})
	}
}

// TestAdversarialKernelEscapeAttempts is the SPL-1 side: kernel
// extensions trying to escape their extension segment. The victim is a
// second extension segment holding a known byte; the paper's claim is
// that the segment limit check stops the attacker before the victim
// (or any other kernel byte) is touched.
func TestAdversarialKernelEscapeAttempts(t *testing.T) {
	cases := []struct {
		name string
		src  func(escapeOff int32) string
		want string // substring of the aborted-extension error
	}{
		{
			// The Section 4.2 scenario: a store whose segment-relative
			// offset lands in another extension's segment, far past the
			// attacker's limit.
			name: "spl1 write past the segment limit",
			src: func(escapeOff int32) string {
				return fmt.Sprintf(`
					.global attack
					.text
					attack:
						mov eax, 255
						mov [%d], eax
						ret
				`, escapeOff)
			},
			want: "segment limit violation",
		},
		{
			// Jumping out of the code segment is caught the same way.
			name: "spl1 jump past the segment limit",
			src: func(escapeOff int32) string {
				return fmt.Sprintf(`
					.global attack
					.text
					attack:
						mov eax, %d
						jmp eax
				`, escapeOff)
			},
			want: "segment limit violation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSystem(t)
			if _, err := s.K.CreateProcess(); err != nil {
				t.Fatal(err)
			}

			attacker, err := s.NewExtSegment("attacker", 0)
			if err != nil {
				t.Fatal(err)
			}
			victim, err := s.NewExtSegment("victim", 0)
			if err != nil {
				t.Fatal(err)
			}
			vim, err := s.Insmod(victim, isa.MustAssemble("victim", `
				.global vget
				.text
				vget:
					mov eax, [vstash]
					ret
				.data
				.global vstash
				vstash: .word 90
			`))
			if err != nil {
				t.Fatal(err)
			}
			stashOff, ok := vim.Lookup("vstash")
			if !ok {
				t.Fatal("vstash not found")
			}
			// The attacker's segment-relative view of the victim's
			// stash: beyond the attacker's limit by construction.
			escapeOff := int32(victim.Base + stashOff - attacker.Base)
			if uint32(escapeOff) <= attacker.Limit {
				t.Fatalf("test setup: escape offset %#x within attacker limit %#x", escapeOff, attacker.Limit)
			}
			if _, err := s.Insmod(attacker, isa.MustAssemble("attacker", tc.src(escapeOff))); err != nil {
				t.Fatal(err)
			}

			fn, ok := s.ExtensionFunction("attack")
			if !ok {
				t.Fatal("attack not registered")
			}
			_, err = fn.Invoke(0)
			if !errors.Is(err, ErrKernelExtensionAborted) {
				t.Fatalf("attack returned %v, want ErrKernelExtensionAborted", err)
			}
			if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "#GP") {
				t.Errorf("abort error = %q, want #GP with %q", err, tc.want)
			}
			if !attacker.Aborted() {
				t.Error("attacker segment not aborted")
			}

			// The victim's byte never changed and the victim still runs.
			vget, ok := s.ExtensionFunction("vget")
			if !ok {
				t.Fatal("victim was deregistered by the attacker's abort")
			}
			if got, err := vget.Invoke(0); err != nil || got != 90 {
				t.Errorf("victim stash after attack = %d, %v; want 90", got, err)
			}
			raw, err := s.ReadShared(victim, stashOff, 1)
			if err != nil {
				t.Fatal(err)
			}
			if raw[0] != 90 {
				t.Errorf("victim byte = %d, want 90", raw[0])
			}

			// The attacker's entry point is gone (resource reclamation).
			if _, ok := s.ExtensionFunction("attack"); ok {
				t.Error("aborted extension still registered")
			}
		})
	}
}
