package core

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
)

// TestGOTAttackBlockedBySealing demonstrates the Section 4.4.2 hazard
// and its fix: with the GOT writable, an extension can redirect the
// application's next library call; with the sealed (read-only,
// page-aligned) GOT that Palladium requires, the same store faults.
func TestGOTAttackBlockedBySealing(t *testing.T) {
	build := func(seal bool) (*App, *loader.Image, *ProtectedFunc, uint32) {
		s := newSystem(t)
		a := newApp(t, s)
		// A "victim" library whose function the app calls through its
		// GOT, plus a gadget the attacker wants to run instead.
		lib := isa.MustAssemble("victim", `
			.global victim, gadget
			.text
			victim:
				mov eax, 1
				ret
			gadget:
				mov eax, 666
				ret
		`)
		_, libIm, err := a.DL.Dlopen(lib, loader.LibraryOptions())
		if err != nil {
			t.Fatal(err)
		}
		// The application's own module calls victim via PLT/GOT.
		appObj := isa.MustAssemble("appmod", `
			.global appcall
			.text
			appcall:
				call victim
				ret
		`)
		opt := loader.LibraryOptions()
		opt.SealGOT = seal
		_, im, err2 := a.DL.Dlopen(appObj, opt)
		if err2 != nil {
			t.Fatal(err2)
		}
		// The attacker extension writes [got] = gadget.
		h := mustOpen(t, a, `
			.global smash
			.text
			smash:
				mov edx, [esp+4]     ; argument block
				mov eax, [edx]       ; GOT slot address
				mov ecx, [edx+4]     ; gadget address
				mov [eax], ecx
				ret
		`)
		pf := mustSym(t, a, h, "smash")
		return a, im, pf, libIm.Syms["gadget"]
	}

	// Unsealed: the attack succeeds and hijacks the app's call.
	a, im, pf, gadget := build(false)
	args, err := a.XAlloc(8)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteMem(args, leBytes(im.GOTBase, gadget))
	if _, err := pf.Call(args); err != nil {
		t.Fatalf("unsealed GOT write should succeed: %v", err)
	}
	got, err := a.CallUnprotected(im.Syms["appcall"], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 666 {
		t.Errorf("hijack demo: appcall = %d, expected gadget's 666", got)
	}

	// Sealed: the same attack faults and the app's call is intact.
	a, im, pf, gadget = build(true)
	args, _ = a.XAlloc(8)
	a.WriteMem(args, leBytes(im.GOTBase, gadget))
	if _, err := pf.Call(args); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("sealed GOT write: err = %v, want fault", err)
	}
	got, err = a.CallUnprotected(im.Syms["appcall"], 0)
	if err != nil || got != 1 {
		t.Errorf("appcall after blocked attack = %d, %v; want 1", got, err)
	}
}

func leBytes(vals ...uint32) []byte {
	out := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// TestForkedAppInheritsProtection checks Section 4.5.2: a promoted
// application's fork stays at SPL 2 with its page privileges intact.
func TestForkedAppInheritsProtection(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	secret, _ := a.P.Mmap(s.K, 0, mem.PageSize, true, "secret")
	if err := a.P.Touch(s.K, secret, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	child, err := s.K.Fork(a.P)
	if err != nil {
		t.Fatal(err)
	}
	if child.TaskSPL != 2 {
		t.Error("forked clone must continue at SPL 2")
	}
	if child.AS.Lookup(secret).User() {
		t.Error("forked clone's secret page must stay PPL 0")
	}
	// Exec resets (new processes "by default should start at SPL 3").
	if err := s.K.Exec(child); err != nil {
		t.Fatal(err)
	}
	if child.TaskSPL != 3 {
		t.Error("exec must reset the clone to SPL 3")
	}
}

// TestExtensionUsesLibcMemcpyOnSharedArea exercises a realistic
// extension: it memcpy's between two shared buffers via the PLT.
func TestExtensionUsesLibcMemcpyOnSharedArea(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, `
		.global copy16
		.text
		copy16:
			mov eax, [esp+4]     ; arg block: [dst][src]
			push 16
			push [eax+4]
			push [eax]
			call memcpy
			add esp, 12
			ret
	`)
	pf := mustSym(t, a, h, "copy16")
	shared, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := shared, shared+256
	if err := a.WriteString(src, "segmentation+pg"); err != nil {
		t.Fatal(err)
	}
	args, _ := a.XAlloc(8)
	a.WriteMem(args, leBytes(dst, src))
	if _, err := pf.Call(args); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadString(dst, 32)
	if got != "segmentation+pg" {
		t.Errorf("memcpy result = %q", got)
	}
}

// TestTwoExtensionModulesNoMutualProtection documents the stated
// non-goal: "among extension modules, the protection is only for
// safety but not for security" — two user extensions of one app can
// touch each other's PPL-1 data.
func TestTwoExtensionModulesNoMutualProtection(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h1 := mustOpen(t, a, `
		.global get
		.text
		get:
			mov eax, [stash]
			ret
		.data
		.global stash
		stash: .word 7
	`)
	stashAddr, err := a.Dlsym(h1, "stash")
	if err != nil {
		t.Fatal(err)
	}
	h2 := mustOpen(t, a, `
		.global poke
		.text
		poke:
			mov eax, [esp+4]
			mov [eax], 99
			ret
	`)
	poke := mustSym(t, a, h2, "poke")
	if _, err := poke.Call(stashAddr); err != nil {
		t.Fatalf("cross-extension write should be allowed: %v", err)
	}
	get := mustSym(t, a, h1, "get")
	if got, _ := get.Call(0); got != 99 {
		t.Errorf("stash = %d, want 99 (modules share the PPL-1 domain)", got)
	}
}

// TestXAllocExhaustion covers the xmalloc heap bound.
func TestXAllocExhaustion(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	if _, err := a.XAlloc(64 * mem.PageSize); err != nil {
		t.Fatal("first large xalloc should fit")
	}
	if _, err := a.XAlloc(16); err == nil {
		t.Error("exhausted xmalloc heap must error")
	}
}

// TestProtectedCallGapConstantAcrossArgs pins the Table 2 observation
// that the protected-unprotected difference is constant (~142 cycles)
// regardless of the argument value.
func TestProtectedCallGapConstantAcrossArgs(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	h := mustOpen(t, a, incSrc)
	pf := mustSym(t, a, h, "inc")
	raw, _ := a.Dlsym(h, "inc")
	pf.Call(0)                // warm
	a.CallUnprotected(raw, 0) // warm
	clock := s.Clock()
	var gaps []float64
	for _, arg := range []uint32{0, 1, 1 << 20, 0xFFFF_FFFF} {
		var protErr error
		prot := clock.Span(func() { _, protErr = pf.Call(arg) })
		unprot := clock.Span(func() { _, _ = a.CallUnprotected(raw, arg) })
		if protErr != nil {
			t.Fatal(protErr)
		}
		gaps = append(gaps, prot-unprot)
	}
	for _, g := range gaps[1:] {
		if g != gaps[0] {
			t.Fatalf("gap varies with argument: %v", gaps)
		}
	}
	if gaps[0] < 130 || gaps[0] > 160 {
		t.Errorf("protected-unprotected gap = %v cycles, paper ~118-153", gaps[0])
	}
}

// TestKernelServiceRunsOnCallersKernelStack checks the Section 4.3
// statement that kernel services invoked by extensions execute on the
// kernel stack of the triggering user process.
func TestKernelServiceRunsOnCallersKernelStack(t *testing.T) {
	s := newSystem(t)
	p, _ := s.K.CreateProcess()
	var sawESP uint32
	s.K.RegisterKernelService(9, func(k *kernel.Kernel, proc *kernel.Process, _, _, _ uint32) uint32 {
		sawESP = k.Machine.Reg(isa.ESP)
		return 0
	})
	seg, _ := s.NewExtSegment("svc", 0)
	s.Insmod(seg, isa.MustAssemble("m", `
		.global callsvc
		.text
		callsvc:
			mov eax, 9
			int 0x81
			ret
	`))
	f, _ := s.ExtensionFunction("callsvc")
	if _, err := f.Invoke(0); err != nil {
		t.Fatal(err)
	}
	top := p.KStackTop - kernel.KernelBase
	if sawESP == 0 || sawESP > top || top-sawESP > mem.PageSize {
		t.Errorf("service ESP = %#x, expected within the caller's kernel stack (top %#x)", sawESP, top)
	}
}
