package core

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// TestExtensibleApplicationScenario drives a realistic extensible-
// application session end to end, in the spirit of the paper's
// motivating examples (extensible databases, Apache modules): one host
// application, two third-party extensions with different quality, an
// application service, shared data areas, a protection incident, and
// continued operation afterwards.
func TestExtensibleApplicationScenario(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)

	// The application keeps private state and exposes a logging
	// service (its stand-in for the fprintf-style buffering API).
	private, err := a.P.Mmap(s.K, 0, mem.PageSize, true, "db-state")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteString(private, "customer records"); err != nil {
		t.Fatal(err)
	}
	var logCount int
	if err := a.ExposeService("svc_log", func(arg uint32) uint32 {
		logCount++
		return uint32(logCount)
	}); err != nil {
		t.Fatal(err)
	}

	// Extension #1: a well-behaved "data blade" that checksums a
	// record placed in the shared area and logs through the service.
	h1 := mustOpen(t, a, `
		.global blade
		.text
		blade:
			mov edx, [esp+4]     ; shared record
			mov ecx, 16
			mov eax, 0
		sum:
			movb ebx, [edx]
			add eax, ebx
			inc edx
			dec ecx
			jne sum
			push eax
			lcall svc_log
			pop ecx
			ret
	`)
	blade := mustSym(t, a, h1, "blade")
	shared, err := a.SharedAlloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	record := make([]byte, 16)
	var want uint32
	for i := range record {
		record[i] = byte(i + 1)
		want += uint32(i + 1)
	}
	if err := a.WriteMem(shared, record); err != nil {
		t.Fatal(err)
	}
	got, err := blade.Call(shared)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 { // the log service returns its call count
		t.Errorf("blade returned %d (service count), want 1", got)
	}
	if logCount != 1 {
		t.Errorf("service invoked %d times", logCount)
	}

	// Extension #2: buggy — it walks past the shared record into the
	// application's private pages.
	h2 := mustOpen(t, a, `
		.global rogue
		.text
		rogue:
			mov edx, [esp+4]
		scan:
			movb eax, [edx]
			inc edx
			jmp scan
	`)
	rogue := mustSym(t, a, h2, "rogue")
	var incidents []kernel.SignalInfo
	a.P.SignalHandler = func(si kernel.SignalInfo) { incidents = append(incidents, si) }
	if _, err := rogue.Call(private); !errors.Is(err, ErrExtensionFault) {
		t.Fatalf("rogue scan of private data: err = %v", err)
	}
	if len(incidents) != 1 || incidents[0].Sig != kernel.SIGSEGV {
		t.Fatalf("incidents = %+v", incidents)
	}

	// Quarantine the buggy component (CBSD pitch from the intro: the
	// fault is attributable to the module, so unload just it)...
	if err := a.SegDlclose(h2); err != nil {
		t.Fatal(err)
	}
	// ...and the good one keeps serving.
	if got, err := blade.Call(shared); err != nil || got != 2 {
		t.Fatalf("blade after quarantine: %d, %v", got, err)
	}
	// Private state was never touched.
	state, _ := a.ReadString(private, 32)
	if state != "customer records" {
		t.Errorf("private state = %q", state)
	}
	_ = want
}

// TestMixedUserAndKernelExtensions runs both mechanisms in one system
// simultaneously: the web-server style user extension and the packet-
// filter style kernel extension share the machine and the clock.
func TestMixedUserAndKernelExtensions(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)

	h := mustOpen(t, a, incSrc)
	userFn := mustSym(t, a, h, "inc")

	seg, err := s.NewExtSegment("mixed", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("k", `
		.global kdouble
		.text
		kdouble:
			mov eax, [esp+4]
			add eax, eax
			ret
	`)); err != nil {
		t.Fatal(err)
	}
	kernFn, _ := s.ExtensionFunction("kdouble")

	// Interleave invocations across the two privilege structures.
	for i := uint32(1); i <= 8; i++ {
		u, err := userFn.Call(i)
		if err != nil || u != i+1 {
			t.Fatalf("user call %d: %d, %v", i, u, err)
		}
		k, err := kernFn.Invoke(i)
		if err != nil || k != 2*i {
			t.Fatalf("kernel call %d: %d, %v", i, k, err)
		}
	}

	// A kernel-extension fault must not disturb the user mechanism,
	// and vice versa.
	seg2, _ := s.NewExtSegment("bad", 0)
	s.Insmod(seg2, isa.MustAssemble("b", `
		.global kbad
		.text
		kbad:
			mov eax, [0x3000000]
			ret
	`))
	bad, _ := s.ExtensionFunction("kbad")
	if _, err := bad.Invoke(0); !errors.Is(err, ErrKernelExtensionAborted) {
		t.Fatalf("kbad: %v", err)
	}
	if u, err := userFn.Call(10); err != nil || u != 11 {
		t.Fatalf("user mechanism damaged by kernel fault: %d, %v", u, err)
	}
	if k, err := kernFn.Invoke(10); err != nil || k != 20 {
		t.Fatalf("good kernel segment damaged: %d, %v", k, err)
	}
}

// TestManyProtectedFunctions stresses stub generation: dozens of
// extension functions, each with its own Prepare/Transfer pair, all
// dispatching correctly.
func TestManyProtectedFunctions(t *testing.T) {
	s := newSystem(t)
	a := newApp(t, s)
	src := ".global f0, f1, f2, f3, f4, f5, f6, f7, f8, f9\n.text\n"
	for i := 0; i < 10; i++ {
		src += stubFn(i)
	}
	h := mustOpen(t, a, src)
	for i := 0; i < 10; i++ {
		pf := mustSym(t, a, h, fn(i))
		got, err := pf.Call(100)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint32(100+i) {
			t.Errorf("%s(100) = %d, want %d", fn(i), got, 100+i)
		}
	}
}

func fn(i int) string { return string(rune('f')) + string(rune('0'+i)) }

func stubFn(i int) string {
	return fn(i) + ":\n\tmov eax, [esp+4]\n\tadd eax, " +
		string(rune('0'+i)) + "\n\tret\n"
}
