package core

import "repro/internal/mem"

// Exported segment-layout facts consumed by the load-time static
// verifier (package sandbox builds verify.Layouts from them). They
// restate the unexported placement constants of kernelext.go and the
// extension-stack sizing of app.go so the verifier's model of the
// protection domain cannot drift from the mechanism that enforces it.
const (
	// KernelExtStackTop is the exclusive end of the per-segment
	// extension stack: the argument slot sits at KernelExtStackTop-4
	// and the extension enters with ESP = KernelExtStackTop-8 (the
	// transfer stub's CALL has pushed the return address).
	KernelExtStackTop = segStackTop
	// KernelExtStackBottom is the inclusive start of the per-segment
	// extension stack (below it lies only the Prepare stub's scratch
	// save area).
	KernelExtStackBottom = segStackOff
	// UserExtStackBytes is the size of the PPL-1 extension stack a
	// promoted application maps for its user-level extensions; the
	// argument slot sits at the top word and extensions enter with
	// ESP = top-8.
	UserExtStackBytes = 16 * mem.PageSize
)
