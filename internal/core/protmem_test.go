package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func TestProtectedRegionReadWrite(t *testing.T) {
	s := newSystem(t)
	r, err := s.NewProtectedRegion("journal", 2*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if f := r.Write(100, []byte("checkpoint")); f != nil {
		t.Fatal(f)
	}
	got, f := r.Read(100, 10)
	if f != nil {
		t.Fatal(f)
	}
	if string(got) != "checkpoint" {
		t.Errorf("round trip = %q", got)
	}
	// Spanning a page boundary within the region works.
	if f := r.Write(mem.PageSize-4, []byte("boundary")); f != nil {
		t.Fatal(f)
	}
}

func TestProtectedRegionStopsWildPointers(t *testing.T) {
	s := newSystem(t)
	r, err := s.NewProtectedRegion("state", mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// An adjacent region holding data a wild pointer would corrupt.
	neighbour, err := s.NewProtectedRegion("neighbour", mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if f := neighbour.Write(0, []byte("intact")); f != nil {
		t.Fatal(f)
	}
	// A write that runs past the region's end (classic overrun).
	f := r.Write(mem.PageSize-4, []byte("overrunning!"))
	if f == nil || f.Kind != mmu.GP {
		t.Fatalf("overrun = %v, want #GP (segment limit)", f)
	}
	// A wildly out-of-bounds offset.
	if f := r.Write(0x100000, []byte{1}); f == nil || f.Kind != mmu.GP {
		t.Fatalf("wild write = %v, want #GP", f)
	}
	if _, f := r.Read(0xFFFF_0000, 4); f == nil || f.Kind != mmu.GP {
		t.Fatalf("wild read = %v, want #GP", f)
	}
	// The neighbour never saw any of it.
	got, _ := neighbour.Read(0, 6)
	if string(got) != "intact" {
		t.Errorf("neighbour corrupted: %q", got)
	}
}

func TestProtectedRegionChargesSegRegLoad(t *testing.T) {
	s := newSystem(t)
	r, err := s.NewProtectedRegion("x", mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessOverhead() != 12 {
		t.Errorf("overhead = %v, want the 12-cycle segment register load", r.AccessOverhead())
	}
	before := s.Clock().Cycles()
	r.Write(0, []byte{1})
	if got := s.Clock().Cycles() - before; got < 12 {
		t.Errorf("write charged %v cycles, must include the segment reload", got)
	}
}

func TestProtectedRegionBoundsProperty(t *testing.T) {
	// Property: an n-byte access at offset off succeeds iff
	// off+n <= size (no overflow), for arbitrary offsets.
	s := newSystem(t)
	const size = mem.PageSize
	r, err := s.NewProtectedRegion("p", size)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, nRaw uint8) bool {
		n := uint32(nRaw%16) + 1
		_, fault := r.Read(off, n)
		end := uint64(off) + uint64(n) - 1
		want := end < size
		return (fault == nil) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProtectedRegionErrors(t *testing.T) {
	s := newSystem(t)
	if _, err := s.NewProtectedRegion("zero", 0); err == nil {
		t.Error("zero-size region must be rejected")
	}
	// Regions work under the manual cost model too.
	s2, err := NewSystem(cycles.Manual())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s2.NewProtectedRegion("m", mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessOverhead() != 2.5 {
		t.Errorf("manual-model overhead = %v, want 2.5", r.AccessOverhead())
	}
}
