package core

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// Reserved app-space addresses (below the 3 GB user limit).
const (
	// appRetBreak is the sentinel return address for protected calls:
	// when the AppCallGate stub's final ret lands here, control is
	// back in the trusted application.
	appRetBreak = 0xB7FE_0000
	// appSvcBase is where application-service endpoints are allocated.
	appSvcBase = 0xB7FD_0000
)

// ErrExtensionFault reports that an extension invocation was aborted
// because the extension violated its protection domain; the
// application received SIGSEGV (Section 4.5.2).
var ErrExtensionFault = errors.New("palladium: extension protection violation")

// ErrTimeLimit reports that an extension exceeded its per-invocation
// CPU-time limit and was aborted.
var ErrTimeLimit = errors.New("palladium: extension time limit exceeded")

// App is an extensible application: a trusted core program (Go code)
// plus the Palladium machinery for loading and invoking untrusted
// SPL-3 extensions in its own address space.
type App struct {
	S  *System
	P  *kernel.Process
	DL *loader.DL
	// Libc is the shared C library mapped per Section 4.4.1: text at
	// PPL 1 (extensions call non-buffering routines directly), data
	// at PPL 0.
	Libc *loader.Image

	promoted bool
	stubs    *stubArena
	spSave   uint32 // SP2 save slot (PPL 0)
	bpSave   uint32 // BP2 save slot

	extStackTop uint32
	argSlot     uint32

	appGateSel  mmu.Selector
	gateAddr    uint32
	callStack   uint32 // app-side stack top for protected-call stubs
	svcNext     uint32
	xheap       uint32
	xheapEnd    uint32
	maxInstr    uint64
	handleCount int

	// intraCaller is the lazily built stub used by the Table-1
	// intra-domain measurement.
	intraCaller uint32
	intraTarget uint32
}

// ProtectedFunc is what seg_dlsym returns: a handle whose address is
// the extension function's Prepare routine rather than the function
// itself (Section 4.5.1).
type ProtectedFunc struct {
	App  *App
	Name string
	// Stub and function addresses (exported for the measurement
	// harness that regenerates Table 1).
	PrepareAddr  uint32
	TransferAddr uint32
	FnAddr       uint32
}

// NewApp creates a process hosting an extensible application and maps
// the shared libc.
func NewApp(s *System) (*App, error) {
	p, err := s.K.CreateProcess()
	if err != nil {
		return nil, err
	}
	a := &App{S: s, P: p, maxInstr: 10_000_000}
	a.DL = loader.NewDL(s.K, p)
	if _, a.Libc, err = a.DL.Dlopen(loader.Libc(), loader.LibraryOptions()); err != nil {
		return nil, fmt.Errorf("palladium: mapping libc: %w", err)
	}
	return a, nil
}

// InitPL promotes the application to SPL 2 (Section 4.4.1): all its
// writable pages drop to PPL 0, the extension stack and the
// stack-pointer save area are created, and the per-application
// AppCallGate routine and its call gate are installed.
func (a *App) InitPL() error {
	if a.promoted {
		return fmt.Errorf("palladium: init_PL called twice")
	}
	k, p := a.S.K, a.P
	if err := k.InitPL(p); err != nil {
		return err
	}

	// Save area for the application's stack/base pointers: one
	// writable page => PPL 0, invisible to extensions.
	save, err := p.Mmap(k, 0, mem.PageSize, true, "palladium.save")
	if err != nil {
		return err
	}
	if err := p.Touch(k, save, mem.PageSize); err != nil {
		return err
	}
	a.spSave, a.bpSave = save, save+4

	// The extension stack: PPL 1 so SPL-3 code can use it. One stack
	// per application; extensions run to completion, single threaded.
	xstack, err := p.MmapPPL1(k, 0, 16*mem.PageSize, true, "palladium.xstack")
	if err != nil {
		return err
	}
	if err := p.Touch(k, xstack, 16*mem.PageSize); err != nil {
		return err
	}
	a.extStackTop = xstack + 16*mem.PageSize
	a.argSlot = a.extStackTop - 4

	// The extension heap backing xmalloc (Section 4.4.2).
	xheap, err := p.MmapPPL1(k, 0, 64*mem.PageSize, true, "palladium.xheap")
	if err != nil {
		return err
	}
	if err := p.Touch(k, xheap, 64*mem.PageSize); err != nil {
		return err
	}
	a.xheap, a.xheapEnd = xheap, xheap+64*mem.PageSize

	// Application-side stack used while the Prepare stub runs.
	if err := p.Touch(k, kernel.StackTop-4*mem.PageSize, 4*mem.PageSize); err != nil {
		return err
	}
	a.callStack = kernel.StackTop

	// Stub arena (read-only, PPL 1: extensions may fetch stub code,
	// which is harmless — lret cannot raise privilege).
	a.stubs, err = newStubArena(a.DL.Space(), "palladium.stubs", 16*mem.PageSize)
	if err != nil {
		return err
	}
	syms, err := a.stubs.add("appcallgate", appCallGateSrc(a.spSave, a.bpSave))
	if err != nil {
		return err
	}
	a.gateAddr = syms["appcallgate"]
	a.appGateSel, err = k.InstallCallGate(3, kernel.ACodeSel, a.gateAddr)
	if err != nil {
		return err
	}
	a.svcNext = appSvcBase
	a.promoted = true
	return nil
}

// SegDlopen is the safe dynamic-loading entry point (Section 4.4.2):
// dlopen with extension placement (everything at PPL 1) plus the PPL
// marking pass whose cost makes seg_dlopen slightly dearer than plain
// dlopen (420 vs 400 microseconds in the paper).
func (a *App) SegDlopen(obj *isa.Object) (int, error) {
	if !a.promoted {
		return 0, fmt.Errorf("palladium: seg_dlopen before init_PL")
	}
	h, im, err := a.DL.Dlopen(obj, loader.ExtensionOptions())
	if err != nil {
		return 0, err
	}
	// PPL marking of the module's pages (already PPL 1 by placement;
	// the explicit pass reproduces the marking cost).
	k := a.S.K
	pages := (im.TextLen*isa.InstrSlot + int(im.DataSize) + int(im.GOTSize)) / mem.PageSize
	k.Clock.Add(k.Costs.PPLMarkStart + k.Costs.PPLMarkPerPage*float64(pages+1))
	a.handleCount++
	return h, nil
}

// SegDlsym resolves an extension *function* symbol: it synthesizes the
// function's Prepare and Transfer routines and returns a handle whose
// callable address is Prepare. Data symbols must use Dlsym instead
// (Section 4.4.2).
func (a *App) SegDlsym(handle int, name string) (*ProtectedFunc, error) {
	if !a.promoted {
		return nil, fmt.Errorf("palladium: seg_dlsym before init_PL")
	}
	fnAddr, err := a.DL.Dlsym(handle, name)
	if err != nil {
		return nil, err
	}
	src := prepareTransferSrc(
		a.argSlot, a.spSave, a.bpSave,
		uint32(kernel.UDataSel), a.argSlot,
		uint32(kernel.UCodeSel),
		fnAddr, uint16(a.appGateSel),
	)
	syms, err := a.stubs.addPrepareTransfer(name, src)
	if err != nil {
		return nil, err
	}
	return &ProtectedFunc{
		App: a, Name: name,
		PrepareAddr: syms.Prepare, TransferAddr: syms.Transfer, FnAddr: fnAddr,
	}, nil
}

// Dlsym resolves a data symbol to its raw address (pointers to data
// need no massaging because application and extension segments share
// the same base).
func (a *App) Dlsym(handle int, name string) (uint32, error) {
	return a.DL.Dlsym(handle, name)
}

// SegDlclose unloads an extension module.
func (a *App) SegDlclose(handle int) error { return a.DL.Dlclose(handle) }

// SharedAlloc maps a shared data area visible to both the application
// and its extensions. The size must be a multiple of the page size
// (Section 4.4.1: "the size of the shared data area be a multiple of
// the page size").
func (a *App) SharedAlloc(n uint32) (uint32, error) {
	if n == 0 || n%mem.PageSize != 0 {
		return 0, fmt.Errorf("palladium: shared area size %d not a multiple of the page size", n)
	}
	addr, err := a.P.MmapPPL1(a.S.K, 0, n, true, "palladium.shared")
	if err != nil {
		return 0, err
	}
	if err := a.P.Touch(a.S.K, addr, n); err != nil {
		return 0, err
	}
	return addr, nil
}

// XAlloc is the trusted side of xmalloc: it carves memory out of the
// PPL-1 extension heap so extension-visible structures land in the
// extension's domain.
func (a *App) XAlloc(n uint32) (uint32, error) {
	n = (n + 15) &^ 15
	if a.xheap+n > a.xheapEnd {
		return 0, fmt.Errorf("palladium: xmalloc heap exhausted")
	}
	addr := a.xheap
	a.xheap += n
	return addr, nil
}

// WriteMem / ReadMem give the trusted application access to its own
// address space (it is Go code; real applications would just
// dereference).
func (a *App) WriteMem(addr uint32, b []byte) error {
	return a.S.K.CopyToUser(a.P, addr, b)
}

// ReadMem reads n bytes at addr.
func (a *App) ReadMem(addr uint32, n int) ([]byte, error) {
	return a.S.K.CopyFromUser(a.P, addr, n)
}

// ReadMemInto reads len(buf) bytes at addr into a caller-owned buffer
// without allocating; the charges are identical to ReadMem's.
func (a *App) ReadMemInto(addr uint32, buf []byte) error {
	return a.S.K.CopyFromUserInto(a.P, addr, buf)
}

// WriteString writes a NUL-terminated string.
func (a *App) WriteString(addr uint32, s string) error {
	return a.WriteMem(addr, append([]byte(s), 0))
}

// ReadString reads a NUL-terminated string of at most max bytes.
func (a *App) ReadString(addr uint32, max int) (string, error) {
	b, err := a.ReadMem(addr, max)
	if err != nil {
		return "", err
	}
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), nil
		}
	}
	return string(b), nil
}

// ExposeService publishes an application service (Section 4.4.2):
// a call gate whose target is the trusted handler, plus a symbol so
// extensions can `lcall name`. The handler receives the 4-byte
// argument the extension pushed on its own stack and returns a 4-byte
// result (larger structures travel through shared data areas).
func (a *App) ExposeService(name string, fn func(arg uint32) uint32) error {
	if !a.promoted {
		return fmt.Errorf("palladium: ExposeService before init_PL")
	}
	addr := a.svcNext
	a.svcNext += 16
	k := a.S.K
	k.Machine.RegisterService(addr, &cpu.Service{
		Name: name, Kind: cpu.ServiceCallGate,
		Handler: func(m *cpu.Machine) error {
			// Gate frame (inner stack): [EIP][CS][ESP][SS]. The
			// caller pushed the argument on its own (extension)
			// stack immediately before the lcall, so it sits at
			// [oldESP] — lcall left nothing on the outer stack.
			oldESP, f := m.Peek(8)
			if f != nil {
				return f
			}
			arg, f := m.MMU.Read32(m.DS, oldESP, m.CPL())
			if f != nil {
				return f
			}
			m.SetReg(isa.EAX, fn(arg))
			return nil
		},
	})
	gate, err := k.InstallCallGate(3, kernel.ACodeSel, addr)
	if err != nil {
		return err
	}
	// Publish the gate selector under the service name: extension
	// code assembles `lcall name`.
	a.DL.Define(name, uint32(gate))
	return nil
}

// Call invokes a protected extension function: the full Figure-6 cycle
// (Prepare -> lret -> Transfer -> function -> Transfer -> lcall ->
// AppCallGate -> ret). Faults and time-limit violations abort the
// extension and surface as errors after SIGSEGV/SIGXCPU delivery.
func (pf *ProtectedFunc) Call(arg uint32) (uint32, error) {
	a := pf.App
	if !a.promoted {
		return 0, fmt.Errorf("palladium: call before init_PL")
	}
	k := a.S.K
	k.Switch(a.P)
	m := k.Machine
	saved := m.SaveContext()
	defer m.RestoreContext(saved)

	m.CS = kernel.ACodeSel
	m.DS = kernel.UDataSel
	m.ES = kernel.UDataSel
	m.SS = kernel.ADataSel
	m.Regs[isa.ESP] = a.callStack
	m.EIP = pf.PrepareAddr
	if f := m.Push(arg); f != nil {
		return 0, f
	}
	if f := m.Push(appRetBreak); f != nil {
		return 0, f
	}
	m.SetBreak(appRetBreak)
	defer m.ClearBreak(appRetBreak)

	// Arm the per-invocation CPU-time limit (Section 4.5.2). The
	// kernel's built-in limiter replaces a per-call tick-subscriber
	// closure, keeping the steady-state serving path allocation-free.
	prevLimit := k.ArmExtLimit(k.Clock.Cycles() + k.ExtTimeLimit)
	defer k.DisarmExtLimit(prevLimit)

	for {
		res := m.Run(cpu.RunLimits{MaxInstructions: a.maxInstr})
		switch res.Reason {
		case cpu.StopBreak:
			return m.Reg(isa.EAX), nil
		case cpu.StopFault:
			switch k.HandleFault(a.P, res.Fault) {
			case kernel.Retry:
				continue
			case kernel.SignalDelivered:
				// Both the sentinel and the hardware fault are wrapped
				// (the message is unchanged) so callers — notably the
				// sandbox fault taxonomy — can errors.As the *mmu.Fault
				// out of the chain.
				return 0, fmt.Errorf("%w: %w", ErrExtensionFault, res.Fault)
			default:
				return 0, res.Fault
			}
		case cpu.StopError:
			if errors.Is(res.Err, kernel.ErrExtTimeBudget) || errors.Is(res.Err, ErrTimeLimit) {
				k.DeliverSignal(a.P, kernel.SignalInfo{Sig: kernel.SIGXCPU, Reason: "extension time limit"})
				return 0, ErrTimeLimit
			}
			return 0, res.Err
		default:
			return 0, fmt.Errorf("palladium: extension run stopped: %v", res.Reason)
		}
	}
}

// CallUnprotected invokes the raw extension function with an ordinary
// intra-domain call at the application's privilege level — the
// baseline Table 1 and Table 2 compare against. It bypasses every
// Palladium transfer stub.
func (a *App) CallUnprotected(fnAddr uint32, arg uint32) (uint32, error) {
	k := a.S.K
	k.Switch(a.P)
	m := k.Machine
	saved := m.SaveContext()
	defer m.RestoreContext(saved)

	m.CS = kernel.ACodeSel
	m.DS = kernel.UDataSel
	m.ES = kernel.UDataSel
	m.SS = kernel.ADataSel
	m.Regs[isa.ESP] = a.callStack
	m.Regs[isa.ECX] = arg
	m.EIP = fnAddr
	if f := m.Push(arg); f != nil {
		return 0, f
	}
	if f := m.Push(appRetBreak); f != nil {
		return 0, f
	}
	m.SetBreak(appRetBreak)
	defer m.ClearBreak(appRetBreak)
	for {
		res := m.Run(cpu.RunLimits{MaxInstructions: a.maxInstr})
		switch res.Reason {
		case cpu.StopBreak:
			return m.Reg(isa.EAX), nil
		case cpu.StopFault:
			if k.HandleFault(a.P, res.Fault) == kernel.Retry {
				continue
			}
			return 0, res.Fault
		case cpu.StopError:
			// Surface run errors (e.g. an adapter-armed time limit)
			// unwrapped so errors.Is can classify them.
			return 0, res.Err
		default:
			return 0, fmt.Errorf("palladium: unprotected run stopped: %v (%v)", res.Reason, res.Err)
		}
	}
}
