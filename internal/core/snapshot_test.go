package core

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/loader"
)

// scribbleEscapeSrc writes into its own data, then escapes the 16 MB
// segment: a rollback must undo both the scribble and every kernel
// cost charged on the way.
const scribbleEscapeSrc = `
	.global scribble_escape
	.text
	scribble_escape:
		mov [counter], 777
		mov eax, [0x2000000]   ; 32 MB: beyond the 16 MB segment
		ret
	.data
	.global counter
	counter: .word 0
`

const incOnceSrc = `
	.global add_one
	.text
	add_one:
		mov eax, [esp+4]
		add eax, 1
		ret
`

// sysState captures every simulated observable the rollback contract
// must restore.
type sysState struct {
	memFP   uint64
	cycles  float64
	instret uint64
	hits    uint64
	misses  uint64
	flushes uint64
}

func captureSys(s *System) sysState {
	h, m, f := s.K.MMU.TLB().Stats()
	return sysState{
		memFP:   s.K.Phys.Fingerprint(),
		cycles:  s.K.Clock.Cycles(),
		instret: s.K.Machine.Instructions(),
		hits:    h, misses: m, flushes: f,
	}
}

// TestInvokeTxRollsBackFaultingExtension is the rollback anchor: after
// a faulting transactional invocation, memory (protected and kernel
// bytes included), the clock, the instruction counter and the TLB
// statistics are exactly the pre-call state; the segment stays alive
// and the victim still serves.
func TestInvokeTxRollsBackFaultingExtension(t *testing.T) {
	s := newSystem(t)
	if _, err := s.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	seg, err := s.NewExtSegment("tx", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("scribbler", scribbleEscapeSrc)); err != nil {
		t.Fatal(err)
	}
	good, err := s.NewExtSegment("good", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insmod(good, isa.MustAssemble("inc", incOnceSrc)); err != nil {
		t.Fatal(err)
	}
	bad, _ := s.ExtensionFunction("scribble_escape")
	inc, _ := s.ExtensionFunction("add_one")

	// Warm both paths so the pre-call state is mid-life, not boot.
	if got, err := inc.Invoke(41); err != nil || got != 42 {
		t.Fatalf("warm invoke = %d, %v", got, err)
	}

	before := captureSys(s)
	_, err = bad.InvokeTx(0)
	if !errors.Is(err, ErrKernelExtensionRolledBack) {
		t.Fatalf("InvokeTx = %v, want ErrKernelExtensionRolledBack", err)
	}
	after := captureSys(s)
	if after != before {
		t.Errorf("rollback incomplete:\n before %+v\n after  %+v", before, after)
	}
	if seg.Aborted() {
		t.Error("segment aborted despite rollback")
	}
	if _, ok := s.ExtensionFunction("scribble_escape"); !ok {
		t.Error("EFT entry vanished despite rollback")
	}

	// The victim still serves: the good extension keeps working with
	// the exact state it had before the attack.
	if got, err := inc.Invoke(99); err != nil || got != 100 {
		t.Errorf("victim invoke after rollback = %d, %v", got, err)
	}
	// And the faulty one can be retried (and rolls back again).
	if _, err := bad.InvokeTx(0); !errors.Is(err, ErrKernelExtensionRolledBack) {
		t.Errorf("second InvokeTx = %v, want rollback", err)
	}
}

// TestInvokeTxSuccessMatchesInvoke: on the happy path the transaction
// wrapper must be invisible — same result, same cycles.
func TestInvokeTxSuccessMatchesInvoke(t *testing.T) {
	build := func() (*System, *KernelExtensionFunc) {
		s := newSystem(t)
		if _, err := s.K.CreateProcess(); err != nil {
			t.Fatal(err)
		}
		seg, err := s.NewExtSegment("m", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insmod(seg, isa.MustAssemble("inc", incOnceSrc)); err != nil {
			t.Fatal(err)
		}
		f, _ := s.ExtensionFunction("add_one")
		return s, f
	}
	s1, f1 := build()
	s2, f2 := build()
	r1, err1 := f1.Invoke(7)
	r2, err2 := f2.InvokeTx(7)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if r1 != r2 {
		t.Errorf("results differ: %d vs %d", r1, r2)
	}
	if c1, c2 := s1.K.Clock.Cycles(), s2.K.Clock.Cycles(); c1 != c2 {
		t.Errorf("cycles differ: Invoke %v, InvokeTx %v", c1, c2)
	}
	if s1.K.Phys.Fingerprint() != s2.K.Phys.Fingerprint() {
		t.Errorf("memory differs between Invoke and InvokeTx")
	}
}

// TestSystemSnapshotRestoreDeterministic: invoking after a
// snapshot+restore reproduces the invocation bit-identically.
func TestSystemSnapshotRestoreDeterministic(t *testing.T) {
	s := newSystem(t)
	if _, err := s.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	seg, err := s.NewExtSegment("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insmod(seg, isa.MustAssemble("inc", incOnceSrc)); err != nil {
		t.Fatal(err)
	}
	f, _ := s.ExtensionFunction("add_one")
	if _, err := f.Invoke(0); err != nil { // warm
		t.Fatal(err)
	}

	snap := s.Snapshot()
	defer snap.Release()
	r1, err := f.Invoke(10)
	if err != nil {
		t.Fatal(err)
	}
	run1 := captureSys(s)

	s.Restore(snap)
	r2, err := f.Invoke(10)
	if err != nil {
		t.Fatal(err)
	}
	run2 := captureSys(s)
	if r1 != r2 || run1 != run2 {
		t.Errorf("replay diverged: results %d/%d\n run1 %+v\n run2 %+v", r1, r2, run1, run2)
	}
}

// TestRestoreReattachesStubArena: restoring to a snapshot taken
// BEFORE a segment's first module (stubs nil), then restoring forward
// to one taken after, must bring the stub arena back instead of
// leaving it detached (which would silently carve a second arena on
// the next Insmod).
func TestRestoreReattachesStubArena(t *testing.T) {
	s := newSystem(t)
	if _, err := s.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	seg, err := s.NewExtSegment("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	snapA := s.Snapshot()
	defer snapA.Release()

	if _, err := s.Insmod(seg, isa.MustAssemble("inc", incOnceSrc)); err != nil {
		t.Fatal(err)
	}
	if seg.stubs == nil {
		t.Fatal("no stub arena after Insmod")
	}
	wantCursor := seg.stubs.next
	snapB := s.Snapshot()
	defer snapB.Release()

	s.Restore(snapA)
	if seg.stubs != nil {
		t.Fatal("stub arena survived restore to pre-Insmod snapshot")
	}
	s.Restore(snapB)
	if seg.stubs == nil {
		t.Fatal("stub arena not re-attached by forward restore")
	}
	if seg.stubs.next != wantCursor {
		t.Errorf("arena cursor %#x, want %#x", seg.stubs.next, wantCursor)
	}
	f, ok := s.ExtensionFunction("add_one")
	if !ok {
		t.Fatal("EFT entry missing after forward restore")
	}
	if got, err := f.Invoke(1); err != nil || got != 2 {
		t.Errorf("invoke after forward restore = %d, %v", got, err)
	}
}

// TestExtSegmentFreeRangeReuse is the leak-regression test for the
// formerly no-op FreeRange: loading and unloading a module in a loop
// must reuse the same segment range instead of marching the placement
// cursor to exhaustion.
func TestExtSegmentFreeRangeReuse(t *testing.T) {
	s := newSystem(t)
	seg, err := s.NewExtSegment("reuse", 0)
	if err != nil {
		t.Fatal(err)
	}
	obj := isa.MustAssemble("mod", `
		.global f
		.text
		f:
			mov eax, 7
			ret
		.data
		.global buf
		buf: .space 8192
	`)
	resolve := func(string) (uint32, bool) { return 0, false }
	opts := loader.Options{GOT: true}

	im, err := loader.Load(obj, seg, resolve, opts)
	if err != nil {
		t.Fatal(err)
	}
	firstText := im.TextBase
	if err := im.Unload(); err != nil {
		t.Fatal(err)
	}
	cursor := seg.next
	for i := 0; i < 200; i++ {
		im, err := loader.Load(obj, seg, resolve, opts)
		if err != nil {
			t.Fatalf("iteration %d: %v (placement cursor leaked to %#x)", i, err, seg.next)
		}
		if im.TextBase != firstText {
			t.Fatalf("iteration %d: text at %#x, want reuse of %#x", i, im.TextBase, firstText)
		}
		if err := im.Unload(); err != nil {
			t.Fatal(err)
		}
	}
	if seg.next != cursor {
		t.Errorf("placement cursor leaked: %#x -> %#x over 200 load/unload cycles", cursor, seg.next)
	}
	if seg.ranges.freeBytes() == 0 {
		t.Error("free list empty after unload")
	}
}

// TestKernelTextFreeRangeReuse: the kernel text space recycles freed
// stub ranges instead of growing the kernel heap forever.
func TestKernelTextFreeRangeReuse(t *testing.T) {
	s := newSystem(t)
	ks := &kernelTextSpace{s: s}
	a, err := ks.AllocRange(3*4096, "a", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ks.FreeRange(a); err != nil {
		t.Fatal(err)
	}
	b, err := ks.AllocRange(4096, "b", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("freed range not reused: got %#x, want %#x", b, a)
	}
	c, err := ks.AllocRange(2*4096, "c", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if c != a+4096 {
		t.Errorf("remainder not reused: got %#x, want %#x", c, a+4096)
	}
	if err := ks.FreeRange(0xDEAD000); err == nil {
		t.Error("freeing an unallocated range must error")
	}
}
