// Snapshot-to-bytes serialization of a Palladium system and its
// extensible application. The byte image carries the kernel image
// (which carries the machine and the frame store) plus the core-level
// registries' mutable state: segment cursors, range lists, async
// queues, the Extension Function Table's live subset, stub-arena
// cursors. The structural skeleton — which segments exist, where they
// sit, which modules are loaded, which stubs were generated — is NOT
// reconstructed from bytes: LoadFrom restores into a deterministically
// booted twin and validates the image's skeleton against the twin's.
// An image saved from a machine whose post-boot history created new
// segments or loaded extra modules is rejected; palladium restores are
// boot-plus-overlay, not arbitrary-heap resurrection.
package core

import (
	"maps"
	"slices"

	"repro/internal/mem"
)

func saveRangeList(e *mem.Enc, r *rangeList) {
	e.U32(uint32(len(r.sizes)))
	for _, off := range slices.Sorted(maps.Keys(r.sizes)) {
		e.U32(off)
		e.U32(r.sizes[off])
	}
	e.U32(uint32(len(r.free)))
	for _, sp := range r.free {
		e.U32(sp.off)
		e.U32(sp.size)
	}
}

func loadRangeList(d *mem.Dec, what string) *rangeList {
	r := newRangeList()
	n := d.Len(what+" allocation", 1<<20)
	last := int64(-1)
	for i := 0; i < n; i++ {
		off := d.U32()
		size := d.U32()
		if d.Err() != nil {
			return nil
		}
		if int64(off) <= last {
			d.Failf("%s allocation %#x out of order", what, off)
			return nil
		}
		last = int64(off)
		r.sizes[off] = size
	}
	n = d.Len(what+" free span", 1<<20)
	last = -1
	for i := 0; i < n; i++ {
		sp := span{off: d.U32(), size: d.U32()}
		if d.Err() != nil {
			return nil
		}
		if int64(sp.off) <= last || sp.size == 0 {
			d.Failf("%s free span %#x malformed", what, sp.off)
			return nil
		}
		last = int64(sp.off)
		r.free = append(r.free, sp)
	}
	return r
}

// SaveTo appends the system image: the registries' mutable state first
// (pure decoding on the load side), the kernel — whose application is
// the load's point of no return — last.
func (s *System) SaveTo(e *mem.Enc) {
	e.U32(s.nextSeg)
	e.U32(uint32(len(s.segs)))
	for _, seg := range s.segs {
		e.String(seg.Name)
		e.U32(seg.Base)
		e.U32(seg.Limit)
		e.U16(uint16(seg.Code))
		e.U16(uint16(seg.Data))
		e.U32(uint32(len(seg.modules)))
		e.U32(seg.next)
		saveRangeList(e, seg.ranges)
		e.U32(uint32(len(seg.mapped)))
		for _, page := range slices.Sorted(maps.Keys(seg.mapped)) {
			e.U32(page)
		}
		e.Bool(seg.stubs != nil)
		if seg.stubs != nil {
			e.U32(seg.stubs.base)
			e.U32(seg.stubs.next)
			e.U32(seg.stubs.end)
		}
		e.Bool(seg.aborted)
		e.Bool(seg.busy)
		e.I32(int32(seg.QueueBound))
		e.U32(uint32(len(seg.queue)))
		for _, req := range seg.queue {
			e.String(req.fn.Name)
			e.U32(req.arg)
		}
	}
	// The EFT's live subset: an abort unregisters entry points, so the
	// image may hold fewer names than a fresh boot does.
	e.U32(uint32(len(s.eft)))
	for _, name := range slices.Sorted(maps.Keys(s.eft)) {
		e.String(name)
	}
	e.U32(s.kernPrep.base)
	e.U32(s.kernPrep.next)
	e.U32(s.kernPrep.end)
	saveRangeList(e, s.ktRanges)

	s.K.SaveTo(e)
}

// segImage is one decoded segment's mutable state.
type segImage struct {
	next       uint32
	ranges     *rangeList
	mapped     map[uint32]bool
	stubNext   uint32
	hasStubs   bool
	aborted    bool
	busy       bool
	queueBound int
	queue      []asyncReq
}

// LoadFrom decodes a SaveTo image into this system, which must be a
// deterministically booted twin (same boot path and post-boot segment/
// module history as the saved system's boot). The whole core-level
// image is decoded and validated against the twin's skeleton before
// the kernel — the first mutating step — loads; the core-level apply
// that follows cannot fail.
func (s *System) LoadFrom(d *mem.Dec) error {
	nextSeg := d.U32()
	nSegs := d.Len("extension segment", 1<<16)
	if d.Err() == nil && nSegs != len(s.segs) {
		d.Failf("image has %d extension segments, booted twin has %d", nSegs, len(s.segs))
	}
	if d.Err() != nil {
		return d.Err()
	}
	images := make([]segImage, nSegs)
	for i := 0; i < nSegs; i++ {
		seg := s.segs[i]
		si := &images[i]
		name := d.String()
		base := d.U32()
		limit := d.U32()
		code := d.U16()
		data := d.U16()
		nMods := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		if name != seg.Name || base != seg.Base || limit != seg.Limit ||
			code != uint16(seg.Code) || data != uint16(seg.Data) {
			d.Failf("segment %d is %q@%#x in image, %q@%#x in booted twin", i, name, base, seg.Name, seg.Base)
			return d.Err()
		}
		if int(nMods) != len(seg.modules) {
			d.Failf("segment %q holds %d modules in image, %d in booted twin", name, nMods, len(seg.modules))
			return d.Err()
		}
		si.next = d.U32()
		if si.ranges = loadRangeList(d, "segment"); si.ranges == nil {
			return d.Err()
		}
		nMapped := d.Len("mapped page", 1<<20)
		si.mapped = make(map[uint32]bool, nMapped)
		lastPage := int64(-1)
		for j := 0; j < nMapped; j++ {
			page := d.U32()
			if d.Err() != nil {
				return d.Err()
			}
			if int64(page) <= lastPage || page&uint32(mem.PageMask) != 0 {
				d.Failf("segment %q mapped page %#x malformed", name, page)
				return d.Err()
			}
			lastPage = int64(page)
			si.mapped[page] = true
		}
		si.hasStubs = d.Bool()
		if si.hasStubs {
			sbase := d.U32()
			si.stubNext = d.U32()
			send := d.U32()
			if d.Err() != nil {
				return d.Err()
			}
			if seg.stubs == nil || sbase != seg.stubs.base || send != seg.stubs.end {
				d.Failf("segment %q stub arena differs from booted twin's", name)
				return d.Err()
			}
			if si.stubNext < sbase || si.stubNext > send {
				d.Failf("segment %q stub cursor %#x outside arena", name, si.stubNext)
				return d.Err()
			}
		} else if seg.stubs != nil {
			d.Failf("segment %q has no stub arena in image but one in booted twin", name)
			return d.Err()
		}
		si.aborted = d.Bool()
		si.busy = d.Bool()
		si.queueBound = int(d.I32())
		nQueue := d.Len("async request", 1<<20)
		for j := 0; j < nQueue; j++ {
			fnName := d.String()
			arg := d.U32()
			if d.Err() != nil {
				return d.Err()
			}
			fn := s.eft[fnName]
			if fn == nil {
				d.Failf("queued request for %q not in booted twin's function table", fnName)
				return d.Err()
			}
			si.queue = append(si.queue, asyncReq{fn: fn, arg: arg})
		}
	}

	nEFT := d.Len("extension function", 1<<20)
	eftNames := make([]string, 0, nEFT)
	for i := 0; i < nEFT; i++ {
		name := d.String()
		if d.Err() != nil {
			return d.Err()
		}
		if s.eft[name] == nil {
			d.Failf("extension function %q not registered in booted twin", name)
			return d.Err()
		}
		eftNames = append(eftNames, name)
	}
	prepBase := d.U32()
	prepNext := d.U32()
	prepEnd := d.U32()
	if d.Err() == nil && (prepBase != s.kernPrep.base || prepEnd != s.kernPrep.end) {
		d.Failf("kernel stub arena differs from booted twin's")
	}
	if d.Err() == nil && (prepNext < prepBase || prepNext > prepEnd) {
		d.Failf("kernel stub cursor %#x outside arena", prepNext)
	}
	kt := loadRangeList(d, "kernel text")
	if kt == nil {
		return d.Err()
	}

	// The kernel is the point of no return: on success the machine,
	// memory and process table are the image's, and the core-level
	// apply below cannot fail.
	if err := s.K.LoadFrom(d); err != nil {
		return err
	}

	bootEFT := s.eft
	s.eft = make(map[string]*KernelExtensionFunc, len(eftNames))
	for _, name := range eftNames {
		s.eft[name] = bootEFT[name]
	}
	for i := range images {
		seg := s.segs[i]
		si := &images[i]
		seg.next = si.next
		seg.ranges = si.ranges
		seg.mapped = si.mapped
		if seg.stubs != nil {
			seg.stubs.next = si.stubNext
		}
		seg.aborted = si.aborted
		seg.busy = si.busy
		seg.QueueBound = si.queueBound
		seg.queue = si.queue
	}
	s.nextSeg = nextSeg
	s.kernPrep.next = prepNext
	s.ktRanges = kt
	return nil
}

// SaveTo appends the application's mutable state. The application's
// skeleton — its process, loaded modules, generated stubs — lives in
// the kernel image and the twin's boot; what the app object itself
// adds are addresses and cursors.
func (a *App) SaveTo(e *mem.Enc) {
	e.Bool(a.promoted)
	e.I32(int32(a.P.PID))
	e.U32(a.spSave)
	e.U32(a.bpSave)
	e.U32(a.extStackTop)
	e.U32(a.argSlot)
	e.U16(uint16(a.appGateSel))
	e.U32(a.gateAddr)
	e.U32(a.callStack)
	e.U32(a.svcNext)
	e.U32(a.xheap)
	e.U32(a.xheapEnd)
	e.U64(a.maxInstr)
	e.U32(uint32(a.handleCount))
	e.U32(a.intraCaller)
	e.U32(a.intraTarget)
	e.Bool(a.stubs != nil)
	if a.stubs != nil {
		e.U32(a.stubs.base)
		e.U32(a.stubs.next)
		e.U32(a.stubs.end)
	}
}

// LoadFrom decodes an application image against this booted twin app.
// Boot-structural fields must match (a mismatch means the twin was not
// booted the way the saved machine was); cursors restore. Must be
// called after the owning System.LoadFrom so the PID check sees the
// restored process table.
func (a *App) LoadFrom(d *mem.Dec) error {
	promoted := d.Bool()
	pid := int(d.I32())
	if d.Err() == nil && promoted != a.promoted {
		d.Failf("image app promoted=%v, booted twin promoted=%v", promoted, a.promoted)
	}
	if d.Err() == nil && pid != a.P.PID {
		d.Failf("image app is process %d, booted twin's is %d", pid, a.P.PID)
	}
	spSave := d.U32()
	bpSave := d.U32()
	extStackTop := d.U32()
	argSlot := d.U32()
	gateSel := d.U16()
	gateAddr := d.U32()
	callStack := d.U32()
	svcNext := d.U32()
	xheap := d.U32()
	xheapEnd := d.U32()
	maxInstr := d.U64()
	handleCount := int(d.U32())
	intraCaller := d.U32()
	intraTarget := d.U32()
	if d.Err() == nil && (gateSel != uint16(a.appGateSel) || gateAddr != a.gateAddr) {
		d.Failf("image app call gate %#x@%#x differs from booted twin's", gateSel, gateAddr)
	}
	if d.Err() == nil && handleCount != a.handleCount {
		d.Failf("image app loaded %d modules, booted twin loaded %d", handleCount, a.handleCount)
	}
	hasStubs := d.Bool()
	var stubNext uint32
	if hasStubs {
		sbase := d.U32()
		stubNext = d.U32()
		send := d.U32()
		if d.Err() == nil && (a.stubs == nil || sbase != a.stubs.base || send != a.stubs.end) {
			d.Failf("image app stub arena differs from booted twin's")
		}
	} else if a.stubs != nil {
		d.Failf("image app has no stub arena but booted twin does")
	}
	if err := d.Err(); err != nil {
		return err
	}
	a.spSave, a.bpSave = spSave, bpSave
	a.extStackTop, a.argSlot = extStackTop, argSlot
	a.callStack, a.svcNext = callStack, svcNext
	a.xheap, a.xheapEnd = xheap, xheapEnd
	a.maxInstr, a.handleCount = maxInstr, handleCount
	a.intraCaller, a.intraTarget = intraCaller, intraTarget
	if a.stubs != nil {
		a.stubs.next = stubNext
	}
	return nil
}
