package core

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// ErrKernelExtensionAborted reports that a kernel extension was killed
// for violating its segment or exceeding its time limit; per Section
// 4.5.2 the prototype performs no cleanup beyond resource reclamation.
var ErrKernelExtensionAborted = errors.New("palladium: kernel extension aborted")

// ErrKernelExtensionRolledBack reports that a transactional invocation
// (InvokeTx) hit a protection fault or time-limit overrun and the
// whole machine was restored to its pre-call state: memory, clock,
// page tables, descriptor tables and kernel bookkeeping are exactly as
// before the call, and the extension segment stays alive.
var ErrKernelExtensionRolledBack = errors.New("palladium: kernel extension rolled back")

// ErrAsyncBackpressure reports that an asynchronous invocation was
// refused because the extension segment's request queue is at its
// bound. Like the fleet's bounded submission queue, the bound converts
// unbounded memory growth under overload into an explicit, typed
// backpressure signal the caller can react to (drop, retry, or drain
// with RunPending).
var ErrAsyncBackpressure = errors.New("palladium: extension async queue full")

// DefaultAsyncQueueBound is the per-segment asynchronous request queue
// bound used when ExtSegment.QueueBound is zero.
const DefaultAsyncQueueBound = 64

// errKernelReturn is the sentinel produced by the kernel-side return
// gate: the extension finished and control is back in the kernel.
var errKernelReturn = errors.New("palladium: kernel extension returned")

// Layout of a kernel extension segment (segment-relative offsets).
const (
	// segScratchOff: 16 bytes reserved for the stack/base-pointer
	// saves of the kernel Prepare stub. They live inside the
	// extension segment only to keep the Figure-6 instruction
	// sequence intact; the trusted kernel restores its state from its
	// own context snapshot, so a corrupted save slot cannot hurt it.
	segScratchOff = 0x0000
	// segStackOff .. segStackTop: the single per-segment extension
	// stack ("one stack for each extension segment", Section 4.3).
	segStackOff = 0x1000
	segStackTop = 0x5000
	// segModuleOff: first module placement address.
	segModuleOff = 0x10000
)

// ExtSegment is one kernel extension segment (Figure 3): a subrange of
// the kernel's 3-4 GB space with its own code/data descriptors at
// SPL 1. One or more modules can be loaded into it; they share its
// stack and can share data freely among themselves. Palladium does not
// protect modules within one segment from each other — load modules
// into separate segments for that.
type ExtSegment struct {
	S     *System
	Name  string
	Base  uint32 // linear base
	Limit uint32 // inclusive limit (size-1)
	Code  mmu.Selector
	Data  mmu.Selector

	next    uint32 // module placement cursor (segment-relative)
	ranges  *rangeList
	mapped  map[uint32]bool
	modules []*loader.Image
	stubs   *stubArena // per-segment Transfer stubs (run at SPL 1)
	aborted bool

	// Async request queue (Section 4.3). QueueBound caps its length
	// (0 means DefaultAsyncQueueBound); InvokeAsync refuses further
	// requests with ErrAsyncBackpressure once the bound is reached.
	busy       bool
	queue      []asyncReq
	QueueBound int
}

type asyncReq struct {
	fn  *KernelExtensionFunc
	arg uint32
}

// KernelExtensionFunc is one Extension Function Table entry: a
// registered extension service entry point plus its generated kernel-
// side Prepare/Transfer stubs.
type KernelExtensionFunc struct {
	Seg    *ExtSegment
	Name   string
	FnOff  uint32 // segment-relative entry point
	stub   stubSyms
	module *loader.Image
}

// initKernelMechanism sets up the kernel-side stub arena and the
// return call gate shared by all kernel extensions.
func (s *System) initKernelMechanism() error {
	arena, err := newStubArena(&kernelTextSpace{s: s}, "palladium.kstubs", 16*mem.PageSize)
	if err != nil {
		return err
	}
	s.kernPrep = arena

	retAddr := s.K.AllocServiceAddr()
	s.K.Machine.RegisterService(retAddr, &cpu.Service{
		Name: "palladium-kernel-return", Kind: cpu.ServiceCallGate,
		Handler: func(m *cpu.Machine) error { return errKernelReturn },
	})
	gate, err := s.K.InstallCallGate(1, kernel.KCodeSel, retAddr-kernel.KernelBase)
	if err != nil {
		return err
	}
	s.kernRetGate = uint16(gate)
	return nil
}

// NewExtSegment creates an extension segment of the given size
// (rounded to pages) at SPL 1 and allocates its stack.
func (s *System) NewExtSegment(name string, size uint32) (*ExtSegment, error) {
	size = (size + mem.PageMask) &^ uint32(mem.PageMask)
	if size < segModuleOff+mem.PageSize {
		size = segModuleOff + 16*mem.PageSize
	}
	base, err := s.allocSegRange(size)
	if err != nil {
		return nil, err
	}
	code, data, err := s.K.InstallSegmentPair(base, size-1, 1)
	if err != nil {
		return nil, err
	}
	seg := &ExtSegment{
		S: s, Name: name, Base: base, Limit: size - 1,
		Code: code, Data: data,
		next:   segModuleOff,
		ranges: newRangeList(),
		mapped: make(map[uint32]bool),
	}
	// Scratch + stack pages ("that stack is allocated when the first
	// module is loaded"; we allocate with the segment for simplicity).
	for off := uint32(0); off < segStackTop; off += mem.PageSize {
		if err := seg.mapPage(off); err != nil {
			return nil, err
		}
	}
	s.segs = append(s.segs, seg)
	return seg, nil
}

func (seg *ExtSegment) mapPage(off uint32) error {
	page := off &^ uint32(mem.PageMask)
	if seg.mapped[page] {
		return nil
	}
	if _, err := seg.S.K.MapKernelPage(seg.Base+page, true); err != nil {
		return err
	}
	seg.mapped[page] = true
	return nil
}

func (seg *ExtSegment) physAt(off uint32) (uint32, error) {
	e := seg.S.K.KernelSpace().Lookup(seg.Base + off)
	if !e.Present() {
		return 0, fmt.Errorf("palladium: segment %s offset %#x not mapped", seg.Name, off)
	}
	return e.Frame() | (seg.Base+off)&mem.PageMask, nil
}

// --- loader.Space implementation (segment-relative addresses) ---

// AllocRange implements loader.Space inside the extension segment:
// freed ranges are reused first (first fit), then the bump cursor
// extends the live area.
func (seg *ExtSegment) AllocRange(size uint32, name string, writable, ppl1 bool) (uint32, error) {
	size = (size + mem.PageMask) &^ uint32(mem.PageMask)
	if size == 0 {
		size = mem.PageSize
	}
	off, reused := seg.ranges.takeFree(size)
	if !reused {
		off = seg.next
		if off+size-1 > seg.Limit {
			return 0, fmt.Errorf("palladium: segment %s full (need %#x at %#x)", seg.Name, size, off)
		}
		seg.next += size
	}
	seg.ranges.noteAlloc(off, size)
	for o := off; o < off+size; o += mem.PageSize {
		if err := seg.mapPage(o); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// FreeRange implements loader.Space: the range becomes reusable by
// later AllocRange calls. (The paper's prototype reclaimed segment
// memory only with the whole segment; a production loader cannot
// afford that leak across repeated module load/unload cycles.) The
// backing pages stay mapped — the segment's pages are a stable
// resource; only placement within the segment is recycled.
func (seg *ExtSegment) FreeRange(addr uint32) error { return seg.ranges.release(addr) }

// Write implements loader.Space. The copy proceeds page-wise: one
// segment-offset translation per page instead of one per byte, with
// the simulated charge unchanged.
func (seg *ExtSegment) Write(addr uint32, b []byte) error {
	total := len(b)
	err := mem.ForEachPageRun(addr, total, func(off uint32, n int) error {
		pa, err := seg.physAt(off)
		if err != nil {
			return err
		}
		seg.S.K.Phys.WriteBytes(pa, b[:n])
		b = b[n:]
		return nil
	})
	if err != nil {
		return err
	}
	seg.S.K.Clock.Add(seg.S.K.Costs.CopyPerByte * float64(total))
	return nil
}

// InstallText implements loader.Space, one page-contiguous run at a
// time (one translation and one block-cache invalidation per page).
func (seg *ExtSegment) InstallText(addr uint32, text []isa.Instr) error {
	for i := 0; i < len(text); {
		off := addr + uint32(i)*isa.InstrSlot
		pa, err := seg.physAt(off)
		if err != nil {
			return err
		}
		n := int((mem.PageSize - pa&mem.PageMask) / isa.InstrSlot)
		if n > len(text)-i {
			n = len(text) - i
		}
		seg.S.K.Machine.InstallCode(pa, text[i:i+n])
		i += n
	}
	return nil
}

// RemoveText implements loader.Space.
func (seg *ExtSegment) RemoveText(addr uint32, n int) error {
	for i := 0; i < n; {
		off := addr + uint32(i)*isa.InstrSlot
		c := 1
		if pa, err := seg.physAt(off); err == nil {
			c = int((mem.PageSize - pa&mem.PageMask) / isa.InstrSlot)
			if c > n-i {
				c = n - i
			}
			seg.S.K.Machine.RemoveCode(pa, c)
		}
		i += c
	}
	return nil
}

// SetWritable implements loader.Space.
func (seg *ExtSegment) SetWritable(addr, size uint32, writable bool) error {
	for o := addr &^ uint32(mem.PageMask); o < addr+size; o += mem.PageSize {
		seg.S.K.KernelSpace().SetWritable(seg.Base+o, writable)
		seg.S.K.MMU.InvalidatePage(seg.Base + o)
	}
	return nil
}

// kernelTextSpace places kernel-side stubs in kernel text; addresses
// are KCodeSel offsets (linear minus the kernel base).
type kernelTextSpace struct{ s *System }

func (ks *kernelTextSpace) AllocRange(size uint32, name string, writable, ppl1 bool) (uint32, error) {
	size = (size + mem.PageMask) &^ uint32(mem.PageMask)
	if off, ok := ks.s.ktRanges.takeFree(size); ok {
		ks.s.ktRanges.noteAlloc(off, size)
		return off, nil
	}
	lin, err := ks.s.K.KernelAlloc(size, mem.PageSize)
	if err != nil {
		return 0, err
	}
	off := lin - kernel.KernelBase
	ks.s.ktRanges.noteAlloc(off, size)
	return off, nil
}

// FreeRange recycles a kernel-text range for later AllocRange calls
// (the kernel heap itself only grows; this list is the reuse layer on
// top of it).
func (ks *kernelTextSpace) FreeRange(addr uint32) error { return ks.s.ktRanges.release(addr) }

func (ks *kernelTextSpace) phys(off uint32) (uint32, error) {
	lin := kernel.KernelBase + off
	e := ks.s.K.KernelSpace().Lookup(lin)
	if !e.Present() {
		return 0, fmt.Errorf("palladium: kernel text at %#x not mapped", lin)
	}
	return e.Frame() | lin&mem.PageMask, nil
}

func (ks *kernelTextSpace) Write(addr uint32, b []byte) error {
	for i, v := range b {
		pa, err := ks.phys(addr + uint32(i))
		if err != nil {
			return err
		}
		ks.s.K.Phys.Write8(pa, v)
	}
	return nil
}

func (ks *kernelTextSpace) InstallText(addr uint32, text []isa.Instr) error {
	for i := 0; i < len(text); {
		pa, err := ks.phys(addr + uint32(i)*isa.InstrSlot)
		if err != nil {
			return err
		}
		n := int((mem.PageSize - pa&mem.PageMask) / isa.InstrSlot)
		if n > len(text)-i {
			n = len(text) - i
		}
		ks.s.K.Machine.InstallCode(pa, text[i:i+n])
		i += n
	}
	return nil
}

func (ks *kernelTextSpace) RemoveText(addr uint32, n int) error {
	for i := 0; i < n; {
		c := 1
		if pa, err := ks.phys(addr + uint32(i)*isa.InstrSlot); err == nil {
			c = int((mem.PageSize - pa&mem.PageMask) / isa.InstrSlot)
			if c > n-i {
				c = n - i
			}
			ks.s.K.Machine.RemoveCode(pa, c)
		}
		i += c
	}
	return nil
}

func (ks *kernelTextSpace) SetWritable(addr, size uint32, writable bool) error { return nil }

// Insmod loads a kernel module into the extension segment (the
// modified insmod of Section 4.3) and registers every exported
// function symbol in the Extension Function Table. The resolver only
// exposes what the kernel chooses: symbols of modules already in the
// same segment (modules sharing a segment share data freely).
func (s *System) Insmod(seg *ExtSegment, obj *isa.Object) (*loader.Image, error) {
	if seg.aborted {
		return nil, ErrKernelExtensionAborted
	}
	resolve := func(name string) (uint32, bool) {
		for _, m := range seg.modules {
			if a, ok := m.Lookup(name); ok {
				return a, true
			}
		}
		return 0, false
	}
	im, err := loader.Load(obj, seg, resolve, loader.Options{GOT: true, SealGOT: false, TextPPL1: false, DataPPL1: false, GOTPPL1: false})
	if err != nil {
		return nil, err
	}
	seg.modules = append(seg.modules, im)

	// Per-segment Transfer stub arena: Transfer runs at SPL 1 inside
	// the extension segment, so its code must live there.
	if seg.stubs == nil {
		seg.stubs, err = newStubArena(seg, "palladium.segstubs", 4*mem.PageSize)
		if err != nil {
			return nil, err
		}
	}

	// Register exported functions as extension service entry points
	// ("whenever a new extension is loaded into the kernel, it
	// registers with the kernel one or multiple function pointers").
	for _, g := range im.Globals {
		sym := obj.Symbol(g)
		if sym == nil || sym.Section != isa.SecText {
			continue
		}
		fnOff := im.Syms[g]
		tsyms, err := seg.stubs.add("transfer:"+g, transferSrc(fnOff, s.kernRetGate))
		if err != nil {
			return nil, err
		}
		src := kernelPrepareSrc(
			segStackTop-4,     // argument slot (segment-relative; DS = segment data)
			segScratchOff,     // SP save (see segScratchOff comment)
			segScratchOff+4,   // BP save
			uint32(seg.Data),  // extension SS
			segStackTop-4,     // extension ESP
			uint32(seg.Code),  // extension CS
			tsyms["transfer"], // Transfer's segment-relative offset
		)
		psyms, err := s.kernPrep.add("prepare:"+g, src)
		if err != nil {
			return nil, err
		}
		s.eft[g] = &KernelExtensionFunc{
			Seg: seg, Name: g, FnOff: fnOff,
			stub:   stubSyms{Prepare: psyms["prepare"], Transfer: tsyms["transfer"]},
			module: im,
		}
	}
	return im, nil
}

// SharedAreaAddr returns the linear address of a module's shared data
// area, identified by its well-known symbol (Section 4.3); the kernel
// checks for its existence at run time.
func (s *System) SharedAreaAddr(im *loader.Image, seg *ExtSegment, symbol string) (uint32, bool) {
	off, ok := im.Lookup(symbol)
	if !ok {
		return 0, false
	}
	return seg.Base + off, true
}

// ReadShared / WriteShared are the kernel's cross-segment accesses to
// an extension's shared data area; each access sequence pays the
// segment-register reload the paper measures at 12 cycles.
func (s *System) ReadShared(seg *ExtSegment, off uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := s.ReadSharedInto(seg, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSharedInto is ReadShared into a caller-owned buffer (steady-
// state paths reuse one buffer across calls); the segment-register
// reload and per-byte charges are identical.
func (s *System) ReadSharedInto(seg *ExtSegment, off uint32, buf []byte) error {
	var es mmu.Selector
	if f := s.K.Machine.LoadSegReg(&es, seg.Data); f != nil {
		return f
	}
	s.K.Clock.Add(s.K.Costs.CopyPerByte * float64(len(buf)))
	return mem.ForEachPageRun(off, len(buf), func(o uint32, n int) error {
		pa, err := seg.physAt(o)
		if err != nil {
			return err
		}
		copy(buf[:n], s.K.Phys.FrameView(pa &^ uint32(mem.PageMask))[pa&mem.PageMask:])
		buf = buf[n:]
		return nil
	})
}

// WriteShared writes into an extension segment's shared area.
func (s *System) WriteShared(seg *ExtSegment, off uint32, b []byte) error {
	var es mmu.Selector
	if f := s.K.Machine.LoadSegReg(&es, seg.Data); f != nil {
		return f
	}
	s.K.Clock.Add(s.K.Costs.CopyPerByte * float64(len(b)))
	return seg.Write(off, b)
}

// Invoke runs a kernel extension function synchronously: the kernel-
// side Prepare stub lrets into the SPL-1 segment, the function runs to
// completion on the segment's stack, and the Transfer stub lcalls back
// through the return gate. A segment violation or time-limit overrun
// aborts the extension.
func (f *KernelExtensionFunc) Invoke(arg uint32) (uint32, error) {
	return f.invoke(arg, false)
}

// InvokeTx runs the extension as a transaction: the whole machine
// (memory image, CPU, MMU, clock, kernel bookkeeping) is snapshotted
// before the call, and a protection fault or time-limit overrun rolls
// everything back to that snapshot instead of aborting the segment.
// The error wraps ErrKernelExtensionRolledBack; the segment remains
// alive and the next invocation starts from known-good state. A
// successful call releases the snapshot and is bit-identical in every
// simulated metric to a plain Invoke.
func (f *KernelExtensionFunc) InvokeTx(arg uint32) (uint32, error) {
	return f.invoke(arg, true)
}

func (f *KernelExtensionFunc) invoke(arg uint32, tx bool) (uint32, error) {
	s := f.Seg.S
	if f.Seg.aborted {
		return 0, ErrKernelExtensionAborted
	}
	k := s.K
	p := k.Current()
	if p == nil {
		return 0, fmt.Errorf("palladium: no current process (kernel extensions run on the caller's kernel stack)")
	}
	var snap *SystemSnapshot
	if tx {
		snap = s.Snapshot()
		defer snap.Release()
	}
	// fail routes an abort-worthy outcome through the active policy:
	// transactional calls restore the pre-call state and keep the
	// segment alive; plain calls abort the segment (Section 4.5.2).
	fail := func(cause error) error {
		// Both the policy sentinel and the cause are wrapped (the
		// message is unchanged) so callers — notably the sandbox fault
		// taxonomy — can errors.As the *mmu.Fault or errors.Is the
		// time limit out of the chain.
		if tx {
			s.Restore(snap)
			return fmt.Errorf("%w: %w", ErrKernelExtensionRolledBack, cause)
		}
		f.Seg.abort(s)
		return fmt.Errorf("%w: %w", ErrKernelExtensionAborted, cause)
	}
	m := k.Machine
	saved := m.SaveContext()
	defer m.RestoreContext(saved)

	// Kernel context: ring 0 code, the extension's data segment (so
	// the stub's absolute operands hit the segment), the invoking
	// process's kernel stack (Section 4.3).
	m.CS = kernel.KCodeSel
	m.DS = f.Seg.Data
	m.ES = f.Seg.Data
	m.SS = kernel.KDataSel
	m.Regs[isa.ESP] = p.KStackTop - kernel.KernelBase
	m.EIP = f.stub.Prepare
	if fault := m.Push(arg); fault != nil {
		return 0, fault
	}
	if fault := m.Push(0); fault != nil { // dummy return address
		return 0, fault
	}

	prevLimit := k.ArmExtLimit(k.Clock.Cycles() + k.ExtTimeLimit)
	defer k.DisarmExtLimit(prevLimit)

	for {
		res := m.Run(cpu.RunLimits{MaxInstructions: 10_000_000})
		switch res.Reason {
		case cpu.StopError:
			if errors.Is(res.Err, errKernelReturn) {
				// The trusted kernel restores its own state; charge
				// the same two loads + ret that the user-level
				// AppCallGate performs (Table 1, "Restoring state").
				k.Clock.Charge(k.Model, cycles.Load)
				k.Clock.Charge(k.Model, cycles.Load)
				k.Clock.Charge(k.Model, cycles.RetNear)
				return m.Reg(isa.EAX), nil
			}
			if errors.Is(res.Err, kernel.ErrExtTimeBudget) || errors.Is(res.Err, ErrTimeLimit) {
				return 0, fail(ErrTimeLimit)
			}
			return 0, res.Err
		case cpu.StopFault:
			switch k.HandleFault(p, res.Fault) {
			case kernel.Retry:
				continue
			case kernel.KernelExtensionFault:
				return 0, fail(res.Fault)
			default:
				return 0, res.Fault
			}
		default:
			return 0, fmt.Errorf("palladium: kernel extension stopped: %v", res.Reason)
		}
	}
}

// abort marks the segment dead and unregisters its entry points ("the
// current Palladium prototype does not perform any clean-up for
// aborted kernel extensions, beyond reclaiming the system resources").
func (seg *ExtSegment) abort(s *System) {
	seg.aborted = true
	for n, f := range s.eft {
		if f.Seg == seg {
			delete(s.eft, n)
		}
	}
}

// Aborted reports whether the segment has been killed.
func (seg *ExtSegment) Aborted() bool { return seg.aborted }

// InvokeAsync queues a request for the extension (Section 4.3's
// asynchronous extensions): if the module is busy the request waits;
// otherwise it runs when RunPending drains the queue. Results are
// discarded, as with the paper's queued packet-filter work. The queue
// is bounded (QueueBound, default DefaultAsyncQueueBound): once full,
// further requests are refused with ErrAsyncBackpressure instead of
// growing the queue without limit.
func (f *KernelExtensionFunc) InvokeAsync(arg uint32) error {
	seg := f.Seg
	if seg.aborted {
		return ErrKernelExtensionAborted
	}
	bound := seg.QueueBound
	if bound <= 0 {
		bound = DefaultAsyncQueueBound
	}
	if len(seg.queue) >= bound {
		return fmt.Errorf("%w: segment %s holds %d pending requests",
			ErrAsyncBackpressure, seg.Name, len(seg.queue))
	}
	seg.queue = append(seg.queue, asyncReq{fn: f, arg: arg})
	return nil
}

// RunPending drains the segment's asynchronous request queue, running
// each request to completion before the next (extensions are not
// re-entrant; the queue serializes them).
func (seg *ExtSegment) RunPending() (completed int, err error) {
	if seg.busy {
		return 0, nil
	}
	seg.busy = true
	defer func() { seg.busy = false }()
	for len(seg.queue) > 0 {
		req := seg.queue[0]
		seg.queue = seg.queue[1:]
		if _, err := req.fn.Invoke(req.arg); err != nil {
			return completed, err
		}
		completed++
	}
	return completed, nil
}

// Pending reports the queued request count.
func (seg *ExtSegment) Pending() int { return len(seg.queue) }

// Release retires the segment gracefully: every queued asynchronous
// request is drained (run to completion — accepted work is never
// dropped) and the segment's entry points are then unregistered, as
// for an abort's resource reclamation. Releasing an already-aborted or
// already-released segment is a no-op.
func (seg *ExtSegment) Release() error {
	if seg.aborted {
		return nil
	}
	if _, err := seg.RunPending(); err != nil {
		return err
	}
	seg.abort(seg.S)
	return nil
}
