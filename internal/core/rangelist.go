package core

import (
	"fmt"
	"slices"
)

// span is one reusable freed range (page-granular offsets).
type span struct{ off, size uint32 }

// rangeList turns a bump allocator into a real one: it remembers the
// size of every live allocation and keeps freed ranges on a sorted,
// coalesced free list for first-fit reuse. ExtSegment and the kernel
// text space use it so FreeRange actually returns memory (the seed's
// FreeRange silently leaked every range).
type rangeList struct {
	sizes map[uint32]uint32 // base -> size of live allocations
	free  []span            // sorted by offset, adjacent spans coalesced
}

func newRangeList() *rangeList {
	return &rangeList{sizes: make(map[uint32]uint32)}
}

// takeFree carves size bytes out of the free list (first fit),
// reporting ok=false when no span is large enough.
func (r *rangeList) takeFree(size uint32) (uint32, bool) {
	for i, sp := range r.free {
		if sp.size < size {
			continue
		}
		off := sp.off
		if sp.size == size {
			r.free = slices.Delete(r.free, i, i+1)
		} else {
			r.free[i] = span{off: sp.off + size, size: sp.size - size}
		}
		return off, true
	}
	return 0, false
}

// noteAlloc records a live allocation so release knows its size.
func (r *rangeList) noteAlloc(off, size uint32) { r.sizes[off] = size }

// release frees a live allocation, inserting it into the free list and
// coalescing with its neighbours.
func (r *rangeList) release(off uint32) error {
	size, ok := r.sizes[off]
	if !ok {
		return fmt.Errorf("palladium: freeing unallocated range at %#x", off)
	}
	delete(r.sizes, off)
	i, _ := slices.BinarySearchFunc(r.free, off, func(sp span, o uint32) int {
		if sp.off < o {
			return -1
		}
		if sp.off > o {
			return 1
		}
		return 0
	})
	r.free = slices.Insert(r.free, i, span{off: off, size: size})
	// Coalesce with the successor, then the predecessor.
	if i+1 < len(r.free) && r.free[i].off+r.free[i].size == r.free[i+1].off {
		r.free[i].size += r.free[i+1].size
		r.free = slices.Delete(r.free, i+1, i+2)
	}
	if i > 0 && r.free[i-1].off+r.free[i-1].size == r.free[i].off {
		r.free[i-1].size += r.free[i].size
		r.free = slices.Delete(r.free, i, i+1)
	}
	return nil
}

// freeBytes reports the total reusable bytes (leak-regression tests).
func (r *rangeList) freeBytes() uint32 {
	var n uint32
	for _, sp := range r.free {
		n += sp.size
	}
	return n
}

// clone deep-copies the range list (machine cloning).
func (r *rangeList) clone() *rangeList {
	c := &rangeList{sizes: make(map[uint32]uint32, len(r.sizes)), free: slices.Clone(r.free)}
	for k, v := range r.sizes {
		c.sizes[k] = v
	}
	return c
}

// restoreFrom rewinds this list to a snapshot produced by clone.
func (r *rangeList) restoreFrom(s *rangeList) {
	r.sizes = make(map[uint32]uint32, len(s.sizes))
	for k, v := range s.sizes {
		r.sizes[k] = v
	}
	r.free = append(r.free[:0], s.free...)
}
