package kernel

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// System call numbers (Linux 2.0-flavoured where they exist, with the
// Palladium additions of Section 4 given numbers above 200).
const (
	SysExit     = 1
	SysFork     = 2
	SysWrite    = 4
	SysGetpid   = 20
	SysBrk      = 45
	SysMmap     = 90
	SysMprotect = 125
	// SysInitPL promotes an extensible application to SPL 2 and marks
	// its writable pages PPL 0 (Section 4.4.1).
	SysInitPL = 210
	// SysSetRange flips the PPL of a page range, exposing pages to
	// (or hiding them from) SPL-3 extensions.
	SysSetRange = 211
)

// Errno values returned (negated) in EAX.
const (
	EPERM  = 1
	ENOMEM = 12
	EFAULT = 14
	EINVAL = 22
	ENOSYS = 38
)

func errRet(errno int) uint32 { return uint32(-errno) }

// SyscallFn is a system-call implementation. Arguments arrive in EBX,
// ECX, EDX; the result is returned in EAX.
type SyscallFn func(k *Kernel, p *Process, a1, a2, a3 uint32) uint32

// RegisterSyscall installs (or overrides) a system call.
func (k *Kernel) RegisterSyscall(nr uint32, fn SyscallFn) { k.syscalls[nr] = fn }

// RegisterKernelService installs one entry of the pre-defined core
// kernel service interface exposed to kernel extensions via int 0x81
// (Section 4.3: "resembles a conventional user-kernel system-call
// interface").
func (k *Kernel) RegisterKernelService(nr uint32, fn SyscallFn) { k.kernelServices[nr] = fn }

// syscallEntry is the int 0x80 handler. It enforces the Palladium
// system-call restriction of Section 4.5.2: when the calling process
// is at taskSPL 2 but the trapping code segment is at SPL 3 — i.e. a
// user extension attempting a direct system call — the call is
// rejected with EPERM. Ordinary SPL-3 processes (taskSPL 3) are
// unaffected, so non-Palladium applications work as usual.
func (k *Kernel) syscallEntry(m *cpu.Machine) error {
	k.Clock.Add(k.Costs.SyscallEntry)
	p := k.cur
	if p == nil {
		return fmt.Errorf("kernel: system call with no current process")
	}
	// The interrupt frame on the kernel stack is [EIP][CS][EFLAGS]...
	retCS, f := m.Peek(4)
	if f != nil {
		return f
	}
	nr := m.Reg(isa.EAX)
	var ret uint32
	switch {
	case p.TaskSPL == 2 && mmu.Selector(uint16(retCS)).RPL() == 3:
		ret = errRet(EPERM)
	default:
		if fn := k.syscalls[nr]; fn != nil {
			ret = fn(k, p, m.Reg(isa.EBX), m.Reg(isa.ECX), m.Reg(isa.EDX))
		} else {
			ret = errRet(ENOSYS)
		}
	}
	m.SetReg(isa.EAX, ret)
	k.Clock.Add(k.Costs.SyscallExit)
	return nil
}

// kernelServiceEntry is the int 0x81 handler for kernel extensions.
// The gate's DPL of 1 already guarantees the caller is at SPL 0 or 1.
func (k *Kernel) kernelServiceEntry(m *cpu.Machine) error {
	k.Clock.Add(k.Costs.SyscallEntry)
	nr := m.Reg(isa.EAX)
	var ret uint32
	if fn := k.kernelServices[nr]; fn != nil {
		ret = fn(k, k.cur, m.Reg(isa.EBX), m.Reg(isa.ECX), m.Reg(isa.EDX))
	} else {
		ret = errRet(ENOSYS)
	}
	m.SetReg(isa.EAX, ret)
	k.Clock.Add(k.Costs.SyscallExit)
	return nil
}

func (k *Kernel) registerDefaultSyscalls() {
	k.RegisterSyscall(SysGetpid, func(k *Kernel, p *Process, _, _, _ uint32) uint32 {
		return uint32(p.PID)
	})
	k.RegisterSyscall(SysExit, func(k *Kernel, p *Process, code, _, _ uint32) uint32 {
		k.Exit(p, int(code))
		return 0
	})
	k.RegisterSyscall(SysWrite, func(k *Kernel, p *Process, fd, buf, n uint32) uint32 {
		if fd != 1 && fd != 2 {
			return errRet(EINVAL)
		}
		b, err := k.CopyFromUser(p, buf, int(n))
		if err != nil {
			return errRet(EFAULT)
		}
		k.ConsoleOut = append(k.ConsoleOut, b...)
		return n
	})
	k.RegisterSyscall(SysBrk, func(k *Kernel, p *Process, addr, _, _ uint32) uint32 {
		if addr > p.Brk && addr < MmapBase {
			p.Brk = addr
		}
		return p.Brk
	})
	k.RegisterSyscall(SysFork, func(k *Kernel, p *Process, _, _, _ uint32) uint32 {
		child, err := k.Fork(p)
		if err != nil {
			return errRet(ENOMEM)
		}
		return uint32(child.PID)
	})
	k.RegisterSyscall(SysMmap, func(k *Kernel, p *Process, addr, n, prot uint32) uint32 {
		a, err := p.mmapInternal(k, addr, n, prot&2 != 0, false, "anon")
		if err != nil {
			return errRet(ENOMEM)
		}
		return a
	})
	k.RegisterSyscall(SysMprotect, func(k *Kernel, p *Process, addr, _, prot uint32) uint32 {
		// Palladium's modified mprotect: an SPL-3 caller must not
		// tamper with the protection of an SPL-2 process's memory.
		// Reaching here from simulated code at SPL 3 in a taskSPL-2
		// process is already rejected by the syscall filter, so this
		// guards the remaining combinations.
		if err := p.Mprotect(k, addr, prot&2 != 0); err != nil {
			return errRet(EINVAL)
		}
		return 0
	})
	k.RegisterSyscall(SysInitPL, func(k *Kernel, p *Process, _, _, _ uint32) uint32 {
		if err := k.InitPL(p); err != nil {
			return errRet(EPERM)
		}
		return 0
	})
	k.RegisterSyscall(SysSetRange, func(k *Kernel, p *Process, addr, npages, ppl uint32) uint32 {
		if err := k.SetRange(p, addr, npages, ppl == 1); err != nil {
			return errRet(EINVAL)
		}
		return 0
	})
}

// InitPL implements the init_PL system call (Section 4.4.1): promote
// the calling process to SPL 2 and set the PPL of all its writable
// pages to 0. The extension "segment" for user-level extensions is the
// ordinary SPL-3 user segment pair, which spans the same 0-3 GB as the
// application's SPL-2 segments — that aliasing is the whole point of
// the design.
func (k *Kernel) InitPL(p *Process) error {
	k.chargeSyscallSoftware()
	if p.TaskSPL == 2 {
		return fmt.Errorf("init_PL: already at SPL 2")
	}
	p.TaskSPL = 2
	// Dedicated ring-2 stack page: the hardware pushes a 4-word frame
	// here on every gate call from SPL 3; Palladium's AppCallGate
	// ignores the frame (it restores the saved stack pointer), but
	// the page must exist and must be hidden from extensions (the
	// writable-page rule puts it at PPL 0).
	if _, err := p.mmapInternal(k, Ring2GateBase, mem.PageSize, true, false, "ring2-gate"); err != nil {
		return err
	}
	if err := p.Touch(k, Ring2GateBase, mem.PageSize); err != nil {
		return err
	}
	p.Ring2StackTop = Ring2GateBase + mem.PageSize

	// Demote every already-present writable user page to PPL 0;
	// pages not yet faulted in will follow the modified-mmap rule.
	k.Clock.Add(k.Costs.PPLMarkStart)
	marked := 0
	p.AS.VisitMapped(func(lin uint32, e mmu.PTE) {
		if lin > UserLimit || !e.Writable() {
			return
		}
		p.AS.SetUser(lin, false)
		if k.cur == p {
			k.MMU.InvalidatePage(lin)
		}
		marked++
	})
	k.Clock.Add(k.Costs.PPLMarkPerPage * float64(marked))
	if k.cur == p {
		k.Machine.TSS.SS[2] = ADataSel
		k.Machine.TSS.ESP[2] = p.Ring2StackTop
	}
	return nil
}

// SetRange implements the set_range system call: flip the PPL of
// npages pages starting at addr. ppl1=true exposes the pages to SPL-3
// extensions (shared data, shared library code); false hides them.
// The cost is the paper's "3000 to 5000 cycles plus 45 cycles per
// page".
func (k *Kernel) SetRange(p *Process, addr, npages uint32, ppl1 bool) error {
	k.chargeSyscallSoftware()
	if addr&mem.PageMask != 0 {
		return fmt.Errorf("set_range: unaligned address %#x", addr)
	}
	if p.TaskSPL != 2 {
		return fmt.Errorf("set_range: process not at SPL 2")
	}
	end := addr + npages*mem.PageSize
	if end-1 > UserLimit || end < addr {
		return fmt.Errorf("set_range: beyond user space")
	}
	k.Clock.Add(k.Costs.PPLMarkStart + k.Costs.PPLMarkPerPage*float64(npages))
	// Make sure the pages exist (the shared area must be materialized
	// before its PPL can matter), then flip them.
	if err := p.Touch(k, addr, npages*mem.PageSize); err != nil {
		return err
	}
	for lin := addr; lin < end; lin += mem.PageSize {
		p.AS.SetUser(lin, ppl1)
		if k.cur == p {
			k.MMU.InvalidatePage(lin)
		}
	}
	// Keep demand paging consistent for regions wholly inside the
	// range.
	for _, r := range p.Regions {
		if r.Start >= addr && r.End <= end {
			r.ForcePPL1 = ppl1
		}
	}
	return nil
}

// InstallCallGate allocates a GDT call-gate descriptor (the
// set_call_gate mechanism of Section 4.4.2). gateDPL is the minimum
// privilege required of callers; the gate lands at targetCS:targetOff.
func (k *Kernel) InstallCallGate(gateDPL int, targetCS mmu.Selector, targetOff uint32) (mmu.Selector, error) {
	idx, err := k.AllocGateIndex()
	if err != nil {
		return 0, err
	}
	k.MMU.GDT.Set(idx, mmu.Descriptor{
		Kind: mmu.SegCallGate, DPL: gateDPL, Present: true,
		GateSel: targetCS, GateOff: targetOff,
	})
	return mmu.MakeSelector(idx, false, gateDPL), nil
}

// InstallSegmentPair allocates adjacent code+data descriptors for an
// extension segment at the given base/limit/DPL, returning the code
// and data selectors.
func (k *Kernel) InstallSegmentPair(base, limit uint32, dpl int) (code, data mmu.Selector, err error) {
	ci, err := k.AllocGateIndex()
	if err != nil {
		return 0, 0, err
	}
	di, err := k.AllocGateIndex()
	if err != nil {
		return 0, 0, err
	}
	k.MMU.GDT.Set(ci, mmu.Descriptor{Kind: mmu.SegCode, Base: base, Limit: limit, DPL: dpl, Present: true, Readable: true})
	k.MMU.GDT.Set(di, mmu.Descriptor{Kind: mmu.SegData, Base: base, Limit: limit, DPL: dpl, Present: true, Writable: true})
	return mmu.MakeSelector(ci, false, dpl), mmu.MakeSelector(di, false, dpl), nil
}
