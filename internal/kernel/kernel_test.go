package kernel

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func boot(t *testing.T) *Kernel {
	t.Helper()
	k, err := New(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func bootWithProc(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	k := boot(t)
	p, err := k.CreateProcess()
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

// installUser assembles src, resolves symbols at textBase (text) and
// the page after text (data), maps the pages PPL1 and installs the
// code. A minimal stand-in for the loader, keeping this package's
// tests self-contained.
func installUser(t *testing.T, k *Kernel, p *Process, textBase uint32, src string) map[string]uint32 {
	t.Helper()
	obj := isa.MustAssemble("t", src).Clone()
	dataBase := textBase + ((obj.TextBytes() + 0xFFF) &^ 0xFFF)
	addrOf := func(name string) uint32 {
		s := obj.Symbol(name)
		if s == nil || s.Section == isa.SecUndef {
			t.Fatalf("undefined symbol %q", name)
		}
		if s.Section == isa.SecText {
			return textBase + s.Off
		}
		return dataBase + s.Off
	}
	for _, r := range obj.Relocs {
		v := int32(addrOf(r.Sym)) + r.Addend
		switch r.Slot {
		case isa.RelDstDisp:
			obj.Text[r.Index].Dst.Disp += v
		case isa.RelSrcDisp:
			obj.Text[r.Index].Src.Disp += v
		case isa.RelDstImm:
			obj.Text[r.Index].Dst.Imm += v
		case isa.RelSrcImm:
			obj.Text[r.Index].Src.Imm += v
		}
	}
	if _, err := p.MmapPPL1(k, textBase, obj.TextBytes(), false, "text"); err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(k, textBase, obj.TextBytes()); err != nil {
		t.Fatal(err)
	}
	for i := range obj.Text {
		lin := textBase + uint32(i)*isa.InstrSlot
		e := p.AS.Lookup(lin)
		k.Machine.InstallCode(e.Frame()|lin&mem.PageMask, obj.Text[i:i+1])
	}
	dlen := uint32(len(obj.Data)) + obj.BSSSize
	if dlen > 0 {
		if _, err := p.MmapPPL1(k, dataBase, dlen, true, "data"); err != nil {
			t.Fatal(err)
		}
		if err := k.CopyToUser(p, dataBase, append(obj.Data, make([]byte, obj.BSSSize)...)); err != nil {
			t.Fatal(err)
		}
	}
	syms := map[string]uint32{}
	for n, s := range obj.Symbols {
		if s.Section != isa.SecUndef {
			syms[n] = addrOf(n)
		}
	}
	return syms
}

// startUser points the machine at user code for process p.
func startUser(t *testing.T, k *Kernel, p *Process, entry uint32) {
	t.Helper()
	if err := p.Touch(k, StackTop-mem.PageSize, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	m := k.Machine
	m.CS = UCodeSel
	m.DS = UDataSel
	m.SS = UDataSel
	m.EIP = entry
	m.Regs[isa.ESP] = StackTop
}

func TestBootLayout(t *testing.T) {
	k := boot(t)
	kc := k.MMU.GDT.Get(SelKCode)
	if kc.Base != KernelBase || kc.Limit != KernelLimit || kc.DPL != 0 {
		t.Errorf("kernel code descriptor = %+v", kc)
	}
	uc := k.MMU.GDT.Get(SelUCode)
	if uc.Base != 0 || uc.Limit != UserLimit || uc.DPL != 3 {
		t.Errorf("user code descriptor = %+v", uc)
	}
	ac := k.MMU.GDT.Get(SelACode)
	if ac.DPL != 2 {
		t.Errorf("app code DPL = %d, want 2 (Palladium SPL 2)", ac.DPL)
	}
	if _, ok := k.Machine.IDT[VecSyscall]; !ok {
		t.Error("syscall gate missing")
	}
	if g := k.Machine.IDT[VecKernelSvc]; g.DPL != 1 {
		t.Errorf("kernel-service gate DPL = %d, want 1 (extensions only)", g.DPL)
	}
}

func TestProcessCreationAndDemandPaging(t *testing.T) {
	k, p := bootWithProc(t)
	if p.TaskSPL != 3 {
		t.Errorf("new process taskSPL = %d, want 3", p.TaskSPL)
	}
	addr, err := p.Mmap(k, 0, 3*mem.PageSize, true, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if p.AS.Lookup(addr).Present() {
		t.Error("mmap must not eagerly map pages (demand paging)")
	}
	ok, err := p.FaultIn(k, addr+mem.PageSize)
	if !ok || err != nil {
		t.Fatalf("FaultIn = %v, %v", ok, err)
	}
	e := p.AS.Lookup(addr + mem.PageSize)
	if !e.Present() || !e.Writable() || !e.User() {
		t.Errorf("faulted page = %+v, want present+writable+PPL1 (taskSPL 3)", e)
	}
}

func TestMmapPPLRuleAtSPL2(t *testing.T) {
	k, p := bootWithProc(t)
	if err := k.InitPL(p); err != nil {
		t.Fatal(err)
	}
	// Writable pages of an SPL-2 process fault in at PPL 0.
	addr, _ := p.Mmap(k, 0, mem.PageSize, true, "secret")
	p.FaultIn(k, addr)
	if p.AS.Lookup(addr).User() {
		t.Error("writable page of SPL-2 process must be PPL 0")
	}
	// Read-only regions stay PPL 1 (e.g. shared library text).
	ro, _ := p.Mmap(k, 0, mem.PageSize, false, "libtext")
	p.FaultIn(k, ro)
	if !p.AS.Lookup(ro).User() {
		t.Error("read-only page must stay PPL 1")
	}
	// ForcePPL1 regions stay PPL 1 even when writable (shared areas).
	sh, _ := p.MmapPPL1(k, 0, mem.PageSize, true, "shared")
	p.FaultIn(k, sh)
	if !p.AS.Lookup(sh).User() {
		t.Error("ForcePPL1 page must stay PPL 1")
	}
}

func TestInitPLDemotesExistingWritablePages(t *testing.T) {
	k, p := bootWithProc(t)
	addr, _ := p.Mmap(k, 0, 2*mem.PageSize, true, "data")
	p.Touch(k, addr, 2*mem.PageSize)
	ro, _ := p.Mmap(k, 0, mem.PageSize, false, "text")
	p.Touch(k, ro, mem.PageSize)
	if !p.AS.Lookup(addr).User() {
		t.Fatal("pre-init_PL writable page should be PPL 1")
	}
	before := k.Clock.Cycles()
	if err := k.InitPL(p); err != nil {
		t.Fatal(err)
	}
	cost := k.Clock.Cycles() - before
	if p.TaskSPL != 2 {
		t.Error("taskSPL not promoted")
	}
	if p.AS.Lookup(addr).User() || p.AS.Lookup(addr+mem.PageSize).User() {
		t.Error("writable pages must be demoted to PPL 0")
	}
	if !p.AS.Lookup(ro).User() {
		t.Error("read-only page must stay PPL 1")
	}
	// PPL marking cost: startup 3000-5000 plus 45/page (paper 5.1),
	// plus the syscall round trip.
	if cost < 3000 || cost > 7000 {
		t.Errorf("init_PL cost = %v cycles, expected within [3000,7000]", cost)
	}
	if err := k.InitPL(p); err == nil {
		t.Error("double init_PL must fail")
	}
}

func TestSetRange(t *testing.T) {
	k, p := bootWithProc(t)
	k.InitPL(p)
	addr, _ := p.Mmap(k, 0, 4*mem.PageSize, true, "toshare")
	p.Touch(k, addr, 4*mem.PageSize)
	if p.AS.Lookup(addr).User() {
		t.Fatal("SPL-2 writable pages start at PPL 0")
	}
	before := k.Clock.Cycles()
	if err := k.SetRange(p, addr, 4, true); err != nil {
		t.Fatal(err)
	}
	perPage := k.Costs.PPLMarkPerPage
	if got := k.Clock.Cycles() - before; got < k.Costs.PPLMarkStart+4*perPage {
		t.Errorf("set_range cost = %v, want >= start+4*45", got)
	}
	for i := uint32(0); i < 4; i++ {
		if !p.AS.Lookup(addr + i*mem.PageSize).User() {
			t.Errorf("page %d not exposed", i)
		}
	}
	// And back.
	if err := k.SetRange(p, addr, 4, false); err != nil {
		t.Fatal(err)
	}
	if p.AS.Lookup(addr).User() {
		t.Error("page not hidden again")
	}
	// Errors.
	if err := k.SetRange(p, addr+1, 1, true); err == nil {
		t.Error("unaligned set_range must fail")
	}
	q, _ := k.CreateProcess()
	if err := k.SetRange(q, addr, 1, true); err == nil {
		t.Error("set_range on SPL-3 process must fail")
	}
}

func TestForkInheritsPrivilegeLevels(t *testing.T) {
	k, p := bootWithProc(t)
	k.InitPL(p)
	addr, _ := p.Mmap(k, 0, mem.PageSize, true, "d")
	p.Touch(k, addr, mem.PageSize)
	sh, _ := p.MmapPPL1(k, 0, mem.PageSize, true, "s")
	p.Touch(k, sh, mem.PageSize)

	child, err := k.Fork(p)
	if err != nil {
		t.Fatal(err)
	}
	if child.TaskSPL != 2 {
		t.Error("fork must inherit taskSPL 2")
	}
	if child.AS.Lookup(addr).User() {
		t.Error("child PPL 0 page not inherited")
	}
	if !child.AS.Lookup(sh).User() {
		t.Error("child PPL 1 page not inherited")
	}
	if child.Region(sh) == nil || !child.Region(sh).ForcePPL1 {
		t.Error("region table not inherited")
	}
}

func TestExecResetsPrivilege(t *testing.T) {
	k, p := bootWithProc(t)
	k.InitPL(p)
	if err := k.Exec(p); err != nil {
		t.Fatal(err)
	}
	if p.TaskSPL != 3 {
		t.Error("exec must reset taskSPL to 3")
	}
	if len(p.Regions) != 1 || p.Regions[0].Name != "stack" {
		t.Errorf("exec regions = %+v", p.Regions)
	}
}

func TestSimulatedSyscallGetpid(t *testing.T) {
	k, p := bootWithProc(t)
	syms := installUser(t, k, p, 0x0001_0000, `
		entry:
			mov eax, 20
			int 0x80
			mov ebx, eax
		stop: nop
	`)
	startUser(t, k, p, syms["entry"])
	k.Machine.SetBreak(syms["stop"])
	res := k.Machine.Run(cpu.RunLimits{MaxInstructions: 100})
	if res.Reason != cpu.StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if got := k.Machine.Reg(isa.EBX); got != uint32(p.PID) {
		t.Errorf("getpid = %d, want %d", got, p.PID)
	}
	if k.Machine.CPL() != 3 {
		t.Errorf("CPL after syscall = %d", k.Machine.CPL())
	}
}

func TestSyscallRejectionForUserExtensions(t *testing.T) {
	// The Section 4.5.2 check: a taskSPL-2 process trapping from
	// SPL-3 code gets EPERM; a plain SPL-3 process (taskSPL 3) works.
	k, p := bootWithProc(t)
	syms := installUser(t, k, p, 0x0001_0000, `
		entry:
			mov eax, 20
			int 0x80
			mov ebx, eax
		stop: nop
	`)
	k.InitPL(p) // taskSPL = 2; the code below still runs at SPL 3
	startUser(t, k, p, syms["entry"])
	k.Machine.SetBreak(syms["stop"])
	res := k.Machine.Run(cpu.RunLimits{MaxInstructions: 100})
	if res.Reason != cpu.StopBreak {
		t.Fatalf("stop = %+v", res)
	}
	if got := int32(k.Machine.Reg(isa.EBX)); got != -EPERM {
		t.Errorf("syscall from SPL-3 code in taskSPL-2 process = %d, want -EPERM", got)
	}
}

func TestSimulatedWriteSyscall(t *testing.T) {
	k, p := bootWithProc(t)
	syms := installUser(t, k, p, 0x0001_0000, `
		entry:
			mov eax, 4
			mov ebx, 1
			mov ecx, msg
			mov edx, 5
			int 0x80
		stop: nop
		.data
		msg: .asciz "hello"
	`)
	startUser(t, k, p, syms["entry"])
	k.Machine.SetBreak(syms["stop"])
	res := k.Machine.Run(cpu.RunLimits{MaxInstructions: 100})
	if res.Reason != cpu.StopBreak {
		t.Fatalf("stop = %+v err=%v", res, res.Err)
	}
	if got := string(k.ConsoleOut); got != "hello" {
		t.Errorf("console = %q", got)
	}
}

func TestUnknownSyscallReturnsENOSYS(t *testing.T) {
	k, p := bootWithProc(t)
	syms := installUser(t, k, p, 0x0001_0000, `
		entry:
			mov eax, 9999
			int 0x80
			mov ebx, eax
		stop: nop
	`)
	startUser(t, k, p, syms["entry"])
	k.Machine.SetBreak(syms["stop"])
	k.Machine.Run(cpu.RunLimits{MaxInstructions: 100})
	if got := int32(k.Machine.Reg(isa.EBX)); got != -ENOSYS {
		t.Errorf("ret = %d, want -ENOSYS", got)
	}
}

func TestSIGSEGVDeliveryCostAnchor(t *testing.T) {
	// Paper 5.1: "The latency from detecting an offending access to
	// completing the delivery of the associated SIGSEGV signal takes
	// 3,325 cycles on the average."
	k, p := bootWithProc(t)
	k.InitPL(p)
	secret, _ := p.Mmap(k, 0, mem.PageSize, true, "secret")
	p.Touch(k, secret, mem.PageSize)
	var delivered *SignalInfo
	p.SignalHandler = func(si SignalInfo) { delivered = &si }

	f := &mmu.Fault{Kind: mmu.PF, Linear: secret, Access: mmu.Write, CPL: 3,
		Reason: "page privilege violation"}
	before := k.Clock.Cycles()
	disp := k.HandleFault(p, f)
	cost := k.Clock.Cycles() - before
	if disp != SignalDelivered {
		t.Fatalf("disposition = %v", disp)
	}
	if delivered == nil || delivered.Sig != SIGSEGV {
		t.Fatal("SIGSEGV not delivered to handler")
	}
	if cost != 3325 {
		t.Errorf("fault-to-delivery = %v cycles, paper reports 3,325", cost)
	}
}

func TestKernelExtensionGPFaultCostAnchor(t *testing.T) {
	// Paper 5.1: "The average cost of processing such an exception is
	// 1,020 cycles."
	k, p := bootWithProc(t)
	f := &mmu.Fault{Kind: mmu.GP, CPL: 1, Reason: "segment limit violation"}
	before := k.Clock.Cycles()
	disp := k.HandleFault(p, f)
	cost := k.Clock.Cycles() - before
	if disp != KernelExtensionFault {
		t.Fatalf("disposition = %v", disp)
	}
	if cost != 1020 {
		t.Errorf("GP processing = %v cycles, paper reports 1,020", cost)
	}
}

func TestDemandPageFaultRetryFlow(t *testing.T) {
	k, p := bootWithProc(t)
	addr, _ := p.Mmap(k, 0, mem.PageSize, true, "lazy")
	f := &mmu.Fault{Kind: mmu.PF, Linear: addr, Access: mmu.Write, CPL: 3, Reason: "page not present"}
	if disp := k.HandleFault(p, f); disp != Retry {
		t.Fatalf("disposition = %v, want retry (demand paging)", disp)
	}
	if !p.AS.Lookup(addr).Present() {
		t.Error("page not faulted in")
	}
}

func TestSIGSEGVOnUnmappedAccess(t *testing.T) {
	k, p := bootWithProc(t)
	var got *SignalInfo
	p.SignalHandler = func(si SignalInfo) { got = &si }
	f := &mmu.Fault{Kind: mmu.PF, Linear: 0x7000_0000, Access: mmu.Read, CPL: 3, Reason: "page not present"}
	if disp := k.HandleFault(p, f); disp != SignalDelivered {
		t.Fatalf("disposition = %v", disp)
	}
	if got == nil || got.Sig != SIGSEGV {
		t.Error("expected SIGSEGV")
	}
}

func TestCopyToFromUser(t *testing.T) {
	k, p := bootWithProc(t)
	addr, _ := p.Mmap(k, 0, 2*mem.PageSize, true, "buf")
	msg := []byte("cross-page payload spanning boundary")
	target := addr + mem.PageSize - 10
	if err := k.CopyToUser(p, target, msg); err != nil {
		t.Fatal(err)
	}
	got, err := k.CopyFromUser(p, target, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Errorf("round trip = %q", got)
	}
	if _, err := k.CopyFromUser(p, 0x9000_0000, 4); err == nil {
		t.Error("copy from unmapped address must fail")
	}
}

func TestMprotectAndMunmap(t *testing.T) {
	k, p := bootWithProc(t)
	addr, _ := p.Mmap(k, 0, mem.PageSize, true, "x")
	p.Touch(k, addr, mem.PageSize)
	if err := p.Mprotect(k, addr, false); err != nil {
		t.Fatal(err)
	}
	if p.AS.Lookup(addr).Writable() {
		t.Error("page still writable")
	}
	if err := p.Munmap(k, addr); err != nil {
		t.Fatal(err)
	}
	if p.AS.Lookup(addr).Present() {
		t.Error("page still mapped after munmap")
	}
	if p.Region(addr) != nil {
		t.Error("region still present")
	}
}

func TestMmapOverlapRejected(t *testing.T) {
	k, p := bootWithProc(t)
	addr, err := p.Mmap(k, 0x1000_0000, 2*mem.PageSize, true, "a")
	if err != nil || addr != 0x1000_0000 {
		t.Fatal(err)
	}
	if _, err := p.Mmap(k, 0x1000_1000, mem.PageSize, true, "b"); err == nil {
		t.Error("overlapping mmap must fail")
	}
}

func TestKernelAllocAndMapKernelPage(t *testing.T) {
	k, p := bootWithProc(t)
	addr, err := k.KernelAlloc(100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if addr&mem.PageMask != 0 {
		t.Errorf("aligned alloc = %#x", addr)
	}
	// Kernel mappings are visible through any process AS (shared
	// kernel page tables).
	if !p.AS.Lookup(addr).Present() {
		t.Error("kernel page not visible in process address space")
	}
	if p.AS.Lookup(addr).User() {
		t.Error("kernel page must be PPL 0")
	}
	q, _ := k.CreateProcess()
	if !q.AS.Lookup(addr).Present() {
		t.Error("kernel page not visible in later process")
	}
}

func TestSwitchLoadsCR3AndTSS(t *testing.T) {
	k, p := bootWithProc(t)
	q, _ := k.CreateProcess()
	k.Switch(p)
	_, _, flushesBefore := k.MMU.TLB().Stats()
	k.Switch(q)
	if k.Current() != q {
		t.Error("current not switched")
	}
	_, _, flushesAfter := k.MMU.TLB().Stats()
	if flushesAfter != flushesBefore+1 {
		t.Error("context switch must flush the TLB (CR3 load)")
	}
	if k.Machine.TSS.ESP[0] != q.KStackTop-KernelBase {
		t.Error("TSS kernel stack not updated")
	}
	if k.Switch(q); k.Current() != q {
		t.Error("self-switch broke current")
	}
}

func TestTimerTickSubscribers(t *testing.T) {
	k := boot(t)
	n := 0
	cancel := k.OnTimerTick(func() error { n++; return nil })
	if err := k.timerTick(); err != nil || n != 1 {
		t.Fatalf("tick: err=%v n=%d", err, n)
	}
	cancel()
	if err := k.timerTick(); err != nil || n != 1 {
		t.Errorf("cancelled subscriber ran: n=%d", n)
	}
}

func TestInstallCallGateAndSegmentPair(t *testing.T) {
	k := boot(t)
	gate, err := k.InstallCallGate(3, ACodeSel, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	d := k.MMU.Descriptor(gate)
	if d == nil || d.Kind != mmu.SegCallGate || d.DPL != 3 || d.GateOff != 0x1234 {
		t.Errorf("gate descriptor = %+v", d)
	}
	code, data, err := k.InstallSegmentPair(ExtSegBase, 0x00FF_FFFF, 1)
	if err != nil {
		t.Fatal(err)
	}
	cd := k.MMU.Descriptor(code)
	dd := k.MMU.Descriptor(data)
	if cd.Base != ExtSegBase || cd.DPL != 1 || cd.Kind != mmu.SegCode {
		t.Errorf("ext code descriptor = %+v", cd)
	}
	if dd.Kind != mmu.SegData || !dd.Writable {
		t.Errorf("ext data descriptor = %+v", dd)
	}
	if code.RPL() != 1 || data.RPL() != 1 {
		t.Error("selector RPLs should match DPL")
	}
}

func TestExitRemovesProcess(t *testing.T) {
	k, p := bootWithProc(t)
	k.Exit(p, 3)
	if !p.Exited || p.ExitCode != 3 {
		t.Error("exit state wrong")
	}
	if k.Process(p.PID) != nil {
		t.Error("process still registered")
	}
}

func TestDefaultSignalDispositionKills(t *testing.T) {
	k, p := bootWithProc(t)
	k.DeliverSignal(p, SignalInfo{Sig: SIGSEGV, Reason: "no handler"})
	if !p.Exited {
		t.Error("SIGSEGV without handler must kill the process")
	}
}

func TestFaultDispositionString(t *testing.T) {
	for d, want := range map[FaultDisposition]string{
		Retry: "retry", SignalDelivered: "signal-delivered",
		KernelExtensionFault: "kernel-extension-fault", Fatal: "fatal",
	} {
		if !strings.Contains(d.String(), want) {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}
