// Snapshot-to-bytes serialization of the kernel. Like Clone and
// Restore, the byte image carries the logical kernel state — process
// table, allocator, cursors, cost sheet, console — plus the whole
// machine (cpu + mmu + clock + physical frames). What a byte stream
// cannot carry are the Go closures the kernel is made of: syscall
// handlers, kernel services, per-process signal handlers, timer
// subscribers. LoadFrom therefore restores INTO a deterministically
// booted twin kernel: the twin's boot constructed all closures, and
// the image's endpoint registries are validated against the twin's
// (same syscall numbers, same service addresses) instead of being
// replaced. Everything is decoded and validated before anything is
// applied — a corrupt image never yields a half-restored kernel.
package kernel

import (
	"maps"
	"slices"

	"repro/internal/mem"
	"repro/internal/mmu"
)

// SaveTo appends the kernel image. The machine (which serializes the
// MMU and clock, and whose load step is the first to mutate) comes
// after the kernel's own fields; the physical frames come last so the
// composed decoder can stage them with everything else.
func (k *Kernel) SaveTo(e *mem.Enc) {
	e.U32(k.kernelTemplate.CR3())
	e.I32(int32(k.nextPID))
	cur := int32(-1)
	if k.cur != nil {
		cur = int32(k.cur.PID)
	}
	e.I32(cur)

	e.U32(uint32(len(k.procs)))
	for _, pid := range slices.Sorted(maps.Keys(k.procs)) {
		p := k.procs[pid]
		e.I32(int32(p.PID))
		e.I32(int32(p.Parent))
		e.U8(uint8(p.TaskSPL))
		e.U32(p.AS.CR3())
		e.U32(p.Brk)
		e.U32(p.mmapPtr)
		e.U32(p.KStackTop)
		e.U32(p.Ring2StackTop)
		e.Bool(p.Exited)
		e.I32(int32(p.ExitCode))
		e.Bool(p.LastSignal != nil)
		if p.LastSignal != nil {
			// The *mmu.Fault detail is a host-side diagnostic and is
			// not serialized; signal number and reason round-trip.
			e.I32(int32(p.LastSignal.Sig))
			e.String(p.LastSignal.Reason)
		}
		e.U32(uint32(len(p.Regions)))
		for _, r := range p.Regions {
			e.String(r.Name)
			e.U32(r.Start)
			e.U32(r.End)
			e.Bool(r.Writable)
			e.Bool(r.ForcePPL1)
		}
	}

	e.U32(k.nextKStack)
	e.U32(k.nextKHeap)
	e.U32(k.nextSvcAddr)
	e.I32(int32(k.nextGate))
	e.U32(k.svcSyscallAddr)
	e.U32(k.svcKSvcAddr)

	saveKeySet(e, k.syscalls)
	saveKeySet(e, k.kernelServices)

	for _, v := range costsFields(k.Costs) {
		e.F64(*v)
	}
	e.F64(k.ExtTimeLimit)
	e.F64(k.extDeadline)
	e.U32(uint32(len(k.tickFns)))
	e.Bytes(k.ConsoleOut)

	k.Machine.SaveTo(e)
	k.Alloc.SaveTo(e)
	k.Phys.SaveTo(e)
}

func saveKeySet(e *mem.Enc, m map[uint32]SyscallFn) {
	e.U32(uint32(len(m)))
	for _, nr := range slices.Sorted(maps.Keys(m)) {
		e.U32(nr)
	}
}

// costsFields enumerates every CostSheet field in wire order. A new
// cost must be added here to round-trip (TestCostSheetWireCoverage
// pins the count against the struct).
func costsFields(c *CostSheet) []*float64 {
	return []*float64{
		&c.SyscallEntry, &c.SyscallExit, &c.ContextSwitch,
		&c.Fork, &c.Exec,
		&c.PFHandler, &c.GPHandler, &c.SignalDeliver,
		&c.PPLMarkStart, &c.PPLMarkPerPage,
		&c.CopyPerByte, &c.MapPage,
		&c.DlopenBase, &c.DlopenPerSymbol, &c.DlopenPerPage,
		&c.TimerTick,
	}
}

// procImage is one decoded process, staged before application.
type procImage struct {
	val     Process // AS filled in during staging, Regions during apply
	regions []VMRegion
}

// LoadFrom decodes a SaveTo image into this kernel, which must be a
// deterministically booted twin. Process structs that exist in the
// twin under the same PID are restored in place, so every reference
// held elsewhere (a core.App's process, a web server's CGI helper)
// stays valid — exactly the discipline Snapshot/Restore follows.
// Signal handlers are kept from the twin when the process survives
// (the kernel cannot reconstruct user closures) and are nil on
// processes the twin did not have.
func (k *Kernel) LoadFrom(d *mem.Dec) error {
	ktCR3 := d.U32()
	if d.Err() == nil && ktCR3 != k.kernelTemplate.CR3() {
		d.Failf("kernel template CR3 %#x does not match booted twin's %#x", ktCR3, k.kernelTemplate.CR3())
	}
	nextPID := int(d.I32())
	curPID := int(d.I32())

	nProcs := d.Len("process", 1<<20)
	procs := make([]procImage, 0, nProcs)
	lastPID := -1 << 30
	for i := 0; i < nProcs; i++ {
		var pi procImage
		p := &pi.val
		p.PID = int(d.I32())
		if d.Err() == nil && p.PID <= lastPID {
			d.Failf("process %d out of order", p.PID)
		}
		lastPID = p.PID
		p.Parent = int(d.I32())
		spl := d.U8()
		if d.Err() == nil && (spl < 2 || spl > 3) {
			d.Failf("process %d has SPL %d", p.PID, spl)
		}
		p.TaskSPL = int(spl)
		cr3 := d.U32()
		p.Brk = d.U32()
		p.mmapPtr = d.U32()
		p.KStackTop = d.U32()
		p.Ring2StackTop = d.U32()
		p.Exited = d.Bool()
		p.ExitCode = int(d.I32())
		if d.Bool() {
			p.LastSignal = &SignalInfo{Sig: int(d.I32()), Reason: d.String()}
		}
		nRegions := d.Len("vm region", 1<<16)
		for j := 0; j < nRegions; j++ {
			r := VMRegion{
				Name: d.String(), Start: d.U32(), End: d.U32(),
				Writable: d.Bool(), ForcePPL1: d.Bool(),
			}
			if d.Err() == nil && (r.Start&uint32(mem.PageMask) != 0 || r.End&uint32(mem.PageMask) != 0 || r.End <= r.Start) {
				d.Failf("process %d region %q [%#x,%#x) malformed", p.PID, r.Name, r.Start, r.End)
			}
			pi.regions = append(pi.regions, r)
		}
		if d.Err() != nil {
			return d.Err()
		}
		if cr3&uint32(mem.PageMask) != 0 {
			d.Failf("process %d CR3 %#x not page aligned", p.PID, cr3)
			return d.Err()
		}
		// Wrapper objects only: contents live in the frame image.
		p.AS = mmu.AdoptAddressSpace(k.Phys, k.Alloc, cr3)
		procs = append(procs, pi)
	}

	nextKStack := d.U32()
	nextKHeap := d.U32()
	nextSvcAddr := d.U32()
	nextGate := int(d.I32())
	svcSyscallAddr := d.U32()
	svcKSvcAddr := d.U32()
	if d.Err() == nil && (svcSyscallAddr != k.svcSyscallAddr || svcKSvcAddr != k.svcKSvcAddr) {
		d.Failf("trusted endpoint addresses %#x/%#x do not match booted twin's %#x/%#x",
			svcSyscallAddr, svcKSvcAddr, k.svcSyscallAddr, k.svcKSvcAddr)
	}

	if err := checkKeySet(d, "syscall", k.syscalls); err != nil {
		return err
	}
	if err := checkKeySet(d, "kernel service", k.kernelServices); err != nil {
		return err
	}

	var costs CostSheet
	for _, v := range costsFields(&costs) {
		*v = d.F64()
	}
	extTimeLimit := d.F64()
	extDeadline := d.F64()
	tickLen := d.Len("tick subscriber", 1<<16)
	if d.Err() == nil && tickLen != len(k.tickFns) {
		d.Failf("image has %d timer subscribers, booted twin has %d", tickLen, len(k.tickFns))
	}
	console := slices.Clone(d.Bytes())
	if err := d.Err(); err != nil {
		return err
	}

	// cur must name a serialized process (or be absent).
	var curImage *procImage
	if curPID >= 0 {
		for i := range procs {
			if procs[i].val.PID == curPID {
				curImage = &procs[i]
			}
		}
		if curImage == nil {
			d.Failf("current process %d not in image", curPID)
			return d.Err()
		}
	}

	// The machine decodes next. Its CR3-adoption callback hands back
	// the staged processes' address-space objects so the MMU's current
	// space has pointer identity with the process that owns it.
	adopt := func(cr3 uint32) *mmu.AddressSpace {
		for i := range procs {
			if procs[i].val.AS.CR3() == cr3 {
				return procs[i].val.AS
			}
		}
		if cr3 == k.kernelTemplate.CR3() {
			return k.kernelTemplate
		}
		return mmu.AdoptAddressSpace(k.Phys, k.Alloc, cr3)
	}
	if err := k.Machine.LoadFrom(d, adopt); err != nil {
		return err
	}

	// Allocator and frames: stage, then adopt. From here on nothing
	// fails; the machine application above was the first mutation.
	stagedAlloc := k.Alloc.Clone()
	if err := stagedAlloc.LoadFrom(d); err != nil {
		return err
	}
	physImg, err := mem.DecodePhysImage(d)
	if err != nil {
		return err
	}
	k.Phys.AdoptImage(physImg)
	*k.Alloc = *stagedAlloc

	old := k.procs
	k.procs = make(map[int]*Process, len(procs))
	for i := range procs {
		pi := &procs[i]
		p := old[pi.val.PID]
		if p == nil {
			p = &Process{}
		} else {
			// The twin's handler closure survives an in-place restore,
			// like Snapshot/Restore keeps it.
			pi.val.SignalHandler = p.SignalHandler
		}
		*p = pi.val
		p.Regions = regionPtrs(pi.regions)
		k.procs[p.PID] = p
		if curImage == pi {
			k.cur = p
		}
	}
	if curPID < 0 {
		k.cur = nil
	}
	k.nextPID = nextPID

	k.nextKStack = nextKStack
	k.nextKHeap = nextKHeap
	k.nextSvcAddr = nextSvcAddr
	k.nextGate = nextGate
	*k.Costs = costs
	k.ExtTimeLimit = extTimeLimit
	k.extDeadline = extDeadline
	k.ConsoleOut = append(k.ConsoleOut[:0], console...)
	return nil
}

func checkKeySet(d *mem.Dec, what string, m map[uint32]SyscallFn) error {
	n := d.Len(what, 1<<20)
	if d.Err() == nil && n != len(m) {
		d.Failf("image has %d %s entries, booted twin has %d", n, what, len(m))
	}
	for i := 0; i < n; i++ {
		nr := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		if _, ok := m[nr]; !ok {
			d.Failf("%s %#x in image not registered in booted twin", what, nr)
			return d.Err()
		}
	}
	return d.Err()
}
