// Package kernel implements the miniature Linux-like operating system
// that hosts Palladium: processes with the 3 GB user / 1 GB kernel
// virtual address space split of Figure 2, system calls through
// interrupt gate 0x80, demand-paged mmap regions, a page-fault handler
// carrying the Palladium check of Section 4.5.2, signal delivery,
// fork/exec privilege-level inheritance rules, and the timer-based
// CPU-time limits that police runaway extensions.
//
// The kernel itself is trusted and therefore runs as Go code, charging
// its software-path costs (CostSheet) to the same simulated clock the
// CPU uses; everything untrusted executes on the simulated CPU.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// ErrExtTimeBudget is returned out of the timer tick when the armed
// per-invocation extension deadline (ArmExtLimit) has passed. The core
// layer translates it into its public ErrTimeLimit.
var ErrExtTimeBudget = errors.New("kernel: extension time budget exceeded")

// Virtual address space layout (paper Figures 2 and 3).
const (
	// UserLimit is the last byte of the user segments (0 .. 3 GB-1).
	UserLimit = 0xBFFF_FFFF
	// KernelBase is the linear base of the kernel segments (3 GB).
	KernelBase = 0xC000_0000
	// KernelLimit is the kernel segments' limit (1 GB - 1, as an
	// offset within the segment).
	KernelLimit = 0x3FFF_FFFF

	// UserTextBase is where process text is loaded ("a little bit
	// greater than 0, leaving a hole at the bottom" for ld.so).
	UserTextBase = 0x0000_8000
	// MmapBase is where shared libraries and extension modules are
	// mapped ("the middle of the unused region between Heap and
	// Stack").
	MmapBase = 0x4000_0000
	// StackTop is the top of the user stack region.
	StackTop = 0xBFFF_F000
	// Ring2GateBase is the page holding the hardware-pushed gate
	// frames for SPL3 -> SPL2 transfers (allocated by init_PL).
	Ring2GateBase = 0xB7FF_0000

	// Kernel-internal linear layout.
	kServiceBase = 0xC000_0000 // service entry addresses (no backing pages)
	kStackBase   = 0xC010_0000 // per-process kernel stacks
	kHeapBase    = 0xC400_0000 // kernel heap (shared data areas etc.)
	// ExtSegBase is where kernel extension segments are carved out.
	ExtSegBase = 0xC800_0000
)

// Fixed GDT selectors (indices), Linux-style with Palladium additions.
const (
	SelKCode = 1 // kernel code, DPL 0, 3-4 GB
	SelKData = 2 // kernel data, DPL 0
	SelUCode = 3 // user code, DPL 3, 0-3 GB
	SelUData = 4 // user data, DPL 3
	SelACode = 5 // extensible-application code, DPL 2 (init_PL)
	SelAData = 6 // extensible-application data, DPL 2
	// SelDynBase: first dynamically allocated GDT slot (extension
	// segments, call gates).
	SelDynBase = 8
)

// Interrupt vectors.
const (
	VecSyscall    = 0x80 // user system calls
	VecKernelSvc  = 0x81 // core kernel services exposed to kernel extensions
	gdtSize       = 512
	physBase      = 0x0100_0000 // first allocatable frame (16 MB)
	physSize      = 0x3000_0000 // 768 MB of simulated frames
	kernelPDFirst = KernelBase >> 22
)

// KCodeSel etc. are the ready-made selector values.
var (
	KCodeSel = mmu.MakeSelector(SelKCode, false, 0)
	KDataSel = mmu.MakeSelector(SelKData, false, 0)
	UCodeSel = mmu.MakeSelector(SelUCode, false, 3)
	UDataSel = mmu.MakeSelector(SelUData, false, 3)
	ACodeSel = mmu.MakeSelector(SelACode, false, 2)
	ADataSel = mmu.MakeSelector(SelAData, false, 2)
)

// Kernel is the simulated operating system.
type Kernel struct {
	Machine *cpu.Machine
	MMU     *mmu.MMU
	Phys    *mem.Physical
	Clock   *cycles.Clock
	Model   *cycles.Model
	Alloc   *mem.FrameAllocator
	Costs   *CostSheet

	procs   map[int]*Process
	nextPID int
	cur     *Process

	// kernelTemplate holds the kernel half of every address space;
	// its page-table frames are shared by all processes, so kernel
	// mappings made after boot are globally visible.
	kernelTemplate *mmu.AddressSpace

	syscalls map[uint32]SyscallFn
	// kernelServices is the pre-defined interface exposed to kernel
	// extensions through int 0x81 (Section 4.3).
	kernelServices map[uint32]SyscallFn

	nextKStack  uint32
	nextKHeap   uint32
	nextSvcAddr uint32
	nextGate    int

	// svcSyscallAddr / svcKSvcAddr are the service addresses of the two
	// kernel-owned trusted endpoints; Clone re-registers handlers bound
	// to the cloned kernel at these addresses.
	svcSyscallAddr uint32
	svcKSvcAddr    uint32

	// ExtTimeLimit is the per-invocation extension CPU budget in
	// cycles ("a system parameter set by the system administrator").
	ExtTimeLimit float64

	// tickFns receive timer ticks (extension budget policing).
	tickFns []func() error

	// extDeadline is the armed per-invocation extension CPU deadline in
	// absolute cycles (0 = disarmed). It replaces the per-call
	// OnTimerTick closure the invocation paths used to register, so the
	// steady-state serving path allocates nothing; nesting is handled
	// by saving the previous deadline across Arm/Disarm.
	extDeadline float64

	// ConsoleOut collects bytes written via SysWrite to fd 1/2.
	ConsoleOut []byte
}

// New boots a kernel: physical memory, GDT, IDT, the kernel template
// address space, and the idle process.
func New(model *cycles.Model) (*Kernel, error) {
	phys := mem.NewPhysical()
	clock := cycles.NewClock(200)
	mu := mmu.New(phys, gdtSize, clock, model)
	machine := cpu.New(phys, mu, clock, model)
	k := &Kernel{
		Machine:        machine,
		MMU:            mu,
		Phys:           phys,
		Clock:          clock,
		Model:          model,
		Alloc:          mem.NewFrameAllocator(physBase, physSize),
		Costs:          DefaultCosts(),
		procs:          make(map[int]*Process),
		nextPID:        1,
		syscalls:       make(map[uint32]SyscallFn),
		kernelServices: make(map[uint32]SyscallFn),
		nextKStack:     kStackBase,
		nextKHeap:      kHeapBase,
		nextSvcAddr:    kServiceBase + 0x100,
		nextGate:       SelDynBase,
		ExtTimeLimit:   2_000_000, // 10 ms at 200 MHz
	}

	gdt := mu.GDT
	gdt.Set(SelKCode, mmu.Descriptor{Kind: mmu.SegCode, Base: KernelBase, Limit: KernelLimit, DPL: 0, Present: true, Readable: true})
	gdt.Set(SelKData, mmu.Descriptor{Kind: mmu.SegData, Base: KernelBase, Limit: KernelLimit, DPL: 0, Present: true, Writable: true})
	gdt.Set(SelUCode, mmu.Descriptor{Kind: mmu.SegCode, Base: 0, Limit: UserLimit, DPL: 3, Present: true, Readable: true})
	gdt.Set(SelUData, mmu.Descriptor{Kind: mmu.SegData, Base: 0, Limit: UserLimit, DPL: 3, Present: true, Writable: true})
	gdt.Set(SelACode, mmu.Descriptor{Kind: mmu.SegCode, Base: 0, Limit: UserLimit, DPL: 2, Present: true, Readable: true})
	gdt.Set(SelAData, mmu.Descriptor{Kind: mmu.SegData, Base: 0, Limit: UserLimit, DPL: 2, Present: true, Writable: true})

	tmpl, err := mmu.NewAddressSpace(phys, k.Alloc)
	if err != nil {
		return nil, fmt.Errorf("kernel: boot address space: %w", err)
	}
	k.kernelTemplate = tmpl
	// Kernel-range page tables are created lazily by mapKernelShared,
	// which shares each newly born table's directory entry into every
	// live process address space — the same global-visibility property
	// eager preallocation provided, without allocating 256 page-table
	// frames (1 MB of zeroed memory) on every boot.
	// Until the first process is scheduled, the CPU runs on the
	// kernel's own address space (the boot CR3).
	mu.LoadCR3(tmpl)

	// System call and kernel-service interrupt gates. The syscall
	// gate is DPL 3 (reachable by everyone); the kernel-service gate
	// is DPL 1: reachable by kernel extensions, not by user code.
	svcSyscall := k.allocServiceAddr()
	k.svcSyscallAddr = svcSyscall
	machine.IDT[VecSyscall] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 3, Present: true,
		GateSel: KCodeSel, GateOff: svcSyscall - KernelBase,
	}
	machine.RegisterService(svcSyscall, &cpu.Service{
		Name: "syscall", Kind: cpu.ServiceInt, Handler: k.syscallEntry,
	})
	svcKSvc := k.allocServiceAddr()
	k.svcKSvcAddr = svcKSvc
	machine.IDT[VecKernelSvc] = mmu.Descriptor{
		Kind: mmu.SegIntGate, DPL: 1, Present: true,
		GateSel: KCodeSel, GateOff: svcKSvc - KernelBase,
	}
	machine.RegisterService(svcKSvc, &cpu.Service{
		Name: "kernel-service", Kind: cpu.ServiceInt, Handler: k.kernelServiceEntry,
	})

	k.registerDefaultSyscalls()

	// Timer plumbing: one simulated tick per ~0.1 ms.
	machine.TickCycles = 20_000
	machine.OnTick = func(*cpu.Machine) error { return k.timerTick() }
	return k, nil
}

// allocServiceAddr hands out a unique kernel-space linear address for
// a trusted service endpoint (no backing page needed).
func (k *Kernel) allocServiceAddr() uint32 {
	a := k.nextSvcAddr
	k.nextSvcAddr += 16
	return a
}

// AllocServiceAddr exposes service-address allocation to subsystems
// (Palladium registers application services and per-extension
// endpoints).
func (k *Kernel) AllocServiceAddr() uint32 { return k.allocServiceAddr() }

// AllocGateIndex reserves a GDT slot for a gate or segment descriptor.
func (k *Kernel) AllocGateIndex() (int, error) {
	if k.nextGate >= gdtSize {
		return 0, fmt.Errorf("kernel: GDT full")
	}
	i := k.nextGate
	k.nextGate++
	return i, nil
}

// KernelAlloc reserves n bytes of kernel heap (page-granular when
// align is 4096) and maps them supervisor/PPL 0, returning the linear
// address.
func (k *Kernel) KernelAlloc(n, align uint32) (uint32, error) {
	if align == 0 {
		align = 4
	}
	k.nextKHeap = (k.nextKHeap + align - 1) &^ (align - 1)
	addr := k.nextKHeap
	k.nextKHeap += n
	// Map the covered pages in the shared kernel template.
	start := addr &^ uint32(mem.PageMask)
	end := (addr + n + mem.PageMask) &^ uint32(mem.PageMask)
	for lin := start; lin < end; lin += mem.PageSize {
		if k.kernelTemplate.Lookup(lin).Present() {
			continue
		}
		frame, err := k.Alloc.Alloc()
		if err != nil {
			return 0, err
		}
		if err := k.mapKernelShared(lin, frame, true); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

// mapKernelShared installs a kernel mapping in the shared template.
// When the mapping creates a new kernel page table, that table's
// directory entry is shared into every live process address space, so
// post-boot kernel mappings stay globally visible exactly as they were
// under eager page-table preallocation.
func (k *Kernel) mapKernelShared(linear, frame uint32, writable bool) error {
	fresh := !k.kernelTemplate.HasTable(linear)
	if err := k.kernelTemplate.Map(linear, frame, writable, false); err != nil {
		return err
	}
	if fresh {
		for _, p := range k.procs {
			p.AS.ShareRangeFrom(k.kernelTemplate, linear, linear)
		}
	}
	return nil
}

// MapKernelPage maps one kernel page with explicit permissions in the
// globally shared kernel region.
func (k *Kernel) MapKernelPage(linear uint32, writable bool) (uint32, error) {
	frame, err := k.Alloc.Alloc()
	if err != nil {
		return 0, err
	}
	if err := k.mapKernelShared(linear, frame, writable); err != nil {
		return 0, err
	}
	k.MMU.InvalidatePage(linear)
	return frame, nil
}

// KernelSpace exposes the shared kernel-half address space (module
// loading and extension-segment management need physical lookups).
func (k *Kernel) KernelSpace() *mmu.AddressSpace { return k.kernelTemplate }

// Current returns the currently scheduled process.
func (k *Kernel) Current() *Process { return k.cur }

// Process returns the process with the given pid, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Switch schedules process p: context-switch cost, CR3 load (TLB
// flush), kernel stack update in the TSS.
func (k *Kernel) Switch(p *Process) {
	if p == k.cur {
		return
	}
	k.Clock.Add(k.Costs.ContextSwitch)
	k.schedule(p)
}

// schedule installs p as the running process without charging the
// context-switch cost (initial scheduling of the first process).
func (k *Kernel) schedule(p *Process) {
	k.cur = p
	k.MMU.LoadCR3(p.AS)
	k.LoadTSS(p)
}

// LoadTSS programs the task-state-segment stack slots for p: the
// per-process kernel stack (ring 0) and — for Palladium processes at
// SPL 2 — the ring-2 stack.
func (k *Kernel) LoadTSS(p *Process) {
	k.Machine.TSS.SS[0] = KDataSel
	k.Machine.TSS.ESP[0] = p.KStackTop - KernelBase
	k.Machine.TSS.SS[2] = ADataSel
	k.Machine.TSS.ESP[2] = p.Ring2StackTop
}

// timerTick polices extension CPU budgets.
func (k *Kernel) timerTick() error {
	k.Clock.Add(k.Costs.TimerTick)
	for _, fn := range k.tickFns {
		if err := fn(); err != nil {
			return err
		}
	}
	// The armed invocation deadline runs after the subscribed fns,
	// matching the order of the per-call registration it replaced
	// (invocation limiters were appended last).
	if k.extDeadline > 0 && k.Clock.Cycles() > k.extDeadline {
		return ErrExtTimeBudget
	}
	return nil
}

// ArmExtLimit arms the built-in per-invocation extension CPU limiter:
// once the simulated clock passes deadline, the next timer tick stops
// the run with ErrExtTimeBudget. It returns the previously armed
// deadline, which the caller must hand back to DisarmExtLimit so
// nested invocations restore the outer limit. A nested invocation may
// not outlive the outer limit: the effective deadline is the earlier
// of the two, matching the stacked per-call tick subscribers this
// mechanism replaced (every registered subscriber kept checking its
// own deadline).
func (k *Kernel) ArmExtLimit(deadline float64) (prev float64) {
	prev = k.extDeadline
	if prev > 0 && prev < deadline {
		deadline = prev
	}
	k.extDeadline = deadline
	return prev
}

// DisarmExtLimit restores the deadline ArmExtLimit replaced.
func (k *Kernel) DisarmExtLimit(prev float64) { k.extDeadline = prev }

// OnTimerTick registers a tick subscriber and returns a removal func.
// Removal is bounds-checked: a snapshot rollback may truncate the
// subscriber list under a still-pending removal (the rolled-back
// timeline's registration no longer exists).
func (k *Kernel) OnTimerTick(fn func() error) func() {
	k.tickFns = append(k.tickFns, fn)
	i := len(k.tickFns) - 1
	return func() {
		if i < len(k.tickFns) {
			k.tickFns[i] = func() error { return nil }
		}
	}
}
