package kernel

import (
	"maps"
	"slices"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// procSave captures one process. The original *Process pointer is kept
// so a restore rewrites the fields in place: every reference held
// elsewhere (core.App.P, a web server's CGI helper process) stays
// valid across rollback.
type procSave struct {
	p       *Process
	val     Process
	regions []VMRegion
}

// Snapshot captures the whole kernel: the machine (CPU + MMU + clock +
// COW memory image) plus the kernel's own bookkeeping — process table,
// frame allocator, heap/stack/GDT cursors, console output. Taking a
// snapshot charges no simulated cycles.
type Snapshot struct {
	mach  *cpu.MachineSnapshot
	alloc mem.AllocatorState

	procs   []procSave
	nextPID int
	cur     *Process

	nextKStack  uint32
	nextKHeap   uint32
	nextSvcAddr uint32
	nextGate    int

	costs        CostSheet
	extTimeLimit float64
	extDeadline  float64
	tickLen      int
	console      []byte

	syscalls       map[uint32]SyscallFn
	kernelServices map[uint32]SyscallFn
}

// Snapshot captures the kernel state for a later Restore.
func (k *Kernel) Snapshot() *Snapshot {
	s := &Snapshot{
		mach:  k.Machine.Snapshot(),
		alloc: k.Alloc.Save(),

		nextPID: k.nextPID,
		cur:     k.cur,

		nextKStack:  k.nextKStack,
		nextKHeap:   k.nextKHeap,
		nextSvcAddr: k.nextSvcAddr,
		nextGate:    k.nextGate,

		costs:        *k.Costs,
		extTimeLimit: k.ExtTimeLimit,
		extDeadline:  k.extDeadline,
		tickLen:      len(k.tickFns),
		console:      slices.Clone(k.ConsoleOut),

		syscalls:       maps.Clone(k.syscalls),
		kernelServices: maps.Clone(k.kernelServices),
	}
	for _, p := range k.procs {
		s.procs = append(s.procs, procSave{p: p, val: *p, regions: copyRegions(p.Regions)})
	}
	return s
}

func copyRegions(rs []*VMRegion) []VMRegion {
	out := make([]VMRegion, len(rs))
	for i, r := range rs {
		out[i] = *r
	}
	return out
}

func regionPtrs(rs []VMRegion) []*VMRegion {
	out := make([]*VMRegion, len(rs))
	for i := range rs {
		r := rs[i]
		out[i] = &r
	}
	return out
}

// Restore rewinds the kernel (and its machine) to the snapshot.
// Processes created after the snapshot vanish; processes alive at the
// snapshot are restored field-by-field into their original structs.
// The snapshot remains valid for further restores.
func (k *Kernel) Restore(s *Snapshot) {
	k.Machine.Restore(s.mach)
	k.Alloc.RestoreState(s.alloc)

	k.procs = make(map[int]*Process, len(s.procs))
	for _, ps := range s.procs {
		*ps.p = ps.val
		ps.p.Regions = regionPtrs(ps.regions)
		k.procs[ps.p.PID] = ps.p
	}
	k.nextPID = s.nextPID
	k.cur = s.cur

	k.nextKStack = s.nextKStack
	k.nextKHeap = s.nextKHeap
	k.nextSvcAddr = s.nextSvcAddr
	k.nextGate = s.nextGate

	*k.Costs = s.costs
	k.ExtTimeLimit = s.extTimeLimit
	k.extDeadline = s.extDeadline
	if len(k.tickFns) > s.tickLen {
		k.tickFns = k.tickFns[:s.tickLen]
	}
	k.ConsoleOut = append(k.ConsoleOut[:0], s.console...)

	k.syscalls = maps.Clone(s.syscalls)
	k.kernelServices = maps.Clone(s.kernelServices)
}

// Release frees the snapshot's hold on the COW frame store.
func (s *Snapshot) Release() { s.mach.Release() }

// Clone derives a complete, independent kernel from this one: the
// physical memory image is shared copy-on-write, every Go-level
// structure (machine, MMU, descriptor tables, TLB, process table,
// allocator) is copied, and the kernel-owned trusted endpoints
// (syscall and kernel-service entries, the timer hook) are re-bound to
// the clone. The clone's simulated state — clock, counters, memory —
// is bit-identical to the source's at the moment of cloning, so a
// clone of a freshly booted kernel is indistinguishable from a fresh
// boot at a fraction of the wall-clock cost.
//
// Clone must be called while the source machine is quiescent (no
// simulated run in progress); the clone may then be used from another
// goroutine.
//
// Process.SignalHandler closures are user-owned and carried over
// verbatim (the kernel cannot re-bind them): a handler that captures
// Go state observes the *template's* state when a cloned process
// faults. Fleet workloads leave handlers unset; install per-clone
// handlers after cloning if you need per-machine signal state.
func (k *Kernel) Clone() (*Kernel, error) {
	phys := k.Phys.Clone()
	clock := k.Clock.Clone()
	mu := k.MMU.Clone(phys, clock)
	machine := k.Machine.Clone(phys, mu, clock)
	alloc := k.Alloc.Clone()
	costs := *k.Costs

	k2 := &Kernel{
		Machine: machine,
		MMU:     mu,
		Phys:    phys,
		Clock:   clock,
		Model:   k.Model,
		Alloc:   alloc,
		Costs:   &costs,

		procs:   make(map[int]*Process, len(k.procs)),
		nextPID: k.nextPID,

		kernelTemplate: mmu.AdoptAddressSpace(phys, alloc, k.kernelTemplate.CR3()),

		syscalls:       maps.Clone(k.syscalls),
		kernelServices: maps.Clone(k.kernelServices),

		nextKStack:     k.nextKStack,
		nextKHeap:      k.nextKHeap,
		nextSvcAddr:    k.nextSvcAddr,
		nextGate:       k.nextGate,
		svcSyscallAddr: k.svcSyscallAddr,
		svcKSvcAddr:    k.svcKSvcAddr,
		ExtTimeLimit:   k.ExtTimeLimit,
		extDeadline:    k.extDeadline,
		ConsoleOut:     slices.Clone(k.ConsoleOut),
	}

	for pid, p := range k.procs {
		p2 := *p
		p2.Regions = regionPtrs(copyRegions(p.Regions))
		p2.AS = mmu.AdoptAddressSpace(phys, alloc, p.AS.CR3())
		k2.procs[pid] = &p2
		if k.cur == p {
			k2.cur = &p2
		}
	}

	// Rebind the MMU's current address space to the clone's wrapper
	// object (same CR3, same page tables — they live in the COW'd
	// simulated memory).
	switch space := k.MMU.Space(); {
	case space == nil:
		// Not booted far enough to have one; nothing to adopt.
	case k.cur != nil && space == k.cur.AS:
		mu.AdoptSpace(k2.cur.AS)
	case space == k.kernelTemplate:
		mu.AdoptSpace(k2.kernelTemplate)
	default:
		mu.AdoptSpace(mmu.AdoptAddressSpace(phys, alloc, space.CR3()))
	}

	// Re-register the kernel-owned trusted endpoints with handlers
	// bound to the clone (the machine clone carried over the map
	// entries, but those handlers close over the source kernel).
	machine.RegisterService(k2.svcSyscallAddr, &cpu.Service{
		Name: "syscall", Kind: cpu.ServiceInt, Handler: k2.syscallEntry,
	})
	machine.RegisterService(k2.svcKSvcAddr, &cpu.Service{
		Name: "kernel-service", Kind: cpu.ServiceInt, Handler: k2.kernelServiceEntry,
	})
	machine.OnTick = func(*cpu.Machine) error { return k2.timerTick() }
	return k2, nil
}
