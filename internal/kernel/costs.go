package kernel

// CostSheet holds the software-path cycle costs of the kernel: the work
// its handlers perform beyond the hardware (gate/fault) costs charged
// by the CPU and MMU models. The defaults are calibrated against the
// figures the paper reports for its Linux 2.0.34 / Pentium 200 MHz
// testbed; EXPERIMENTS.md records each anchor.
type CostSheet struct {
	// SyscallEntry/SyscallExit: register save/restore, kernel-entry
	// bookkeeping around the int-gate and iret hardware costs.
	SyscallEntry float64
	SyscallExit  float64

	// ContextSwitch: scheduler + state switch, excluding the TLB
	// flush (charged separately by the CR3 load it triggers).
	ContextSwitch float64

	// Fork and Exec: process duplication / image replacement. The
	// paper's Table 3 CGI column prices one fork+exec per request;
	// these values reproduce its ~98 req/s at 28 bytes.
	Fork float64
	Exec float64

	// PFHandler: the page-fault handler software path, including the
	// Palladium check of Section 4.5.2 (application SPL, faulting code
	// segment SPL, page PPL and permission bits).
	PFHandler float64
	// GPHandler: general-protection fault processing for kernel
	// extensions. FaultRaise (hardware) + GPHandler = 1,020 cycles,
	// the paper's section 5.1 figure.
	GPHandler float64
	// SignalDeliver: composing and delivering a signal frame to a
	// user process. FaultRaise + PFHandler + SignalDeliver = 3,325
	// cycles, the paper's SIGSEGV-delivery figure.
	SignalDeliver float64

	// PPLMarkStart and PPLMarkPerPage: the cost of flipping page
	// privilege levels (set_range / init_PL): "a start-up cost of
	// 3000 to 5000 cycles, plus 45 cycles per page marked".
	PPLMarkStart   float64
	PPLMarkPerPage float64

	// CopyPerByte: kernel copyin/copyout cost per byte (syscall
	// argument and socket data copies).
	CopyPerByte float64

	// MapPage: establishing one page mapping in the page tables
	// (demand-paging service cost per faulted-in page).
	MapPage float64

	// DlopenBase: the dynamic-library open path (file lookup, mmap of
	// segments, relocation bookkeeping) excluding per-page and
	// per-symbol work; calibrated so plain dlopen of the null
	// extension lands near the paper's 400 microseconds.
	DlopenBase      float64
	DlopenPerSymbol float64
	DlopenPerPage   float64

	// TimerTick: the timer-interrupt path used to police extension
	// CPU-time limits.
	TimerTick float64
}

// DefaultCosts returns the calibrated cost sheet (see EXPERIMENTS.md
// for the paper anchors).
func DefaultCosts() *CostSheet {
	return &CostSheet{
		SyscallEntry:    120,
		SyscallExit:     80,
		ContextSwitch:   450,
		Fork:            220_000,
		Exec:            180_000,
		PFHandler:       1_200,
		GPHandler:       900,
		SignalDeliver:   2_005,
		PPLMarkStart:    4_000,
		PPLMarkPerPage:  45,
		CopyPerByte:     1.0,
		MapPage:         400,
		DlopenBase:      72_000,
		DlopenPerSymbol: 350,
		DlopenPerPage:   60,
		TimerTick:       180,
	}
}
