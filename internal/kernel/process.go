package kernel

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// VMRegion is one mmap'd range of a process's user address space.
// Pages are faulted in on demand; Writable regions of an SPL-2 process
// are marked PPL 0 at fault time, exactly as the modified mmap of
// Section 4.5.2 prescribes.
type VMRegion struct {
	Name     string
	Start    uint32 // inclusive, page aligned
	End      uint32 // exclusive, page aligned
	Writable bool
	// ForcePPL1 pins the region's pages at PPL 1 regardless of the
	// process SPL (extension segments, shared data areas).
	ForcePPL1 bool
}

func (r *VMRegion) contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Signal numbers (the subset the kernel delivers).
const (
	SIGSEGV = 11
	SIGKILL = 9
	SIGXCPU = 24
)

// SignalInfo describes a delivered signal.
type SignalInfo struct {
	Sig   int
	Fault *mmu.Fault // non-nil for SIGSEGV
	// Reason is a human-readable cause ("extension time limit", ...).
	Reason string
}

// Process is the kernel's task structure. TaskSPL is the paper's new
// task_struct field: the process's logical segment privilege level —
// 3 for ordinary processes, 2 once init_PL promotes an extensible
// application.
type Process struct {
	PID     int
	Parent  int
	TaskSPL int
	AS      *mmu.AddressSpace

	Regions []*VMRegion
	Brk     uint32
	mmapPtr uint32

	// KStackTop is the linear top of the per-process kernel stack.
	KStackTop uint32
	// Ring2StackTop is the ring-2 stack offset kept in the TSS once
	// the process is at SPL 2.
	Ring2StackTop uint32

	// SignalHandler receives signals (the extensible application "is
	// supposed to have a signal handler to deal with such errors").
	SignalHandler func(SignalInfo)
	// LastSignal records the most recent delivery for inspection.
	LastSignal *SignalInfo

	// Exited reports process termination.
	Exited   bool
	ExitCode int
}

// CreateProcess builds a fresh SPL-3 process with an empty user
// address space sharing the kernel half, plus stack and heap regions.
func (k *Kernel) CreateProcess() (*Process, error) {
	as, err := mmu.NewAddressSpace(k.Phys, k.Alloc)
	if err != nil {
		return nil, err
	}
	as.ShareRangeFrom(k.kernelTemplate, KernelBase, 0xFFFF_F000)

	p := &Process{
		PID:     k.nextPID,
		TaskSPL: 3,
		AS:      as,
		Brk:     UserTextBase,
		mmapPtr: MmapBase,
	}
	k.nextPID++
	k.procs[p.PID] = p

	// Kernel stack: one page in the shared kernel region.
	kstack := k.nextKStack
	k.nextKStack += 2 * mem.PageSize // guard gap
	if _, err := k.MapKernelPage(kstack, true); err != nil {
		return nil, err
	}
	p.KStackTop = kstack + mem.PageSize

	// User stack region (grows down from StackTop).
	p.Regions = append(p.Regions, &VMRegion{
		Name: "stack", Start: StackTop - 64*mem.PageSize, End: StackTop, Writable: true,
	})
	if k.cur == nil {
		k.schedule(p)
	}
	return p, nil
}

// Fork duplicates the current process: memory map, regions, TaskSPL
// and page privilege levels are inherited (Section 4.5.2).
func (k *Kernel) Fork(parent *Process) (*Process, error) {
	k.Clock.Add(k.Costs.Fork)
	child, err := k.CreateProcess()
	if err != nil {
		return nil, err
	}
	child.Parent = parent.PID
	child.TaskSPL = parent.TaskSPL
	child.Brk = parent.Brk
	child.mmapPtr = parent.mmapPtr
	child.Ring2StackTop = parent.Ring2StackTop
	child.Regions = nil
	for _, r := range parent.Regions {
		cp := *r
		child.Regions = append(child.Regions, &cp)
	}
	// Deep-copy the user half (frames shared copy-on-nothing: this
	// simulator shares frames outright, which is sufficient since
	// Table 3's CGI model only prices the fork).
	if err := child.AS.CopyRangeFrom(parent.AS, 0, UserLimit); err != nil {
		return nil, err
	}
	return child, nil
}

// Exec replaces the process image: fresh user address space, and the
// privilege levels are *not* inherited — the process restarts at
// SPL 3 (Section 4.5.2).
func (k *Kernel) Exec(p *Process) error {
	k.Clock.Add(k.Costs.Exec)
	as, err := mmu.NewAddressSpace(k.Phys, k.Alloc)
	if err != nil {
		return err
	}
	as.ShareRangeFrom(k.kernelTemplate, KernelBase, 0xFFFF_F000)
	p.AS = as
	p.TaskSPL = 3
	p.Regions = []*VMRegion{{
		Name: "stack", Start: StackTop - 64*mem.PageSize, End: StackTop, Writable: true,
	}}
	p.Brk = UserTextBase
	p.mmapPtr = MmapBase
	p.Ring2StackTop = 0
	if k.cur == p {
		k.MMU.LoadCR3(p.AS)
	}
	return nil
}

// Exit terminates a process.
func (k *Kernel) Exit(p *Process, code int) {
	p.Exited = true
	p.ExitCode = code
	delete(k.procs, p.PID)
}

// Mmap creates a demand-paged region of n bytes. With addr == 0 the
// kernel chooses the address (the mmap area of Figure 2). The region's
// pages materialize at page-fault time; their PPL follows the
// modified-mmap rule.
func (p *Process) Mmap(k *Kernel, addr, n uint32, writable bool, name string) (uint32, error) {
	k.chargeSyscallSoftware()
	return p.mmapInternal(k, addr, n, writable, false, name)
}

// MmapPPL1 is Mmap for regions pinned at PPL 1 (extension segments and
// shared data areas).
func (p *Process) MmapPPL1(k *Kernel, addr, n uint32, writable bool, name string) (uint32, error) {
	k.chargeSyscallSoftware()
	return p.mmapInternal(k, addr, n, writable, true, name)
}

func (p *Process) mmapInternal(k *Kernel, addr, n uint32, writable, forcePPL1 bool, name string) (uint32, error) {
	n = (n + mem.PageMask) &^ uint32(mem.PageMask)
	if n == 0 {
		return 0, fmt.Errorf("mmap: zero length")
	}
	if addr == 0 {
		addr = p.mmapPtr
		p.mmapPtr += n + mem.PageSize // guard gap
	}
	if addr&mem.PageMask != 0 {
		return 0, fmt.Errorf("mmap: unaligned address %#x", addr)
	}
	if addr+n-1 > UserLimit {
		return 0, fmt.Errorf("mmap: beyond user space")
	}
	for _, r := range p.Regions {
		if addr < r.End && r.Start < addr+n {
			return 0, fmt.Errorf("mmap: overlaps region %s", r.Name)
		}
	}
	p.Regions = append(p.Regions, &VMRegion{
		Name: name, Start: addr, End: addr + n, Writable: writable, ForcePPL1: forcePPL1,
	})
	return addr, nil
}

// Munmap removes a region and its mappings.
func (p *Process) Munmap(k *Kernel, addr uint32) error {
	for i, r := range p.Regions {
		if r.Start == addr {
			for lin := r.Start; lin < r.End; lin += mem.PageSize {
				if p.AS.Lookup(lin).Present() {
					p.AS.Unmap(lin)
					k.MMU.InvalidatePage(lin)
				}
			}
			p.Regions = append(p.Regions[:i], p.Regions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("munmap: no region at %#x", addr)
}

// Region returns the region containing addr, or nil.
func (p *Process) Region(addr uint32) *VMRegion {
	for _, r := range p.Regions {
		if r.contains(addr) {
			return r
		}
	}
	return nil
}

// pagePPL1 decides the PPL of a freshly faulted-in page under the
// modified-mmap rule of Section 4.5.2: writable pages of an SPL-2
// process are PPL 0 (hidden from extensions) unless the region is
// explicitly pinned at PPL 1; everything else is PPL 1.
func (p *Process) pagePPL1(r *VMRegion) bool {
	if r.ForcePPL1 {
		return true
	}
	if p.TaskSPL == 2 && r.Writable {
		return false
	}
	return true
}

// FaultIn materializes the page containing addr (demand paging),
// charging the map cost. It reports whether a region covered the
// address.
func (p *Process) FaultIn(k *Kernel, addr uint32) (bool, error) {
	r := p.Region(addr)
	if r == nil {
		return false, nil
	}
	lin := addr &^ uint32(mem.PageMask)
	if p.AS.Lookup(lin).Present() {
		return true, nil // permission fault, not a missing page
	}
	frame, err := k.Alloc.Alloc()
	if err != nil {
		return false, err
	}
	k.Clock.Add(k.Costs.MapPage)
	if err := p.AS.Map(lin, frame, r.Writable, p.pagePPL1(r)); err != nil {
		return false, err
	}
	if k.cur == p {
		k.MMU.InvalidatePage(lin)
	}
	return true, nil
}

// Touch pre-faults every page of [addr, addr+n): the kernel's
// equivalent of the application touching its memory, used by loaders
// that need pages resident before copying into them.
func (p *Process) Touch(k *Kernel, addr, n uint32) error {
	for lin := addr &^ uint32(mem.PageMask); lin < addr+n; lin += mem.PageSize {
		ok, err := p.FaultIn(k, lin)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("touch: no region at %#x", lin)
		}
	}
	return nil
}

// Mprotect changes a region's writability, with the Palladium
// restriction of Section 4.5.2: an SPL-3 caller may not tamper with
// the memory of an SPL-2 process (enforced by the syscall layer; this
// method applies the change).
func (p *Process) Mprotect(k *Kernel, addr uint32, writable bool) error {
	k.chargeSyscallSoftware()
	r := p.Region(addr)
	if r == nil {
		return fmt.Errorf("mprotect: no region at %#x", addr)
	}
	r.Writable = writable
	for lin := r.Start; lin < r.End; lin += mem.PageSize {
		if p.AS.Lookup(lin).Present() {
			p.AS.SetWritable(lin, writable)
			k.MMU.InvalidatePage(lin)
		}
	}
	return nil
}

// CopyToUser writes b into the process's user memory at addr with
// kernel privilege, faulting pages in as needed and charging per-byte
// copy costs. The copy proceeds page-wise — one translation per page
// instead of one per byte — with the simulated charge unchanged.
func (k *Kernel) CopyToUser(p *Process, addr uint32, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	k.Clock.Add(k.Costs.CopyPerByte * float64(len(b)))
	if err := p.Touch(k, addr, uint32(len(b))); err != nil {
		return err
	}
	return mem.ForEachPageRun(addr, len(b), func(lin uint32, n int) error {
		e := p.AS.Lookup(lin)
		if !e.Present() {
			return fmt.Errorf("copy to user: page vanished at %#x", lin)
		}
		k.Phys.WriteBytes(e.Frame()|lin&mem.PageMask, b[:n])
		b = b[n:]
		return nil
	})
}

// CopyFromUser reads n bytes of user memory at addr.
func (k *Kernel) CopyFromUser(p *Process, addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := k.CopyFromUserInto(p, addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CopyFromUserInto reads len(buf) bytes of user memory at addr into
// buf, page-wise, without allocating; steady-state serving paths reuse
// one buffer across requests. The simulated charge is exactly
// CopyFromUser's.
func (k *Kernel) CopyFromUserInto(p *Process, addr uint32, buf []byte) error {
	k.Clock.Add(k.Costs.CopyPerByte * float64(len(buf)))
	if err := p.Touch(k, addr, uint32(len(buf))); err != nil {
		return err
	}
	return mem.ForEachPageRun(addr, len(buf), func(lin uint32, n int) error {
		e := p.AS.Lookup(lin)
		if !e.Present() {
			return fmt.Errorf("copy from user: page missing at %#x", lin)
		}
		copy(buf[:n], k.Phys.FrameView(e.Frame())[lin&mem.PageMask:])
		buf = buf[n:]
		return nil
	})
}

// DeliverSignal charges the delivery path and invokes the process's
// handler. FaultRaise + PFHandler + SignalDeliver reproduce the
// paper's 3,325-cycle SIGSEGV figure.
func (k *Kernel) DeliverSignal(p *Process, info SignalInfo) {
	k.Clock.Add(k.Costs.SignalDeliver)
	p.LastSignal = &info
	if p.SignalHandler != nil {
		p.SignalHandler(info)
	} else if info.Sig == SIGSEGV || info.Sig == SIGKILL {
		k.Exit(p, 128+info.Sig)
	}
}

// chargeSyscallSoftware prices one full system-call round trip as made
// by trusted (Go-level) application code: interrupt-gate entry,
// kernel software path, and the privilege-lowering iret back.
func (k *Kernel) chargeSyscallSoftware() {
	k.Clock.Add(k.Costs.SyscallEntry + k.Costs.SyscallExit)
	k.Clock.Charge(k.Model, cycles.IntGate)
	k.Clock.Charge(k.Model, cycles.IretInter)
}
