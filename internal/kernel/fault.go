package kernel

import (
	"repro/internal/cycles"
	"repro/internal/mmu"
)

// FaultDisposition is the kernel's verdict on a hardware fault.
type FaultDisposition int

const (
	// Retry: the fault was demand paging; re-execute the instruction.
	Retry FaultDisposition = iota
	// SignalDelivered: a protection violation by a user extension;
	// SIGSEGV was delivered to the extensible application and the
	// extension invocation must be aborted (Section 4.5.2).
	SignalDelivered
	// KernelExtensionFault: a kernel extension violated its segment;
	// the kernel aborts the offending extension (Section 4.5.2).
	KernelExtensionFault
	// Fatal: an unrecoverable fault (kernel bug or corrupt state).
	Fatal
)

func (d FaultDisposition) String() string {
	switch d {
	case Retry:
		return "retry"
	case SignalDelivered:
		return "signal-delivered"
	case KernelExtensionFault:
		return "kernel-extension-fault"
	case Fatal:
		return "fatal"
	}
	return "unknown"
}

// HandleFault is the kernel's fault entry point, merging the standard
// Linux page-fault path with the Palladium check of Section 4.5.2:
// "whether an extension attempts to access the extended application's
// memory that is outside the extension segment ... based on the
// application's SPL, the SPL of the code segment of the routine that
// causes the page fault, and the page's PPL and permission bits."
func (k *Kernel) HandleFault(p *Process, f *mmu.Fault) FaultDisposition {
	k.Clock.Charge(k.Model, cycles.FaultRaise)
	switch f.Kind {
	case mmu.PF:
		k.Clock.Add(k.Costs.PFHandler)
		if f.Linear <= UserLimit {
			if r := p.Region(f.Linear); r != nil && !p.AS.Lookup(f.Linear).Present() {
				// Demand paging: map the page and restart.
				if ok, err := p.FaultIn(k, f.Linear); ok && err == nil {
					return Retry
				}
			}
		}
		// Palladium check: faulting code at SPL 3, application at
		// taskSPL 2, page at PPL 0 (or write to a read-only page such
		// as the GOT) => the extension stepped outside its domain.
		if f.CPL == 3 && p.TaskSPL == 2 {
			k.DeliverSignal(p, SignalInfo{Sig: SIGSEGV, Fault: f, Reason: "user extension protection violation"})
			return SignalDelivered
		}
		// An ordinary process touching memory it never mapped.
		if f.CPL == 3 {
			k.DeliverSignal(p, SignalInfo{Sig: SIGSEGV, Fault: f, Reason: "segmentation fault"})
			return SignalDelivered
		}
		if f.CPL == 1 {
			// Kernel extension faulting on a page-level check (an
			// access inside its segment limit to a page that was never
			// mapped): the PF handler path was already charged above;
			// the kernel aborts the offender like any other extension
			// fault. (This leg used to charge GPHandler - PFHandler,
			// a negative number that panicked the clock — it was
			// unreachable until the sandbox taxonomy tests exercised
			// it.)
			return KernelExtensionFault
		}
		return Fatal

	case mmu.GP, mmu.SS, mmu.NP, mmu.UD:
		if f.CPL == 1 {
			// A kernel extension escaping its segment trips the
			// segment-limit or SPL check: "an offending access would
			// cause a general protection exception" — 1,020 cycles
			// average (FaultRaise + GPHandler).
			k.Clock.Add(k.Costs.GPHandler)
			return KernelExtensionFault
		}
		if f.CPL == 3 {
			k.Clock.Add(k.Costs.GPHandler)
			k.DeliverSignal(p, SignalInfo{Sig: SIGSEGV, Fault: f, Reason: "general protection fault"})
			return SignalDelivered
		}
		k.Clock.Add(k.Costs.GPHandler)
		return Fatal
	}
	return Fatal
}
